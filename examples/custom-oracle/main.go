// Custom oracle: extending WASAI with a new bug detector (paper §5).
//
// The paper describes a two-step extension interface: add an oracle (with
// its payload templates) and analyze traces for the exploit event. This
// example registers two extension oracles through the public API —
// "DeferredUse", flagging deferred-transaction scheduling, and
// "TimeSource", flagging current_time used as an entropy source — and runs
// them next to the five built-in detectors.
//
// Run with: go run ./examples/custom-oracle
package main

import (
	"fmt"
	"log"

	wasai "repro"
	"repro/internal/contractgen"
)

func main() {
	// A lottery that pays through the Rollback-safe defer scheme: the
	// builtin Rollback oracle stays quiet, but a reviewer may still want
	// to know the contract schedules deferred transactions.
	contract, err := contractgen.Generate(contractgen.Spec{
		Class:      contractgen.ClassRollback,
		Vulnerable: false, // deferred payout
		Seed:       77,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := wasai.DefaultConfig()
	cfg.CustomAPIDetectors = []wasai.APIDetector{
		{Name: "DeferredUse", APIs: []string{"send_deferred"}},
		{Name: "TimeSource", APIs: []string{"current_time"}},
	}

	report, err := wasai.AnalyzeModule(contract.Module, contract.ABI, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("built-in oracles:")
	for _, f := range report.Findings {
		verdict := "safe"
		if f.Vulnerable {
			verdict = "VULNERABLE"
		}
		fmt.Printf("  %-14s %s\n", f.Class, verdict)
	}
	fmt.Println("extension oracles:")
	for name, hit := range report.Custom {
		verdict := "not observed"
		if hit {
			verdict = "OBSERVED"
		}
		fmt.Printf("  %-14s %s\n", name, verdict)
	}

	if report.Custom["DeferredUse"] != true {
		log.Fatal("expected the DeferredUse extension oracle to fire")
	}
	if f, _ := report.Class("Rollback"); f.Vulnerable {
		log.Fatal("the defer scheme should satisfy the builtin Rollback oracle")
	}
	fmt.Println("\nThe defer-scheme payout satisfies the built-in Rollback oracle while")
	fmt.Println("the extension oracle still surfaces the deferred-transaction usage.")
}
