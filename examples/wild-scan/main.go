// Wild scan: an RQ4-style sweep over a population of deployed contracts.
//
// The example generates a miniature "Mainnet" population with the paper's
// per-class vulnerability prevalence, fuzzes every contract on the parallel
// campaign engine (wasai.AnalyzeBatch), and reports the aggregate findings
// plus the patch/abandon lifecycle — the §4.4 analysis at example scale.
//
// Run with: go run ./examples/wild-scan [-journal scan.jsonl [-resume]] [n] [workers]
//
// With -journal, the sweep checkpoints every finished contract to an
// append-only JSONL file; re-running with -resume picks up where a killed
// scan left off without redoing completed work.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strconv"

	wasai "repro"
	"repro/internal/contractgen"
)

func main() {
	journal := flag.String("journal", "", "checkpoint the scan to this JSONL journal")
	resume := flag.Bool("resume", false, "replay contracts already recorded in -journal")
	flag.Parse()
	n, workers := 40, 0
	if args := flag.Args(); len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil {
			log.Fatalf("bad population size %q", args[0])
		}
		n = v
		if len(args) > 1 {
			v, err := strconv.Atoi(args[1])
			if err != nil {
				log.Fatalf("bad worker count %q", args[1])
			}
			workers = v
		}
	}

	rng := rand.New(rand.NewSource(991))
	pop, err := contractgen.GenerateWild(contractgen.DefaultWildOptions(n), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanning %d deployed contracts...\n\n", len(pop))

	// One batch job per contract; job i fuzzes with seed base+i (base is
	// cfg.Seed), reproducing the serial sweep's per-contract seeds exactly.
	cfg := wasai.DefaultBatchConfig()
	cfg.Workers = workers
	cfg.Journal = *journal
	cfg.Resume = *resume
	jobs := make([]wasai.BatchJob, len(pop))
	for i := range pop {
		jobs[i] = wasai.BatchJob{
			Name:   pop[i].Name.String(),
			Module: pop[i].Contract.Module,
			ABI:    pop[i].Contract.ABI,
		}
	}
	report, err := wasai.AnalyzeBatch(context.Background(), jobs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	flagged, stillOperating, patched, exposed := 0, 0, 0, 0
	for i := range pop {
		wc := &pop[i]
		job := report.Jobs[i]
		if job.Err != nil {
			log.Fatalf("%s: %v", wc.Name, job.Err)
		}
		if !job.Report.Vulnerable() {
			continue
		}
		flagged++
		switch {
		case wc.Abandoned:
			// Latest version replaced with an empty file.
		case wc.Patched:
			stillOperating++
			patched++
		default:
			stillOperating++
			exposed++
		}
	}

	fmt.Printf("flagged vulnerable: %d/%d (%.1f%%) at %.1f contracts/s\n",
		flagged, len(pop), 100*float64(flagged)/float64(len(pop)), report.JobsPerSecond)
	for _, cl := range []string{"Fake EOS", "Fake Notif", "MissAuth", "BlockinfoDep", "Rollback"} {
		fmt.Printf("  %-14s %d\n", cl, report.PerClass[cl])
	}
	if flagged > 0 {
		fmt.Printf("\nlifecycle: %d still operating (%.1f%% of flagged), %d patched, %d exposed to attackers\n",
			stillOperating, 100*float64(stillOperating)/float64(flagged), patched, exposed)
	}
}
