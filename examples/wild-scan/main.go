// Wild scan: an RQ4-style sweep over a population of deployed contracts.
//
// The example generates a miniature "Mainnet" population with the paper's
// per-class vulnerability prevalence, fuzzes every contract, and reports
// the aggregate findings plus the patch/abandon lifecycle — the §4.4
// analysis at example scale.
//
// Run with: go run ./examples/wild-scan [n]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"

	wasai "repro"
	"repro/internal/contractgen"
)

func main() {
	n := 40
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad population size %q", os.Args[1])
		}
		n = v
	}

	rng := rand.New(rand.NewSource(991))
	pop, err := contractgen.GenerateWild(contractgen.DefaultWildOptions(n), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanning %d deployed contracts...\n\n", len(pop))

	perClass := map[string]int{}
	flagged, stillOperating, patched, exposed := 0, 0, 0, 0
	for i := range pop {
		wc := &pop[i]
		cfg := wasai.DefaultConfig()
		cfg.Seed = int64(i + 1)
		report, err := wasai.AnalyzeModule(wc.Contract.Module, wc.Contract.ABI, cfg)
		if err != nil {
			log.Fatalf("%s: %v", wc.Name, err)
		}
		hit := false
		for _, f := range report.Findings {
			if f.Vulnerable {
				perClass[f.Class]++
				hit = true
			}
		}
		if !hit {
			continue
		}
		flagged++
		switch {
		case wc.Abandoned:
			// Latest version replaced with an empty file.
		case wc.Patched:
			stillOperating++
			patched++
		default:
			stillOperating++
			exposed++
		}
	}

	fmt.Printf("flagged vulnerable: %d/%d (%.1f%%)\n", flagged, len(pop), 100*float64(flagged)/float64(len(pop)))
	for _, cl := range []string{"Fake EOS", "Fake Notif", "MissAuth", "BlockinfoDep", "Rollback"} {
		fmt.Printf("  %-14s %d\n", cl, perClass[cl])
	}
	if flagged > 0 {
		fmt.Printf("\nlifecycle: %d still operating (%.1f%% of flagged), %d patched, %d exposed to attackers\n",
			stillOperating, 100*float64(stillOperating)/float64(flagged), patched, exposed)
	}
}
