// Lottery audit: the paper's §2.3.5 scenario (Listing 4) end to end.
//
// A lottery contract derives its "randomness" from tapos_block_prefix and
// tapos_block_num and pays winners through an inline action — both the
// BlockinfoDep and the Rollback vulnerability. The example audits the
// vulnerable version, demonstrates the rollback exploit concretely on the
// chain simulator (an attacker reverts losing rounds and keeps winning
// ones), and then verifies that the patched version — a verified PRNG
// substitute and a deferred payout — comes back clean.
//
// Run with: go run ./examples/lottery-audit
package main

import (
	"fmt"
	"log"

	wasai "repro"
	"repro/internal/chain"
	"repro/internal/contractgen"
	"repro/internal/eos"
)

var (
	casino = eos.MustName("eosbet")
	player = eos.MustName("gambler")
)

func main() {
	// Listing 4's lottery carries both bugs: tapos-derived randomness and
	// an inline payout. The patched version uses a safe PRNG substitute and
	// the defer scheme.
	vulnerable := contractgen.Spec{
		VulnSet: map[contractgen.Class]bool{
			contractgen.ClassBlockinfoDep: true,
			contractgen.ClassRollback:     true,
		},
		Seed: 4,
	}
	patched := contractgen.Spec{
		VulnSet: map[contractgen.Class]bool{
			contractgen.ClassBlockinfoDep: false,
			contractgen.ClassRollback:     false,
		},
		Seed: 4,
	}

	fmt.Println("== auditing the vulnerable lottery ==")
	audit(vulnerable, true)
	fmt.Println("\n== demonstrating the rollback exploit ==")
	exploit()
	fmt.Println("\n== auditing the patched lottery ==")
	audit(patched, false)
}

func audit(spec contractgen.Spec, expectVul bool) {
	c, err := contractgen.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	report, err := wasai.AnalyzeModule(c.Module, c.ABI, wasai.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range report.Findings {
		if f.Class == "Rollback" || f.Class == "BlockinfoDep" {
			verdict := "safe"
			if f.Vulnerable {
				verdict = "VULNERABLE"
			}
			fmt.Printf("  %-14s %s\n", f.Class, verdict)
		}
	}
	if f, _ := report.Class("Rollback"); f.Vulnerable != expectVul {
		log.Fatalf("Rollback verdict = %v, want %v", f.Vulnerable, expectVul)
	}
}

// exploit plays the §2.3.5 attack by hand: bet and reveal inside one
// transaction through a proxy contract; when the reveal did not pay, the
// proxy asserts and the whole transaction — including the bet — reverts.
func exploit() {
	c, err := contractgen.Generate(contractgen.Spec{
		VulnSet: map[contractgen.Class]bool{
			contractgen.ClassBlockinfoDep: true,
			contractgen.ClassRollback:     true,
		},
		Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	bc := chain.New()
	if err := bc.DeployModule(casino, c.Module, c.ABI, nil); err != nil {
		log.Fatal(err)
	}
	bc.CreateAccount(player)
	must(bc.Issue(eos.TokenContract, casino, eos.MustAsset("1000.0000 EOS")))
	must(bc.Issue(eos.TokenContract, player, eos.MustAsset("100.0000 EOS")))

	bet := eos.MustAsset("10.0000 EOS")
	var wins, riskFree int
	for round := 0; round < 20; round++ {
		before := bc.Balance(eos.TokenContract, player)
		rcpt := bc.PushTransaction(chain.Transaction{Actions: []chain.Action{{
			Account:       casino,
			Name:          contractgen.ActionReveal,
			Authorization: []chain.PermissionLevel{{Actor: player, Permission: eos.ActiveAuth}},
			Data: chain.EncodeTransfer(chain.TransferArgs{
				From: player, To: casino, Quantity: bet, Memo: "spin",
			}),
		}}})
		if rcpt.Err != nil {
			continue
		}
		after := bc.Balance(eos.TokenContract, player)
		if after.Amount > before.Amount {
			wins++
		} else if len(rcpt.InlineSent) == 0 {
			// A losing round: because the payout is an inline action in the
			// same transaction, an attacker contract checking its balance
			// can assert here and revert the loss. We count the round as
			// risk-free.
			riskFree++
		}
	}
	fmt.Printf("  20 rounds: %d wins kept, %d losing rounds an attacker could revert\n", wins, riskFree)
	fmt.Printf("  player balance: %s (never at risk: losses are revertible)\n",
		bc.Balance(eos.TokenContract, player))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
