// Quickstart: analyze a Wasm smart contract with the public wasai API.
//
// The example builds a token-responder contract that is missing the Fake
// EOS guard (Listing 1 of the paper without the line-4 patch), serializes
// it to the standard artifacts a developer would have — a .wasm binary and
// an ABI JSON — and runs a WASAI campaign over them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"
	"log"

	wasai "repro"
	"repro/internal/contractgen"
	"repro/internal/wasm"
)

func main() {
	// A contract whose apply() runs the eosponser for any "transfer"
	// action without checking that the token issuer is eosio.token.
	contract, err := contractgen.Generate(contractgen.Spec{
		Class:      contractgen.ClassFakeEOS,
		Vulnerable: true,
		Seed:       2022,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The artifacts a real deployment would ship.
	wasmBin, err := wasm.Encode(contract.Module)
	if err != nil {
		log.Fatal(err)
	}
	abiJSON, err := json.Marshal(contract.ABI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contract: %d bytes of Wasm, ABI: %s\n\n", len(wasmBin), abiJSON)

	// Fuzz it.
	report, err := wasai.Analyze(wasmBin, abiJSON, wasai.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("campaign: %d transactions, %d distinct branches explored, %d adaptive seeds\n\n",
		report.Iterations, report.Coverage, report.AdaptiveSeeds)
	for _, f := range report.Findings {
		verdict := "safe"
		if f.Vulnerable {
			verdict = "VULNERABLE"
		}
		fmt.Printf("  %-14s %s\n", f.Class, verdict)
	}

	if f, _ := report.Class("Fake EOS"); !f.Vulnerable {
		log.Fatal("expected the Fake EOS vulnerability to be found")
	}
	fmt.Println("\nThe Fake EOS bug was found: anyone can mint a token named \"EOS\"")
	fmt.Println("and spend it at this contract, because apply() never checks that")
	fmt.Println("the notifying code is eosio.token.")
}
