package wasai

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/abi"
	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/failure"
	"repro/internal/fuzz"
	"repro/internal/memo"
	"repro/internal/scanner"
	"repro/internal/schedule"
	"repro/internal/store"
	"repro/internal/wasm"
)

// BatchJob is one contract in a batch analysis. Provide either the raw
// binary + ABI JSON (Wasm/ABIJSON) or the decoded forms (Module/ABI); the
// decoded forms win when both are set.
type BatchJob struct {
	// Name labels the contract in the campaign report.
	Name string
	// Wasm and ABIJSON are the contract binary and its ABI, as Analyze
	// takes them.
	Wasm    []byte
	ABIJSON []byte
	// Module and ABI are the pre-decoded forms, as AnalyzeModule takes
	// them (used when scanning populations already in memory).
	Module *wasm.Module
	ABI    *abi.ABI
	// Config, when non-nil, overrides the batch-level analysis Config for
	// this job (its Seed is honoured verbatim; zero derives base+index).
	Config *Config
}

// BatchConfig tunes AnalyzeBatch and Campaign.
type BatchConfig struct {
	// Config is the per-contract analysis configuration. Its Seed is the
	// batch base seed: job i fuzzes with Seed+i, so findings are identical
	// regardless of worker count. TraceFile is ignored in batch mode.
	Config
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// JobTimeout is the per-contract deadline (0 = none). A contract that
	// exceeds it fails its own job; the rest of the batch proceeds.
	JobTimeout time.Duration
	// QueueDepth bounds Campaign.Submit backpressure (0 = 2×Workers).
	QueueDepth int
	// StaticTriage pre-analyzes each contract's bytecode and answers
	// provably-clean jobs without fuzzing them (BatchResult.Skipped).
	// Findings are unchanged — only statically-impossible work is skipped —
	// and jobs with custom detectors or trace capture are never skipped.
	StaticTriage bool
	// Journal, when non-empty, checkpoints every completed contract to an
	// append-only JSONL file at this path, so a killed batch can be
	// resumed without repeating finished work.
	Journal string
	// Resume replays contracts already recorded in the Journal instead of
	// re-fuzzing them. The resumed batch must submit the same population
	// with the same base seed; its report is then byte-identical to an
	// uninterrupted run's.
	Resume bool
	// MaxAttempts retries failed contracts with degraded budgets (reduced
	// fuel, then concrete-only fuzzing). 0 or 1 disables retries.
	MaxAttempts int
	// Memo is inherited from Config ("off"/"on"/"shared"): in a batch it
	// additionally reuses decoded modules across content-identical
	// submissions and static reports across triage, and with "shared" the
	// cache outlives the batch (resumed or repeated batches start warm).
	// Findings are unchanged at any worker count; only duplicated work is
	// skipped. (The field itself lives on the embedded Config.)
}

// DefaultBatchConfig returns the paper's per-contract configuration with
// one worker per core.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{Config: DefaultConfig()}
}

// BatchResult is one contract's outcome within a campaign.
type BatchResult struct {
	// Index is the job's position in the batch (its seed derivation).
	Index int
	// Name echoes BatchJob.Name.
	Name string
	// Report is the analysis outcome; nil when Err is non-nil.
	Report *Report
	// Err is the job's failure: decode/setup errors, the per-job deadline
	// (context.DeadlineExceeded), or a recovered panic.
	Err error
	// Skipped marks a contract answered by static triage without fuzzing
	// (the Report carries the all-clean verdict a campaign would produce).
	Skipped bool
	// FailureClass names the failure taxonomy class of Err ("none" when
	// the job succeeded; see internal/failure).
	FailureClass string
	// Attempts counts the tries the job consumed; DegradedMode labels the
	// degradation of the accepted attempt ("" = ran as configured).
	Attempts     int
	DegradedMode string
	// Replayed marks a result restored from a resume journal.
	Replayed bool
	// Duration is the job's wall-clock time.
	Duration time.Duration
}

// CampaignReport aggregates a batch analysis.
type CampaignReport struct {
	// Jobs holds one entry per submitted contract, in submission order.
	Jobs []BatchResult
	// Completed and Failed partition the jobs; Flagged counts completed
	// jobs with at least one vulnerable class; Skipped counts the completed
	// jobs answered by static triage without fuzzing.
	Completed, Failed, Flagged, Skipped int
	// Degraded, Retried and Replayed count the resilience outcomes:
	// results accepted from a degraded attempt, jobs needing more than one
	// attempt, and results restored from a resume journal.
	Degraded, Retried, Replayed int
	// PerClass counts flagged contracts per vulnerability class name.
	PerClass map[string]int
	// PerFailure counts failed jobs per failure-class name (the taxonomy
	// of internal/failure: decode, trap, timeout, solver-exhausted, panic,
	// oom-guard).
	PerFailure map[string]int
	// Wall is the batch wall-clock time; JobsPerSecond the throughput.
	Wall          time.Duration
	JobsPerSecond float64
	// Memo holds the batch's cache-counter delta when memoization was
	// active (nil when off). Reporting-only: hit counts can vary with
	// worker scheduling, findings never do.
	Memo *memo.Stats
	// Sched totals the adaptive scheduler's counters — energy updates,
	// composite arms fired, saturation skips, and the campaign fuel-ledger
	// flows. Zero unless BatchConfig.Adaptive.
	Sched schedule.Counters
}

// AnalyzeBatch fuzzes every contract of the batch on a worker pool and
// returns the aggregated campaign report. Each job runs in an isolated
// chain + fuzzer with seed cfg.Seed+index, so the findings equal a serial
// loop of Analyze over the same contracts (the engine's differential tests
// assert exactly that). Per-job failures land in the report; AnalyzeBatch
// itself fails only on a cancelled context or a malformed submission.
func AnalyzeBatch(ctx context.Context, jobs []BatchJob, cfg BatchConfig) (*CampaignReport, error) {
	c, err := NewCampaign(ctx, cfg)
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		if err := c.Submit(jobs[i]); err != nil {
			c.Wait()
			return nil, err
		}
	}
	return c.Wait(), nil
}

// Campaign is the streaming form of AnalyzeBatch: submit contracts as a
// producer discovers them (Submit blocks on backpressure once QueueDepth
// jobs are queued with the workers), consume Results incrementally if
// desired, then Wait for the aggregate.
type Campaign struct {
	cfg     BatchConfig
	eng     *campaign.Engine // nil in adaptive (buffered) mode
	start   time.Time
	submits int

	// Adaptive campaigns need a barrier between the fuel-ledger phases,
	// which a streaming pool cannot provide: submissions are buffered here
	// and the two-phase driver runs at Wait.
	ctx     context.Context
	ccfg    campaign.Config
	memo    *memo.Cache
	pending []campaign.Job

	mu     sync.Mutex
	cond   *sync.Cond
	all    []BatchResult // every collected result (completion order)
	buf    []BatchResult // pending delivery to the streaming channel
	closed bool          // the collector has seen the last result

	out chan BatchResult
}

// NewCampaign starts a worker pool for a streaming batch analysis. Cancel
// ctx to abort queued and in-flight jobs. It fails on journal problems:
// an unopenable journal path, or a resume against a journal written under
// a different base seed.
func NewCampaign(ctx context.Context, cfg BatchConfig) (*Campaign, error) {
	mode, err := memo.ParseMode(cfg.Memo)
	if err != nil {
		return nil, fmt.Errorf("wasai: %w", err)
	}
	// StoreDir backs the memo with the shared disk store; it implies
	// memoization (a private cache when Memo is off). Memo="shared" uses
	// the per-store shared cache, never the plain process-wide one — see
	// memo.SharedWithDisk for why attaching there would leak globally.
	var memoCache *memo.Cache
	if cfg.StoreDir != "" {
		disk, err := store.OpenShared(store.Options{Dir: cfg.StoreDir})
		if err != nil {
			return nil, fmt.Errorf("wasai: memo store: %w", err)
		}
		if mode == memo.ModeShared {
			memoCache = memo.SharedWithDisk(disk)
		} else {
			memoCache = memo.ForMode(mode)
			if memoCache == nil {
				memoCache = memo.New()
			}
			memoCache.AttachDisk(disk)
		}
	}
	ccfg := campaign.Config{
		Workers:          cfg.Workers,
		QueueDepth:       cfg.QueueDepth,
		JobTimeout:       cfg.JobTimeout,
		BaseSeed:         cfg.Seed,
		StaticTriage:     cfg.StaticTriage,
		Verdicts:         cfg.Verdicts,
		Journal:          cfg.Journal,
		Resume:           cfg.Resume,
		Retry:            campaign.RetryPolicy{MaxAttempts: cfg.MaxAttempts},
		Memo:             mode,
		MemoCache:        memoCache,
		Incremental:      cfg.Incremental,
		FastVM:           cfg.FastVM,
		Adaptive:         cfg.Adaptive,
		SaturationWindow: cfg.SaturationWindow,
	}
	if cfg.Adaptive {
		// Buffered mode: the fuel ledger needs every job at a barrier, so
		// Submit only collects and decodes; the two-phase driver runs at
		// Wait. Submit-time module decoding shares the cache the driver
		// will use.
		if memoCache == nil {
			memoCache = memo.ForMode(mode)
			ccfg.MemoCache = memoCache
		}
		c := &Campaign{
			cfg:   cfg,
			start: time.Now(),
			out:   make(chan BatchResult),
			ctx:   ctx,
			ccfg:  ccfg,
			memo:  memoCache,
		}
		c.cond = sync.NewCond(&c.mu)
		return c, nil
	}
	eng, err := campaign.Start(ctx, ccfg)
	if err != nil {
		return nil, fmt.Errorf("wasai: %w", err)
	}
	c := &Campaign{
		cfg:   cfg,
		eng:   eng,
		start: time.Now(),
		out:   make(chan BatchResult),
	}
	c.cond = sync.NewCond(&c.mu)
	// Collector: drains the engine without ever blocking on the consumer,
	// so an unconsumed Results channel cannot stall the workers.
	go func() {
		for jr := range c.eng.Results() {
			br := toBatchResult(jr)
			c.mu.Lock()
			c.all = append(c.all, br)
			c.buf = append(c.buf, br)
			c.cond.Broadcast()
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.closed = true
		c.cond.Broadcast()
		c.mu.Unlock()
	}()
	// Forwarder: feeds the streaming channel from the buffer and closes it
	// once the collector is done and the buffer is drained.
	go func() {
		for {
			c.mu.Lock()
			for len(c.buf) == 0 && !c.closed {
				c.cond.Wait()
			}
			if len(c.buf) == 0 {
				c.mu.Unlock()
				close(c.out)
				return
			}
			br := c.buf[0]
			c.buf = c.buf[1:]
			c.mu.Unlock()
			c.out <- br
		}
	}()
	return c, nil
}

// Submit enqueues one contract. It decodes eagerly so malformed binaries
// fail fast (before occupying a worker) and blocks while the bounded queue
// is full.
func (c *Campaign) Submit(job BatchJob) error {
	index := c.submits
	mod := job.Module
	contractABI := job.ABI
	if mod == nil {
		// Decode through the memo module tier (nil-safe: a plain decode
		// when memoization is off): content-identical binaries across the
		// batch — or across a resumed rerun with a shared cache — are
		// decoded and validated once and share one immutable module.
		var err error
		mod, err = c.memoCache().Module(job.Wasm, func(bin []byte) (*wasm.Module, error) {
			m, err := wasm.Decode(bin)
			if err != nil {
				return nil, err
			}
			if err := wasm.Validate(m); err != nil {
				return nil, err
			}
			return m, nil
		})
		if err != nil {
			return failure.Wrap(failure.Decode, fmt.Errorf("wasai: batch job %d (%s): decode: %w", index, job.Name, err))
		}
	}
	if contractABI == nil {
		contractABI = new(abi.ABI)
		if err := json.Unmarshal(job.ABIJSON, contractABI); err != nil {
			return failure.Wrap(failure.Decode, fmt.Errorf("wasai: batch job %d (%s): parse abi: %w", index, job.Name, err))
		}
	}
	jcfg := c.cfg.Config
	seed := int64(0) // zero: the engine derives base seed + index
	if job.Config != nil {
		jcfg = *job.Config
		seed = jcfg.Seed
	}
	var customs []scanner.CustomDetector
	for _, d := range jcfg.CustomAPIDetectors {
		customs = append(customs, scanner.NewAPICallDetector(d.Name, mod, d.APIs...))
	}
	cjob := campaign.Job{
		ID:     index,
		Name:   job.Name,
		Module: mod,
		ABI:    contractABI,
		Config: fuzz.Config{
			Iterations:       jcfg.Iterations,
			SolverConflicts:  jcfg.SolverConflicts,
			DisableFeedback:  jcfg.DisableFeedback,
			Seed:             seed,
			CustomDetectors:  customs,
			Incremental:      jcfg.Incremental,
			FastVM:           jcfg.FastVM,
			Adaptive:         jcfg.Adaptive,
			SaturationWindow: jcfg.SaturationWindow,
		},
	}
	if c.eng == nil { // adaptive buffered mode
		if err := c.ctx.Err(); err != nil {
			return fmt.Errorf("wasai: submit: %w", err)
		}
		c.pending = append(c.pending, cjob)
		c.submits++
		return nil
	}
	if err := c.eng.Submit(cjob); err != nil {
		return err
	}
	c.submits++
	return nil
}

// memoCache resolves the decode-tier cache for Submit (nil-safe when off).
func (c *Campaign) memoCache() *memo.Cache {
	if c.eng != nil {
		return c.eng.MemoCache()
	}
	return c.memo
}

// Results streams per-contract outcomes in completion order. The channel
// closes once Wait has been called (or the context cancelled) and every
// submitted job has been delivered. Consuming it is optional.
func (c *Campaign) Results() <-chan BatchResult { return c.out }

// Wait ends submission, waits for every job, and returns the aggregate
// with Jobs in submission order. Unconsumed streaming results are drained.
// In adaptive mode this is where the buffered jobs actually run.
func (c *Campaign) Wait() *CampaignReport {
	if c.eng == nil {
		return c.waitAdaptive()
	}
	c.eng.Close()
	for range c.out { // returns once the forwarder closes the channel
	}
	c.mu.Lock()
	all := c.all
	c.mu.Unlock()

	report := &CampaignReport{
		Jobs:       make([]BatchResult, c.submits),
		PerClass:   map[string]int{},
		PerFailure: map[string]int{},
	}
	for _, br := range all {
		report.Jobs[br.Index] = br
	}
	c.tally(report)
	report.Memo = c.eng.MemoStats()
	return report
}

// waitAdaptive runs the buffered jobs through the two-phase fuel-ledger
// driver, streams their results, and aggregates. A driver-level failure
// (cancelled context, unwritable journal) lands on every job: the batch
// has no per-job outcomes to report in that case.
func (c *Campaign) waitAdaptive() *CampaignReport {
	rep, err := campaign.Run(c.ctx, c.pending, c.ccfg)
	report := &CampaignReport{
		Jobs:       make([]BatchResult, c.submits),
		PerClass:   map[string]int{},
		PerFailure: map[string]int{},
	}
	if err != nil {
		for i := range report.Jobs {
			br := BatchResult{Index: i, Err: err, FailureClass: failure.ClassOf(err).String()}
			if i < len(c.pending) {
				br.Name = c.pending[i].Name
			}
			report.Jobs[i] = br
		}
	} else {
		for _, jr := range rep.Results {
			report.Jobs[jr.Job.ID] = toBatchResult(jr)
		}
		report.Memo = rep.Memo
		report.Sched = rep.Sched
	}
	// Deliver the streaming channel late but completely: adaptive results
	// only exist after the barrier-phase run.
	go func() {
		for _, br := range report.Jobs {
			c.out <- br
		}
		close(c.out)
	}()
	for range c.out { // drain whatever no external consumer took
	}
	c.tally(report)
	return report
}

// tally fills the aggregate counters of a report whose Jobs are in place.
func (c *Campaign) tally(report *CampaignReport) {
	for _, br := range report.Jobs {
		if br.Attempts > 1 {
			report.Retried++
		}
		if br.Replayed {
			report.Replayed++
		}
		if br.Err != nil {
			report.Failed++
			report.PerFailure[br.FailureClass]++
			continue
		}
		report.Completed++
		if br.Skipped {
			report.Skipped++
		}
		if br.DegradedMode != "" {
			report.Degraded++
		}
		if br.Report.Vulnerable() {
			report.Flagged++
		}
		for _, f := range br.Report.Findings {
			if f.Vulnerable {
				report.PerClass[f.Class]++
			}
		}
	}
	report.Wall = time.Since(c.start)
	if secs := report.Wall.Seconds(); secs > 0 {
		report.JobsPerSecond = float64(len(report.Jobs)) / secs
	}
}

// toBatchResult converts an engine result to the public form.
func toBatchResult(jr campaign.JobResult) BatchResult {
	br := BatchResult{
		Index:        jr.Job.ID,
		Name:         jr.Job.Name,
		Err:          jr.Err,
		Skipped:      jr.Skipped,
		FailureClass: jr.FailureClass.String(),
		Attempts:     jr.Attempts,
		DegradedMode: jr.DegradedMode,
		Replayed:     jr.Replayed,
		Duration:     jr.Duration,
	}
	if jr.Err != nil {
		return br
	}
	res := jr.Result
	report := &Report{
		Coverage:      res.Coverage,
		AdaptiveSeeds: res.AdaptiveSeeds,
		Iterations:    res.Iterations,
		Custom:        res.Custom,
	}
	for _, class := range contractgen.Classes {
		report.Findings = append(report.Findings, Finding{
			Class:      class.String(),
			Vulnerable: res.Report.Vulnerable[class],
		})
	}
	br.Report = report
	return br
}
