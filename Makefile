# Developer entry points. `make verify` is the full pre-merge gate: the
# campaign engine is concurrent, so the race detector is part of the
# baseline, not an optional extra.

GO ?= go

.PHONY: build test race fuzz lint chaos verify

build:
	$(GO) build ./...

# Repo-specific lint gate: go vet plus wasai-lint (nondeterminism sources in
# the deterministic core packages, scanner/static oracle parity).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/wasai-lint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke runs of the native fuzz targets (decoders + ABI codec).
# Seed corpora live under */testdata/fuzz and always run as part of `test`.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzUint   -fuzztime=$(FUZZTIME) ./internal/leb128/
	$(GO) test -run=NONE -fuzz=FuzzInt    -fuzztime=$(FUZZTIME) ./internal/leb128/
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/wasm/
	$(GO) test -run=NONE -fuzz=FuzzDecodeTransfer -fuzztime=$(FUZZTIME) ./internal/abi/
	$(GO) test -run=NONE -fuzz=FuzzCFG    -fuzztime=$(FUZZTIME) ./internal/static/

# Resilience smoke: run a small campaign with 20% injected faults and
# retry-with-degradation, and require zero terminal failures plus unchanged
# verdicts on the un-faulted jobs (exit status is the assertion).
chaos:
	$(GO) run ./cmd/wasai-bench -exp chaos -fault-rate 0.2

verify: build lint chaos
	$(GO) test ./...
	$(GO) test -race ./...
