# Developer entry points. `make verify` is the full pre-merge gate: the
# campaign engine is concurrent, so the race detector is part of the
# baseline, not an optional extra.

GO ?= go

.PHONY: build test race fuzz lint chaos bench-regress bench-baseline incr fastvm profile verify

build:
	$(GO) build ./...

# Repo-specific lint gate: go vet plus wasai-lint (nondeterminism sources in
# the deterministic core packages, scanner/static oracle parity, error
# classification, ad-hoc caches outside internal/memo).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/wasai-lint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke runs of the native fuzz targets (decoders + ABI codec).
# Seed corpora live under */testdata/fuzz and always run as part of `test`.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzUint   -fuzztime=$(FUZZTIME) ./internal/leb128/
	$(GO) test -run=NONE -fuzz=FuzzInt    -fuzztime=$(FUZZTIME) ./internal/leb128/
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/wasm/
	$(GO) test -run=NONE -fuzz=FuzzDecodeTransfer -fuzztime=$(FUZZTIME) ./internal/abi/
	$(GO) test -run=NONE -fuzz=FuzzCFG    -fuzztime=$(FUZZTIME) ./internal/static/
	$(GO) test -run=NONE -fuzz=FuzzCanonicalize -fuzztime=$(FUZZTIME) ./internal/symbolic/
	$(GO) test -run=NONE -fuzz=FuzzSimplify -fuzztime=$(FUZZTIME) ./internal/symbolic/
	$(GO) test -run=NONE -fuzz=FuzzFastVM -fuzztime=$(FUZZTIME) ./internal/wasm/exec/

# Resilience smoke: run a small campaign with 20% injected faults and
# retry-with-degradation, and require zero terminal failures plus unchanged
# verdicts on the un-faulted jobs (exit status is the assertion).
chaos:
	$(GO) run ./cmd/wasai-bench -exp chaos -fault-rate 0.2

# Benchmark-regression gate: re-run the fixed two-leg workload, write
# BENCH_<date>.json, and compare against the committed BENCH_BASELINE.json —
# a digest change fails as a correctness regression, >10% more DPLL calls or
# wall-clock as a performance regression. After an intentional behaviour or
# performance change, regenerate the baseline with `make bench-baseline` and
# commit it.
bench-regress:
	$(GO) run ./cmd/wasai-bench -exp regress

bench-baseline:
	$(GO) run ./cmd/wasai-bench -exp regress -write-baseline

# Incremental-solver gate: campaign digests must be byte-identical with the
# prefix-sharing solver off and on at 1/4/8 workers, and the flip-family
# differential must show ≥30% fewer CDCL conflicts with full verdict/model
# agreement (exit status is the assertion).
incr:
	$(GO) run ./cmd/wasai-bench -exp incr

# Decoded-IR engine gate: campaign digests must be byte-identical with the
# fast VM off and on at 1/4/8 workers, and the direct-threaded engine must
# retire ≥2x the instructions/sec of the tree-walker on the hot workload
# with full result/fuel agreement (exit status is the assertion).
fastvm:
	$(GO) run ./cmd/wasai-bench -exp fastvm

# Write pprof profiles of the regress workload for solver-hotspot digging:
# `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) run ./cmd/wasai-bench -exp regress -cpuprofile cpu.pprof -memprofile mem.pprof

verify: build lint chaos bench-regress incr fastvm
	$(GO) test ./...
	$(GO) test -race ./...
