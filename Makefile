# Developer entry points. `make verify` is the full pre-merge gate: the
# campaign engine is concurrent, so the race detector is part of the
# baseline, not an optional extra.

GO ?= go

.PHONY: build test race fuzz lint chaos serve-chaos bench-regress bench-baseline incr fastvm verdict onchain adaptive profile verify

build:
	$(GO) build ./...

# Repo-specific lint gate: go vet plus wasai-lint (nondeterminism sources in
# the deterministic core packages, scanner/static oracle parity, error
# classification, ad-hoc caches outside internal/memo).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/wasai-lint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke runs of every native fuzz target, discovered with
# `go test -list 'Fuzz.*'` so new targets join automatically. Seed corpora
# live under */testdata/fuzz and always run as part of `test`.
FUZZTIME ?= 15s
fuzz:
	@set -e; for pkg in $$($(GO) list ./...); do \
		for t in $$($(GO) test -list 'Fuzz.*' $$pkg | grep '^Fuzz' || true); do \
			echo "=== $$t ($$pkg) ==="; \
			$(GO) test -run=NONE -fuzz="^$$t$$$$" -fuzztime=$(FUZZTIME) $$pkg; \
		done; \
	done

# Resilience smoke: run a small campaign with 20% injected faults and
# retry-with-degradation, and require zero terminal failures plus unchanged
# verdicts on the un-faulted jobs (exit status is the assertion).
chaos:
	$(GO) run ./cmd/wasai-bench -exp chaos -fault-rate 0.2

# Daemon resilience smoke: flood an in-process wasai-serve past its admission
# limits with multi-tenant fault-injected campaigns; excess submissions must
# shed with 429 + Retry-After, every tenant must get work admitted, and every
# admitted job's findings digest must equal an offline run of the same spec
# (exit status is the assertion).
serve-chaos:
	$(GO) run ./cmd/wasai-bench -exp servechaos -fault-rate 0.2

# Benchmark-regression gate: re-run the fixed two-leg workload, write
# BENCH_<date>.json, and compare against the committed BENCH_BASELINE.json —
# a digest change fails as a correctness regression, >10% more DPLL calls or
# wall-clock as a performance regression. After an intentional behaviour or
# performance change, regenerate the baseline with `make bench-baseline` and
# commit it.
bench-regress:
	$(GO) run ./cmd/wasai-bench -exp regress

bench-baseline:
	$(GO) run ./cmd/wasai-bench -exp regress -write-baseline

# Incremental-solver gate: campaign digests must be byte-identical with the
# prefix-sharing solver off and on at 1/4/8 workers, and the flip-family
# differential must show ≥30% fewer CDCL conflicts with full verdict/model
# agreement (exit status is the assertion).
incr:
	$(GO) run ./cmd/wasai-bench -exp incr

# Decoded-IR engine gate: campaign digests must be byte-identical with the
# fast VM off and on at 1/4/8 workers, and the direct-threaded engine must
# retire ≥2x the instructions/sec of the tree-walker on the hot workload
# with full result/fuel agreement (exit status is the assertion).
fastvm:
	$(GO) run ./cmd/wasai-bench -exp fastvm

# Verdict-engine gate: zero soundness violations in both directions against
# a dynamic campaign, ≥30% of the wild (contract, class) verdict matrix
# decided statically, and byte-identical findings digests with verdicts off
# and on at 1/4/8 workers (exit status is the assertion).
verdict:
	$(GO) run ./cmd/wasai-bench -exp verdict

# On-chain-data oracle gate: every injected-vulnerability fixture (both
# polarities of all oracle classes, plus intrinsic-free boilerplate)
# through full campaigns — perfect per-class precision/recall against the
# generator's ground truth, and byte-identical findings digests at 1/4/8
# workers (exit status is the assertion).
onchain:
	$(GO) run ./cmd/wasai-bench -exp onchain

# Adaptive-scheduling gate: under equal per-contract budgets the power
# schedule + fuel ledger must explore at least as many branches and score at
# least as many ground-truth findings as the static round-robin on every
# corpus (strictly more coverage somewhere), with byte-identical adaptive
# digests at 1/4/8 workers and across a journal kill+resume (exit status is
# the assertion).
adaptive:
	$(GO) run ./cmd/wasai-bench -exp adaptive

# Write pprof profiles of the regress workload for solver-hotspot digging:
# `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) run ./cmd/wasai-bench -exp regress -cpuprofile cpu.pprof -memprofile mem.pprof

verify: build lint chaos serve-chaos bench-regress incr fastvm verdict onchain adaptive
	$(GO) test ./...
	$(GO) test -race ./...
