package wasai

// bench_test.go regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index) as testing.B benchmarks,
// plus the ablation benches for the design choices DESIGN.md calls out.
// The dataset scale is reduced (same construction, fewer samples) so the
// suite completes in CI time; cmd/wasai-bench runs the full-size versions.
//
// Shape metrics (coverage ratios, F1 scores) are emitted via
// b.ReportMetric, so `go test -bench . -benchmem` shows the reproduced
// numbers next to the timing.

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/symbolic"
	"repro/internal/symexec"
	"repro/internal/wasm"
	"repro/internal/wasm/exec"
)

const benchScale = 0.02 // ~66 of the 3,340 ground-truth samples

// BenchmarkFigure3Coverage reproduces RQ1: cumulative distinct branches of
// WASAI vs EOSFuzzer on the same corpus. Reported metric: the final
// WASAI/EOSFuzzer coverage ratio (the paper reports ≈2x).
func BenchmarkFigure3Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.DefaultCoverageConfig()
		cfg.NumContracts = 12
		cfg.Seed = int64(i + 1)
		series, err := bench.EvaluateCoverage(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := func(s bench.CoverageSeries) float64 {
			return float64(s.Points[len(s.Points)-1].Branches)
		}
		if e := last(series[1]); e > 0 {
			b.ReportMetric(last(series[0])/e, "coverage-ratio")
		}
	}
}

// accuracyBench runs one tool over a dataset builder and reports total F1.
func accuracyBench(b *testing.B, build func(seed int64) (*bench.Dataset, error), tool bench.Tool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ds, err := build(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := bench.EvaluateAccuracy(ds, []bench.Tool{tool}, bench.DefaultEvalConfig())
		if err != nil {
			b.Fatal(err)
		}
		total := bench.Total(res[0].PerClass)
		b.ReportMetric(100*total.F1(), "F1-%")
		b.ReportMetric(100*total.Precision(), "P-%")
		b.ReportMetric(100*total.Recall(), "R-%")
	}
}

func buildTable4(seed int64) (*bench.Dataset, error) {
	return bench.BuildGroundTruth(bench.Table4Counts, bench.Options{Scale: benchScale, Seed: seed})
}

func buildTable5(seed int64) (*bench.Dataset, error) {
	ds, err := buildTable4(seed)
	if err != nil {
		return nil, err
	}
	return bench.Obfuscate(ds, seed)
}

func buildTable6(seed int64) (*bench.Dataset, error) {
	return bench.BuildVerification(bench.Table6Counts, bench.Options{Scale: benchScale, Seed: seed})
}

// BenchmarkTable4 rows: WASAI / EOSFuzzer / EOSAFE on the ground-truth set.
func BenchmarkTable4WASAI(b *testing.B)     { accuracyBench(b, buildTable4, bench.ToolWASAI) }
func BenchmarkTable4EOSFuzzer(b *testing.B) { accuracyBench(b, buildTable4, bench.ToolEOSFuzzer) }
func BenchmarkTable4EOSAFE(b *testing.B)    { accuracyBench(b, buildTable4, bench.ToolEOSAFE) }

// BenchmarkTable5 rows: the same set obfuscated (popcount + opaque recursion).
func BenchmarkTable5WASAI(b *testing.B)     { accuracyBench(b, buildTable5, bench.ToolWASAI) }
func BenchmarkTable5EOSFuzzer(b *testing.B) { accuracyBench(b, buildTable5, bench.ToolEOSFuzzer) }
func BenchmarkTable5EOSAFE(b *testing.B)    { accuracyBench(b, buildTable5, bench.ToolEOSAFE) }

// BenchmarkTable6 rows: complicated verification injected at action entries.
func BenchmarkTable6WASAI(b *testing.B)     { accuracyBench(b, buildTable6, bench.ToolWASAI) }
func BenchmarkTable6EOSFuzzer(b *testing.B) { accuracyBench(b, buildTable6, bench.ToolEOSFuzzer) }
func BenchmarkTable6EOSAFE(b *testing.B)    { accuracyBench(b, buildTable6, bench.ToolEOSAFE) }

// BenchmarkRQ4Wild reproduces the §4.4 study at reduced population size and
// reports the flagged fraction (the paper reports 71.3%).
func BenchmarkRQ4Wild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.DefaultWildConfig()
		cfg.NumContracts = 40
		cfg.Seed = int64(i + 1)
		res, err := bench.EvaluateWild(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(res.Flagged)/float64(res.Total), "flagged-%")
	}
}

// --- Ablation benches (design choices from DESIGN.md) -----------------------

// BenchmarkAblationFeedback compares branch coverage with and without the
// Symback feedback loop on a branch-guarded contract.
func BenchmarkAblationFeedback(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	spec := contractgen.RandomSpec(contractgen.ClassRollback, true, rng)
	c, err := contractgen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	run := func(disable bool, seed int64) int {
		f, err := fuzz.New(c.Module, c.ABI, fuzz.Config{
			Iterations: 120, SolverConflicts: 50_000, Seed: seed, DisableFeedback: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := f.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res.Coverage
	}
	for i := 0; i < b.N; i++ {
		with := run(false, int64(i+1))
		without := run(true, int64(i+1))
		if without > 0 {
			b.ReportMetric(float64(with)/float64(without), "coverage-gain")
		}
	}
}

// BenchmarkAblationDBG measures detection of a DB-dependent vulnerability
// with and without the database dependency graph.
func BenchmarkAblationDBG(b *testing.B) {
	spec := contractgen.Spec{
		Class: contractgen.ClassRollback, Vulnerable: true, DBDependent: true, Seed: 9,
	}
	c, err := contractgen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	detected := func(disable bool, seed int64) float64 {
		f, err := fuzz.New(c.Module, c.ABI, fuzz.Config{
			Iterations: 120, SolverConflicts: 50_000, Seed: seed, DisableDBG: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := f.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Vulnerable[contractgen.ClassRollback] {
			return 1
		}
		return 0
	}
	var withDBG, withoutDBG float64
	for i := 0; i < b.N; i++ {
		withDBG += detected(false, int64(i+1))
		withoutDBG += detected(true, int64(i+1))
	}
	b.ReportMetric(100*withDBG/float64(b.N), "dbg-detect-%")
	b.ReportMetric(100*withoutDBG/float64(b.N), "nodbg-detect-%")
}

// BenchmarkMemoryModel compares the trace-keyed byte-map memory model
// (§3.4.1) against the EOSAFE-style scan-all-items model on the same
// store/load workload.
func BenchmarkMemoryModel(b *testing.B) {
	const ops = 512
	b.Run("wasai-bytemap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := symbolic.NewCtx()
			m := symexec.NewMemory(ctx)
			v := ctx.Var("x", 64)
			for j := 0; j < ops; j++ {
				m.Store(uint32(j*8), 8, v)
			}
			for j := 0; j < ops; j++ {
				_ = m.Load(uint32(j*8), 8)
			}
		}
	})
	b.Run("eosafe-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := symbolic.NewCtx()
			m := symexec.NewNaiveMemory(ctx)
			v := ctx.Var("x", 64)
			for j := 0; j < ops; j++ {
				m.Store(uint32(j*8), 8, v)
			}
			for j := 0; j < ops; j++ {
				_ = m.Load(uint32(j*8), 8)
			}
		}
	})
}

// BenchmarkSolverFastPath compares the concrete-probing fast path against
// pure bit-blasting on typical fuzzing constraints.
func BenchmarkSolverFastPath(b *testing.B) {
	ctx := symbolic.NewCtx()
	x := ctx.Var("x", 64)
	y := ctx.Var("y", 64)
	constraints := []*symbolic.Expr{
		ctx.Eq(ctx.Add(x, ctx.Const(77, 64)), ctx.Const(123456, 64)),
		ctx.Ult(y, ctx.Const(1000, 64)),
	}
	b.Run("fastpath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := &symbolic.Solver{}
			if _, r := s.Solve(constraints); r != symbolic.Sat {
				b.Fatal("unsat")
			}
		}
	})
	b.Run("bitblast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := &symbolic.Solver{DisableFastPath: true}
			if _, r := s.Solve(constraints); r != symbolic.Sat {
				b.Fatal("unsat")
			}
		}
	})
}

// --- Micro benches over the substrates --------------------------------------

// BenchmarkInterpreter measures raw Wasm execution throughput (sum loop).
func BenchmarkInterpreter(b *testing.B) {
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	ti := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	m.Funcs = []uint32{ti}
	m.Code = []wasm.Code{{
		Locals: []wasm.LocalDecl{{Count: 2, Type: wasm.I64}},
		Body: []wasm.Instr{
			wasm.Block(), wasm.Loop(),
			wasm.LocalGet(1), wasm.LocalGet(0), wasm.Op0(wasm.OpI64GeU), wasm.BrIf(1),
			wasm.LocalGet(1), wasm.I64Const(1), wasm.Op0(wasm.OpI64Add), wasm.LocalSet(1),
			wasm.LocalGet(2), wasm.LocalGet(1), wasm.Op0(wasm.OpI64Add), wasm.LocalSet(2),
			wasm.Br(0), wasm.End(), wasm.End(),
			wasm.LocalGet(2), wasm.End(),
		},
	}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 0}}
	inst, err := exec.Instantiate(m, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := exec.NewVM(inst)
		if _, err := vm.Invoke("f", 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrument measures the bytecode-rewriting throughput.
func BenchmarkInstrument(b *testing.B) {
	c, err := contractgen.Generate(contractgen.Spec{Class: contractgen.ClassRollback, Vulnerable: true, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := instrumentOnce(c.Module); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndCampaign measures one full WASAI campaign.
func BenchmarkEndToEndCampaign(b *testing.B) {
	c, err := contractgen.Generate(contractgen.Spec{Class: contractgen.ClassFakeNotif, Vulnerable: true, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := AnalyzeModule(c.Module, c.ABI, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if f, _ := report.Class("Fake Notif"); !f.Vulnerable {
			b.Fatal("campaign missed the planted vulnerability")
		}
	}
}

// BenchmarkAblationInputInference ablates the §3.4.2 calling-convention
// input inference: without the Table-2 mapping from transaction payload to
// action arguments, flipped constraints cannot become seeds and guarded
// code stays unreached.
func BenchmarkAblationInputInference(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	spec := contractgen.RandomSpec(contractgen.ClassRollback, true, rng)
	spec.DBDependent = false
	c, err := contractgen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	detect := func(opaque bool, seed int64) (bool, int) {
		f, err := fuzz.New(c.Module, c.ABI, fuzz.Config{
			Iterations: 240, SolverConflicts: 50_000, Seed: seed, OpaqueInputs: opaque,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := f.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res.Report.Vulnerable[contractgen.ClassRollback], res.AdaptiveSeeds
	}
	var withHit, withoutHit float64
	for i := 0; i < b.N; i++ {
		if hit, _ := detect(false, int64(i+1)); hit {
			withHit++
		}
		if hit, seeds := detect(true, int64(i+1)); hit {
			withoutHit++
		} else if seeds != 0 {
			b.Fatalf("opaque replay still produced %d adaptive seeds", seeds)
		}
	}
	b.ReportMetric(100*withHit/float64(b.N), "inference-detect-%")
	b.ReportMetric(100*withoutHit/float64(b.N), "opaque-detect-%")
}
