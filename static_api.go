package wasai

import (
	"encoding/json"
	"fmt"

	"repro/internal/abi"
	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/static"
	"repro/internal/static/absint"
	"repro/internal/wasm"
)

// StaticCandidate is one oracle class's static candidate verdict.
type StaticCandidate struct {
	// Class is the vulnerability class name (same names as Finding.Class).
	Class string
	// Candidate reports whether the class is statically possible. False is
	// a proof the dynamic oracle cannot fire on this contract; true only
	// means the contract is worth fuzzing.
	Candidate bool
}

// StaticReport is the pre-execution analysis of one contract: candidate
// flags for the five vulnerability classes, the host APIs reachable from its
// exported entry points, and cost metrics for scheduling. It is computed
// from bytecode alone — no chain, no execution — and is what batch triage
// (BatchConfig.StaticTriage) consults.
type StaticReport struct {
	// Candidates holds one entry per vulnerability class, in the paper's
	// table order.
	Candidates []StaticCandidate
	// ReachableHostAPIs lists the host imports reachable from the
	// contract's exported functions, sorted.
	ReachableHostAPIs []string
	// TaintedSinks lists reachable host-API sinks that can observe
	// action-input data per the heuristic taint pass, sorted.
	TaintedSinks []string
	// Branches and Complexity total the reachable conditional branch sites
	// and cyclomatic complexity — the fuzzing cost estimate.
	Branches, Complexity int
	// Score is the triage priority (higher = fuzz first).
	Score int
}

// AnyCandidate reports whether any class is statically possible.
func (r *StaticReport) AnyCandidate() bool {
	for _, c := range r.Candidates {
		if c.Candidate {
			return true
		}
	}
	return false
}

// AnalyzeStatic runs the static pre-analysis over a contract binary: decode,
// validate, then internal/static's CFG + call-graph + reachability + taint
// pass. No execution happens; use it to triage a population before paying
// for Analyze, or let AnalyzeBatch do so via BatchConfig.StaticTriage.
func AnalyzeStatic(wasmBin []byte) (*StaticReport, error) {
	mod, err := wasm.Decode(wasmBin)
	if err != nil {
		return nil, fmt.Errorf("wasai: decode contract: %w", err)
	}
	if err := wasm.Validate(mod); err != nil {
		return nil, fmt.Errorf("wasai: validate contract: %w", err)
	}
	return AnalyzeStaticModule(mod)
}

// ClassVerdict is one oracle class's three-valued static verdict. Where
// StaticCandidate's boolean only separates "worth fuzzing" from "provably
// clean", a verdict adds the positive direction: "proven-positive" carries
// a replayable witness that the dynamic oracle must fire.
type ClassVerdict struct {
	// Class is the vulnerability class name (same names as Finding.Class).
	Class string
	// Verdict is "proven-negative", "proven-positive" or "unknown".
	Verdict string
	// Reason states what the prover established (or why it gave up).
	Reason string
	// Scenario, Action and Assumptions describe the witness behind a
	// proven-positive verdict: the harness scenario to replay, the ABI
	// action it targets (when class-relevant), and the input constraints
	// the witness path assumed. Empty otherwise.
	Scenario    string
	Action      string
	Assumptions []string
}

// VerdictReport is the abstract-interpretation analysis of one contract:
// a three-valued verdict per vulnerability class plus the prover's
// coverage facts. Like StaticReport it is computed from bytecode alone —
// no chain, no execution — and is what verdict triage
// (BatchConfig.Verdicts) consults.
type VerdictReport struct {
	// Verdicts holds one entry per vulnerability class, in the paper's
	// table order.
	Verdicts []ClassVerdict
	// DeadEdges counts conditional outcomes proven unreachable in any
	// harness execution (only under a complete cover).
	DeadEdges int
	// Complete reports that the prover enumerated every abstract path of
	// the universal cover.
	Complete bool
	// Paths is the number of abstract paths explored.
	Paths int
}

// AllProvenNegative reports whether every class is proven negative — the
// contract provably cannot trip any oracle, so fuzzing it is pure waste.
func (r *VerdictReport) AllProvenNegative() bool {
	for _, v := range r.Verdicts {
		if v.Verdict != absint.ProvenNegative.String() {
			return false
		}
	}
	return true
}

// AnyProvenPositive reports whether some class carries a positive proof.
func (r *VerdictReport) AnyProvenPositive() bool {
	for _, v := range r.Verdicts {
		if v.Verdict == absint.ProvenPositive.String() {
			return true
		}
	}
	return false
}

// AnalyzeVerdicts runs the abstract-interpretation verdict engine over a
// contract binary and its ABI (simplified EOSIO ABI JSON): decode,
// validate, then internal/static/absint's flow-sensitive interpretation of
// every harness scenario. No execution happens; verdicts are proofs about
// all executions the fuzzing harness can produce.
func AnalyzeVerdicts(wasmBin []byte, abiJSON []byte) (*VerdictReport, error) {
	mod, err := wasm.Decode(wasmBin)
	if err != nil {
		return nil, fmt.Errorf("wasai: decode contract: %w", err)
	}
	if err := wasm.Validate(mod); err != nil {
		return nil, fmt.Errorf("wasai: validate contract: %w", err)
	}
	var contractABI abi.ABI
	if err := json.Unmarshal(abiJSON, &contractABI); err != nil {
		return nil, fmt.Errorf("wasai: parse abi: %w", err)
	}
	return AnalyzeVerdictsModule(mod, &contractABI), nil
}

// AnalyzeVerdictsModule is AnalyzeVerdicts for an already-decoded module
// and ABI. It never fails: anything the prover cannot model degrades to
// "unknown" verdicts.
func AnalyzeVerdictsModule(mod *wasm.Module, contractABI *abi.ABI) *VerdictReport {
	rep := absint.Analyze(mod, actionNames(contractABI))
	out := &VerdictReport{
		DeadEdges: len(rep.DeadEdges),
		Complete:  rep.Complete,
		Paths:     rep.Paths,
	}
	for _, class := range contractgen.Classes {
		v := rep.Verdicts[class]
		cv := ClassVerdict{
			Class:   class.String(),
			Verdict: v.Kind.String(),
			Reason:  v.Reason,
		}
		if v.Witness != nil {
			cv.Scenario = v.Witness.Scenario
			cv.Action = v.Witness.Action
			cv.Assumptions = v.Witness.Assumptions
		}
		out.Verdicts = append(out.Verdicts, cv)
	}
	return out
}

// actionNames lists the ABI's action names in declaration order.
func actionNames(a *abi.ABI) []eos.Name {
	if a == nil {
		return nil
	}
	out := make([]eos.Name, 0, len(a.Actions))
	for _, act := range a.Actions {
		out = append(out, act.Name)
	}
	return out
}

// AnalyzeStaticModule is AnalyzeStatic for an already-decoded module.
func AnalyzeStaticModule(mod *wasm.Module) (*StaticReport, error) {
	rep, err := static.Analyze(mod)
	if err != nil {
		return nil, fmt.Errorf("wasai: static: %w", err)
	}
	out := &StaticReport{
		ReachableHostAPIs: rep.ReachableHostAPIs,
		TaintedSinks:      rep.TaintedSinks,
		Branches:          rep.Branches,
		Complexity:        rep.Complexity,
		Score:             rep.Score(),
	}
	for _, class := range contractgen.Classes {
		out.Candidates = append(out.Candidates, StaticCandidate{
			Class:     class.String(),
			Candidate: rep.Candidates[class],
		})
	}
	return out, nil
}
