package wasai

import (
	"fmt"

	"repro/internal/contractgen"
	"repro/internal/static"
	"repro/internal/wasm"
)

// StaticCandidate is one oracle class's static candidate verdict.
type StaticCandidate struct {
	// Class is the vulnerability class name (same names as Finding.Class).
	Class string
	// Candidate reports whether the class is statically possible. False is
	// a proof the dynamic oracle cannot fire on this contract; true only
	// means the contract is worth fuzzing.
	Candidate bool
}

// StaticReport is the pre-execution analysis of one contract: candidate
// flags for the five vulnerability classes, the host APIs reachable from its
// exported entry points, and cost metrics for scheduling. It is computed
// from bytecode alone — no chain, no execution — and is what batch triage
// (BatchConfig.StaticTriage) consults.
type StaticReport struct {
	// Candidates holds one entry per vulnerability class, in the paper's
	// table order.
	Candidates []StaticCandidate
	// ReachableHostAPIs lists the host imports reachable from the
	// contract's exported functions, sorted.
	ReachableHostAPIs []string
	// TaintedSinks lists reachable host-API sinks that can observe
	// action-input data per the heuristic taint pass, sorted.
	TaintedSinks []string
	// Branches and Complexity total the reachable conditional branch sites
	// and cyclomatic complexity — the fuzzing cost estimate.
	Branches, Complexity int
	// Score is the triage priority (higher = fuzz first).
	Score int
}

// AnyCandidate reports whether any class is statically possible.
func (r *StaticReport) AnyCandidate() bool {
	for _, c := range r.Candidates {
		if c.Candidate {
			return true
		}
	}
	return false
}

// AnalyzeStatic runs the static pre-analysis over a contract binary: decode,
// validate, then internal/static's CFG + call-graph + reachability + taint
// pass. No execution happens; use it to triage a population before paying
// for Analyze, or let AnalyzeBatch do so via BatchConfig.StaticTriage.
func AnalyzeStatic(wasmBin []byte) (*StaticReport, error) {
	mod, err := wasm.Decode(wasmBin)
	if err != nil {
		return nil, fmt.Errorf("wasai: decode contract: %w", err)
	}
	if err := wasm.Validate(mod); err != nil {
		return nil, fmt.Errorf("wasai: validate contract: %w", err)
	}
	return AnalyzeStaticModule(mod)
}

// AnalyzeStaticModule is AnalyzeStatic for an already-decoded module.
func AnalyzeStaticModule(mod *wasm.Module) (*StaticReport, error) {
	rep, err := static.Analyze(mod)
	if err != nil {
		return nil, fmt.Errorf("wasai: static: %w", err)
	}
	out := &StaticReport{
		ReachableHostAPIs: rep.ReachableHostAPIs,
		TaintedSinks:      rep.TaintedSinks,
		Branches:          rep.Branches,
		Complexity:        rep.Complexity,
		Score:             rep.Score(),
	}
	for _, class := range contractgen.Classes {
		out.Candidates = append(out.Candidates, StaticCandidate{
			Class:     class.String(),
			Candidate: rep.Candidates[class],
		})
	}
	return out, nil
}
