package wasai_test

import (
	"context"
	"fmt"
	"testing"

	wasai "repro"
	"repro/internal/contractgen"
	"repro/internal/wasm"
)

// TestAnalyzeStatic checks the public pre-analysis facade end to end: a
// generated vulnerable contract carries its class candidate, the trivial
// contract carries none.
func TestAnalyzeStatic(t *testing.T) {
	for i, class := range contractgen.Classes {
		c, err := contractgen.Generate(contractgen.Spec{
			Class: class, Vulnerable: true, Seed: int64(60 + i),
		})
		if err != nil {
			t.Fatalf("generate %s: %v", class, err)
		}
		bin, err := wasm.Encode(c.Module)
		if err != nil {
			t.Fatalf("encode %s: %v", class, err)
		}
		rep, err := wasai.AnalyzeStatic(bin)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		found := false
		for _, cand := range rep.Candidates {
			if cand.Class == class.String() {
				found = true
				if !cand.Candidate {
					t.Errorf("%s: vulnerable contract lacks its candidate flag", class)
				}
			}
		}
		if !found {
			t.Errorf("%s: class missing from candidates: %+v", class, rep.Candidates)
		}
		if !rep.AnyCandidate() {
			t.Errorf("%s: AnyCandidate() = false", class)
		}
	}

	trivial := contractgen.Trivial()
	rep, err := wasai.AnalyzeStaticModule(trivial.Module)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AnyCandidate() {
		t.Errorf("trivial contract has candidates: %+v", rep.Candidates)
	}
}

// TestBatchStaticTriage checks the batch facade: with triage enabled the
// trivial contracts are skipped, and every per-class verdict equals the
// triage-disabled run's.
func TestBatchStaticTriage(t *testing.T) {
	var jobs []wasai.BatchJob
	for i, class := range contractgen.Classes {
		c, err := contractgen.Generate(contractgen.Spec{
			Class: class, Vulnerable: i%2 == 0, Seed: int64(80 + i),
		})
		if err != nil {
			t.Fatalf("generate %s: %v", class, err)
		}
		jobs = append(jobs, wasai.BatchJob{
			Name: fmt.Sprintf("%s-%d", class, i), Module: c.Module, ABI: c.ABI,
		})
	}
	for i := 0; i < 3; i++ {
		c := contractgen.Trivial()
		jobs = append(jobs, wasai.BatchJob{
			Name: fmt.Sprintf("trivial-%d", i), Module: c.Module, ABI: c.ABI,
		})
	}

	cfg := wasai.DefaultBatchConfig()
	cfg.Iterations = 30
	cfg.Workers = 4
	base, err := wasai.AnalyzeBatch(context.Background(), jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StaticTriage = true
	triaged, err := wasai.AnalyzeBatch(context.Background(), jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if triaged.Skipped != 3 {
		t.Errorf("skipped %d jobs, want the 3 trivial contracts", triaged.Skipped)
	}
	if base.Skipped != 0 {
		t.Errorf("baseline skipped %d jobs with triage disabled", base.Skipped)
	}
	for i := range base.Jobs {
		b, tr := base.Jobs[i], triaged.Jobs[i]
		if (b.Err == nil) != (tr.Err == nil) {
			t.Errorf("job %d (%s): error mismatch: %v vs %v", i, b.Name, b.Err, tr.Err)
			continue
		}
		if b.Err != nil {
			continue
		}
		for j, f := range b.Report.Findings {
			if got := tr.Report.Findings[j]; got.Vulnerable != f.Vulnerable {
				t.Errorf("job %d (%s) class %s: triage verdict %v, baseline %v",
					i, b.Name, f.Class, got.Vulnerable, f.Vulnerable)
			}
		}
	}
}
