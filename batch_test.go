package wasai

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/contractgen"
	wasmpkg "repro/internal/wasm"
)

// batchContracts generates a deterministic mixed batch; even-indexed jobs
// are submitted as raw bytes (the Analyze form), odd-indexed ones as
// decoded modules (the AnalyzeModule form), so both intake paths are
// differentially tested.
func batchContracts(tb testing.TB, n int) ([]*contractgen.Contract, []BatchJob) {
	tb.Helper()
	rng := rand.New(rand.NewSource(77))
	contracts := make([]*contractgen.Contract, n)
	jobs := make([]BatchJob, n)
	for i := 0; i < n; i++ {
		class := contractgen.Classes[i%len(contractgen.Classes)]
		c, err := contractgen.Generate(contractgen.RandomSpec(class, i%2 == 0, rng))
		if err != nil {
			tb.Fatalf("generate %d: %v", i, err)
		}
		contracts[i] = c
		jobs[i] = BatchJob{Name: fmt.Sprintf("c%02d", i)}
		if i%2 == 0 {
			bin, err := wasmpkg.Encode(c.Module)
			if err != nil {
				tb.Fatalf("encode %d: %v", i, err)
			}
			abiJSON, err := json.Marshal(c.ABI)
			if err != nil {
				tb.Fatalf("marshal abi %d: %v", i, err)
			}
			jobs[i].Wasm, jobs[i].ABIJSON = bin, abiJSON
		} else {
			jobs[i].Module, jobs[i].ABI = c.Module, c.ABI
		}
	}
	return contracts, jobs
}

// TestAnalyzeBatchMatchesSerial is the facade's differential test: the
// batch findings must equal a serial loop of Analyze over the same
// contracts with the documented seed derivation (base + index) — for every
// contract and every vulnerability class.
func TestAnalyzeBatchMatchesSerial(t *testing.T) {
	const n = 12
	contracts, jobs := batchContracts(t, n)

	cfg := DefaultBatchConfig()
	cfg.Iterations = 40
	cfg.Seed = 5
	cfg.Workers = 4
	report, err := AnalyzeBatch(context.Background(), jobs, cfg)
	if err != nil {
		t.Fatalf("AnalyzeBatch: %v", err)
	}
	if len(report.Jobs) != n || report.Completed != n || report.Failed != 0 {
		t.Fatalf("jobs=%d completed=%d failed=%d, want %d/%d/0",
			len(report.Jobs), report.Completed, report.Failed, n, n)
	}

	serialPerClass := map[string]int{}
	for i, c := range contracts {
		scfg := cfg.Config
		scfg.Seed = cfg.Seed + int64(i)
		serial, err := AnalyzeModule(c.Module, c.ABI, scfg)
		if err != nil {
			t.Fatalf("serial %d: %v", i, err)
		}
		batch := report.Jobs[i]
		if batch.Err != nil {
			t.Fatalf("batch job %d: %v", i, batch.Err)
		}
		if !reflect.DeepEqual(batch.Report.Findings, serial.Findings) {
			t.Errorf("contract %d findings diverge:\nbatch:  %+v\nserial: %+v",
				i, batch.Report.Findings, serial.Findings)
		}
		if batch.Report.Coverage != serial.Coverage {
			t.Errorf("contract %d coverage: batch %d, serial %d", i, batch.Report.Coverage, serial.Coverage)
		}
		if batch.Report.AdaptiveSeeds != serial.AdaptiveSeeds {
			t.Errorf("contract %d adaptive seeds: batch %d, serial %d",
				i, batch.Report.AdaptiveSeeds, serial.AdaptiveSeeds)
		}
		if batch.Report.Iterations != serial.Iterations {
			t.Errorf("contract %d iterations: batch %d, serial %d",
				i, batch.Report.Iterations, serial.Iterations)
		}
		for _, f := range serial.Findings {
			if f.Vulnerable {
				serialPerClass[f.Class]++
			}
		}
	}
	if !reflect.DeepEqual(report.PerClass, serialPerClass) {
		t.Errorf("per-class aggregate diverges: batch %v, serial %v", report.PerClass, serialPerClass)
	}
}

// TestCampaignStreaming drives the streaming form: results arrive on the
// channel while jobs are still being submitted, and Wait reassembles
// submission order regardless of completion order.
func TestCampaignStreaming(t *testing.T) {
	const n = 8
	_, jobs := batchContracts(t, n)
	cfg := DefaultBatchConfig()
	cfg.Iterations = 25
	cfg.Workers = 4

	c, err := NewCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := range jobs {
			if err := c.Submit(jobs[i]); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}
	}()
	streamed := 0
	for range c.Results() {
		streamed++
		if streamed == n {
			break // leave the tail for Wait to drain
		}
	}
	report := c.Wait()
	if len(report.Jobs) != n {
		t.Fatalf("got %d jobs, want %d", len(report.Jobs), n)
	}
	for i, br := range report.Jobs {
		if br.Index != i {
			t.Fatalf("slot %d holds index %d: Wait must restore submission order", i, br.Index)
		}
		if br.Name != fmt.Sprintf("c%02d", i) {
			t.Fatalf("slot %d holds %q", i, br.Name)
		}
		if br.Err != nil {
			t.Fatalf("job %d: %v", i, br.Err)
		}
	}
}

// TestCampaignUnconsumedResults: never reading Results must not deadlock
// Submit or Wait, even with a batch far larger than the queue.
func TestCampaignUnconsumedResults(t *testing.T) {
	const n = 10
	_, jobs := batchContracts(t, n)
	cfg := DefaultBatchConfig()
	cfg.Iterations = 10
	cfg.Workers = 2
	cfg.QueueDepth = 1

	c, err := NewCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if err := c.Submit(jobs[i]); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	report := c.Wait()
	if report.Completed != n {
		t.Fatalf("completed=%d, want %d", report.Completed, n)
	}
}

// TestAnalyzeBatchRejectsGarbage: a malformed submission fails the whole
// call eagerly (before occupying a worker), identifying the job.
func TestAnalyzeBatchRejectsGarbage(t *testing.T) {
	_, jobs := batchContracts(t, 2)
	bad := BatchJob{Name: "garbage", Wasm: []byte("not wasm"), ABIJSON: []byte("{}")}
	_, err := AnalyzeBatch(context.Background(), append(jobs[:1], bad), DefaultBatchConfig())
	if err == nil {
		t.Fatal("want decode error")
	}
}

// TestBatchJobConfigOverride: a job carrying its own Config (including an
// explicit seed) must reproduce a standalone AnalyzeModule run with that
// exact configuration, regardless of the batch defaults.
func TestBatchJobConfigOverride(t *testing.T) {
	contracts, jobs := batchContracts(t, 3)
	override := DefaultConfig()
	override.Iterations = 30
	override.Seed = 4242
	jobs[1].Config = &override

	cfg := DefaultBatchConfig()
	cfg.Iterations = 15
	cfg.Seed = 9
	report, err := AnalyzeBatch(context.Background(), jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyzeModule(contracts[1].Module, contracts[1].ABI, override)
	if err != nil {
		t.Fatal(err)
	}
	got := report.Jobs[1]
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if got.Report.Iterations != 30 {
		t.Fatalf("override iterations not applied: ran %d", got.Report.Iterations)
	}
	if !reflect.DeepEqual(got.Report.Findings, want.Findings) {
		t.Errorf("override job diverges from standalone run:\nbatch:      %+v\nstandalone: %+v",
			got.Report.Findings, want.Findings)
	}
}

// TestBatchStoreDirWarmStart: BatchConfig.StoreDir persists solver
// verdicts to the disk store, so a second batch over the same contracts
// (with a cold in-memory cache) answers queries from disk — with findings
// identical to a store-less run.
func TestBatchStoreDirWarmStart(t *testing.T) {
	const n = 6
	_, jobs := batchContracts(t, n)

	cfg := DefaultBatchConfig()
	cfg.Iterations = 40
	cfg.Seed = 5
	cfg.Workers = 2

	plain, err := AnalyzeBatch(context.Background(), jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Memo stays off: StoreDir alone must imply a (private) cache, so each
	// batch starts with cold memory tiers and only the disk is shared.
	cfg.StoreDir = t.TempDir()
	cold, err := AnalyzeBatch(context.Background(), jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := AnalyzeBatch(context.Background(), jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := range plain.Jobs {
		for _, r := range []*CampaignReport{cold, warm} {
			if !reflect.DeepEqual(r.Jobs[i].Report.Findings, plain.Jobs[i].Report.Findings) {
				t.Errorf("contract %d: findings diverge with StoreDir set:\n got: %+v\nwant: %+v",
					i, r.Jobs[i].Report.Findings, plain.Jobs[i].Report.Findings)
			}
		}
	}
	if cold.Memo == nil || warm.Memo == nil {
		t.Fatalf("StoreDir did not imply memoization: cold=%v warm=%v", cold.Memo, warm.Memo)
	}
	if warm.Memo.StoreHits == 0 {
		t.Errorf("warm batch answered nothing from the disk store: %+v", warm.Memo)
	}
}
