// Package faultinject is the deterministic chaos layer for the campaign
// engine: a seeded Plan decides — as a pure function of (job, attempt) —
// whether a job's attempt is faulted, with which fault kind, and at which
// call site the fault fires. The retry-with-degradation paths of
// internal/campaign are themselves exercised under `make verify` by
// injecting faults Wasabi/chaos-style into the chain host API and the
// constraint-solver pool, instead of waiting for a real solver blowup or
// worker crash to happen in production.
//
// Everything is deterministic: no wall clock, no process-seeded
// randomness. The same Plan faults the same jobs the same way at any
// worker count, so fault-injected campaigns keep the engine's
// byte-identical-results guarantee.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/failure"
)

// Kind enumerates the injectable fault kinds.
type Kind int

// The fault kinds and the layer each fires in.
const (
	// KindHostError makes one chain host-API call return an injected
	// error: the transaction traps and the fault escalates to job level
	// as a trap failure.
	KindHostError Kind = iota + 1
	// KindHostPanic makes one chain host-API call panic, exercising the
	// engine's panic isolation (failure class: panic).
	KindHostPanic
	// KindFuelStarve models a resource guard tripping mid-execution: a
	// host-API call fails with an oom-guard-classified budget error.
	KindFuelStarve
	// KindSolverStarve starves the SAT budget: the solver pool aborts
	// with a solver-exhausted failure once the fault fires.
	KindSolverStarve
)

// AllKinds lists every fault kind in canonical order.
var AllKinds = []Kind{KindHostError, KindHostPanic, KindFuelStarve, KindSolverStarve}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindHostError:
		return "host-error"
	case KindHostPanic:
		return "host-panic"
	case KindFuelStarve:
		return "fuel-starve"
	case KindSolverStarve:
		return "solver-starve"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// FailureClass is the failure-taxonomy class an injected fault of this
// kind escalates as (the fault-matrix tests assert exactly this mapping).
func (k Kind) FailureClass() failure.Class {
	switch k {
	case KindHostError:
		return failure.Trap
	case KindHostPanic:
		return failure.Panic
	case KindFuelStarve:
		return failure.OomGuard
	case KindSolverStarve:
		return failure.SolverExhausted
	default:
		return failure.Unclassified
	}
}

// ErrInjected is the sentinel every injected fault wraps: the fuzzer
// escalates a transaction whose error chains to ErrInjected into a job
// failure (ordinary contract reverts never do).
var ErrInjected = errors.New("faultinject: injected fault")

// Plan is a seeded fault-injection campaign policy.
type Plan struct {
	// Seed drives every injection decision.
	Seed int64
	// Rate is the fraction of (job, attempt) pairs that are faulted,
	// in [0, 1].
	Rate float64
	// Kinds restricts the injectable kinds (nil or empty = AllKinds).
	Kinds []Kind
	// Attempts makes attempts 0..Attempts-1 eligible for injection
	// (0 defaults to 1: only a job's first attempt is faulted, so every
	// retry can demonstrate recovery). Use a large value to fault every
	// attempt and force terminal failures.
	Attempts int
}

func (p *Plan) attempts() int {
	if p.Attempts <= 0 {
		return 1
	}
	return p.Attempts
}

func (p *Plan) kinds() []Kind {
	if len(p.Kinds) == 0 {
		return AllKinds
	}
	return p.Kinds
}

// For returns the injector for one job attempt, or nil when the plan
// leaves that attempt unfaulted. The decision is a pure function of
// (Seed, jobID, attempt).
func (p *Plan) For(jobID, attempt int) *Injector {
	if p == nil || attempt >= p.attempts() {
		return nil
	}
	h := mix(uint64(p.Seed), uint64(jobID), uint64(attempt))
	// Top 53 bits as a uniform fraction in [0, 1).
	if float64(h>>11)/(1<<53) >= p.Rate {
		return nil
	}
	kinds := p.kinds()
	kind := kinds[int(mix(h, 1, 0)%uint64(len(kinds)))]
	// Fire within the first few call sites so even short campaigns hit it.
	fireAt := mix(h, 2, 0) % 4
	return &Injector{kind: kind, fireAt: fireAt}
}

// mix is splitmix64 over the concatenated words — a tiny, deterministic,
// well-distributed hash (no math/rand, so injectors are allocation-free
// and trivially worker-count invariant).
func mix(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Injector injects the planned fault for one job attempt. The zero of
// *Injector (nil) injects nothing; every hook is nil-safe so call sites
// need no guards.
type Injector struct {
	kind    Kind
	fireAt  uint64
	hostN   atomic.Uint64
	solverN atomic.Uint64
}

// Kind exposes the planned fault kind (tests assert against it).
func (in *Injector) Kind() Kind {
	if in == nil {
		return 0
	}
	return in.kind
}

// HostCall is consulted by the chain before dispatching each host-API
// call. For host-layer kinds it fires exactly once, at the planned call
// index: KindHostError and KindFuelStarve return a classified error
// (trapping the transaction), KindHostPanic panics.
func (in *Injector) HostCall(api string) error {
	if in == nil {
		return nil
	}
	switch in.kind {
	case KindHostError, KindHostPanic, KindFuelStarve:
	default:
		return nil
	}
	if in.hostN.Add(1)-1 != in.fireAt {
		return nil
	}
	switch in.kind {
	case KindHostPanic:
		// Panic with a classified error value: the VM converts panics to
		// traps but preserves error chains, so ErrInjected (and the panic
		// class) survive into the transaction receipt for escalation.
		panic(failure.Wrap(failure.Panic,
			fmt.Errorf("faultinject: injected panic in host API %s: %w", api, ErrInjected)))
	case KindFuelStarve:
		return failure.Wrap(failure.OomGuard,
			fmt.Errorf("faultinject: injected budget starvation in host API %s: %w", api, ErrInjected))
	default:
		return failure.Wrap(failure.Trap,
			fmt.Errorf("faultinject: injected error in host API %s: %w", api, ErrInjected))
	}
}

// SolverFault is consulted by the symbolic solver pool once per query.
// For KindSolverStarve it fires at the planned query index and keeps
// firing, modelling a starved SAT budget that no further query can get
// through; the pool aborts with the classified error.
func (in *Injector) SolverFault() error {
	if in == nil || in.kind != KindSolverStarve {
		return nil
	}
	if in.solverN.Add(1)-1 < in.fireAt {
		return nil
	}
	return failure.Wrap(failure.SolverExhausted,
		fmt.Errorf("faultinject: injected solver budget starvation: %w", ErrInjected))
}
