package faultinject

import (
	"errors"
	"testing"

	"repro/internal/failure"
)

func TestPlanDeterminism(t *testing.T) {
	p := &Plan{Seed: 42, Rate: 0.3}
	for job := 0; job < 200; job++ {
		a := p.For(job, 0)
		b := p.For(job, 0)
		if (a == nil) != (b == nil) {
			t.Fatalf("job %d: decision not deterministic", job)
		}
		if a != nil && (a.kind != b.kind || a.fireAt != b.fireAt) {
			t.Fatalf("job %d: injector not deterministic: %v/%d vs %v/%d",
				job, a.kind, a.fireAt, b.kind, b.fireAt)
		}
	}
}

func TestPlanRate(t *testing.T) {
	p := &Plan{Seed: 7, Rate: 0.2}
	faulted := 0
	for job := 0; job < 1000; job++ {
		if p.For(job, 0) != nil {
			faulted++
		}
	}
	// 20% ± generous slack for a 1000-sample hash draw.
	if faulted < 120 || faulted > 280 {
		t.Fatalf("rate 0.2 faulted %d/1000 jobs", faulted)
	}
	if (&Plan{Seed: 7, Rate: 0}).For(3, 0) != nil {
		t.Fatal("rate 0 must never fault")
	}
	if (&Plan{Seed: 7, Rate: 1}).For(3, 0) == nil {
		t.Fatal("rate 1 must always fault")
	}
}

func TestPlanAttemptEligibility(t *testing.T) {
	p := &Plan{Seed: 1, Rate: 1}
	if p.For(0, 0) == nil {
		t.Fatal("attempt 0 must be eligible by default")
	}
	if p.For(0, 1) != nil {
		t.Fatal("attempt 1 must be ineligible with default Attempts")
	}
	p.Attempts = 3
	if p.For(0, 2) == nil {
		t.Fatal("attempt 2 must be eligible with Attempts=3")
	}
}

func TestHostCallFiresOnceAtPlannedIndex(t *testing.T) {
	in := &Injector{kind: KindHostError, fireAt: 2}
	for i := 0; i < 10; i++ {
		err := in.HostCall("read_action_data")
		if (i == 2) != (err != nil) {
			t.Fatalf("call %d: err=%v", i, err)
		}
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not chain to ErrInjected: %v", err)
			}
			if got := failure.ClassOf(err); got != failure.Trap {
				t.Fatalf("host error class = %v, want Trap", got)
			}
		}
	}
}

func TestFuelStarveClass(t *testing.T) {
	in := &Injector{kind: KindFuelStarve, fireAt: 0}
	err := in.HostCall("db_store_i64")
	if err == nil || failure.ClassOf(err) != failure.OomGuard {
		t.Fatalf("fuel-starve: got %v, want oom-guard classified error", err)
	}
}

func TestHostPanicFires(t *testing.T) {
	in := &Injector{kind: KindHostPanic, fireAt: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("KindHostPanic did not panic")
		}
	}()
	_ = in.HostCall("require_auth")
}

func TestSolverFaultKeepsFiring(t *testing.T) {
	in := &Injector{kind: KindSolverStarve, fireAt: 1}
	if err := in.SolverFault(); err != nil {
		t.Fatalf("query 0 fired early: %v", err)
	}
	for i := 1; i < 4; i++ {
		err := in.SolverFault()
		if err == nil {
			t.Fatalf("query %d did not fire", i)
		}
		if failure.ClassOf(err) != failure.SolverExhausted {
			t.Fatalf("solver fault class = %v", failure.ClassOf(err))
		}
	}
	// Host hook of a solver injector is inert.
	if err := in.HostCall("prints"); err != nil {
		t.Fatalf("solver injector fired on host call: %v", err)
	}
}

func TestNilSafety(t *testing.T) {
	var in *Injector
	if err := in.HostCall("x"); err != nil {
		t.Fatal("nil injector host call")
	}
	if err := in.SolverFault(); err != nil {
		t.Fatal("nil injector solver fault")
	}
	var p *Plan
	if p.For(0, 0) != nil {
		t.Fatal("nil plan")
	}
}

func TestKindMapping(t *testing.T) {
	want := map[Kind]failure.Class{
		KindHostError:    failure.Trap,
		KindHostPanic:    failure.Panic,
		KindFuelStarve:   failure.OomGuard,
		KindSolverStarve: failure.SolverExhausted,
	}
	for k, cl := range want {
		if k.FailureClass() != cl {
			t.Errorf("%v maps to %v, want %v", k, k.FailureClass(), cl)
		}
	}
}
