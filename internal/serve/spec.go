package serve

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/faultinject"
	"repro/internal/fuzz"
	"repro/internal/memo"
)

// JobSpec is one analysis campaign as submitted over the wire: a
// deterministic description of a generated contract population plus the
// engine configuration to fuzz it under. Everything that influences
// findings is in the spec (population seed, budgets, fault plan), so the
// same spec always produces the same digests — which is what lets a
// restarted daemon prove it resumed correctly, and lets clients dedupe
// retried submissions by comparing results.
type JobSpec struct {
	// Tenant names the submitting principal for admission control;
	// empty is the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
	// Name labels the job in listings (optional, no semantics).
	Name string `json:"name,omitempty"`
	// Contracts is the wild-population size; Seed draws it (and derives
	// the per-contract fuzzing seeds).
	Contracts int   `json:"contracts"`
	Seed      int64 `json:"seed"`
	// Iterations is the per-contract fuzzing budget (0 = the paper's 240).
	Iterations int `json:"iterations,omitempty"`
	// Workers sizes the campaign's worker pool (0 = GOMAXPROCS).
	// Findings are identical for any value.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS is the per-contract deadline in milliseconds (0 = none);
	// MaxAttempts enables retry-with-degradation for contracts that blow
	// it (or fail transiently).
	TimeoutMS   int64 `json:"timeout_ms,omitempty"`
	MaxAttempts int   `json:"max_attempts,omitempty"`
	// FaultRate injects seeded faults into that fraction of first
	// attempts (see internal/faultinject) — the chaos-testing surface.
	FaultRate float64 `json:"fault_rate,omitempty"`
	// Engine toggles; all digest-neutral.
	Memo         string `json:"memo,omitempty"`
	Incremental  bool   `json:"incremental,omitempty"`
	FastVM       bool   `json:"fastvm,omitempty"`
	Verdicts     bool   `json:"verdicts,omitempty"`
	StaticTriage bool   `json:"static_triage,omitempty"`
	// Adaptive turns on the coverage-driven scheduling layer (power
	// schedules + campaign fuel ledger). Not digest-neutral against a
	// non-adaptive run — it changes which inputs are fuzzed — but still
	// deterministic: the same spec yields the same adaptive digest at any
	// worker count and across daemon restarts.
	Adaptive bool `json:"adaptive,omitempty"`
}

// Validate rejects specs the daemon cannot run deterministically or that
// would exhaust it.
func (s *JobSpec) Validate() error {
	if s.Contracts <= 0 {
		return fmt.Errorf("spec: contracts must be positive") //wasai:rawerr request validation, surfaced as HTTP 400
	}
	if s.Contracts > 10_000 {
		return fmt.Errorf("spec: contracts capped at 10000") //wasai:rawerr request validation, surfaced as HTTP 400
	}
	if s.FaultRate < 0 || s.FaultRate > 1 {
		return fmt.Errorf("spec: fault_rate must be in [0,1]") //wasai:rawerr request validation, surfaced as HTTP 400
	}
	if _, err := memo.ParseMode(s.Memo); err != nil {
		return err
	}
	return nil
}

// BuildJobs draws the spec's population. It is a pure function of the
// spec: the daemon, a resumed daemon, and an offline reference run all
// rebuild the identical job list.
func BuildJobs(spec JobSpec) ([]campaign.Job, error) {
	iters := spec.Iterations
	if iters == 0 {
		iters = 240
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	pop, err := contractgen.GenerateWild(contractgen.DefaultWildOptions(spec.Contracts), rng)
	if err != nil {
		return nil, fmt.Errorf("serve: population: %w", err)
	}
	jobs := make([]campaign.Job, len(pop))
	for i := range pop {
		jobs[i] = campaign.Job{
			Name:   pop[i].Name.String(),
			Module: pop[i].Contract.Module,
			ABI:    pop[i].Contract.ABI,
			Config: fuzz.Config{
				Iterations:      iters,
				SolverConflicts: 50_000,
				Seed:            spec.Seed + int64(i),
			},
		}
	}
	return jobs, nil
}

// CampaignConfig maps the spec onto the engine configuration. journal is
// the job's checkpoint path ("" = unjournaled, for offline reference
// runs); cache, when non-nil, overrides the memo scope (the daemon passes
// its process-wide cache so jobs share tiers and the attached disk store).
func CampaignConfig(spec JobSpec, journal string, resume bool, cache *memo.Cache) campaign.Config {
	mode, _ := memo.ParseMode(spec.Memo) // Validate already vetted it
	cfg := campaign.Config{
		Workers:      spec.Workers,
		BaseSeed:     spec.Seed,
		JobTimeout:   time.Duration(spec.TimeoutMS) * time.Millisecond,
		Retry:        campaign.RetryPolicy{MaxAttempts: spec.MaxAttempts},
		Journal:      journal,
		Resume:       resume,
		Memo:         mode,
		Incremental:  spec.Incremental,
		FastVM:       spec.FastVM,
		Verdicts:     spec.Verdicts,
		StaticTriage: spec.StaticTriage,
		Adaptive:     spec.Adaptive,
	}
	if cache != nil && mode != memo.ModeOff {
		cfg.MemoCache = cache
	}
	if spec.FaultRate > 0 {
		cfg.Faults = &faultinject.Plan{Seed: spec.Seed, Rate: spec.FaultRate}
	}
	return cfg
}

// RunSpec executes a spec end to end and returns the campaign report.
// This one function is the daemon's runner, the crash test's reference
// leg and the servechaos bench's oracle — all three must agree byte-for-
// byte on digests, so they share the spec→campaign mapping by
// construction.
func RunSpec(ctx context.Context, spec JobSpec, journal string, resume bool, cache *memo.Cache) (*campaign.Report, error) {
	jobs, err := BuildJobs(spec)
	if err != nil {
		return nil, err
	}
	return campaign.Run(ctx, jobs, CampaignConfig(spec, journal, resume, cache))
}
