package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/wal"
)

// state.go is the daemon's durable job registry: a crash-safe WAL (see
// internal/wal) holding one "submit" record per accepted job and one
// "done" record per finished one. A job whose submit record has no done
// record is, by definition, interrupted work — after a crash or SIGKILL
// the restarted daemon re-queues exactly those jobs and resumes their
// per-job campaign journals, converging on the digests an uninterrupted
// daemon would have produced.
//
// Durability contract: the submit record is fsynced before the HTTP 202
// leaves the daemon, so an accepted job can never be forgotten; done
// records are fsynced as written, so a completed job is never re-run on
// restart. The WAL rotates once enough done records accumulate, keeping
// unfinished jobs' submits plus a bounded tail of completed history.

// Job statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusFailed    = "failed"
)

// stateMeta is the registry WAL's header blob.
type stateMeta struct {
	Magic string `json:"magic"`
}

const stateMagic = "wasai-serve/1"

// stateRecord is one registry WAL record. Kind "submit" carries the
// spec; kind "done" carries the outcome (digests never contain newlines
// after JSON escaping, so they ride the line-framed WAL verbatim).
type stateRecord struct {
	Kind string   `json:"kind"`
	ID   int      `json:"id"`
	Spec *JobSpec `json:"spec,omitempty"`
	// Done fields.
	Err            string `json:"err,omitempty"`
	FindingsDigest string `json:"findings_digest,omitempty"`
	StateDigest    string `json:"state_digest,omitempty"`
	Completed      int    `json:"completed,omitempty"`
	Failed         int    `json:"failed,omitempty"`
	Flagged        int    `json:"flagged,omitempty"`
	Replayed       int    `json:"replayed,omitempty"`
}

// JobState is one job's registry entry.
type JobState struct {
	ID     int     `json:"id"`
	Spec   JobSpec `json:"spec"`
	Status string  `json:"status"`
	// Resumed marks a job re-queued by a daemon restart (its campaign
	// journal replays completed contracts instead of re-fuzzing them).
	Resumed bool `json:"resumed,omitempty"`
	// Outcome of a finished job.
	Err            string `json:"err,omitempty"`
	FindingsDigest string `json:"findings_digest,omitempty"`
	StateDigest    string `json:"state_digest,omitempty"`
	Completed      int    `json:"completed,omitempty"`
	Failed         int    `json:"failed,omitempty"`
	Flagged        int    `json:"flagged,omitempty"`
	Replayed       int    `json:"replayed,omitempty"`
}

// Finished reports whether the job reached a terminal status.
func (j *JobState) Finished() bool {
	return j.Status == StatusCompleted || j.Status == StatusFailed
}

// rotateEvery bounds registry growth: after this many done records the
// WAL is rewritten, keeping unfinished submits and the freshest
// completed history.
const rotateEvery = 256

// keepCompleted is how many finished jobs survive a rotation (older
// outcomes disappear from /jobs listings after a restart; their
// campaign journals remain on disk).
const keepCompleted = 64

// registry is the in-memory view over the WAL. All methods are
// mutex-serialized; WAL appends happen under the lock so record order
// matches state order.
type registry struct {
	mu        sync.Mutex
	log       *wal.Log
	jobs      map[int]*JobState
	nextID    int
	doneSince int // done records appended since the last rotation
}

// openRegistry opens (or creates) the registry WAL under dir and
// replays it. Returned pending IDs are the interrupted jobs, in
// submission order — the restart's work queue.
func openRegistry(dir string) (*registry, []int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: state dir: %w", err)
	}
	meta, err := json.Marshal(stateMeta{Magic: stateMagic})
	if err != nil {
		return nil, nil, fmt.Errorf("serve: state: %w", err)
	}
	path := filepath.Join(dir, "serve.wal")
	// Sync every record: submissions and completions are rare next to
	// solver work, and each must survive the instant it is acknowledged.
	opts := wal.Options{SyncEvery: 1, Meta: meta}
	log, replay, err := wal.Open(path, opts)
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("serve: state: %w", err)
		}
		log, err = wal.Create(path, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: state: %w", err)
		}
		return &registry{log: log, jobs: map[int]*JobState{}}, nil, nil
	}
	if replay.Meta != nil {
		var m stateMeta
		if err := json.Unmarshal(replay.Meta, &m); err != nil || m.Magic != stateMagic {
			log.Close()
			return nil, nil, fmt.Errorf("serve: state: %s is not a wasai-serve registry", path) //wasai:rawerr startup validation
		}
	}
	r := &registry{log: log, jobs: map[int]*JobState{}}
	for _, payload := range replay.Records {
		var rec stateRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			continue // CRC-valid but foreign payload; skip, never guess
		}
		switch rec.Kind {
		case "submit":
			if rec.Spec == nil {
				continue
			}
			r.jobs[rec.ID] = &JobState{ID: rec.ID, Spec: *rec.Spec, Status: StatusQueued}
			if rec.ID >= r.nextID {
				r.nextID = rec.ID + 1
			}
		case "done":
			j, ok := r.jobs[rec.ID]
			if !ok {
				continue // rotation dropped the submit; nothing to show
			}
			applyDone(j, &rec)
		}
	}
	var pending []int
	for id, j := range r.jobs {
		if !j.Finished() {
			j.Resumed = true
			pending = append(pending, id)
		}
	}
	sort.Ints(pending)
	return r, pending, nil
}

func applyDone(j *JobState, rec *stateRecord) {
	j.Err = rec.Err
	j.FindingsDigest = rec.FindingsDigest
	j.StateDigest = rec.StateDigest
	j.Completed, j.Failed = rec.Completed, rec.Failed
	j.Flagged, j.Replayed = rec.Flagged, rec.Replayed
	if rec.Err != "" {
		j.Status = StatusFailed
	} else {
		j.Status = StatusCompleted
	}
}

// submit durably registers a new job and returns its ID. The WAL append
// is fsynced (SyncEvery=1) before this returns, so the 202 the caller
// sends is a real promise.
func (r *registry) submit(spec JobSpec) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextID
	rec := stateRecord{Kind: "submit", ID: id, Spec: &spec}
	b, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("serve: state: %w", err)
	}
	if err := r.log.Append(b); err != nil {
		return 0, fmt.Errorf("serve: state: %w", err)
	}
	r.nextID++
	r.jobs[id] = &JobState{ID: id, Spec: spec, Status: StatusQueued}
	return id, nil
}

// markRunning flips a job to running (memory-only: "running" is not an
// outcome; after a crash it correctly degrades back to queued).
func (r *registry) markRunning(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.jobs[id]; ok && !j.Finished() {
		j.Status = StatusRunning
	}
}

// finish durably records a job's outcome and rotates the WAL when the
// completed history has grown enough.
func (r *registry) finish(id int, rec stateRecord) error {
	rec.Kind, rec.ID = "done", id
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return fmt.Errorf("serve: state: finish of unknown job %d", id) //wasai:rawerr internal invariant
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: state: %w", err)
	}
	if err := r.log.Append(b); err != nil {
		return fmt.Errorf("serve: state: %w", err)
	}
	applyDone(j, &rec)
	r.doneSince++
	if r.doneSince >= rotateEvery {
		r.rotateLocked()
	}
	return nil
}

// rotateLocked rewrites the WAL: submits of unfinished jobs, then
// submit+done pairs of the keepCompleted most recent finished jobs.
// Best-effort — a failed rotation leaves the old (valid) generation in
// place and the daemon running.
func (r *registry) rotateLocked() {
	var ids []int
	for id := range r.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var finished []int
	for _, id := range ids {
		if r.jobs[id].Finished() {
			finished = append(finished, id)
		}
	}
	if drop := len(finished) - keepCompleted; drop > 0 {
		for _, id := range finished[:drop] {
			delete(r.jobs, id)
		}
		finished = finished[drop:]
	}
	var keep [][]byte
	appendRec := func(rec stateRecord) bool {
		b, err := json.Marshal(rec)
		if err != nil {
			return false
		}
		keep = append(keep, b)
		return true
	}
	for _, id := range ids {
		j, ok := r.jobs[id]
		if !ok {
			continue // dropped above
		}
		spec := j.Spec
		if !appendRec(stateRecord{Kind: "submit", ID: id, Spec: &spec}) {
			return
		}
		if j.Finished() {
			if !appendRec(stateRecord{
				Kind: "done", ID: id, Err: j.Err,
				FindingsDigest: j.FindingsDigest, StateDigest: j.StateDigest,
				Completed: j.Completed, Failed: j.Failed,
				Flagged: j.Flagged, Replayed: j.Replayed,
			}) {
				return
			}
		}
	}
	meta, err := json.Marshal(stateMeta{Magic: stateMagic})
	if err != nil {
		return
	}
	if err := r.log.Rotate(meta, keep); err != nil {
		return
	}
	r.doneSince = 0
}

// get returns a copy of one job's state.
func (r *registry) get(id int) (JobState, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return JobState{}, false
	}
	return *j, true
}

// list returns copies of every known job, by ID.
func (r *registry) list() []JobState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobState, 0, len(r.jobs))
	for _, j := range r.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// counts tallies statuses for /stats and admission control.
func (r *registry) counts() (queued, running, completed, failed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.jobs {
		switch j.Status {
		case StatusQueued:
			queued++
		case StatusRunning:
			running++
		case StatusCompleted:
			completed++
		case StatusFailed:
			failed++
		}
	}
	return
}

// walStats snapshots the registry WAL counters.
func (r *registry) walStats() wal.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.Stats()
}

// close syncs and closes the WAL.
func (r *registry) close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.Close()
}
