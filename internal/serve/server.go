// Package serve is the crash-safe analysis daemon: a long-running HTTP
// service that accepts WASAI campaign jobs, runs them on the campaign
// engine, and survives being killed at any instant. Three layers give it
// that property:
//
//   - a WAL-backed job registry (state.go): accepted jobs are fsynced
//     before the 202 response, finished jobs before they are reported, so
//     a SIGKILL can lose neither — a restarted daemon re-queues exactly
//     the interrupted jobs;
//   - per-job campaign journals: each running job checkpoints completed
//     contracts to its own crash-safe journal, so a resumed job replays
//     finished work and re-fuzzes only what was in flight — its final
//     digests are byte-identical to an uninterrupted run's;
//   - a durable memo store (internal/store, optional): solver verdicts
//     persist across restarts and across processes, so the resumed
//     daemon is also warm.
//
// Admission control is multi-tenant: per-tenant queue-depth and
// concurrency limits shed excess load with 429 + Retry-After while
// admitted jobs proceed untouched. A cancelled run context drains
// gracefully: no new admissions (503), running jobs finish, then the
// registry closes.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/memo"
	"repro/internal/store"
	"repro/internal/wal"
)

// Limits is the admission-control policy.
type Limits struct {
	// MaxRunning caps concurrently running jobs across all tenants
	// (0 = 2). Each job is itself a parallel campaign, so this stays
	// small.
	MaxRunning int
	// TenantMaxRunning caps one tenant's concurrent jobs (0 = 1).
	TenantMaxRunning int
	// TenantMaxQueued caps one tenant's waiting jobs; beyond it the
	// daemon sheds with 429 (0 = 8).
	TenantMaxQueued int
	// RetryAfter is the hint returned with 429 responses (0 = 5s).
	RetryAfter time.Duration
}

func (l Limits) maxRunning() int {
	if l.MaxRunning > 0 {
		return l.MaxRunning
	}
	return 2
}

func (l Limits) tenantMaxRunning() int {
	if l.TenantMaxRunning > 0 {
		return l.TenantMaxRunning
	}
	return 1
}

func (l Limits) tenantMaxQueued() int {
	if l.TenantMaxQueued > 0 {
		return l.TenantMaxQueued
	}
	return 8
}

func (l Limits) retryAfter() time.Duration {
	if l.RetryAfter > 0 {
		return l.RetryAfter
	}
	return 5 * time.Second
}

// Config configures a Server.
type Config struct {
	// DataDir holds the registry WAL and the per-job campaign journals.
	DataDir string
	// Limits is the admission policy.
	Limits Limits
	// StoreDir, when non-empty, attaches a durable memo store (shared
	// with any other process pointed at the same directory).
	StoreDir string
	// StoreMaxBytes is the store's eviction budget (0 = store default).
	StoreMaxBytes int64
	// JournalSync is the per-job campaign journals' fsync policy
	// (campaign.Config.JournalSync; 0 = the WAL default).
	JournalSync int
}

// Server is the daemon. Create with New, serve Handler over HTTP, and
// call Run with the process's lifetime context; cancelling that context
// drains and shuts down.
type Server struct {
	cfg   Config
	reg   *registry
	cache *memo.Cache  // process-wide shared cache for Memo="shared" jobs
	disk  *store.Store // nil unless StoreDir is set

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []int          // queued job IDs, FIFO
	queued   map[string]int // per-tenant queued counts
	running  map[string]int // per-tenant running counts
	runTotal int
	draining bool

	shed atomic.Int64 // submissions rejected with 429
}

// New opens the registry (recovering any interrupted jobs into the
// queue) and the optional durable store.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: Config.DataDir is required") //wasai:rawerr config validation
	}
	reg, pending, err := openRegistry(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		reg.close()
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		cache:   memo.New(),
		queued:  map[string]int{},
		running: map[string]int{},
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.StoreDir != "" {
		d, err := store.OpenShared(store.Options{Dir: cfg.StoreDir, MaxBytes: cfg.StoreMaxBytes})
		if err != nil {
			reg.close()
			return nil, err
		}
		s.disk = d
		s.cache.AttachDisk(d)
	}
	for _, id := range pending {
		j, ok := reg.get(id)
		if !ok {
			continue
		}
		s.pending = append(s.pending, id)
		s.queued[j.Spec.Tenant]++
	}
	return s, nil
}

// Run is the scheduler loop: it admits queued jobs into free slots until
// ctx is cancelled, then drains running jobs and closes the registry.
// Call it once; it returns after the drain completes.
func (s *Server) Run(ctx context.Context) error {
	stop := make(chan struct{})
	go func() {
		<-ctx.Done()
		s.mu.Lock()
		s.draining = true
		s.cond.Broadcast()
		s.mu.Unlock()
		close(stop)
	}()

	var jobs sync.WaitGroup
	for {
		s.mu.Lock()
		id, tenant, ok := s.nextLocked()
		for !ok && !s.draining {
			s.cond.Wait()
			id, tenant, ok = s.nextLocked()
		}
		if !ok { // draining with nothing runnable
			s.mu.Unlock()
			break
		}
		s.running[tenant]++
		s.runTotal++
		s.mu.Unlock()

		jobs.Add(1)
		go func(id int, tenant string) {
			defer jobs.Done()
			s.runOne(ctx, id)
			s.mu.Lock()
			s.running[tenant]--
			s.runTotal--
			s.cond.Broadcast()
			s.mu.Unlock()
		}(id, tenant)
	}
	jobs.Wait() // graceful drain: in-flight jobs checkpoint to completion or die with ctx
	<-stop
	return s.reg.close()
}

// nextLocked picks the first queued job whose tenant and the global pool
// both have a free slot. FIFO within the admissible set.
func (s *Server) nextLocked() (int, string, bool) {
	if s.draining || s.runTotal >= s.cfg.Limits.maxRunning() {
		return 0, "", false
	}
	for i := 0; i < len(s.pending); {
		id := s.pending[i]
		j, ok := s.reg.get(id)
		if !ok {
			// Stale entry (rotation only drops finished jobs, so this
			// should be unreachable): remove it and keep scanning —
			// returning here would park the caller in cond.Wait with
			// runnable jobs still behind the stale one.
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			continue
		}
		if s.running[j.Spec.Tenant] >= s.cfg.Limits.tenantMaxRunning() {
			i++
			continue
		}
		s.pending = append(s.pending[:i], s.pending[i+1:]...)
		s.queued[j.Spec.Tenant]--
		return id, j.Spec.Tenant, true
	}
	return 0, "", false
}

// journalPath is job id's campaign checkpoint file.
func (s *Server) journalPath(id int) string {
	return filepath.Join(s.cfg.DataDir, "jobs", fmt.Sprintf("%d.wal", id))
}

// runOne executes one job: resume-or-start its campaign journal, run the
// spec, durably record the outcome. The job context is the daemon's run
// context — a drain lets the campaign finish; a killed process leaves
// the journal, which is the point.
func (s *Server) runOne(ctx context.Context, id int) {
	j, ok := s.reg.get(id)
	if !ok {
		return
	}
	s.reg.markRunning(id)
	// Always resume: a fresh job has no journal file (opened as fresh),
	// a restarted one replays its completed contracts.
	cfg := CampaignConfig(j.Spec, s.journalPath(id), true, s.cache)
	cfg.JournalSync = s.cfg.JournalSync
	jobs, err := BuildJobs(j.Spec)
	var rec stateRecord
	if err == nil {
		var rep *campaign.Report
		rep, err = campaign.Run(ctx, jobs, cfg)
		if err == nil {
			rec = stateRecord{
				FindingsDigest: rep.FindingsDigest(),
				StateDigest:    rep.StateDigest(),
				Completed:      rep.Completed,
				Failed:         rep.Failed,
				Flagged:        rep.Flagged,
				Replayed:       rep.Replayed,
			}
		}
	}
	if err != nil {
		if ctx.Err() != nil {
			// Killed by the drain, not by the job: leave it queued-on-disk
			// so the next daemon run resumes it. No done record.
			return
		}
		rec = stateRecord{Err: err.Error()}
	}
	s.reg.finish(id, rec)
}

// StatsReport is the /stats payload.
type StatsReport struct {
	Queued    int  `json:"queued"`
	Running   int  `json:"running"`
	Completed int  `json:"completed"`
	Failed    int  `json:"failed"`
	Draining  bool `json:"draining"`
	// Shed counts submissions rejected by admission control (429).
	Shed int64 `json:"shed"`
	// Memo is the process-wide cache's counters (solver hits saved, disk
	// tier traffic); Store the durable store's own view; Wal the registry
	// WAL's.
	Memo  memo.Stats   `json:"memo"`
	Store *store.Stats `json:"store,omitempty"`
	Wal   wal.Stats    `json:"wal"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /jobs        submit a JobSpec  → 202 {"id": n}
//	GET  /jobs        list job states
//	GET  /jobs/{id}   one job's state (digests once finished)
//	GET  /healthz     200 while the process lives
//	GET  /readyz      200 while accepting, 503 while draining
//	GET  /stats       StatsReport
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.reg.list())
	case http.MethodPost:
		s.handleSubmit(w, r)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if err := spec.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if s.queued[spec.Tenant] >= s.cfg.Limits.tenantMaxQueued() {
		s.shed.Add(1)
		s.mu.Unlock()
		// Admission control: shed, don't queue unboundedly. Retry-After
		// is a static policy hint, not a measurement.
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.Limits.retryAfter()/time.Second)))
		http.Error(w, fmt.Sprintf("tenant %q queue full", spec.Tenant), http.StatusTooManyRequests)
		return
	}
	// Reserve the queue slot before the (synced) WAL append so a burst
	// cannot overshoot the limit, then enqueue.
	s.queued[spec.Tenant]++
	s.mu.Unlock()

	id, err := s.reg.submit(spec)
	if err != nil {
		s.mu.Lock()
		s.queued[spec.Tenant]--
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, id)
	s.cond.Broadcast()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]int{"id": id})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	j, ok := s.reg.get(id)
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	queued, running, completed, failed := s.reg.counts()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	rep := StatsReport{
		Queued:    queued,
		Running:   running,
		Completed: completed,
		Failed:    failed,
		Draining:  draining,
		Shed:      s.shed.Load(),
		Memo:      s.cache.Snapshot(),
		Wal:       s.reg.walStats(),
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		rep.Store = &ds
	}
	writeJSON(w, http.StatusOK, rep)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
