package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestAdmissionSaturation floods one tenant past its queue limit and
// checks the daemon's overload behaviour: excess submissions shed with
// 429 + Retry-After, while every admitted job still completes with
// digests byte-identical to an offline run of the same spec. The specs
// carry 20% fault injection with retry-with-degradation, so shedding is
// proven not to interact with the chaos path either.
func TestAdmissionSaturation(t *testing.T) {
	dir := t.TempDir()
	retryAfter := 3 * time.Second
	s, err := New(Config{
		DataDir: dir,
		Limits: Limits{
			MaxRunning:       1,
			TenantMaxRunning: 1,
			TenantMaxQueued:  2,
			RetryAfter:       retryAfter,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The scheduler starts only after the burst: admission decisions are
	// then a pure function of the queue limits, not of how fast jobs
	// happen to drain.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mkSpec := func(i int) JobSpec {
		return JobSpec{
			Tenant:      "flood",
			Name:        fmt.Sprintf("sat-%d", i),
			Contracts:   5,
			Seed:        100 + int64(i),
			Iterations:  40,
			FaultRate:   0.2,
			MaxAttempts: 3,
			Memo:        "shared",
		}
	}

	// Burst submissions back-to-back: with a queue depth of 2 and one
	// running slot, most of the burst must shed.
	const burst = 10
	admitted := map[int]JobSpec{} // job ID -> spec
	shed := 0
	for i := 0; i < burst; i++ {
		spec := mkSpec(i)
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var out map[string]int
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			admitted[out["id"]] = spec
		case http.StatusTooManyRequests:
			shed++
			if got := resp.Header.Get("Retry-After"); got != "3" {
				t.Errorf("Retry-After = %q, want \"3\"", got)
			}
		default:
			t.Fatalf("submission %d: unexpected status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if shed == 0 {
		t.Fatal("no submission was shed; saturation never engaged")
	}
	if len(admitted) == 0 {
		t.Fatal("every submission was shed; admission control over-rejects")
	}
	if len(admitted)+shed != burst {
		t.Fatalf("admitted %d + shed %d != %d", len(admitted), shed, burst)
	}
	// With no scheduler draining, exactly TenantMaxQueued jobs fit.
	if len(admitted) != 2 {
		t.Fatalf("admitted %d jobs, want exactly the queue depth (2)", len(admitted))
	}

	// Now run the admitted jobs to completion.
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx) }()

	// Every admitted job completes, and shedding perturbed none of them:
	// digests equal an offline reference run of the identical spec
	// (fault injection is a pure function of the spec's seed, so the
	// reference reproduces the faulted campaign exactly).
	for id, spec := range admitted {
		st := waitFinished(t, ts.URL, id, 120*time.Second)
		if st.Status != StatusCompleted {
			t.Fatalf("admitted job %d finished as %q (err %q)", id, st.Status, st.Err)
		}
		ref, err := RunSpec(context.Background(), spec, "", false, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.FindingsDigest != ref.FindingsDigest() {
			t.Errorf("job %d (%s): digest diverged under saturation:\n got: %q\nwant: %q",
				id, spec.Name, st.FindingsDigest, ref.FindingsDigest())
		}
	}

	// /stats accounts for the shed submissions.
	var stats StatsReport
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Shed != int64(shed) {
		t.Errorf("stats.Shed = %d, want %d", stats.Shed, shed)
	}

	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestAdmissionTenantIsolation: one tenant saturating its queue must not
// block another tenant's admission.
func TestAdmissionTenantIsolation(t *testing.T) {
	s, err := New(Config{
		DataDir: t.TempDir(),
		Limits:  Limits{MaxRunning: 2, TenantMaxRunning: 1, TenantMaxQueued: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No scheduler: everything stays queued, so queue occupancy is exact.
	defer s.reg.close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(tenant string) int {
		b, _ := json.Marshal(JobSpec{Tenant: tenant, Contracts: 2, Seed: 1})
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("a"); got != http.StatusAccepted {
		t.Fatalf("tenant a first submit = %d", got)
	}
	if got := post("a"); got != http.StatusTooManyRequests {
		t.Fatalf("tenant a second submit = %d, want 429", got)
	}
	if got := post("b"); got != http.StatusAccepted {
		t.Fatalf("tenant b submit = %d, want 202 (a's saturation must not shed b)", got)
	}
}
