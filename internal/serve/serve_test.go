package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"
)

func TestRegistryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, pending, err := openRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh registry has pending jobs: %v", pending)
	}
	spec := JobSpec{Tenant: "t1", Contracts: 4, Seed: 9}
	id0, err := r.submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := r.submit(JobSpec{Tenant: "t2", Contracts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids = %d, %d; want 0, 1", id0, id1)
	}
	if err := r.finish(id0, stateRecord{FindingsDigest: "d0", StateDigest: "s0", Completed: 4}); err != nil {
		t.Fatal(err)
	}
	r.close()

	// Reopen: the finished job keeps its outcome, the unfinished one is
	// the pending (interrupted) work.
	r2, pending, err := openRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.close()
	if len(pending) != 1 || pending[0] != id1 {
		t.Fatalf("pending = %v, want [%d]", pending, id1)
	}
	j0, ok := r2.get(id0)
	if !ok || j0.Status != StatusCompleted || j0.FindingsDigest != "d0" || j0.Completed != 4 {
		t.Fatalf("job 0 after reopen: %+v", j0)
	}
	j1, ok := r2.get(id1)
	if !ok || j1.Status != StatusQueued || !j1.Resumed {
		t.Fatalf("job 1 after reopen: %+v", j1)
	}
	if next, err := r2.submit(spec); err != nil || next != 2 {
		t.Fatalf("next id after reopen = %d, %v; want 2", next, err)
	}
}

func TestRegistryRotation(t *testing.T) {
	dir := t.TempDir()
	r, _, err := openRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := rotateEvery + keepCompleted/2
	for i := 0; i < n; i++ {
		id, err := r.submit(JobSpec{Contracts: 1, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.finish(id, stateRecord{FindingsDigest: "d", Completed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// One unfinished job riding along.
	last, err := r.submit(JobSpec{Contracts: 1, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	if st := r.walStats(); st.Rotations == 0 || st.Gen < 2 {
		t.Fatalf("registry never rotated: %+v", st)
	}
	r.close()

	r2, pending, err := openRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.close()
	if len(pending) != 1 || pending[0] != last {
		t.Fatalf("pending after rotation = %v, want [%d]", pending, last)
	}
	// The compaction kept keepCompleted finished jobs at rotation time
	// (plus whatever finished since), and IDs keep counting monotonically
	// past the dropped ones.
	_, _, completed, _ := r2.counts()
	if max := keepCompleted + (n - rotateEvery); completed > max {
		t.Errorf("completed after rotation = %d, want <= %d", completed, max)
	}
	if completed >= n {
		t.Errorf("rotation compacted nothing: %d completed jobs survive", completed)
	}
	if id, err := r2.submit(JobSpec{Contracts: 1, Seed: 1}); err != nil || id != last+1 {
		t.Fatalf("next id after rotation = %d, %v; want %d", id, err, last+1)
	}
}

func TestSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		spec JobSpec
		ok   bool
	}{
		{JobSpec{Contracts: 4, Seed: 1}, true},
		{JobSpec{Contracts: 0}, false},
		{JobSpec{Contracts: 20_000}, false},
		{JobSpec{Contracts: 4, FaultRate: 1.5}, false},
		{JobSpec{Contracts: 4, Memo: "banana"}, false},
		{JobSpec{Contracts: 4, Memo: "shared", FaultRate: 0.2}, true},
	} {
		if err := tc.spec.Validate(); (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.spec, err, tc.ok)
		}
	}
}

// TestServerEndToEnd drives the full HTTP surface in-process: submit,
// poll to completion, digests match an offline reference run of the
// same spec.
func TestServerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, StoreDir: filepath.Join(dir, "store")})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}

	spec := JobSpec{Tenant: "t1", Name: "e2e", Contracts: 4, Seed: 11, Iterations: 30, Memo: "shared"}
	id := submitJob(t, ts.URL, spec)
	st := waitFinished(t, ts.URL, id, 60*time.Second)
	if st.Status != StatusCompleted {
		t.Fatalf("job finished as %q (err %q)", st.Status, st.Err)
	}

	ref, err := RunSpec(context.Background(), spec, "", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.FindingsDigest != ref.FindingsDigest() || st.StateDigest != ref.StateDigest() {
		t.Errorf("daemon digests diverge from reference:\n got: %q / %q\nwant: %q / %q",
			st.FindingsDigest, st.StateDigest, ref.FindingsDigest(), ref.StateDigest())
	}

	// /stats reflects the completed job and the attached store.
	var stats StatsReport
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Completed != 1 || stats.Store == nil {
		t.Errorf("stats = %+v", stats)
	}

	// Drain: readyz flips to 503, Run returns cleanly.
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run: %v", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while drained = %d, want 503", resp.StatusCode)
	}
	// The job's outcome survived on disk.
	r2, pending, err := openRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.close()
	if len(pending) != 0 {
		t.Errorf("drained daemon left pending jobs: %v", pending)
	}
	if j, ok := r2.get(id); !ok || j.FindingsDigest != st.FindingsDigest {
		t.Errorf("outcome lost across restart: %+v", j)
	}
}

func TestSubmitValidationAndNotFound(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.reg.close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(`{"contracts":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/jobs/99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
}

// --- HTTP test helpers ------------------------------------------------------

func submitJob(t *testing.T, base string, spec JobSpec) int {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["id"]
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func waitFinished(t *testing.T, base string, id int, timeout time.Duration) JobState {
	t.Helper()
	deadline := time.Now().Add(timeout) //wasai:nondet test polling deadline
	for {
		var st JobState
		getJSON(t, fmt.Sprintf("%s/jobs/%d", base, id), &st)
		if st.Finished() {
			return st
		}
		if time.Now().After(deadline) { //wasai:nondet test polling deadline
			t.Fatalf("job %d not finished after %v: %+v", id, timeout, st)
		}
		time.Sleep(10 * time.Millisecond) //wasai:nondet test polling
	}
}
