package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// crash_test.go is the daemon's tentpole e2e: build the real wasai-serve
// binary, SIGKILL it mid-campaign, restart it on the same data
// directory, and require the resumed job's digests to be byte-identical
// to an uninterrupted run's — at 1, 4 and 8 campaign workers.

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// serveBinary builds cmd/wasai-serve once per test process.
func serveBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "wasai-serve-bin")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "wasai-serve")
		cmd := exec.Command("go", "build", "-o", buildBin, "repro/cmd/wasai-serve")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// startServe launches the daemon on an ephemeral port and waits for it
// to come up. It returns the process and its base URL.
func startServe(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(dataDir, "addr")
	os.Remove(addrFile)
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-data", dataDir,
		"-store", filepath.Join(dataDir, "store"),
		"-journal-sync", "1", // every record: the kill window must be on disk
	)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second) //wasai:nondet test startup deadline
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			url := "http://" + string(b)
			resp, err := http.Get(url + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd, url
				}
			}
		}
		if time.Now().After(deadline) { //wasai:nondet test startup deadline
			cmd.Process.Kill()
			t.Fatal("wasai-serve did not come up within 30s")
		}
		time.Sleep(10 * time.Millisecond) //wasai:nondet test polling
	}
}

// journalLines counts newline-framed records currently on disk in job
// id's campaign journal (header included).
func journalLines(dataDir string, id int) int {
	b, err := os.ReadFile(filepath.Join(dataDir, "jobs", fmt.Sprintf("%d.wal", id)))
	if err != nil {
		return 0
	}
	return bytes.Count(b, []byte("\n"))
}

func postSpec(t *testing.T, url string, spec JobSpec) int {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["id"]
}

func TestKillRestartDigestIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := serveBinary(t)

	const contracts = 12
	mkSpec := func(workers int) JobSpec {
		return JobSpec{
			Tenant:     "crash",
			Name:       fmt.Sprintf("kill-w%d", workers),
			Contracts:  contracts,
			Seed:       21,
			Iterations: 60,
			Workers:    workers,
			Memo:       "shared",
		}
	}
	// The digest is worker-count invariant, so one reference serves all
	// three worker counts — that invariance is itself under test here.
	ref, err := RunSpec(context.Background(), mkSpec(1), "", false, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			spec := mkSpec(workers)
			// The kill must land mid-campaign: after some contracts are
			// journaled, before the job finishes. If the campaign outruns
			// the killer, retry on a fresh data dir.
			for attempt := 0; attempt < 4; attempt++ {
				if killed := killRestartOnce(t, bin, spec, ref.FindingsDigest(), ref.StateDigest()); killed {
					return
				}
				t.Logf("attempt %d: campaign finished before the kill landed; retrying", attempt)
			}
			t.Fatal("could not land a mid-campaign kill in 4 attempts")
		})
	}
}

// killRestartOnce runs one kill+restart cycle. It returns false (without
// failing the test) when the kill landed too late to interrupt anything.
func killRestartOnce(t *testing.T, bin string, spec JobSpec, wantFindings, wantState string) bool {
	t.Helper()
	dataDir := t.TempDir()
	cmd, url := startServe(t, bin, dataDir)
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	id := postSpec(t, url, spec)

	// Poll the job's campaign journal and SIGKILL — no warning, no
	// flush — once at least two contracts are durably recorded.
	deadline := time.Now().Add(60 * time.Second) //wasai:nondet test deadline
	for {
		lines := journalLines(dataDir, id)
		if lines >= 3 { // header + >=2 contract records
			break
		}
		if time.Now().After(deadline) { //wasai:nondet test deadline
			t.Fatalf("journal never grew (has %d lines)", lines)
		}
		time.Sleep(2 * time.Millisecond) //wasai:nondet test polling
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart on the same data directory: the registry must re-queue the
	// interrupted job and its campaign journal must resume.
	cmd2, url2 := startServe(t, bin, dataDir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	st := waitFinished(t, url2, id, 120*time.Second)
	if st.Status != StatusCompleted {
		t.Fatalf("resumed job finished as %q (err %q)", st.Status, st.Err)
	}
	if !st.Resumed {
		// The whole campaign completed and recorded its outcome before
		// the kill: nothing was interrupted, so this cycle proves
		// nothing. Signal the caller to retry.
		return false
	}
	if st.Replayed == 0 {
		t.Fatal("resumed job replayed nothing from its journal")
	}
	if st.Replayed >= spec.Contracts {
		return false // journal was already complete; kill landed too late
	}
	if st.FindingsDigest != wantFindings {
		t.Errorf("FindingsDigest diverged after SIGKILL+restart:\n got: %q\nwant: %q", st.FindingsDigest, wantFindings)
	}
	if st.StateDigest != wantState {
		t.Errorf("StateDigest diverged after SIGKILL+restart:\n got: %q\nwant: %q", st.StateDigest, wantState)
	}
	t.Logf("killed after %d/%d contracts; resumed run replayed %d", st.Replayed, spec.Contracts, st.Replayed)
	return true
}

// TestColdWarmStoreDigestIdentity is the durable-store acceptance: two
// daemon runs over the same spec and store directory must produce
// identical digests, with the warm run answering solver queries from
// disk (fewer SAT calls, reported via /stats).
func TestColdWarmStoreDigestIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := serveBinary(t)
	spec := JobSpec{
		Tenant:     "warm",
		Name:       "cold-warm",
		Contracts:  8,
		Seed:       33,
		Iterations: 50,
		Memo:       "shared",
	}

	run := func(dataDir string) (JobState, StatsReport) {
		cmd, url := startServe(t, bin, dataDir)
		defer func() {
			cmd.Process.Kill()
			cmd.Wait()
		}()
		id := postSpec(t, url, spec)
		st := waitFinished(t, url, id, 120*time.Second)
		var stats StatsReport
		getJSON(t, url+"/stats", &stats)
		return st, stats
	}

	// Cold and warm daemons share the store via a shared parent: each
	// gets its own data dir (fresh registry, fresh journals) but the
	// same -store directory.
	parent := t.TempDir()
	cold := filepath.Join(parent, "cold")
	warm := filepath.Join(parent, "warm")
	sharedStore := filepath.Join(parent, "store")
	for _, d := range []string{cold, warm} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		// Point both daemons' -store at the shared directory.
		if err := os.Symlink(sharedStore, filepath.Join(d, "store")); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(sharedStore, 0o755); err != nil {
		t.Fatal(err)
	}

	stCold, statsCold := run(cold)
	stWarm, statsWarm := run(warm)
	if stCold.Status != StatusCompleted || stWarm.Status != StatusCompleted {
		t.Fatalf("cold=%q warm=%q", stCold.Status, stWarm.Status)
	}
	if stCold.FindingsDigest != stWarm.FindingsDigest || stCold.StateDigest != stWarm.StateDigest {
		t.Errorf("cold/warm digests diverge:\ncold: %q / %q\nwarm: %q / %q",
			stCold.FindingsDigest, stCold.StateDigest, stWarm.FindingsDigest, stWarm.StateDigest)
	}
	if statsWarm.Memo.StoreHits == 0 {
		t.Errorf("warm run had no disk-store hits: %+v", statsWarm.Memo)
	}
	if statsCold.Store == nil || statsCold.Store.Writes == 0 {
		t.Errorf("cold run wrote nothing to the store: %+v", statsCold.Store)
	}
	t.Logf("cold: %s", statsCold.Memo)
	t.Logf("warm: %s (disk store: %v)", statsWarm.Memo, statsWarm.Store)
}
