package symexec

import (
	"errors"
	"fmt"

	"repro/internal/symbolic"
	"repro/internal/trace"
	"repro/internal/wasm"
)

// CondKind classifies a recorded conditional state (§3.1).
type CondKind int

// Conditional-state kinds.
const (
	CondBranch  CondKind = iota + 1 // br_if / if
	CondAssert                      // eosio_assert invocation
	CondBrTable                     // br_table index
)

// CondState is one conditional state along the executed path: the symbolic
// condition, the direction the concrete execution took, and where.
type CondState struct {
	Kind CondKind
	// Cond is the branch condition (any width; non-zero = taken) for
	// CondBranch/CondAssert, or the index expression for CondBrTable.
	Cond *symbolic.Expr
	// Taken is the concrete direction (CondBranch) — asserts always "took"
	// the satisfied direction.
	Taken bool
	// Index is the concrete br_table index (CondBrTable).
	Index uint64
	// NumTargets is the br_table target count including the default.
	NumTargets int
	// Func and PC locate the conditional in the original module.
	Func uint32
	PC   int
}

// PathConstraint returns the constraint this state imposes on the executed
// path (the as-taken condition).
func (cs *CondState) PathConstraint(ctx *symbolic.Ctx) *symbolic.Expr {
	switch cs.Kind {
	case CondBrTable:
		return ctx.Eq(cs.Cond, ctx.Const(cs.Index, cs.Cond.Width))
	default:
		b := ctx.Bool(cs.Cond)
		if cs.Taken {
			return b
		}
		return ctx.BoolNot(b)
	}
}

// Result is the outcome of one symbolic replay.
type Result struct {
	Ctx   *symbolic.Ctx
	Conds []CondState
	// ActionFunc is the original-module index of the replayed action
	// function (the paper's id_e when the action is the eosponser).
	ActionFunc uint32
	// Truncated reports that the trace ended before the action function
	// returned (reverted execution or instruction-budget stop).
	Truncated bool
	// Steps counts replayed instructions.
	Steps int
	// LoadObjects counts §3.4.1 symbolic load objects materialized.
	LoadObjects int
}

// Options configure a replay.
type Options struct {
	// Globals overrides initial global values (e.g. _self, which the
	// skipped dispatcher would have set).
	Globals map[uint32]uint64
	// MaxSteps bounds the replay (default 400k instructions).
	MaxSteps int
	// OpaqueInputs disables the §3.4.2 calling-convention input inference:
	// action arguments become anonymous symbolic values with no mapping
	// back to the transaction payload, so flipped constraints cannot be
	// turned into seeds. Exists for the ablation benchmark.
	OpaqueInputs bool
}

// ErrNoActionCall reports a trace with no indirect action dispatch.
var ErrNoActionCall = errors.New("symexec: no action-function dispatch in trace")

// Param describes one action argument for §3.4.2 input inference. Exactly
// one family of fields is used depending on Type.
type Param struct {
	Type string // "name", "uint64", "int64", "asset", "string"
	// U64 is the concrete seed value for scalar types.
	U64 uint64
	// Amount and Symbol are the concrete asset halves.
	Amount, Symbol uint64
	// Str is the concrete string value (its length fixes the layout).
	Str []byte
}

// VarName returns the canonical symbolic-variable name for parameter i,
// shared with the fuzzer's model-to-seed mapping.
func VarName(i int) string { return fmt.Sprintf("p%d", i) }

// VarAmount and VarSymbol name the asset halves; VarStrByte names one
// string content byte.
func VarAmount(i int) string     { return fmt.Sprintf("p%d.amount", i) }
func VarSymbol(i int) string     { return fmt.Sprintf("p%d.symbol", i) }
func VarStrByte(i, j int) string { return fmt.Sprintf("p%d[%d]", i, j) }

// replayer walks the trace while symbolically executing the original
// module per Table 3.
type replayer struct {
	ctx    *symbolic.Ctx
	mod    *wasm.Module
	mem    *Memory
	events []trace.Event
	pos    int

	globals    []*symbolic.Expr
	conds      []CondState
	steps      int
	maxSteps   int
	numImports int

	metaCache map[uint32]wasm.ControlMeta
}

// errTraceEnd signals orderly exhaustion of the trace (reverted runs).
var errTraceEnd = errors.New("trace exhausted")

// Run replays tr (from an instrumented execution of mod) symbolically,
// seeding the action function's inputs per params and the §3.4.2 layout.
//
// Run is engine-agnostic by construction: it never selects or touches an
// exec engine, it only consumes the trace event stream. The instrumentation
// hooks are host calls, which the tree-walking interpreter and the
// decoded-IR engine (exec.NewFastVM) dispatch identically, so a trace —
// and therefore this replay — is byte-identical whichever engine produced
// it. fuzz.Config.FastVM needs no counterpart here.
func Run(mod *wasm.Module, tr *trace.Trace, params []Param, opts Options) (*Result, error) {
	ctx := symbolic.NewCtx()
	r := &replayer{
		ctx:        ctx,
		mod:        mod,
		mem:        NewMemory(ctx),
		events:     tr.Events,
		maxSteps:   opts.MaxSteps,
		numImports: mod.NumImportedFuncs(),
		metaCache:  map[uint32]wasm.ControlMeta{},
	}
	if r.maxSteps == 0 {
		r.maxSteps = 400_000
	}
	for _, g := range mod.Globals {
		v := uint64(0)
		if len(g.Init) == 1 {
			v = g.Init[0].Imm
		}
		r.globals = append(r.globals, ctx.Const(v, widthOf(g.Type.Type)))
	}
	for idx, v := range opts.Globals {
		if int(idx) < len(r.globals) {
			r.globals[idx] = ctx.Const(v, r.globals[idx].Width)
		}
	}

	// Locate the action dispatch: the first indirect call in the trace
	// (§3.4.2 "we parse the indirect calls in the apply function").
	actionFunc, ok := r.findActionDispatch()
	if !ok {
		return nil, ErrNoActionCall
	}
	// Skip to its function_begin and collect the concrete parameters.
	concrete, ok := r.seekFunctionEntry(actionFunc)
	if !ok {
		return nil, fmt.Errorf("symexec: no function_begin for action func %d", actionFunc)
	}

	if opts.OpaqueInputs {
		params = nil // every argument becomes a nameless fresh value
	}
	locals, err := r.buildInputs(actionFunc, params, concrete)
	if err != nil {
		return nil, err
	}

	res := &Result{Ctx: ctx, ActionFunc: actionFunc}
	_, err = r.execFunc(actionFunc, locals)
	if err != nil && !errors.Is(err, errTraceEnd) {
		return nil, err
	}
	res.Truncated = errors.Is(err, errTraceEnd)
	res.Conds = r.conds
	res.Steps = r.steps
	res.LoadObjects = r.mem.LoadObjects()
	return res, nil
}

func widthOf(t wasm.ValType) uint8 {
	switch t {
	case wasm.I32, wasm.F32:
		return 32
	default:
		return 64
	}
}

func (r *replayer) findActionDispatch() (uint32, bool) {
	for _, ev := range r.events {
		if ev.Kind == trace.HookCall && ev.Op == wasm.OpCallIndirect {
			return uint32(ev.Operand), true
		}
	}
	return 0, false
}

// seekFunctionEntry advances past the events preceding the action
// function's body and returns its concrete parameter values.
func (r *replayer) seekFunctionEntry(fn uint32) ([]uint64, bool) {
	for i, ev := range r.events {
		if ev.Kind == trace.HookFuncBegin && ev.Func == fn {
			var concrete []uint64
			j := i + 1
			for ; j < len(r.events) && r.events[j].Kind == trace.HookParam; j++ {
				concrete = append(concrete, r.events[j].Operand)
			}
			r.pos = j
			return concrete, true
		}
	}
	return nil, false
}

// buildInputs realizes Table 2: value parameters become symbolic variables
// directly; pointer parameters (asset, string) keep their concrete pointer
// and the pointed-to memory is seeded with symbolic content.
func (r *replayer) buildInputs(fn uint32, params []Param, concrete []uint64) ([]*symbolic.Expr, error) {
	ft, err := r.mod.FuncTypeAt(fn)
	if err != nil {
		return nil, err
	}
	code := r.mod.CodeFor(fn)
	if code == nil {
		return nil, fmt.Errorf("symexec: action func %d has no body", fn)
	}
	nLocals := len(ft.Params) + int(code.NumLocals())
	locals := make([]*symbolic.Expr, nLocals)
	for i := range locals {
		locals[i] = r.ctx.Const(0, 64)
	}
	// Parameter 0 is `self` (concrete); ρ_i maps to local i+1.
	for i := 0; i < len(ft.Params) && i < len(concrete); i++ {
		locals[i] = r.ctx.Const(concrete[i], widthOf(ft.Params[i]))
	}
	for i, p := range params {
		li := i + 1
		if li >= len(ft.Params) {
			break
		}
		switch p.Type {
		case "asset":
			if li >= len(concrete) {
				return nil, fmt.Errorf("symexec: missing concrete pointer for param %d", i)
			}
			ptr := uint32(concrete[li])
			r.mem.Store(ptr, 8, r.ctx.Var(VarAmount(i), 64))
			r.mem.Store(ptr+8, 8, r.ctx.Var(VarSymbol(i), 64))
		case "string":
			if li >= len(concrete) {
				return nil, fmt.Errorf("symexec: missing concrete pointer for param %d", i)
			}
			ptr := uint32(concrete[li])
			// First byte: length (concrete — mutation preserves length);
			// following bytes: symbolic content.
			r.mem.StoreByte(ptr, r.ctx.Const(uint64(len(p.Str)), 8))
			for j := range p.Str {
				r.mem.StoreByte(ptr+1+uint32(j), r.ctx.Var(VarStrByte(i, j), 8))
			}
		default: // name, uint64, int64 — value types
			locals[li] = r.ctx.Var(VarName(i), widthOf(ft.Params[li]))
		}
	}
	return locals, nil
}

// --- event cursor ------------------------------------------------------------

func (r *replayer) next() (trace.Event, error) {
	if r.pos >= len(r.events) {
		return trace.Event{}, errTraceEnd
	}
	ev := r.events[r.pos]
	r.pos++
	return ev, nil
}

// expect consumes the next event, requiring the given kind at the site.
func (r *replayer) expect(kind trace.HookKind, fn uint32, pc int) (trace.Event, error) {
	ev, err := r.next()
	if err != nil {
		return ev, err
	}
	if ev.Kind != kind || ev.Func != fn || ev.PC != pc {
		return ev, fmt.Errorf("symexec: trace desync: want %s@(%d,%d), got %s@(%d,%d)",
			kind, fn, pc, ev.Kind, ev.Func, ev.PC)
	}
	return ev, nil
}

func (r *replayer) meta(fn uint32) (wasm.ControlMeta, error) {
	if m, ok := r.metaCache[fn]; ok {
		return m, nil
	}
	code := r.mod.CodeFor(fn)
	if code == nil {
		return wasm.ControlMeta{}, fmt.Errorf("symexec: func %d has no body", fn)
	}
	m, err := wasm.AnalyzeControl(code.Body)
	if err != nil {
		return wasm.ControlMeta{}, err
	}
	r.metaCache[fn] = m
	return m, nil
}
