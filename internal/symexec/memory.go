// Package symexec implements Symback, WASAI's symbolic backend (paper §3.4):
// an EOSVM simulator that replays runtime traces to build symbolic machine
// states, a memory model keyed on the concrete addresses captured in the
// trace (§3.4.1), direct symbolic initialization of action-function inputs
// following the EOSIO calling convention (§3.4.2, Table 2), the operational
// semantics of Table 3 (§3.4.3), and constraint flipping for adaptive seed
// generation (§3.4.4).
package symexec

import (
	"fmt"

	"repro/internal/symbolic"
	"repro/internal/wasm"
)

// Memory is the §3.4.1 memory model: a byte-granular array (the Z3
// Store/Select analogue) addressed by the *concrete* addresses read from
// runtime traces. Loads of bytes never stored resolve to symbolic load
// objects ⟨a, s⟩ — fresh variables registered so that repeated loads of the
// same unknown cell agree.
type Memory struct {
	ctx   *symbolic.Ctx
	bytes map[uint32]*symbolic.Expr
	// loadObjects counts the symbolic load objects created (evaluation stat).
	loadObjects int
}

// NewMemory returns an empty memory model over ctx.
func NewMemory(ctx *symbolic.Ctx) *Memory {
	return &Memory{ctx: ctx, bytes: map[uint32]*symbolic.Expr{}}
}

// Store writes the low size bytes of val at addr (little-endian), splitting
// the expression into byte vectors as §3.4.1 describes.
func (m *Memory) Store(addr uint32, size int, val *symbolic.Expr) {
	for i := 0; i < size; i++ {
		lo := uint8(8 * i)
		m.bytes[addr+uint32(i)] = m.ctx.Extract(val, lo+7, lo)
	}
}

// StoreByte writes one 8-bit expression.
func (m *Memory) StoreByte(addr uint32, b *symbolic.Expr) {
	m.bytes[addr] = b
}

// Load reads size bytes at addr and concatenates them into one expression
// of width 8*size. Unknown bytes become symbolic load objects.
func (m *Memory) Load(addr uint32, size int) *symbolic.Expr {
	var out *symbolic.Expr
	for i := size - 1; i >= 0; i-- {
		a := addr + uint32(i)
		b, ok := m.bytes[a]
		if !ok {
			// Symbolic load object ⟨a, 1⟩.
			b = m.ctx.Var(fmt.Sprintf("mem[%d]", a), 8)
			m.bytes[a] = b
			m.loadObjects++
		}
		if out == nil {
			out = b
		} else {
			out = m.ctx.Concat(out, b)
		}
	}
	return out
}

// LoadObjects returns how many symbolic load objects were materialized.
func (m *Memory) LoadObjects() int { return m.loadObjects }

// LoadOp applies the full semantics of a Wasm load opcode at the concrete
// address: read MemBytes bytes, then zero/sign-extend to the result width.
func (m *Memory) LoadOp(op wasm.Opcode, addr uint32) (*symbolic.Expr, error) {
	n := op.MemBytes()
	if n == 0 {
		return nil, fmt.Errorf("symexec: %s is not a load", op.Name())
	}
	raw := m.Load(addr, n)
	switch op {
	case wasm.OpI32Load, wasm.OpF32Load:
		return raw, nil
	case wasm.OpI64Load, wasm.OpF64Load:
		return raw, nil
	case wasm.OpI32Load8U, wasm.OpI32Load16U:
		return m.ctx.ZExt(raw, 32), nil
	case wasm.OpI32Load8S, wasm.OpI32Load16S:
		return m.ctx.SExt(raw, 32), nil
	case wasm.OpI64Load8U, wasm.OpI64Load16U, wasm.OpI64Load32U:
		return m.ctx.ZExt(raw, 64), nil
	case wasm.OpI64Load8S, wasm.OpI64Load16S, wasm.OpI64Load32S:
		return m.ctx.SExt(raw, 64), nil
	default:
		return nil, fmt.Errorf("symexec: unhandled load %s", op.Name())
	}
}

// StoreOp applies the full semantics of a Wasm store opcode at the concrete
// address: truncate val to the store width and write the bytes.
func (m *Memory) StoreOp(op wasm.Opcode, addr uint32, val *symbolic.Expr) error {
	n := op.MemBytes()
	if n == 0 {
		return fmt.Errorf("symexec: %s is not a store", op.Name())
	}
	w := uint8(8 * n)
	if val.Width > w {
		val = m.ctx.Truncate(val, w)
	} else if val.Width < w {
		val = m.ctx.ZExt(val, w)
	}
	m.Store(addr, n, val)
	return nil
}
