package symexec_test

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/instrument"
	"repro/internal/symbolic"
	"repro/internal/symexec"
	"repro/internal/trace"
)

var (
	victim   = eos.MustName("victim")
	attacker = eos.MustName("attacker")
)

// harness deploys an instrumented contract and provides invocation and
// replay plumbing.
type harness struct {
	t  *testing.T
	bc *chain.Blockchain
	c  *contractgen.Contract
}

func newHarness(t *testing.T, spec contractgen.Spec) *harness {
	t.Helper()
	c, err := contractgen.Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	res, err := instrument.Instrument(c.Module, instrument.ModeSparse)
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	bc := chain.New()
	bc.Collector = trace.NewCollector()
	if err := bc.DeployModule(victim, res.Module, c.ABI, res.Sites); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	bc.CreateAccount(attacker)
	if err := bc.Issue(eos.TokenContract, victim, eos.MustAsset("10000.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}
	return &harness{t: t, bc: bc, c: c}
}

// params describes the transfer-shaped action arguments as a seed.
func seedParams(from, to eos.Name, amount int64, memo string) []symexec.Param {
	return []symexec.Param{
		{Type: "name", U64: uint64(from)},
		{Type: "name", U64: uint64(to)},
		{Type: "asset", Amount: uint64(amount), Symbol: uint64(eos.EOSSymbol)},
		{Type: "string", Str: []byte(memo)},
	}
}

// invoke pushes an action built from params and returns the victim's trace.
func (h *harness) invoke(action eos.Name, params []symexec.Param) (*trace.Trace, *chain.Receipt) {
	h.t.Helper()
	data := chain.EncodeTransfer(chain.TransferArgs{
		From:     eos.Name(params[0].U64),
		To:       eos.Name(params[1].U64),
		Quantity: eos.Asset{Amount: int64(params[2].Amount), Symbol: eos.Symbol(params[2].Symbol)},
		Memo:     string(params[3].Str),
	})
	rcpt := h.bc.PushTransaction(chain.Transaction{Actions: []chain.Action{{
		Account:       victim,
		Name:          action,
		Authorization: []chain.PermissionLevel{{Actor: eos.Name(params[0].U64), Permission: eos.ActiveAuth}},
		Data:          data,
	}}})
	for i := range rcpt.Traces {
		if rcpt.Traces[i].Contract == victim {
			return &rcpt.Traces[i], rcpt
		}
	}
	return nil, rcpt
}

func (h *harness) replay(tr *trace.Trace, params []symexec.Param) *symexec.Result {
	h.t.Helper()
	if tr == nil {
		h.t.Fatal("no trace to replay")
	}
	res, err := symexec.Run(h.c.Module, tr, params, symexec.Options{
		Globals: map[uint32]uint64{0: uint64(victim)},
	})
	if err != nil {
		h.t.Fatalf("symexec.Run: %v", err)
	}
	return res
}

// TestReplayRecordsConditionals replays a reveal execution and checks that
// the assert and branch conditions were captured symbolically.
func TestReplayRecordsConditionals(t *testing.T) {
	lucky := eos.MustName("luckyone")
	h := newHarness(t, contractgen.Spec{
		Class:      contractgen.ClassRollback,
		Vulnerable: true,
		Branches:   []contractgen.BranchCheck{{Field: "from", Value: uint64(lucky)}},
		Seed:       1,
	})
	h.bc.CreateAccount(lucky)
	params := seedParams(attacker, victim, 100000, "m")
	tr, rcpt := h.invoke(contractgen.ActionReveal, params)
	if rcpt.Err != nil {
		t.Fatalf("invoke: %v", rcpt.Err)
	}
	res := h.replay(tr, params)
	if len(res.Conds) == 0 {
		t.Fatal("no conditional states recorded")
	}
	var asserts, branches int
	for _, cs := range res.Conds {
		switch cs.Kind {
		case symexec.CondAssert:
			asserts++
		case symexec.CondBranch:
			branches++
		}
	}
	if asserts == 0 {
		t.Error("no assert conditionals (quantity floor missing)")
	}
	if branches == 0 {
		t.Error("no branch conditionals (from == lucky check missing)")
	}
}

// TestConcolicLoopSolvesBranch is the end-to-end §3.4 check: execute with a
// wrong seed, flip the unexplored branch, solve, and verify the adaptive
// seed actually reaches the hidden template on re-execution.
func TestConcolicLoopSolvesBranch(t *testing.T) {
	lucky := eos.MustName("luckyone")
	h := newHarness(t, contractgen.Spec{
		Class:      contractgen.ClassRollback,
		Vulnerable: true,
		Branches:   []contractgen.BranchCheck{{Field: "from", Value: uint64(lucky)}},
		Seed:       2,
	})
	h.bc.CreateAccount(lucky)

	params := seedParams(attacker, victim, 100000, "m")
	tr, rcpt := h.invoke(contractgen.ActionReveal, params)
	if rcpt.Err != nil {
		t.Fatalf("invoke: %v", rcpt.Err)
	}
	if len(rcpt.InlineSent) != 0 {
		t.Fatal("template fired with the wrong seed")
	}

	res := h.replay(tr, params)
	queries := symexec.FlipQueries(res)
	if len(queries) == 0 {
		t.Fatal("no flip queries generated")
	}

	solver := &symbolic.Solver{}
	reached := false
	for _, q := range queries {
		model, r := solver.Solve(q.Constraints)
		if r != symbolic.Sat {
			continue
		}
		mutated := symexec.ApplyModel(params, model)
		// The mutated `from` must be an account for auth purposes.
		h.bc.CreateAccount(eos.Name(mutated[0].U64))
		// The template's payout condition is block-state dependent (the
		// tapos lottery), so step a few blocks.
		for try := 0; try < 10 && !reached; try++ {
			_, rcpt := h.invoke(contractgen.ActionReveal, mutated)
			reached = rcpt.Err == nil && len(rcpt.InlineSent) > 0
		}
		if reached {
			if eos.Name(mutated[0].U64) != lucky {
				t.Errorf("solver found from=%s, want %s", eos.Name(mutated[0].U64), lucky)
			}
			break
		}
	}
	if !reached {
		t.Fatal("no adaptive seed reached the guarded template")
	}
}

// TestConcolicSolvesMemoryConstraint flips a branch over the asset amount,
// which lives behind the §3.4.1 memory model (loaded through the quantity
// pointer).
func TestConcolicSolvesMemoryConstraint(t *testing.T) {
	h := newHarness(t, contractgen.Spec{
		Class:      contractgen.ClassRollback,
		Vulnerable: true,
		Branches:   []contractgen.BranchCheck{{Field: "amount", Value: 424242}},
		Seed:       3,
	})
	params := seedParams(attacker, victim, 100000, "m")
	tr, rcpt := h.invoke(contractgen.ActionReveal, params)
	if rcpt.Err != nil {
		t.Fatalf("invoke: %v", rcpt.Err)
	}
	res := h.replay(tr, params)
	queries := symexec.FlipQueries(res)

	solver := &symbolic.Solver{}
	var solvedAmount uint64
	for _, q := range queries {
		model, r := solver.Solve(q.Constraints)
		if r != symbolic.Sat {
			continue
		}
		mutated := symexec.ApplyModel(params, model)
		if mutated[2].Amount == 424242 {
			solvedAmount = mutated[2].Amount
			break
		}
	}
	if solvedAmount != 424242 {
		t.Fatalf("solver did not recover the amount constant through the memory model")
	}
}

// TestConcolicPenetratesVerification solves the §4.3 unreachable-guarded
// input checks (the "complicated verification" robustness scenario).
func TestConcolicPenetratesVerification(t *testing.T) {
	h := newHarness(t, contractgen.Spec{
		Class:      contractgen.ClassFakeEOS,
		Vulnerable: true,
		Verification: []contractgen.VerCheck{
			{Field: "amount", Value: 7770000},
			{Field: "symbol", Value: uint64(eos.EOSSymbol)},
		},
		Seed: 4,
	})
	params := seedParams(attacker, victim, 100000, "m")
	// Direct fake-EOS invocation of the eosponser (transfer action).
	tr, rcpt := h.invoke(eos.ActionTransfer, params)
	if rcpt.Err == nil {
		t.Fatal("verification should reject the random seed")
	}
	res := h.replay(tr, params)
	if !res.Truncated {
		t.Error("replay of a reverted run should be truncated")
	}
	queries := symexec.FlipQueries(res)
	solver := &symbolic.Solver{}
	passed := false
	for _, q := range queries {
		model, r := solver.Solve(q.Constraints)
		if r != symbolic.Sat {
			continue
		}
		mutated := symexec.ApplyModel(params, model)
		_, rcpt := h.invoke(eos.ActionTransfer, mutated)
		if rcpt.Err == nil {
			passed = true
			if mutated[2].Amount != 7770000 {
				t.Errorf("amount = %d, want 7770000", mutated[2].Amount)
			}
			break
		}
	}
	if !passed {
		t.Fatal("solver did not penetrate the verification")
	}
}

// TestReplayObfuscatedContract replays a popcount-obfuscated execution and
// still solves the branch constants.
func TestReplayObfuscatedContract(t *testing.T) {
	lucky := eos.MustName("luckyone")
	spec := contractgen.Spec{
		Class:      contractgen.ClassRollback,
		Vulnerable: true,
		Branches:   []contractgen.BranchCheck{{Field: "from", Value: uint64(lucky)}},
		Seed:       5,
	}
	c, err := contractgen.Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if _, err := contractgen.Obfuscate(c.Module, contractgen.ObfuscateOptions{
		Popcount:        true,
		OpaqueRecursion: true,
	}); err != nil {
		t.Fatalf("Obfuscate: %v", err)
	}
	res, err := instrument.Instrument(c.Module, instrument.ModeSparse)
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	bc := chain.New()
	bc.Collector = trace.NewCollector()
	if err := bc.DeployModule(victim, res.Module, c.ABI, res.Sites); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	bc.CreateAccount(attacker)
	bc.CreateAccount(lucky)
	if err := bc.Issue(eos.TokenContract, victim, eos.MustAsset("10000.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}
	h := &harness{t: t, bc: bc, c: c}

	params := seedParams(attacker, victim, 100000, "m")
	tr, rcpt := h.invoke(contractgen.ActionReveal, params)
	if rcpt.Err != nil {
		t.Fatalf("invoke: %v", rcpt.Err)
	}
	symRes := h.replay(tr, params)
	queries := symexec.FlipQueries(symRes)
	solver := &symbolic.Solver{}
	solved := false
	for _, q := range queries {
		model, r := solver.Solve(q.Constraints)
		if r != symbolic.Sat {
			continue
		}
		mutated := symexec.ApplyModel(params, model)
		if eos.Name(mutated[0].U64) == lucky {
			solved = true
			break
		}
	}
	if !solved {
		t.Fatal("solver did not penetrate the popcount obfuscation")
	}
}
