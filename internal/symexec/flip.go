package symexec

import (
	"strings"

	"repro/internal/symbolic"
)

// BranchTarget identifies one (site, direction) the fuzzer wants to reach.
type BranchTarget struct {
	Func uint32
	PC   int
	Dir  uint8
}

// FlipQuery is one constraint system whose solution is an adaptive seed
// steering execution to Target (§3.4.4).
type FlipQuery struct {
	Target      BranchTarget
	Constraints []*symbolic.Expr
}

// FlipQueries builds the §3.4.4 constraint systems from a replay result:
// for each input-dependent conditional state, the path constraints up to it
// conjoined with the flipped condition. Assertions along the prefix are
// required to hold; a failed assertion is itself "flipped" by requiring it
// to be satisfied.
func FlipQueries(res *Result) []FlipQuery {
	ctx := res.Ctx
	var queries []FlipQuery
	var prefix []*symbolic.Expr

	for i := range res.Conds {
		cs := &res.Conds[i]
		switch cs.Kind {
		case CondBranch:
			if inputDependent(cs.Cond) {
				dir := uint8(0)
				if !cs.Taken { // flipping to the untaken direction
					dir = 1
				}
				flipped := ctx.Bool(cs.Cond)
				if cs.Taken {
					flipped = ctx.BoolNot(flipped)
				}
				queries = append(queries, FlipQuery{
					Target:      BranchTarget{Func: cs.Func, PC: cs.PC, Dir: dir},
					Constraints: appendCopy(prefix, flipped),
				})
			}
		case CondAssert:
			if !cs.Taken && inputDependent(cs.Cond) {
				// The assert failed: require it (paper: μ̂s[0] == 1).
				queries = append(queries, FlipQuery{
					Target:      BranchTarget{Func: cs.Func, PC: cs.PC, Dir: 1},
					Constraints: appendCopy(prefix, ctx.Bool(cs.Cond)),
				})
			}
		case CondBrTable:
			if inputDependent(cs.Cond) {
				for alt := 0; alt < cs.NumTargets; alt++ {
					if uint64(alt) == cs.Index {
						continue
					}
					queries = append(queries, FlipQuery{
						Target:      BranchTarget{Func: cs.Func, PC: cs.PC, Dir: uint8(alt % 251)},
						Constraints: appendCopy(prefix, ctx.Eq(cs.Cond, ctx.Const(uint64(alt), cs.Cond.Width))),
					})
				}
			}
		}
		// Extend the path prefix with the as-taken constraint, keeping the
		// feasibility of subsequent flips (§3.4.4: "the path to the
		// conditional state must be feasible").
		pcExpr := cs.PathConstraint(ctx)
		if !pcExpr.IsTrue() {
			prefix = append(prefix, pcExpr)
		}
	}
	return queries
}

func appendCopy(prefix []*symbolic.Expr, last *symbolic.Expr) []*symbolic.Expr {
	out := make([]*symbolic.Expr, 0, len(prefix)+1)
	out = append(out, prefix...)
	return append(out, last)
}

// inputDependent reports whether the expression mentions at least one
// transaction-input variable (p0, p1, p2.amount, p3[0], ...). Symbolic
// load objects (mem[...]) and opaque float/clz temporaries alone do not
// make a branch steerable by seed mutation.
func inputDependent(e *symbolic.Expr) bool {
	vars := map[string]*symbolic.Expr{}
	e.Vars(vars)
	for name := range vars {
		if strings.HasPrefix(name, "p") {
			return true
		}
	}
	return false
}

// ApplyModel produces a mutated copy of params with the model's solution
// substituted; variables absent from the model keep the original seed value
// (the paper mutates one parameter per seed round, leaving the rest).
func ApplyModel(params []Param, m symbolic.Model) []Param {
	out := make([]Param, len(params))
	copy(out, params)
	for i := range out {
		switch out[i].Type {
		case "asset":
			if v, ok := m[VarAmount(i)]; ok {
				out[i].Amount = v
			}
			if v, ok := m[VarSymbol(i)]; ok {
				out[i].Symbol = v
			}
		case "string":
			if len(out[i].Str) > 0 {
				str := append([]byte(nil), out[i].Str...)
				for j := range str {
					if v, ok := m[VarStrByte(i, j)]; ok {
						str[j] = byte(v)
					}
				}
				out[i].Str = str
			}
		default:
			if v, ok := m[VarName(i)]; ok {
				out[i].U64 = v
			}
		}
	}
	return out
}
