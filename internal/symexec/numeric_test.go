package symexec

import (
	"testing"

	"repro/internal/symbolic"
	"repro/internal/wasm"
)

// applyOp pushes the (constant) operands and applies the opcode through the
// symbolic Table-3 semantics, returning the evaluated result.
func applyOp(t *testing.T, op wasm.Opcode, operands ...uint64) uint64 {
	t.Helper()
	r := &replayer{ctx: symbolic.NewCtx()}
	var stack []*symbolic.Expr
	width := uint8(64)
	if opIs32(op) {
		width = 32
	}
	for _, v := range operands {
		stack = append(stack, r.ctx.Const(v, width))
	}
	popW := func(w uint8) *symbolic.Expr {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		switch {
		case e.Width == w:
			return e
		case e.Width > w:
			return r.ctx.Truncate(e, w)
		default:
			return r.ctx.ZExt(e, w)
		}
	}
	if err := r.applyNumeric(op, &stack, popW); err != nil {
		t.Fatalf("%s: %v", op.Name(), err)
	}
	if len(stack) != 1 {
		t.Fatalf("%s: stack depth %d after op", op.Name(), len(stack))
	}
	return symbolic.Eval(stack[0], nil)
}

func n64(v int64) uint64 { return uint64(v) }

func opIs32(op wasm.Opcode) bool {
	name := op.Name()
	return len(name) > 3 && name[:3] == "i32"
}

func TestApplyNumericSemantics(t *testing.T) {
	cases := []struct {
		op       wasm.Opcode
		operands []uint64
		want     uint64
	}{
		{wasm.OpI64Add, []uint64{40, 2}, 42},
		{wasm.OpI64Sub, []uint64{2, 40}, n64(-38)},
		{wasm.OpI64Mul, []uint64{6, 7}, 42},
		{wasm.OpI64DivU, []uint64{42, 5}, 8},
		{wasm.OpI64DivS, []uint64{n64(-42), 5}, n64(-8)},
		{wasm.OpI64RemU, []uint64{42, 5}, 2},
		{wasm.OpI64RemS, []uint64{n64(-42), 5}, n64(-2)},
		{wasm.OpI64And, []uint64{0xF0, 0x3C}, 0x30},
		{wasm.OpI64Or, []uint64{0xF0, 0x0F}, 0xFF},
		{wasm.OpI64Xor, []uint64{0xFF, 0x0F}, 0xF0},
		{wasm.OpI64Shl, []uint64{1, 8}, 256},
		{wasm.OpI64ShrU, []uint64{256, 8}, 1},
		{wasm.OpI64ShrS, []uint64{n64(-256), 8}, n64(-1)},
		{wasm.OpI64Rotl, []uint64{0x8000000000000000, 1}, 1},
		{wasm.OpI64Rotr, []uint64{1, 1}, 0x8000000000000000},
		{wasm.OpI64Popcnt, []uint64{0xFF}, 8},
		{wasm.OpI64Eqz, []uint64{0}, 1},
		{wasm.OpI64LtU, []uint64{1, 2}, 1},
		{wasm.OpI64LtS, []uint64{n64(-1), 0}, 1},
		{wasm.OpI64GtU, []uint64{2, 1}, 1},
		{wasm.OpI64GtS, []uint64{0, n64(-1)}, 1},
		{wasm.OpI64LeU, []uint64{2, 2}, 1},
		{wasm.OpI64LeS, []uint64{2, 1}, 0},
		{wasm.OpI64GeU, []uint64{2, 2}, 1},
		{wasm.OpI64GeS, []uint64{1, 2}, 0},
		{wasm.OpI32Add, []uint64{0xFFFFFFFF, 1}, 0},
		{wasm.OpI32Sub, []uint64{0, 1}, 0xFFFFFFFF},
		{wasm.OpI32Mul, []uint64{3, 5}, 15},
		{wasm.OpI32DivU, []uint64{7, 2}, 3},
		{wasm.OpI32DivS, []uint64{0xFFFFFFF9 /* -7 */, 2}, 0xFFFFFFFD},
		{wasm.OpI32RemU, []uint64{7, 4}, 3},
		{wasm.OpI32RemS, []uint64{0xFFFFFFF9, 4}, 0xFFFFFFFD},
		{wasm.OpI32And, []uint64{6, 3}, 2},
		{wasm.OpI32Or, []uint64{6, 3}, 7},
		{wasm.OpI32Xor, []uint64{6, 3}, 5},
		{wasm.OpI32Shl, []uint64{1, 31}, 0x80000000},
		{wasm.OpI32ShrU, []uint64{0x80000000, 31}, 1},
		{wasm.OpI32ShrS, []uint64{0x80000000, 31}, 0xFFFFFFFF},
		{wasm.OpI32Rotl, []uint64{0x80000000, 1}, 1},
		{wasm.OpI32Rotr, []uint64{1, 1}, 0x80000000},
		{wasm.OpI32Popcnt, []uint64{0xF0F0}, 8},
		{wasm.OpI32Eqz, []uint64{7}, 0},
		{wasm.OpI32Eq, []uint64{4, 4}, 1},
		{wasm.OpI32Ne, []uint64{4, 4}, 0},
		{wasm.OpI32LtU, []uint64{0xFFFFFFFF, 1}, 0},
		{wasm.OpI32LtS, []uint64{0xFFFFFFFF, 1}, 1},
		{wasm.OpI32GtU, []uint64{0xFFFFFFFF, 1}, 1},
		{wasm.OpI32GtS, []uint64{0xFFFFFFFF, 1}, 0},
		{wasm.OpI32LeU, []uint64{1, 1}, 1},
		{wasm.OpI32LeS, []uint64{2, 1}, 0},
		{wasm.OpI32GeU, []uint64{1, 2}, 0},
		{wasm.OpI32GeS, []uint64{1, 1}, 1},
	}
	for _, tc := range cases {
		got := applyOp(t, tc.op, tc.operands...)
		if got != tc.want {
			t.Errorf("%s(%v) = %#x, want %#x", tc.op.Name(), tc.operands, got, tc.want)
		}
	}
}

func TestApplyNumericConversions(t *testing.T) {
	r := &replayer{ctx: symbolic.NewCtx()}
	popW := func(stack *[]*symbolic.Expr) func(uint8) *symbolic.Expr {
		return func(w uint8) *symbolic.Expr {
			e := (*stack)[len(*stack)-1]
			*stack = (*stack)[:len(*stack)-1]
			switch {
			case e.Width == w:
				return e
			case e.Width > w:
				return r.ctx.Truncate(e, w)
			default:
				return r.ctx.ZExt(e, w)
			}
		}
	}

	// i32.wrap_i64
	stack := []*symbolic.Expr{r.ctx.Const(0x1234567890ABCDEF, 64)}
	if err := r.applyNumeric(wasm.OpI32WrapI64, &stack, popW(&stack)); err != nil {
		t.Fatal(err)
	}
	if got := symbolic.Eval(stack[0], nil); got != 0x90ABCDEF {
		t.Errorf("wrap = %#x", got)
	}
	// i64.extend_i32_s
	stack = []*symbolic.Expr{r.ctx.Const(0x80000000, 32)}
	if err := r.applyNumeric(wasm.OpI64ExtendI32S, &stack, popW(&stack)); err != nil {
		t.Fatal(err)
	}
	if got := symbolic.Eval(stack[0], nil); got != 0xFFFFFFFF80000000 {
		t.Errorf("extend_s = %#x", got)
	}
	// Floats become opaque fresh variables of the right width.
	stack = []*symbolic.Expr{r.ctx.Const(0, 64), r.ctx.Const(0, 64)}
	if err := r.applyNumeric(wasm.OpF64Add, &stack, popW(&stack)); err != nil {
		t.Fatal(err)
	}
	if len(stack) != 1 || stack[0].Width != 64 {
		t.Errorf("f64.add result: depth %d width %d", len(stack), stack[0].Width)
	}
	// Float comparison yields an opaque 32-bit value.
	stack = []*symbolic.Expr{r.ctx.Const(0, 32), r.ctx.Const(0, 32)}
	if err := r.applyNumeric(wasm.OpF32Lt, &stack, popW(&stack)); err != nil {
		t.Fatal(err)
	}
	if len(stack) != 1 || stack[0].Width != 32 {
		t.Errorf("f32.lt result: depth %d width %d", len(stack), stack[0].Width)
	}
}
