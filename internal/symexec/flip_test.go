package symexec

import (
	"testing"

	"repro/internal/symbolic"
)

// synthetic result construction helpers.
func mkResult(ctx *symbolic.Ctx, conds ...CondState) *Result {
	return &Result{Ctx: ctx, Conds: conds}
}

func TestFlipQueriesBranchDirections(t *testing.T) {
	ctx := symbolic.NewCtx()
	x := ctx.Var(VarName(0), 64)
	cond := ctx.FromBool(ctx.Eq(x, ctx.Const(5, 64)), 32)

	// A taken input-dependent branch flips to the untaken direction.
	res := mkResult(ctx, CondState{Kind: CondBranch, Cond: cond, Taken: true, Func: 7, PC: 3})
	qs := FlipQueries(res)
	if len(qs) != 1 {
		t.Fatalf("queries = %d, want 1", len(qs))
	}
	if qs[0].Target != (BranchTarget{Func: 7, PC: 3, Dir: 0}) {
		t.Errorf("target = %+v", qs[0].Target)
	}
	m, r := (&symbolic.Solver{}).Solve(qs[0].Constraints)
	if r != symbolic.Sat || m[VarName(0)] == 5 {
		t.Errorf("flip of taken x==5 should give x != 5: %v %v", m, r)
	}

	// The untaken direction flips to taken.
	res = mkResult(ctx, CondState{Kind: CondBranch, Cond: cond, Taken: false, Func: 7, PC: 3})
	qs = FlipQueries(res)
	if qs[0].Target.Dir != 1 {
		t.Errorf("dir = %d, want 1", qs[0].Target.Dir)
	}
	m, r = (&symbolic.Solver{}).Solve(qs[0].Constraints)
	if r != symbolic.Sat || m[VarName(0)] != 5 {
		t.Errorf("flip of untaken x==5 should give x == 5: %v %v", m, r)
	}
}

func TestFlipQueriesRespectPathPrefix(t *testing.T) {
	ctx := symbolic.NewCtx()
	x := ctx.Var(VarName(0), 64)
	first := ctx.FromBool(ctx.Ult(x, ctx.Const(100, 64)), 32) // taken: x < 100
	second := ctx.FromBool(ctx.Ult(x, ctx.Const(50, 64)), 32) // untaken: !(x < 50)
	res := mkResult(ctx,
		CondState{Kind: CondBranch, Cond: first, Taken: true, Func: 1, PC: 1},
		CondState{Kind: CondBranch, Cond: second, Taken: false, Func: 1, PC: 2},
	)
	qs := FlipQueries(res)
	if len(qs) != 2 {
		t.Fatalf("queries = %d, want 2", len(qs))
	}
	// Flipping the second keeps the first as a prefix: x < 100 AND x < 50.
	m, r := (&symbolic.Solver{}).Solve(qs[1].Constraints)
	if r != symbolic.Sat {
		t.Fatalf("second flip unsat")
	}
	if m[VarName(0)] >= 50 {
		t.Errorf("x = %d violates the flipped second branch", m[VarName(0)])
	}
}

func TestFlipQueriesFailedAssertRequired(t *testing.T) {
	ctx := symbolic.NewCtx()
	x := ctx.Var(VarName(0), 64)
	assertCond := ctx.FromBool(ctx.Uge(x, ctx.Const(100000, 64)), 32)
	res := mkResult(ctx, CondState{Kind: CondAssert, Cond: assertCond, Taken: false, Func: 2, PC: 9})
	qs := FlipQueries(res)
	if len(qs) != 1 {
		t.Fatalf("queries = %d, want 1", len(qs))
	}
	m, r := (&symbolic.Solver{}).Solve(qs[0].Constraints)
	if r != symbolic.Sat || m[VarName(0)] < 100000 {
		t.Errorf("assert flip should satisfy x >= 100000: %v", m)
	}

	// A PASSED assert is a requirement, not a flip target.
	res = mkResult(ctx, CondState{Kind: CondAssert, Cond: assertCond, Taken: true, Func: 2, PC: 9})
	if qs := FlipQueries(res); len(qs) != 0 {
		t.Errorf("passed assert produced %d queries", len(qs))
	}
}

func TestFlipQueriesSkipNonInputConds(t *testing.T) {
	ctx := symbolic.NewCtx()
	memObj := ctx.Var("mem[100]", 8) // a symbolic load object, not an input
	cond := ctx.FromBool(ctx.Eq(memObj, ctx.Const(1, 8)), 32)
	res := mkResult(ctx, CondState{Kind: CondBranch, Cond: cond, Taken: true, Func: 1, PC: 1})
	if qs := FlipQueries(res); len(qs) != 0 {
		t.Errorf("non-steerable branch produced %d queries", len(qs))
	}
	// Constant conditions are equally non-steerable.
	constCond := ctx.Const(1, 32)
	res = mkResult(ctx, CondState{Kind: CondBranch, Cond: constCond, Taken: true, Func: 1, PC: 1})
	if qs := FlipQueries(res); len(qs) != 0 {
		t.Errorf("constant branch produced %d queries", len(qs))
	}
}

func TestFlipQueriesBrTableAlternatives(t *testing.T) {
	ctx := symbolic.NewCtx()
	x := ctx.Var(VarName(0), 64)
	idx := ctx.Truncate(ctx.And(x, ctx.Const(3, 64)), 32)
	res := mkResult(ctx, CondState{
		Kind: CondBrTable, Cond: idx, Index: 1, NumTargets: 4, Func: 4, PC: 8,
	})
	qs := FlipQueries(res)
	if len(qs) != 3 {
		t.Fatalf("queries = %d, want 3 (every arm but the taken one)", len(qs))
	}
	seen := map[uint64]bool{}
	for _, q := range qs {
		m, r := (&symbolic.Solver{}).Solve(q.Constraints)
		if r != symbolic.Sat {
			t.Fatalf("arm query unsat")
		}
		seen[m[VarName(0)]&3] = true
	}
	if len(seen) != 3 || seen[1] {
		t.Errorf("arm selection values: %v", seen)
	}
}

func TestPathConstraintForms(t *testing.T) {
	ctx := symbolic.NewCtx()
	x := ctx.Var("p0", 64)
	cond := ctx.FromBool(ctx.Eq(x, ctx.Const(9, 64)), 32)

	taken := CondState{Kind: CondBranch, Cond: cond, Taken: true}
	if !symbolic.EvalBool(taken.PathConstraint(ctx), symbolic.Model{"p0": 9}) {
		t.Error("taken constraint should hold at x=9")
	}
	untaken := CondState{Kind: CondBranch, Cond: cond, Taken: false}
	if symbolic.EvalBool(untaken.PathConstraint(ctx), symbolic.Model{"p0": 9}) {
		t.Error("untaken constraint should fail at x=9")
	}
	table := CondState{Kind: CondBrTable, Cond: ctx.Truncate(x, 32), Index: 3}
	if !symbolic.EvalBool(table.PathConstraint(ctx), symbolic.Model{"p0": 3}) {
		t.Error("br_table constraint should hold at index 3")
	}
}
