package symexec

import (
	"testing"
	"testing/quick"

	"repro/internal/symbolic"
	"repro/internal/wasm"
)

func TestMemoryStoreLoadRoundTrip(t *testing.T) {
	ctx := symbolic.NewCtx()
	m := NewMemory(ctx)
	v := ctx.Const(0x1122334455667788, 64)
	m.Store(100, 8, v)
	got := m.Load(100, 8)
	if gv, ok := got.IsConst(); !ok || gv != 0x1122334455667788 {
		t.Errorf("load = %s", got)
	}
	// Partial loads see the right bytes (little-endian).
	lo := m.Load(100, 4)
	if gv, ok := lo.IsConst(); !ok || gv != 0x55667788 {
		t.Errorf("low half = %s", lo)
	}
	hi := m.Load(104, 4)
	if gv, ok := hi.IsConst(); !ok || gv != 0x11223344 {
		t.Errorf("high half = %s", hi)
	}
}

func TestMemoryOverwrite(t *testing.T) {
	ctx := symbolic.NewCtx()
	m := NewMemory(ctx)
	m.Store(0, 8, ctx.Const(0, 64))
	// Overwrite the middle two bytes.
	m.Store(3, 2, ctx.Const(0xffff, 16))
	got := m.Load(0, 8)
	if gv, ok := got.IsConst(); !ok || gv != 0x000000ffff000000 {
		t.Errorf("after overlap: %s", got)
	}
}

func TestMemorySymbolicContent(t *testing.T) {
	ctx := symbolic.NewCtx()
	m := NewMemory(ctx)
	x := ctx.Var("x", 64)
	m.Store(16, 8, x)
	back := m.Load(16, 8)
	// Loading what was stored reconstructs the same expression.
	if back != x {
		// Byte-split + concat should simplify back to x via the
		// extract-concat rules; if not identical, they must at least be
		// semantically equal.
		model := symbolic.Model{"x": 0xdeadbeefcafe1234}
		if symbolic.Eval(back, model) != model["x"] {
			t.Errorf("reload is not value-preserving: %s", back)
		}
	}
}

// TestMemorySymbolicLoadObjects: unknown cells materialize as fresh vars
// that stay consistent across loads (the ⟨a, s⟩ objects of §3.4.1).
func TestMemorySymbolicLoadObjects(t *testing.T) {
	ctx := symbolic.NewCtx()
	m := NewMemory(ctx)
	a := m.Load(555, 4)
	b := m.Load(555, 4)
	if a != b {
		t.Error("repeated load of unknown memory returned different objects")
	}
	if m.LoadObjects() != 4 {
		t.Errorf("load objects = %d, want 4", m.LoadObjects())
	}
	// A store then shadows the fresh bytes.
	m.Store(555, 4, ctx.Const(7, 32))
	c := m.Load(555, 4)
	if gv, ok := c.IsConst(); !ok || gv != 7 {
		t.Errorf("after store: %s", c)
	}
}

func TestLoadOpExtension(t *testing.T) {
	ctx := symbolic.NewCtx()
	m := NewMemory(ctx)
	m.Store(0, 1, ctx.Const(0x80, 8))
	u, err := m.LoadOp(wasm.OpI32Load8U, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gv, _ := u.IsConst(); gv != 0x80 || u.Width != 32 {
		t.Errorf("load8_u = %s (width %d)", u, u.Width)
	}
	s, err := m.LoadOp(wasm.OpI32Load8S, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gv, _ := s.IsConst(); gv != 0xffffff80 {
		t.Errorf("load8_s = %s", s)
	}
	s64, err := m.LoadOp(wasm.OpI64Load32S, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s64.Width != 64 {
		t.Errorf("load32_s width = %d", s64.Width)
	}
}

func TestStoreOpTruncates(t *testing.T) {
	ctx := symbolic.NewCtx()
	m := NewMemory(ctx)
	if err := m.StoreOp(wasm.OpI64Store8, 9, ctx.Const(0xABCD, 64)); err != nil {
		t.Fatal(err)
	}
	got := m.Load(9, 1)
	if gv, _ := got.IsConst(); gv != 0xCD {
		t.Errorf("store8 wrote %s", got)
	}
}

// TestMemoryModelsAgree property-checks the fast byte-map model against the
// EOSAFE-style naive model on random store/load sequences.
func TestMemoryModelsAgree(t *testing.T) {
	f := func(ops []struct {
		Addr  uint16
		Val   uint32
		Size  uint8
		Store bool
	}) bool {
		ctx := symbolic.NewCtx()
		fast := NewMemory(ctx)
		naive := NewNaiveMemory(ctx)
		if len(ops) > 40 {
			ops = ops[:40]
		}
		for _, op := range ops {
			size := int(op.Size%4) + 1
			addr := uint32(op.Addr % 256)
			if op.Store {
				v := ctx.Const(uint64(op.Val), uint8(8*size))
				fast.Store(addr, size, v)
				naive.Store(addr, size, v)
			} else {
				a := fast.Load(addr, size)
				b := naive.Load(addr, size)
				av, aok := a.IsConst()
				bv, bok := b.IsConst()
				// When both are concrete they must agree; symbolic results
				// may differ structurally (fresh objects are per-model).
				if aok && bok && av != bv {
					return false
				}
				if aok != bok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyModelMapsVariables(t *testing.T) {
	params := []Param{
		{Type: "name", U64: 1},
		{Type: "asset", Amount: 2, Symbol: 3},
		{Type: "string", Str: []byte("abc")},
	}
	model := symbolic.Model{
		VarName(0):       100,
		VarAmount(1):     200,
		VarStrByte(2, 1): 'Z',
	}
	out := ApplyModel(params, model)
	if out[0].U64 != 100 {
		t.Errorf("p0 = %d", out[0].U64)
	}
	if out[1].Amount != 200 || out[1].Symbol != 3 {
		t.Errorf("asset = %d/%d", out[1].Amount, out[1].Symbol)
	}
	if string(out[2].Str) != "aZc" {
		t.Errorf("str = %q", out[2].Str)
	}
	// Originals untouched.
	if params[0].U64 != 1 || string(params[2].Str) != "abc" {
		t.Error("ApplyModel mutated its input")
	}
}
