package symexec

import (
	"fmt"

	"repro/internal/symbolic"
	"repro/internal/wasm"
)

// applyNumeric lifts a pure numeric/comparison/conversion opcode into the
// symbolic domain (Table 3's unary/binary rows). Floating-point results are
// opaque fresh variables: EOSIO contracts do not branch on float inputs in
// the workloads WASAI targets, and the paper's constraint language is
// bitvectors.
func (r *replayer) applyNumeric(op wasm.Opcode, stack *[]*symbolic.Expr, popW func(uint8) *symbolic.Expr) error {
	c := r.ctx
	push := func(e *symbolic.Expr) { *stack = append(*stack, e) }
	pushBool := func(b *symbolic.Expr, w uint8) { push(c.FromBool(b, 32)); _ = w }

	bin64 := func(f func(a, b *symbolic.Expr) *symbolic.Expr) {
		b := popW(64)
		a := popW(64)
		push(f(a, b))
	}
	bin32 := func(f func(a, b *symbolic.Expr) *symbolic.Expr) {
		b := popW(32)
		a := popW(32)
		push(f(a, b))
	}
	cmp64 := func(f func(a, b *symbolic.Expr) *symbolic.Expr) {
		b := popW(64)
		a := popW(64)
		pushBool(f(a, b), 32)
	}
	cmp32 := func(f func(a, b *symbolic.Expr) *symbolic.Expr) {
		b := popW(32)
		a := popW(32)
		pushBool(f(a, b), 32)
	}

	switch op {
	// i32 comparisons
	case wasm.OpI32Eqz:
		pushBool(c.Eq(popW(32), c.Const(0, 32)), 32)
	case wasm.OpI32Eq:
		cmp32(c.Eq)
	case wasm.OpI32Ne:
		cmp32(c.Ne)
	case wasm.OpI32LtS:
		cmp32(c.Slt)
	case wasm.OpI32LtU:
		cmp32(c.Ult)
	case wasm.OpI32GtS:
		cmp32(c.Sgt)
	case wasm.OpI32GtU:
		cmp32(c.Ugt)
	case wasm.OpI32LeS:
		cmp32(c.Sle)
	case wasm.OpI32LeU:
		cmp32(c.Ule)
	case wasm.OpI32GeS:
		cmp32(c.Sge)
	case wasm.OpI32GeU:
		cmp32(c.Uge)

	// i64 comparisons (i64.eq / i64.ne are handled at the call site to
	// consume their HookCmp events)
	case wasm.OpI64Eqz:
		pushBool(c.Eq(popW(64), c.Const(0, 64)), 32)
	case wasm.OpI64LtS:
		cmp64(c.Slt)
	case wasm.OpI64LtU:
		cmp64(c.Ult)
	case wasm.OpI64GtS:
		cmp64(c.Sgt)
	case wasm.OpI64GtU:
		cmp64(c.Ugt)
	case wasm.OpI64LeS:
		cmp64(c.Sle)
	case wasm.OpI64LeU:
		cmp64(c.Ule)
	case wasm.OpI64GeS:
		cmp64(c.Sge)
	case wasm.OpI64GeU:
		cmp64(c.Uge)

	// i32 arithmetic
	case wasm.OpI32Add:
		bin32(c.Add)
	case wasm.OpI32Sub:
		bin32(c.Sub)
	case wasm.OpI32Mul:
		bin32(c.Mul)
	case wasm.OpI32DivS:
		bin32(c.SDiv)
	case wasm.OpI32DivU:
		bin32(c.UDiv)
	case wasm.OpI32RemS:
		bin32(c.SRem)
	case wasm.OpI32RemU:
		bin32(c.URem)
	case wasm.OpI32And:
		bin32(c.And)
	case wasm.OpI32Or:
		bin32(c.Or)
	case wasm.OpI32Xor:
		bin32(c.Xor)
	case wasm.OpI32Shl:
		bin32(c.Shl)
	case wasm.OpI32ShrS:
		bin32(c.Ashr)
	case wasm.OpI32ShrU:
		bin32(c.Lshr)
	case wasm.OpI32Rotl:
		bin32(c.Rotl)
	case wasm.OpI32Rotr:
		bin32(c.Rotr)
	case wasm.OpI32Popcnt:
		push(c.Popcount(popW(32)))
	case wasm.OpI32Clz, wasm.OpI32Ctz:
		// Rarely input-dependent; model as opaque.
		popW(32)
		push(c.Fresh("clz32", 32))

	// i64 arithmetic
	case wasm.OpI64Add:
		bin64(c.Add)
	case wasm.OpI64Sub:
		bin64(c.Sub)
	case wasm.OpI64Mul:
		bin64(c.Mul)
	case wasm.OpI64DivS:
		bin64(c.SDiv)
	case wasm.OpI64DivU:
		bin64(c.UDiv)
	case wasm.OpI64RemS:
		bin64(c.SRem)
	case wasm.OpI64RemU:
		bin64(c.URem)
	case wasm.OpI64And:
		bin64(c.And)
	case wasm.OpI64Or:
		bin64(c.Or)
	case wasm.OpI64Xor:
		bin64(c.Xor)
	case wasm.OpI64Shl:
		bin64(c.Shl)
	case wasm.OpI64ShrS:
		bin64(c.Ashr)
	case wasm.OpI64ShrU:
		bin64(c.Lshr)
	case wasm.OpI64Rotl:
		bin64(c.Rotl)
	case wasm.OpI64Rotr:
		bin64(c.Rotr)
	case wasm.OpI64Popcnt:
		push(c.Popcount(popW(64)))
	case wasm.OpI64Clz, wasm.OpI64Ctz:
		popW(64)
		push(c.Fresh("clz64", 64))

	// conversions
	case wasm.OpI32WrapI64:
		push(c.Truncate(popW(64), 32))
	case wasm.OpI64ExtendI32S:
		push(c.SExt(popW(32), 64))
	case wasm.OpI64ExtendI32U:
		push(c.ZExt(popW(32), 64))
	case wasm.OpI32ReinterpretF32, wasm.OpF32ReinterpretI32:
		push(popW(32))
	case wasm.OpI64ReinterpretF64, wasm.OpF64ReinterpretI64:
		push(popW(64))

	default:
		// Floating-point operations and float<->int conversions: opaque.
		imm, known := op.Imm()
		if !known || imm != wasm.ImmNone {
			return fmt.Errorf("symexec: unhandled opcode %s", op.Name())
		}
		arity, width := floatArity(op)
		if arity == 0 {
			return fmt.Errorf("symexec: unhandled opcode %s", op.Name())
		}
		for i := 0; i < arity; i++ {
			if len(*stack) == 0 {
				return fmt.Errorf("symexec: stack underflow at %s", op.Name())
			}
			*stack = (*stack)[:len(*stack)-1]
		}
		push(c.Fresh("fp", width))
	}
	return nil
}

// floatArity returns operand count and result width for float-family
// opcodes (0 arity marks opcodes this function does not cover).
func floatArity(op wasm.Opcode) (int, uint8) {
	switch {
	case op >= wasm.OpF32Eq && op <= wasm.OpF64Ge:
		return 2, 32 // comparison result is i32
	case op >= wasm.OpF32Abs && op <= wasm.OpF32Sqrt:
		return 1, 32
	case op >= wasm.OpF32Add && op <= wasm.OpF32Copysign:
		return 2, 32
	case op >= wasm.OpF64Abs && op <= wasm.OpF64Sqrt:
		return 1, 64
	case op >= wasm.OpF64Add && op <= wasm.OpF64Copysign:
		return 2, 64
	case op >= wasm.OpI32TruncF32S && op <= wasm.OpI32TruncF64U:
		return 1, 32
	case op >= wasm.OpI64TruncF32S && op <= wasm.OpI64TruncF64U:
		return 1, 64
	case op >= wasm.OpF32ConvertI32S && op <= wasm.OpF32DemoteF64:
		return 1, 32
	case op >= wasm.OpF64ConvertI32S && op <= wasm.OpF64PromoteF32:
		return 1, 64
	default:
		return 0, 0
	}
}
