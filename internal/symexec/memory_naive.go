package symexec

import (
	"fmt"

	"repro/internal/symbolic"
)

// NaiveMemory is the EOSAFE-style memory model the paper contrasts with
// (§3.2 C2): an append-only mapping of (address, content) writes where
// every load "needs to search all items in its memory model to merge the
// overlapped contents". It exists for the ablation benchmark comparing
// symbolic-memory throughput; Symback itself uses Memory.
type NaiveMemory struct {
	ctx    *symbolic.Ctx
	writes []naiveWrite
	fresh  map[uint32]*symbolic.Expr
}

type naiveWrite struct {
	addr uint32
	size int
	val  *symbolic.Expr
}

// NewNaiveMemory returns an empty naive model over ctx.
func NewNaiveMemory(ctx *symbolic.Ctx) *NaiveMemory {
	return &NaiveMemory{ctx: ctx, fresh: map[uint32]*symbolic.Expr{}}
}

// Store appends a write record without any indexing.
func (m *NaiveMemory) Store(addr uint32, size int, val *symbolic.Expr) {
	m.writes = append(m.writes, naiveWrite{addr: addr, size: size, val: val})
}

// Load scans every write (newest last wins) for each requested byte and
// concatenates the result — the O(n·size) behaviour that throttles EOSAFE
// on deep code.
func (m *NaiveMemory) Load(addr uint32, size int) *symbolic.Expr {
	var out *symbolic.Expr
	for i := size - 1; i >= 0; i-- {
		b := m.loadByte(addr + uint32(i))
		if out == nil {
			out = b
		} else {
			out = m.ctx.Concat(out, b)
		}
	}
	return out
}

func (m *NaiveMemory) loadByte(a uint32) *symbolic.Expr {
	// Scan all items, newest overriding: a full pass per byte.
	var found *symbolic.Expr
	for _, w := range m.writes {
		if a >= w.addr && a < w.addr+uint32(w.size) {
			lo := uint8(8 * (a - w.addr))
			found = m.ctx.Extract(w.val, lo+7, lo)
		}
	}
	if found != nil {
		return found
	}
	if f, ok := m.fresh[a]; ok {
		return f
	}
	f := m.ctx.Var(fmt.Sprintf("mem[%d]", a), 8)
	m.fresh[a] = f
	return f
}
