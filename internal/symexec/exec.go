package symexec

import (
	"errors"
	"fmt"

	"repro/internal/symbolic"
	"repro/internal/trace"
	"repro/internal/wasm"
)

// ctrlFrame mirrors the structured-control stack of the concrete VM.
type ctrlFrame struct {
	startPC   int
	endPC     int
	stackH    int
	isLoop    bool
	hasResult bool
}

// execFunc symbolically executes one function of the original module,
// consuming trace events for every non-deterministic step (Table 3).
func (r *replayer) execFunc(fn uint32, locals []*symbolic.Expr) (results []*symbolic.Expr, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			results, err = nil, fmt.Errorf("symexec: func %d: %v", fn, rec)
		}
	}()
	code := r.mod.CodeFor(fn)
	if code == nil {
		return nil, fmt.Errorf("symexec: func %d has no body (import?)", fn)
	}
	meta, err := r.meta(fn)
	if err != nil {
		return nil, err
	}
	ft, err := r.mod.FuncTypeAt(fn)
	if err != nil {
		return nil, err
	}

	var (
		stack []*symbolic.Expr
		ctrl  []ctrlFrame
	)
	push := func(e *symbolic.Expr) { stack = append(stack, e) }
	pop := func() *symbolic.Expr {
		if len(stack) == 0 {
			panic("symbolic stack underflow")
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e
	}
	// popW pops and coerces to width w (robust against width drift from
	// zero-initialized locals).
	popW := func(w uint8) *symbolic.Expr {
		e := pop()
		switch {
		case e.Width == w:
			return e
		case e.Width > w:
			return r.ctx.Truncate(e, w)
		default:
			return r.ctx.ZExt(e, w)
		}
	}

	branchTo := func(d int) int {
		target := ctrl[len(ctrl)-1-d]
		if target.isLoop {
			stack = stack[:target.stackH]
			ctrl = ctrl[:len(ctrl)-d]
			return target.startPC + 1
		}
		var res *symbolic.Expr
		if target.hasResult && len(stack) > 0 {
			res = stack[len(stack)-1]
		}
		stack = stack[:target.stackH]
		if res != nil {
			stack = append(stack, res)
		}
		ctrl = ctrl[:len(ctrl)-1-d]
		return target.endPC + 1
	}

	takeResults := func() []*symbolic.Expr {
		n := len(ft.Results)
		if n == 0 || len(stack) < n {
			return nil
		}
		out := make([]*symbolic.Expr, n)
		copy(out, stack[len(stack)-n:])
		return out
	}

	body := code.Body
	pc := 0
	for pc < len(body) {
		if r.steps++; r.steps > r.maxSteps {
			return nil, fmt.Errorf("symexec: step budget exceeded (%d)", r.maxSteps)
		}
		in := body[pc]
		switch {
		case in.Op == wasm.OpUnreachable:
			// The concrete run trapped here; the trace ends.
			return nil, errTraceEnd

		case in.Op == wasm.OpNop:

		case in.Op == wasm.OpBlock, in.Op == wasm.OpLoop:
			ctrl = append(ctrl, ctrlFrame{
				startPC: pc, endPC: meta.EndOf[pc], stackH: len(stack),
				isLoop: in.Op == wasm.OpLoop, hasResult: in.A != wasm.BlockTypeEmpty,
			})

		case in.Op == wasm.OpIf:
			ev, err := r.expect(trace.HookCond, fn, pc)
			if err != nil {
				return nil, err
			}
			cond := pop()
			taken := ev.Operand != 0
			r.conds = append(r.conds, CondState{
				Kind: CondBranch, Cond: cond, Taken: taken, Func: fn, PC: pc,
			})
			endPC := meta.EndOf[pc]
			elsePC := meta.ElseOf[pc]
			if taken {
				ctrl = append(ctrl, ctrlFrame{startPC: pc, endPC: endPC, stackH: len(stack), hasResult: in.A != wasm.BlockTypeEmpty})
			} else if elsePC != endPC {
				ctrl = append(ctrl, ctrlFrame{startPC: pc, endPC: endPC, stackH: len(stack), hasResult: in.A != wasm.BlockTypeEmpty})
				pc = elsePC + 1
				continue
			} else {
				pc = endPC + 1
				continue
			}

		case in.Op == wasm.OpElse:
			pc = ctrl[len(ctrl)-1].endPC
			continue

		case in.Op == wasm.OpEnd:
			if pc == len(body)-1 {
				if _, err := r.expectLabel(trace.HookFuncEnd, fn); err != nil {
					return nil, err
				}
				return takeResults(), nil
			}
			if len(ctrl) > 0 {
				ctrl = ctrl[:len(ctrl)-1]
			}

		case in.Op == wasm.OpBr:
			pc = branchTo(int(in.A))
			continue

		case in.Op == wasm.OpBrIf:
			ev, err := r.expect(trace.HookCond, fn, pc)
			if err != nil {
				return nil, err
			}
			cond := pop()
			taken := ev.Operand != 0
			r.conds = append(r.conds, CondState{
				Kind: CondBranch, Cond: cond, Taken: taken, Func: fn, PC: pc,
			})
			if taken {
				pc = branchTo(int(in.A))
				continue
			}

		case in.Op == wasm.OpBrTable:
			ev, err := r.expect(trace.HookBrTable, fn, pc)
			if err != nil {
				return nil, err
			}
			idx := pop()
			r.conds = append(r.conds, CondState{
				Kind: CondBrTable, Cond: idx, Index: ev.Operand,
				NumTargets: len(in.Table) + 1, Func: fn, PC: pc,
			})
			d := in.A
			if int(ev.Operand) < len(in.Table) {
				d = in.Table[ev.Operand]
			}
			pc = branchTo(int(d))
			continue

		case in.Op == wasm.OpReturn:
			if _, err := r.expectLabel(trace.HookFuncEnd, fn); err != nil {
				return nil, err
			}
			return takeResults(), nil

		case in.Op == wasm.OpCall, in.Op == wasm.OpCallIndirect:
			if in.Op == wasm.OpCallIndirect {
				pop() // table index expression; resolution comes from the trace
			}
			if _, err := r.expect(trace.HookCallPre, fn, pc); err != nil {
				return nil, err
			}
			callEv, err := r.expect(trace.HookCall, fn, pc)
			if err != nil {
				return nil, err
			}
			callee := uint32(callEv.Operand)
			if err := r.doCall(fn, pc, callee, &stack); err != nil {
				return nil, err
			}

		case in.Op == wasm.OpDrop:
			pop()

		case in.Op == wasm.OpSelect:
			c := popW(32)
			b := pop()
			a := pop()
			if b.Width != a.Width {
				if b.Width < a.Width {
					b = r.ctx.ZExt(b, a.Width)
				} else {
					a = r.ctx.ZExt(a, b.Width)
				}
			}
			push(r.ctx.Ite(r.ctx.Bool(c), a, b))

		case in.Op == wasm.OpLocalGet:
			push(locals[in.A])
		case in.Op == wasm.OpLocalSet:
			locals[in.A] = pop()
		case in.Op == wasm.OpLocalTee:
			locals[in.A] = stack[len(stack)-1]
		case in.Op == wasm.OpGlobalGet:
			push(r.globals[in.A])
		case in.Op == wasm.OpGlobalSet:
			r.globals[in.A] = pop()

		case in.Op == wasm.OpI32Const:
			push(r.ctx.Const(uint64(uint32(in.I32())), 32))
		case in.Op == wasm.OpI64Const:
			push(r.ctx.Const(in.Imm, 64))
		case in.Op == wasm.OpF32Const:
			push(r.ctx.Const(in.Imm, 32))
		case in.Op == wasm.OpF64Const:
			push(r.ctx.Const(in.Imm, 64))

		case in.Op == wasm.OpMemorySize:
			// Table 3: balance the stack with the constant 4096.
			push(r.ctx.Const(4096, 32))
		case in.Op == wasm.OpMemoryGrow:
			pop()
			push(r.ctx.Const(4096, 32))

		case in.Op.IsLoad():
			ev, err := r.expect(trace.HookMem, fn, pc)
			if err != nil {
				return nil, err
			}
			pop() // symbolic address expression; the model uses the concrete one
			addr := uint32(ev.Operand) + in.B
			val, err := r.mem.LoadOp(in.Op, addr)
			if err != nil {
				return nil, err
			}
			push(val)

		case in.Op.IsStore():
			ev, err := r.expect(trace.HookMem, fn, pc)
			if err != nil {
				return nil, err
			}
			val := pop()
			pop() // symbolic address
			addr := uint32(ev.Operand) + in.B
			if err := r.mem.StoreOp(in.Op, addr, val); err != nil {
				return nil, err
			}

		case in.Op == wasm.OpI64Eq || in.Op == wasm.OpI64Ne:
			// Two HookCmp events carry the concrete operands for the
			// guard-code detector; the symbolic result comes from μ.
			if _, err := r.expect(trace.HookCmp, fn, pc); err != nil {
				return nil, err
			}
			if _, err := r.expect(trace.HookCmp, fn, pc); err != nil {
				return nil, err
			}
			b := popW(64)
			a := popW(64)
			res := r.ctx.Eq(a, b)
			if in.Op == wasm.OpI64Ne {
				res = r.ctx.BoolNot(res)
			}
			push(r.ctx.FromBool(res, 32))

		default:
			if err := r.applyNumeric(in.Op, &stack, popW); err != nil {
				return nil, err
			}
		}
		pc++
	}
	// Fell off the end without an explicit final End (cannot happen for
	// decoded bodies, which are End-terminated).
	return takeResults(), nil
}

// expectLabel consumes a label event (function_begin/function_end) for fn.
func (r *replayer) expectLabel(kind trace.HookKind, fn uint32) (trace.Event, error) {
	ev, err := r.next()
	if err != nil {
		return ev, err
	}
	if ev.Kind != kind || ev.Func != fn {
		return ev, fmt.Errorf("symexec: trace desync: want %s(func %d), got %s(func %d, pc %d)",
			kind, fn, ev.Kind, ev.Func, ev.PC)
	}
	return ev, nil
}

// doCall handles both host and local callees at call site (fn, pc).
func (r *replayer) doCall(fn uint32, pc int, callee uint32, stack *[]*symbolic.Expr) error {
	ft, err := r.mod.FuncTypeAt(callee)
	if err != nil {
		return err
	}
	// Pop arguments (last parameter on top).
	n := len(ft.Params)
	s := *stack
	if len(s) < n {
		return fmt.Errorf("symexec: stack underflow calling func %d", callee)
	}
	args := make([]*symbolic.Expr, n)
	copy(args, s[len(s)-n:])
	*stack = s[:len(s)-n]

	if int(callee) < r.numImports {
		return r.doHostCall(fn, pc, callee, args, stack)
	}

	// Local callee: its begin label, parameter duplication and body events
	// follow in the trace (Table 3's call_pre/function_begin).
	if _, err := r.expectLabel(trace.HookFuncBegin, callee); err != nil {
		return err
	}
	calleeFt, err := r.mod.FuncTypeAt(callee)
	if err != nil {
		return err
	}
	// Consume the HookParam duplications.
	for i := 0; i < len(calleeFt.Params); i++ {
		ev, err := r.next()
		if err != nil {
			return err
		}
		if ev.Kind != trace.HookParam {
			return fmt.Errorf("symexec: want param event for func %d, got %s", callee, ev.Kind)
		}
	}
	code := r.mod.CodeFor(callee)
	if code == nil {
		return fmt.Errorf("symexec: callee %d has no body", callee)
	}
	locals := make([]*symbolic.Expr, len(calleeFt.Params)+int(code.NumLocals()))
	copy(locals, args)
	for i := len(args); i < len(locals); i++ {
		locals[i] = r.ctx.Const(0, 64)
	}
	results, err := r.execFunc(callee, locals)
	if err != nil {
		return err
	}
	// call_post at the caller.
	if _, err := r.expect(trace.HookCallPost, fn, pc); err != nil {
		return err
	}
	*stack = append(*stack, results...)
	return nil
}

// hostName returns the import name of an imported function index.
func (r *replayer) hostName(callee uint32) string {
	imp, ok := r.mod.ImportedFunc(int(callee))
	if !ok {
		return ""
	}
	return imp.Name
}

// doHostCall models library-API calls: returns come from the call_post
// event, and eosio_assert contributes an assertion conditional state.
func (r *replayer) doHostCall(fn uint32, pc int, callee uint32, args []*symbolic.Expr, stack *[]*symbolic.Expr) error {
	name := r.hostName(callee)
	if name == "eosio_assert" && len(args) > 0 {
		r.conds = append(r.conds, CondState{
			Kind: CondAssert, Cond: args[0], Taken: true, Func: fn, PC: pc,
		})
	}
	ft, err := r.mod.FuncTypeAt(callee)
	if err != nil {
		return err
	}
	ev, err := r.expect(trace.HookCallPost, fn, pc)
	if err != nil {
		if errors.Is(err, errTraceEnd) && name == "eosio_assert" {
			// The assert failed and aborted the transaction: the recorded
			// conditional took the unsatisfied direction.
			r.conds[len(r.conds)-1].Taken = false
		}
		return err
	}
	if len(ft.Results) > 0 {
		*stack = append(*stack, r.ctx.Const(ev.Operand, widthOf(ft.Results[0])))
	}
	return nil
}
