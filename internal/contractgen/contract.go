package contractgen

import (
	"fmt"
	"math/rand"

	"repro/internal/abi"
	"repro/internal/eos"
	"repro/internal/wasm"
)

// Class enumerates the vulnerability classes: the five trace-oracle
// classes of paper §2.3 plus the three on-chain-data scenario classes
// (WACANA's state-tampering, transaction-ordering-dependence and
// inter-contract-call families) the multi-transaction driver detects.
type Class int

// Vulnerability classes.
const (
	ClassFakeEOS Class = iota + 1
	ClassFakeNotif
	ClassMissAuth
	ClassBlockinfoDep
	ClassRollback
	// ClassStateTamper: contract state written under one authority can be
	// overwritten by a later transaction that carries a different one.
	ClassStateTamper
	// ClassOrderDep: the contract's observable outcome depends on the
	// order of independently submitted transactions.
	ClassOrderDep
	// ClassCrossContract: privileged logic dispatches on actions whose
	// code is a foreign contract, reachable through a malicious notifier.
	ClassCrossContract
)

// String names the class as in the paper's tables.
func (c Class) String() string {
	switch c {
	case ClassFakeEOS:
		return "Fake EOS"
	case ClassFakeNotif:
		return "Fake Notif"
	case ClassMissAuth:
		return "MissAuth"
	case ClassBlockinfoDep:
		return "BlockinfoDep"
	case ClassRollback:
		return "Rollback"
	case ClassStateTamper:
		return "StateTamper"
	case ClassOrderDep:
		return "OrderDep"
	case ClassCrossContract:
		return "CrossContract"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists all classes in table order: the paper's five first, then
// the on-chain-data scenario classes.
var Classes = []Class{
	ClassFakeEOS, ClassFakeNotif, ClassMissAuth, ClassBlockinfoDep, ClassRollback,
	ClassStateTamper, ClassOrderDep, ClassCrossContract,
}

// Action names used by generated contracts.
var (
	ActionDeposit = eos.MustName("deposit")
	ActionSweep   = eos.MustName("sweep")
	ActionReveal  = eos.MustName("reveal")
	// ActionSettle is the StateTamper archetype's action: it overwrites
	// the row keyed by the payload's `from`.
	ActionSettle = eos.MustName("settle")
	// ActionClaim is the OrderDep archetype's action: it competes for the
	// shared pot row.
	ActionClaim = eos.MustName("claim")
	// ActionRelay is the CrossContract archetype's action: its dispatcher
	// arm only fires for foreign-code invocations (code != receiver), the
	// notification context a malicious contract controls.
	ActionRelay = eos.MustName("relay")
	TableBets   = eos.MustName("bets")
	// TableDeposits is written only by the deposit action; reveal's
	// transaction dependency reads it, so the DBG has to schedule deposit.
	TableDeposits = eos.MustName("deposits")
	// TablePot is the single-row table the OrderDep claim races for.
	TablePot = eos.MustName("pot")
	// PartnerAccount is the one foreign contract the safe CrossContract
	// variant accepts relayed actions from.
	PartnerAccount = eos.MustName("partner")
)

// DispatcherStyle selects how apply() encodes its action dispatch.
type DispatcherStyle int

// Dispatcher styles.
const (
	// DispatchCanonical is the SDK-default shape: action == N(x) ? via
	// i64.eq + if.
	DispatchCanonical DispatcherStyle = iota
	// DispatchBlockSkip encodes each arm as a block skipped with
	// i64.ne + br_if — semantically identical, invisible to eq+if pattern
	// matchers.
	DispatchBlockSkip
)

// VerCheck is one injected complicated-verification clause (§4.3): the
// field must equal Value or the contract hits `unreachable`.
type VerCheck struct {
	Field string // "from", "to", "amount", "symbol", "memo0"
	Value uint64
}

// BranchCheck is one nested-verification branch (§4.2's nested if-else with
// random constants guarding the vulnerability template).
type BranchCheck struct {
	Field string // "from", "to", "amount"
	Value uint64
}

// Spec describes one synthetic contract.
type Spec struct {
	// Class and Vulnerable describe a single-class benchmark sample
	// (ignored when VulnSet is non-nil).
	Class      Class
	Vulnerable bool
	// VulnSet describes a multi-class "wild" contract: a key's presence
	// means the class's feature exists in the contract; the value says
	// whether its guard is missing (vulnerable).
	VulnSet map[Class]bool
	// Branches guard the BlockinfoDep/Rollback template behind nested
	// equality checks the fuzzer must solve.
	Branches []BranchCheck
	// EosponserBranches guard the eosponser's service logic (after the
	// guard code) — real-world responders gate their behaviour on memo
	// commands and bet sizes, which is what starves black-box fuzzers of
	// observable state changes.
	EosponserBranches []BranchCheck
	// DispatcherStyle selects the apply() encoding. The EOSIO SDK does not
	// mandate one shape, and EOSAFE's path heuristics only recognize the
	// canonical eq+if pattern (paper §4.2 explains its recall loss).
	DispatcherStyle DispatcherStyle
	// Inaccessible wraps the template in a contradictory guard, producing a
	// ground-truth-safe sample even with the vulnerable template present.
	Inaccessible bool
	// DBDependent makes reveal require a prior deposit (transaction
	// dependency resolved through the DBG).
	DBDependent bool
	// CrossKeyDep keys reveal's dependency on the `to` argument while
	// deposit still writes rows keyed by `from`: satisfying it requires the
	// key-level dependency inference (deposit.from must equal reveal.to),
	// the fine-grained mode of the paper's §5 future work.
	CrossKeyDep bool
	// EosponserPays makes the responder pay a reward back to the sender
	// (the batdappboomx behaviour behind CVE-2022-27134): combined with a
	// missing Fake EOS guard, counterfeit tokens buy real ones.
	EosponserPays bool
	// Verification lists injected complicated-verification clauses.
	Verification []VerCheck
	// Seed reproduces the sample.
	Seed int64
}

// GroundTruth reports whether the sample is actually exploitable: a
// vulnerable template hidden behind an inaccessible branch is safe.
func (s Spec) GroundTruth() bool { return s.Vulnerable && !s.Inaccessible }

// has reports whether the class's feature exists in the contract.
func (s Spec) has(cl Class) bool {
	if s.VulnSet != nil {
		_, ok := s.VulnSet[cl]
		return ok
	}
	return s.Class == cl
}

// isVul reports whether the class's guard is missing.
func (s Spec) isVul(cl Class) bool {
	if s.VulnSet != nil {
		return s.VulnSet[cl]
	}
	return s.Class == cl && s.Vulnerable
}

// Contract is one generated sample.
type Contract struct {
	Module *wasm.Module
	ABI    *abi.ABI
	Spec   Spec
	// Actions maps each action name to its table index (call_indirect slot).
	Actions map[eos.Name]uint32
}

// TransferFieldsABI returns the ABI used by all generated contracts: every
// action shares the transfer signature, as the eosponser convention of
// §2.1 requires for transfer and as the generator standardizes for the rest.
func TransferFieldsABI(actions ...eos.Name) *abi.ABI {
	a := &abi.ABI{
		Structs: []abi.Struct{{
			Name: "transfer",
			Fields: []abi.Field{
				{Name: "from", Type: "name"},
				{Name: "to", Type: "name"},
				{Name: "quantity", Type: "asset"},
				{Name: "memo", Type: "string"},
			},
		}},
	}
	for _, act := range actions {
		a.Actions = append(a.Actions, abi.Action{Name: act, Type: "transfer"})
	}
	return a
}

// Generate builds the contract described by spec.
func Generate(spec Spec) (*Contract, error) {
	b := newModBuilder()
	g := &gen{b: b, spec: spec}

	actions := []eos.Name{eos.ActionTransfer}
	tableIdx := map[eos.Name]uint32{}

	// Action function bodies (all share the action signature).
	eosponser := b.addFunc("eosponser", b.actionSig, nil, g.eosponserBody())
	funcs := []uint32{eosponser}
	tableIdx[eos.ActionTransfer] = 0

	hasReveal := spec.has(ClassBlockinfoDep) || spec.has(ClassRollback)
	if hasReveal || spec.DBDependent || spec.CrossKeyDep {
		dep := b.addFunc("deposit", b.actionSig, nil, g.depositBody())
		tableIdx[ActionDeposit] = uint32(len(funcs))
		funcs = append(funcs, dep)
		actions = append(actions, ActionDeposit)
	}
	if spec.has(ClassMissAuth) {
		sw := b.addFunc("sweep", b.actionSig, nil, g.sweepBody())
		tableIdx[ActionSweep] = uint32(len(funcs))
		funcs = append(funcs, sw)
		actions = append(actions, ActionSweep)
	}
	if hasReveal {
		rv := b.addFunc("reveal", b.actionSig, nil, g.revealBody())
		tableIdx[ActionReveal] = uint32(len(funcs))
		funcs = append(funcs, rv)
		actions = append(actions, ActionReveal)
	}
	if spec.has(ClassStateTamper) {
		st := b.addFunc("settle", b.actionSig, nil, g.settleBody())
		tableIdx[ActionSettle] = uint32(len(funcs))
		funcs = append(funcs, st)
		actions = append(actions, ActionSettle)
	}
	if spec.has(ClassOrderDep) {
		cl := b.addFunc("claim", b.actionSig, nil, g.claimBody())
		tableIdx[ActionClaim] = uint32(len(funcs))
		funcs = append(funcs, cl)
		actions = append(actions, ActionClaim)
	}
	if spec.has(ClassCrossContract) {
		rl := b.addFunc("relay", b.actionSig, nil, g.relayBody())
		tableIdx[ActionRelay] = uint32(len(funcs))
		funcs = append(funcs, rl)
		actions = append(actions, ActionRelay)
	}

	b.setActionTable(funcs)
	apply := b.addFunc("apply", b.m.AddType(ft(p(wasm.I64, wasm.I64, wasm.I64), nil)), nil,
		g.applyBody(tableIdx))
	b.export(apply)

	if err := wasm.Validate(b.m); err != nil {
		return nil, fmt.Errorf("contractgen: generated module invalid: %w", err)
	}
	return &Contract{
		Module:  b.m,
		ABI:     TransferFieldsABI(actions...),
		Spec:    spec,
		Actions: tableIdx,
	}, nil
}

// gen carries generation state.
type gen struct {
	b    *modBuilder
	spec Spec
}

// applyBody emits the dispatcher following Listing 1's shape, in the
// encoding the spec's DispatcherStyle selects.
func (g *gen) applyBody(tableIdx map[eos.Name]uint32) []wasm.Instr {
	if g.spec.DispatcherStyle == DispatchBlockSkip {
		return g.applyBodyBlockSkip(tableIdx)
	}
	var ins []wasm.Instr
	emit := func(more ...wasm.Instr) { ins = append(ins, more...) }

	// _self = receiver
	emit(wasm.LocalGet(0), wasm.GlobalSet(selfGlob))

	// if action == N(transfer) { [guard] dispatch eosponser; return }
	emit(wasm.LocalGet(2), i64Name(eos.ActionTransfer), wasm.Op0(wasm.OpI64Eq), wasm.If())
	if !g.spec.isVul(ClassFakeEOS) {
		// patch: assert(code == N(eosio.token), "") — Listing 1 line 4.
		emit(wasm.LocalGet(1), i64Name(eos.TokenContract), wasm.Op0(wasm.OpI64Eq))
		emit(callAssert()...)
	}
	emit(g.dispatch(tableIdx[eos.ActionTransfer])...)
	emit(wasm.Return(), wasm.End())

	// else if action == N(relay) && code != receiver { [guard] dispatch }
	// — the cross-contract service arm: it reacts only to notifications,
	// where code names the contract that originated the action.
	if ti, ok := tableIdx[ActionRelay]; ok {
		emit(wasm.LocalGet(2), i64Name(ActionRelay), wasm.Op0(wasm.OpI64Eq), wasm.If())
		emit(wasm.LocalGet(1), wasm.LocalGet(0), wasm.Op0(wasm.OpI64Ne), wasm.If())
		if !g.spec.isVul(ClassCrossContract) {
			// Guard: assert(code == N(partner)) — only the trusted partner
			// contract may relay actions into us.
			emit(wasm.LocalGet(1), i64Name(PartnerAccount), wasm.Op0(wasm.OpI64Eq))
			emit(callAssert()...)
		}
		emit(g.dispatch(ti)...)
		emit(wasm.Return(), wasm.End())
		emit(wasm.End())
	}

	// else if code == receiver { EOSIO_API dispatch }
	emit(wasm.LocalGet(1), wasm.LocalGet(0), wasm.Op0(wasm.OpI64Eq), wasm.If())
	for _, act := range []eos.Name{ActionDeposit, ActionSweep, ActionReveal, ActionSettle, ActionClaim} {
		ti, ok := tableIdx[act]
		if !ok {
			continue
		}
		emit(wasm.LocalGet(2), i64Name(act), wasm.Op0(wasm.OpI64Eq), wasm.If())
		emit(g.dispatch(ti)...)
		emit(wasm.Return(), wasm.End())
	}
	emit(wasm.End())
	return ins
}

// applyBodyBlockSkip emits the same dispatch as block+i64.ne+br_if arms.
func (g *gen) applyBodyBlockSkip(tableIdx map[eos.Name]uint32) []wasm.Instr {
	var ins []wasm.Instr
	emit := func(more ...wasm.Instr) { ins = append(ins, more...) }

	emit(wasm.LocalGet(0), wasm.GlobalSet(selfGlob))

	// block { if action != transfer skip; [guard] dispatch; return }
	emit(wasm.Block())
	emit(wasm.LocalGet(2), i64Name(eos.ActionTransfer), wasm.Op0(wasm.OpI64Ne), wasm.BrIf(0))
	if !g.spec.isVul(ClassFakeEOS) {
		emit(wasm.LocalGet(1), i64Name(eos.TokenContract), wasm.Op0(wasm.OpI64Eq))
		emit(callAssert()...)
	}
	emit(g.dispatch(tableIdx[eos.ActionTransfer])...)
	emit(wasm.Return(), wasm.End())

	// block { if action != relay skip; if code == receiver skip; [guard]
	// dispatch; return } — the cross-contract service arm.
	if ti, ok := tableIdx[ActionRelay]; ok {
		emit(wasm.Block())
		emit(wasm.LocalGet(2), i64Name(ActionRelay), wasm.Op0(wasm.OpI64Ne), wasm.BrIf(0))
		emit(wasm.LocalGet(1), wasm.LocalGet(0), wasm.Op0(wasm.OpI64Eq), wasm.BrIf(0))
		if !g.spec.isVul(ClassCrossContract) {
			emit(wasm.LocalGet(1), i64Name(PartnerAccount), wasm.Op0(wasm.OpI64Eq))
			emit(callAssert()...)
		}
		emit(g.dispatch(ti)...)
		emit(wasm.Return(), wasm.End())
	}

	// block { if code != receiver skip; per-action blocks }
	emit(wasm.Block())
	emit(wasm.LocalGet(1), wasm.LocalGet(0), wasm.Op0(wasm.OpI64Ne), wasm.BrIf(0))
	for _, act := range []eos.Name{ActionDeposit, ActionSweep, ActionReveal, ActionSettle, ActionClaim} {
		ti, ok := tableIdx[act]
		if !ok {
			continue
		}
		emit(wasm.Block())
		emit(wasm.LocalGet(2), i64Name(act), wasm.Op0(wasm.OpI64Ne), wasm.BrIf(0))
		emit(g.dispatch(ti)...)
		emit(wasm.Return(), wasm.End())
	}
	emit(wasm.End())
	return ins
}

// dispatch emits the deserialize-and-indirect-call sequence: the EOSIO SDK
// pattern (read_action_data into linear memory, argument loads, and an
// indirect call through the action table).
func (g *gen) dispatch(tableSlot uint32) []wasm.Instr {
	return []wasm.Instr{
		// read_action_data(buf, action_data_size())
		wasm.I32Const(memActionBuf),
		wasm.Call(impActionDataSize),
		wasm.Call(impReadActionData),
		wasm.Drop(),
		// args: (self, from, to, &quantity, &memo)
		wasm.LocalGet(0),
		wasm.I32Const(offFrom), wasm.Load(wasm.OpI64Load, 0),
		wasm.I32Const(offTo), wasm.Load(wasm.OpI64Load, 0),
		wasm.I32Const(offQty),
		wasm.I32Const(offMemo),
		wasm.I32Const(int32(tableSlot)),
		wasm.CallIndirect(g.b.actionSig),
	}
}

// verification emits the §4.3 complicated-verification prologue:
// if (field != K) unreachable.
func (g *gen) verification() []wasm.Instr {
	var ins []wasm.Instr
	for _, v := range g.spec.Verification {
		ins = append(ins, loadField(v.Field)...)
		ins = append(ins,
			wasm.I64Const(int64(v.Value)), wasm.Op0(wasm.OpI64Ne),
			wasm.If(), wasm.Unreachable(), wasm.End(),
		)
	}
	return ins
}

// loadField pushes the i64 value of a named action argument (locals follow
// the action signature: 0 self, 1 from, 2 to, 3 &quantity, 4 &memo).
func loadField(field string) []wasm.Instr {
	switch field {
	case "from":
		return []wasm.Instr{wasm.LocalGet(1)}
	case "to":
		return []wasm.Instr{wasm.LocalGet(2)}
	case "amount":
		return []wasm.Instr{wasm.LocalGet(3), wasm.Load(wasm.OpI64Load, 0)}
	case "symbol":
		return []wasm.Instr{wasm.LocalGet(3), wasm.Load(wasm.OpI64Load, 8)}
	case "memo0":
		// First content byte of the memo (after the length byte).
		return []wasm.Instr{wasm.LocalGet(4), wasm.Load(wasm.OpI64Load8U, 1)}
	default:
		panic("contractgen: unknown field " + field)
	}
}

// eosponserBody emits the transfer responder.
func (g *gen) eosponserBody() []wasm.Instr {
	var ins []wasm.Instr
	emit := func(more ...wasm.Instr) { ins = append(ins, more...) }

	emit(g.verification()...)

	if !g.spec.isVul(ClassFakeNotif) {
		// Fake Notification guard (Listing 2): if (to != _self) return.
		emit(wasm.LocalGet(2), wasm.LocalGet(0), wasm.Op0(wasm.OpI64Ne),
			wasm.If(), wasm.Return(), wasm.End())
	}

	// Optional service gates (memo commands, bet tiers): the observable
	// behaviour sits behind them, so behaviour-based oracles need to solve
	// them while the entry-based id_e oracle does not.
	depth := 0
	for _, br := range g.spec.EosponserBranches {
		emit(loadField(br.Field)...)
		emit(wasm.I64Const(int64(br.Value)), wasm.Op0(wasm.OpI64Eq), wasm.If())
		depth++
	}

	// Service: accept bets of at least 1.0000 EOS and record them.
	emit(wasm.LocalGet(3), wasm.Load(wasm.OpI64Load, 0),
		wasm.I64Const(10000), wasm.Op0(wasm.OpI64GeS))
	emit(callAssert()...)
	emit(g.storeRow(TableBets)...)
	if g.spec.EosponserPays {
		// Reward the payer with real EOS matching the received quantity.
		emit(sendInline(1, 3)...)
	}
	for i := 0; i < depth; i++ {
		emit(wasm.End())
	}
	return ins
}

// storeRow emits db_store_i64(_self, table, _self, from, &amount, 8).
func (g *gen) storeRow(tab eos.Name) []wasm.Instr {
	return []wasm.Instr{
		// scratch = amount
		wasm.I32Const(memScratch), wasm.LocalGet(3), wasm.Load(wasm.OpI64Load, 0), wasm.Store(wasm.OpI64Store, 0),
		wasm.LocalGet(0), // scope
		i64Name(tab),     // table
		wasm.LocalGet(0), // payer
		wasm.LocalGet(1), // id = from
		wasm.I32Const(memScratch), wasm.I32Const(8),
		wasm.Call(impDBStore), wasm.Drop(),
	}
}

// depositBody emits the DB-writing action that satisfies reveal's
// transaction dependency.
func (g *gen) depositBody() []wasm.Instr {
	var ins []wasm.Instr
	ins = append(ins, g.verification()...)
	ins = append(ins, wasm.LocalGet(1), wasm.Call(impRequireAuth))
	ins = append(ins, g.storeRow(TableDeposits)...)
	return ins
}

// sweepBody emits the MissAuth action: pay out self's funds to `to`.
func (g *gen) sweepBody() []wasm.Instr {
	var ins []wasm.Instr
	ins = append(ins, g.verification()...)
	if !g.spec.isVul(ClassMissAuth) {
		// Authorization check (Listing 3 line 2).
		ins = append(ins, wasm.LocalGet(1), wasm.Call(impRequireAuth))
	}
	// The payout is deferred so that sweep alone never trips the (crude,
	// paper-faithful) Rollback oracle, which flags any executed send_inline.
	ins = append(ins, sendDeferred(2, 3)...)
	return ins
}

// settleBody emits the StateTamper archetype: settle(from, ...) rewrites
// the deposit row keyed by `from`. The safe variant demands the row
// owner's authority. The vulnerable variant only samples has_auth and
// drops the result — the check exists (so the MissAuth trace oracle,
// which counts any permission-API call, stays silent) but gates nothing,
// and any signer can overwrite any owner's row across transactions.
func (g *gen) settleBody() []wasm.Instr {
	var ins []wasm.Instr
	ins = append(ins, g.verification()...)
	if g.spec.isVul(ClassStateTamper) {
		ins = append(ins, wasm.LocalGet(1), wasm.Call(impHasAuth), wasm.Drop())
	} else {
		ins = append(ins, wasm.LocalGet(1), wasm.Call(impRequireAuth))
	}
	ins = append(ins, g.storeRow(TableDeposits)...)
	return ins
}

// claimBody emits the OrderDep archetype: claim(from, ...) competes for a
// pot. The vulnerable variant is first-claimant-wins — whichever claim
// lands first creates the one shared row (primary key 0) and every later
// claim asserts out, so both the per-claimant outcome and the recorded
// winner depend on transaction order. The safe variant gives every
// claimant their own row, making the outcome order-invariant.
func (g *gen) claimBody() []wasm.Instr {
	var ins []wasm.Instr
	emit := func(more ...wasm.Instr) { ins = append(ins, more...) }
	emit(g.verification()...)
	emit(wasm.LocalGet(1), wasm.Call(impRequireAuth))
	if g.spec.isVul(ClassOrderDep) {
		// assert(db_find(_self, _self, pot, 0) < 0): only the first claim
		// may land.
		emit(wasm.LocalGet(0), wasm.LocalGet(0), i64Name(TablePot), wasm.I64Const(0),
			wasm.Call(impDBFind),
			wasm.I32Const(0), wasm.Op0(wasm.OpI32LtS))
		emit(callAssert()...)
		// db_store(_self, pot, _self, 0, &from, 8): record the winner in
		// the shared row.
		emit(wasm.I32Const(memScratch), wasm.LocalGet(1), wasm.Store(wasm.OpI64Store, 0))
		emit(wasm.LocalGet(0), i64Name(TablePot), wasm.LocalGet(0), wasm.I64Const(0),
			wasm.I32Const(memScratch), wasm.I32Const(8),
			wasm.Call(impDBStore), wasm.Drop())
	} else {
		emit(g.storeRow(TablePot)...)
	}
	// Deferred payout: like sweep, claiming alone must not trip the crude
	// Rollback oracle, which flags any executed send_inline.
	emit(sendDeferred(1, 3)...)
	return ins
}

// relayBody emits the CrossContract archetype's service logic: pay out to
// the relayed payload's `from`. The body itself carries no guard — the
// dispatcher arm decides whether the foreign code that relayed the action
// is trusted (safe) or dispatches unconditionally (vulnerable).
func (g *gen) relayBody() []wasm.Instr {
	var ins []wasm.Instr
	ins = append(ins, g.verification()...)
	ins = append(ins, sendInline(1, 3)...)
	return ins
}

// revealBody emits the lottery reveal of Listing 4, optionally guarded by
// nested verification branches and/or an inaccessible wrapper.
func (g *gen) revealBody() []wasm.Instr {
	var ins []wasm.Instr
	emit := func(more ...wasm.Instr) { ins = append(ins, more...) }

	emit(g.verification()...)

	// Players reveal their own bets: the authorization check keeps reveal
	// out of the MissAuth oracle's scope.
	emit(wasm.LocalGet(1), wasm.Call(impRequireAuth))

	// eosio_assert(quantity >= asset("10.0000 EOS")) — Listing 4 line 7.
	emit(wasm.LocalGet(3), wasm.Load(wasm.OpI64Load, 0),
		wasm.I64Const(100000), wasm.Op0(wasm.OpI64GeS))
	emit(callAssert()...)

	if g.spec.DBDependent || g.spec.CrossKeyDep {
		// Transaction dependency: a prior deposit must exist. The row key
		// is `from` (the depositor) normally, or `to` in cross-key mode.
		keyLocal := uint32(1)
		if g.spec.CrossKeyDep {
			keyLocal = 2
		}
		emit(wasm.LocalGet(0), wasm.LocalGet(0), i64Name(TableDeposits), wasm.LocalGet(keyLocal),
			wasm.Call(impDBFind),
			wasm.I32Const(0), wasm.Op0(wasm.OpI32GeS))
		emit(callAssert()...)
	}

	// Nested verification branches guarding the template.
	depth := 0
	for _, br := range g.spec.Branches {
		emit(loadField(br.Field)...)
		emit(wasm.I64Const(int64(br.Value)), wasm.Op0(wasm.OpI64Eq), wasm.If())
		depth++
	}
	if g.spec.Inaccessible {
		// Contradictory wrapper: from == K && from == K+1.
		k := int64(g.spec.Seed)*2654435761 | 1
		emit(wasm.LocalGet(1), wasm.I64Const(k), wasm.Op0(wasm.OpI64Eq), wasm.If())
		emit(wasm.LocalGet(1), wasm.I64Const(k+1), wasm.Op0(wasm.OpI64Eq), wasm.If())
		depth += 2
	}

	emit(g.revealTemplate()...)

	for i := 0; i < depth; i++ {
		emit(wasm.End())
	}
	return ins
}

// revealTemplate emits Listing 4 lines 8-15: blockinfo-derived randomness
// and the payout.
func (g *gen) revealTemplate() []wasm.Instr {
	var ins []wasm.Instr
	emit := func(more ...wasm.Instr) { ins = append(ins, more...) }

	// Listing 4 derives the outcome from tapos state. Single-class Rollback
	// samples keep that fidelity; wild multi-class contracts only use tapos
	// when BlockinfoDep-vulnerable, so the per-class ground truth stays
	// clean under the execution-based oracle.
	useTapos := g.spec.isVul(ClassBlockinfoDep) ||
		(g.spec.VulnSet == nil && g.spec.Class == ClassRollback)
	if !useTapos {
		// Safe PRNG substitute: derive the outcome from the bet amount.
		emit(wasm.LocalGet(3), wasm.Load(wasm.OpI64Load, 0),
			wasm.I64Const(1), wasm.Op0(wasm.OpI64And),
			wasm.Op0(wasm.OpI64Eqz), wasm.Op0(wasm.OpI32Eqz), wasm.If())
	} else {
		// int a = tapos_block_prefix() * tapos_block_num();
		// int b = tapos_block_prefix() + tapos_block_num();
		// if (a % (b|1)) { payout }
		emit(
			wasm.Call(impTaposBlockPrefix), wasm.Call(impTaposBlockNum), wasm.Op0(wasm.OpI32Mul),
			wasm.Call(impTaposBlockPrefix), wasm.Call(impTaposBlockNum), wasm.Op0(wasm.OpI32Add),
			wasm.I32Const(1), wasm.Op0(wasm.OpI32Or),
			wasm.Op0(wasm.OpI32RemU),
			wasm.I32Const(1), wasm.Op0(wasm.OpI32And), // ~50/50 win odds
			wasm.If(),
		)
	}
	// Payout to the player (`from`).
	if g.spec.isVul(ClassRollback) {
		emit(sendInline(1, 3)...)
	} else {
		emit(sendDeferred(1, 3)...)
	}
	emit(wasm.End())
	return ins
}

// RandomSpec draws a specification for the given class, mirroring the
// paper's §4.2 benchmark construction.
func RandomSpec(class Class, vulnerable bool, rng *rand.Rand) Spec {
	spec := Spec{Class: class, Vulnerable: vulnerable, Seed: rng.Int63()}
	// The SDK does not mandate a dispatcher shape; a bit under half of the
	// population uses the canonical eq+if encoding EOSAFE's heuristic
	// recognizes (§4.2: EOSAFE recall 44.9% on Fake EOS).
	if rng.Float64() >= 0.45 {
		spec.DispatcherStyle = DispatchBlockSkip
	}
	// A fraction of responders gate their observable behaviour on memo
	// commands or bet tiers (e.g. batdappboomx's "action:buy"), which
	// starves behaviour-based oracles.
	if rng.Float64() < 0.30 {
		spec.EosponserBranches = append(spec.EosponserBranches,
			BranchCheck{Field: "memo0", Value: uint64('a' + rng.Intn(26))})
		if rng.Intn(2) == 0 {
			spec.EosponserBranches = append(spec.EosponserBranches,
				BranchCheck{Field: "amount", Value: uint64(10000 + rng.Intn(100)*10000)})
		}
	}
	switch class {
	case ClassBlockinfoDep, ClassRollback:
		// "We generate several nested if-else branches ... each branch
		// verifies several function parameters with random constants."
		// Fields are distinct: two equality checks on the same parameter
		// would make the template unreachable and corrupt the ground truth.
		n := 1 + rng.Intn(3)
		fields := []string{"to", "from", "amount"}
		rng.Shuffle(len(fields), func(i, j int) { fields[i], fields[j] = fields[j], fields[i] })
		for i := 0; i < n && i < len(fields); i++ {
			f := fields[i]
			spec.Branches = append(spec.Branches, BranchCheck{Field: f, Value: randFieldValue(f, rng)})
		}
		if !vulnerable {
			// Most safe samples still contain the vulnerable template as
			// dead code behind contradictory branches, mirroring how the
			// paper builds safe ground truth ("by generating inaccessible
			// branches") — and why EOSAFE's analyze-every-branch policy
			// collapses to ~50% Rollback precision.
			if rng.Float64() < 0.9 {
				spec.Vulnerable = true   // vulnerable template present...
				spec.Inaccessible = true // ...but unreachable
			}
		}
		spec.DBDependent = rng.Intn(2) == 0
	}
	return spec
}

func randFieldValue(field string, rng *rand.Rand) uint64 {
	switch field {
	case "amount":
		// Plausible bet sizes, at least the 10.0000 EOS floor.
		return uint64(100000 + rng.Intn(1000)*500)
	default:
		// A plausible 12-char account name.
		return uint64(eos.MustName(randomAccountName(rng)))
	}
}

// randomAccountName draws a valid EOSIO account name.
func randomAccountName(rng *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz12345"
	n := 6 + rng.Intn(6)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(buf)
}
