// Package contractgen synthesizes EOSIO Wasm smart contracts in bytecode
// form: the benchmark substrate of the paper's evaluation (§4.2-§4.4).
//
// The generator emits genuine Wasm modules through internal/wasm's encoder,
// following the EOSIO C++ SDK's compilation shape: a void apply(receiver,
// code, action) dispatcher that deserializes the action payload from
// read_action_data into linear memory and enters the action function through
// an indirect call (the pattern EOSAFE's heuristics key on), action
// functions receiving (self, args...) with oversized arguments passed as
// i32 pointers (Table 2's layout), and the five §2.3 vulnerability classes
// with toggleable guard code. It also implements the paper's benchmark
// transformations: guard-code removal (§4.2), popcount/opaque-recursion
// obfuscation (§4.3), complicated-verification injection (§4.3), and a
// seeded "wild population" generator matching RQ4's prevalence mix.
package contractgen

import (
	"fmt"

	"repro/internal/eos"
	"repro/internal/wasm"
)

// Host import indices in generated modules (import order is fixed).
const (
	impRequireAuth = iota
	impHasAuth
	impRequireRecipient
	impEosioAssert
	impReadActionData
	impActionDataSize
	impSendInline
	impSendDeferred
	impTaposBlockNum
	impTaposBlockPrefix
	impCurrentTime
	impDBStore
	impDBFind
	impDBGet
	impDBUpdate
	impDBRemove
	impDBNext
	impDBLowerbound
	impDBEnd
	impPrints
	impPrintI
	impMemcpy
	impMemset
	impCurrentReceiver
	impIsAccount
	numImports
)

var importDefs = []struct {
	name string
	typ  wasm.FuncType
}{
	{"require_auth", ft(p(wasm.I64), nil)},
	{"has_auth", ft(p(wasm.I64), p(wasm.I32))},
	{"require_recipient", ft(p(wasm.I64), nil)},
	{"eosio_assert", ft(p(wasm.I32, wasm.I32), nil)},
	{"read_action_data", ft(p(wasm.I32, wasm.I32), p(wasm.I32))},
	{"action_data_size", ft(nil, p(wasm.I32))},
	{"send_inline", ft(p(wasm.I32, wasm.I32), nil)},
	{"send_deferred", ft(p(wasm.I64, wasm.I32, wasm.I32), nil)},
	{"tapos_block_num", ft(nil, p(wasm.I32))},
	{"tapos_block_prefix", ft(nil, p(wasm.I32))},
	{"current_time", ft(nil, p(wasm.I64))},
	{"db_store_i64", ft(p(wasm.I64, wasm.I64, wasm.I64, wasm.I64, wasm.I32, wasm.I32), p(wasm.I32))},
	{"db_find_i64", ft(p(wasm.I64, wasm.I64, wasm.I64, wasm.I64), p(wasm.I32))},
	{"db_get_i64", ft(p(wasm.I32, wasm.I32, wasm.I32), p(wasm.I32))},
	{"db_update_i64", ft(p(wasm.I32, wasm.I64, wasm.I32, wasm.I32), nil)},
	{"db_remove_i64", ft(p(wasm.I32), nil)},
	{"db_next_i64", ft(p(wasm.I32, wasm.I32), p(wasm.I32))},
	{"db_lowerbound_i64", ft(p(wasm.I64, wasm.I64, wasm.I64, wasm.I64), p(wasm.I32))},
	{"db_end_i64", ft(p(wasm.I64, wasm.I64, wasm.I64), p(wasm.I32))},
	{"prints", ft(p(wasm.I32), nil)},
	{"printi", ft(p(wasm.I64), nil)},
	{"memcpy", ft(p(wasm.I32, wasm.I32, wasm.I32), p(wasm.I32))},
	{"memset", ft(p(wasm.I32, wasm.I32, wasm.I32), p(wasm.I32))},
	{"current_receiver", ft(nil, p(wasm.I64))},
	{"is_account", ft(p(wasm.I64), p(wasm.I32))},
}

func p(ts ...wasm.ValType) []wasm.ValType { return ts }
func ft(params, results []wasm.ValType) wasm.FuncType {
	return wasm.FuncType{Params: params, Results: results}
}

// Memory layout of generated contracts.
const (
	memScratch   = 128  // 8-byte scratch used for DB rows
	memInlineBuf = 256  // packed inline/deferred action buffer
	memMsg       = 64   // assert message (NUL byte -> empty string)
	memActionBuf = 1024 // raw action payload written by read_action_data

	// Transfer payload layout within memActionBuf.
	offFrom  = memActionBuf      // i64
	offTo    = memActionBuf + 8  // i64
	offQty   = memActionBuf + 16 // asset: amount i64 + symbol i64
	offMemo  = memActionBuf + 32 // length byte + content
	selfGlob = 0                 // global index holding _self
)

// modBuilder assembles a generated contract module.
type modBuilder struct {
	m *wasm.Module
	// actionSig is the shared indirect-call signature of action functions:
	// (self i64, from i64, to i64, qty_ptr i32, memo_ptr i32).
	actionSig uint32
}

func newModBuilder() *modBuilder {
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	for _, d := range importDefs {
		ti := m.AddType(d.typ)
		m.Imports = append(m.Imports, wasm.Import{
			Module: "env", Name: d.name, Kind: wasm.ExternalFunc, TypeIndex: ti,
		})
	}
	m.Memories = []wasm.MemType{{Limits: wasm.Limits{Min: 1}}}
	m.Globals = []wasm.Global{{
		Type: wasm.GlobalType{Type: wasm.I64, Mutable: true},
		Init: []wasm.Instr{wasm.I64Const(0)},
	}}
	b := &modBuilder{m: m}
	b.actionSig = m.AddType(ft(p(wasm.I64, wasm.I64, wasm.I64, wasm.I32, wasm.I32), nil))
	return b
}

// addFunc appends a local function and returns its function-space index.
func (b *modBuilder) addFunc(name string, typeIdx uint32, locals []wasm.LocalDecl, body []wasm.Instr) uint32 {
	idx := uint32(numImports + len(b.m.Funcs))
	b.m.Funcs = append(b.m.Funcs, typeIdx)
	b.m.Code = append(b.m.Code, wasm.Code{Locals: locals, Body: append(body, wasm.End())})
	b.m.FuncNames[idx] = name
	return idx
}

// setActionTable installs the funcref table holding the action functions.
func (b *modBuilder) setActionTable(funcs []uint32) {
	b.m.Tables = []wasm.TableType{{Limits: wasm.Limits{Min: uint32(len(funcs))}}}
	b.m.Elems = []wasm.ElemSegment{{
		Offset: []wasm.Instr{wasm.I32Const(0)},
		Funcs:  funcs,
	}}
}

// export exposes apply and the memory.
func (b *modBuilder) export(applyIdx uint32) {
	b.m.Exports = []wasm.Export{
		{Name: "apply", Kind: wasm.ExternalFunc, Index: applyIdx},
		{Name: "memory", Kind: wasm.ExternalMemory, Index: 0},
	}
}

// --- instruction-sequence helpers -------------------------------------------

// i64Name pushes a name constant.
func i64Name(n eos.Name) wasm.Instr { return wasm.I64Const(int64(uint64(n))) }

// callAssert emits eosio_assert(cond-on-stack, "").
func callAssert() []wasm.Instr {
	return []wasm.Instr{wasm.I32Const(memMsg), wasm.Call(impEosioAssert)}
}

// storeConstI64 emits *(i64*)addr = v.
func storeConstI64(addr uint32, v int64) []wasm.Instr {
	return []wasm.Instr{wasm.I32Const(int32(addr)), wasm.I64Const(v), wasm.Store(wasm.OpI64Store, 0)}
}

// storeConstI32 emits *(i32*)addr = v.
func storeConstI32(addr uint32, v int32) []wasm.Instr {
	return []wasm.Instr{wasm.I32Const(int32(addr)), wasm.I32Const(v), wasm.Store(wasm.OpI32Store, 0)}
}

// packTransferPayout emits code that packs an inline/deferred transfer
// action (self -> `toLocal`, quantity copied from qptrLocal) into
// memInlineBuf and returns the (ptr, len) constants used.
//
// Packed layout (see chain.PackAction): account(8) name(8) nauth(4)
// {actor(8) perm(8)} dlen(4) payload(33: from 8, to 8, asset 16, memo-len 1).
func packTransferPayout(toLocal, qptrLocal uint32) ([]wasm.Instr, int32, int32) {
	const base = memInlineBuf
	var ins []wasm.Instr
	ins = append(ins, storeConstI64(base, int64(uint64(eos.TokenContract)))...)
	ins = append(ins, storeConstI64(base+8, int64(uint64(eos.ActionTransfer)))...)
	ins = append(ins, storeConstI32(base+16, 1)...) // one authorization
	// actor = _self
	ins = append(ins,
		wasm.I32Const(base+20), wasm.GlobalGet(selfGlob), wasm.Store(wasm.OpI64Store, 0))
	ins = append(ins, storeConstI64(base+28, int64(uint64(eos.ActiveAuth)))...)
	ins = append(ins, storeConstI32(base+36, 33)...) // payload length
	// payload: from = _self
	ins = append(ins,
		wasm.I32Const(base+40), wasm.GlobalGet(selfGlob), wasm.Store(wasm.OpI64Store, 0),
		// to
		wasm.I32Const(base+48), wasm.LocalGet(toLocal), wasm.Store(wasm.OpI64Store, 0),
		// amount copied from the quantity pointer
		wasm.I32Const(base+56), wasm.LocalGet(qptrLocal), wasm.Load(wasm.OpI64Load, 0), wasm.Store(wasm.OpI64Store, 0),
		// symbol
		wasm.I32Const(base+64), wasm.LocalGet(qptrLocal), wasm.Load(wasm.OpI64Load, 8), wasm.Store(wasm.OpI64Store, 0),
		// empty memo
		wasm.I32Const(base+72), wasm.I32Const(0), wasm.Store(wasm.OpI32Store8, 0),
	)
	return ins, base, 73
}

// sendInline emits the packed payout followed by send_inline.
func sendInline(toLocal, qptrLocal uint32) []wasm.Instr {
	ins, ptr, n := packTransferPayout(toLocal, qptrLocal)
	return append(ins, wasm.I32Const(ptr), wasm.I32Const(n), wasm.Call(impSendInline))
}

// sendDeferred emits the packed payout followed by send_deferred — the
// Rollback-safe defer scheme of Listing 4.
func sendDeferred(toLocal, qptrLocal uint32) []wasm.Instr {
	ins, ptr, n := packTransferPayout(toLocal, qptrLocal)
	return append(ins,
		wasm.GlobalGet(selfGlob), // payer
		wasm.I32Const(ptr), wasm.I32Const(n), wasm.Call(impSendDeferred))
}

// debugName attaches a "name" custom section is skipped: FuncNames are kept
// in-memory; the chain consumes modules directly.
var _ = fmt.Sprintf
