package contractgen

import (
	"math/rand"
	"testing"

	"repro/internal/chain"
	"repro/internal/eos"
	"repro/internal/instrument"
	"repro/internal/symbolic"
	"repro/internal/symexec"
	"repro/internal/trace"
	"repro/internal/wasm"
)

// TestDifferentialSymbolicVsConcrete is a differential test between the
// concrete interpreter and Symback's symbolic semantics: random arithmetic
// expressions over the action inputs guard a branch; after a concrete run,
// the symbolic condition Symback reconstructed — evaluated under the
// actual inputs — must agree with the direction the interpreter took.
func TestDifferentialSymbolicVsConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for round := 0; round < 150; round++ {
		exprBody, condPC := randomExprBody(rng)
		mod := exprContract(t, exprBody)
		res, err := instrument.Instrument(mod, instrument.ModeSparse)
		if err != nil {
			t.Fatalf("round %d: instrument: %v", round, err)
		}
		bc := chain.New()
		bc.Collector = trace.NewCollector()
		abi := TransferFieldsABI(eos.ActionTransfer)
		if err := bc.DeployModule(victim, res.Module, abi, res.Sites); err != nil {
			t.Fatalf("round %d: deploy: %v", round, err)
		}

		from := rng.Uint64()
		to := rng.Uint64()
		amount := rng.Uint64() >> uint(rng.Intn(40))
		memo := "dd"
		params := []symexec.Param{
			{Type: "name", U64: from},
			{Type: "name", U64: to},
			{Type: "asset", Amount: amount, Symbol: uint64(eos.EOSSymbol)},
			{Type: "string", Str: []byte(memo)},
		}
		signer := eos.Name(from)
		bc.CreateAccount(signer)
		rcpt := bc.PushTransaction(chain.Transaction{Actions: []chain.Action{{
			Account:       victim,
			Name:          eos.ActionTransfer,
			Authorization: []chain.PermissionLevel{{Actor: signer, Permission: eos.ActiveAuth}},
			Data: chain.EncodeTransfer(chain.TransferArgs{
				From: eos.Name(from), To: eos.Name(to),
				Quantity: eos.Asset{Amount: int64(amount), Symbol: eos.EOSSymbol},
				Memo:     memo,
			}),
		}}})
		if rcpt.Err != nil {
			t.Fatalf("round %d: invoke: %v", round, rcpt.Err)
		}
		var tr *trace.Trace
		for i := range rcpt.Traces {
			if rcpt.Traces[i].Contract == victim {
				tr = &rcpt.Traces[i]
			}
		}
		if tr == nil {
			t.Fatalf("round %d: no trace", round)
		}

		symRes, err := symexec.Run(mod, tr, params, symexec.Options{
			Globals: map[uint32]uint64{0: uint64(victim)},
		})
		if err != nil {
			t.Fatalf("round %d: symexec: %v", round, err)
		}
		model := symbolic.Model{
			symexec.VarName(0):   from,
			symexec.VarName(1):   to,
			symexec.VarAmount(2): amount,
			symexec.VarSymbol(2): uint64(eos.EOSSymbol),
		}
		checked := false
		for i := range symRes.Conds {
			cs := &symRes.Conds[i]
			if cs.PC != condPC || cs.Kind != symexec.CondBranch {
				continue
			}
			checked = true
			got := symbolic.EvalBool(symRes.Ctx.Bool(cs.Cond), model)
			if got != cs.Taken {
				t.Fatalf("round %d: symbolic eval %v != concrete direction %v\nexpr cond: %s\nfrom=%#x to=%#x amount=%#x",
					round, got, cs.Taken, cs.Cond, from, to, amount)
			}
		}
		if !checked {
			t.Fatalf("round %d: guarded branch at pc %d not in replay", round, condPC)
		}
	}
}

// randomExprBody emits an action body computing a random i64 expression
// over (from, to, amount) and branching on `expr < K`. It returns the body
// and the pc of the `if`.
func randomExprBody(rng *rand.Rand) ([]wasm.Instr, int) {
	var body []wasm.Instr
	depth := 0
	pushLeaf := func() {
		switch rng.Intn(4) {
		case 0:
			body = append(body, wasm.LocalGet(1)) // from
		case 1:
			body = append(body, wasm.LocalGet(2)) // to
		case 2:
			body = append(body, wasm.LocalGet(3), wasm.Load(wasm.OpI64Load, 0)) // amount
		default:
			body = append(body, wasm.I64Const(int64(rng.Uint64())))
		}
		depth++
	}
	binOps := []wasm.Opcode{
		wasm.OpI64Add, wasm.OpI64Sub, wasm.OpI64Mul, wasm.OpI64And,
		wasm.OpI64Or, wasm.OpI64Xor, wasm.OpI64Shl, wasm.OpI64ShrU,
		wasm.OpI64ShrS, wasm.OpI64Rotl, wasm.OpI64Rotr, wasm.OpI64Popcnt,
	}
	emitOp := func() {
		op := binOps[rng.Intn(len(binOps))]
		if op == wasm.OpI64Popcnt {
			body = append(body, wasm.Op0(op)) // unary
			return
		}
		body = append(body, wasm.Op0(op))
		depth--
	}
	steps := 2 + rng.Intn(8)
	for i := 0; i < steps; i++ {
		if depth >= 2 && rng.Intn(2) == 0 {
			emitOp()
		} else {
			pushLeaf()
		}
	}
	for depth > 1 {
		emitOp()
	}
	// Occasionally detour through the 32-bit domain: wrap, mix with a
	// constant, extend back — exercising the i32 rows of Table 3 on both
	// the interpreter and Symback.
	if rng.Intn(2) == 0 {
		i32ops := []wasm.Opcode{
			wasm.OpI32Add, wasm.OpI32Sub, wasm.OpI32Mul, wasm.OpI32And,
			wasm.OpI32Or, wasm.OpI32Xor, wasm.OpI32Shl, wasm.OpI32ShrU,
			wasm.OpI32ShrS, wasm.OpI32Rotl, wasm.OpI32Popcnt,
		}
		body = append(body, wasm.Op0(wasm.OpI32WrapI64))
		op := i32ops[rng.Intn(len(i32ops))]
		if op != wasm.OpI32Popcnt {
			body = append(body, wasm.I32Const(int32(rng.Uint32())))
		}
		body = append(body, wasm.Op0(op))
		if rng.Intn(2) == 0 {
			body = append(body, wasm.Op0(wasm.OpI64ExtendI32U))
		} else {
			body = append(body, wasm.Op0(wasm.OpI64ExtendI32S))
		}
	}
	// Occasionally route the value through select and a local.tee to cover
	// those replay paths (the action signature leaves locals 5+ free via
	// the extra local declared in exprContract).
	if rng.Intn(3) == 0 {
		body = append(body, wasm.LocalTee(5), wasm.LocalGet(5)) // dup via tee
		body = append(body,
			wasm.I64Const(int64(rng.Uint64())),
			wasm.LocalGet(1), wasm.I64Const(int64(rng.Uint64())), wasm.Op0(wasm.OpI64LtU),
			wasm.Op0(wasm.OpSelect),
			wasm.Op0(wasm.OpI64Xor),
		)
	}
	// Compare against a constant with a random predicate.
	cmps := []wasm.Opcode{
		wasm.OpI64LtU, wasm.OpI64LtS, wasm.OpI64GtU, wasm.OpI64GtS,
		wasm.OpI64LeU, wasm.OpI64LeS, wasm.OpI64GeU, wasm.OpI64GeS,
	}
	body = append(body, wasm.I64Const(int64(rng.Uint64())), wasm.Op0(cmps[rng.Intn(len(cmps))]))
	condPC := len(body)
	body = append(body, wasm.If(), wasm.Instr{Op: wasm.OpNop}, wasm.End())
	return body, condPC
}

// exprContract wraps the body in a minimal dispatcher-driven contract.
func exprContract(t *testing.T, actionBody []wasm.Instr) *wasm.Module {
	t.Helper()
	b := newModBuilder()
	g := &gen{b: b, spec: Spec{Class: ClassFakeEOS, Vulnerable: true}}
	fn := b.addFunc("expr", b.actionSig, []wasm.LocalDecl{{Count: 1, Type: wasm.I64}}, actionBody)
	_ = fn
	b.setActionTable([]uint32{fn})
	apply := b.addFunc("apply", b.m.AddType(ft(p(wasm.I64, wasm.I64, wasm.I64), nil)), nil,
		g.applyBody(map[eos.Name]uint32{eos.ActionTransfer: 0}))
	b.export(apply)
	if err := wasm.Validate(b.m); err != nil {
		t.Fatalf("expr contract invalid: %v", err)
	}
	return b.m
}
