package contractgen

import (
	"fmt"
	"math/rand"

	"repro/internal/eos"
)

// WildContract is one member of the RQ4 "in the wild" population: a
// profitable contract with per-class ground truth and a deployment
// lifecycle (still operating / abandoned / patched in a later version).
type WildContract struct {
	Name     eos.Name
	Contract *Contract
	// Truth records the per-class ground truth.
	Truth map[Class]bool
	// Abandoned: the latest on-chain version was replaced with an empty file.
	Abandoned bool
	// Patched: a later version with guards restored was deployed.
	Patched bool
	// PatchedContract is the fixed version when Patched.
	PatchedContract *Contract
}

// WildOptions tunes the population generator. The defaults reproduce the
// prevalence mix the paper reports for the 991 profitable Mainnet
// contracts (§4.4): 241 Fake EOS, 264 Fake Notif, 470 MissAuth,
// 22 BlockinfoDep, 122 Rollback; 71.3% vulnerable overall; of the flagged
// contracts 41.6% abandoned and 72 of the 413 live ones patched.
type WildOptions struct {
	N int
	// Per-class vulnerability probability.
	PVuln map[Class]float64
	// Feature-presence probability for optional features (sweep, reveal).
	PSweep, PReveal float64
	// Lifecycle probabilities.
	PAbandoned float64 // among flagged contracts
	PPatched   float64 // among flagged, still-operating contracts
}

// DefaultWildOptions returns the RQ4-calibrated options for n contracts.
func DefaultWildOptions(n int) WildOptions {
	return WildOptions{
		N: n,
		PVuln: map[Class]float64{
			ClassFakeEOS:      241.0 / 991,
			ClassFakeNotif:    264.0 / 991,
			ClassMissAuth:     470.0 / 991,
			ClassBlockinfoDep: 22.0 / 991,
			ClassRollback:     122.0 / 991,
		},
		PSweep:     0.60,
		PReveal:    0.22,
		PAbandoned: 0.416,
		PPatched:   72.0 / 413,
	}
}

// GenerateWild draws a wild population.
func GenerateWild(opts WildOptions, rng *rand.Rand) ([]WildContract, error) {
	out := make([]WildContract, 0, opts.N)
	for i := 0; i < opts.N; i++ {
		vulnSet := map[Class]bool{
			// Every profitable contract has an eosponser, so the Fake EOS
			// and Fake Notif features are always present.
			ClassFakeEOS:   rng.Float64() < opts.PVuln[ClassFakeEOS],
			ClassFakeNotif: rng.Float64() < opts.PVuln[ClassFakeNotif],
		}
		if rng.Float64() < opts.PSweep {
			vulnSet[ClassMissAuth] = rng.Float64() < opts.PVuln[ClassMissAuth]/opts.PSweep
		}
		if rng.Float64() < opts.PReveal {
			vulnSet[ClassBlockinfoDep] = rng.Float64() < opts.PVuln[ClassBlockinfoDep]/opts.PReveal
			vulnSet[ClassRollback] = rng.Float64() < opts.PVuln[ClassRollback]/opts.PReveal
		}
		spec := Spec{VulnSet: vulnSet, Seed: rng.Int63(), DBDependent: rng.Intn(4) == 0}
		c, err := Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("contractgen: wild %d: %w", i, err)
		}
		name, err := eos.NewName(fmt.Sprintf("wild%s", suffix(i)))
		if err != nil {
			return nil, err
		}
		wc := WildContract{
			Name:     name,
			Contract: c,
			Truth:    map[Class]bool{},
		}
		anyVul := false
		for cl, v := range vulnSet {
			wc.Truth[cl] = v
			anyVul = anyVul || v
		}
		if anyVul {
			if rng.Float64() < opts.PAbandoned {
				wc.Abandoned = true
			} else if rng.Float64() < opts.PPatched {
				wc.Patched = true
				patchedSet := map[Class]bool{}
				for cl := range vulnSet {
					patchedSet[cl] = false
				}
				pc, err := Generate(Spec{VulnSet: patchedSet, Seed: spec.Seed, DBDependent: spec.DBDependent})
				if err != nil {
					return nil, fmt.Errorf("contractgen: wild %d patched: %w", i, err)
				}
				wc.PatchedContract = pc
			}
		}
		out = append(out, wc)
	}
	return out, nil
}

// suffix encodes i in the EOSIO name alphabet (a-z only for simplicity).
func suffix(i int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	s := []byte{}
	for {
		s = append(s, alpha[i%26])
		i /= 26
		if i == 0 {
			break
		}
	}
	return string(s)
}
