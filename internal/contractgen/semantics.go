package contractgen

import (
	"encoding/binary"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/wasm"
)

// This file is the generative side of the fast-engine differential gate
// (the wasm-semantics-fuzzer approach): seeded, valid, *self-checking*
// modules — every computation is constant-folded in Go at generation time
// and the module traps with `unreachable` if the engine disagrees. A
// conforming engine runs the module to completion, reports each checked
// value through the imported "sem"."note" host call, and returns a running
// checksum, so two engines can be compared on traps, return values, final
// memory and host-call sequences.
//
// Covered semantics: integer wrapping arithmetic, shift masking, guarded
// division/remainder, sign/zero-extending loads, wrapping stores,
// little-endian byte order, unaligned access, br_table arm selection,
// if/else and loop control, globals, local tee chains, and memory.grow
// edge cases (within max, past max, past the 4GiB cap).

// SemProgram is one generated self-checking module with its expected
// observable outcome on a conforming engine.
type SemProgram struct {
	// Module imports one host function "sem"."note" (param i64) and
	// exports "run" () -> i64.
	Module *wasm.Module
	// Checks counts the embedded self-check assertions.
	Checks int
	// Return is the expected result of "run".
	Return uint64
	// Notes is the expected argument sequence of the "note" host calls.
	Notes []uint64
}

// semMemBytes is the byte span of linear memory the generator models; all
// generated accesses stay below it.
const semMemBytes = 512

// semGen carries the generation state: the module under construction and
// the Go-side model of every value the program will compute.
type semGen struct {
	rng  *rand.Rand
	body []wasm.Instr

	mem    [semMemBytes]byte
	pages  uint64 // current memory size in pages (model)
	maxPgs uint64
	glob   [2]uint64
	l2, l3 uint64 // scratch locals model

	chk    uint64
	checks int
	notes  []uint64
}

// Local layout of "run": 0=tmp (check scratch), 1=checksum, 2/3=scratch.
const (
	semLocTmp = 0
	semLocChk = 1
	semLocA   = 2
	semLocB   = 3
)

// GenerateSemantics deterministically builds the self-checking module for
// a seed. The same seed always yields a byte-identical module.
func GenerateSemantics(seed int64) *SemProgram {
	g := &semGen{rng: rand.New(rand.NewSource(seed)), pages: 1, maxPgs: 2}

	m := &wasm.Module{FuncNames: map[uint32]string{}}
	noteType := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}})
	runType := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	m.Imports = []wasm.Import{{Module: "sem", Name: "note", Kind: wasm.ExternalFunc, TypeIndex: noteType}}
	m.Memories = []wasm.MemType{{Limits: wasm.Limits{Min: 1, Max: 2, HasMax: true}}}
	m.Globals = []wasm.Global{
		{Type: wasm.GlobalType{Type: wasm.I64, Mutable: true}, Init: []wasm.Instr{wasm.I64Const(0)}},
		{Type: wasm.GlobalType{Type: wasm.I64, Mutable: true}, Init: []wasm.Instr{wasm.I64Const(int64(g.rng.Uint64()))}},
	}
	g.glob[1] = m.Globals[1].Init[0].Imm

	// Seed the first 64 bytes of memory (and the model) from a data segment.
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(g.rng.Intn(256))
	}
	copy(g.mem[:], data)
	m.Data = []wasm.DataSegment{{Offset: []wasm.Instr{wasm.I32Const(0)}, Data: data}}

	segments := 6 + g.rng.Intn(8)
	for i := 0; i < segments; i++ {
		switch g.rng.Intn(9) {
		case 0:
			g.segI32Chain()
		case 1:
			g.segI64Chain()
		case 2:
			g.segWrapExtend()
		case 3:
			g.segMemory()
		case 4:
			g.segBrTable()
		case 5:
			g.segGlobals()
		case 6:
			g.segTeeChain()
		case 7:
			g.segGrow()
		case 8:
			g.segControl()
		}
	}

	// return the checksum
	g.emit(wasm.LocalGet(semLocChk), wasm.End())

	m.Funcs = []uint32{runType}
	m.Code = []wasm.Code{{
		Locals: []wasm.LocalDecl{{Count: 4, Type: wasm.I64}},
		Body:   g.body,
	}}
	m.Exports = []wasm.Export{{Name: "run", Kind: wasm.ExternalFunc, Index: 1}}

	return &SemProgram{Module: m, Checks: g.checks, Return: g.chk, Notes: g.notes}
}

func (g *semGen) emit(in ...wasm.Instr) { g.body = append(g.body, in...) }

// check asserts the i64 value on top of the operand stack equals want:
// trap via unreachable on mismatch, report it through the note host call,
// and fold it into the checksum.
func (g *semGen) check(want uint64) {
	g.emit(
		wasm.LocalSet(semLocTmp),
		wasm.LocalGet(semLocTmp), wasm.I64Const(int64(want)), wasm.Op0(wasm.OpI64Ne),
		wasm.If(), wasm.Unreachable(), wasm.End(),
		wasm.LocalGet(semLocTmp), wasm.Call(0),
		wasm.LocalGet(semLocChk), wasm.I64Const(31), wasm.Op0(wasm.OpI64Mul),
		wasm.LocalGet(semLocTmp), wasm.Op0(wasm.OpI64Add), wasm.LocalSet(semLocChk),
	)
	g.chk = g.chk*31 + want
	g.notes = append(g.notes, want)
	g.checks++
}

// checkI32 is check for an i32 value on the stack: it zero-extends first,
// matching the interpreter's canonical representation.
func (g *semGen) checkI32(want uint32) {
	g.emit(wasm.Op0(wasm.OpI64ExtendI32U))
	g.check(uint64(want))
}

// segI32Chain emits a constant-folded chain of i32 operations.
func (g *semGen) segI32Chain() {
	ops := []wasm.Opcode{
		wasm.OpI32Add, wasm.OpI32Sub, wasm.OpI32Mul, wasm.OpI32And, wasm.OpI32Or,
		wasm.OpI32Xor, wasm.OpI32Shl, wasm.OpI32ShrS, wasm.OpI32ShrU,
		wasm.OpI32Rotl, wasm.OpI32Rotr, wasm.OpI32DivS, wasm.OpI32DivU,
		wasm.OpI32RemS, wasm.OpI32RemU,
	}
	acc := uint32(g.rng.Uint32())
	g.emit(wasm.I32Const(int32(acc)))
	for n := 1 + g.rng.Intn(6); n > 0; n-- {
		op := ops[g.rng.Intn(len(ops))]
		c := uint32(g.rng.Uint32())
		switch op {
		case wasm.OpI32DivS, wasm.OpI32RemS:
			if c == 0 || (acc == 0x80000000 && c == 0xffffffff) {
				c = 3
			}
		case wasm.OpI32DivU, wasm.OpI32RemU:
			if c == 0 {
				c = 3
			}
		}
		g.emit(wasm.I32Const(int32(c)), wasm.Op0(op))
		acc = evalI32(op, acc, c)
	}
	g.checkI32(acc)
}

func evalI32(op wasm.Opcode, a, b uint32) uint32 {
	switch op {
	case wasm.OpI32Add:
		return a + b
	case wasm.OpI32Sub:
		return a - b
	case wasm.OpI32Mul:
		return a * b
	case wasm.OpI32And:
		return a & b
	case wasm.OpI32Or:
		return a | b
	case wasm.OpI32Xor:
		return a ^ b
	case wasm.OpI32Shl:
		return a << (b & 31)
	case wasm.OpI32ShrS:
		return uint32(int32(a) >> (b & 31))
	case wasm.OpI32ShrU:
		return a >> (b & 31)
	case wasm.OpI32Rotl:
		return bits.RotateLeft32(a, int(b&31))
	case wasm.OpI32Rotr:
		return bits.RotateLeft32(a, -int(b&31))
	case wasm.OpI32DivS:
		return uint32(int32(a) / int32(b))
	case wasm.OpI32DivU:
		return a / b
	case wasm.OpI32RemS:
		return uint32(int32(a) % int32(b))
	case wasm.OpI32RemU:
		return a % b
	}
	return 0
}

// segI64Chain emits a constant-folded chain of i64 operations.
func (g *semGen) segI64Chain() {
	ops := []wasm.Opcode{
		wasm.OpI64Add, wasm.OpI64Sub, wasm.OpI64Mul, wasm.OpI64And, wasm.OpI64Or,
		wasm.OpI64Xor, wasm.OpI64Shl, wasm.OpI64ShrS, wasm.OpI64ShrU,
		wasm.OpI64Rotl, wasm.OpI64Rotr, wasm.OpI64DivS, wasm.OpI64DivU,
		wasm.OpI64RemS, wasm.OpI64RemU,
	}
	acc := g.rng.Uint64()
	g.emit(wasm.I64Const(int64(acc)))
	for n := 1 + g.rng.Intn(6); n > 0; n-- {
		op := ops[g.rng.Intn(len(ops))]
		c := g.rng.Uint64()
		switch op {
		case wasm.OpI64DivS, wasm.OpI64RemS:
			if c == 0 || (acc == 1<<63 && c == math.MaxUint64) {
				c = 5
			}
		case wasm.OpI64DivU, wasm.OpI64RemU:
			if c == 0 {
				c = 5
			}
		}
		g.emit(wasm.I64Const(int64(c)), wasm.Op0(op))
		acc = evalI64(op, acc, c)
	}
	g.check(acc)
}

func evalI64(op wasm.Opcode, a, b uint64) uint64 {
	switch op {
	case wasm.OpI64Add:
		return a + b
	case wasm.OpI64Sub:
		return a - b
	case wasm.OpI64Mul:
		return a * b
	case wasm.OpI64And:
		return a & b
	case wasm.OpI64Or:
		return a | b
	case wasm.OpI64Xor:
		return a ^ b
	case wasm.OpI64Shl:
		return a << (b & 63)
	case wasm.OpI64ShrS:
		return uint64(int64(a) >> (b & 63))
	case wasm.OpI64ShrU:
		return a >> (b & 63)
	case wasm.OpI64Rotl:
		return bits.RotateLeft64(a, int(b&63))
	case wasm.OpI64Rotr:
		return bits.RotateLeft64(a, -int(b&63))
	case wasm.OpI64DivS:
		return uint64(int64(a) / int64(b))
	case wasm.OpI64DivU:
		return a / b
	case wasm.OpI64RemS:
		return uint64(int64(a) % int64(b))
	case wasm.OpI64RemU:
		return a % b
	}
	return 0
}

// segWrapExtend checks i32.wrap_i64 / i64.extend chains.
func (g *semGen) segWrapExtend() {
	v := g.rng.Uint64()
	g.emit(wasm.I64Const(int64(v)), wasm.Op0(wasm.OpI32WrapI64))
	if g.rng.Intn(2) == 0 {
		g.emit(wasm.Op0(wasm.OpI64ExtendI32S))
		g.check(uint64(int64(int32(uint32(v)))))
	} else {
		g.emit(wasm.Op0(wasm.OpI64ExtendI32U))
		g.check(uint64(uint32(v)))
	}
}

// semStores enumerate store opcode, byte width and operand width (32/64).
var semStores = []struct {
	op    wasm.Opcode
	width int
	is64  bool
}{
	{wasm.OpI32Store8, 1, false}, {wasm.OpI32Store16, 2, false}, {wasm.OpI32Store, 4, false},
	{wasm.OpI64Store8, 1, true}, {wasm.OpI64Store16, 2, true}, {wasm.OpI64Store32, 4, true},
	{wasm.OpI64Store, 8, true},
}

var semLoads = []struct {
	op    wasm.Opcode
	width int
	is64  bool
}{
	{wasm.OpI32Load8U, 1, false}, {wasm.OpI32Load8S, 1, false},
	{wasm.OpI32Load16U, 2, false}, {wasm.OpI32Load16S, 2, false}, {wasm.OpI32Load, 4, false},
	{wasm.OpI64Load8U, 1, true}, {wasm.OpI64Load8S, 1, true},
	{wasm.OpI64Load16U, 2, true}, {wasm.OpI64Load16S, 2, true},
	{wasm.OpI64Load32U, 4, true}, {wasm.OpI64Load32S, 4, true}, {wasm.OpI64Load, 8, true},
}

// segMemory emits a wrapping store (often unaligned) then a load from the
// modeled region, both checked against the Go-side byte model.
func (g *semGen) segMemory() {
	s := semStores[g.rng.Intn(len(semStores))]
	val := g.rng.Uint64()
	base := g.rng.Intn(semMemBytes / 2)
	off := g.rng.Intn(semMemBytes/2 - 8)
	g.emit(wasm.I32Const(int32(base)))
	if s.is64 {
		g.emit(wasm.I64Const(int64(val)))
	} else {
		g.emit(wasm.I32Const(int32(uint32(val))))
	}
	g.emit(wasm.Store(s.op, uint32(off)))
	g.storeModel(base+off, s.width, val)

	l := semLoads[g.rng.Intn(len(semLoads))]
	lbase := g.rng.Intn(semMemBytes - 8)
	loff := g.rng.Intn(semMemBytes - 8 - lbase)
	g.emit(wasm.I32Const(int32(lbase)), wasm.Load(l.op, uint32(loff)))
	got := g.loadModel(l.op, lbase+loff)
	if l.is64 {
		g.check(got)
	} else {
		g.checkI32(uint32(got))
	}
}

func (g *semGen) storeModel(addr, width int, val uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	copy(g.mem[addr:addr+width], buf[:width])
}

func (g *semGen) loadModel(op wasm.Opcode, addr int) uint64 {
	p := g.mem[addr:]
	switch op {
	case wasm.OpI32Load8U, wasm.OpI64Load8U:
		return uint64(p[0])
	case wasm.OpI32Load8S:
		return uint64(uint32(int32(int8(p[0]))))
	case wasm.OpI64Load8S:
		return uint64(int64(int8(p[0])))
	case wasm.OpI32Load16U, wasm.OpI64Load16U:
		return uint64(binary.LittleEndian.Uint16(p))
	case wasm.OpI32Load16S:
		return uint64(uint32(int32(int16(binary.LittleEndian.Uint16(p)))))
	case wasm.OpI64Load16S:
		return uint64(int64(int16(binary.LittleEndian.Uint16(p))))
	case wasm.OpI32Load, wasm.OpI64Load32U:
		return uint64(binary.LittleEndian.Uint32(p))
	case wasm.OpI64Load32S:
		return uint64(int64(int32(binary.LittleEndian.Uint32(p))))
	default: // OpI64Load
		return binary.LittleEndian.Uint64(p)
	}
}

// segBrTable emits a br_table ladder and checks the selected arm.
func (g *semGen) segBrTable() {
	n := 2 + g.rng.Intn(4)
	sel := uint32(g.rng.Intn(n + 2)) // sometimes past the table → default
	def := uint32(g.rng.Intn(n))
	arms := make([]uint64, n)
	targets := make([]uint32, n)
	for i := range arms {
		arms[i] = g.rng.Uint64()
		targets[i] = uint32(i)
	}
	eff := int(def)
	if int(sel) < n {
		eff = int(sel)
	}

	g.emit(wasm.Block()) // $out
	for i := 0; i < n; i++ {
		g.emit(wasm.Block())
	}
	g.emit(wasm.I32Const(int32(sel)), wasm.BrTable(targets, def))
	for i := 0; i < n; i++ {
		g.emit(wasm.End(), // closes block i: arm i starts here
			wasm.I64Const(int64(arms[i])), wasm.LocalSet(semLocA),
			wasm.Br(uint32(n-1-i)))
	}
	g.emit(wasm.End()) // $out
	g.l2 = arms[eff]
	g.emit(wasm.LocalGet(semLocA))
	g.check(g.l2)
}

// segGlobals round-trips mutable globals through set/get and arithmetic.
func (g *semGen) segGlobals() {
	gi := uint32(g.rng.Intn(2))
	v := g.rng.Uint64()
	g.emit(wasm.I64Const(int64(v)), wasm.GlobalSet(gi))
	g.glob[gi] = v
	other := 1 - gi
	g.emit(wasm.GlobalGet(gi), wasm.GlobalGet(other), wasm.Op0(wasm.OpI64Xor))
	g.check(g.glob[gi] ^ g.glob[other])
}

// segTeeChain exercises local.tee and local round-trips.
func (g *semGen) segTeeChain() {
	a := g.rng.Uint64()
	k := g.rng.Uint64()
	g.emit(
		wasm.I64Const(int64(a)), wasm.LocalSet(semLocA),
		wasm.LocalGet(semLocA), wasm.LocalTee(semLocB),
		wasm.I64Const(int64(k)), wasm.Op0(wasm.OpI64Add), wasm.LocalSet(semLocA),
	)
	g.l2, g.l3 = a+k, a
	g.emit(wasm.LocalGet(semLocA))
	g.check(g.l2)
	g.emit(wasm.LocalGet(semLocB))
	g.check(g.l3)
}

// segGrow checks memory.grow/memory.size edges against the modeled page
// count (min 1, max 2): growth within max, past max, and past the hard cap.
func (g *semGen) segGrow() {
	reqs := []uint32{0, 1, 2, 70000}
	req := reqs[g.rng.Intn(len(reqs))]
	want := g.pages
	switch {
	case req == 0:
		// size query via grow(0)
	case g.pages+uint64(req) > g.maxPgs:
		want = 0xffffffff
	default:
		g.pages += uint64(req)
	}
	g.emit(wasm.I32Const(int32(req)), wasm.Op0(wasm.OpMemoryGrow))
	g.checkI32(uint32(want))
	g.emit(wasm.Op0(wasm.OpMemorySize))
	g.checkI32(uint32(g.pages))
}

// segControl exercises if/else selection and a counted loop.
func (g *semGen) segControl() {
	if g.rng.Intn(2) == 0 {
		cond := uint32(g.rng.Intn(2))
		a, b := g.rng.Uint64(), g.rng.Uint64()
		g.emit(
			wasm.I32Const(int32(cond)), wasm.IfTyped(wasm.I64),
			wasm.I64Const(int64(a)), wasm.Else(), wasm.I64Const(int64(b)), wasm.End(),
		)
		want := b
		if cond != 0 {
			want = a
		}
		g.check(want)
		return
	}
	// acc = sum of i for i in [1, k]
	k := uint64(1 + g.rng.Intn(12))
	g.emit(
		wasm.I64Const(0), wasm.LocalSet(semLocA),
		wasm.I64Const(int64(k)), wasm.LocalSet(semLocB),
		wasm.Block(), wasm.Loop(),
		wasm.LocalGet(semLocB), wasm.Op0(wasm.OpI64Eqz), wasm.BrIf(1),
		wasm.LocalGet(semLocA), wasm.LocalGet(semLocB), wasm.Op0(wasm.OpI64Add), wasm.LocalSet(semLocA),
		wasm.LocalGet(semLocB), wasm.I64Const(-1), wasm.Op0(wasm.OpI64Add), wasm.LocalSet(semLocB),
		wasm.Br(0), wasm.End(), wasm.End(),
	)
	g.l2 = k * (k + 1) / 2
	g.l3 = 0
	g.emit(wasm.LocalGet(semLocA))
	g.check(g.l2)
}
