package contractgen

import (
	"math/rand"
	"testing"
)

func TestGenerateWildPrevalence(t *testing.T) {
	rng := rand.New(rand.NewSource(991))
	opts := DefaultWildOptions(600)
	pop, err := GenerateWild(opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 600 {
		t.Fatalf("population = %d", len(pop))
	}
	counts := map[Class]int{}
	flagged := 0
	names := map[string]bool{}
	for _, wc := range pop {
		if names[wc.Name.String()] {
			t.Fatalf("duplicate account name %s", wc.Name)
		}
		names[wc.Name.String()] = true
		any := false
		for cl, v := range wc.Truth {
			if v {
				counts[cl]++
				any = true
			}
		}
		if any {
			flagged++
		}
		if wc.Abandoned && wc.Patched {
			t.Error("a contract cannot be both abandoned and patched")
		}
		if wc.Patched && wc.PatchedContract == nil {
			t.Error("patched contract missing its fixed version")
		}
	}
	// The per-class prevalence should land near the paper's mix
	// (tolerance ±40% relative at this sample size).
	expect := map[Class]float64{
		ClassFakeEOS:      241.0 / 991,
		ClassFakeNotif:    264.0 / 991,
		ClassMissAuth:     470.0 / 991,
		ClassBlockinfoDep: 22.0 / 991,
		ClassRollback:     122.0 / 991,
	}
	for cl, want := range expect {
		got := float64(counts[cl]) / 600
		if got < want*0.6 || got > want*1.5 {
			t.Errorf("%s prevalence = %.3f, want ≈ %.3f", cl, got, want)
		}
	}
	frac := float64(flagged) / 600
	if frac < 0.60 || frac > 0.85 {
		t.Errorf("flagged fraction = %.2f, want ≈ 0.71", frac)
	}
}

func TestGenerateWildDeterministic(t *testing.T) {
	a, err := GenerateWild(DefaultWildOptions(30), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWild(DefaultWildOptions(30), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Abandoned != b[i].Abandoned {
			t.Fatalf("population differs at %d", i)
		}
		for cl, v := range a[i].Truth {
			if b[i].Truth[cl] != v {
				t.Fatalf("truth differs at %d/%s", i, cl)
			}
		}
	}
}

func TestPatchedContractsAreSafeByConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pop, err := GenerateWild(DefaultWildOptions(120), rng)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, wc := range pop {
		if !wc.Patched {
			continue
		}
		checked++
		for cl, v := range wc.PatchedContract.Spec.VulnSet {
			if v {
				t.Errorf("%s: patched version still vulnerable to %s", wc.Name, cl)
			}
		}
	}
	if checked == 0 {
		t.Skip("no patched contracts drawn at this size/seed")
	}
}
