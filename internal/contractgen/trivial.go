package contractgen

import (
	"repro/internal/abi"
	"repro/internal/eos"
	"repro/internal/wasm"
)

// Trivial builds the minimal deployable contract: an exported apply that
// immediately returns, one page of memory, no dispatch table, no host
// imports, no actions. It models the boilerplate contracts that dominate a
// wild population — every static candidate flag is provably false for it
// (so triage may skip it), and a dynamic campaign over it reports all
// classes clean. Each call returns a fresh module.
func Trivial() *Contract {
	mod := &wasm.Module{
		Types:    []wasm.FuncType{{Params: []wasm.ValType{wasm.I64, wasm.I64, wasm.I64}}},
		Funcs:    []uint32{0},
		Memories: []wasm.MemType{{Limits: wasm.Limits{Min: 1}}},
		Exports:  []wasm.Export{{Name: "apply", Kind: wasm.ExternalFunc, Index: 0}},
		Code:     []wasm.Code{{Body: []wasm.Instr{{Op: wasm.OpEnd}}}},
	}
	return &Contract{Module: mod, ABI: &abi.ABI{}, Actions: map[eos.Name]uint32{}}
}
