package contractgen

import (
	"math/rand"
	"testing"

	"repro/internal/chain"
	"repro/internal/eos"
	"repro/internal/instrument"
	"repro/internal/trace"
	"repro/internal/wasm"
)

var (
	victim   = eos.MustName("victim")
	attacker = eos.MustName("attacker")
)

func generate(t *testing.T, spec Spec) *Contract {
	t.Helper()
	c, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate(%+v): %v", spec, err)
	}
	return c
}

// TestGenerateAllClassesRoundTrip encodes, decodes and re-validates every
// class/vulnerability combination.
func TestGenerateAllClassesRoundTrip(t *testing.T) {
	for _, class := range Classes {
		for _, vul := range []bool{true, false} {
			c := generate(t, Spec{Class: class, Vulnerable: vul, Seed: 1})
			bin, err := wasm.Encode(c.Module)
			if err != nil {
				t.Fatalf("%s vul=%v: encode: %v", class, vul, err)
			}
			m2, err := wasm.Decode(bin)
			if err != nil {
				t.Fatalf("%s vul=%v: decode: %v", class, vul, err)
			}
			if err := wasm.Validate(m2); err != nil {
				t.Fatalf("%s vul=%v: validate: %v", class, vul, err)
			}
			if len(m2.Code) != len(c.Module.Code) {
				t.Errorf("%s: code count mismatch after round trip", class)
			}
		}
	}
}

// deployInstrumented instruments a generated contract and deploys it.
func deployInstrumented(t *testing.T, bc *chain.Blockchain, name eos.Name, c *Contract) *instrument.SiteTable {
	t.Helper()
	res, err := instrument.Instrument(c.Module, instrument.ModeSparse)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	if err := bc.DeployModule(name, res.Module, c.ABI, res.Sites); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return res.Sites
}

func transferTx(from, to eos.Name, quantity, memo string) chain.Transaction {
	return chain.Transaction{Actions: []chain.Action{{
		Account:       eos.TokenContract,
		Name:          eos.ActionTransfer,
		Authorization: []chain.PermissionLevel{{Actor: from, Permission: eos.ActiveAuth}},
		Data: chain.EncodeTransfer(chain.TransferArgs{
			From: from, To: to, Quantity: eos.MustAsset(quantity), Memo: memo,
		}),
	}}}
}

// TestGeneratedContractRunsOnChain drives a full instrumented execution: a
// real EOS transfer notifies the contract, the eosponser runs, records a
// bet and the hooks emit a trace.
func TestGeneratedContractRunsOnChain(t *testing.T) {
	c := generate(t, Spec{Class: ClassFakeNotif, Vulnerable: false, Seed: 7})
	bc := chain.New()
	bc.Collector = trace.NewCollector()
	deployInstrumented(t, bc, victim, c)
	bc.CreateAccount(attacker)
	if err := bc.Issue(eos.TokenContract, attacker, eos.MustAsset("100.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}

	rcpt := bc.PushTransaction(transferTx(attacker, victim, "5.0000 EOS", "bet"))
	if rcpt.Err != nil {
		t.Fatalf("transfer: %v", rcpt.Err)
	}
	// The bet row was stored under the victim's scope.
	if n := bc.DB().Rows(victim, victim, TableBets); n != 1 {
		t.Errorf("bets rows = %d, want 1", n)
	}
	// A trace was captured for the victim only.
	var victimTraces int
	for _, tr := range rcpt.Traces {
		if tr.Contract == victim {
			victimTraces++
			if len(tr.Events) == 0 {
				t.Error("victim trace is empty")
			}
		}
	}
	if victimTraces == 0 {
		t.Fatal("no victim trace captured")
	}
}

// TestFakeNotifGuardBlocksWrongRecipient checks the to != self early return.
func TestFakeNotifGuardBlocksWrongRecipient(t *testing.T) {
	c := generate(t, Spec{Class: ClassFakeNotif, Vulnerable: false, Seed: 8})
	bc := chain.New()
	agent := eos.MustName("fake.notif")
	bc.DeployNative(agent, &chain.ForwarderAgent{Victim: victim}, nil)
	deployInstrumented(t, bc, victim, c)
	bc.CreateAccount(attacker)
	if err := bc.Issue(eos.TokenContract, attacker, eos.MustAsset("100.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}
	// Pay the agent; the forwarded notification must NOT record a bet.
	rcpt := bc.PushTransaction(transferTx(attacker, agent, "5.0000 EOS", ""))
	if rcpt.Err != nil {
		t.Fatalf("transfer: %v", rcpt.Err)
	}
	if n := bc.DB().Rows(victim, victim, TableBets); n != 0 {
		t.Errorf("guarded contract recorded %d bets from forwarded notification", n)
	}

	// The vulnerable variant accepts the forged notification.
	cv := generate(t, Spec{Class: ClassFakeNotif, Vulnerable: true, Seed: 8})
	victim2 := eos.MustName("victim2")
	bc.DeployNative(eos.MustName("fake.notif2"), &chain.ForwarderAgent{Victim: victim2}, nil)
	deployInstrumented(t, bc, victim2, cv)
	rcpt = bc.PushTransaction(transferTx(attacker, eos.MustName("fake.notif2"), "5.0000 EOS", ""))
	if rcpt.Err != nil {
		t.Fatalf("transfer 2: %v", rcpt.Err)
	}
	if n := bc.DB().Rows(victim2, victim2, TableBets); n != 1 {
		t.Errorf("vulnerable contract rows = %d, want 1 (accepted forged notification)", n)
	}
}

// TestFakeEOSGuard checks the code == eosio.token assert in apply.
func TestFakeEOSGuard(t *testing.T) {
	bc := chain.New()
	fake := eos.MustName("fake.token")
	bc.DeployNative(fake, &chain.TokenContract{Issuer: fake, Sym: eos.EOSSymbol}, nil)
	bc.CreateAccount(attacker)
	if err := bc.Issue(fake, attacker, eos.MustAsset("100.0000 EOS")); err != nil {
		t.Fatalf("issue fake: %v", err)
	}

	fakeTransfer := func(to eos.Name) chain.Transaction {
		return chain.Transaction{Actions: []chain.Action{{
			Account:       fake,
			Name:          eos.ActionTransfer,
			Authorization: []chain.PermissionLevel{{Actor: attacker, Permission: eos.ActiveAuth}},
			Data: chain.EncodeTransfer(chain.TransferArgs{
				From: attacker, To: to, Quantity: eos.MustAsset("5.0000 EOS"),
			}),
		}}}
	}

	safe := generate(t, Spec{Class: ClassFakeEOS, Vulnerable: false, Seed: 9})
	deployInstrumented(t, bc, victim, safe)
	rcpt := bc.PushTransaction(fakeTransfer(victim))
	if rcpt.Err != nil {
		// The whole transaction reverts because the victim's assert fires
		// during notification processing.
		if n := bc.DB().Rows(victim, victim, TableBets); n != 0 {
			t.Errorf("rows = %d after reverted fake transfer", n)
		}
	} else {
		t.Fatal("safe contract accepted fake EOS (transaction committed)")
	}

	vul := generate(t, Spec{Class: ClassFakeEOS, Vulnerable: true, Seed: 9})
	victim2 := eos.MustName("victim2")
	deployInstrumented(t, bc, victim2, vul)
	rcpt = bc.PushTransaction(fakeTransfer(victim2))
	if rcpt.Err != nil {
		t.Fatalf("vulnerable contract rejected fake EOS: %v", rcpt.Err)
	}
	if n := bc.DB().Rows(victim2, victim2, TableBets); n != 1 {
		t.Errorf("rows = %d, want 1 (fake EOS accepted)", n)
	}
}

// TestMissAuthSweep verifies that only the unguarded sweep moves funds
// without the owner's authorization.
func TestMissAuthSweep(t *testing.T) {
	for _, vul := range []bool{true, false} {
		bc := chain.New()
		c := generate(t, Spec{Class: ClassMissAuth, Vulnerable: vul, Seed: 10})
		deployInstrumented(t, bc, victim, c)
		bc.CreateAccount(attacker)
		if err := bc.Issue(eos.TokenContract, victim, eos.MustAsset("50.0000 EOS")); err != nil {
			t.Fatalf("issue: %v", err)
		}
		// The attacker invokes sweep with from=victim but signs as attacker:
		// only the vulnerable contract lets this through.
		data := chain.EncodeTransfer(chain.TransferArgs{
			From: victim, To: attacker, Quantity: eos.MustAsset("50.0000 EOS"),
		})
		rcpt := bc.PushTransaction(chain.Transaction{Actions: []chain.Action{{
			Account:       victim,
			Name:          ActionSweep,
			Authorization: []chain.PermissionLevel{{Actor: attacker, Permission: eos.ActiveAuth}},
			Data:          data,
		}}})
		got := bc.Balance(eos.TokenContract, attacker).Amount
		if vul {
			if rcpt.Err != nil {
				t.Fatalf("vulnerable sweep failed: %v", rcpt.Err)
			}
			if got != 500000 {
				t.Errorf("attacker balance = %d, want 500000 (funds stolen)", got)
			}
		} else {
			if rcpt.Err == nil {
				t.Fatal("guarded sweep succeeded without authorization")
			}
			if got != 0 {
				t.Errorf("attacker balance = %d, want 0", got)
			}
		}
	}
}

// TestRevealBranchesAndTemplate drives the reveal action through its nested
// branches with the exact constants and checks the payout paths.
func TestRevealBranchesAndTemplate(t *testing.T) {
	luckyFrom := eos.MustName("luckyplayer")
	spec := Spec{
		Class:      ClassRollback,
		Vulnerable: true,
		Branches:   []BranchCheck{{Field: "from", Value: uint64(luckyFrom)}},
		Seed:       11,
	}
	c := generate(t, spec)
	bc := chain.New()
	deployInstrumented(t, bc, victim, c)
	bc.CreateAccount(luckyFrom)
	if err := bc.Issue(eos.TokenContract, victim, eos.MustAsset("1000.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}

	invoke := func(from eos.Name) *chain.Receipt {
		data := chain.EncodeTransfer(chain.TransferArgs{
			From: from, To: victim, Quantity: eos.MustAsset("10.0000 EOS"),
		})
		return bc.PushTransaction(chain.Transaction{Actions: []chain.Action{{
			Account:       victim,
			Name:          ActionReveal,
			Authorization: []chain.PermissionLevel{{Actor: from, Permission: eos.ActiveAuth}},
			Data:          data,
		}}})
	}

	// Wrong `from`: branch not taken, no payout attempt.
	rcpt := invoke(attacker)
	if rcpt.Err != nil {
		t.Fatalf("reveal(wrong from): %v", rcpt.Err)
	}
	if len(rcpt.InlineSent) != 0 {
		t.Errorf("payout sent on unmatched branch")
	}

	// Matching `from`: the template runs; depending on the block state the
	// payout may or may not fire, so step blocks until it does.
	paid := false
	for i := 0; i < 20 && !paid; i++ {
		rcpt = invoke(luckyFrom)
		if rcpt.Err != nil {
			t.Fatalf("reveal(lucky): %v", rcpt.Err)
		}
		paid = len(rcpt.InlineSent) > 0
	}
	if !paid {
		t.Error("template never paid out in 20 blocks")
	}
	if got := bc.Balance(eos.TokenContract, luckyFrom).Amount; !paid || got == 0 {
		t.Errorf("lucky player balance = %d", got)
	}
}

// TestVerificationInjection checks the §4.3 unreachable-guarded checks.
func TestVerificationInjection(t *testing.T) {
	spec := Spec{
		Class:      ClassFakeEOS,
		Vulnerable: true,
		Verification: []VerCheck{
			{Field: "amount", Value: 1000000},
			{Field: "symbol", Value: uint64(eos.EOSSymbol)},
		},
		Seed: 12,
	}
	c := generate(t, spec)
	bc := chain.New()
	deployInstrumented(t, bc, victim, c)
	bc.CreateAccount(attacker)
	if err := bc.Issue(eos.TokenContract, attacker, eos.MustAsset("500.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}
	// Wrong amount: unreachable -> transaction reverts.
	rcpt := bc.PushTransaction(transferTx(attacker, victim, "5.0000 EOS", ""))
	if rcpt.Err == nil {
		t.Fatal("verification did not reject wrong amount")
	}
	// Exact amount passes.
	rcpt = bc.PushTransaction(transferTx(attacker, victim, "100.0000 EOS", ""))
	if rcpt.Err != nil {
		t.Fatalf("verification rejected the elaborate input: %v", rcpt.Err)
	}
}

// TestDBDependentReveal requires a deposit before reveal succeeds.
func TestDBDependentReveal(t *testing.T) {
	spec := Spec{Class: ClassRollback, Vulnerable: true, DBDependent: true, Seed: 13}
	c := generate(t, spec)
	bc := chain.New()
	deployInstrumented(t, bc, victim, c)
	bc.CreateAccount(attacker)
	if err := bc.Issue(eos.TokenContract, victim, eos.MustAsset("100.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}
	data := chain.EncodeTransfer(chain.TransferArgs{
		From: attacker, To: victim, Quantity: eos.MustAsset("10.0000 EOS"),
	})
	mkTx := func(action eos.Name) chain.Transaction {
		return chain.Transaction{Actions: []chain.Action{{
			Account:       victim,
			Name:          action,
			Authorization: []chain.PermissionLevel{{Actor: attacker, Permission: eos.ActiveAuth}},
			Data:          data,
		}}}
	}
	if rcpt := bc.PushTransaction(mkTx(ActionReveal)); rcpt.Err == nil {
		t.Fatal("reveal succeeded without deposit")
	}
	if rcpt := bc.PushTransaction(mkTx(ActionDeposit)); rcpt.Err != nil {
		t.Fatalf("deposit: %v", rcpt.Err)
	}
	if rcpt := bc.PushTransaction(mkTx(ActionReveal)); rcpt.Err != nil {
		t.Fatalf("reveal after deposit: %v", rcpt.Err)
	}
}

// TestInaccessibleTemplateNeverFires: the contradictory wrapper keeps the
// vulnerable template unreachable.
func TestInaccessibleTemplateNeverFires(t *testing.T) {
	spec := Spec{Class: ClassRollback, Vulnerable: true, Inaccessible: true, Seed: 14}
	if spec.GroundTruth() {
		t.Fatal("inaccessible spec must be ground-truth safe")
	}
	c := generate(t, spec)
	bc := chain.New()
	deployInstrumented(t, bc, victim, c)
	bc.CreateAccount(attacker)
	if err := bc.Issue(eos.TokenContract, victim, eos.MustAsset("100.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}
	data := chain.EncodeTransfer(chain.TransferArgs{
		From: attacker, To: victim, Quantity: eos.MustAsset("10.0000 EOS"),
	})
	for i := 0; i < 10; i++ {
		rcpt := bc.PushTransaction(chain.Transaction{Actions: []chain.Action{{
			Account:       victim,
			Name:          ActionReveal,
			Authorization: []chain.PermissionLevel{{Actor: attacker, Permission: eos.ActiveAuth}},
			Data:          data,
		}}})
		if rcpt.Err != nil {
			t.Fatalf("reveal %d: %v", i, rcpt.Err)
		}
		if len(rcpt.InlineSent) != 0 {
			t.Fatal("inaccessible template fired")
		}
	}
}

func TestRandomSpecDeterministicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		for _, class := range Classes {
			spec := RandomSpec(class, i%2 == 0, rng)
			if _, err := Generate(spec); err != nil {
				t.Fatalf("Generate(%+v): %v", spec, err)
			}
		}
	}
}
