package contractgen

import (
	"bytes"
	"testing"

	"repro/internal/wasm"
	"repro/internal/wasm/exec"
)

// runSemReference executes p's "run" export on the reference interpreter,
// returning the result, the observed note sequence, and any error.
func runSemReference(t *testing.T, p *SemProgram) (uint64, []uint64, error) {
	t.Helper()
	var notes []uint64
	resolver := exec.Resolver{"sem": exec.HostModule{
		"note": func(vm *exec.VM, args []uint64) ([]uint64, error) {
			notes = append(notes, args[0])
			return nil, nil
		},
	}}
	inst, err := exec.Instantiate(p.Module, resolver)
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	res, err := exec.NewVM(inst).Invoke("run")
	if err != nil {
		return 0, notes, err
	}
	if len(res) != 1 {
		t.Fatalf("run returned %d results", len(res))
	}
	return res[0], notes, nil
}

// TestSemanticsDeterministicSeed: the generator is a pure function of its
// seed — same seed, byte-identical encoded module and identical oracle.
func TestSemanticsDeterministicSeed(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, 12345, -9} {
		a := GenerateSemantics(seed)
		b := GenerateSemantics(seed)
		ba, err := wasm.Encode(a.Module)
		if err != nil {
			t.Fatalf("seed %d: encode a: %v", seed, err)
		}
		bb, err := wasm.Encode(b.Module)
		if err != nil {
			t.Fatalf("seed %d: encode b: %v", seed, err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("seed %d: modules differ across generations", seed)
		}
		if a.Return != b.Return || len(a.Notes) != len(b.Notes) || a.Checks != b.Checks {
			t.Fatalf("seed %d: oracles differ across generations", seed)
		}
	}
	if ra, _ := wasm.Encode(GenerateSemantics(3).Module); true {
		rb, _ := wasm.Encode(GenerateSemantics(4).Module)
		if bytes.Equal(ra, rb) {
			t.Fatal("distinct seeds produced identical modules")
		}
	}
}

// TestSemanticsSweep: a 256-seed sweep — every generated module validates,
// decode/encode round-trips, and its self-checks pass on the reference VM
// with the predicted return value and note sequence. This guards generator
// bugs from masquerading as engine bugs in the differential gate.
func TestSemanticsSweep(t *testing.T) {
	for seed := int64(0); seed < 256; seed++ {
		p := GenerateSemantics(seed)
		if p.Checks == 0 {
			t.Fatalf("seed %d: no self-checks generated", seed)
		}
		if err := wasm.Validate(p.Module); err != nil {
			t.Fatalf("seed %d: generated module invalid: %v", seed, err)
		}
		bin, err := wasm.Encode(p.Module)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		if _, err := wasm.Decode(bin); err != nil {
			t.Fatalf("seed %d: decode round-trip: %v", seed, err)
		}
		got, notes, err := runSemReference(t, p)
		if err != nil {
			t.Fatalf("seed %d: self-check failed on reference VM: %v", seed, err)
		}
		if got != p.Return {
			t.Fatalf("seed %d: return %#x, predicted %#x", seed, got, p.Return)
		}
		if len(notes) != len(p.Notes) {
			t.Fatalf("seed %d: %d notes, predicted %d", seed, len(notes), len(p.Notes))
		}
		for i := range notes {
			if notes[i] != p.Notes[i] {
				t.Fatalf("seed %d: note %d = %#x, predicted %#x", seed, i, notes[i], p.Notes[i])
			}
		}
	}
}
