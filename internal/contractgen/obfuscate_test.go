package contractgen

import (
	"math/rand"
	"testing"

	"repro/internal/chain"
	"repro/internal/eos"
	"repro/internal/wasm"
)

func TestObfuscatePreservesBehaviour(t *testing.T) {
	// The obfuscated contract must behave exactly like the original on the
	// chain: same accept/reject decisions, same DB effects.
	spec := Spec{Class: ClassFakeNotif, Vulnerable: false, Seed: 3}
	run := func(obfuscate bool) (bets int, guardWorked bool) {
		c, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		if obfuscate {
			if _, err := Obfuscate(c.Module, ObfuscateOptions{
				Popcount: true, OpaqueRecursion: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		bc := chain.New()
		if err := bc.DeployModule(victim, c.Module, c.ABI, nil); err != nil {
			t.Fatal(err)
		}
		agent := eos.MustName("fake.notif")
		bc.DeployNative(agent, &chain.ForwarderAgent{Victim: victim}, nil)
		bc.CreateAccount(attacker)
		if err := bc.Issue(eos.TokenContract, attacker, eos.MustAsset("100.0000 EOS")); err != nil {
			t.Fatal(err)
		}
		// Legit transfer: bet recorded.
		rcpt := bc.PushTransaction(transferTx(attacker, victim, "5.0000 EOS", ""))
		if rcpt.Err != nil {
			t.Fatalf("legit transfer: %v", rcpt.Err)
		}
		// Forwarded notification: guard must reject it.
		rcpt = bc.PushTransaction(transferTx(attacker, agent, "5.0000 EOS", ""))
		if rcpt.Err != nil {
			t.Fatalf("forwarded: %v", rcpt.Err)
		}
		return bc.DB().Rows(victim, victim, TableBets), bc.DB().Rows(victim, victim, TableBets) == 1
	}
	plainBets, plainGuard := run(false)
	obfBets, obfGuard := run(true)
	if plainBets != obfBets || plainGuard != obfGuard {
		t.Errorf("behaviour diverged: plain (%d, %v) vs obfuscated (%d, %v)",
			plainBets, plainGuard, obfBets, obfGuard)
	}
}

func TestObfuscateInsertsRecursionAndPopcount(t *testing.T) {
	c, err := Generate(Spec{Class: ClassFakeEOS, Vulnerable: false, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := len(c.Module.Code)
	if _, err := Obfuscate(c.Module, ObfuscateOptions{Popcount: true, OpaqueRecursion: true}); err != nil {
		t.Fatal(err)
	}
	if len(c.Module.Code) != before+1 {
		t.Errorf("opaque recursion function not added: %d -> %d", before, len(c.Module.Code))
	}
	// The final function is obf_rec, whose opaque predicate legitimately
	// compares constants (it is inserted after the popcount pass).
	var popcnts, eqAgainstConst int
	for _, code := range c.Module.Code[:len(c.Module.Code)-1] {
		for i, in := range code.Body {
			if in.Op == wasm.OpI64Popcnt {
				popcnts++
			}
			if in.Op == wasm.OpI64Eq && i > 0 && code.Body[i-1].Op == wasm.OpI64Const {
				eqAgainstConst++
			}
		}
	}
	if popcnts == 0 {
		t.Error("no popcount encodings inserted")
	}
	if eqAgainstConst != 0 {
		t.Errorf("%d constant comparisons survived the popcount pass", eqAgainstConst)
	}
	// Still a valid module that round-trips.
	bin, err := wasm.Encode(c.Module)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wasm.Decode(bin); err != nil {
		t.Fatal(err)
	}
}

func TestObfuscateGuardProbRequiresRng(t *testing.T) {
	c, err := Generate(Spec{Class: ClassFakeNotif, Vulnerable: false, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Obfuscate(c.Module, ObfuscateOptions{Popcount: true, GuardObfProb: 0.5}); err == nil {
		t.Error("GuardObfProb without Rng accepted")
	}
	if _, err := Obfuscate(c.Module, ObfuscateOptions{
		Popcount: true, GuardObfProb: 1.0, Rng: rand.New(rand.NewSource(1)),
	}); err != nil {
		t.Errorf("with rng: %v", err)
	}
	// With probability 1 every guard comparison is encoded: no i64.ne left.
	for _, code := range c.Module.Code {
		for _, in := range code.Body {
			if in.Op == wasm.OpI64Ne || in.Op == wasm.OpI64Eq {
				t.Fatal("a comparison survived GuardObfProb=1")
			}
		}
	}
}
