package contractgen

import (
	"fmt"
	"math/rand"

	"repro/internal/wasm"
)

// ObfuscateOptions tunes the §4.3 bytecode obfuscator.
type ObfuscateOptions struct {
	// Popcount enables the data-flow pass: equality comparisons against
	// constants are re-encoded through the popcount algorithm
	// (x == c  becomes  popcnt(x ^ c) == 0), hiding the compared constant
	// from pattern-matching analyzers.
	Popcount bool
	// GuardObfProb is the probability that a non-constant i64 comparison
	// (e.g. the Fake Notification to==self guard) is popcount-encoded too.
	// Encoded guards become invisible to trace-level guard detection, which
	// is the source of WASAI's small FP rate on the obfuscated benchmark
	// (Table 5: Fake Notif precision 92.4%).
	GuardObfProb float64
	// OpaqueRecursion enables the control-flow pass: a self-recursive
	// function guarded by an unsatisfiable condition is inserted and called
	// from every function entry. Static analyzers exploring both branch
	// arms diverge; concrete execution never enters the recursion.
	OpaqueRecursion bool
	// Rng drives the probabilistic choices; required when GuardObfProb > 0.
	Rng *rand.Rand
}

// DefaultObfuscation mirrors the paper's obfuscator configuration.
func DefaultObfuscation(rng *rand.Rand) ObfuscateOptions {
	return ObfuscateOptions{
		Popcount:        true,
		GuardObfProb:    0.08,
		OpaqueRecursion: true,
		Rng:             rng,
	}
}

// Obfuscate rewrites m in place (m must be a generator-produced module that
// has not been instrumented yet) and returns it for chaining.
func Obfuscate(m *wasm.Module, opts ObfuscateOptions) (*wasm.Module, error) {
	if opts.GuardObfProb > 0 && opts.Rng == nil {
		return nil, fmt.Errorf("contractgen: GuardObfProb requires Rng")
	}
	if opts.Popcount {
		for i := range m.Code {
			m.Code[i].Body = popcountPass(m.Code[i].Body, opts)
		}
	}
	if opts.OpaqueRecursion {
		insertOpaqueRecursion(m)
	}
	if err := wasm.Validate(m); err != nil {
		return nil, fmt.Errorf("contractgen: obfuscated module invalid: %w", err)
	}
	return m, nil
}

// popcountPass re-encodes i64 equality comparisons.
func popcountPass(body []wasm.Instr, opts ObfuscateOptions) []wasm.Instr {
	out := make([]wasm.Instr, 0, len(body)+8)
	for i, in := range body {
		isEq := in.Op == wasm.OpI64Eq
		isNe := in.Op == wasm.OpI64Ne
		if !isEq && !isNe {
			out = append(out, in)
			continue
		}
		constOperand := i > 0 && body[i-1].Op == wasm.OpI64Const
		if !constOperand && (opts.GuardObfProb <= 0 || opts.Rng.Float64() >= opts.GuardObfProb) {
			out = append(out, in)
			continue
		}
		// x == y  ->  popcnt(x ^ y) == 0 ; x != y -> !(popcnt(x ^ y) == 0)
		out = append(out,
			wasm.Op0(wasm.OpI64Xor),
			wasm.Op0(wasm.OpI64Popcnt),
			wasm.Op0(wasm.OpI64Eqz),
		)
		if isNe {
			out = append(out, wasm.Op0(wasm.OpI32Eqz))
		}
	}
	return out
}

// insertOpaqueRecursion adds the unsatisfiable self-recursive function and
// calls it at the entry of every pre-existing local function.
func insertOpaqueRecursion(m *wasm.Module) {
	numImports := uint32(m.NumImportedFuncs())
	recIdx := numImports + uint32(len(m.Funcs))
	ti := m.AddType(wasm.FuncType{})
	// if (0x5eed == 0x5eee) { obf_rec() }  — never satisfiable, but a
	// static explorer that follows both arms recurses forever.
	m.Funcs = append(m.Funcs, ti)
	m.Code = append(m.Code, wasm.Code{Body: []wasm.Instr{
		wasm.I64Const(0x5eed), wasm.I64Const(0x5eee), wasm.Op0(wasm.OpI64Eq),
		wasm.If(),
		wasm.Call(recIdx),
		wasm.End(),
		wasm.End(),
	}})
	if m.FuncNames != nil {
		m.FuncNames[recIdx] = "obf_rec"
	}
	for i := range m.Code[:len(m.Code)-1] {
		m.Code[i].Body = append([]wasm.Instr{wasm.Call(recIdx)}, m.Code[i].Body...)
	}
}
