package contractgen

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/eos"
	"repro/internal/instrument"
	"repro/internal/symbolic"
	"repro/internal/symexec"
	"repro/internal/trace"
	"repro/internal/wasm"
)

// brTableContract dispatches on (from & 3) through a br_table; arm 2
// records a bet row (the observable event).
func brTableContract(t *testing.T) *wasm.Module {
	t.Helper()
	b := newModBuilder()
	g := &gen{b: b, spec: Spec{Class: ClassFakeEOS, Vulnerable: true}}
	body := []wasm.Instr{
		wasm.Block(), // $out
		wasm.Block(), // $arm2
		wasm.Block(), // $arm1
		wasm.Block(), // $arm0
		wasm.LocalGet(1), wasm.I64Const(3), wasm.Op0(wasm.OpI64And),
		wasm.Op0(wasm.OpI32WrapI64),
		{Op: wasm.OpBrTable, Table: []uint32{0, 1, 2}, A: 3},
		wasm.End(), // arm0: nothing
		wasm.Br(2),
		wasm.End(), // arm1: nothing
		wasm.Br(1),
		wasm.End(), // arm2: record the bet
	}
	body = append(body, g.storeRow(TableBets)...)
	body = append(body, wasm.End()) // $out
	fn := b.addFunc("switchy", b.actionSig, nil, body)
	b.setActionTable([]uint32{fn})
	apply := b.addFunc("apply", b.m.AddType(ft(p(wasm.I64, wasm.I64, wasm.I64), nil)), nil,
		g.applyBody(map[eos.Name]uint32{eos.ActionTransfer: 0}))
	b.export(apply)
	if err := wasm.Validate(b.m); err != nil {
		t.Fatalf("br_table contract invalid: %v", err)
	}
	return b.m
}

// TestBrTableFlipSteersArms: the §3.4.4 flip of a br_table conditional
// produces seeds reaching every arm, including the bet-recording one.
func TestBrTableFlipSteersArms(t *testing.T) {
	mod := brTableContract(t)
	res, err := instrument.Instrument(mod, instrument.ModeSparse)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	bc := chain.New()
	bc.Collector = trace.NewCollector()
	if err := bc.DeployModule(victim, res.Module, TransferFieldsABI(eos.ActionTransfer), res.Sites); err != nil {
		t.Fatalf("deploy: %v", err)
	}

	invoke := func(from uint64) (*trace.Trace, *chain.Receipt) {
		signer := eos.Name(from)
		bc.CreateAccount(signer)
		rcpt := bc.PushTransaction(chain.Transaction{Actions: []chain.Action{{
			Account:       victim,
			Name:          eos.ActionTransfer,
			Authorization: []chain.PermissionLevel{{Actor: signer, Permission: eos.ActiveAuth}},
			Data: chain.EncodeTransfer(chain.TransferArgs{
				From: eos.Name(from), To: victim,
				Quantity: eos.EOS(10000), Memo: "x",
			}),
		}}})
		for i := range rcpt.Traces {
			if rcpt.Traces[i].Contract == victim {
				return &rcpt.Traces[i], rcpt
			}
		}
		return nil, rcpt
	}

	// from & 3 == 0: the default arm (depth 3) — no bet recorded.
	from0 := uint64(eos.MustName("aaaaaaaaaaab")) &^ 3
	tr, rcpt := invoke(from0)
	if rcpt.Err != nil {
		t.Fatalf("invoke: %v", rcpt.Err)
	}
	if bc.DB().Rows(victim, victim, TableBets) != 0 {
		t.Fatal("arm 2 reached with the initial seed")
	}

	params := []symexec.Param{
		{Type: "name", U64: from0},
		{Type: "name", U64: uint64(victim)},
		{Type: "asset", Amount: 10000, Symbol: uint64(eos.EOSSymbol)},
		{Type: "string", Str: []byte("x")},
	}
	symRes, err := symexec.Run(mod, tr, params, symexec.Options{
		Globals: map[uint32]uint64{0: uint64(victim)},
	})
	if err != nil {
		t.Fatalf("symexec: %v", err)
	}
	var brTableConds int
	for _, cs := range symRes.Conds {
		if cs.Kind == symexec.CondBrTable {
			brTableConds++
			if cs.NumTargets != 4 {
				t.Errorf("NumTargets = %d, want 4", cs.NumTargets)
			}
		}
	}
	if brTableConds != 1 {
		t.Fatalf("br_table conditionals = %d, want 1", brTableConds)
	}

	// Flip queries cover the three other arms; solving each yields a seed
	// selecting that arm.
	queries := symexec.FlipQueries(symRes)
	solver := &symbolic.Solver{}
	armsReached := map[uint64]bool{}
	for _, q := range queries {
		model, r := solver.Solve(q.Constraints)
		if r != symbolic.Sat {
			continue
		}
		mutated := symexec.ApplyModel(params, model)
		armsReached[mutated[0].U64&3] = true
		if mutated[0].U64&3 == 2 {
			_, rcpt := invoke(mutated[0].U64)
			if rcpt.Err != nil {
				t.Fatalf("arm-2 seed: %v", rcpt.Err)
			}
			if bc.DB().Rows(victim, victim, TableBets) == 0 {
				t.Error("arm-2 seed did not record the bet")
			}
		}
	}
	for _, want := range []uint64{1, 2, 3} {
		if !armsReached[want] {
			t.Errorf("no adaptive seed for arm %d (reached: %v)", want, armsReached)
		}
	}
}
