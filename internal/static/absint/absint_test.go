package absint

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/abi"
	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/fuzz"
	"repro/internal/trace"
)

func abiActions(a *abi.ABI) []eos.Name {
	var out []eos.Name
	for _, act := range a.Actions {
		out = append(out, act.Name)
	}
	return out
}

// runDynamic executes a real fuzzing campaign and returns the scanner's
// per-class verdicts plus the captured traces.
func runDynamic(t *testing.T, c *contractgen.Contract, iters int) (map[contractgen.Class]bool, []trace.Trace) {
	t.Helper()
	f, err := fuzz.New(c.Module, c.ABI, fuzz.Config{
		Iterations: iters, SolverConflicts: 50_000, Seed: 1, KeepTraces: true,
	})
	if err != nil {
		t.Fatalf("fuzz.New: %v", err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatalf("fuzz.Run: %v", err)
	}
	return res.Report.Vulnerable, res.Traces
}

// checkSound asserts the two soundness directions of a verdict report
// against a dynamic campaign's observations.
func checkSound(t *testing.T, label string, rp *Report, dyn map[contractgen.Class]bool) {
	t.Helper()
	for _, class := range contractgen.Classes {
		v := rp.Verdicts[class]
		if v.Kind == ProvenNegative && dyn[class] {
			t.Errorf("%s: %s proven negative but dynamically vulnerable", label, class)
		}
		if v.Kind == ProvenPositive && !dyn[class] {
			t.Errorf("%s: %s proven positive but dynamic oracle never fired", label, class)
		}
	}
}

// checkDeadEdges asserts no captured conditional event contradicts a
// proven-dead outcome.
func checkDeadEdges(t *testing.T, label string, rp *Report, traces []trace.Trace) {
	t.Helper()
	if len(rp.DeadEdges) == 0 {
		return
	}
	dead := map[[2]uint32][2]bool{}
	for _, d := range rp.DeadEdges {
		k := [2]uint32{d.Func, d.PC}
		e := dead[k]
		if d.CondTrue {
			e[0] = true
		} else {
			e[1] = true
		}
		dead[k] = e
	}
	for _, tr := range traces {
		for _, ev := range tr.Events {
			if ev.Kind != trace.HookCond {
				continue
			}
			e, ok := dead[[2]uint32{ev.Func, uint32(ev.PC)}]
			if !ok {
				continue
			}
			outcome := ev.Operand != 0
			if (outcome && e[0]) || (!outcome && e[1]) {
				t.Errorf("%s: dead edge (func %d, pc %d, cond %v) observed dynamically",
					label, ev.Func, ev.PC, outcome)
			}
		}
	}
}

// soundnessSpecs is the generated-corpus sweep: every class in both
// vulnerable and safe form, both dispatcher encodings, plus the structural
// variants that exercise the prover's edge cases.
func soundnessSpecs() map[string]contractgen.Spec {
	specs := map[string]contractgen.Spec{}
	for _, class := range contractgen.Classes {
		for _, vul := range []bool{true, false} {
			name := class.String()
			if vul {
				name += "/vul"
			} else {
				name += "/safe"
			}
			specs[name] = contractgen.Spec{Class: class, Vulnerable: vul, Seed: 11}
		}
	}
	specs["Rollback/blockskip"] = contractgen.Spec{
		Class: contractgen.ClassRollback, Vulnerable: true, Seed: 12,
		DispatcherStyle: contractgen.DispatchBlockSkip,
	}
	specs["BlockinfoDep/inaccessible"] = contractgen.Spec{
		Class: contractgen.ClassBlockinfoDep, Vulnerable: true, Seed: 13, Inaccessible: true,
	}
	specs["BlockinfoDep/branches"] = contractgen.Spec{
		Class: contractgen.ClassBlockinfoDep, Vulnerable: true, Seed: 14,
		Branches: []contractgen.BranchCheck{{Field: "amount", Value: 250_000}},
	}
	specs["FakeNotif/eosponserpays"] = contractgen.Spec{
		Class: contractgen.ClassFakeNotif, Vulnerable: true, Seed: 15, EosponserPays: true,
	}
	specs["Rollback/dbdependent"] = contractgen.Spec{
		Class: contractgen.ClassRollback, Vulnerable: true, Seed: 16, DBDependent: true,
	}
	return specs
}

// TestVerdictSoundnessGenerated cross-checks the static verdicts against a
// real dynamic campaign on the full generated corpus, in both directions.
func TestVerdictSoundnessGenerated(t *testing.T) {
	for name, spec := range soundnessSpecs() {
		spec := spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, err := contractgen.Generate(spec)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			rp := Analyze(c.Module, abiActions(c.ABI))
			dyn, traces := runDynamic(t, c, 160)
			checkSound(t, name, rp, dyn)
			checkDeadEdges(t, name, rp, traces)
			for _, class := range contractgen.Classes {
				t.Logf("%-14s %-15s %s", class, rp.Verdicts[class].Kind, rp.Verdicts[class].Reason)
			}
			t.Logf("complete=%v paths=%d deadEdges=%d", rp.Complete, rp.Paths, len(rp.DeadEdges))
		})
	}
}

// TestVerdictSoundnessWild repeats the cross-check on a wild population
// sample, and checks the static engine resolves a sizable share of it.
func TestVerdictSoundnessWild(t *testing.T) {
	wild, err := contractgen.GenerateWild(contractgen.DefaultWildOptions(12), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("GenerateWild: %v", err)
	}
	resolved := 0
	for _, w := range wild {
		w := w
		rp := Analyze(w.Contract.Module, abiActions(w.Contract.ABI))
		dyn, traces := runDynamic(t, w.Contract, 160)
		checkSound(t, w.Name.String(), rp, dyn)
		checkDeadEdges(t, w.Name.String(), rp, traces)
		if rp.AllNegative() || rp.AnyPositive() {
			resolved++
		}
		for _, class := range contractgen.Classes {
			t.Logf("%s: %-14s %-15s truth=%v dyn=%v", w.Name, class,
				rp.Verdicts[class].Kind, w.Truth[class], dyn[class])
		}
	}
	t.Logf("wild resolution: %d/%d", resolved, len(wild))
}

// scenarioClasses are the on-chain-data families decided by the dynamic
// multi-transaction scenario driver. The single-invocation abstract domain
// cannot replay those scripts, so on the canonical corpus — where every
// fixture carries db writes, sends, and a relay arm — Unknown is the
// correct verdict for them and the classes fall through to the driver. The
// engine still owes syntactic negatives when the intrinsics are absent
// module-wide (pinned below on the Trivial contract).
var scenarioClasses = map[contractgen.Class]bool{
	contractgen.ClassStateTamper:   true,
	contractgen.ClassOrderDep:      true,
	contractgen.ClassCrossContract: true,
}

// TestVerdictExpectations pins the proofs the engine must find on the
// canonical generated corpus: safe contracts prove their own class negative,
// vulnerable templates prove their class positive. Two exceptions: the
// single-class Rollback template, whose send_inline hides behind the
// tapos-derived lottery outcome (Listing 4) — no static proof can decide a
// chain-environment coin flip — and the scenario classes above; both fall
// through to dynamic analysis as Unknown.
func TestVerdictExpectations(t *testing.T) {
	for _, class := range contractgen.Classes {
		c, err := contractgen.Generate(contractgen.Spec{Class: class, Vulnerable: false, Seed: 21})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		rp := Analyze(c.Module, abiActions(c.ABI))
		if v := rp.Verdicts[class]; scenarioClasses[class] {
			if v.Kind != Unknown {
				t.Errorf("%s safe (scenario class): verdict %s (%s), want unknown", class, v.Kind, v.Reason)
			}
		} else if v.Kind != ProvenNegative {
			t.Errorf("%s safe: verdict %s (%s), want proven-negative", class, v.Kind, v.Reason)
		}

		c, err = contractgen.Generate(contractgen.Spec{Class: class, Vulnerable: true, Seed: 21})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		rp = Analyze(c.Module, abiActions(c.ABI))
		v := rp.Verdicts[class]
		if class == contractgen.ClassRollback || scenarioClasses[class] {
			if v.Kind != Unknown {
				t.Errorf("%s vulnerable (dynamic-only): verdict %s (%s), want unknown", class, v.Kind, v.Reason)
			}
			continue
		}
		if v.Kind != ProvenPositive {
			t.Errorf("%s vulnerable: verdict %s (%s), want proven-positive", class, v.Kind, v.Reason)
		} else if v.Witness == nil {
			t.Errorf("%s vulnerable: proven positive without witness", class)
		}
	}

	// The Trivial contract has no host intrinsics at all: the module-wide
	// syntactic scan must prove every scenario class negative.
	triv := contractgen.Trivial()
	rp := Analyze(triv.Module, abiActions(triv.ABI))
	for class := range scenarioClasses {
		if v := rp.Verdicts[class]; v.Kind != ProvenNegative {
			t.Errorf("Trivial %s: verdict %s (%s), want proven-negative", class, v.Kind, v.Reason)
		}
	}

	// A Rollback contract built via VulnSet swaps the tapos lottery for the
	// amount-parity substitute, which the known-bits domain decides: the
	// inline payout must be provable there.
	c, err := contractgen.Generate(contractgen.Spec{
		Class:   contractgen.ClassRollback,
		VulnSet: map[contractgen.Class]bool{contractgen.ClassRollback: true},
		Seed:    21,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rp = Analyze(c.Module, abiActions(c.ABI))
	if v := rp.Verdicts[contractgen.ClassRollback]; v.Kind != ProvenPositive {
		t.Errorf("Rollback vulnset: verdict %s (%s), want proven-positive", v.Kind, v.Reason)
	} else if v.Witness == nil {
		t.Error("Rollback vulnset: proven positive without witness")
	}
}

// TestInaccessibleProvenNegative: a contradictory guard around the
// vulnerable template must yield a negative proof and dead edges.
func TestInaccessibleProvenNegative(t *testing.T) {
	c, err := contractgen.Generate(contractgen.Spec{
		Class: contractgen.ClassBlockinfoDep, Vulnerable: true, Seed: 31, Inaccessible: true,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rp := Analyze(c.Module, abiActions(c.ABI))
	if v := rp.Verdicts[contractgen.ClassBlockinfoDep]; v.Kind != ProvenNegative {
		t.Errorf("inaccessible blockinfo: verdict %s (%s), want proven-negative", v.Kind, v.Reason)
	}
	if !rp.Complete {
		t.Error("inaccessible blockinfo: universal cover incomplete")
	}
	if len(rp.DeadEdges) == 0 {
		t.Error("inaccessible blockinfo: no dead edges proven")
	}
}

// TestAnalyzeDeterministic: byte-identical reports across repeated runs.
func TestAnalyzeDeterministic(t *testing.T) {
	c, err := contractgen.Generate(contractgen.Spec{
		Class: contractgen.ClassMissAuth, Vulnerable: true, Seed: 41,
		Branches: []contractgen.BranchCheck{{Field: "to", Value: uint64(eos.MustName("bob"))}},
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var prev []byte
	for i := 0; i < 3; i++ {
		rp := Analyze(c.Module, abiActions(c.ABI))
		b, err := json.Marshal(rp)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if prev != nil && string(b) != string(prev) {
			t.Fatalf("run %d: report differs:\n%s\nvs\n%s", i, b, prev)
		}
		prev = b
	}
}
