package absint

import (
	"sort"

	"repro/internal/chain"
	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/wasm"
	"repro/internal/wasm/exec"
)

// VerdictKind is the three-valued outcome of a per-class static proof.
type VerdictKind uint8

// Verdict kinds.
const (
	// Unknown means neither proof succeeded: dynamic analysis proceeds
	// exactly as without the engine.
	Unknown VerdictKind = iota
	// ProvenNegative: the class's dynamic oracle cannot fire on any
	// execution the fuzzing harness can produce against this module.
	ProvenNegative
	// ProvenPositive: a replayable witness path makes the oracle fire, with
	// assumptions broad enough that random drawing satisfies them quickly.
	ProvenPositive
)

func (k VerdictKind) String() string {
	switch k {
	case ProvenNegative:
		return "proven-negative"
	case ProvenPositive:
		return "proven-positive"
	default:
		return "unknown"
	}
}

// Witness is the replayable evidence behind a ProvenPositive verdict: the
// harness scenario to run, the input constraints the path assumed (each
// retaining ≥ 1/16 of its field's draw space), and the branch trail.
type Witness struct {
	Scenario    string   `json:"scenario"`
	Action      string   `json:"action,omitempty"`
	Assumptions []string `json:"assumptions,omitempty"`
	Trail       []Step   `json:"trail,omitempty"`
}

// Verdict is one class's outcome.
type Verdict struct {
	Kind    VerdictKind `json:"kind"`
	Reason  string      `json:"reason"`
	Witness *Witness    `json:"witness,omitempty"`
}

// DeadEdge is one proven-impossible conditional outcome: at the original
// (func, pc) br_if/if site, the condition never evaluates to CondTrue in
// any harness execution.
type DeadEdge struct {
	Func     uint32 `json:"func"`
	PC       uint32 `json:"pc"`
	CondTrue bool   `json:"condTrue"`
}

// Report is the full static result for one module.
type Report struct {
	Verdicts map[contractgen.Class]Verdict `json:"verdicts"`
	// DeadEdges lists conditional outcomes proven unreachable under the
	// universal cover; empty unless Complete.
	DeadEdges []DeadEdge `json:"deadEdges,omitempty"`
	// Complete reports that the universal cover enumerated every abstract
	// path (the precondition for dead-edge claims).
	Complete bool `json:"complete"`
	// Paths is the total number of abstract paths explored across covers.
	Paths int `json:"paths"`
}

// AllNegative reports whether every class is proven negative.
func (rp *Report) AllNegative() bool {
	for _, c := range contractgen.Classes {
		if rp.Verdicts[c].Kind != ProvenNegative {
			return false
		}
	}
	return true
}

// AnyPositive reports whether any class is proven positive.
func (rp *Report) AnyPositive() bool {
	for _, c := range contractgen.Classes {
		if rp.Verdicts[c].Kind == ProvenPositive {
			return true
		}
	}
	return false
}

// Positives returns the proven-positive classes in table order.
func (rp *Report) Positives() []contractgen.Class {
	var out []contractgen.Class
	for _, c := range contractgen.Classes {
		if rp.Verdicts[c].Kind == ProvenPositive {
			out = append(out, c)
		}
	}
	return out
}

func unknownReport(reason string) *Report {
	rp := &Report{Verdicts: map[contractgen.Class]Verdict{}}
	for _, c := range contractgen.Classes {
		rp.Verdicts[c] = Verdict{Kind: Unknown, Reason: reason}
	}
	return rp
}

// moduleCalledImports returns the host-import names the module can invoke
// at all: every OpCall immediate naming an import, plus any dispatch-table
// (elem segment) entry that installs an import directly — the only ways a
// wasm function space reaches a host function.
func moduleCalledImports(m *wasm.Module) map[string]bool {
	importName := map[uint32]string{}
	idx := uint32(0)
	for _, imp := range m.Imports {
		if imp.Kind == wasm.ExternalFunc {
			importName[idx] = imp.Name
			idx++
		}
	}
	called := map[string]bool{}
	for i := range m.Code {
		for _, in := range m.Code[i].Body {
			if in.Op == wasm.OpCall {
				if name, ok := importName[in.A]; ok {
					called[name] = true
				}
			}
		}
	}
	for _, el := range m.Elems {
		for _, fi := range el.Funcs {
			if name, ok := importName[fi]; ok {
				called[name] = true
			}
		}
	}
	return called
}

// applyScenarioSyntactic decides the on-chain-data scenario classes
// (StateTamper, OrderDep, CrossContract) by syntactic intrinsic absence.
// These families are judged by the multi-transaction scenario driver in
// internal/fuzz, which the single-invocation abstract domain cannot
// replay — and crucially, scenario replays enter through dispatcher arms
// the pinned covers never take (e.g. a relay arm gated on code !=
// receiver), so any reachability- or cover-based negative here would be
// unsound. A module-wide scan is not: with no db-write intrinsic anywhere,
// no replay can overwrite a row (StateTamper); with no persistent-state
// access and no sends, every transaction outcome is a pure function of its
// own inputs — each apply runs on a fresh instance — so permutation cannot
// diverge (OrderDep); with no inline send, the notification-context oracle
// has nothing to observe (CrossContract). Positive proofs stay Unknown and
// fall through to the scenario driver.
func applyScenarioSyntactic(m *wasm.Module, rp *Report) {
	called := moduleCalledImports(m)
	anyOf := func(names ...string) bool {
		for _, n := range names {
			if called[n] {
				return true
			}
		}
		return false
	}
	dbWrite := anyOf(chain.APIDBStore, chain.APIDBUpdate, chain.APIDBRemove)
	dbRead := anyOf(chain.APIDBFind, chain.APIDBGet, chain.APIDBLowerbound,
		chain.APIDBEnd, chain.APIDBNext, chain.APIDBPrevious)
	send := anyOf(chain.APISendInline, chain.APISendDeferred)
	if !dbWrite {
		rp.Verdicts[contractgen.ClassStateTamper] = Verdict{Kind: ProvenNegative,
			Reason: "no db-write intrinsic anywhere in the module"}
	}
	if !dbWrite && !dbRead && !send {
		rp.Verdicts[contractgen.ClassOrderDep] = Verdict{Kind: ProvenNegative,
			Reason: "no persistent-state or send intrinsic anywhere in the module"}
	}
	if !called[chain.APISendInline] {
		rp.Verdicts[contractgen.ClassCrossContract] = Verdict{Kind: ProvenNegative,
			Reason: "no inline-send intrinsic anywhere in the module"}
	}
}

// applyArgs are the abstract apply(receiver, code, action) arguments: the
// receiver is always the victim account; code and action are scenario
// fields.
func applyArgs() []Value {
	return []Value{exact(victimC), fieldVal(FieldCode), fieldVal(FieldAction)}
}

func goalEntered(f int64) func(*state) bool {
	return func(st *state) bool { return f >= 0 && int(f) < len(st.entered) && st.entered[f] }
}

// onlyNoIndirect reports whether no path performed a call_indirect.
func onlyNoIndirect(r *run) bool {
	for f := range r.agg.firstInds {
		if f != -1 {
			return false
		}
	}
	return true
}

// Analyze statically analyzes one original (un-instrumented) module against
// the harness model. actions lists the module's ABI action names; the
// transfer action is handled by the dedicated scenarios and skipped here.
// The function never panics on malformed-but-decodable modules: anything
// unsupported degrades to Unknown verdicts.
func Analyze(mod *wasm.Module, actions []eos.Name) *Report {
	rp := analyzeSingleInvocation(mod, actions)
	applyScenarioSyntactic(mod, rp)
	return rp
}

// analyzeSingleInvocation runs the abstract engine over the per-invocation
// scenario covers and decides the five trace-oracle classes.
func analyzeSingleInvocation(mod *wasm.Module, actions []eos.Name) *Report {
	e, err := newEngine(mod)
	if err != nil {
		return unknownReport("module shape unsupported: " + err.Error())
	}
	if e.apply < 0 {
		return unknownReport("no analyzable apply export")
	}
	rp := unknownReport("no proof found")

	cover := func(sc scenario, fStar int64) *run {
		r := e.newRun(sc, false, fStar, nil)
		if sc.universal && e.start >= 0 {
			r.execute(e.start, nil)
		}
		r.execute(e.apply, applyArgs())
		r.agg.complete = !r.incomplete
		rp.Paths += r.paths
		return r
	}
	witness := func(sc scenario, fStar int64, goal func(*state) bool) *state {
		r := e.newRun(sc, true, fStar, goal)
		r.execute(e.apply, applyArgs())
		rp.Paths += r.paths
		return r.found
	}
	witnessOf := func(sc scenario, action string, st *state) *Witness {
		w := &Witness{Scenario: sc.name, Action: action, Trail: st.trail}
		for _, a := range st.assum {
			w.Assumptions = append(w.Assumptions, a.String())
		}
		return w
	}

	// Deduplicated non-transfer ABI actions, in declaration order.
	var acts []eos.Name
	seen := map[eos.Name]bool{}
	for _, a := range actions {
		if uint64(a) == transferC || seen[a] {
			continue
		}
		seen[a] = true
		acts = append(acts, a)
	}

	covValid := cover(scenarioValid(), -1)
	covDF := cover(scenarioDirectFake(), -1)
	covFT := cover(scenarioFakeToken(), -1)

	// fStar is the dispatcher's responder: the unique first call_indirect
	// callee of every valid-transfer path. The dynamic oracle latches it
	// from iteration 0 (the schedule always leads with a valid transfer).
	fStar, fStarClean := int64(-1), false
	if covValid.agg.complete && len(covValid.agg.firstInds) == 1 {
		for f := range covValid.agg.firstInds {
			if f >= 0 {
				fStar, fStarClean = f, true
			}
		}
	}
	// noLatchEver: none of the latch-feeding scenarios ever performs a
	// call_indirect (or spawns nested traces that could), so the responder
	// is never identified and neither notification oracle can fire.
	noLatchEver := covValid.agg.complete && covDF.agg.complete && covFT.agg.complete &&
		onlyNoIndirect(covValid) && onlyNoIndirect(covDF) && onlyNoIndirect(covFT) &&
		!covValid.agg.anySend && !covDF.agg.anySend && !covFT.agg.anySend &&
		!covValid.agg.anyReqRecip && !covDF.agg.anyReqRecip && !covFT.agg.anyReqRecip

	covNotif := cover(scenarioNotif(), fStar)
	covUni := cover(scenarioUniversal(), -1)

	// --- Fake EOS ---
	if fStarClean {
		fakesClean := covDF.agg.complete && covFT.agg.complete &&
			!covDF.agg.anySend && !covFT.agg.anySend &&
			!covDF.agg.anyReqRecip && !covFT.agg.anyReqRecip &&
			!covDF.agg.entered[fStar] && !covFT.agg.entered[fStar]
		if fakesClean {
			rp.Verdicts[contractgen.ClassFakeEOS] = Verdict{Kind: ProvenNegative,
				Reason: "responder unreachable from direct-fake and fake-token notifications"}
		} else {
			for _, sc := range []scenario{scenarioDirectFake(), scenarioFakeToken()} {
				if st := witness(sc, fStar, goalEntered(fStar)); st != nil {
					rp.Verdicts[contractgen.ClassFakeEOS] = Verdict{Kind: ProvenPositive,
						Reason:  "responder reachable from a counterfeit notification",
						Witness: witnessOf(sc, "", st)}
					break
				}
			}
		}
	} else if noLatchEver {
		rp.Verdicts[contractgen.ClassFakeEOS] = Verdict{Kind: ProvenNegative,
			Reason: "no dispatcher latch: responder never identified"}
	}

	// --- Fake Notif ---
	if noLatchEver {
		rp.Verdicts[contractgen.ClassFakeNotif] = Verdict{Kind: ProvenNegative,
			Reason: "no dispatcher latch: responder never identified"}
	} else if fStarClean && covNotif.agg.complete && !covNotif.agg.anyReqRecip {
		if covNotif.agg.guardAllOK {
			rp.Verdicts[contractgen.ClassFakeNotif] = Verdict{Kind: ProvenNegative,
				Reason: "to-field guard comparison dominates every responder entry"}
		} else if !covNotif.agg.guardPossible && !covNotif.agg.anySend {
			if st := witness(scenarioNotif(), fStar, goalEntered(fStar)); st != nil {
				rp.Verdicts[contractgen.ClassFakeNotif] = Verdict{Kind: ProvenPositive,
					Reason:  "responder entered on a forwarded notification with no guard comparison",
					Witness: witnessOf(scenarioNotif(), "", st)}
			}
		}
	}

	// --- MissAuth ---
	covActs := make([]*run, len(acts))
	for i, a := range acts {
		covActs[i] = cover(scenarioDirectAction(uint64(a)), -1)
	}
	missNeg := true
	for _, r := range covActs {
		if !r.agg.complete || r.agg.anyEffectNoAuth || r.agg.anyReqRecip {
			missNeg = false
			break
		}
	}
	if missNeg {
		rp.Verdicts[contractgen.ClassMissAuth] = Verdict{Kind: ProvenNegative,
			Reason: "every state-changing intrinsic is dominated by a permission check"}
	} else {
		for i, a := range acts {
			if !covActs[i].agg.anyEffectNoAuth {
				continue
			}
			sc := scenarioDirectAction(uint64(a))
			if st := witness(sc, -1, func(st *state) bool { return st.hitEffectNoAuth }); st != nil {
				rp.Verdicts[contractgen.ClassMissAuth] = Verdict{Kind: ProvenPositive,
					Reason:  "state-changing intrinsic reachable with no prior permission check",
					Witness: witnessOf(sc, a.String(), st)}
				break
			}
		}
	}

	// --- BlockinfoDep / Rollback --- universal cover subsumes every victim
	// invocation (nested inline actions and forwarded notifications
	// included), so its event union is authoritative.
	concrete := func() []scenario {
		scs := []scenario{scenarioValid(), scenarioDirectFake(), scenarioFakeToken(), scenarioNotif()}
		for _, a := range acts {
			scs = append(scs, scenarioDirectAction(uint64(a)))
		}
		return scs
	}
	if covUni.agg.complete && !covUni.agg.anyTapos {
		rp.Verdicts[contractgen.ClassBlockinfoDep] = Verdict{Kind: ProvenNegative,
			Reason: "no tapos intrinsic reachable in any invocation"}
	} else {
		for _, sc := range concrete() {
			if st := witness(sc, -1, func(st *state) bool { return st.hitTapos }); st != nil {
				rp.Verdicts[contractgen.ClassBlockinfoDep] = Verdict{Kind: ProvenPositive,
					Reason:  "tapos intrinsic reachable",
					Witness: witnessOf(sc, "", st)}
				break
			}
		}
	}
	if covUni.agg.complete && !covUni.agg.anySendInline {
		rp.Verdicts[contractgen.ClassRollback] = Verdict{Kind: ProvenNegative,
			Reason: "no inline action send reachable in any invocation"}
	} else {
		for _, sc := range concrete() {
			if st := witness(sc, -1, func(st *state) bool { return st.hitSendInline }); st != nil {
				rp.Verdicts[contractgen.ClassRollback] = Verdict{Kind: ProvenPositive,
					Reason:  "inline action send reachable",
					Witness: witnessOf(sc, "", st)}
				break
			}
		}
	}

	// --- Dead edges --- only under a complete universal cover: an outcome
	// is dead iff no explored path (from apply or start) observed it.
	if covUni.agg.complete {
		rp.Complete = true
		for fi := e.nImp; fi < e.nFunc; fi++ {
			fv := e.ir.Func(uint32(fi))
			if !fv.OK() {
				continue
			}
			for pc := 0; pc < fv.Len(); pc++ {
				in := fv.Instr(pc)
				if in.Op != exec.IRBrIf && in.Op != exec.IRBrIfZ {
					continue
				}
				bits := covUni.agg.condSeen[uint64(fi)<<32|uint64(in.Src)]
				if bits&1 == 0 {
					rp.DeadEdges = append(rp.DeadEdges, DeadEdge{Func: uint32(fi), PC: in.Src, CondTrue: true})
				}
				if bits&2 == 0 {
					rp.DeadEdges = append(rp.DeadEdges, DeadEdge{Func: uint32(fi), PC: in.Src, CondTrue: false})
				}
			}
		}
		sort.Slice(rp.DeadEdges, func(i, j int) bool {
			a, b := rp.DeadEdges[i], rp.DeadEdges[j]
			if a.Func != b.Func {
				return a.Func < b.Func
			}
			if a.PC != b.PC {
				return a.PC < b.PC
			}
			return !a.CondTrue && b.CondTrue
		})
	}
	return rp
}
