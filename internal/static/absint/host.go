package absint

// host.go models the chain's host API (internal/chain/hostapi.go) over
// abstract values. Each intrinsic mirrors two things exactly:
//
//   - the oracle-relevant facts internal/scanner derives from its HookCall
//     events — permission, effect, blockinfo and require_recipient flags are
//     recorded at call time, before the call can trap, matching the
//     instrumentation order; and
//   - its chain semantics — require_auth passes iff the argument names the
//     transaction signer (always the payload `from`), read_action_data
//     binds the symbolic payload view, memory-writing intrinsics clobber it.
//
// Anything not provably safe forks a trapped terminal so that per-path
// (∀) facts also cover trap-prefix executions.

// hostCall dispatches one import call. idx is the function index (< nImp).
func (r *run) hostCall(name string, idx int, args []Value, st *state) []result {
	nres := r.e.nRes[idx]
	ret := func(s *state, vs ...Value) []result {
		out := make([]Value, nres)
		for i := range out {
			if i < len(vs) {
				out[i] = vs[i]
			} else {
				out[i] = unknown()
			}
		}
		return []result{{st: s, vals: out}}
	}
	// retMayTrap pairs the continuing path with a trapped terminal. In
	// witness mode (unless the goal already fired at the call itself) the
	// path ends here: continuing past a possible trap is not replayable.
	retMayTrap := func(vs ...Value) []result {
		tr := result{st: st.clone(), trapped: true}
		if r.witness && r.found == nil {
			return []result{tr}
		}
		return append([]result{tr}, ret(st, vs...)...)
	}
	arg := func(i int) Value {
		if i < len(args) {
			return r.resolve(st, args[i])
		}
		return unknown()
	}
	rawArg := func(i int) Value {
		if i < len(args) {
			return args[i]
		}
		return unknown()
	}

	// condFork splits on a host-checked condition: pass continues, fail
	// traps. Reuses the branch machinery so refinements and the witness
	// assumption budget apply.
	condFork := func(cond Value) []result {
		if t, ok := r.truth(st, cond); ok {
			if t {
				return ret(st)
			}
			return []result{{st: st, trapped: true}}
		}
		var out []result
		pass := st.clone()
		if r.branchRefine(pass, cond, true) {
			out = append(out, ret(pass)...)
		}
		fail := st.clone()
		if r.branchRefine(fail, cond, false) {
			out = append(out, result{st: fail, trapped: true})
		}
		return out
	}

	onEffect := func() {
		if !st.authSeen {
			st.hitEffectNoAuth = true
			r.agg.anyEffectNoAuth = true
		}
		r.checkGoal(st)
	}

	switch name {
	case "require_auth", "require_auth2":
		// Permission fact first: the HookCall event precedes the trap.
		st.authSeen = true
		p := pred{op: cmpEq, a: arg(0), b: fieldVal(FieldFrom)}
		return condFork(Value{kind: kBool, pred: &p})

	case "has_auth":
		st.authSeen = true
		p := pred{op: cmpEq, a: arg(0), b: fieldVal(FieldFrom)}
		return ret(st, Value{kind: kBool, pred: &p})

	case "require_recipient":
		st.reqRecip = true
		r.agg.anyReqRecip = true
		return ret(st)

	case "is_account":
		v := arg(0)
		for _, k := range []uint64{attackerC, victimC, agentC, fakeTokenC, tokenC} {
			if r.isDef(st, v, k) {
				return ret(st, exact(1))
			}
		}
		// The signer's account is created before every transaction.
		if res, ok := r.decidePred(st, pred{op: cmpEq, a: v, b: fieldVal(FieldFrom)}); ok && res {
			return ret(st, exact(1))
		}
		return ret(st, unknown())

	case "current_receiver":
		// The analyzed module only ever executes as the victim account.
		return ret(st, exact(victimC))

	case "eosio_assert":
		return condFork(rawArg(0))

	case "read_action_data":
		p := arg(0)
		if p.kind != kExact {
			st.clobberAll()
			return retMayTrap(Value{kind: kDataSize})
		}
		base := uint64(uint32(p.c))
		st.clobberWindow(base, 64) // payloads are well under 64 bytes
		l := arg(1)
		if l.kind == kDataSize || (l.kind == kExact && l.c >= payloadFieldBytes+1) {
			// Full copy: the fixed 32-byte field prefix is freshly written.
			st.payloadBase = base
			st.payloadOK = true
		} else {
			st.payloadOK = false
		}
		if base+64 > r.e.memMin {
			return retMayTrap(Value{kind: kDataSize})
		}
		return ret(st, Value{kind: kDataSize})

	case "action_data_size":
		return ret(st, Value{kind: kDataSize})

	case "send_inline":
		st.hitSendInline = true
		st.hitSend = true
		r.agg.anySendInline = true
		r.agg.anySend = true
		onEffect()
		return retMayTrap() // the packed action may fail to parse

	case "send_deferred":
		st.hitSend = true
		r.agg.anySend = true
		onEffect()
		return retMayTrap()

	case "tapos_block_num", "tapos_block_prefix":
		st.hitTapos = true
		r.agg.anyTapos = true
		r.checkGoal(st)
		return ret(st, unknown())

	case "current_time":
		return ret(st, unknown())

	case "db_store_i64":
		onEffect()
		return retMayTrap(unknown())

	case "db_update_i64", "db_remove_i64":
		onEffect()
		return retMayTrap()

	case "db_find_i64", "db_lowerbound_i64", "db_end_i64":
		return ret(st, unknown())

	case "db_get_i64":
		p, n := arg(1), arg(2)
		if p.kind == kExact && n.kind == kExact {
			st.clobberWindow(uint64(uint32(p.c)), n.c&0xffffffff)
		} else {
			st.clobberAll()
		}
		return retMayTrap(unknown())

	case "db_next_i64", "db_previous_i64":
		if p := arg(1); p.kind == kExact {
			st.clobberWindow(uint64(uint32(p.c)), 8)
		} else {
			st.clobberAll()
		}
		return retMayTrap(unknown())

	case "prints", "printi", "printn":
		return ret(st)

	case "prints_l":
		return retMayTrap()

	case "memcpy", "memset":
		d, n := arg(0), arg(2)
		if d.kind == kExact && n.kind == kExact {
			st.clobberWindow(uint64(uint32(d.c)), n.c&0xffffffff)
			return retMayTrap(d)
		}
		st.clobberAll()
		return retMayTrap(unknown())

	case "abort":
		return []result{{st: st, trapped: true}}
	}

	// Unknown import: assume the worst — arbitrary memory writes, any
	// results, possible trap.
	st.clobberAll()
	return retMayTrap()
}
