package absint

import (
	"math/bits"

	"repro/internal/wasm"
	"repro/internal/wasm/exec"
)

// evalCmpValues models one comparison: decided comparisons collapse to
// constants, undecided ones keep their predicate so a later branch can
// refine the operand's field domain.
func (r *run) evalCmpValues(st *state, op cmpOp, a, b Value, w32 bool) Value {
	a, b = r.resolve(st, a), r.resolve(st, b)
	p := pred{op: op, a: a, b: b, w32: w32}
	if res, ok := r.decidePred(st, p); ok {
		return boolOf(res)
	}
	// A boolean compared against 0/1 (the i32.eqz-on-a-compare idiom) keeps
	// its predicate, possibly negated.
	if op == cmpEq || op == cmpNe {
		if a.kind == kBool && b.kind == kExact && b.c <= 1 {
			return Value{kind: kBool, pred: a.pred, neg: a.neg != ((op == cmpEq) == (b.c == 0))}
		}
		if b.kind == kBool && a.kind == kExact && a.c <= 1 {
			return Value{kind: kBool, pred: b.pred, neg: b.neg != ((op == cmpEq) == (a.c == 0))}
		}
	}
	switch {
	case a.kind == kField || b.kind == kField:
		pc := p
		return Value{kind: kBool, pred: &pc}
	default:
		return unknown()
	}
}

func widthMask(w uint64) uint64 {
	if w >= 8 {
		return fullMask
	}
	return 1<<(8*w) - 1
}

// inlineOp interprets the fused single-opcode instructions of the decoded
// IR (the irI32*/irI64* family). Returns false for an operand underflow.
func (r *run) inlineOp(st *state, op exec.IROp, stk *[]Value) bool {
	s := *stk
	pop2 := func() (a, b Value, ok bool) {
		if len(s) < 2 {
			return Value{}, Value{}, false
		}
		a, b = s[len(s)-2], s[len(s)-1]
		s = s[:len(s)-2]
		return a, b, true
	}
	pop1 := func() (Value, bool) {
		if len(s) == 0 {
			return Value{}, false
		}
		v := s[len(s)-1]
		s = s[:len(s)-1]
		return v, true
	}
	push := func(v Value) { s = append(s, v) }
	defer func() { *stk = s }()

	bin := func(f func(x, y uint64) uint64) bool {
		a, b, ok := pop2()
		if !ok {
			return false
		}
		a, b = r.resolve(st, a), r.resolve(st, b)
		if a.kind == kExact && b.kind == kExact {
			push(exact(f(a.c, b.c)))
		} else {
			push(unknown())
		}
		return true
	}
	cmp := func(op cmpOp, w32 bool) bool {
		a, b, ok := pop2()
		if !ok {
			return false
		}
		push(r.evalCmpValues(st, op, a, b, w32))
		return true
	}
	u32 := func(f func(x, y uint32) uint32) func(x, y uint64) uint64 {
		return func(x, y uint64) uint64 { return uint64(f(uint32(x), uint32(y))) }
	}

	switch op {
	case exec.IRI32Add:
		return bin(u32(func(x, y uint32) uint32 { return x + y }))
	case exec.IRI32Sub:
		return bin(u32(func(x, y uint32) uint32 { return x - y }))
	case exec.IRI32Mul:
		return bin(u32(func(x, y uint32) uint32 { return x * y }))
	case exec.IRI32And:
		return bin(u32(func(x, y uint32) uint32 { return x & y }))
	case exec.IRI32Or:
		return bin(u32(func(x, y uint32) uint32 { return x | y }))
	case exec.IRI32Xor:
		return bin(u32(func(x, y uint32) uint32 { return x ^ y }))
	case exec.IRI32Shl:
		return bin(u32(func(x, y uint32) uint32 { return x << (y & 31) }))
	case exec.IRI32ShrS:
		return bin(u32(func(x, y uint32) uint32 { return uint32(int32(x) >> (y & 31)) }))
	case exec.IRI32ShrU:
		return bin(u32(func(x, y uint32) uint32 { return x >> (y & 31) }))

	case exec.IRI64Add:
		return bin(func(x, y uint64) uint64 { return x + y })
	case exec.IRI64Sub:
		return bin(func(x, y uint64) uint64 { return x - y })
	case exec.IRI64Mul:
		return bin(func(x, y uint64) uint64 { return x * y })
	case exec.IRI64And:
		// (field & mask) & const composes, keeping bit-level refinement
		// (the amount-parity payout guards depend on it).
		a, b, ok := pop2()
		if !ok {
			return false
		}
		a, b = r.resolve(st, a), r.resolve(st, b)
		switch {
		case a.kind == kExact && b.kind == kExact:
			push(exact(a.c & b.c))
		case a.kind == kField && b.kind == kExact:
			push(Value{kind: kField, field: a.field, mask: a.mask & b.c})
		case b.kind == kField && a.kind == kExact:
			push(Value{kind: kField, field: b.field, mask: b.mask & a.c})
		default:
			push(unknown())
		}
		return true
	case exec.IRI64Or:
		return bin(func(x, y uint64) uint64 { return x | y })
	case exec.IRI64Xor:
		return bin(func(x, y uint64) uint64 { return x ^ y })
	case exec.IRI64Shl:
		return bin(func(x, y uint64) uint64 { return x << (y & 63) })
	case exec.IRI64ShrS:
		return bin(func(x, y uint64) uint64 { return uint64(int64(x) >> (y & 63)) })
	case exec.IRI64ShrU:
		return bin(func(x, y uint64) uint64 { return x >> (y & 63) })

	case exec.IRI32Eq:
		return cmp(cmpEq, true)
	case exec.IRI32Ne:
		return cmp(cmpNe, true)
	case exec.IRI32LtS:
		return cmp(cmpLtS, true)
	case exec.IRI32LtU:
		return cmp(cmpLtU, true)
	case exec.IRI32GtS:
		return cmp(cmpGtS, true)
	case exec.IRI32GtU:
		return cmp(cmpGtU, true)
	case exec.IRI32Eqz:
		v, ok := pop1()
		if !ok {
			return false
		}
		push(r.evalCmpValues(st, cmpEq, v, exact(0), true))
		return true

	case exec.IRI64Eq, exec.IRI64Ne:
		a, b, ok := pop2()
		if !ok {
			return false
		}
		// i64.eq / i64.ne are the instrumented comparison sites the Fake
		// Notification guard oracle watches: model the HookLogCmp event.
		r.cmpEvent(st, a, b)
		if op == exec.IRI64Eq {
			push(r.evalCmpValues(st, cmpEq, a, b, false))
		} else {
			push(r.evalCmpValues(st, cmpNe, a, b, false))
		}
		return true
	case exec.IRI64LtS:
		return cmp(cmpLtS, false)
	case exec.IRI64LtU:
		return cmp(cmpLtU, false)
	case exec.IRI64GtS:
		return cmp(cmpGtS, false)
	case exec.IRI64GtU:
		return cmp(cmpGtU, false)
	case exec.IRI64Eqz:
		v, ok := pop1()
		if !ok {
			return false
		}
		push(r.evalCmpValues(st, cmpEq, v, exact(0), false))
		return true
	}
	return false
}

// numeric interprets the non-inline opcodes dispatched through irNumeric.
// ok=false aborts the path (unsupported opcode, e.g. floats); trapNow ends
// it trapped; mayTrap forks a trapped terminal alongside the continuation.
func (r *run) numeric(st *state, op wasm.Opcode, stk *[]Value) (ok, mayTrap, trapNow bool) {
	s := *stk
	defer func() { *stk = s }()

	cmp2 := func(c cmpOp, w32 bool) (bool, bool, bool) {
		if len(s) < 2 {
			return false, false, false
		}
		a, b := s[len(s)-2], s[len(s)-1]
		s = s[:len(s)-2]
		s = append(s, r.evalCmpValues(st, c, a, b, w32))
		return true, false, false
	}
	div2 := func(f func(x, y uint64) (uint64, bool)) (bool, bool, bool) {
		if len(s) < 2 {
			return false, false, false
		}
		a, b := r.resolve(st, s[len(s)-2]), r.resolve(st, s[len(s)-1])
		s = s[:len(s)-2]
		if b.kind == kExact && b.c == 0 {
			return true, false, true // definite division by zero
		}
		if a.kind == kExact && b.kind == kExact {
			if v, trap := f(a.c, b.c); !trap {
				s = append(s, exact(v))
				return true, false, false
			}
			return true, false, true
		}
		s = append(s, unknown())
		return true, true, false // divisor (or overflow) not provably safe
	}
	un := func(f func(x uint64) uint64) (bool, bool, bool) {
		if len(s) == 0 {
			return false, false, false
		}
		v := r.resolve(st, s[len(s)-1])
		if v.kind == kExact {
			s[len(s)-1] = exact(f(v.c))
		} else {
			s[len(s)-1] = unknown()
		}
		return true, false, false
	}
	bin := func(f func(x, y uint64) uint64) (bool, bool, bool) {
		if len(s) < 2 {
			return false, false, false
		}
		a, b := r.resolve(st, s[len(s)-2]), r.resolve(st, s[len(s)-1])
		s = s[:len(s)-2]
		if a.kind == kExact && b.kind == kExact {
			s = append(s, exact(f(a.c, b.c)))
		} else {
			s = append(s, unknown())
		}
		return true, false, false
	}

	switch op {
	case wasm.OpI32GeS:
		return cmp2(cmpGeS, true)
	case wasm.OpI32GeU:
		return cmp2(cmpGeU, true)
	case wasm.OpI32LeS:
		return cmp2(cmpLeS, true)
	case wasm.OpI32LeU:
		return cmp2(cmpLeU, true)
	case wasm.OpI64GeS:
		return cmp2(cmpGeS, false)
	case wasm.OpI64GeU:
		return cmp2(cmpGeU, false)
	case wasm.OpI64LeS:
		return cmp2(cmpLeS, false)
	case wasm.OpI64LeU:
		return cmp2(cmpLeU, false)

	case wasm.OpI32DivU:
		return div2(func(x, y uint64) (uint64, bool) { return uint64(uint32(x) / uint32(y)), false })
	case wasm.OpI32RemU:
		return div2(func(x, y uint64) (uint64, bool) { return uint64(uint32(x) % uint32(y)), false })
	case wasm.OpI32DivS:
		return div2(func(x, y uint64) (uint64, bool) {
			a, b := int32(uint32(x)), int32(uint32(y))
			if a == -1<<31 && b == -1 {
				return 0, true
			}
			return uint64(uint32(a / b)), false
		})
	case wasm.OpI32RemS:
		return div2(func(x, y uint64) (uint64, bool) {
			return uint64(uint32(int32(uint32(x)) % int32(uint32(y)))), false
		})
	case wasm.OpI64DivU:
		return div2(func(x, y uint64) (uint64, bool) { return x / y, false })
	case wasm.OpI64RemU:
		return div2(func(x, y uint64) (uint64, bool) { return x % y, false })
	case wasm.OpI64DivS:
		return div2(func(x, y uint64) (uint64, bool) {
			a, b := int64(x), int64(y)
			if a == -1<<63 && b == -1 {
				return 0, true
			}
			return uint64(a / b), false
		})
	case wasm.OpI64RemS:
		return div2(func(x, y uint64) (uint64, bool) { return uint64(int64(x) % int64(y)), false })

	case wasm.OpI32WrapI64:
		return un(func(x uint64) uint64 { return uint64(uint32(x)) })
	case wasm.OpI64ExtendI32U:
		return un(func(x uint64) uint64 { return uint64(uint32(x)) })
	case wasm.OpI64ExtendI32S:
		return un(func(x uint64) uint64 { return uint64(int64(int32(uint32(x)))) })

	case wasm.OpI32Clz:
		return un(func(x uint64) uint64 { return uint64(bits.LeadingZeros32(uint32(x))) })
	case wasm.OpI32Ctz:
		return un(func(x uint64) uint64 { return uint64(bits.TrailingZeros32(uint32(x))) })
	case wasm.OpI32Popcnt:
		return un(func(x uint64) uint64 { return uint64(bits.OnesCount32(uint32(x))) })
	case wasm.OpI64Clz:
		return un(func(x uint64) uint64 { return uint64(bits.LeadingZeros64(x)) })
	case wasm.OpI64Ctz:
		return un(func(x uint64) uint64 { return uint64(bits.TrailingZeros64(x)) })
	case wasm.OpI64Popcnt:
		return un(func(x uint64) uint64 { return uint64(bits.OnesCount64(x)) })

	case wasm.OpI32Rotl:
		return bin(func(x, y uint64) uint64 { return uint64(bits.RotateLeft32(uint32(x), int(uint32(y)&31))) })
	case wasm.OpI32Rotr:
		return bin(func(x, y uint64) uint64 { return uint64(bits.RotateLeft32(uint32(x), -int(uint32(y)&31))) })
	case wasm.OpI64Rotl:
		return bin(func(x, y uint64) uint64 { return bits.RotateLeft64(x, int(y&63)) })
	case wasm.OpI64Rotr:
		return bin(func(x, y uint64) uint64 { return bits.RotateLeft64(x, -int(y&63)) })
	}
	return false, false, false
}
