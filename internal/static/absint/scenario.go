package absint

import (
	"repro/internal/eos"
)

// A scenario models one payload shape of the fuzzing harness
// (internal/fuzz buildSchedule) as pins and draw distributions over the
// abstract input fields. Verdict proofs quantify over exactly the
// executions the harness can produce, so the pins here must match
// fuzz.effectiveParams and the well-known campaign accounts byte for byte;
// absint_test.go cross-checks them dynamically.
type scenario struct {
	name string
	// universal marks the "any apply invocation" scenario: code/action and
	// every payload field unconstrained. It over-approximates all other
	// scenarios including nested notifications (inline payouts, deferred
	// actions, require_recipient forwards), because receiver is the only
	// thing a victim trace pins.
	universal bool
	fields    [numFields]fieldSpec
}

// fieldSpec describes one abstract input field within a scenario.
type fieldSpec struct {
	pinned bool
	pin    uint64
	// cover is the sound value domain for cover mode (everything the
	// harness — including solver-fed seeds — may produce).
	cover fieldDom
	// witnessPin, when set, treats the field as the given constant in
	// witness mode only: the random draw produces it with near certainty
	// (e.g. the symbol field, always EOS in seeds) but cover mode must not
	// rely on it because feedback mutation can perturb it.
	witnessPin    bool
	witnessPinVal uint64
	// space is the random draw distribution, bounding witness assumptions.
	space drawSpace
}

// Well-known campaign constants, mirrored from internal/fuzz and
// internal/eos.
var (
	attackerC  = uint64(eos.MustName("attacker"))
	victimC    = uint64(eos.MustName("victim"))
	agentC     = uint64(eos.MustName("fake.notif"))
	fakeTokenC = uint64(eos.MustName("fake.token"))
	tokenC     = uint64(eos.TokenContract)
	transferC  = uint64(eos.ActionTransfer)
	symbolC    = uint64(eos.EOSSymbol)
)

// Draw spaces of the harness's random parameters (fuzz.randomParams):
// names are full-u64 one third of the time, amounts mostly land in
// [0, 2e6), the symbol is always EOS.
var (
	nameSpace      = drawSpace{lo: 0, hi: fullMask}
	amountSpace    = drawSpace{lo: 0, hi: 1_999_999}
	amountPosSpace = drawSpace{lo: 1, hi: 1_999_999} // after clampAmount
)

func pinnedField(v uint64) fieldSpec {
	d := topDom()
	d.lo, d.hi = v, v
	return fieldSpec{pinned: true, pin: v, cover: d, space: drawSpace{lo: v, hi: v}}
}

func freeField(space drawSpace, cover fieldDom) fieldSpec {
	return fieldSpec{cover: cover, space: space}
}

// symbolField: cover-free (solver feedback may perturb it), witness-pinned
// (every seed draws EOS).
func symbolField() fieldSpec {
	return fieldSpec{cover: topDom(), witnessPin: true, witnessPinVal: symbolC,
		space: drawSpace{lo: symbolC, hi: symbolC}}
}

func clampedAmountField() fieldSpec {
	d := topDom()
	d.lo, d.hi = 1, 1_000_000_000 // clampAmount bounds
	return freeField(amountPosSpace, d)
}

// scenarioValid is the genuine eosio.token transfer attacker -> victim:
// the victim trace runs apply(victim, eosio.token, transfer) with pinned
// from/to/symbol and a clamped positive amount.
func scenarioValid() scenario {
	s := scenario{name: "valid"}
	s.fields[FieldCode] = pinnedField(tokenC)
	s.fields[FieldAction] = pinnedField(transferC)
	s.fields[FieldFrom] = pinnedField(attackerC)
	s.fields[FieldTo] = pinnedField(victimC)
	s.fields[FieldAmount] = clampedAmountField()
	s.fields[FieldSymbol] = pinnedField(symbolC)
	return s
}

// scenarioDirectFake invokes the transfer handler directly on the victim:
// code == victim, everything else seed-controlled.
func scenarioDirectFake() scenario {
	s := scenario{name: "directfake"}
	s.fields[FieldCode] = pinnedField(victimC)
	s.fields[FieldAction] = pinnedField(transferC)
	s.fields[FieldFrom] = freeField(nameSpace, topDom())
	s.fields[FieldTo] = freeField(nameSpace, topDom())
	s.fields[FieldAmount] = freeField(amountSpace, topDom())
	s.fields[FieldSymbol] = symbolField()
	return s
}

// scenarioFakeToken is the counterfeit-EOS shape: a real transfer on the
// fake.token contract, notifying the victim with code == fake.token and
// the same pins as a valid transfer.
func scenarioFakeToken() scenario {
	s := scenario{name: "faketoken"}
	s.fields[FieldCode] = pinnedField(fakeTokenC)
	s.fields[FieldAction] = pinnedField(transferC)
	s.fields[FieldFrom] = pinnedField(attackerC)
	s.fields[FieldTo] = pinnedField(victimC)
	s.fields[FieldAmount] = clampedAmountField()
	s.fields[FieldSymbol] = pinnedField(symbolC)
	return s
}

// scenarioNotif is the forwarded-notification shape: a genuine transfer
// attacker -> fake.notif whose agent forwards the notification, so the
// victim sees code == eosio.token with to == fake.notif.
func scenarioNotif() scenario {
	s := scenario{name: "forwardednotif"}
	s.fields[FieldCode] = pinnedField(tokenC)
	s.fields[FieldAction] = pinnedField(transferC)
	s.fields[FieldFrom] = pinnedField(attackerC)
	s.fields[FieldTo] = pinnedField(agentC)
	s.fields[FieldAmount] = clampedAmountField()
	s.fields[FieldSymbol] = pinnedField(symbolC)
	return s
}

// scenarioDirectAction invokes one non-transfer ABI action on the victim
// with a fully seed-controlled payload (the DBG dependency dance replays
// the same shapes, so it is covered too).
func scenarioDirectAction(action uint64) scenario {
	s := scenario{name: "direct"}
	s.fields[FieldCode] = pinnedField(victimC)
	s.fields[FieldAction] = pinnedField(action)
	s.fields[FieldFrom] = freeField(nameSpace, topDom())
	s.fields[FieldTo] = freeField(nameSpace, topDom())
	s.fields[FieldAmount] = freeField(amountSpace, topDom())
	s.fields[FieldSymbol] = symbolField()
	return s
}

// scenarioUniversal over-approximates every victim trace the harness can
// ever produce, nested ones included: only the receiver is pinned.
func scenarioUniversal() scenario {
	s := scenario{name: "universal", universal: true}
	for f := FieldID(1); f < numFields; f++ {
		s.fields[f] = freeField(nameSpace, topDom())
	}
	return s
}
