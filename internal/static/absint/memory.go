package absint

import (
	"repro/internal/wasm"
	"repro/internal/wasm/exec"
)

// The linear-memory model is a per-path overlay of exact-width stores plus a
// symbolic view of the action-payload buffer read_action_data filled. Stores
// in the overlay are kept disjoint (a write deletes whatever it overlaps), so
// an exact key hit is authoritative. Everything outside the overlay is
// Unknown: the contract instance's memory persists across the campaign's
// transactions, so even never-stored addresses hold arbitrary bytes.

// payloadFieldBytes covers the fixed from/to/amount/symbol prefix of the
// transfer ABI layout (8 bytes each); the memo tail past it is deliberately
// unmodeled because a shorter re-read leaves stale bytes there.
const payloadFieldBytes = 32

func rangesOverlap(a, alen, b, blen uint64) bool {
	return a < b+blen && b < a+alen
}

// zeroExtLoad reports whether op reproduces stored bytes without sign
// extension, i.e. returns exactly the normalized value the overlay keeps.
func zeroExtLoad(op wasm.Opcode) bool {
	switch op {
	case wasm.OpI32Load, wasm.OpI64Load, wasm.OpF32Load, wasm.OpF64Load,
		wasm.OpI32Load8U, wasm.OpI32Load16U,
		wasm.OpI64Load8U, wasm.OpI64Load16U, wasm.OpI64Load32U:
		return true
	}
	return false
}

// load models one linear-memory read; the second result is may-trap.
func (r *run) load(st *state, addr Value, in exec.IRInstr) (Value, bool) {
	av := r.resolve(st, addr)
	if av.kind != kExact {
		return unknown(), true
	}
	ea := uint64(uint32(av.c)) + uint64(in.B)
	w := uint64(in.A)
	mayTrap := ea+w > r.e.memMin
	op := wasm.Opcode(in.X)
	if v, ok := st.mem[memKey{addr: ea, width: uint8(w)}]; ok && zeroExtLoad(op) {
		return v, mayTrap
	}
	for k := range st.mem {
		if rangesOverlap(k.addr, uint64(k.width), ea, w) {
			return unknown(), mayTrap
		}
	}
	if st.payloadOK && op == wasm.OpI64Load && w == 8 {
		switch ea {
		case st.payloadBase:
			return fieldVal(FieldFrom), mayTrap
		case st.payloadBase + 8:
			return fieldVal(FieldTo), mayTrap
		case st.payloadBase + 16:
			return fieldVal(FieldAmount), mayTrap
		case st.payloadBase + 24:
			return fieldVal(FieldSymbol), mayTrap
		}
	}
	return unknown(), mayTrap
}

// store models one linear-memory write; the result is may-trap.
func (r *run) store(st *state, addr, val Value, in exec.IRInstr) bool {
	av := r.resolve(st, addr)
	if av.kind != kExact {
		// Unknown destination: anything may have been overwritten.
		st.clobberAll()
		return true
	}
	ea := uint64(uint32(av.c)) + uint64(in.B)
	w := uint64(in.A)
	mayTrap := ea+w > r.e.memMin
	v := r.resolve(st, val)
	wm := widthMask(w)
	switch v.kind {
	case kExact:
		v = exact(v.c & wm) // stored bytes are the low w bytes
	case kField:
		v = Value{kind: kField, field: v.field, mask: v.mask & wm}
	case kBool:
		// 0/1 survives any truncation
	default:
		v = unknown()
	}
	key := memKey{addr: ea, width: uint8(w)}
	for k := range st.mem {
		if k != key && rangesOverlap(k.addr, uint64(k.width), ea, w) {
			delete(st.mem, k)
		}
	}
	st.mem[key] = v
	if st.payloadOK && rangesOverlap(ea, w, st.payloadBase, payloadFieldBytes) {
		// A field-aligned full-width overwrite is shadowed by the overlay
		// entry; anything else degrades the symbolic payload view.
		if w != 8 || (ea-st.payloadBase)%8 != 0 {
			st.payloadOK = false
		}
	}
	return mayTrap
}

// clobberWindow forgets everything known about [base, base+n): overlay
// entries are dropped and an overlapping payload view is degraded.
func (st *state) clobberWindow(base, n uint64) {
	for k := range st.mem {
		if rangesOverlap(k.addr, uint64(k.width), base, n) {
			delete(st.mem, k)
		}
	}
	if st.payloadOK && rangesOverlap(base, n, st.payloadBase, payloadFieldBytes) {
		st.payloadOK = false
	}
}

// clobberAll forgets the entire memory model (write to unknown address).
func (st *state) clobberAll() {
	st.mem = map[memKey]Value{}
	st.payloadOK = false
}
