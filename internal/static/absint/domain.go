// Package absint is the abstract-interpretation verdict engine: a flow- and
// context-sensitive static analysis over the decoded IR (internal/wasm/exec)
// that upgrades the boolean candidate flags of internal/static to
// three-valued per-class verdicts. ProvenNegative means the dynamic oracle
// of internal/scanner cannot fire on any execution the fuzzing harness can
// produce; ProvenPositive means the harness will observe the class within a
// normal fuzzing budget; everything else is Unknown and falls through to
// dynamic analysis unchanged.
//
// The analysis never synthesizes findings and never suppresses dynamic
// work beyond what a proof licenses: campaign findings digests are
// byte-identical with the engine on and off (see internal/campaign).
package absint

import (
	"fmt"
)

// FieldID names one abstract input of the harness: a field of the transfer
// payload every generated and fuzzed action carries (internal/fuzz encodes
// the same from/to/quantity/memo layout for every payload kind).
type FieldID uint8

const (
	FieldNone FieldID = iota
	FieldCode         // the notifying contract (apply arg 1)
	FieldAction
	FieldFrom
	FieldTo
	FieldAmount
	FieldSymbol
	numFields
)

func (f FieldID) String() string {
	switch f {
	case FieldCode:
		return "code"
	case FieldAction:
		return "action"
	case FieldFrom:
		return "from"
	case FieldTo:
		return "to"
	case FieldAmount:
		return "amount"
	case FieldSymbol:
		return "symbol"
	default:
		return "none"
	}
}

// vKind classifies abstract values.
type vKind uint8

const (
	kUnknown  vKind = iota // anything: host results, unmodeled arithmetic
	kExact                 // a single concrete 64-bit value
	kField                 // (payload field & mask), evaluated under refinement
	kBool                  // 0/1 carrying the predicate that produced it
	kDataSize              // the action_data_size() result (opaque, but tagged
	// so read_action_data can recognize a full-payload copy)
)

// Value is one abstract operand. The zero Value is Unknown.
type Value struct {
	kind  vKind
	c     uint64  // kExact
	field FieldID // kField
	mask  uint64  // kField: value = field & mask (fullMask = plain copy)
	pred  *pred   // kBool: truth of this predicate
	neg   bool    // kBool: value is the negation of pred
}

const fullMask = ^uint64(0)

func unknown() Value       { return Value{} }
func exact(c uint64) Value { return Value{kind: kExact, c: c} }
func boolOf(b bool) Value  { return exact(b2u(b)) }
func fieldVal(f FieldID) Value {
	return Value{kind: kField, field: f, mask: fullMask}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// cmpOp enumerates the comparison forms predicates carry.
type cmpOp uint8

const (
	cmpEq cmpOp = iota
	cmpNe
	cmpLtS
	cmpLtU
	cmpGtS
	cmpGtU
	cmpLeS
	cmpLeU
	cmpGeS
	cmpGeU
)

func (op cmpOp) negate() cmpOp {
	switch op {
	case cmpEq:
		return cmpNe
	case cmpNe:
		return cmpEq
	case cmpLtS:
		return cmpGeS
	case cmpLtU:
		return cmpGeU
	case cmpGtS:
		return cmpLeS
	case cmpGtU:
		return cmpLeU
	case cmpLeS:
		return cmpGtS
	case cmpLeU:
		return cmpGtU
	case cmpGeS:
		return cmpLtS
	default: // cmpGeU
		return cmpLtU
	}
}

// pred is a comparison between two non-bool values. w32 marks a 32-bit
// compare (operands are already zero-extended uint32 images).
type pred struct {
	op   cmpOp
	a, b Value
	w32  bool
}

// evalCmp applies op to two concrete values.
func evalCmp(op cmpOp, a, b uint64, w32 bool) bool {
	if w32 {
		switch op {
		case cmpEq:
			return uint32(a) == uint32(b)
		case cmpNe:
			return uint32(a) != uint32(b)
		case cmpLtS:
			return int32(uint32(a)) < int32(uint32(b))
		case cmpLtU:
			return uint32(a) < uint32(b)
		case cmpGtS:
			return int32(uint32(a)) > int32(uint32(b))
		case cmpGtU:
			return uint32(a) > uint32(b)
		case cmpLeS:
			return int32(uint32(a)) <= int32(uint32(b))
		case cmpLeU:
			return uint32(a) <= uint32(b)
		case cmpGeS:
			return int32(uint32(a)) >= int32(uint32(b))
		default:
			return uint32(a) >= uint32(b)
		}
	}
	switch op {
	case cmpEq:
		return a == b
	case cmpNe:
		return a != b
	case cmpLtS:
		return int64(a) < int64(b)
	case cmpLtU:
		return a < b
	case cmpGtS:
		return int64(a) > int64(b)
	case cmpGtU:
		return a > b
	case cmpLeS:
		return int64(a) <= int64(b)
	case cmpLeU:
		return a <= b
	case cmpGeS:
		return int64(a) >= int64(b)
	default:
		return a >= b
	}
}

// fieldDom is the per-path refinement of one free payload field: an
// unsigned interval, known bits, and a small disequality set.
type fieldDom struct {
	lo, hi       uint64
	kmask, kbits uint64 // bits set in kmask are known equal to kbits
	ne           []uint64
}

func topDom() fieldDom { return fieldDom{lo: 0, hi: fullMask} }

func (d fieldDom) empty() bool {
	if d.lo > d.hi {
		return true
	}
	if d.lo == d.hi {
		v := d.lo
		if v&d.kmask != d.kbits&d.kmask {
			return true
		}
		for _, n := range d.ne {
			if n == v {
				return true
			}
		}
	}
	return false
}

// exactVal reports whether the domain pins a single value.
func (d fieldDom) exactVal() (uint64, bool) {
	if d.lo == d.hi && !d.empty() {
		return d.lo, true
	}
	return 0, false
}

// contains reports whether v may be a member (over-approximate: true unless
// provably excluded).
func (d fieldDom) contains(v uint64) bool {
	if v < d.lo || v > d.hi {
		return false
	}
	if v&d.kmask != d.kbits&d.kmask {
		return false
	}
	for _, n := range d.ne {
		if n == v {
			return false
		}
	}
	return true
}

func (d fieldDom) clone() fieldDom {
	d.ne = append([]uint64(nil), d.ne...)
	return d
}

// maskedDom returns the domain of (field & mask) as a coarse interval plus
// known bits restricted to the mask.
func (d fieldDom) maskedDom(mask uint64) fieldDom {
	if mask == fullMask {
		return d
	}
	md := fieldDom{lo: 0, hi: mask, kmask: d.kmask & mask, kbits: d.kbits & mask}
	if v, ok := d.exactVal(); ok {
		md.lo, md.hi = v&mask, v&mask
	}
	return md
}

// refineCmp narrows d so that (field&mask) op K holds (outcome true) and
// reports whether the refined domain is non-empty. Refinement is sound
// (never drops feasible values) and deliberately partial: shapes it cannot
// narrow are left unchanged.
func (d *fieldDom) refineCmp(op cmpOp, k uint64, mask uint64, w32 bool) bool {
	if mask == fullMask && !w32 {
		switch op {
		case cmpEq:
			if !d.contains(k) {
				return false
			}
			d.lo, d.hi = k, k
		case cmpNe:
			if v, ok := d.exactVal(); ok && v == k {
				return false
			}
			if len(d.ne) < 16 {
				d.ne = append(d.ne, k)
			}
			// Tighten interval edges touching k.
			for d.lo <= d.hi && !d.contains(d.lo) && d.lo < fullMask {
				d.lo++
			}
			for d.hi >= d.lo && !d.contains(d.hi) && d.hi > 0 {
				d.hi--
			}
		case cmpLtU:
			if k == 0 {
				return false
			}
			if d.hi > k-1 {
				d.hi = k - 1
			}
		case cmpLeU:
			if d.hi > k {
				d.hi = k
			}
		case cmpGtU:
			if k == fullMask {
				return false
			}
			if d.lo < k+1 {
				d.lo = k + 1
			}
		case cmpGeU:
			if d.lo < k {
				d.lo = k
			}
		case cmpLtS, cmpLeS, cmpGtS, cmpGeS:
			// Signed compare: only refine when the domain and the constant
			// sit in the non-negative half, where signed and unsigned agree.
			if int64(k) >= 0 && d.hi <= uint64(1)<<63-1 {
				var uop cmpOp
				switch op {
				case cmpLtS:
					uop = cmpLtU
				case cmpLeS:
					uop = cmpLeU
				case cmpGtS:
					uop = cmpGtU
				default:
					uop = cmpGeU
				}
				return d.refineCmp(uop, k, mask, false)
			}
		}
		return !d.empty()
	}
	// Masked or 32-bit view: refine known bits for single-bit masks under
	// eq/ne; everything else stays unrefined (sound).
	if popcount(mask) == 1 && !w32 {
		bit := mask
		switch op {
		case cmpEq:
			if k != 0 && k != bit {
				return false
			}
			d.kmask |= bit
			if k == bit {
				d.kbits |= bit
			} else {
				d.kbits &^= bit
			}
		case cmpNe:
			if k == 0 || k == bit {
				d.kmask |= bit
				if k == 0 {
					d.kbits |= bit
				} else {
					d.kbits &^= bit
				}
			}
		}
	}
	return !d.empty()
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// decideCmp attempts to decide (field&mask with domain d) op K. ok=false
// means undecided.
func decideCmp(d fieldDom, mask uint64, op cmpOp, k uint64, w32 bool) (res, ok bool) {
	md := d.maskedDom(mask)
	if v, got := md.exactVal(); got {
		return evalCmp(op, v, k, w32), true
	}
	if w32 {
		// Decide 32-bit compares only when the domain fits in uint32.
		if md.hi > uint64(^uint32(0)) {
			return false, false
		}
	}
	switch op {
	case cmpEq:
		if !md.contains(k) {
			return false, true
		}
	case cmpNe:
		if !md.contains(k) {
			return true, true
		}
	case cmpLtU:
		if md.hi < k {
			return true, true
		}
		if md.lo >= k {
			return false, true
		}
	case cmpLeU:
		if md.hi <= k {
			return true, true
		}
		if md.lo > k {
			return false, true
		}
	case cmpGtU:
		if md.lo > k {
			return true, true
		}
		if md.hi <= k {
			return false, true
		}
	case cmpGeU:
		if md.lo >= k {
			return true, true
		}
		if md.hi < k {
			return false, true
		}
	case cmpLtS, cmpLeS, cmpGtS, cmpGeS:
		// Signed: decide only in the shared non-negative half.
		if int64(k) >= 0 && md.hi <= uint64(1)<<63-1 {
			var uop cmpOp
			switch op {
			case cmpLtS:
				uop = cmpLtU
			case cmpLeS:
				uop = cmpLeU
			case cmpGtS:
				uop = cmpGtU
			default:
				uop = cmpGeU
			}
			return decideCmp(d, mask, uop, k, false)
		}
	}
	return false, false
}

// drawSpace describes the value distribution the fuzzing harness draws a
// free field from, used to bound what a witness path may assume: an
// assumption is admissible only while it keeps a sizable fraction of the
// draw space, so the dynamic fuzzer is guaranteed to produce a satisfying
// input within the first few iterations.
type drawSpace struct {
	lo, hi uint64
	// extraZero marks spaces that additionally contain 0 (empty memo).
	extraZero bool
}

func (s drawSpace) size() float64 {
	n := float64(s.hi-s.lo) + 1
	if s.extraZero {
		n++
	}
	return n
}

// fracAfter estimates |dom ∩ space| / |space| for the refined domain.
func (s drawSpace) fracAfter(d fieldDom) float64 {
	lo, hi := d.lo, d.hi
	if lo < s.lo {
		lo = s.lo
	}
	if hi > s.hi {
		hi = s.hi
	}
	var n float64
	if lo <= hi {
		n = float64(hi-lo) + 1
		n -= float64(len(d.ne)) // coarse; ne entries may be outside, still sound
		if n < 0 {
			n = 0
		}
	}
	if s.extraZero && d.contains(0) {
		n++
	}
	// Each known bit halves the admissible mass.
	for i := 0; i < 64; i++ {
		if d.kmask&(1<<uint(i)) != 0 {
			n /= 2
		}
	}
	return n / s.size()
}

// minAssumeFrac is the admissibility floor for witness assumptions: the
// assumed constraint set must retain at least 1/16 of the field's draw
// space, so a handful of random iterations satisfies it with near
// certainty (and the fixed-seed verdict gate verifies it concretely).
const minAssumeFrac = 1.0 / 16

// assumption is one recorded witness constraint, for reporting.
type assumption struct {
	field FieldID
	desc  string
}

func (a assumption) String() string { return fmt.Sprintf("%s %s", a.field, a.desc) }
