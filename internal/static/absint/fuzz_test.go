package absint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/fuzz"
	"repro/internal/wasm"
)

// FuzzAbsInt feeds arbitrary bytes through the module decoder into the
// abstract interpreter: any malformed-but-decodable module must produce a
// report (degrading to Unknown verdicts), never a panic. When the prover
// claims dead edges on a module the harness can also fuzz, the claim is
// checked against 64 random concrete runs of the reference interpreter —
// a proven-dead branch outcome observed dynamically is a soundness bug,
// exactly the property verdict triage skips rest on.
func FuzzAbsInt(f *testing.F) {
	for _, data := range absintCorpus(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		mod, err := wasm.Decode(data)
		if err != nil {
			return
		}
		if err := wasm.Validate(mod); err != nil {
			return
		}
		actions := []eos.Name{
			contractgen.ActionDeposit, contractgen.ActionSweep, contractgen.ActionReveal,
		}
		rp := Analyze(mod, actions) // must not panic
		if !rp.Complete || len(rp.DeadEdges) == 0 {
			return
		}
		// The prover committed to dead edges: cross-examine with random
		// concrete runs (feedback off = pure random draws) when the module
		// is harness-fuzzable at all.
		fz, err := fuzz.New(mod, contractgen.TransferFieldsABI(actions...), fuzz.Config{
			Iterations:      64,
			SolverConflicts: 1_000,
			DisableFeedback: true,
			Seed:            1,
			KeepTraces:      true,
		})
		if err != nil {
			return
		}
		res, err := fz.Run()
		if err != nil {
			return
		}
		checkDeadEdges(t, "fuzz", rp, res.Traces)
	})
}

// absintCorpus encodes one full module per generated class (vulnerable and
// safe, including an inaccessible-template sample) — realistic dispatcher,
// guard and responder structures the MVP grammar's corners would take the
// fuzzer long to reach.
func absintCorpus(tb testing.TB) map[string][]byte {
	tb.Helper()
	entries := map[string][]byte{}
	add := func(name string, spec contractgen.Spec) {
		c, err := contractgen.Generate(spec)
		if err != nil {
			tb.Fatalf("generate %s: %v", name, err)
		}
		data, err := wasm.Encode(c.Module)
		if err != nil {
			tb.Fatalf("encode %s: %v", name, err)
		}
		entries[name] = data
	}
	for i, class := range contractgen.Classes {
		slug := strings.ReplaceAll(strings.ToLower(class.String()), " ", "-")
		add("contractgen-"+slug, contractgen.Spec{Class: class, Vulnerable: true, Seed: int64(10 + i)})
		add("contractgen-"+slug+"-safe", contractgen.Spec{Class: class, Vulnerable: false, Seed: int64(10 + i)})
	}
	add("contractgen-inaccessible", contractgen.Spec{
		Class: contractgen.ClassBlockinfoDep, Vulnerable: true, Seed: 31, Inaccessible: true,
	})
	return entries
}

// TestFuzzAbsIntSeedCorpus keeps the checked-in corpus in sync with the
// generator. Regenerate with:
//
//	UPDATE_FUZZ_CORPUS=1 go test -run TestFuzzAbsIntSeedCorpus ./internal/static/absint/
func TestFuzzAbsIntSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzAbsInt")
	update := os.Getenv("UPDATE_FUZZ_CORPUS") != ""
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range absintCorpus(t) {
		path := filepath.Join(dir, name)
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if update {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus entry missing (regenerate with UPDATE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != want {
			t.Errorf("seed corpus entry %s is stale (regenerate with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
}
