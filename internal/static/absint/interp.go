package absint

import (
	"fmt"

	"repro/internal/wasm"
	"repro/internal/wasm/exec"
)

// Per-run exploration budgets. Generated and wild contracts stay orders of
// magnitude below these; hitting any of them marks the run incomplete,
// which soundly degrades every universally-quantified claim to Unknown.
const (
	maxPaths = 4096
	maxSteps = 1 << 20
	maxDepth = 64
)

// engine holds the per-module immutable context shared by every run.
type engine struct {
	mod     *wasm.Module
	ir      *exec.IRView
	nImp    int
	nFunc   int
	impName []string // import index -> host function name
	nParams []int    // func index -> parameter count
	nRes    []int    // func index -> result count
	table   []int64  // resolved element table (-1 = unset)
	tableOK bool
	memMin  uint64 // initial linear memory size in bytes
	apply   int64  // exported apply func index, -1 if unusable
	start   int64  // start func index, -1 if none
}

func newEngine(mod *wasm.Module) (*engine, error) {
	e := &engine{
		mod:   mod,
		ir:    exec.IRFor(mod),
		nImp:  mod.NumImportedFuncs(),
		nFunc: mod.NumFuncs(),
		apply: -1,
		start: -1,
	}
	e.impName = make([]string, e.nImp)
	for i := 0; i < e.nImp; i++ {
		imp, ok := mod.ImportedFunc(i)
		if !ok {
			return nil, fmt.Errorf("absint: import %d missing", i)
		}
		e.impName[i] = imp.Name
	}
	e.nParams = make([]int, e.nFunc)
	e.nRes = make([]int, e.nFunc)
	for i := 0; i < e.nFunc; i++ {
		ft, err := mod.FuncTypeAt(uint32(i))
		if err != nil {
			return nil, err
		}
		e.nParams[i] = len(ft.Params)
		e.nRes[i] = len(ft.Results)
	}
	e.resolveTable()
	e.resolveMemory()
	if idx, ok := mod.ExportedFunc("apply"); ok && int(idx) < e.nFunc {
		if ft, err := mod.FuncTypeAt(idx); err == nil &&
			len(ft.Params) == 3 && ft.Params[0] == wasm.I64 && ft.Params[1] == wasm.I64 && ft.Params[2] == wasm.I64 {
			e.apply = int64(idx)
		}
	}
	if mod.Start != nil && int(*mod.Start) < e.nFunc {
		e.start = int64(*mod.Start)
	}
	return e, nil
}

// resolveTable materializes table 0 from constant-offset element segments.
// Anything dynamic (non-const offsets, missing table) leaves tableOK false
// and every call_indirect unresolvable.
func (e *engine) resolveTable() {
	if len(e.mod.Tables) == 0 {
		e.tableOK = len(e.mod.Elems) == 0
		return
	}
	size := int(e.mod.Tables[0].Limits.Min)
	if size < 0 || size > 1<<16 {
		return
	}
	e.table = make([]int64, size)
	for i := range e.table {
		e.table[i] = -1
	}
	for _, seg := range e.mod.Elems {
		if seg.TableIndex != 0 || len(seg.Offset) != 1 || seg.Offset[0].Op != wasm.OpI32Const {
			return
		}
		base := int(int32(uint32(seg.Offset[0].Imm)))
		if base < 0 || base+len(seg.Funcs) > size {
			return
		}
		for i, fi := range seg.Funcs {
			if int(fi) >= e.nFunc {
				return
			}
			e.table[base+i] = int64(fi)
		}
	}
	e.tableOK = true
}

func (e *engine) resolveMemory() {
	if len(e.mod.Memories) > 0 {
		e.memMin = uint64(e.mod.Memories[0].Limits.Min) * uint64(exec.PageSize)
		return
	}
	for _, imp := range e.mod.Imports {
		if imp.Kind == wasm.ExternalMemory {
			e.memMin = uint64(imp.Memory.Limits.Min) * uint64(exec.PageSize)
			return
		}
	}
}

// initGlobals returns the per-path initial global values: immutable
// constant globals keep their value; everything mutable is Unknown, because
// the contract instance persists across the campaign's transactions and a
// previous action may have rewritten it.
func (e *engine) initGlobals() []Value {
	gs := make([]Value, len(e.mod.Globals))
	for i, g := range e.mod.Globals {
		if !g.Type.Mutable && len(g.Init) == 1 &&
			(g.Init[0].Op == wasm.OpI32Const || g.Init[0].Op == wasm.OpI64Const) {
			gs[i] = exact(g.Init[0].Imm)
		} else {
			gs[i] = unknown()
		}
	}
	return gs
}

// Step is one branch decision of a replayable witness path.
type Step struct {
	Func  uint32 `json:"func"`
	PC    uint32 `json:"pc"` // source pc (original body index)
	Taken bool   `json:"taken"`
}

// memKey addresses one exact-width store in the per-path memory overlay.
type memKey struct {
	addr  uint64
	width uint8
}

// state is one abstract execution path: field refinements, memory overlay,
// and the oracle-relevant facts accumulated so far.
type state struct {
	fields  [numFields]fieldDom
	globals []Value
	mem     map[memKey]Value

	payloadBase uint64
	payloadOK   bool

	authSeen bool
	entered  []bool
	firstInd int64 // first call_indirect callee on this path (-1 = none yet)

	hitTapos        bool
	hitSendInline   bool
	hitSend         bool
	hitEffectNoAuth bool
	guardDef        bool
	reqRecip        bool

	trail []Step
	assum []assumption
}

func (st *state) clone() *state {
	c := &state{}
	*c = *st
	for i := range c.fields {
		c.fields[i] = st.fields[i].clone()
	}
	c.globals = append([]Value(nil), st.globals...)
	c.mem = make(map[memKey]Value, len(st.mem))
	for k, v := range st.mem {
		c.mem[k] = v
	}
	c.entered = append([]bool(nil), st.entered...)
	c.trail = append([]Step(nil), st.trail...)
	c.assum = append([]assumption(nil), st.assum...)
	return c
}

// frac returns the fraction of the harness draw space the path's field
// refinements retain, the admissibility measure for witness assumptions.
func (r *run) frac(st *state) float64 {
	p := 1.0
	for f := FieldID(1); f < numFields; f++ {
		fs := &r.sc.fields[f]
		if fs.pinned || (r.witness && fs.witnessPin) {
			continue
		}
		p *= fs.space.fracAfter(st.fields[f])
	}
	return p
}

// coverAgg accumulates what a cover run proves about a scenario.
type coverAgg struct {
	complete        bool
	paths           int
	entered         []bool         // union over paths
	firstInds       map[int64]bool // per-path first indirect callee (-1 = none)
	anyTapos        bool
	anySendInline   bool
	anySend         bool
	anyEffectNoAuth bool
	anyReqRecip     bool
	guardPossible   bool
	guardAllOK      bool // ∀ paths: (entered fStar || sent) → definite guard cmp
	condSeen        map[uint64]uint8
}

// run is one traversal of one scenario: cover mode enumerates every path
// (complete-or-Unknown), witness mode follows only definite or admissibly
// assumable edges toward a goal.
type run struct {
	e       *engine
	sc      scenario
	witness bool
	goal    func(*state) bool
	fStar   int64 // latched eosponser candidate for guard aggregation (-1 none)

	steps      int
	paths      int
	incomplete bool
	found      *state
	agg        coverAgg
}

type result struct {
	st      *state
	trapped bool
	vals    []Value
}

func (e *engine) newRun(sc scenario, witness bool, fStar int64, goal func(*state) bool) *run {
	return &run{
		e: e, sc: sc, witness: witness, fStar: fStar, goal: goal,
		agg: coverAgg{
			entered:    make([]bool, e.nFunc),
			firstInds:  map[int64]bool{},
			guardAllOK: true,
			condSeen:   map[uint64]uint8{},
		},
	}
}

func (e *engine) initState(r *run) *state {
	st := &state{
		globals:  e.initGlobals(),
		mem:      map[memKey]Value{},
		entered:  make([]bool, e.nFunc),
		firstInd: -1,
	}
	for f := FieldID(1); f < numFields; f++ {
		fs := &r.sc.fields[f]
		st.fields[f] = fs.cover.clone()
		if r.witness && fs.witnessPin {
			st.fields[f].lo, st.fields[f].hi = fs.witnessPinVal, fs.witnessPinVal
		}
	}
	return st
}

// execute runs the scenario from a root function with the given arguments.
func (r *run) execute(root int64, args []Value) {
	if root < 0 {
		r.incomplete = true
		return
	}
	st := r.e.initState(r)
	for _, res := range r.execFunc(uint32(root), args, st, 0) {
		r.finish(res.st, res.trapped)
	}
}

// finish folds one terminal path into the aggregates.
func (r *run) finish(st *state, trapped bool) {
	_ = trapped
	r.paths++
	for i, b := range st.entered {
		if b {
			r.agg.entered[i] = true
		}
	}
	r.agg.firstInds[st.firstInd] = true
	if r.fStar >= 0 {
		hitF := int(r.fStar) < len(st.entered) && st.entered[r.fStar]
		if (hitF || st.hitSend) && !st.guardDef {
			r.agg.guardAllOK = false
		}
	}
}

// abort abandons the current path as unsupported or over budget.
func (r *run) abort(st *state) []result {
	_ = st
	r.incomplete = true
	return nil
}

func (r *run) checkGoal(st *state) {
	if r.goal != nil && r.found == nil && r.goal(st) {
		r.found = st.clone()
	}
}

// execFunc abstractly executes one function body, returning every terminal
// outcome (returns and traps) reachable under the mode's edge policy.
func (r *run) execFunc(fi uint32, args []Value, st *state, depth int) []result {
	if r.found != nil {
		return nil
	}
	if depth > maxDepth {
		return r.abort(st)
	}
	if int(fi) < len(st.entered) {
		st.entered[fi] = true
		r.checkGoal(st)
	}
	fv := r.e.ir.Func(fi)
	if !fv.OK() {
		return r.abort(st)
	}
	locals := make([]Value, fv.NLocals())
	for i := range locals {
		if i < len(args) {
			locals[i] = args[i]
		} else {
			locals[i] = exact(0) // declared locals are zero-initialized
		}
	}
	return r.exec(fv, fi, 0, locals, make([]Value, 0, 16), st, depth)
}

func cloneFrame(locals, stk []Value) ([]Value, []Value) {
	l := append([]Value(nil), locals...)
	s := append([]Value(nil), stk...)
	return l, s
}

// branchRefine applies the refinement implied by taking cond==outcome on
// the given state, enforcing the assumption budget in witness mode.
// Reports whether the edge is feasible.
func (r *run) branchRefine(st *state, cond Value, outcome bool) bool {
	p, negp, ok := predOf(cond)
	if !ok {
		// No structure to refine on. Cover explores anyway; a witness
		// cannot guarantee the direction.
		return !r.witness
	}
	want := outcome != negp
	op := p.op
	if !want {
		op = op.negate()
	}
	// Only field-vs-exact shapes refine; everything else is explored
	// unrefined in cover mode and rejected in witness mode.
	a, b := p.a, p.b
	if a.kind == kExact && b.kind == kField {
		a, b = b, a
		op = mirrorCmp(op)
	}
	if a.kind != kField || b.kind != kExact {
		return !r.witness
	}
	fd := &st.fields[a.field]
	if !fd.refineCmp(op, b.c, a.mask, p.w32) {
		return false // contradiction: edge infeasible
	}
	if r.witness {
		fs := &r.sc.fields[a.field]
		if !fs.pinned && !fs.witnessPin {
			if r.frac(st) < minAssumeFrac {
				return false // assumption too narrow for the draw space
			}
			st.assum = append(st.assum, assumption{field: a.field,
				desc: fmt.Sprintf("%s %d (mask %#x)", cmpName(op), int64(b.c), a.mask)})
		}
	}
	return true
}

func mirrorCmp(op cmpOp) cmpOp {
	switch op {
	case cmpLtS:
		return cmpGtS
	case cmpLtU:
		return cmpGtU
	case cmpGtS:
		return cmpLtS
	case cmpGtU:
		return cmpLtU
	case cmpLeS:
		return cmpGeS
	case cmpLeU:
		return cmpGeU
	case cmpGeS:
		return cmpLeS
	case cmpGeU:
		return cmpLeU
	default:
		return op // eq/ne symmetric
	}
}

func cmpName(op cmpOp) string {
	switch op {
	case cmpEq:
		return "=="
	case cmpNe:
		return "!="
	case cmpLtS, cmpLtU:
		return "<"
	case cmpGtS, cmpGtU:
		return ">"
	case cmpLeS, cmpLeU:
		return "<="
	default:
		return ">="
	}
}

// predOf extracts the predicate structure of a value used as a condition.
func predOf(v Value) (p pred, negated, ok bool) {
	switch v.kind {
	case kBool:
		return *v.pred, v.neg, true
	case kField:
		// Branching directly on a (field & mask) value: truth is != 0.
		return pred{op: cmpNe, a: v, b: exact(0)}, false, true
	default:
		return pred{}, false, false
	}
}

// truth decides a branch condition under the state's refinements.
func (r *run) truth(st *state, v Value) (res, ok bool) {
	switch v.kind {
	case kExact:
		return v.c != 0, true
	case kBool:
		if res, ok = r.decidePred(st, *v.pred); ok {
			return res != v.neg, true
		}
	case kField:
		if res, ok = decideCmp(st.fields[v.field], v.mask, cmpNe, 0, false); ok {
			return res, true
		}
	}
	return false, false
}

// decidePred evaluates a predicate under the refinements in st.
func (r *run) decidePred(st *state, p pred) (res, ok bool) {
	a, b := r.resolve(st, p.a), r.resolve(st, p.b)
	if a.kind == kExact && b.kind == kExact {
		return evalCmp(p.op, a.c, b.c, p.w32), true
	}
	if a.kind == kField && b.kind == kExact {
		return decideCmp(st.fields[a.field], a.mask, p.op, b.c, p.w32)
	}
	if a.kind == kExact && b.kind == kField {
		return decideCmp(st.fields[b.field], b.mask, mirrorCmp(p.op), a.c, p.w32)
	}
	if a.kind == kField && b.kind == kField && a.field == b.field && a.mask == b.mask {
		switch p.op {
		case cmpEq, cmpLeS, cmpLeU, cmpGeS, cmpGeU:
			return true, true
		case cmpNe, cmpLtS, cmpLtU, cmpGtS, cmpGtU:
			return false, true
		}
	}
	return false, false
}

// resolve collapses a field value whose refined domain pins one constant.
func (r *run) resolve(st *state, v Value) Value {
	if v.kind == kField {
		if c, ok := st.fields[v.field].maskedDom(v.mask).exactVal(); ok {
			return exact(c)
		}
	}
	return v
}

// mayBe reports whether v may equal k on this path (over-approximate).
func (r *run) mayBe(st *state, v Value, k uint64) bool {
	if res, ok := r.decidePred(st, pred{op: cmpEq, a: v, b: exact(k)}); ok {
		return res
	}
	return true
}

// isDef reports whether v definitely equals k on this path.
func (r *run) isDef(st *state, v Value, k uint64) bool {
	res, ok := r.decidePred(st, pred{op: cmpEq, a: v, b: exact(k)})
	return ok && res
}

// cmpEvent models the HookLogCmp instrumentation on executed i64.eq /
// i64.ne: the Fake Notification oracle inspects the operand pair.
func (r *run) cmpEvent(st *state, a, b Value) {
	defPair := (r.isDef(st, a, agentC) && r.isDef(st, b, victimC)) ||
		(r.isDef(st, a, victimC) && r.isDef(st, b, agentC))
	if defPair {
		st.guardDef = true
		return
	}
	mayPair := (r.mayBe(st, a, agentC) && r.mayBe(st, b, victimC)) ||
		(r.mayBe(st, a, victimC) && r.mayBe(st, b, agentC))
	if mayPair {
		r.agg.guardPossible = true
	}
}

func (r *run) observeCond(fi uint32, src uint32, outcome bool) {
	key := uint64(fi)<<32 | uint64(src)
	if outcome {
		r.agg.condSeen[key] |= 1
	} else {
		r.agg.condSeen[key] |= 2
	}
}

func (r *run) step(st *state, fi uint32, src uint32, taken bool) {
	if r.witness && len(st.trail) < 512 {
		st.trail = append(st.trail, Step{Func: fi, PC: src, Taken: taken})
	}
}

// exec interprets fv from pc with the given frame until every descendant
// path terminates. Forks clone the state and frame; results accumulate
// depth-first in deterministic order.
func (r *run) exec(fv exec.IRFuncView, fi uint32, pc int, locals, stk []Value, st *state, depth int) []result {
	pop := func() (Value, bool) {
		if len(stk) == 0 {
			return Value{}, false
		}
		v := stk[len(stk)-1]
		stk = stk[:len(stk)-1]
		return v, true
	}
	push := func(v Value) { stk = append(stk, v) }

	// unwind applies a branch's stack adjustment.
	unwind := func(keep uint8, to uint32) bool {
		if int(to)+int(keep) > len(stk) {
			return false
		}
		if keep == 1 {
			stk[to] = stk[len(stk)-1]
		}
		stk = stk[:int(to)+int(keep)]
		return true
	}

	for {
		if r.found != nil {
			return nil
		}
		r.steps++
		if r.steps > maxSteps || r.paths > maxPaths {
			return r.abort(st)
		}
		if pc < 0 || pc >= fv.Len() {
			return r.abort(st)
		}
		in := fv.Instr(pc)

		switch in.Op {
		case exec.IRTick:
			// fuel bookkeeping only

		case exec.IRUnreachable:
			return []result{{st: st, trapped: true}}

		case exec.IRBr:
			if int(in.A) <= pc {
				return r.abort(st) // backward branch: loops unsupported
			}
			if !unwind(in.X, in.B) {
				return r.abort(st)
			}
			pc = int(in.A)
			continue

		case exec.IRBrIf, exec.IRBrIfZ:
			cond, ok := pop()
			if !ok {
				return r.abort(st)
			}
			// The branch is taken when cond != 0 (IRBrIf) or cond == 0
			// (IRBrIfZ, the lowered `if` else-edge).
			takenTruth := in.Op == exec.IRBrIf
			if int(in.A) <= pc && in.Op == exec.IRBrIf {
				// Backward br_if: only the fall-through edge is analyzable.
				t, decided := r.truth(st, cond)
				if decided && t == takenTruth {
					return r.abort(st)
				}
				if !decided {
					r.incomplete = true // taken edge unexplored
					if r.witness {
						return nil
					}
				}
				r.observeCond(fi, in.Src, !takenTruth)
				pc++
				continue
			}
			takeBranch := func(s *state, l, k []Value) []result {
				if int(in.A) <= pc {
					return r.abort(s) // backward else-edge: loops unsupported
				}
				if in.Op == exec.IRBrIfZ {
					if int(in.B) > len(k) {
						return r.abort(s)
					}
					k = k[:in.B]
				} else if int(in.B)+int(in.X) <= len(k) {
					if in.X == 1 {
						k[in.B] = k[len(k)-1]
					}
					k = k[:int(in.B)+int(in.X)]
				} else {
					return r.abort(s)
				}
				return r.exec(fv, fi, int(in.A), l, k, s, depth)
			}
			if t, ok := r.truth(st, cond); ok {
				r.observeCond(fi, in.Src, t)
				r.step(st, fi, in.Src, t == takenTruth)
				if t == takenTruth {
					out := takeBranch(st, locals, stk)
					return out
				}
				pc++
				continue
			}
			// Fork: condition-true side, then condition-false side.
			var out []result
			for _, truth := range [2]bool{true, false} {
				s2 := st.clone()
				l2, k2 := cloneFrame(locals, stk)
				if !r.branchRefine(s2, cond, truth) {
					continue
				}
				r.observeCond(fi, in.Src, truth)
				r.step(s2, fi, in.Src, truth == takenTruth)
				if truth == takenTruth {
					out = append(out, takeBranch(s2, l2, k2)...)
				} else {
					out = append(out, r.exec(fv, fi, pc+1, l2, k2, s2, depth)...)
				}
			}
			return out

		case exec.IRBrTable:
			idxv, ok := pop()
			if !ok || int(in.A) >= fv.NTables() {
				return r.abort(st)
			}
			tbl := fv.Table(int(in.A))
			if len(tbl) == 0 {
				return r.abort(st)
			}
			takeTarget := func(s *state, l, k []Value, t exec.IRTarget) []result {
				if int(t.PC) <= pc {
					return r.abort(s)
				}
				if int(t.Unwind)+int(t.Keep) > len(k) {
					return r.abort(s)
				}
				if t.Keep == 1 {
					k[t.Unwind] = k[len(k)-1]
				}
				k = k[:int(t.Unwind)+int(t.Keep)]
				return r.exec(fv, fi, int(t.PC), l, k, s, depth)
			}
			if iv := r.resolve(st, idxv); iv.kind == kExact {
				i := len(tbl) - 1
				if uint64(uint32(iv.c)) < uint64(i) {
					i = int(uint32(iv.c))
				}
				return takeTarget(st, locals, stk, tbl[i])
			}
			if r.witness {
				return nil // cannot guarantee a target
			}
			var out []result
			for i := range tbl {
				s2 := st.clone()
				l2, k2 := cloneFrame(locals, stk)
				out = append(out, takeTarget(s2, l2, k2, tbl[i])...)
			}
			return out

		case exec.IRReturn:
			n := int(in.X)
			if n > len(stk) {
				return r.abort(st)
			}
			vals := append([]Value(nil), stk[len(stk)-n:]...)
			return []result{{st: st, vals: vals}}

		case exec.IRCall:
			out, ok := r.doCall(fv, fi, pc, int64(in.A), nil, locals, stk, st, depth)
			if !ok {
				return r.abort(st)
			}
			return out

		case exec.IRCallInd:
			idxv, ok := pop()
			if !ok {
				return r.abort(st)
			}
			iv := r.resolve(st, idxv)
			if iv.kind != kExact || !r.e.tableOK {
				return r.abort(st)
			}
			ti := uint64(uint32(iv.c))
			if ti >= uint64(len(r.e.table)) || r.e.table[ti] < 0 {
				return []result{{st: st, trapped: true}}
			}
			callee := r.e.table[ti]
			if r.e.ir.FuncCanon(uint32(callee)) != r.e.ir.TypeCanon(in.A) {
				return []result{{st: st, trapped: true}}
			}
			if st.firstInd < 0 {
				st.firstInd = callee
			}
			out, ok := r.doCall(fv, fi, pc, callee, stk, locals, stk, st, depth)
			if !ok {
				return r.abort(st)
			}
			return out

		case exec.IRDrop:
			if _, ok := pop(); !ok {
				return r.abort(st)
			}

		case exec.IRSelect:
			c, ok1 := pop()
			b, ok2 := pop()
			a, ok3 := pop()
			if !ok1 || !ok2 || !ok3 {
				return r.abort(st)
			}
			if t, ok := r.truth(st, c); ok {
				if t {
					push(a)
				} else {
					push(b)
				}
			} else if a.kind == kExact && b.kind == kExact && a.c == b.c {
				push(a)
			} else {
				push(unknown())
			}

		case exec.IRLocalGet:
			if int(in.A) >= len(locals) {
				return r.abort(st)
			}
			push(locals[in.A])
		case exec.IRLocalSet:
			v, ok := pop()
			if !ok || int(in.A) >= len(locals) {
				return r.abort(st)
			}
			locals[in.A] = v
		case exec.IRLocalTee:
			if len(stk) == 0 || int(in.A) >= len(locals) {
				return r.abort(st)
			}
			locals[in.A] = stk[len(stk)-1]

		case exec.IRGlobalGet:
			if int(in.A) >= len(st.globals) {
				return r.abort(st)
			}
			push(st.globals[in.A])
		case exec.IRGlobalSet:
			v, ok := pop()
			if !ok || int(in.A) >= len(st.globals) {
				return r.abort(st)
			}
			st.globals[in.A] = v

		case exec.IRConst:
			push(exact(in.Imm))

		case exec.IRMemSize:
			push(unknown())
		case exec.IRMemGrow:
			if _, ok := pop(); !ok {
				return r.abort(st)
			}
			push(unknown())

		case exec.IRLoad:
			addr, ok := pop()
			if !ok {
				return r.abort(st)
			}
			v, mayTrap := r.load(st, addr, in)
			push(v)
			if mayTrap {
				return r.withTrapFork(fv, fi, pc+1, locals, stk, st, depth)
			}

		case exec.IRStore:
			val, ok1 := pop()
			addr, ok2 := pop()
			if !ok1 || !ok2 {
				return r.abort(st)
			}
			if r.store(st, addr, val, in) {
				return r.withTrapFork(fv, fi, pc+1, locals, stk, st, depth)
			}

		case exec.IRConstStore:
			addr, ok := pop()
			if !ok {
				return r.abort(st)
			}
			if r.store(st, addr, exact(in.Imm), in) {
				return r.withTrapFork(fv, fi, pc+1, locals, stk, st, depth)
			}

		case exec.IRNumeric:
			ok, mayTrap, trapNow := r.numeric(st, wasm.Opcode(in.X), &stk)
			if !ok {
				return r.abort(st)
			}
			if trapNow {
				return []result{{st: st, trapped: true}}
			}
			if mayTrap {
				return r.withTrapFork(fv, fi, pc+1, locals, stk, st, depth)
			}

		case exec.IRGetGetAddI32, exec.IRGetGetAddI64:
			if int(in.A) >= len(locals) || int(in.B) >= len(locals) {
				return r.abort(st)
			}
			a, b := locals[in.A], locals[in.B]
			if a.kind == kExact && b.kind == kExact {
				if in.Op == exec.IRGetGetAddI32 {
					push(exact(uint64(uint32(a.c) + uint32(b.c))))
				} else {
					push(exact(a.c + b.c))
				}
			} else {
				push(unknown())
			}

		case exec.IRConstAddI32, exec.IRConstAddI64:
			v, ok := pop()
			if !ok {
				return r.abort(st)
			}
			if v.kind == kExact {
				if in.Op == exec.IRConstAddI32 {
					push(exact(uint64(uint32(v.c) + uint32(in.Imm))))
				} else {
					push(exact(v.c + in.Imm))
				}
			} else {
				push(unknown())
			}

		default:
			if !r.inlineOp(st, in.Op, &stk) {
				return r.abort(st)
			}
		}
		pc++
	}
}

// withTrapFork emits a trapped terminal alongside the continuing path, for
// operations that may or may not trap (unknown address, unknown divisor,
// unmodeled host behaviour).
func (r *run) withTrapFork(fv exec.IRFuncView, fi uint32, pc int, locals, stk []Value, st *state, depth int) []result {
	out := []result{{st: st.clone(), trapped: true}}
	if r.witness && r.found == nil {
		// A witness path must be replayable: past a possible trap the
		// dynamic run is no longer guaranteed to continue.
		return out
	}
	l2, k2 := cloneFrame(locals, stk)
	out = append(out, r.exec(fv, fi, pc, l2, k2, st, depth)...)
	return out
}

// doCall dispatches a direct or indirect call: host imports through the
// host model, local functions recursively. stkOverride is unused (the
// caller has already popped what it needed); args are popped here.
func (r *run) doCall(fv exec.IRFuncView, fi uint32, pc int, callee int64, _ []Value, locals, stk []Value, st *state, depth int) ([]result, bool) {
	if callee < 0 || int(callee) >= r.e.nFunc {
		return nil, false
	}
	n := r.e.nParams[callee]
	if n > len(stk) {
		return nil, false
	}
	args := append([]Value(nil), stk[len(stk)-n:]...)
	stk = stk[:len(stk)-n]

	var subs []result
	if int(callee) < r.e.nImp {
		subs = r.hostCall(r.e.impName[callee], int(callee), args, st)
	} else {
		subs = r.execFunc(uint32(callee), args, st, depth+1)
	}
	var out []result
	for i, sub := range subs {
		if sub.trapped {
			out = append(out, sub)
			continue
		}
		l2, k2 := locals, stk
		if i < len(subs)-1 {
			l2, k2 = cloneFrame(locals, stk)
		}
		k2 = append(k2, sub.vals...)
		out = append(out, r.exec(fv, fi, pc+1, l2, k2, sub.st, depth)...)
	}
	return out, true
}
