package static_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/static"
	"repro/internal/wasm"
)

// FuzzCFG feeds arbitrary bytes through the code-section entry decoder into
// the CFG builder: malformed input must return an error, never panic, and a
// successfully built graph must satisfy the partition invariants (the
// properties the campaign triage path depends on when it walks modules from
// the wild).
func FuzzCFG(f *testing.F) {
	f.Add([]byte{0x00, 0x0b})       // no locals, bare end
	f.Add([]byte{0x00, 0x01, 0x0b}) // nop; end
	for _, data := range cfgCorpus(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		code, err := wasm.DecodeCode(data)
		if err != nil {
			return
		}
		g, err := static.BuildCFG(code.Body)
		if err != nil {
			return
		}
		if len(g.Blocks) == 0 {
			t.Fatal("built CFG with zero blocks")
		}
		if g.Blocks[0].Start != 0 || g.Blocks[len(g.Blocks)-1].End != len(code.Body) {
			t.Fatalf("blocks do not cover the body: %+v", g.Blocks)
		}
		for i, b := range g.Blocks {
			if b.Start >= b.End {
				t.Fatalf("block %d empty or inverted: %+v", i, b)
			}
			if i > 0 && g.Blocks[i-1].End != b.Start {
				t.Fatalf("blocks %d/%d not contiguous: %+v", i-1, i, g.Blocks)
			}
			for _, s := range b.Succs {
				if s != static.ExitTarget && (s < 0 || s >= len(g.Blocks)) {
					t.Fatalf("block %d: successor %d out of range", i, s)
				}
			}
		}
	})
}

// cfgCorpus encodes the branchiest function body of each generated class
// contract as a code-section entry — realistic dispatcher/guard structures
// the MVP grammar's corners would take the fuzzer long to reach.
func cfgCorpus(tb testing.TB) map[string][]byte {
	tb.Helper()
	entries := map[string][]byte{}
	for i, class := range contractgen.Classes {
		c, err := contractgen.Generate(contractgen.Spec{
			Class: class, Vulnerable: true, Seed: int64(10 + i),
		})
		if err != nil {
			tb.Fatalf("generate %s: %v", class, err)
		}
		best, bestLen := 0, 0
		for fi := range c.Module.Code {
			if n := len(c.Module.Code[fi].Body); n > bestLen {
				best, bestLen = fi, n
			}
		}
		data, err := wasm.EncodeCode(&c.Module.Code[best])
		if err != nil {
			tb.Fatalf("encode %s body: %v", class, err)
		}
		slug := strings.ReplaceAll(strings.ToLower(class.String()), " ", "-")
		entries["contractgen-"+slug] = data
	}
	return entries
}

// TestFuzzCFGSeedCorpus keeps the checked-in corpus in sync with the
// generator. Regenerate with:
//
//	UPDATE_FUZZ_CORPUS=1 go test -run TestFuzzCFGSeedCorpus ./internal/static/
func TestFuzzCFGSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCFG")
	update := os.Getenv("UPDATE_FUZZ_CORPUS") != ""
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range cfgCorpus(t) {
		path := filepath.Join(dir, name)
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if update {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus entry missing (regenerate with UPDATE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != want {
			t.Errorf("seed corpus entry %s is stale (regenerate with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
}
