package static

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chain"
	"repro/internal/contractgen"
	"repro/internal/wasm"
)

// FuncReport is the static summary of one local function.
type FuncReport struct {
	// Index is the function-space index (imports first).
	Index uint32
	// Name is the debug name when the module carries one.
	Name string
	// CFG is the function's control flow graph.
	CFG *CFG
	// Blocks, Branches and Complexity are the CFG's size metrics.
	Blocks, Branches, Complexity int
	// HostCalls lists the host-API import names the function calls
	// directly, sorted and de-duplicated.
	HostCalls []string
	// Taint is the heuristic taint summary.
	Taint Taint
}

// ActionReport describes one action entry: a function installed in the
// dispatch table (call_indirect slot), which is how EOSIO contracts expose
// actions to apply's dispatcher.
type ActionReport struct {
	// Slot is the table slot (elem position); Func the function index.
	Slot uint32
	Func uint32
	// HostAPIs lists every host import reachable from this entry, sorted.
	HostAPIs []string
	// Branches totals the conditional branch sites reachable from this
	// entry — the per-action fuel/effort metric.
	Branches int
}

// Report is the static pre-analysis of one module.
type Report struct {
	// NumFuncs and NumImports size the function index space.
	NumFuncs, NumImports int
	// Funcs summarizes every local function, in index order.
	Funcs []FuncReport
	// CallGraph is the inter-procedural graph the reachability derives from.
	CallGraph *CallGraph
	// Roots are the analysis entry points: exported functions + start.
	Roots []uint32
	// ReachableHostAPIs lists host import names reachable from the roots,
	// sorted.
	ReachableHostAPIs []string
	// IndirectReachable reports a reachable call_indirect site (the
	// precondition for the scanner's eosponser identification).
	IndirectReachable bool
	// Actions holds the per-action (dispatch-table entry) reachability.
	Actions []ActionReport
	// Candidates maps each of the five oracle classes to its static
	// candidate flag: false means the dynamic oracle provably cannot fire
	// on this module (a necessary condition is absent), so a campaign may
	// skip it; true means the class is worth fuzzing.
	Candidates map[contractgen.Class]bool
	// Branches and Complexity total the metrics over reachable local
	// functions — the campaign cost estimate.
	Branches, Complexity int
	// TaintedSinks is the union of per-function tainted sink names, sorted.
	TaintedSinks []string
}

// candidateClasses pins the oracle classes this package computes candidate
// flags for. cmd/wasai-lint enforces parity: every class the scanner's
// detectors reference must appear here.
var candidateClasses = []contractgen.Class{
	contractgen.ClassFakeEOS,
	contractgen.ClassFakeNotif,
	contractgen.ClassMissAuth,
	contractgen.ClassBlockinfoDep,
	contractgen.ClassRollback,
	contractgen.ClassStateTamper,
	contractgen.ClassOrderDep,
	contractgen.ClassCrossContract,
}

// dbWriteAPIs and dbReadAPIs split the db_* surface for the on-chain-data
// candidate flags.
var (
	dbWriteAPIs = []string{chain.APIDBStore, chain.APIDBUpdate, chain.APIDBRemove}
	dbReadAPIs  = []string{
		chain.APIDBFind, chain.APIDBGet, chain.APIDBLowerbound,
		chain.APIDBEnd, chain.APIDBNext, chain.APIDBPrevious,
	}
)

// Analyze runs the full static pass: CFG per function, call graph,
// reachability from the exported entry points, taint, and the per-class
// candidate flags. The module should be Decode+Validate clean; malformed
// bodies fail with an error (and the caller then falls back to dynamic
// analysis — triage must never hide a contract it cannot model).
func Analyze(m *wasm.Module) (*Report, error) {
	r := &Report{
		NumFuncs:   m.NumFuncs(),
		NumImports: m.NumImportedFuncs(),
		CallGraph:  BuildCallGraph(m),
		Candidates: map[contractgen.Class]bool{},
	}

	// Host import names by function index.
	importName := map[uint32]string{}
	idx := uint32(0)
	for _, imp := range m.Imports {
		if imp.Kind == wasm.ExternalFunc {
			importName[idx] = imp.Name
			idx++
		}
	}

	// Per-function pass.
	for i := range m.Code {
		fidx := uint32(r.NumImports + i)
		code := &m.Code[i]
		cfg, err := BuildCFG(code.Body)
		if err != nil {
			return nil, fmt.Errorf("static: func %d: %w", fidx, err)
		}
		fr := FuncReport{
			Index:      fidx,
			Name:       m.FuncNames[fidx],
			CFG:        cfg,
			Blocks:     len(cfg.Blocks),
			Branches:   cfg.Branches,
			Complexity: cfg.Complexity(),
			Taint:      analyzeTaint(m, fidx, code, importName),
		}
		seen := map[string]bool{}
		for _, in := range code.Body {
			if in.Op == wasm.OpCall {
				if name, ok := importName[in.A]; ok && !seen[name] {
					seen[name] = true
					fr.HostCalls = append(fr.HostCalls, name)
				}
			}
		}
		sort.Strings(fr.HostCalls)
		r.Funcs = append(r.Funcs, fr)
	}

	// Roots: exports + start function.
	for _, ex := range m.Exports {
		if ex.Kind == wasm.ExternalFunc {
			r.Roots = append(r.Roots, ex.Index)
		}
	}
	if m.Start != nil {
		r.Roots = append(r.Roots, *m.Start)
	}
	sort.Slice(r.Roots, func(i, j int) bool { return r.Roots[i] < r.Roots[j] })

	reach := r.CallGraph.Reachable(r.Roots...)
	r.IndirectReachable = r.CallGraph.IndirectReachable(reach)

	apiSet := map[string]bool{}
	taintSet := map[string]bool{}
	for _, fr := range r.Funcs {
		if !reach[fr.Index] {
			continue
		}
		r.Branches += fr.Branches
		r.Complexity += fr.Complexity
		for _, name := range fr.HostCalls {
			apiSet[name] = true
		}
		for _, name := range fr.Taint.TaintedSinks {
			taintSet[name] = true
		}
	}
	for f := range reach {
		if name, ok := importName[f]; ok {
			apiSet[name] = true
		}
	}
	r.ReachableHostAPIs = sortedKeys(apiSet)
	r.TaintedSinks = sortedKeys(taintSet)

	// Per-action reachability over the dispatch table.
	for _, el := range m.Elems {
		for slot, fi := range el.Funcs {
			ar := ActionReport{Slot: uint32(slot), Func: fi}
			areach := r.CallGraph.Reachable(fi)
			aAPIs := map[string]bool{}
			for _, fr := range r.Funcs {
				if !areach[fr.Index] {
					continue
				}
				ar.Branches += fr.Branches
				for _, name := range fr.HostCalls {
					aAPIs[name] = true
				}
			}
			for f := range areach {
				if name, ok := importName[f]; ok {
					aAPIs[name] = true
				}
			}
			ar.HostAPIs = sortedKeys(aAPIs)
			r.Actions = append(r.Actions, ar)
		}
	}

	// Candidate flags: necessary conditions for each trace oracle.
	//
	//   Rollback fires only on an executed send_inline; BlockinfoDep only
	//   on an executed tapos_*; MissAuth only on an executed effect API.
	//   Fake EOS and Fake Notif both require the scanner to locate the
	//   eosponser, which needs an executed call_indirect.
	//
	// Reachability over-approximates execution, so flag=false is a proof
	// the oracle cannot fire; flag=true is only a candidate.
	hasAPI := func(names ...string) bool {
		for _, n := range names {
			if apiSet[n] {
				return true
			}
		}
		return false
	}
	effects := sortedKeys(chain.EffectAPIs)
	r.Candidates[contractgen.ClassRollback] = apiSet[chain.APISendInline]
	r.Candidates[contractgen.ClassBlockinfoDep] = hasAPI(chain.APITaposBlockNum, chain.APITaposBlockPrefix)
	r.Candidates[contractgen.ClassMissAuth] = hasAPI(effects...)
	r.Candidates[contractgen.ClassFakeEOS] = r.IndirectReachable
	r.Candidates[contractgen.ClassFakeNotif] = r.IndirectReachable
	// On-chain-data scenario oracles (internal/fuzz scenario driver):
	//
	//   StateTamper fires only on an executed db-write intrinsic (the
	//   overwrite evidence is a victim DBWrite record). OrderDep needs the
	//   contract to either mutate persistent state (db writes) or make the
	//   transaction outcome depend on mutable chain state (db reads over
	//   tables another transaction may have changed, or sends whose
	//   success hangs on token balances); with none of those, every
	//   transaction outcome is a pure function of its own inputs — each
	//   apply runs in a fresh instance — and permutation cannot matter.
	//   CrossContract fires only on an executed send_inline.
	r.Candidates[contractgen.ClassStateTamper] = hasAPI(dbWriteAPIs...)
	r.Candidates[contractgen.ClassOrderDep] = hasAPI(dbWriteAPIs...) ||
		hasAPI(dbReadAPIs...) || hasAPI(chain.APISendInline, chain.APISendDeferred)
	r.Candidates[contractgen.ClassCrossContract] = apiSet[chain.APISendInline]
	return r, nil
}

// AnyCandidate reports whether any oracle class is statically possible.
func (r *Report) AnyCandidate() bool {
	for _, c := range candidateClasses {
		if r.Candidates[c] {
			return true
		}
	}
	return false
}

// Score is the triage priority: an estimate of how much dynamic work the
// contract deserves. Candidate classes dominate (a contract that can
// exhibit more oracle classes is fuzzed first), tainted sinks and branch
// counts break ties — which doubles as longest-job-first scheduling, since
// branchy contracts cost the fuzzer most.
func (r *Report) Score() int {
	score := 0
	for _, c := range candidateClasses {
		if r.Candidates[c] {
			score += 1000
		}
	}
	score += 50 * len(r.TaintedSinks)
	score += r.Branches
	return score
}

// FuelBudget scales the per-action instruction budget by the contract's
// reachable branch count, never below base: simple contracts keep the
// default, branchy contracts get headroom so deep paths are not starved by
// premature fuel exhaustion. Raising (and never lowering) the budget keeps
// the oracle verdicts of budgeted runs a superset of default runs.
func (r *Report) FuelBudget(base int64) int64 {
	scale := int64(1 + r.Branches/64)
	if scale > 4 {
		scale = 4
	}
	return base * scale
}

// SolverBudget scales the per-query SMT conflict cap by branch count,
// never below base (same monotonicity argument as FuelBudget).
func (r *Report) SolverBudget(base int64) int64 {
	scale := int64(1 + r.Branches/128)
	if scale > 2 {
		scale = 2
	}
	return base * scale
}

// String renders the report canonically: every collection is sorted, so two
// analyses of the same module are byte-identical (the determinism tests
// compare exactly this).
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "static: funcs=%d imports=%d branches=%d complexity=%d score=%d\n",
		r.NumFuncs, r.NumImports, r.Branches, r.Complexity, r.Score())
	fmt.Fprintf(&sb, "roots=%v indirect=%v\n", r.Roots, r.IndirectReachable)
	fmt.Fprintf(&sb, "reachable-apis=%s\n", strings.Join(r.ReachableHostAPIs, ","))
	fmt.Fprintf(&sb, "tainted-sinks=%s\n", strings.Join(r.TaintedSinks, ","))
	for _, c := range candidateClasses {
		fmt.Fprintf(&sb, "candidate %-14s %v\n", c, r.Candidates[c])
	}
	for _, a := range r.Actions {
		fmt.Fprintf(&sb, "action slot=%d func=%d branches=%d apis=%s\n",
			a.Slot, a.Func, a.Branches, strings.Join(a.HostAPIs, ","))
	}
	for _, f := range r.Funcs {
		fmt.Fprintf(&sb, "func %d name=%q blocks=%d branches=%d complexity=%d calls=%s tainted=%s\n",
			f.Index, f.Name, f.Blocks, f.Branches, f.Complexity,
			strings.Join(f.HostCalls, ","), strings.Join(f.Taint.TaintedSinks, ","))
		for bi, b := range f.CFG.Blocks {
			fmt.Fprintf(&sb, "  block %d [%d,%d) -> %v\n", bi, b.Start, b.End, b.Succs)
		}
	}
	return sb.String()
}

// sortedKeys returns the map's keys sorted.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
