package static

import (
	"sort"

	"repro/internal/chain"
	"repro/internal/wasm"
)

// Taint is the per-function result of the lightweight intra-procedural
// taint pass. It is a HEURISTIC: sources are the function's parameters
// (the EOSIO calling convention passes action inputs as action-function
// locals, §3.4.2) and everything loaded from memory after a
// read_action_data call; propagation is a linear abstract interpretation of
// the operand stack. It over-approximates along the straight-line order of
// the body rather than the CFG, so it is used only for prioritization —
// never for skipping work.
type Taint struct {
	// TaintedSinks lists host-API import names that were called with at
	// least one tainted argument, sorted.
	TaintedSinks []string
	// SinkCalls counts all calls to interesting sinks (tainted or not).
	SinkCalls int
}

// sinkAPIs is the set of host imports the oracles reason about: the taint
// pass reports which of them can see attacker-controlled data.
func sinkAPIs() map[string]bool {
	s := map[string]bool{
		chain.APISendInline:       true,
		chain.APISendDeferred:     true,
		chain.APITaposBlockNum:    true,
		chain.APITaposBlockPrefix: true,
		chain.APIEosioAssert:      true,
	}
	for name := range chain.PermissionAPIs {
		s[name] = true
	}
	for name := range chain.EffectAPIs {
		s[name] = true
	}
	return s
}

// analyzeTaint runs the taint pass over one local function. importName maps
// a function-space index to the host import name (empty for local funcs).
func analyzeTaint(m *wasm.Module, fidx uint32, code *wasm.Code, importName map[uint32]string) Taint {
	ft, err := m.FuncTypeAt(fidx)
	if err != nil {
		return Taint{}
	}
	nLocals := int(uint32(len(ft.Params)) + code.NumLocals())
	locals := make([]bool, nLocals)
	for i := range ft.Params {
		locals[i] = true // action inputs arrive as parameters
	}
	sinks := sinkAPIs()
	hit := map[string]bool{}
	res := Taint{}

	// Two passes so taint carried through locals across a loop back-edge
	// still reaches sinks earlier in the body.
	for pass := 0; pass < 2; pass++ {
		var stack []bool
		memTainted := false // set once read_action_data wrote attacker data
		pop := func() bool {
			if len(stack) == 0 {
				return false // join imprecision: treat unknown as clean
			}
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			return v
		}
		popN := func(n int) bool {
			t := false
			for i := 0; i < n; i++ {
				t = pop() || t
			}
			return t
		}
		push := func(v bool) { stack = append(stack, v) }

		for _, in := range code.Body {
			switch {
			case in.Op == wasm.OpCall:
				callee := in.A
				ftc, err := m.FuncTypeAt(callee)
				if err != nil {
					continue
				}
				argTaint := popN(len(ftc.Params))
				name := importName[callee]
				if name == chain.APIReadActionData {
					memTainted = true
				}
				if sinks[name] {
					if pass == 0 {
						res.SinkCalls++
					}
					if argTaint {
						hit[name] = true
					}
				}
				for range ftc.Results {
					// Conservatively propagate: a host call fed tainted
					// arguments returns tainted data (e.g. memcpy).
					push(argTaint)
				}
			case in.Op == wasm.OpCallIndirect:
				if int(in.A) < len(m.Types) {
					ftc := m.Types[in.A]
					t := pop() // table index operand
					t = popN(len(ftc.Params)) || t
					for range ftc.Results {
						push(t)
					}
				}
			case in.Op == wasm.OpLocalGet:
				if int(in.A) < nLocals {
					push(locals[in.A])
				} else {
					push(false)
				}
			case in.Op == wasm.OpLocalSet:
				v := pop()
				if int(in.A) < nLocals {
					locals[in.A] = locals[in.A] || v
				}
			case in.Op == wasm.OpLocalTee:
				v := pop()
				if int(in.A) < nLocals {
					locals[in.A] = locals[in.A] || v
					v = locals[in.A]
				}
				push(v)
			case in.Op == wasm.OpGlobalGet:
				push(false)
			case in.Op == wasm.OpGlobalSet:
				pop()
			case in.Op.IsLoad():
				addr := pop()
				push(memTainted || addr)
			case in.Op.IsStore():
				popN(2)
			case in.Op == wasm.OpSelect:
				t := popN(3)
				push(t)
			case in.Op == wasm.OpDrop:
				pop()
			case in.Op == wasm.OpI32Const, in.Op == wasm.OpI64Const,
				in.Op == wasm.OpF32Const, in.Op == wasm.OpF64Const:
				push(false)
			case in.Op == wasm.OpMemorySize:
				push(false)
			case in.Op == wasm.OpMemoryGrow:
				push(pop())
			case in.Op == wasm.OpIf, in.Op == wasm.OpBrIf, in.Op == wasm.OpBrTable:
				pop() // condition / table index
			case in.Op == wasm.OpReturn, in.Op == wasm.OpUnreachable, in.Op == wasm.OpBr:
				stack = stack[:0]
			case in.Op == wasm.OpBlock, in.Op == wasm.OpLoop,
				in.Op == wasm.OpElse, in.Op == wasm.OpEnd, in.Op == wasm.OpNop:
				// No stack effect in the abstraction.
			default:
				pops, pushes := numericEffect(in.Op)
				t := popN(pops)
				for i := 0; i < pushes; i++ {
					push(t)
				}
			}
		}
	}

	for name := range hit {
		res.TaintedSinks = append(res.TaintedSinks, name)
	}
	sort.Strings(res.TaintedSinks)
	return res
}

// numericEffect returns the (pops, pushes) stack effect of the numeric,
// comparison and conversion opcodes (everything with ImmNone not handled
// structurally above).
func numericEffect(op wasm.Opcode) (int, int) {
	switch {
	case op == wasm.OpI32Eqz, op == wasm.OpI64Eqz:
		return 1, 1
	case op >= wasm.OpI32Eq && op <= wasm.OpI32GeU,
		op >= wasm.OpI64Eq && op <= wasm.OpI64GeU,
		op >= wasm.OpF32Eq && op <= wasm.OpF64Ge:
		return 2, 1
	case op >= wasm.OpI32Clz && op <= wasm.OpI32Popcnt,
		op >= wasm.OpI64Clz && op <= wasm.OpI64Popcnt:
		return 1, 1
	case op >= wasm.OpI32Add && op <= wasm.OpI32Rotr,
		op >= wasm.OpI64Add && op <= wasm.OpI64Rotr:
		return 2, 1
	case op >= wasm.OpF32Abs && op <= wasm.OpF32Sqrt,
		op >= wasm.OpF64Abs && op <= wasm.OpF64Sqrt:
		return 1, 1
	case op >= wasm.OpF32Add && op <= wasm.OpF32Copysign,
		op >= wasm.OpF64Add && op <= wasm.OpF64Copysign:
		return 2, 1
	case op >= wasm.OpI32WrapI64 && op <= wasm.OpF64ReinterpretI64:
		return 1, 1
	default:
		return 0, 0
	}
}
