package static_test

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/contractgen"
	"repro/internal/static"
	"repro/internal/wasm"
)

// TestAnalyzeDeterminism asserts the report is byte-identical across runs —
// over the same decoded module, and over two independent decodes of the
// same binary (map iteration anywhere in the pass would break this).
func TestAnalyzeDeterminism(t *testing.T) {
	for i, class := range contractgen.Classes {
		c, err := contractgen.Generate(contractgen.Spec{
			Class: class, Vulnerable: true, Seed: int64(70 + i),
		})
		if err != nil {
			t.Fatalf("generate %s: %v", class, err)
		}
		r1, err := static.Analyze(c.Module)
		if err != nil {
			t.Fatalf("%s: analyze: %v", class, err)
		}
		r2, err := static.Analyze(c.Module)
		if err != nil {
			t.Fatalf("%s: re-analyze: %v", class, err)
		}
		if r1.String() != r2.String() {
			t.Errorf("%s: repeated analysis diverged:\n--- first ---\n%s\n--- second ---\n%s",
				class, r1, r2)
		}

		bin, err := wasm.Encode(c.Module)
		if err != nil {
			t.Fatalf("%s: encode: %v", class, err)
		}
		mod, err := wasm.Decode(bin)
		if err != nil {
			t.Fatalf("%s: decode: %v", class, err)
		}
		// Debug names don't survive the encode/decode round trip (the name
		// custom section is not re-emitted); align them so the comparison
		// exercises the analysis, not the codec.
		mod.FuncNames = c.Module.FuncNames
		r3, err := static.Analyze(mod)
		if err != nil {
			t.Fatalf("%s: analyze decoded copy: %v", class, err)
		}
		if r1.String() != r3.String() {
			t.Errorf("%s: analysis of a re-decoded copy diverged:\n--- original ---\n%s\n--- copy ---\n%s",
				class, r1, r3)
		}
	}
}

// TestCandidateSoundnessOnCorpus is the triage soundness check at the
// static level: every ground-truth-vulnerable generated contract must carry
// the candidate flag of its class (the flag is a necessary condition for
// the dynamic oracle, and the oracle does fire on these contracts).
func TestCandidateSoundnessOnCorpus(t *testing.T) {
	for i, class := range contractgen.Classes {
		for seed := int64(0); seed < 3; seed++ {
			c, err := contractgen.Generate(contractgen.Spec{
				Class: class, Vulnerable: true, Seed: 100 + 10*int64(i) + seed,
			})
			if err != nil {
				t.Fatalf("generate %s: %v", class, err)
			}
			rep, err := static.Analyze(c.Module)
			if err != nil {
				t.Fatalf("%s: analyze: %v", class, err)
			}
			if !rep.Candidates[class] {
				t.Errorf("%s seed %d: vulnerable contract lacks its candidate flag\n%s",
					class, seed, rep)
			}
		}
	}
}

// TestAnalyzeTrivial checks the provably-negative end: the action-less
// boilerplate contract has no candidate for any class, so triage may skip
// it entirely.
func TestAnalyzeTrivial(t *testing.T) {
	c := contractgen.Trivial()
	if err := wasm.Validate(c.Module); err != nil {
		t.Fatalf("trivial module is invalid: %v", err)
	}
	rep, err := static.Analyze(c.Module)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AnyCandidate() {
		t.Errorf("trivial contract has candidates:\n%s", rep)
	}
	if len(rep.ReachableHostAPIs) != 0 {
		t.Errorf("trivial contract reaches host APIs: %v", rep.ReachableHostAPIs)
	}
	if rep.Score() != 0 {
		t.Errorf("trivial contract score = %d, want 0", rep.Score())
	}
}

// TestReachabilityRespectsExports checks that host APIs behind unexported,
// uncalled functions do not count as reachable: a dead send_inline must not
// make the contract a Rollback candidate.
func TestReachabilityRespectsExports(t *testing.T) {
	// func 0: imported send_inline. func 1: exported apply (returns).
	// func 2: dead local function calling send_inline.
	mod := &wasm.Module{
		Types: []wasm.FuncType{
			{Params: []wasm.ValType{wasm.I32, wasm.I32}},               // send_inline
			{Params: []wasm.ValType{wasm.I64, wasm.I64, wasm.I64}},     // apply
			{},                                                          // dead helper
		},
		Imports: []wasm.Import{{
			Module: "env", Name: chain.APISendInline, Kind: wasm.ExternalFunc, TypeIndex: 0,
		}},
		Funcs:   []uint32{1, 2},
		Exports: []wasm.Export{{Name: "apply", Kind: wasm.ExternalFunc, Index: 1}},
		Code: []wasm.Code{
			{Body: []wasm.Instr{{Op: wasm.OpEnd}}},
			{Body: []wasm.Instr{
				{Op: wasm.OpI32Const, Imm: 0},
				{Op: wasm.OpI32Const, Imm: 0},
				{Op: wasm.OpCall, A: 0},
				{Op: wasm.OpEnd},
			}},
		},
	}
	rep, err := static.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates[contractgen.ClassRollback] {
		t.Errorf("dead send_inline flagged as Rollback candidate:\n%s", rep)
	}
	// Exporting the helper makes it a root and the flag must flip.
	mod.Exports = append(mod.Exports, wasm.Export{Name: "helper", Kind: wasm.ExternalFunc, Index: 2})
	rep, err = static.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Candidates[contractgen.ClassRollback] {
		t.Errorf("reachable send_inline not flagged as Rollback candidate:\n%s", rep)
	}
}

// TestBudgetsNeverLower pins the monotonicity the budgeting consumers rely
// on: whatever the branch count, the fuel and solver budgets are >= base.
func TestBudgetsNeverLower(t *testing.T) {
	for _, branches := range []int{0, 1, 63, 64, 1000, 1 << 20} {
		r := &static.Report{Branches: branches}
		if got := r.FuelBudget(20_000_000); got < 20_000_000 {
			t.Errorf("branches=%d: fuel budget %d below base", branches, got)
		}
		if got := r.SolverBudget(50_000); got < 50_000 {
			t.Errorf("branches=%d: solver budget %d below base", branches, got)
		}
	}
}
