package static

import (
	"sort"

	"repro/internal/wasm"
)

// CallGraph is the inter-procedural call graph over the module's function
// index space (imports first, then local functions). Direct edges come from
// call instructions; indirect edges over-approximate call_indirect by
// admitting every function installed in the table (elem sections) whose
// signature matches the instruction's type immediate.
type CallGraph struct {
	// NumFuncs is the size of the function index space.
	NumFuncs int
	// NumImports is the number of imported functions (indices below it are
	// host functions and have no out-edges).
	NumImports int
	// Callees maps each function to its sorted, de-duplicated successor
	// set (direct and resolved-indirect targets merged).
	Callees map[uint32][]uint32
	// HasIndirect marks functions containing at least one call_indirect.
	HasIndirect map[uint32]bool
	// TableFuncs lists every function reachable through the table (the
	// call_indirect candidate pool), sorted.
	TableFuncs []uint32
}

// BuildCallGraph constructs the call graph. Out-of-range call targets are
// ignored rather than failed: the module may be malformed, and triage must
// degrade to over-approximation, not error, wherever it safely can.
func BuildCallGraph(m *wasm.Module) *CallGraph {
	g := &CallGraph{
		NumFuncs:    m.NumFuncs(),
		NumImports:  m.NumImportedFuncs(),
		Callees:     map[uint32][]uint32{},
		HasIndirect: map[uint32]bool{},
	}

	// Candidate pool for call_indirect: every function listed in an elem
	// segment, grouped by signature.
	tableSet := map[uint32]bool{}
	byType := map[int][]uint32{} // type-index slot in m.Types -> functions
	for _, el := range m.Elems {
		for _, fi := range el.Funcs {
			if int(fi) >= g.NumFuncs || tableSet[fi] {
				continue
			}
			tableSet[fi] = true
			ft, err := m.FuncTypeAt(fi)
			if err != nil {
				continue
			}
			for ti := range m.Types {
				if m.Types[ti].Equal(ft) {
					byType[ti] = append(byType[ti], fi)
				}
			}
		}
	}
	for fi := range tableSet {
		g.TableFuncs = append(g.TableFuncs, fi)
	}
	sort.Slice(g.TableFuncs, func(i, j int) bool { return g.TableFuncs[i] < g.TableFuncs[j] })

	for i := range m.Code {
		caller := uint32(g.NumImports + i)
		seen := map[uint32]bool{}
		var out []uint32
		add := func(fi uint32) {
			if int(fi) < g.NumFuncs && !seen[fi] {
				seen[fi] = true
				out = append(out, fi)
			}
		}
		for _, in := range m.Code[i].Body {
			switch in.Op {
			case wasm.OpCall:
				add(in.A)
			case wasm.OpCallIndirect:
				g.HasIndirect[caller] = true
				for _, fi := range byType[int(in.A)] {
					add(fi)
				}
			}
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		g.Callees[caller] = out
	}
	return g
}

// Reachable returns the set of functions reachable from the roots
// (inclusive) by following call edges.
func (g *CallGraph) Reachable(roots ...uint32) map[uint32]bool {
	seen := map[uint32]bool{}
	stack := make([]uint32, 0, len(roots))
	for _, r := range roots {
		if int(r) < g.NumFuncs && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.Callees[f] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// IndirectReachable reports whether any function in the reachable set
// contains a call_indirect instruction — the static precondition for the
// scanner's eosponser identification (it locates id_e as the callee of the
// first indirect call in a trace).
func (g *CallGraph) IndirectReachable(reachable map[uint32]bool) bool {
	for f := range reachable {
		if g.HasIndirect[f] {
			return true
		}
	}
	return false
}
