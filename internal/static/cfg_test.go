package static_test

import (
	"testing"

	"repro/internal/contractgen"
	"repro/internal/static"
	"repro/internal/wasm"
)

// checkWellFormed asserts the structural CFG invariants: blocks partition
// the body (contiguous, covering [0, len)), and every successor is either a
// valid block index or ExitTarget.
func checkWellFormed(t *testing.T, label string, bodyLen int, g *static.CFG) {
	t.Helper()
	if len(g.Blocks) == 0 {
		t.Fatalf("%s: no blocks", label)
	}
	if g.Blocks[0].Start != 0 {
		t.Errorf("%s: first block starts at %d, want 0", label, g.Blocks[0].Start)
	}
	if last := g.Blocks[len(g.Blocks)-1]; last.End != bodyLen {
		t.Errorf("%s: last block ends at %d, want %d", label, last.End, bodyLen)
	}
	for i, b := range g.Blocks {
		if b.Start >= b.End {
			t.Errorf("%s: block %d empty or inverted [%d,%d)", label, i, b.Start, b.End)
		}
		if i > 0 && g.Blocks[i-1].End != b.Start {
			t.Errorf("%s: gap between block %d (end %d) and block %d (start %d)",
				label, i-1, g.Blocks[i-1].End, i, b.Start)
		}
		for _, s := range b.Succs {
			if s != static.ExitTarget && (s < 0 || s >= len(g.Blocks)) {
				t.Errorf("%s: block %d has out-of-range successor %d", label, i, s)
			}
		}
	}
	for pc := 0; pc < bodyLen; pc++ {
		if g.BlockAt(pc) < 0 {
			t.Errorf("%s: pc %d not covered by any block", label, pc)
		}
	}
}

// TestBuildCFGCorpus runs the builder over every generated benchmark
// contract: all classes, both ground truths, every function body. Each must
// produce a well-formed partition — the corpus exercises the dispatcher
// encodings, nested branch guards and responder services of the population
// model.
func TestBuildCFGCorpus(t *testing.T) {
	for i, class := range contractgen.Classes {
		for _, vul := range []bool{true, false} {
			c, err := contractgen.Generate(contractgen.Spec{
				Class: class, Vulnerable: vul, Seed: int64(40 + i),
			})
			if err != nil {
				t.Fatalf("generate %s vul=%v: %v", class, vul, err)
			}
			for fi := range c.Module.Code {
				body := c.Module.Code[fi].Body
				g, err := static.BuildCFG(body)
				if err != nil {
					t.Fatalf("%s vul=%v func %d: %v", class, vul, fi, err)
				}
				label := class.String()
				checkWellFormed(t, label, len(body), g)
				if got := g.Complexity(); got < 1 {
					t.Errorf("%s func %d: complexity %d < 1", label, fi, got)
				}
			}
		}
	}
}

// TestBuildCFGIfElse pins the exact block structure of an if/else body.
func TestBuildCFGIfElse(t *testing.T) {
	body := []wasm.Instr{
		{Op: wasm.OpI32Const, Imm: 1},            // 0
		{Op: wasm.OpIf, A: wasm.BlockTypeEmpty},  // 1
		{Op: wasm.OpNop},                         // 2: then arm
		{Op: wasm.OpElse},                        // 3
		{Op: wasm.OpNop},                         // 4: else arm
		{Op: wasm.OpEnd},                         // 5: end of if
		{Op: wasm.OpEnd},                         // 6: end of function
	}
	g, err := static.BuildCFG(body)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, "if-else", len(body), g)
	want := []struct {
		start, end int
		succs      []int
	}{
		{0, 2, []int{1, 2}}, // const+if: then-arm, else-arm
		{2, 4, []int{3}},    // then arm: jump over else to the if's end
		{4, 5, []int{3}},    // else arm: fall through to the if's end
		{5, 7, []int{static.ExitTarget}}, // if-end + function end
	}
	if len(g.Blocks) != len(want) {
		t.Fatalf("got %d blocks, want %d: %+v", len(g.Blocks), len(want), g.Blocks)
	}
	for i, w := range want {
		b := g.Blocks[i]
		if b.Start != w.start || b.End != w.end {
			t.Errorf("block %d: range [%d,%d), want [%d,%d)", i, b.Start, b.End, w.start, w.end)
		}
		if len(b.Succs) != len(w.succs) {
			t.Errorf("block %d: succs %v, want %v", i, b.Succs, w.succs)
			continue
		}
		for j := range w.succs {
			if b.Succs[j] != w.succs[j] {
				t.Errorf("block %d: succs %v, want %v", i, b.Succs, w.succs)
				break
			}
		}
	}
	if g.Branches != 1 {
		t.Errorf("branches = %d, want 1", g.Branches)
	}
}

// TestBuildCFGLoop pins the back edge of a loop guarded by br_if (label
// depth 0 resolves to the loop header, not past its end).
func TestBuildCFGLoop(t *testing.T) {
	body := []wasm.Instr{
		{Op: wasm.OpLoop, A: wasm.BlockTypeEmpty}, // 0
		{Op: wasm.OpI32Const, Imm: 1},             // 1
		{Op: wasm.OpBrIf, A: 0},                   // 2: back to the loop header
		{Op: wasm.OpEnd},                          // 3: end of loop
		{Op: wasm.OpEnd},                          // 4: end of function
	}
	g, err := static.BuildCFG(body)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, "loop", len(body), g)
	if len(g.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2: %+v", len(g.Blocks), g.Blocks)
	}
	// br_if: taken edge re-enters block 0 (the loop), fall-through leaves.
	if s := g.Blocks[0].Succs; len(s) != 2 || s[0] != 0 || s[1] != 1 {
		t.Errorf("loop block succs = %v, want [0 1]", s)
	}
	if s := g.Blocks[1].Succs; len(s) != 1 || s[0] != static.ExitTarget {
		t.Errorf("exit block succs = %v, want [ExitTarget]", s)
	}
}

// TestBuildCFGBrTable pins label-depth resolution across two nested blocks:
// depth 0 is the inner block's end, depth 1 the outer's.
func TestBuildCFGBrTable(t *testing.T) {
	body := []wasm.Instr{
		{Op: wasm.OpBlock, A: wasm.BlockTypeEmpty},       // 0: outer
		{Op: wasm.OpBlock, A: wasm.BlockTypeEmpty},       // 1: inner
		{Op: wasm.OpI32Const, Imm: 0},                    // 2
		{Op: wasm.OpBrTable, Table: []uint32{0}, A: 1},   // 3
		{Op: wasm.OpEnd},                                 // 4: inner end
		{Op: wasm.OpNop},                                 // 5
		{Op: wasm.OpEnd},                                 // 6: outer end
		{Op: wasm.OpEnd},                                 // 7: function end
	}
	g, err := static.BuildCFG(body)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, "br_table", len(body), g)
	if len(g.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3: %+v", len(g.Blocks), g.Blocks)
	}
	// depth 0 -> pc 4 (block 1), depth 1 -> pc 6 (block 2).
	if s := g.Blocks[0].Succs; len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Errorf("br_table succs = %v, want [1 2]", s)
	}
	if g.Branches != 1 {
		t.Errorf("branches = %d, want 1 (two distinct targets)", g.Branches)
	}
}

// TestBuildCFGMalformed checks that broken bodies error instead of
// panicking — the property FuzzCFG hammers on.
func TestBuildCFGMalformed(t *testing.T) {
	cases := map[string][]wasm.Instr{
		"empty":          {},
		"no-final-end":   {{Op: wasm.OpNop}},
		"depth-too-deep": {{Op: wasm.OpBr, A: 5}, {Op: wasm.OpEnd}},
		"code-after-end": {{Op: wasm.OpEnd}, {Op: wasm.OpNop}, {Op: wasm.OpEnd}},
		"unbalanced":     {{Op: wasm.OpBlock, A: wasm.BlockTypeEmpty}, {Op: wasm.OpEnd}},
	}
	for name, body := range cases {
		if _, err := static.BuildCFG(body); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}
