// Package static is the pre-execution analysis layer: per-function control
// flow graphs, an inter-procedural call graph (direct calls plus
// call_indirect resolved over the table/elem sections), host-import
// reachability from the exported entry points, and a lightweight
// intra-procedural taint pass from action-data sources to the host-API
// sinks the paper's five oracles reason about.
//
// Its purpose is triage: WASAI (the source paper) pays full concolic-fuzzing
// cost on every contract, even when the interesting behaviour is statically
// obvious or statically impossible. EOSAFE demonstrates that the same
// vulnerability classes can be localized cheaply from Wasm bytecode alone;
// this package computes the sound fraction of that signal (necessary
// conditions for each dynamic oracle) and a heuristic priority score, and
// the campaign engine uses them to skip provably-negative oracle/contract
// pairs and to order work. Soundness contract: a candidate flag may be a
// false positive (the fuzzer then finds nothing) but never a false negative
// with respect to internal/scanner's trace oracles — skipping is allowed
// only when the oracle provably cannot fire.
package static

import (
	"fmt"

	"repro/internal/wasm"
)

// ExitTarget marks a successor edge that leaves the function (the implicit
// function label, return, or falling off the final end).
const ExitTarget = -1

// Block is one basic block: the instructions in the half-open pc range
// [Start, End) of a function body. Every pc of the body belongs to exactly
// one block (blocks partition the body).
type Block struct {
	Start, End int
	// Succs holds successor block indices in control-transfer order
	// (branch target before fall-through for br_if; then-arm before
	// else-arm for if). ExitTarget marks a function exit edge.
	Succs []int
}

// CFG is the control flow graph of one function body.
type CFG struct {
	Blocks []Block
	// Branches counts the conditional branch sites (if, br_if and each
	// br_table with more than one distinct target) — the unit of the
	// fuzzer's coverage metric and of the triage cost estimate.
	Branches int
}

// Complexity returns the cyclomatic complexity E - N + 2 of the graph,
// counting exit edges toward E.
func (g *CFG) Complexity() int {
	edges := 0
	for _, b := range g.Blocks {
		edges += len(b.Succs)
	}
	return edges - len(g.Blocks) + 2
}

// BlockAt returns the index of the block containing pc, or -1.
func (g *CFG) BlockAt(pc int) int {
	for i, b := range g.Blocks {
		if pc >= b.Start && pc < b.End {
			return i
		}
	}
	return -1
}

// frame is one structured-control frame during the CFG scan.
type frame struct {
	pc     int  // pc of the block/loop/if instruction (-1 for the function frame)
	isLoop bool // br targets re-enter at pc instead of continuing after end
}

// BuildCFG constructs the basic-block graph of one function body. The body
// is the flat instruction stream of wasm.Code (terminated by OpEnd).
// Malformed bodies — unbalanced control structures, else outside if, label
// depths exceeding the nesting, instructions after the function's final
// end — are reported as errors, never panics, which is what FuzzCFG
// exercises.
func BuildCFG(body []wasm.Instr) (*CFG, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("static: empty function body")
	}
	if body[len(body)-1].Op != wasm.OpEnd {
		return nil, fmt.Errorf("static: body does not end with end")
	}
	meta, err := wasm.AnalyzeControl(body)
	if err != nil {
		return nil, fmt.Errorf("static: %w", err)
	}

	// endOfElse maps an else pc to the matching end of its if, so the else
	// marker (reached by falling out of the then arm) can jump over the
	// else arm.
	endOfElse := map[int]int{}
	for ifPC, elsePC := range meta.ElseOf {
		if body[elsePC].Op == wasm.OpElse {
			endOfElse[elsePC] = meta.EndOf[ifPC]
		}
	}

	// succs[pc] lists the control successors of the terminator at pc;
	// terminator[pc] marks pcs that end a basic block. Computed in one
	// linear scan that maintains the frame stack (label depth d resolves to
	// the d'th enclosing frame; the function frame is the outermost).
	succs := map[int][]int{}
	terminator := map[int]bool{}
	stack := []frame{{pc: -1}} // function frame

	target := func(pc int, depth uint32) (int, error) {
		idx := len(stack) - 1 - int(depth)
		if idx < 0 {
			return 0, fmt.Errorf("static: pc %d: label depth %d exceeds nesting %d", pc, depth, len(stack)-1)
		}
		fr := stack[idx]
		if fr.pc < 0 {
			return ExitTarget, nil
		}
		if fr.isLoop {
			return fr.pc, nil
		}
		return meta.EndOf[fr.pc], nil
	}

	for pc, in := range body {
		switch in.Op {
		case wasm.OpBlock:
			stack = append(stack, frame{pc: pc})
		case wasm.OpLoop:
			stack = append(stack, frame{pc: pc, isLoop: true})
		case wasm.OpIf:
			// Conditional: then-arm falls through to pc+1; the false edge
			// jumps to the else arm (skipping the marker) or to the end.
			falseTo := meta.EndOf[pc]
			if elsePC := meta.ElseOf[pc]; body[elsePC].Op == wasm.OpElse {
				falseTo = elsePC + 1
			}
			terminator[pc] = true
			succs[pc] = []int{pc + 1, falseTo}
			stack = append(stack, frame{pc: pc})
		case wasm.OpElse:
			// Falling into the else marker means the then arm completed:
			// control transfers to the if's end.
			terminator[pc] = true
			succs[pc] = []int{endOfElse[pc]}
		case wasm.OpEnd:
			if len(stack) == 1 {
				// The function's final end: exit.
				if pc != len(body)-1 {
					return nil, fmt.Errorf("static: pc %d: instructions after function end", pc)
				}
				terminator[pc] = true
				succs[pc] = []int{ExitTarget}
			} else {
				stack = stack[:len(stack)-1]
			}
		case wasm.OpBr:
			t, err := target(pc, in.A)
			if err != nil {
				return nil, err
			}
			terminator[pc] = true
			succs[pc] = []int{t}
		case wasm.OpBrIf:
			t, err := target(pc, in.A)
			if err != nil {
				return nil, err
			}
			terminator[pc] = true
			succs[pc] = []int{t, pc + 1}
		case wasm.OpBrTable:
			var out []int
			seen := map[int]bool{}
			add := func(depth uint32) error {
				t, err := target(pc, depth)
				if err != nil {
					return err
				}
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
				return nil
			}
			for _, d := range in.Table {
				if err := add(d); err != nil {
					return nil, err
				}
			}
			if err := add(in.A); err != nil {
				return nil, err
			}
			terminator[pc] = true
			succs[pc] = out
		case wasm.OpReturn:
			terminator[pc] = true
			succs[pc] = []int{ExitTarget}
		case wasm.OpUnreachable:
			// Traps: no successors.
			terminator[pc] = true
			succs[pc] = nil
		}
	}

	// In a balanced body the final end closes the function frame and was
	// marked a terminator above; if it instead popped a block/loop/if frame
	// the body never terminates the function.
	if !terminator[len(body)-1] {
		return nil, fmt.Errorf("static: final end closes a control frame, not the function")
	}

	// Leaders: pc 0, every branch target, and the instruction after every
	// terminator.
	leader := map[int]bool{0: true}
	for pc := range terminator {
		if pc+1 < len(body) {
			leader[pc+1] = true
		}
		for _, t := range succs[pc] {
			if t != ExitTarget {
				if t < 0 || t >= len(body) {
					return nil, fmt.Errorf("static: pc %d: branch target %d outside body", pc, t)
				}
				leader[t] = true
			}
		}
	}

	// Blocks: contiguous leader-to-leader ranges, in pc order.
	starts := make([]int, 0, len(leader))
	for pc := range leader {
		starts = append(starts, pc)
	}
	sortInts(starts)
	blockOf := map[int]int{} // leader pc -> block index
	for i, s := range starts {
		blockOf[s] = i
	}
	g := &CFG{Blocks: make([]Block, len(starts))}
	for i, s := range starts {
		end := len(body)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		b := Block{Start: s, End: end}
		last := end - 1
		if terminator[last] {
			for _, t := range succs[last] {
				if t == ExitTarget {
					b.Succs = append(b.Succs, ExitTarget)
				} else {
					b.Succs = append(b.Succs, blockOf[t])
				}
			}
		} else if end < len(body) {
			b.Succs = []int{blockOf[end]} // fall-through into the next leader
		} else {
			b.Succs = []int{ExitTarget}
		}
		g.Blocks[i] = b
	}

	for pc, in := range body {
		switch in.Op {
		case wasm.OpIf, wasm.OpBrIf:
			g.Branches++
		case wasm.OpBrTable:
			if len(succs[pc]) > 1 {
				g.Branches++
			}
		}
	}
	return g, nil
}

// sortInts is a tiny insertion sort: leader sets are small and this avoids
// pulling package sort into the hot per-function path for no reason.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
