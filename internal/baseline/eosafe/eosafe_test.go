package eosafe

import (
	"math/rand"
	"testing"

	"repro/internal/contractgen"
)

func gen(t *testing.T, spec contractgen.Spec) *contractgen.Contract {
	t.Helper()
	c, err := contractgen.Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return c
}

func TestCanonicalDispatcherAnalyzed(t *testing.T) {
	for _, vul := range []bool{true, false} {
		c := gen(t, contractgen.Spec{
			Class: contractgen.ClassFakeEOS, Vulnerable: vul,
			DispatcherStyle: contractgen.DispatchCanonical, Seed: 1,
		})
		res := Analyze(c.Module)
		if res.TimedOut {
			t.Fatalf("canonical dispatcher timed out (vul=%v)", vul)
		}
		if got := res.Report[contractgen.ClassFakeEOS]; got != vul {
			t.Errorf("FakeEOS vul=%v: verdict %v", vul, got)
		}
	}
}

func TestBlockSkipDispatcherTimesOut(t *testing.T) {
	c := gen(t, contractgen.Spec{
		Class: contractgen.ClassFakeEOS, Vulnerable: true,
		DispatcherStyle: contractgen.DispatchBlockSkip, Seed: 1,
	})
	res := Analyze(c.Module)
	if !res.TimedOut {
		t.Fatal("block-skip dispatcher should defeat the eq+if heuristic")
	}
	// Timeout policies: FakeEOS negative (FN), FakeNotif positive.
	if res.Report[contractgen.ClassFakeEOS] {
		t.Error("timed-out FakeEOS should be negative")
	}
	if !res.Report[contractgen.ClassFakeNotif] {
		t.Error("timed-out FakeNotif should be positive")
	}
}

func TestFakeNotifGuardRecognized(t *testing.T) {
	safe := gen(t, contractgen.Spec{
		Class: contractgen.ClassFakeNotif, Vulnerable: false,
		DispatcherStyle: contractgen.DispatchCanonical, Seed: 2,
	})
	if Analyze(safe.Module).Report[contractgen.ClassFakeNotif] {
		t.Error("guarded eosponser flagged")
	}
	vul := gen(t, contractgen.Spec{
		Class: contractgen.ClassFakeNotif, Vulnerable: true,
		DispatcherStyle: contractgen.DispatchCanonical, Seed: 2,
	})
	if !Analyze(vul.Module).Report[contractgen.ClassFakeNotif] {
		t.Error("guard-free eosponser not flagged")
	}
}

func TestMissAuthStatic(t *testing.T) {
	for _, vul := range []bool{true, false} {
		c := gen(t, contractgen.Spec{
			Class: contractgen.ClassMissAuth, Vulnerable: vul,
			DispatcherStyle: contractgen.DispatchCanonical, Seed: 3,
		})
		if got := Analyze(c.Module).Report[contractgen.ClassMissAuth]; got != vul {
			t.Errorf("MissAuth vul=%v: verdict %v", vul, got)
		}
	}
}

func TestRollbackOverApproximates(t *testing.T) {
	// Vulnerable: send_inline present -> flagged.
	vul := gen(t, contractgen.Spec{Class: contractgen.ClassRollback, Vulnerable: true, Seed: 4})
	if !Analyze(vul.Module).Report[contractgen.ClassRollback] {
		t.Error("reachable send_inline not flagged")
	}
	// Inaccessible template: ground-truth safe, but EOSAFE's
	// all-branches policy still flags it — the paper's ~50% precision.
	dead := gen(t, contractgen.Spec{
		Class: contractgen.ClassRollback, Vulnerable: true, Inaccessible: true, Seed: 4,
	})
	if !Analyze(dead.Module).Report[contractgen.ClassRollback] {
		t.Error("unreachable send_inline should still be flagged (over-approximation)")
	}
	// Deferred payout: no send_inline anywhere -> clean.
	safe := gen(t, contractgen.Spec{Class: contractgen.ClassRollback, Vulnerable: false, Seed: 4})
	if Analyze(safe.Module).Report[contractgen.ClassRollback] {
		t.Error("deferred payout flagged")
	}
}

func TestObfuscationDefeatsStaticAnalysis(t *testing.T) {
	c := gen(t, contractgen.Spec{
		Class: contractgen.ClassFakeEOS, Vulnerable: true,
		DispatcherStyle: contractgen.DispatchCanonical, Seed: 5,
	})
	// Sanity: detectable before obfuscation.
	if !Analyze(c.Module).Report[contractgen.ClassFakeEOS] {
		t.Fatal("baseline detection failed pre-obfuscation")
	}
	rng := rand.New(rand.NewSource(5))
	if _, err := contractgen.Obfuscate(c.Module, contractgen.ObfuscateOptions{
		Popcount: true, OpaqueRecursion: true, Rng: rng,
	}); err != nil {
		t.Fatal(err)
	}
	res := Analyze(c.Module)
	if !res.TimedOut {
		t.Error("obfuscation should force a timeout")
	}
	if res.Report[contractgen.ClassFakeEOS] {
		t.Error("obfuscated FakeEOS should be a (false) negative — 0 TP in Table 5")
	}
}

func TestBlockinfoDepUnsupported(t *testing.T) {
	c := gen(t, contractgen.Spec{Class: contractgen.ClassBlockinfoDep, Vulnerable: true, Seed: 6})
	res := Analyze(c.Module)
	if res.Supported[contractgen.ClassBlockinfoDep] {
		t.Error("EOSAFE should not claim BlockinfoDep support")
	}
}
