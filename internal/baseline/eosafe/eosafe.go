// Package eosafe re-implements the EOSAFE baseline (He et al., USENIX
// Security 2021) as the paper characterizes it: a static symbolic analyzer
// whose path discovery "depends on a heuristic strategy to match the
// dispatcher patterns" and whose per-class policies explain its Table 4-6
// numbers:
//
//   - it only recognizes the canonical eq+if dispatcher encoding, reporting
//     FNs (timeouts) on everything else (Fake EOS recall 44.9%);
//   - Fake Notif treats a timeout as a positive sample (recall 98.3%,
//     precision 67.4%);
//   - Rollback "analyzes all branches in the conditional states, even if
//     the constraints are impossible to be satisfied" — a whole-module
//     reachability over-approximation (precision ~50%);
//   - the popcount obfuscation erases the comparison patterns it matches
//     (0 TP on obfuscated Fake EOS / MissAuth), and the opaque recursion
//     blows up its path exploration into a timeout;
//   - BlockinfoDep is not supported.
package eosafe

import (
	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/wasm"
)

// Result is EOSAFE's verdict for one contract.
type Result struct {
	Report map[contractgen.Class]bool
	// Supported marks the classes the tool analyzes at all.
	Supported map[contractgen.Class]bool
	// TimedOut reports that path discovery failed (unmatched dispatcher or
	// exploded exploration).
	TimedOut bool
}

// Analyze statically inspects the contract bytecode.
func Analyze(m *wasm.Module) *Result {
	res := &Result{
		Report: map[contractgen.Class]bool{},
		Supported: map[contractgen.Class]bool{
			contractgen.ClassFakeEOS:   true,
			contractgen.ClassFakeNotif: true,
			contractgen.ClassMissAuth:  true,
			contractgen.ClassRollback:  true,
		},
	}
	a := newAnalysis(m)

	pathOK := a.dispatcherMatched() && !a.hasRecursion()
	res.TimedOut = !pathOK

	// Fake EOS: needs a resolvable path from apply to the transfer arm;
	// then the guard is the comparison of the code parameter against
	// N(eosio.token).
	if pathOK {
		res.Report[contractgen.ClassFakeEOS] = !a.hasTokenGuard()
	}

	// Fake Notif: timeout counts as a positive sample.
	if pathOK {
		res.Report[contractgen.ClassFakeNotif] = !a.hasSelfGuard()
	} else {
		res.Report[contractgen.ClassFakeNotif] = true
	}

	// MissAuth: per-action static ordering of permission APIs vs effects.
	if pathOK {
		res.Report[contractgen.ClassMissAuth] = a.hasUnauthedEffect()
	}

	// Rollback: whole-module over-approximation — any send_inline callsite
	// counts, reachable or not.
	res.Report[contractgen.ClassRollback] = a.callsImport("send_inline")

	return res
}

type analysis struct {
	m       *wasm.Module
	imports map[string]uint32
	applyFn *wasm.Code
	actions []*wasm.Code // bodies reachable through the dispatch table
}

func newAnalysis(m *wasm.Module) *analysis {
	a := &analysis{m: m, imports: map[string]uint32{}}
	idx := uint32(0)
	for _, imp := range m.Imports {
		if imp.Kind == wasm.ExternalFunc {
			a.imports[imp.Name] = idx
			idx++
		}
	}
	if applyIdx, ok := m.ExportedFunc("apply"); ok {
		a.applyFn = m.CodeFor(applyIdx)
	}
	for _, el := range m.Elems {
		for _, fi := range el.Funcs {
			if c := m.CodeFor(fi); c != nil {
				a.actions = append(a.actions, c)
			}
		}
	}
	return a
}

// dispatcherMatched recognizes the canonical SDK dispatcher: an i64.const
// name immediately compared with i64.eq feeding an if, within the apply
// body, eventually reaching a call_indirect. The popcount obfuscation
// removes the i64.eq and defeats the matcher.
func (a *analysis) dispatcherMatched() bool {
	if a.applyFn == nil {
		return false
	}
	body := a.applyFn.Body
	sawEqIf := false
	sawIndirect := false
	for i := 0; i+2 < len(body); i++ {
		if body[i].Op == wasm.OpI64Const && body[i+1].Op == wasm.OpI64Eq && body[i+2].Op == wasm.OpIf {
			sawEqIf = true
		}
	}
	for _, in := range body {
		if in.Op == wasm.OpCallIndirect {
			sawIndirect = true
		}
	}
	return sawEqIf && sawIndirect
}

// hasRecursion detects direct self-recursion anywhere in the module — the
// opaque-recursion obfuscation's signature. A symbolic explorer that
// follows both arms of the opaque predicate diverges here, so the analysis
// is treated as timed out.
func (a *analysis) hasRecursion() bool {
	imported := uint32(a.m.NumImportedFuncs())
	for i := range a.m.Code {
		self := imported + uint32(i)
		for _, in := range a.m.Code[i].Body {
			if in.Op == wasm.OpCall && in.A == self {
				return true
			}
		}
	}
	return false
}

// hasTokenGuard looks for a comparison against N(eosio.token) in apply.
func (a *analysis) hasTokenGuard() bool {
	if a.applyFn == nil {
		return false
	}
	body := a.applyFn.Body
	for i := 0; i+1 < len(body); i++ {
		if body[i].Op == wasm.OpI64Const && body[i].Imm == uint64(eos.TokenContract) &&
			(body[i+1].Op == wasm.OpI64Eq || body[i+1].Op == wasm.OpI64Ne) {
			return true
		}
	}
	return false
}

// hasSelfGuard looks for the to == _self comparison shape inside action
// bodies: two local/global reads feeding i64.eq/i64.ne. The popcount pass
// (when it hits the guard) erases the comparison opcode.
func (a *analysis) hasSelfGuard() bool {
	for _, c := range a.actions {
		body := c.Body
		for i := 0; i+2 < len(body); i++ {
			read1 := body[i].Op == wasm.OpLocalGet || body[i].Op == wasm.OpGlobalGet
			read2 := body[i+1].Op == wasm.OpLocalGet || body[i+1].Op == wasm.OpGlobalGet
			cmp := body[i+2].Op == wasm.OpI64Eq || body[i+2].Op == wasm.OpI64Ne
			if read1 && read2 && cmp {
				return true
			}
		}
	}
	return false
}

// hasUnauthedEffect reports an action body with a side-effect API call not
// preceded by a permission API call.
func (a *analysis) hasUnauthedEffect() bool {
	auths := map[uint32]bool{}
	effects := map[uint32]bool{}
	for _, name := range []string{"require_auth", "require_auth2", "has_auth"} {
		if id, ok := a.imports[name]; ok {
			auths[id] = true
		}
	}
	for _, name := range []string{"send_inline", "send_deferred", "db_store_i64", "db_update_i64", "db_remove_i64"} {
		if id, ok := a.imports[name]; ok {
			effects[id] = true
		}
	}
	for i, c := range a.actions {
		if i == 0 {
			// The first table slot is the eosponser: its effects are gated
			// by the transfer notification, not by explicit permission, and
			// EOSAFE's MissAuth analysis scopes to directly-invocable
			// actions.
			continue
		}
		authSeen := false
		for _, in := range c.Body {
			if in.Op != wasm.OpCall {
				continue
			}
			if auths[in.A] {
				authSeen = true
			}
			if effects[in.A] && !authSeen {
				return true
			}
		}
	}
	return false
}

// callsImport reports any call to the named import anywhere in the module.
func (a *analysis) callsImport(name string) bool {
	id, ok := a.imports[name]
	if !ok {
		return false
	}
	for i := range a.m.Code {
		for _, in := range a.m.Code[i].Body {
			if in.Op == wasm.OpCall && in.A == id {
				return true
			}
		}
	}
	return false
}
