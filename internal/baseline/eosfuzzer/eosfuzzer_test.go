package eosfuzzer

import (
	"testing"

	"repro/internal/contractgen"
	"repro/internal/eos"
)

func run(t *testing.T, spec contractgen.Spec) *Result {
	t.Helper()
	c, err := contractgen.Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	res, err := Run(c.Module, c.ABI, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestDetectsPlainFakeEOS(t *testing.T) {
	res := run(t, contractgen.Spec{Class: contractgen.ClassFakeEOS, Vulnerable: true, Seed: 1})
	if !res.Report[contractgen.ClassFakeEOS] {
		t.Error("plain Fake EOS missed")
	}
	res = run(t, contractgen.Spec{Class: contractgen.ClassFakeEOS, Vulnerable: false, Seed: 1})
	if res.Report[contractgen.ClassFakeEOS] {
		t.Error("guarded contract flagged")
	}
}

func TestMissesBranchGuardedService(t *testing.T) {
	// The service (and its observable DB write) hides behind a 64-bit
	// amount check random seeds cannot hit, so the behaviour-based oracle
	// misses (a single-byte memo command would eventually fall to random
	// bytes, which is why the population mixes both).
	spec := contractgen.Spec{
		Class: contractgen.ClassFakeNotif, Vulnerable: true,
		EosponserBranches: []contractgen.BranchCheck{{Field: "amount", Value: 123456789}},
		Seed:              2,
	}
	res := run(t, spec)
	if res.Report[contractgen.ClassFakeNotif] {
		t.Error("behaviour-based oracle should miss the gated service")
	}
}

func TestDetectsUngatedFakeNotif(t *testing.T) {
	res := run(t, contractgen.Spec{Class: contractgen.ClassFakeNotif, Vulnerable: true, Seed: 3})
	if !res.Report[contractgen.ClassFakeNotif] {
		t.Error("ungated Fake Notif missed")
	}
}

func TestVerificationOracleFlaw(t *testing.T) {
	// Complicated verification makes every transaction revert; the flawed
	// oracle then reports Fake EOS positive even for a safe contract.
	spec := contractgen.Spec{
		Class: contractgen.ClassFakeEOS, Vulnerable: false,
		Verification: []contractgen.VerCheck{{Field: "amount", Value: 987654321}},
		Seed:         4,
	}
	res := run(t, spec)
	if !res.Report[contractgen.ClassFakeEOS] {
		t.Error("the all-transactions-reverted flaw should produce a false positive")
	}
}

func TestBlockinfoDepAlwaysNegative(t *testing.T) {
	res := run(t, contractgen.Spec{Class: contractgen.ClassBlockinfoDep, Vulnerable: true, Seed: 5})
	if res.Report[contractgen.ClassBlockinfoDep] {
		t.Error("EOSFuzzer's BlockinfoDep oracle should never fire on reveal-style samples")
	}
}

func TestCoverageMonotonic(t *testing.T) {
	res := run(t, contractgen.Spec{Class: contractgen.ClassRollback, Vulnerable: true, Seed: 6})
	last := 0
	for _, p := range res.CoverageOverTime {
		if p.Branches < last {
			t.Fatalf("coverage decreased: %d -> %d", last, p.Branches)
		}
		last = p.Branches
	}
	if res.Coverage == 0 {
		t.Error("no coverage at all")
	}
	if res.Coverage != last {
		t.Errorf("final coverage %d != last sample %d", res.Coverage, last)
	}
}

func TestUnsupportedClassesStayFalse(t *testing.T) {
	res := run(t, contractgen.Spec{Class: contractgen.ClassMissAuth, Vulnerable: true, Seed: 7})
	if res.Report[contractgen.ClassMissAuth] || res.Report[contractgen.ClassRollback] {
		t.Error("unsupported classes must remain unflagged")
	}
	_ = eos.ActionTransfer
}
