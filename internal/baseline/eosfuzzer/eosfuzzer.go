// Package eosfuzzer re-implements the EOSFuzzer baseline (Huang et al.,
// Internetware 2020) as the paper characterizes it: a black-box fuzzer that
// "only generates random seeds without leveraging feedback" and whose
// oracles carry the documented flaws:
//
//   - Fake EOS: "it reports positive no matter which action is invoked
//     after receiving fake EOS" and, under complicated verification, "it
//     outputs a positive report in detecting Fake EOS if none of the
//     transactions is executed successfully" (§4.2-§4.3);
//   - Fake Notif: behaviour-based — it needs the forged notification to
//     produce an observable state change, so guard-free contracts whose
//     service hides behind unexplored branches are missed (§4.2);
//   - BlockinfoDep: it only monitors transfer handling, never direct
//     actions, and therefore scores 0 on the reveal-style samples (§4.2);
//   - MissAuth and Rollback: unsupported (the '-' cells of Table 4).
package eosfuzzer

import (
	"fmt"
	"math/rand"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/instrument"
	"repro/internal/trace"
	"repro/internal/wasm"
)

// Campaign account names (shared shape with the WASAI engine).
var (
	attackerName  = eos.MustName("attacker")
	fakeTokenName = eos.MustName("fake.token")
	agentName     = eos.MustName("fake.notif")
	victimName    = eos.MustName("victim")
)

// Config tunes the baseline.
type Config struct {
	Iterations int
	Seed       int64
}

// DefaultConfig mirrors the WASAI campaign budget for fair comparison.
func DefaultConfig() Config { return Config{Iterations: 240, Seed: 1} }

// Result is the baseline's campaign outcome.
type Result struct {
	// Report covers only the classes EOSFuzzer supports; the others stay
	// false (Table 4 dashes).
	Report           map[contractgen.Class]bool
	Coverage         int
	CoverageOverTime []CoveragePoint
}

// CoveragePoint samples cumulative branch coverage.
type CoveragePoint struct {
	Iteration int
	Branches  int
}

// Run executes a random-seed campaign against the contract.
func Run(mod *wasm.Module, contractABI *abi.ABI, cfg Config) (*Result, error) {
	res, err := instrument.Instrument(mod, instrument.ModeSparse)
	if err != nil {
		return nil, fmt.Errorf("eosfuzzer: instrument: %w", err)
	}
	bc := chain.New()
	bc.Collector = trace.NewCollector()
	if err := bc.DeployModule(victimName, res.Module, contractABI, res.Sites); err != nil {
		return nil, fmt.Errorf("eosfuzzer: deploy: %w", err)
	}
	bc.DeployNative(fakeTokenName, &chain.TokenContract{Issuer: fakeTokenName, Sym: eos.EOSSymbol}, abi.TransferABI())
	bc.DeployNative(agentName, &chain.ForwarderAgent{Victim: victimName}, nil)
	bc.CreateAccount(attackerName)
	for _, fund := range []func() error{
		func() error { return bc.Issue(eos.TokenContract, attackerName, eos.EOS(1_000_000_000_000)) },
		func() error { return bc.Issue(eos.TokenContract, victimName, eos.EOS(1_000_000_000_000)) },
		func() error { return bc.Issue(fakeTokenName, attackerName, eos.EOS(1_000_000_000_000)) },
	} {
		if err := fund(); err != nil {
			return nil, fmt.Errorf("eosfuzzer: funding: %w", err)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	coverage := map[trace.BranchKey]struct{}{}
	out := &Result{Report: map[contractgen.Class]bool{}}

	var (
		anyCommitted    bool
		fakeAttempted   bool
		fakeEOSPositive bool
		fakeNotifPos    bool
	)

	actions := make([]eos.Name, 0, len(contractABI.Actions))
	for _, a := range contractABI.Actions {
		actions = append(actions, a.Name)
	}

	for i := 0; i < cfg.Iterations; i++ {
		kind := i % 4
		params := randomTransferArgs(rng)
		var act chain.Action
		switch kind {
		case 0: // fake EOS: direct invocation of the eosponser
			fakeAttempted = true
			act = chain.Action{Account: victimName, Name: eos.ActionTransfer, Data: encode(params)}
			act.Authorization = auth(attackerName)
		case 1: // fake EOS: counterfeit token transfer
			fakeAttempted = true
			params.From, params.To = attackerName, victimName
			params.Quantity = clamp(params.Quantity)
			act = chain.Action{Account: fakeTokenName, Name: eos.ActionTransfer, Data: encode(params)}
			act.Authorization = auth(attackerName)
		case 2: // forged notification through the agent
			params.From, params.To = attackerName, agentName
			params.Quantity = clamp(params.Quantity)
			act = chain.Action{Account: eos.TokenContract, Name: eos.ActionTransfer, Data: encode(params)}
			act.Authorization = auth(attackerName)
		default: // a random action with random data
			name := actions[rng.Intn(len(actions))]
			act = chain.Action{Account: victimName, Name: name, Data: encode(params)}
			signer := params.From
			bc.CreateAccount(signer)
			act.Authorization = auth(signer)
		}

		rcpt := bc.PushTransaction(chain.Transaction{Actions: []chain.Action{act}})
		if !rcpt.Reverted() {
			anyCommitted = true
		}

		victimEffect := false
		for _, op := range rcpt.DBOps {
			if op.Contract == victimName && op.Kind == chain.DBWrite {
				victimEffect = true
			}
		}
		if len(rcpt.InlineSent) > 0 {
			victimEffect = true
		}

		// Oracle flaw: any observable behaviour after a fake-EOS attempt is
		// attributed to the fake EOS.
		if fakeAttempted && victimEffect && !rcpt.Reverted() {
			fakeEOSPositive = true
		}
		if kind == 2 && victimEffect && !rcpt.Reverted() {
			fakeNotifPos = true
		}

		for _, tr := range rcpt.Traces {
			if tr.Contract != victimName {
				continue
			}
			for bk := range tr.Branches() {
				coverage[bk] = struct{}{}
			}
		}
		out.CoverageOverTime = append(out.CoverageOverTime, CoveragePoint{Iteration: i + 1, Branches: len(coverage)})
	}

	// Oracle flaw under complicated verification: when every transaction
	// reverted, EOSFuzzer cannot execute the target at all and flags Fake
	// EOS positive.
	if !anyCommitted {
		fakeEOSPositive = true
	}
	out.Report[contractgen.ClassFakeEOS] = fakeEOSPositive
	out.Report[contractgen.ClassFakeNotif] = fakeNotifPos
	// BlockinfoDep: monitored on the transfer path only; the reveal-style
	// samples never trip it, so the verdict is the oracle's constant no.
	out.Report[contractgen.ClassBlockinfoDep] = false
	out.Coverage = len(coverage)
	return out, nil
}

func auth(actor eos.Name) []chain.PermissionLevel {
	return []chain.PermissionLevel{{Actor: actor, Permission: eos.ActiveAuth}}
}

func encode(args chain.TransferArgs) []byte { return chain.EncodeTransfer(args) }

func clamp(a eos.Asset) eos.Asset {
	if a.Amount <= 0 {
		a.Amount = 1
	}
	if a.Amount > 1_000_000_000 {
		a.Amount = 1_000_000_000
	}
	a.Symbol = eos.EOSSymbol
	return a
}

func randomTransferArgs(rng *rand.Rand) chain.TransferArgs {
	known := []eos.Name{attackerName, victimName, agentName}
	pick := func() eos.Name {
		if rng.Intn(3) == 0 {
			return eos.Name(rng.Uint64())
		}
		return known[rng.Intn(len(known))]
	}
	memo := make([]byte, rng.Intn(10))
	for i := range memo {
		memo[i] = byte('a' + rng.Intn(26))
	}
	return chain.TransferArgs{
		From:     pick(),
		To:       pick(),
		Quantity: eos.Asset{Amount: int64(rng.Intn(2_000_000)), Symbol: eos.EOSSymbol},
		Memo:     string(memo),
	}
}
