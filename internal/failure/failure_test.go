package failure

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestClassRoundTrip(t *testing.T) {
	for _, c := range append([]Class{None}, Classes...) {
		if got := ParseClass(c.String()); got != c {
			t.Errorf("ParseClass(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if got := ParseClass("no-such-class"); got != Unclassified {
		t.Errorf("unknown name parsed as %v, want Unclassified", got)
	}
}

func TestWrapAndClassOf(t *testing.T) {
	base := errors.New("boom")
	err := Wrap(Trap, base)
	if got := ClassOf(err); got != Trap {
		t.Fatalf("ClassOf = %v, want Trap", got)
	}
	if !errors.Is(err, base) {
		t.Fatal("Wrap broke the errors.Is chain")
	}
	// Intermediate fmt.Errorf wrapping is transparent.
	outer := fmt.Errorf("job 3: %w", err)
	if got := ClassOf(outer); got != Trap {
		t.Fatalf("ClassOf through fmt.Errorf = %v, want Trap", got)
	}
	// Re-wrapping with a different class keeps the original classification.
	if got := ClassOf(Wrap(Timeout, outer)); got != Trap {
		t.Fatalf("re-wrap overrode class: got %v, want Trap", got)
	}
}

func TestClassOfFallbacks(t *testing.T) {
	if got := ClassOf(nil); got != None {
		t.Errorf("ClassOf(nil) = %v", got)
	}
	if got := ClassOf(context.DeadlineExceeded); got != Timeout {
		t.Errorf("ClassOf(DeadlineExceeded) = %v, want Timeout", got)
	}
	if got := ClassOf(fmt.Errorf("ctx: %w", context.Canceled)); got != Timeout {
		t.Errorf("ClassOf(wrapped Canceled) = %v, want Timeout", got)
	}
	if got := ClassOf(errors.New("bare")); got != Unclassified {
		t.Errorf("ClassOf(bare) = %v, want Unclassified", got)
	}
}

func TestRetryable(t *testing.T) {
	if Decode.Retryable() {
		t.Error("decode failures are deterministic and must not retry")
	}
	for _, c := range []Class{Timeout, Panic, SolverExhausted, Trap, OomGuard} {
		if !c.Retryable() {
			t.Errorf("%v should be retryable", c)
		}
	}
}

func TestWrapNil(t *testing.T) {
	if Wrap(Trap, nil) != nil {
		t.Error("Wrap(nil) must be nil")
	}
}
