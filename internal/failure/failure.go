// Package failure is the campaign engine's failure taxonomy: a small,
// closed set of failure classes that replaces stringly-typed job errors.
// EOSFuzzer and WANA both report per-contract timeouts and crashes as
// first-class experimental artifacts; to do the same at campaign scale —
// and to drive the retry-with-degradation policy — a failed job must carry
// *why* it failed in a form the engine can branch on.
//
// The taxonomy is threaded through the layers that can fail a job:
//
//   - decode: the contract binary or ABI cannot be decoded, validated, or
//     instrumented. Deterministic and permanent — never retried.
//   - trap: an execution fault escalated to job level (injected host
//     errors, infrastructure invariant violations). Ordinary per-
//     transaction traps revert the transaction and are fuzzing signal,
//     not failures.
//   - timeout: the per-job deadline (or the campaign context) cancelled
//     the job.
//   - solver-exhausted: the symbolic stage gave up — the SAT budget was
//     starved or the unknown-result budget was exhausted.
//   - panic: a recovered panic (crashing contract, detector, or injected
//     fault).
//   - oom-guard: a resource guard tripped (fuel/stack/memory budgets).
//
// Errors are classified by wrapping them with Wrap (or constructing them
// with Newf); ClassOf recovers the class anywhere up the error chain, so
// intermediate fmt.Errorf("...: %w", err) wrapping is transparent.
package failure

import (
	"context"
	"errors"
	"fmt"
)

// Class is one failure-taxonomy class.
type Class int

// The failure classes. None is the zero value (no classified failure).
const (
	None Class = iota
	Decode
	Trap
	Timeout
	SolverExhausted
	Panic
	OomGuard
	// Unclassified is the fallback for errors carrying no class.
	Unclassified
)

// Classes lists the real classes in canonical reporting order (None and
// Unclassified excluded).
var Classes = []Class{Decode, Trap, Timeout, SolverExhausted, Panic, OomGuard}

// String names the class (the journal and bench tables use these names).
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Decode:
		return "decode"
	case Trap:
		return "trap"
	case Timeout:
		return "timeout"
	case SolverExhausted:
		return "solver-exhausted"
	case Panic:
		return "panic"
	case OomGuard:
		return "oom-guard"
	case Unclassified:
		return "unclassified"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ParseClass inverts String. Unknown names parse as Unclassified, so a
// journal written by a newer version still loads.
func ParseClass(s string) Class {
	for _, c := range append([]Class{None}, Classes...) {
		if c.String() == s {
			return c
		}
	}
	return Unclassified
}

// Retryable reports whether a failure of this class may succeed on a
// retried (possibly degraded) attempt. Decode failures are deterministic
// properties of the input and never retried; everything else is assumed
// transient or budget-bound.
func (c Class) Retryable() bool {
	switch c {
	case Timeout, Panic, SolverExhausted, Trap, OomGuard:
		return true
	default:
		return false
	}
}

// Error attaches a Class to an underlying error. It satisfies errors.Is /
// errors.As chains transparently via Unwrap.
type Error struct {
	Class Class
	Err   error
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("[%s] %v", e.Class, e.Err) }

// Unwrap exposes the underlying error.
func (e *Error) Unwrap() error { return e.Err }

// Wrap classifies err. A nil err returns nil; an err already carrying a
// class is returned unchanged (the innermost classification wins — it was
// made closest to the fault).
func Wrap(c Class, err error) error {
	if err == nil {
		return nil
	}
	var fe *Error
	if errors.As(err, &fe) {
		return err
	}
	return &Error{Class: c, Err: err}
}

// Newf builds a classified error from a format string.
func Newf(c Class, format string, args ...any) error {
	return &Error{Class: c, Err: fmt.Errorf(format, args...)}
}

// ClassOf recovers the failure class of err: the class of the innermost
// *Error in the chain, or Timeout for bare context errors, or
// Unclassified for anything else. A nil err is None.
func ClassOf(err error) Class {
	if err == nil {
		return None
	}
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Class
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return Timeout
	}
	return Unclassified
}
