package symbolic

// Incremental query-group solving for flip families.
//
// All flip queries of one trace share a long path-constraint prefix and
// differ only in the final negated conjunct. A groupSolver bit-blasts each
// distinct conjunct exactly once into one shared SAT instance, guards it
// behind an activation literal (¬act ∨ gate), and answers each query as an
// assumption solve over the activation literals of its conjuncts — retaining
// learned clauses, VSIDS activity, and saved phases across the whole family.
//
// Determinism contract: a groupSolver only ever serves *Unsat* answers. A
// satisfying assignment found under retained heuristic state can differ from
// the one the fresh per-query solver would find, and Sat models feed the
// adaptive-seed queue, so Sat (and Unknown) results always fall back to the
// unchanged fresh path. Unsat under assumptions implies the plain conjunction
// is unsat (activation literals only weaken clauses), the verdict carries no
// model, and FindingsDigest/StateDigest are verdict- and coverage-shaped, so
// serving it early is byte-invisible to the digests.
//
// A groupSolver is NOT safe for concurrent use; the solver pool drives it
// from the sequential incremental pre-pass only.
type groupSolver struct {
	//wasai:localcache shared instance for one flip family (one SolvePoolCtx
	// call); retained learned clauses only ever serve Unsat proofs, so the
	// reuse cannot reach a digest (see the determinism contract above).
	b *blaster
	//wasai:localcache activation literal per blasted conjunct; lives for one
	// flip family (one SolvePoolCtx call), discarded with the groupSolver.
	acts map[*Expr]Lit
	//wasai:localcache conjuncts whose bit-blast failed (e.g. non-power-of-two
	// shift width); queries containing them fall back to the fresh path.
	bad map[*Expr]bool
}

func newGroupSolver() *groupSolver {
	return &groupSolver{
		b:    newBlaster(),
		acts: make(map[*Expr]Lit),
		bad:  make(map[*Expr]bool),
	}
}

// activate returns the activation literal for conjunct e, blasting it into
// the shared instance on first sight. The caller must have backtracked the
// SAT instance to the root level. ok=false marks a conjunct that cannot be
// blasted; a failed blast may leave orphan gate definitions behind, which is
// harmless — without an activation clause they constrain nothing.
func (g *groupSolver) activate(e *Expr) (Lit, bool) {
	if g.bad[e] {
		return Lit(0), false
	}
	if act, ok := g.acts[e]; ok {
		return act, true
	}
	lits, err := g.b.blast(e)
	if err != nil {
		g.bad[e] = true
		return Lit(0), false
	}
	act := g.b.fresh()
	g.b.sat.AddClause(act.Flip(), lits[0])
	g.acts[e] = act
	return act, true
}

// proveUnsat attempts to prove the conjunction unsatisfiable with one
// assumption solve on the shared instance, under the given per-call conflict
// budget. It returns true only on a definite Unsat; Sat, Unknown, budget
// exhaustion, stop, and unblastable conjuncts all return false so the caller
// falls back to the fresh per-query path.
func (g *groupSolver) proveUnsat(constraints []*Expr, maxConflicts int64, stop <-chan struct{}) bool {
	// AddClause and blast-time unit clauses assume root level; SolveAssuming
	// also resets, but the clauses are added *before* the solve.
	g.b.sat.backtrack(0)
	assumptions := make([]Lit, 0, len(constraints))
	for _, e := range constraints {
		act, ok := g.activate(e)
		if !ok {
			return false
		}
		assumptions = append(assumptions, act)
	}
	g.b.sat.MaxConflicts = maxConflicts
	g.b.sat.Stop = stop
	sat, ok := g.b.sat.SolveAssuming(assumptions)
	return ok && !sat
}

// conflicts and props expose the shared instance's cumulative counters so the
// pool can report CDCL work saved versus fresh solving.
func (g *groupSolver) conflicts() int64 { return g.b.sat.conflicts }
func (g *groupSolver) props() int64     { return g.b.sat.props }
