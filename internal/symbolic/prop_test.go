package symbolic

import (
	"math/rand"
	"testing"
)

// refNode is a reference expression tree built WITHOUT the simplifying
// constructors; refEval computes its value by the raw operator semantics.
// The property: building the same tree through Ctx's simplifying
// constructors and evaluating with Eval gives the same value — i.e. every
// rewrite rule is semantics-preserving.
type refNode struct {
	kind   Kind
	width  uint8
	val    uint64
	name   string
	hi, lo uint8
	kids   []*refNode
}

func refEval(n *refNode, m Model) uint64 {
	msk := mask(n.width)
	switch n.kind {
	case KConst:
		return n.val & msk
	case KVar:
		return m[n.name] & msk
	case KNot:
		return ^refEval(n.kids[0], m) & msk
	case KConcat:
		return (refEval(n.kids[0], m)<<n.kids[1].width | refEval(n.kids[1], m)) & msk
	case KExtract:
		return (refEval(n.kids[0], m) >> n.lo) & msk
	case KZext:
		return refEval(n.kids[0], m) & msk
	case KSext:
		return uint64(signExtend(refEval(n.kids[0], m), n.kids[0].width)) & msk
	case KEq:
		if refEval(n.kids[0], m) == refEval(n.kids[1], m) {
			return 1
		}
		return 0
	case KUlt:
		if refEval(n.kids[0], m) < refEval(n.kids[1], m) {
			return 1
		}
		return 0
	case KSlt:
		if signExtend(refEval(n.kids[0], m), n.kids[0].width) < signExtend(refEval(n.kids[1], m), n.kids[1].width) {
			return 1
		}
		return 0
	case KIte:
		if refEval(n.kids[0], m) != 0 {
			return refEval(n.kids[1], m) & msk
		}
		return refEval(n.kids[2], m) & msk
	case KPopcnt:
		v := refEval(n.kids[0], m)
		var c uint64
		for v != 0 {
			c += v & 1
			v >>= 1
		}
		return c & msk
	default:
		a := refEval(n.kids[0], m)
		b := refEval(n.kids[1], m)
		v, ok := foldBin(n.kind, a, b, n.width)
		if !ok {
			// Division by zero in the reference: use the SMT-LIB totals,
			// matching Eval.
			switch n.kind {
			case KUDiv:
				return msk
			case KURem:
				return a & msk
			case KSDiv:
				if signExtend(a, n.width) >= 0 {
					return msk
				}
				return 1
			case KSRem:
				return a & msk
			}
		}
		return v
	}
}

// build converts the reference tree through the simplifying constructors.
func build(c *Ctx, n *refNode) *Expr {
	switch n.kind {
	case KConst:
		return c.Const(n.val, n.width)
	case KVar:
		return c.Var(n.name, n.width)
	case KNot:
		return c.Not(build(c, n.kids[0]))
	case KConcat:
		return c.Concat(build(c, n.kids[0]), build(c, n.kids[1]))
	case KExtract:
		return c.Extract(build(c, n.kids[0]), n.hi, n.lo)
	case KZext:
		return c.ZExt(build(c, n.kids[0]), n.width)
	case KSext:
		return c.SExt(build(c, n.kids[0]), n.width)
	case KEq:
		return c.Eq(build(c, n.kids[0]), build(c, n.kids[1]))
	case KUlt:
		return c.Ult(build(c, n.kids[0]), build(c, n.kids[1]))
	case KSlt:
		return c.Slt(build(c, n.kids[0]), build(c, n.kids[1]))
	case KIte:
		return c.Ite(build(c, n.kids[0]), build(c, n.kids[1]), build(c, n.kids[2]))
	case KPopcnt:
		return c.Popcount(build(c, n.kids[0]))
	default:
		a, b := build(c, n.kids[0]), build(c, n.kids[1])
		switch n.kind {
		case KAdd:
			return c.Add(a, b)
		case KSub:
			return c.Sub(a, b)
		case KMul:
			return c.Mul(a, b)
		case KUDiv:
			return c.UDiv(a, b)
		case KSDiv:
			return c.SDiv(a, b)
		case KURem:
			return c.URem(a, b)
		case KSRem:
			return c.SRem(a, b)
		case KAnd:
			return c.And(a, b)
		case KOr:
			return c.Or(a, b)
		case KXor:
			return c.Xor(a, b)
		case KShl:
			return c.Shl(a, b)
		case KLshr:
			return c.Lshr(a, b)
		case KAshr:
			return c.Ashr(a, b)
		case KRotl:
			return c.Rotl(a, b)
		default:
			return c.Rotr(a, b)
		}
	}
}

// randTree draws a random reference tree of the given width.
func randTree(rng *rand.Rand, width uint8, depth int) *refNode {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			return &refNode{kind: KConst, width: width, val: randVal(rng)}
		}
		names := []string{"x", "y", "z"}
		return &refNode{kind: KVar, width: width, name: names[rng.Intn(len(names))]}
	}
	binKinds := []Kind{
		KAdd, KSub, KMul, KUDiv, KSDiv, KURem, KSRem, KAnd, KOr, KXor,
		KShl, KLshr, KAshr, KRotl, KRotr,
	}
	switch rng.Intn(8) {
	case 0: // unary not
		return &refNode{kind: KNot, width: width, kids: []*refNode{randTree(rng, width, depth-1)}}
	case 1: // popcount
		return &refNode{kind: KPopcnt, width: width, kids: []*refNode{randTree(rng, width, depth-1)}}
	case 2: // comparison widened back via ite
		cmpKinds := []Kind{KEq, KUlt, KSlt}
		k := cmpKinds[rng.Intn(len(cmpKinds))]
		cmp := &refNode{kind: k, width: 1, kids: []*refNode{
			randTree(rng, width, depth-1), randTree(rng, width, depth-1),
		}}
		return &refNode{kind: KIte, width: width, kids: []*refNode{
			cmp, randTree(rng, width, depth-1), randTree(rng, width, depth-1),
		}}
	case 3: // extract of a wider expression
		if width < 64 {
			wider := uint8(64)
			lo := uint8(rng.Intn(int(wider - width + 1)))
			return &refNode{kind: KExtract, width: width, hi: lo + width - 1, lo: lo,
				kids: []*refNode{randTree(rng, wider, depth-1)}}
		}
		fallthrough
	case 4: // zext/sext of a narrower expression
		if width > 8 {
			narrower := uint8(8)
			k := KZext
			if rng.Intn(2) == 0 {
				k = KSext
			}
			return &refNode{kind: k, width: width, kids: []*refNode{randTree(rng, narrower, depth-1)}}
		}
		fallthrough
	default:
		k := binKinds[rng.Intn(len(binKinds))]
		return &refNode{kind: k, width: width, kids: []*refNode{
			randTree(rng, width, depth-1), randTree(rng, width, depth-1),
		}}
	}
}

func randVal(rng *rand.Rand) uint64 {
	switch rng.Intn(4) {
	case 0:
		return 0
	case 1:
		return uint64(rng.Intn(4)) // small constants hit identity rules
	default:
		return rng.Uint64()
	}
}

// TestSimplifierSoundness: for thousands of random trees and models, the
// simplified DAG evaluates exactly like the unsimplified reference.
func TestSimplifierSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for round := 0; round < 3000; round++ {
		width := []uint8{8, 16, 32, 64}[rng.Intn(4)]
		tree := randTree(rng, width, 4)
		c := NewCtx()
		expr := build(c, tree)
		for trial := 0; trial < 4; trial++ {
			m := Model{"x": rng.Uint64(), "y": rng.Uint64(), "z": uint64(rng.Intn(8))}
			want := refEval(tree, m)
			got := Eval(expr, m)
			if got != want {
				t.Fatalf("round %d: simplified %#x != reference %#x\nmodel %v\nexpr %s",
					round, got, want, m, expr)
			}
		}
	}
}

// TestSimplifiedSatAgreement: if the reference says a random equation holds
// under a hidden model, the solver must find SOME model for the simplified
// constraint (completeness on satisfiable instances).
func TestSimplifiedSatAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for round := 0; round < 120; round++ {
		width := []uint8{8, 16}[rng.Intn(2)]
		tree := randTree(rng, width, 3)
		hidden := Model{"x": rng.Uint64(), "y": rng.Uint64(), "z": uint64(rng.Intn(8))}
		target := refEval(tree, hidden)

		c := NewCtx()
		constraint := c.Eq(build(c, tree), c.Const(target, width))
		s := &Solver{MaxConflicts: 100_000}
		m, r := s.Solve([]*Expr{constraint})
		if r == Unknown {
			continue // budget-bound instances are acceptable
		}
		if r != Sat {
			t.Fatalf("round %d: satisfiable-by-construction constraint reported %s\n%s",
				round, r, constraint)
		}
		if !EvalBool(constraint, m) {
			t.Fatalf("round %d: returned model does not satisfy", round)
		}
	}
}
