package symbolic

import (
	"fmt"
	"math/bits"
)

// bitblast.go lowers bitvector expressions to CNF over the CDCL core via
// Tseitin encoding: one SAT variable per bit, gate clauses per operator.

type blaster struct {
	//wasai:localcache solver instance scoped to one query (Solve) or one flip
	// family (groupSolver); learned-clause reuse across a family only ever
	// proves Unsat, which is digest-invariant (models never come from here).
	sat *SAT
	// Per-query Tseitin memo, dead once the query is solved — not a
	// cross-job cache (those must go through internal/memo).
	//wasai:localcache single-query node->literal memo, discarded with the blaster
	cache map[*Expr][]Lit
	vars  map[string][]Lit // BV variable name -> bit literals (LSB first)
	tru   Lit              // literal forced true
}

func newBlaster() *blaster {
	b := &blaster{sat: NewSAT(0), cache: map[*Expr][]Lit{}, vars: map[string][]Lit{}}
	v := b.sat.AddVar()
	b.tru = MkLit(v, false)
	b.sat.AddClause(b.tru)
	return b
}

func (b *blaster) fls() Lit { return b.tru.Flip() }

func (b *blaster) lit(val bool) Lit {
	if val {
		return b.tru
	}
	return b.fls()
}

func (b *blaster) fresh() Lit { return MkLit(b.sat.AddVar(), false) }

// gate helpers -------------------------------------------------------------

func (b *blaster) andGate(a, c Lit) Lit {
	if a == b.fls() || c == b.fls() {
		return b.fls()
	}
	if a == b.tru {
		return c
	}
	if c == b.tru {
		return a
	}
	if a == c {
		return a
	}
	if a == c.Flip() {
		return b.fls()
	}
	o := b.fresh()
	b.sat.AddClause(a.Flip(), c.Flip(), o)
	b.sat.AddClause(a, o.Flip())
	b.sat.AddClause(c, o.Flip())
	return o
}

func (b *blaster) orGate(a, c Lit) Lit { return b.andGate(a.Flip(), c.Flip()).Flip() }

func (b *blaster) xorGate(a, c Lit) Lit {
	if a == b.fls() {
		return c
	}
	if c == b.fls() {
		return a
	}
	if a == b.tru {
		return c.Flip()
	}
	if c == b.tru {
		return a.Flip()
	}
	if a == c {
		return b.fls()
	}
	if a == c.Flip() {
		return b.tru
	}
	o := b.fresh()
	b.sat.AddClause(a.Flip(), c.Flip(), o.Flip())
	b.sat.AddClause(a, c, o.Flip())
	b.sat.AddClause(a.Flip(), c, o)
	b.sat.AddClause(a, c.Flip(), o)
	return o
}

// muxGate returns s ? t : f.
func (b *blaster) muxGate(s, t, f Lit) Lit {
	if s == b.tru {
		return t
	}
	if s == b.fls() {
		return f
	}
	if t == f {
		return t
	}
	o := b.fresh()
	b.sat.AddClause(s.Flip(), t.Flip(), o)
	b.sat.AddClause(s.Flip(), t, o.Flip())
	b.sat.AddClause(s, f.Flip(), o)
	b.sat.AddClause(s, f, o.Flip())
	return o
}

// fullAdder returns (sum, carryOut).
func (b *blaster) fullAdder(a, c, cin Lit) (Lit, Lit) {
	sum := b.xorGate(b.xorGate(a, c), cin)
	carry := b.orGate(b.andGate(a, c), b.andGate(cin, b.xorGate(a, c)))
	return sum, carry
}

// addBits returns a+c (+cin) with the final carry.
func (b *blaster) addBits(a, c []Lit, cin Lit) ([]Lit, Lit) {
	out := make([]Lit, len(a))
	carry := cin
	for i := range a {
		out[i], carry = b.fullAdder(a[i], c[i], carry)
	}
	return out, carry
}

func (b *blaster) negBits(a []Lit) []Lit {
	inv := make([]Lit, len(a))
	for i := range a {
		inv[i] = a[i].Flip()
	}
	out, _ := b.addBits(inv, b.constBits(0, len(a)), b.tru)
	return out
}

func (b *blaster) constBits(v uint64, w int) []Lit {
	out := make([]Lit, w)
	for i := 0; i < w; i++ {
		out[i] = b.lit(v>>i&1 == 1)
	}
	return out
}

// ultBits returns the literal for unsigned a < c.
func (b *blaster) ultBits(a, c []Lit) Lit {
	// a < c  <=>  NOT carryOut(a + ~c + 1)
	inv := make([]Lit, len(c))
	for i := range c {
		inv[i] = c[i].Flip()
	}
	_, carry := b.addBits(a, inv, b.tru)
	return carry.Flip()
}

func (b *blaster) eqBits(a, c []Lit) Lit {
	acc := b.tru
	for i := range a {
		acc = b.andGate(acc, b.xorGate(a[i], c[i]).Flip())
	}
	return acc
}

// blast returns the bit literals of e (LSB first).
func (b *blaster) blast(e *Expr) ([]Lit, error) {
	if out, ok := b.cache[e]; ok {
		return out, nil
	}
	out, err := b.blastUncached(e)
	if err != nil {
		return nil, err
	}
	b.cache[e] = out
	return out, nil
}

func (b *blaster) blastUncached(e *Expr) ([]Lit, error) {
	w := int(e.Width)
	switch e.Kind {
	case KConst:
		return b.constBits(e.Val, w), nil
	case KVar:
		// A variable may appear at several widths (Eval truncates the same
		// 64-bit model value), so the canonical SAT encoding is 64 bits per
		// name, sliced to the requested width.
		lits, ok := b.vars[e.Name]
		if !ok {
			lits = make([]Lit, 64)
			for i := range lits {
				lits[i] = b.fresh()
			}
			b.vars[e.Name] = lits
		}
		return lits[:w], nil
	case KNot:
		a, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		out := make([]Lit, w)
		for i := range out {
			out[i] = a[i].Flip()
		}
		return out, nil
	case KAnd, KOr, KXor:
		a, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		c, err := b.blast(e.B)
		if err != nil {
			return nil, err
		}
		out := make([]Lit, w)
		for i := range out {
			switch e.Kind {
			case KAnd:
				out[i] = b.andGate(a[i], c[i])
			case KOr:
				out[i] = b.orGate(a[i], c[i])
			default:
				out[i] = b.xorGate(a[i], c[i])
			}
		}
		return out, nil
	case KAdd, KSub:
		a, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		c, err := b.blast(e.B)
		if err != nil {
			return nil, err
		}
		if e.Kind == KAdd {
			out, _ := b.addBits(a, c, b.fls())
			return out, nil
		}
		inv := make([]Lit, len(c))
		for i := range c {
			inv[i] = c[i].Flip()
		}
		out, _ := b.addBits(a, inv, b.tru)
		return out, nil
	case KMul:
		a, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		c, err := b.blast(e.B)
		if err != nil {
			return nil, err
		}
		acc := b.constBits(0, w)
		for i := 0; i < w; i++ {
			// partial product: (a << i) & c[i]
			pp := make([]Lit, w)
			for j := 0; j < w; j++ {
				if j < i {
					pp[j] = b.fls()
				} else {
					pp[j] = b.andGate(a[j-i], c[i])
				}
			}
			acc, _ = b.addBits(acc, pp, b.fls())
		}
		return acc, nil
	case KEq:
		a, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		c, err := b.blast(e.B)
		if err != nil {
			return nil, err
		}
		return []Lit{b.eqBits(a, c)}, nil
	case KUlt:
		a, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		c, err := b.blast(e.B)
		if err != nil {
			return nil, err
		}
		return []Lit{b.ultBits(a, c)}, nil
	case KSlt:
		a, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		c, err := b.blast(e.B)
		if err != nil {
			return nil, err
		}
		n := len(a)
		sa, sc := a[n-1], c[n-1]
		diff := b.xorGate(sa, sc)
		// Different signs: a<b iff a negative. Same signs: unsigned compare.
		return []Lit{b.muxGate(diff, sa, b.ultBits(a, c))}, nil
	case KIte:
		s, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		t, err := b.blast(e.B)
		if err != nil {
			return nil, err
		}
		f, err := b.blast(e.C)
		if err != nil {
			return nil, err
		}
		out := make([]Lit, w)
		for i := range out {
			out[i] = b.muxGate(s[0], t[i], f[i])
		}
		return out, nil
	case KConcat:
		hi, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		lo, err := b.blast(e.B)
		if err != nil {
			return nil, err
		}
		return append(append([]Lit{}, lo...), hi...), nil
	case KExtract:
		a, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		return append([]Lit{}, a[e.Lo:e.Hi+1]...), nil
	case KZext:
		a, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		out := append([]Lit{}, a...)
		for len(out) < w {
			out = append(out, b.fls())
		}
		return out, nil
	case KSext:
		a, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		out := append([]Lit{}, a...)
		sign := a[len(a)-1]
		for len(out) < w {
			out = append(out, sign)
		}
		return out, nil
	case KPopcnt:
		a, err := b.blast(e.A)
		if err != nil {
			return nil, err
		}
		acc := b.constBits(0, w)
		for i := 0; i < w; i++ {
			bit := make([]Lit, w)
			bit[0] = a[i]
			for j := 1; j < w; j++ {
				bit[j] = b.fls()
			}
			acc, _ = b.addBits(acc, bit, b.fls())
		}
		return acc, nil
	case KShl, KLshr, KAshr, KRotl, KRotr:
		return b.blastShift(e)
	case KUDiv, KURem, KSDiv, KSRem:
		return b.blastDiv(e)
	default:
		// Unsupported expression shapes make the query fall back to Unknown
		// at the solver layer; they are not a job failure.
		return nil, fmt.Errorf("symbolic: cannot bit-blast %s", e.Kind) //wasai:rawerr solver falls back to Unknown
	}
}

// blastShift implements shifts/rotates with a barrel shifter. Shift amounts
// follow the expression semantics: amount mod width.
func (b *blaster) blastShift(e *Expr) ([]Lit, error) {
	w := int(e.Width)
	a, err := b.blast(e.A)
	if err != nil {
		return nil, err
	}
	amt, err := b.blast(e.B)
	if err != nil {
		return nil, err
	}
	if w&(w-1) != 0 {
		return nil, fmt.Errorf("symbolic: variable shift on non-power-of-two width %d", w) //wasai:rawerr solver falls back to Unknown
	}
	stages := bits.TrailingZeros(uint(w)) // log2(w)
	cur := append([]Lit{}, a...)
	for s := 0; s < stages; s++ {
		sh := 1 << s
		next := make([]Lit, w)
		for i := 0; i < w; i++ {
			var shifted Lit
			switch e.Kind {
			case KShl:
				if i >= sh {
					shifted = cur[i-sh]
				} else {
					shifted = b.fls()
				}
			case KLshr:
				if i+sh < w {
					shifted = cur[i+sh]
				} else {
					shifted = b.fls()
				}
			case KAshr:
				if i+sh < w {
					shifted = cur[i+sh]
				} else {
					shifted = cur[w-1]
				}
			case KRotl:
				shifted = cur[(i-sh+w)%w]
			default: // KRotr
				shifted = cur[(i+sh)%w]
			}
			next[i] = b.muxGate(amt[s], shifted, cur[i])
		}
		cur = next
	}
	return cur, nil
}

// blastDiv encodes division/remainder through the multiplication relation
// q*d + r = n with r < d (d != 0), and the SMT-LIB total semantics for
// d == 0. Signed variants are reduced to unsigned via sign/magnitude.
// Solutions are verified by the caller with Eval, which rejects the rare
// spurious models the truncated multiplication could admit.
func (b *blaster) blastDiv(e *Expr) ([]Lit, error) {
	w := int(e.Width)
	n, err := b.blast(e.A)
	if err != nil {
		return nil, err
	}
	d, err := b.blast(e.B)
	if err != nil {
		return nil, err
	}
	if e.Kind == KSDiv || e.Kind == KSRem {
		// |a| op |b| with result sign fixed up via mux.
		signA, signB := n[len(n)-1], d[len(d)-1]
		absA := b.absBits(n, signA)
		absB := b.absBits(d, signB)
		q, r := b.udivBits(absA, absB)
		if e.Kind == KSDiv {
			neg := b.xorGate(signA, signB)
			return b.condNeg(q, neg), nil
		}
		return b.condNeg(r, signA), nil
	}
	q, r := b.udivBits(n, d)
	// d == 0 total semantics: q = all ones, r = n.
	isZero := b.eqBits(d, b.constBits(0, w))
	outQ := make([]Lit, w)
	outR := make([]Lit, w)
	for i := 0; i < w; i++ {
		outQ[i] = b.muxGate(isZero, b.tru, q[i])
		outR[i] = b.muxGate(isZero, n[i], r[i])
	}
	if e.Kind == KUDiv {
		return outQ, nil
	}
	return outR, nil
}

func (b *blaster) absBits(a []Lit, sign Lit) []Lit {
	neg := b.negBits(a)
	out := make([]Lit, len(a))
	for i := range a {
		out[i] = b.muxGate(sign, neg[i], a[i])
	}
	return out
}

func (b *blaster) condNeg(a []Lit, neg Lit) []Lit {
	n := b.negBits(a)
	out := make([]Lit, len(a))
	for i := range a {
		out[i] = b.muxGate(neg, n[i], a[i])
	}
	return out
}

// udivBits introduces fresh q, r with q*d + r = n and r < d (when d != 0).
func (b *blaster) udivBits(n, d []Lit) (q, r []Lit) {
	w := len(n)
	q = make([]Lit, w)
	r = make([]Lit, w)
	for i := 0; i < w; i++ {
		q[i] = b.fresh()
		r[i] = b.fresh()
	}
	// q*d + r == n without overflow: every partial-product bit that would
	// land beyond width w is forced to zero, and no addition may carry out,
	// so the relation holds over the integers, not just mod 2^w.
	prod := b.constBits(0, w)
	for i := 0; i < w; i++ {
		pp := make([]Lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				pp[j] = b.fls()
			} else {
				pp[j] = b.andGate(q[j-i], d[i])
			}
		}
		for j := w - i; j < w; j++ {
			// q[j]*d[i] would occupy bit j+i >= w: forbid it.
			b.sat.AddClause(q[j].Flip(), d[i].Flip())
		}
		var carry Lit
		prod, carry = b.addBits(prod, pp, b.fls())
		b.sat.AddClause(carry.Flip())
	}
	sum, carry := b.addBits(prod, r, b.fls())
	b.sat.AddClause(carry.Flip())
	b.sat.AddClause(b.eqBits(sum, n))
	// d != 0 -> r < d : clause (dIsZero OR r<d)
	dZero := b.eqBits(d, b.constBits(0, w))
	b.sat.AddClause(dZero, b.ultBits(r, d))
	return q, r
}

// assert constrains a 1-bit expression to be true.
func (b *blaster) assert(e *Expr) error {
	lits, err := b.blast(e)
	if err != nil {
		return err
	}
	b.sat.AddClause(lits[0])
	return nil
}

// model extracts variable values after a SAT result.
func (b *blaster) model() Model {
	m := Model{}
	for name, lits := range b.vars {
		var v uint64
		for i, l := range lits {
			bit := b.sat.ValueOf(l.Var())
			if l.Neg() {
				bit = !bit
			}
			if bit {
				v |= 1 << i
			}
		}
		m[name] = v
	}
	return m
}
