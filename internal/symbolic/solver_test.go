package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func solveAll(t *testing.T, constraints []*Expr) (Model, Result) {
	t.Helper()
	s := &Solver{}
	return s.Solve(constraints)
}

func mustSat(t *testing.T, constraints []*Expr) Model {
	t.Helper()
	m, r := solveAll(t, constraints)
	if r != Sat {
		t.Fatalf("want sat, got %s", r)
	}
	if !SatisfiesAll(constraints, m) {
		t.Fatalf("model %v does not satisfy constraints", m)
	}
	return m
}

func mustUnsat(t *testing.T, constraints []*Expr) {
	t.Helper()
	_, r := solveAll(t, constraints)
	if r != Unsat {
		t.Fatalf("want unsat, got %s", r)
	}
}

func TestSolveSimpleEquality(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 64)
	m := mustSat(t, []*Expr{c.Eq(x, c.Const(0xdeadbeef, 64))})
	if m["x"] != 0xdeadbeef {
		t.Errorf("x = %#x", m["x"])
	}
}

func TestSolveInvertedChain(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	// (x + 100) ^ 0xff == 0x1234
	lhs := c.Xor(c.Add(x, c.Const(100, 32)), c.Const(0xff, 32))
	m := mustSat(t, []*Expr{c.Eq(lhs, c.Const(0x1234, 32))})
	if got := Eval(lhs, m); got != 0x1234 {
		t.Errorf("lhs = %#x", got)
	}
}

func TestSolveConjunction(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 64)
	y := c.Var("y", 64)
	m := mustSat(t, []*Expr{
		c.Eq(x, c.Const(7, 64)),
		c.Eq(c.Add(x, y), c.Const(100, 64)),
	})
	if m["x"] != 7 || m["x"]+m["y"] != 100 {
		t.Errorf("model %v", m)
	}
}

func TestSolveUnsatEquality(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	mustUnsat(t, []*Expr{
		c.Eq(x, c.Const(1, 32)),
		c.Eq(x, c.Const(2, 32)),
	})
}

func TestSolveRangeConstraints(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	m := mustSat(t, []*Expr{
		c.Ult(c.Const(100, 32), x),
		c.Ult(x, c.Const(103, 32)),
	})
	if m["x"] != 101 && m["x"] != 102 {
		t.Errorf("x = %d, want 101 or 102", m["x"])
	}
}

func TestSolveSignedComparison(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	// x < 0 (signed) and x > -3 (signed): x in {-2, -1}
	m := mustSat(t, []*Expr{
		c.Slt(x, c.Const(0, 32)),
		c.Slt(c.Const(uint64(0xfffffffd), 32), x), // -3 < x
	})
	sx := signExtend(m["x"], 32)
	if sx != -1 && sx != -2 {
		t.Errorf("x = %d, want -1 or -2", sx)
	}
}

func TestSolveBitwiseMask(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 16)
	// x & 0xf0 == 0x50  and  x & 0x0f == 0x3
	m := mustSat(t, []*Expr{
		c.Eq(c.And(x, c.Const(0xf0, 16)), c.Const(0x50, 16)),
		c.Eq(c.And(x, c.Const(0x0f, 16)), c.Const(0x03, 16)),
	})
	if m["x"]&0xff != 0x53 {
		t.Errorf("x = %#x, want low byte 0x53", m["x"])
	}
}

func TestSolveUnsatBitwise(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 8)
	mustUnsat(t, []*Expr{
		c.Eq(c.And(x, c.Const(1, 8)), c.Const(1, 8)),
		c.Eq(c.And(x, c.Const(1, 8)), c.Const(0, 8)),
	})
}

func TestSolveMultiplication(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 16)
	m := mustSat(t, []*Expr{c.Eq(c.Mul(x, c.Const(3, 16)), c.Const(21, 16))})
	if got := (m["x"] * 3) & 0xffff; got != 21 {
		t.Errorf("3x = %d, want 21", got)
	}
}

func TestSolveShift(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	m := mustSat(t, []*Expr{c.Eq(c.Shl(x, c.Const(4, 32)), c.Const(0x120, 32))})
	if got := (m["x"] << 4) & 0xffffffff; got != 0x120 {
		t.Errorf("x<<4 = %#x", got)
	}
}

func TestSolveVariableShift(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	s := c.Var("s", 32)
	m := mustSat(t, []*Expr{
		c.Eq(c.Shl(x, s), c.Const(0x100, 32)),
		c.Eq(x, c.Const(1, 32)),
	})
	if m["s"]%32 != 8 {
		t.Errorf("s = %d, want 8 mod 32", m["s"])
	}
}

func TestSolveConcatExtract(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 8)
	y := c.Var("y", 8)
	m := mustSat(t, []*Expr{c.Eq(c.Concat(x, y), c.Const(0xab12, 16))})
	if m["x"] != 0xab || m["y"] != 0x12 {
		t.Errorf("x=%#x y=%#x", m["x"], m["y"])
	}
}

func TestSolveIte(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	cond := c.Ult(x, c.Const(10, 32))
	val := c.Ite(cond, c.Const(1, 32), c.Const(2, 32))
	m := mustSat(t, []*Expr{
		c.Eq(val, c.Const(2, 32)),
	})
	if m["x"] < 10 {
		t.Errorf("x = %d should be >= 10", m["x"])
	}
}

func TestSolveDivisionByConstant(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 16)
	// x / 7 == 5 (unsigned): x in [35, 41]
	m := mustSat(t, []*Expr{c.Eq(c.UDiv(x, c.Const(7, 16)), c.Const(5, 16))})
	if m["x"]/7 != 5 {
		t.Errorf("x = %d", m["x"])
	}
}

func TestSolveRemainder(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 16)
	m := mustSat(t, []*Expr{
		c.Eq(c.URem(x, c.Const(10, 16)), c.Const(3, 16)),
		c.Ult(x, c.Const(20, 16)),
	})
	if m["x"]%10 != 3 || m["x"] >= 20 {
		t.Errorf("x = %d", m["x"])
	}
}

func TestSolvePopcountObfuscation(t *testing.T) {
	// The RQ3 obfuscator encodes arguments with popcount; make sure the
	// solver penetrates it: popcount(x) == 3 with x < 8 -> x == 7.
	c := NewCtx()
	x := c.Var("x", 8)
	m := mustSat(t, []*Expr{
		c.Eq(c.Popcount(x), c.Const(3, 8)),
		c.Ult(x, c.Const(8, 8)),
	})
	if m["x"] != 7 {
		t.Errorf("x = %d, want 7", m["x"])
	}
}

func TestSolveUnsatPigeonhole(t *testing.T) {
	// Forces the CDCL core to do real work: x != all 4 values of width 2.
	c := NewCtx()
	x := c.Var("x", 2)
	var cs []*Expr
	for v := uint64(0); v < 4; v++ {
		cs = append(cs, c.Ne(x, c.Const(v, 2)))
	}
	mustUnsat(t, cs)
}

func TestSolverFastPathDisabled(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	s := &Solver{DisableFastPath: true}
	m, r := s.Solve([]*Expr{c.Eq(c.Add(x, c.Const(5, 32)), c.Const(12, 32))})
	if r != Sat || m["x"] != 7 {
		t.Fatalf("r=%s m=%v", r, m)
	}
	if s.Stats.SATCalls != 1 {
		t.Errorf("SATCalls = %d, want 1", s.Stats.SATCalls)
	}
}

// TestEvalMatchesGo cross-checks the evaluator against Go semantics on
// random 64-bit operations.
func TestEvalMatchesGo(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 64)
	y := c.Var("y", 64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		m := Model{"x": a, "y": b}
		checks := []struct {
			name string
			expr *Expr
			want uint64
		}{
			{"add", c.Add(x, y), a + b},
			{"sub", c.Sub(x, y), a - b},
			{"mul", c.Mul(x, y), a * b},
			{"and", c.And(x, y), a & b},
			{"or", c.Or(x, y), a | b},
			{"xor", c.Xor(x, y), a ^ b},
			{"shl", c.Shl(x, c.Const(b%64, 64)), a << (b % 64)},
			{"lshr", c.Lshr(x, c.Const(b%64, 64)), a >> (b % 64)},
			{"ashr", c.Ashr(x, c.Const(b%64, 64)), uint64(int64(a) >> (b % 64))},
		}
		for _, ch := range checks {
			if got := Eval(ch.expr, m); got != ch.want {
				t.Fatalf("%s(%#x,%#x) = %#x, want %#x", ch.name, a, b, got, ch.want)
			}
		}
		ult := uint64(0)
		if a < b {
			ult = 1
		}
		if got := Eval(c.Ult(x, y), m); got != ult {
			t.Fatalf("ult(%#x,%#x) = %d, want %d", a, b, got, ult)
		}
		slt := uint64(0)
		if int64(a) < int64(b) {
			slt = 1
		}
		if got := Eval(c.Slt(x, y), m); got != slt {
			t.Fatalf("slt(%#x,%#x) = %d, want %d", a, b, got, slt)
		}
	}
}

// TestBitblastSoundness property-checks: for random small constraint
// systems that are satisfiable by construction, the solver must find a
// model (completeness on sat instances) and the model must check.
func TestBitblastSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCtx()
		x := c.Var("x", 16)
		y := c.Var("y", 16)
		// Pick a hidden solution, generate constraints true under it.
		hx, hy := uint64(rng.Intn(1<<16)), uint64(rng.Intn(1<<16))
		hidden := Model{"x": hx, "y": hy}
		exprs := []*Expr{
			c.Add(x, y), c.Sub(x, y), c.Xor(x, y), c.And(x, y), c.Or(x, y),
			c.Mul(x, c.Const(uint64(rng.Intn(100)), 16)),
		}
		var cs []*Expr
		for i := 0; i < 3; i++ {
			e := exprs[rng.Intn(len(exprs))]
			cs = append(cs, c.Eq(e, c.Const(Eval(e, hidden), 16)))
		}
		s := &Solver{DisableFastPath: seed%2 == 0}
		m, r := s.Solve(cs)
		return r == Sat && SatisfiesAll(cs, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifierIdentities(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	zero := c.Const(0, 32)
	tests := []struct {
		name string
		got  *Expr
		want *Expr
	}{
		{"x+0", c.Add(x, zero), x},
		{"x-x", c.Sub(x, x), zero},
		{"x^x", c.Xor(x, x), zero},
		{"x&x", c.And(x, x), x},
		{"x|0", c.Or(x, zero), x},
		{"x*1", c.Mul(x, c.Const(1, 32)), x},
		{"x*0", c.Mul(x, zero), zero},
		{"not not x", c.Not(c.Not(x)), x},
		{"eq same", c.Eq(x, x), c.True()},
		{"extract full", c.Extract(x, 31, 0), x},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("%s: got %s, want %s", tt.name, tt.got, tt.want)
		}
	}
}

func TestHashConsing(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	a := c.Add(x, c.Const(5, 32))
	b := c.Add(x, c.Const(5, 32))
	if a != b {
		t.Error("identical expressions not interned to same node")
	}
}

func TestSolvePoolParallel(t *testing.T) {
	c := NewCtx()
	var queries []Query
	for i := 0; i < 20; i++ {
		x := c.Var("x", 32)
		queries = append(queries, Query{
			ID:          i,
			Constraints: []*Expr{c.Eq(x, c.Const(uint64(i), 32))},
		})
	}
	answers := SolvePool(queries, 4, 0)
	if len(answers) != 20 {
		t.Fatalf("got %d answers", len(answers))
	}
	for _, a := range answers {
		if a.Result != Sat {
			t.Errorf("query %d: %s", a.ID, a.Result)
		}
		if a.Model["x"] != uint64(a.ID) {
			t.Errorf("query %d: x = %d", a.ID, a.Model["x"])
		}
	}
}

func TestSolverUnknownOnBudget(t *testing.T) {
	c := NewCtx()
	// A multiplication inversion the fast path cannot do, with a 1-conflict
	// budget: the solver must answer Unknown, never a wrong verdict.
	x := c.Var("x", 32)
	y := c.Var("y", 32)
	cs := []*Expr{
		c.Eq(c.Mul(x, y), c.Const(0x12345679, 32)),
		c.Ugt(x, c.Const(3, 32)),
		c.Ugt(y, c.Const(3, 32)),
	}
	s := &Solver{MaxConflicts: 1, DisableFastPath: true}
	if _, r := s.Solve(cs); r != Unknown && r != Sat {
		t.Errorf("tiny budget gave %s; only sat-with-model or unknown are sound", r)
	}
	if s.Stats.Queries != 1 {
		t.Errorf("stats.Queries = %d", s.Stats.Queries)
	}
}

func TestSolveEmptyAndTrivial(t *testing.T) {
	c := NewCtx()
	s := &Solver{}
	if m, r := s.Solve(nil); r != Sat || m == nil {
		t.Errorf("empty conjunction: %v %v", m, r)
	}
	if _, r := s.Solve([]*Expr{c.True()}); r != Sat {
		t.Errorf("trivially true: %v", r)
	}
	if _, r := s.Solve([]*Expr{c.False()}); r != Unsat {
		t.Errorf("trivially false: %v", r)
	}
}
