package symbolic

import (
	"crypto/sha256"
	"hash"
	"sort"
)

// This file canonicalizes solver queries for cross-job memoization (the
// internal/memo layer). A query — a conjunction of 1-bit constraints plus
// a conflict budget — is reduced to two content-addressed keys:
//
//   - Ordered: variables α-renamed to first-use order over the given
//     clause order, budget included. Two queries share an Ordered key iff
//     they are identical up to a bijective renaming of variables AND list
//     their clauses in the same order. Because Solve is α-invariant and
//     clause-order sensitive only in which model it picks (never in the
//     verdict), an Ordered hit can replay the cached verdict including
//     the model: the model the solver would have produced is exactly the
//     cached one translated back through Canon.Vars.
//   - Sorted: clauses stably sorted by their name-blind shape hash before
//     renaming, budget excluded. Order-permuted queries converge on one
//     Sorted key, but a direct solve of a permuted clause list may pick a
//     different satisfying model — so Sorted hits may only serve Unsat,
//     which carries no model and (like Unknown) produces no adaptive seed
//     downstream. Serving Unsat across permutations is sound because
//     unsatisfiability is a property of the clause multiset, and it is
//     digest-invisible because Unsat and the miss path's worst case
//     (re-proving Unsat) are behaviorally identical.
//
// Unknown is never cached: it depends on the budget and on cooperative
// cancellation timing, neither of which is a property of the query.

// DefaultMaxConflicts is the CDCL conflict budget used when a Solver or
// pool is given MaxConflicts == 0 (the analogue of the paper's 3,000 ms
// per-query cap as a deterministic budget). Canonicalization normalizes
// budgets through the same default so 0 and 200_000 share a key.
const DefaultMaxConflicts = 200_000

// CanonKey is the 32-byte SHA-256 content hash of a canonicalized query.
type CanonKey [32]byte

// Canon is the canonical form of one solver query.
type Canon struct {
	// Ordered is the exact-replay key (α-renamed, clause order kept,
	// budget included).
	Ordered CanonKey
	// Sorted is the permutation-invariant key (clauses shape-sorted,
	// budget excluded); safe for Unsat verdicts only.
	Sorted CanonKey
	// Vars lists the query's free variable names in first-use order over
	// the original clause order — the translation table between cached
	// canonical models (indexed by position) and this query's names.
	Vars []string
}

// SolverVerdict is a memoized Solve outcome. Vals is present for Sat
// only: Vals[i] is the model value of the i-th canonical variable.
type SolverVerdict struct {
	Result Result
	Vals   []uint64
}

// ModelFor translates a Sat verdict's canonical model back into the
// variable names of the query that produced c.
func (v SolverVerdict) ModelFor(c Canon) Model {
	m := Model{}
	for i, name := range c.Vars {
		if i < len(v.Vals) {
			m[name] = v.Vals[i]
		}
	}
	return m
}

// VerdictOf packages a Solve outcome for storage under canon c.
func VerdictOf(c Canon, m Model, r Result) SolverVerdict {
	v := SolverVerdict{Result: r}
	if r == Sat {
		v.Vals = make([]uint64, len(c.Vars))
		for i, name := range c.Vars {
			v.Vals[i] = m[name]
		}
	}
	return v
}

// SolverMemo is the solver-query cache consulted by SolvePoolCtx before
// running DPLL. Implementations must be safe for concurrent use; the
// canonical implementation is internal/memo (which serves Sorted-key hits
// for Unsat only — see the package comment there for the determinism
// argument). The interface lives here so internal/symbolic does not
// depend on the cache package.
type SolverMemo interface {
	// Lookup returns a previously stored verdict for an equivalent query.
	Lookup(c Canon) (SolverVerdict, bool)
	// Store records a Sat or Unsat verdict (implementations must drop
	// Unknown).
	Store(c Canon, v SolverVerdict)
}

// Canonicalize reduces a query to its canonical keys. budget is the
// pool's MaxConflicts (0 is normalized to DefaultMaxConflicts, matching
// Solve). All constraints must come from one Ctx.
func Canonicalize(constraints []*Expr, budget int64) Canon {
	if budget == 0 {
		budget = DefaultMaxConflicts
	}
	oh := newCanonHasher()
	for _, c := range constraints {
		oh.u64('K', 0)
		oh.walk(c)
	}
	oh.u64('B', uint64(budget))
	canon := Canon{Vars: oh.varNames, Ordered: oh.sum()}

	sorted := append([]*Expr(nil), constraints...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].shape < sorted[j].shape })
	sh := newCanonHasher()
	for _, c := range sorted {
		sh.u64('K', 0)
		sh.walk(c)
	}
	canon.Sorted = sh.sum()
	return canon
}

// canonHasher serializes an expression DAG into SHA-256 with variables
// replaced by their first-use index and repeated nodes emitted as
// backreferences, so the digest is injective on structure modulo
// α-renaming (equal bytes ⟺ α-equivalent DAGs in traversal order).
type canonHasher struct {
	h        hash.Hash
	buf      [9]byte
	seen     map[*Expr]int
	vars     map[string]int
	varNames []string
}

func newCanonHasher() *canonHasher {
	return &canonHasher{h: sha256.New(), seen: map[*Expr]int{}, vars: map[string]int{}}
}

func (ch *canonHasher) u64(tag byte, v uint64) {
	ch.buf[0] = tag
	for i := 0; i < 8; i++ {
		ch.buf[1+i] = byte(v >> (8 * i))
	}
	ch.h.Write(ch.buf[:])
}

func (ch *canonHasher) walk(e *Expr) {
	if e == nil {
		ch.u64('_', 0)
		return
	}
	if id, ok := ch.seen[e]; ok {
		ch.u64('R', uint64(id))
		return
	}
	ch.seen[e] = len(ch.seen)
	ch.u64('N', uint64(e.Kind)|uint64(e.Width)<<8|uint64(e.Hi)<<16|uint64(e.Lo)<<24)
	ch.u64('C', e.Val)
	if e.Kind == KVar {
		idx, ok := ch.vars[e.Name]
		if !ok {
			idx = len(ch.vars)
			ch.vars[e.Name] = idx
			ch.varNames = append(ch.varNames, e.Name)
		}
		ch.u64('V', uint64(idx))
		return
	}
	ch.walk(e.A)
	ch.walk(e.B)
	ch.walk(e.C)
}

func (ch *canonHasher) sum() CanonKey {
	var k CanonKey
	ch.h.Sum(k[:0])
	return k
}

// VarsFirstUse returns the free variables of the conjunction in
// deterministic first-use order: clause order, then depth-first
// left-to-right within each clause. This is the iteration order the
// solver's probe fast path uses (map-range order would make the chosen
// model depend on Go's map seed — a run-to-run nondeterminism — and would
// break the α-invariance the Ordered cache key relies on).
func VarsFirstUse(constraints []*Expr) []*Expr {
	seen := map[*Expr]bool{}
	var out []*Expr
	have := map[string]bool{}
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x == nil || seen[x] {
			return
		}
		seen[x] = true
		if x.Kind == KVar {
			if !have[x.Name] {
				have[x.Name] = true
				out = append(out, x)
			}
			return
		}
		walk(x.A)
		walk(x.B)
		walk(x.C)
	}
	for _, c := range constraints {
		walk(c)
	}
	return out
}
