package symbolic

import (
	"context"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// renameTable builds the same constraint structure under two variable
// namings; the canon keys must not see the difference.
func alphaPair(t *testing.T) (a, b []*Expr) {
	t.Helper()
	mk := func(c *Ctx, x, y, z string) []*Expr {
		vx, vy, vz := c.Var(x, 32), c.Var(y, 32), c.Var(z, 8)
		return []*Expr{
			c.Eq(c.Add(vx, vy), c.Const(1000, 32)),
			c.Ult(vx, c.Const(77, 32)),
			c.Eq(c.Xor(c.ZExt(vz, 32), vy), c.Const(5, 32)),
		}
	}
	return mk(NewCtx(), "amount", "balance", "sym"), mk(NewCtx(), "v0", "v1", "v2")
}

func TestCanonicalizeAlphaInvariance(t *testing.T) {
	ca, cb := alphaPair(t)
	ka, kb := Canonicalize(ca, 0), Canonicalize(cb, 0)
	if ka.Ordered != kb.Ordered {
		t.Error("Ordered keys differ under variable renaming")
	}
	if ka.Sorted != kb.Sorted {
		t.Error("Sorted keys differ under variable renaming")
	}
	if len(ka.Vars) != len(kb.Vars) {
		t.Fatalf("Vars length differs: %v vs %v", ka.Vars, kb.Vars)
	}
	// Vars carry each query's OWN names (the model translation table).
	if ka.Vars[0] != "amount" || kb.Vars[0] != "v0" {
		t.Errorf("Vars are not per-query names: %v / %v", ka.Vars, kb.Vars)
	}
}

func TestCanonicalizeDistinguishes(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	base := []*Expr{c.Eq(x, c.Const(5, 32))}
	k0 := Canonicalize(base, 0)

	// Different constant.
	if k := Canonicalize([]*Expr{c.Eq(x, c.Const(6, 32))}, 0); k.Ordered == k0.Ordered || k.Sorted == k0.Sorted {
		t.Error("different constants share a key")
	}
	// Different operator.
	if k := Canonicalize([]*Expr{c.Ult(x, c.Const(5, 32))}, 0); k.Ordered == k0.Ordered || k.Sorted == k0.Sorted {
		t.Error("different operators share a key")
	}
	// Extra clause.
	extra := append(append([]*Expr(nil), base...), c.Ult(x, c.Const(9, 32)))
	if k := Canonicalize(extra, 0); k.Ordered == k0.Ordered || k.Sorted == k0.Sorted {
		t.Error("appended clause did not change the keys")
	}
	// Distinct variables vs one repeated variable: x+x vs x+y must
	// differ even though both α-rename from index 0.
	y := c.Var("y", 32)
	xx := []*Expr{c.Eq(c.Add(x, x), c.Const(8, 32))}
	xy := []*Expr{c.Eq(c.Add(x, y), c.Const(8, 32))}
	if Canonicalize(xx, 0).Ordered == Canonicalize(xy, 0).Ordered {
		t.Error("x+x and x+y share an Ordered key")
	}
}

func TestCanonicalizeBudget(t *testing.T) {
	c := NewCtx()
	q := []*Expr{c.Eq(c.Var("x", 32), c.Const(1, 32))}
	k0 := Canonicalize(q, 0)
	kd := Canonicalize(q, DefaultMaxConflicts)
	if k0.Ordered != kd.Ordered {
		t.Error("budget 0 and DefaultMaxConflicts do not share an Ordered key")
	}
	kh := Canonicalize(q, DefaultMaxConflicts/2)
	if kh.Ordered == k0.Ordered {
		t.Error("halved budget (degraded retry) shares the full-budget Ordered key")
	}
	if kh.Sorted != k0.Sorted {
		t.Error("Sorted key depends on the budget (it must not: Unsat survives budget changes only via the budget-free key)")
	}
}

func TestCanonicalizeSortedPermutation(t *testing.T) {
	c := NewCtx()
	x, y := c.Var("x", 32), c.Var("y", 32)
	// Pairwise-distinct shapes, so the stable shape sort fully determines
	// the canonical order and any permutation converges.
	clauses := []*Expr{
		c.Eq(x, c.Const(5, 32)),
		c.Ult(y, c.Const(9, 32)),
		c.Eq(c.Add(x, y), c.Const(1000, 32)),
	}
	perm := []*Expr{clauses[2], clauses[0], clauses[1]}
	kc, kp := Canonicalize(clauses, 0), Canonicalize(perm, 0)
	if kc.Sorted != kp.Sorted {
		t.Error("permuted clauses do not share a Sorted key")
	}
	if kc.Ordered == kp.Ordered {
		t.Error("permuted clauses share an Ordered key (order must be part of it)")
	}
}

func TestCanonicalizeCrossCtxDeterminism(t *testing.T) {
	build := func() []*Expr {
		c := NewCtx()
		x := c.Var("x", 32)
		shared := c.Add(x, c.Const(3, 32)) // used twice: exercises backrefs
		return []*Expr{
			c.Eq(shared, c.Const(10, 32)),
			c.Ult(shared, c.Const(20, 32)),
		}
	}
	k1, k2 := Canonicalize(build(), 0), Canonicalize(build(), 0)
	if k1.Ordered != k2.Ordered || k1.Sorted != k2.Sorted {
		t.Error("identical structure in fresh Ctxs produced different keys")
	}
}

func TestVarsFirstUse(t *testing.T) {
	c := NewCtx()
	a, b, d := c.Var("a", 32), c.Var("b", 32), c.Var("d", 32)
	constraints := []*Expr{
		c.Eq(c.Add(b, a), c.Const(1, 32)), // first clause: b before a
		c.Ult(d, b),                       // d new, b repeated
	}
	got := VarsFirstUse(constraints)
	want := []string{"b", "a", "d"}
	if len(got) != len(want) {
		t.Fatalf("got %d vars, want %d", len(got), len(want))
	}
	for i, v := range got {
		if v.Name != want[i] {
			t.Errorf("vars[%d] = %s, want %s", i, v.Name, want[i])
		}
	}
}

func TestVerdictRoundtrip(t *testing.T) {
	c := NewCtx()
	x, y := c.Var("x", 32), c.Var("y", 32)
	q := []*Expr{c.Eq(c.Add(x, y), c.Const(7, 32))}
	canon := Canonicalize(q, 0)
	m := Model{"x": 3, "y": 4}
	v := VerdictOf(canon, m, Sat)
	back := v.ModelFor(canon)
	if back["x"] != 3 || back["y"] != 4 {
		t.Errorf("roundtripped model %v != original %v", back, m)
	}
	// The canonical model replays under renaming: the α-equivalent query
	// receives the same values under its own names.
	c2 := NewCtx()
	p, r := c2.Var("p", 32), c2.Var("r", 32)
	q2 := []*Expr{c2.Eq(c2.Add(p, r), c2.Const(7, 32))}
	canon2 := Canonicalize(q2, 0)
	if canon2.Ordered != canon.Ordered {
		t.Fatal("renamed query did not hit the same Ordered key")
	}
	m2 := v.ModelFor(canon2)
	if m2["p"] != 3 || m2["r"] != 4 {
		t.Errorf("model did not translate through renaming: %v", m2)
	}
	if !SatisfiesAll(q2, m2) {
		t.Error("translated model does not satisfy the renamed query")
	}
	if uv := VerdictOf(canon, nil, Unsat); len(uv.Vals) != 0 {
		t.Errorf("Unsat verdict carries a model: %v", uv.Vals)
	}
}

func TestHashConsingCanon(t *testing.T) {
	c := NewCtx()
	x1 := c.Eq(c.Add(c.Var("x", 32), c.Const(3, 32)), c.Const(10, 32))
	x2 := c.Eq(c.Add(c.Var("x", 32), c.Const(3, 32)), c.Const(10, 32))
	if x1 != x2 {
		t.Error("structurally identical expressions are not pointer-equal within one Ctx")
	}
	if x1.Hash() != x2.Hash() {
		t.Error("pointer-equal expressions disagree on Hash")
	}
	// Across Ctxs: pointer inequality, hash equality.
	c2 := NewCtx()
	x3 := c2.Eq(c2.Add(c2.Var("x", 32), c2.Const(3, 32)), c2.Const(10, 32))
	if x1 == x3 {
		t.Error("expressions from different Ctxs are pointer-equal")
	}
	if x1.Hash() != x3.Hash() {
		t.Error("identical structure hashes differently across Ctxs")
	}
	// Shape is name-blind, Hash is not.
	y := c.Eq(c.Add(c.Var("y", 32), c.Const(3, 32)), c.Const(10, 32))
	if x1.ShapeHash() != y.ShapeHash() {
		t.Error("renamed expression has a different shape hash")
	}
	if x1.Hash() == y.Hash() {
		t.Error("renamed expression shares the name-sensitive hash")
	}
	// Different widths must differ in both.
	w := c.Eq(c.Add(c.Var("x", 16), c.Const(3, 16)), c.Const(10, 16))
	if x1.ShapeHash() == w.ShapeHash() || x1.Hash() == w.Hash() {
		t.Error("different widths share a hash")
	}
}

// recordingMemo is a SolverMemo that records traffic, for pool-integration
// tests.
type recordingMemo struct {
	mu      sync.Mutex
	store   map[CanonKey]SolverVerdict
	lookups int
	stores  []Result
}

func newRecordingMemo() *recordingMemo {
	return &recordingMemo{store: map[CanonKey]SolverVerdict{}}
}

func (m *recordingMemo) Lookup(c Canon) (SolverVerdict, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lookups++
	v, ok := m.store[c.Ordered]
	return v, ok
}

func (m *recordingMemo) Store(c Canon, v SolverVerdict) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stores = append(m.stores, v.Result)
	m.store[c.Ordered] = v
}

// TestSolvePoolMemo drives SolvePoolCtx against a recording cache: the
// first pass stores Sat and Unsat verdicts, the second pass answers every
// query from the cache with identical results and zero new solving.
func TestSolvePoolMemo(t *testing.T) {
	c := NewCtx()
	x, y := c.Var("x", 32), c.Var("y", 32)
	queries := []Query{
		{ID: 0, Constraints: []*Expr{c.Eq(c.Add(x, y), c.Const(12, 32)), c.Ult(x, c.Const(4, 32))}},
		{ID: 1, Constraints: []*Expr{c.Eq(x, c.Const(0, 32)), c.Eq(x, c.Const(1, 32))}}, // Unsat
		{ID: 2, Constraints: []*Expr{c.Ult(y, c.Const(2, 32))}},
	}
	mem := newRecordingMemo()
	first, stats1, err := SolvePoolCtx(context.Background(), queries, PoolOptions{Workers: 2, Memo: mem})
	if err != nil {
		t.Fatalf("first pass: %v", err)
	}
	if len(mem.stores) == 0 {
		t.Fatal("first pass stored nothing")
	}
	for _, r := range mem.stores {
		if r != Sat && r != Unsat {
			t.Fatalf("pool stored a %v verdict", r)
		}
	}

	second, stats2, err := SolvePoolCtx(context.Background(), queries, PoolOptions{Workers: 2, Memo: mem})
	if err != nil {
		t.Fatalf("second pass: %v", err)
	}
	if stats2.SATCalls != 0 || stats2.FastPathHits != 0 {
		t.Errorf("second pass did real solving: %+v", stats2)
	}
	if stats2.Queries != stats1.Queries {
		t.Errorf("Queries not comparable across passes: %d vs %d", stats2.Queries, stats1.Queries)
	}
	for i := range queries {
		if first[i].Result != second[i].Result {
			t.Errorf("query %d: result changed %v -> %v", i, first[i].Result, second[i].Result)
		}
		if first[i].Result == Sat {
			if !SatisfiesAll(queries[i].Constraints, second[i].Model) {
				t.Errorf("query %d: replayed model does not satisfy the query", i)
			}
		}
	}
}

// TestSolvePoolMemoBypassedUnderFaults: with an injector present the pool
// must not touch the cache at all — no lookups, no stores.
func TestSolvePoolMemoBypassedUnderFaults(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	queries := []Query{{ID: 0, Constraints: []*Expr{c.Eq(x, c.Const(3, 32))}}}
	mem := newRecordingMemo()
	plan := &faultinject.Plan{Seed: 1, Rate: 1.0}
	inj := plan.For(0, 0)
	if inj == nil {
		t.Fatal("rate-1.0 plan produced no injector")
	}
	_, _, _ = SolvePoolCtx(context.Background(), queries, PoolOptions{Workers: 1, Memo: mem, Faults: inj})
	if mem.lookups != 0 || len(mem.stores) != 0 {
		t.Errorf("faulted pool touched the memo: lookups=%d stores=%d", mem.lookups, len(mem.stores))
	}
}
