package symbolic

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// incremental_test.go is the differential suite for the prefix-sharing
// pre-pass: SolvePoolCtx with Incremental on must answer every query with
// the same verdict AND the same model as the fresh path, on adversarial
// batches — shared-prefix flip families, random stack-machine programs, and
// memo-composed runs.

// chainFamily builds the incr experiment's family shape: a strict Ult chain
// prefix with len(chain) unsat flips and one sat flip.
func chainFamily(ctx *Ctx, tag string, chain int, firstID int) []Query {
	vs := make([]*Expr, chain+1)
	for i := range vs {
		vs[i] = ctx.Var(fmt.Sprintf("%sv%d", tag, i), 32)
	}
	prefix := make([]*Expr, 0, chain)
	for i := 0; i < chain; i++ {
		prefix = append(prefix, ctx.Ult(vs[i], vs[i+1]))
	}
	var qs []Query
	id := firstID
	for k := 0; k < chain; k++ {
		cs := append(append([]*Expr{}, prefix...), ctx.Ult(vs[chain], vs[k]))
		qs = append(qs, Query{ID: id, Constraints: cs})
		id++
	}
	cs := append(append([]*Expr{}, prefix...), ctx.Ult(vs[0], vs[chain]))
	qs = append(qs, Query{ID: id, Constraints: cs})
	return qs
}

// diffPool solves the batch fresh and incremental and requires per-query
// verdict and model agreement.
func diffPool(t *testing.T, queries []Query, opts PoolOptions) (off, on SolverStats) {
	t.Helper()
	optsOff, optsOn := opts, opts
	optsOff.Incremental = false
	optsOn.Incremental = true
	offAns, offStats, err := SolvePoolCtx(context.Background(), queries, optsOff)
	if err != nil {
		t.Fatalf("fresh pool: %v", err)
	}
	onAns, onStats, err := SolvePoolCtx(context.Background(), queries, optsOn)
	if err != nil {
		t.Fatalf("incremental pool: %v", err)
	}
	byID := func(ans []Answer) map[int]Answer {
		m := make(map[int]Answer, len(ans))
		for _, a := range ans {
			m[a.ID] = a
		}
		return m
	}
	offM, onM := byID(offAns), byID(onAns)
	if len(offM) != len(onM) {
		t.Fatalf("answer count: fresh %d, incremental %d", len(offM), len(onM))
	}
	for id, a := range offM {
		b, ok := onM[id]
		if !ok {
			t.Fatalf("query %d missing from incremental answers", id)
		}
		if a.Result != b.Result {
			t.Fatalf("query %d: fresh=%v incremental=%v", id, a.Result, b.Result)
		}
		if len(a.Model) != len(b.Model) {
			t.Fatalf("query %d: model size differs (%d vs %d)", id, len(a.Model), len(b.Model))
		}
		for k, v := range a.Model {
			if b.Model[k] != v {
				t.Fatalf("query %d: model[%s] fresh=%d incremental=%d", id, k, v, b.Model[k])
			}
		}
	}
	return offStats, onStats
}

func TestIncrementalChainFamilyAgreement(t *testing.T) {
	ctx := NewCtx()
	var queries []Query
	for f := 0; f < 2; f++ {
		queries = append(queries, chainFamily(ctx, fmt.Sprintf("f%d", f), 4, len(queries))...)
	}
	for _, workers := range []int{1, 4} {
		off, on := diffPool(t, queries, PoolOptions{Workers: workers, MaxConflicts: 50_000})
		if on.AssumeUnsats == 0 {
			t.Errorf("workers=%d: incremental path refuted nothing — pre-pass not engaged", workers)
		}
		if off.Queries != on.Queries {
			t.Errorf("workers=%d: query counts differ: %d vs %d", workers, off.Queries, on.Queries)
		}
	}
}

func TestIncrementalRandomBatchAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 40; round++ {
		ctx := NewCtx()
		var queries []Query
		n := 2 + rng.Intn(6)
		for q := 0; q < n; q++ {
			data := make([]byte, 2+rng.Intn(30)*2)
			rng.Read(data)
			cs := buildFuzzConstraints(ctx, data, fmt.Sprintf("q%d_", q))
			if len(cs) == 0 {
				continue
			}
			queries = append(queries, Query{ID: len(queries), Constraints: cs})
		}
		if len(queries) == 0 {
			continue
		}
		diffPool(t, queries, PoolOptions{Workers: 1 + rng.Intn(4), MaxConflicts: 20_000})
	}
}

// TestIncrementalMemoParity runs the same batch twice against one memo per
// mode and requires the verdicts the incremental pre-pass stores to serve
// later lookups exactly as fresh-path stores would.
func TestIncrementalMemoParity(t *testing.T) {
	ctx := NewCtx()
	var queries []Query
	queries = append(queries, chainFamily(ctx, "a", 4, 0)...)
	queries = append(queries, chainFamily(ctx, "b", 4, len(queries))...)

	run := func(incremental bool) []Answer {
		memo := newRecordingMemo()
		var all []Answer
		for leg := 0; leg < 2; leg++ {
			ans, _, err := SolvePoolCtx(context.Background(), queries, PoolOptions{
				Workers:      4,
				MaxConflicts: 50_000,
				Memo:         memo,
				Incremental:  incremental,
			})
			if err != nil {
				t.Fatalf("leg %d: %v", leg, err)
			}
			all = append(all, ans...)
		}
		return all
	}
	off, on := run(false), run(true)
	if len(off) != len(on) {
		t.Fatalf("answer counts differ: %d vs %d", len(off), len(on))
	}
	for i := range off {
		if off[i].ID != on[i].ID || off[i].Result != on[i].Result {
			t.Fatalf("answer %d: fresh (%d,%v) vs incremental (%d,%v)",
				i, off[i].ID, off[i].Result, on[i].ID, on[i].Result)
		}
		for k, v := range off[i].Model {
			if on[i].Model[k] != v {
				t.Fatalf("answer %d: model[%s] differs", i, k)
			}
		}
	}
}
