package symbolic

import (
	"math/rand"
	"testing"
)

func TestSimplifySubstitutionProvesFalse(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	cs := []*Expr{c.Eq(x, c.Const(5, 32)), c.Ult(x, c.Const(3, 32))}
	if _, provenFalse := NewSimplifier().Conjunction(cs); !provenFalse {
		t.Fatal("x=5 ∧ x<3 must be proven false at the word level")
	}
}

func TestSimplifyKeepsEqualitySources(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	cs := []*Expr{c.Eq(x, c.Const(5, 32)), c.Ult(x, c.Const(10, 32))}
	out, provenFalse := NewSimplifier().Conjunction(cs)
	if provenFalse {
		t.Fatal("x=5 ∧ x<10 is satisfiable")
	}
	// The binding's source equality survives (equivalence, not just
	// equisatisfiability); the redundant comparison folds away.
	if len(out) != 1 || out[0].Kind != KEq {
		t.Fatalf("want [x=5], got %d conjuncts", len(out))
	}
}

func TestSimplifyComplementaryPair(t *testing.T) {
	c := NewCtx()
	p := c.Ult(c.Var("a", 32), c.Var("b", 32))
	for _, cs := range [][]*Expr{
		{p, c.BoolNot(p)},
		{c.BoolNot(p), p},
	} {
		if _, provenFalse := NewSimplifier().Conjunction(cs); !provenFalse {
			t.Fatal("p ∧ ¬p must be proven false")
		}
	}
}

func TestSimplifyDoubleNegationDedupes(t *testing.T) {
	c := NewCtx()
	p := c.Ult(c.Var("a", 32), c.Var("b", 32))
	out, provenFalse := NewSimplifier().Conjunction([]*Expr{c.BoolNot(c.BoolNot(p)), p})
	if provenFalse || len(out) != 1 {
		t.Fatalf("¬¬p ∧ p should dedupe to [p]; got %d conjuncts, false=%v", len(out), provenFalse)
	}
}

func TestSimplifyDeMorganSplits(t *testing.T) {
	c := NewCtx()
	a, b := c.Var("a", 32), c.Var("b", 32)
	p, q := c.Ult(a, b), c.Ult(b, a)
	out, provenFalse := NewSimplifier().Conjunction([]*Expr{c.BoolNot(c.Or(p, q))})
	if provenFalse {
		t.Fatal("¬(a<b ∨ b<a) is satisfiable (a=b)")
	}
	if len(out) != 2 {
		t.Fatalf("De Morgan should split into two conjuncts, got %d", len(out))
	}
}

func TestSimplifyConflictingEqualities(t *testing.T) {
	c := NewCtx()
	x := c.Var("x", 32)
	cs := []*Expr{c.Eq(x, c.Const(1, 32)), c.Eq(x, c.Const(2, 32))}
	if _, provenFalse := NewSimplifier().Conjunction(cs); !provenFalse {
		t.Fatal("x=1 ∧ x=2 must be proven false")
	}
}

func TestSimplifyConcatSlicing(t *testing.T) {
	c := NewCtx()
	hi, lo := c.Var("hi", 8), c.Var("lo", 8)
	out, provenFalse := NewSimplifier().Conjunction([]*Expr{
		c.Eq(c.Concat(hi, lo), c.Const(0xAB12, 16)),
	})
	if provenFalse || len(out) != 2 {
		t.Fatalf("concat equality should slice into two equalities, got %d (false=%v)", len(out), provenFalse)
	}
	want := map[string]uint64{"hi": 0xAB, "lo": 0x12}
	for _, e := range out {
		if e.Kind != KEq || e.A.Kind != KVar {
			t.Fatalf("sliced conjunct is not var=const: %v", e.Kind)
		}
		v, ok := e.B.IsConst()
		if !ok || v != want[e.A.Name] {
			t.Fatalf("sliced %s = %#x, want %#x", e.A.Name, v, want[e.A.Name])
		}
	}
}

// TestSimplifyWidthExactBindings pins the (name, width) binding key: the
// bit-blaster treats one name at two widths as truncations of a single
// 64-bit variable, so a binding proved at width 32 must never rewrite the
// width-8 occurrence (leaving both conjuncts intact is always sound — the
// blaster still sees the original semantics).
func TestSimplifyWidthExactBindings(t *testing.T) {
	c := NewCtx()
	x32, x8 := c.Var("x", 32), c.Var("x", 8)
	out, provenFalse := NewSimplifier().Conjunction([]*Expr{
		c.Eq(x32, c.Const(5, 32)),
		c.Ult(x8, c.Const(3, 8)),
	})
	if provenFalse {
		t.Fatal("the word level must not cross widths to refute this")
	}
	if len(out) != 2 {
		t.Fatalf("want both conjuncts kept, got %d", len(out))
	}
	for _, e := range out {
		if e.Kind == KUlt && e.A.Kind != KVar {
			t.Fatal("width-8 occurrence was substituted across widths")
		}
	}
}

// FuzzSimplify fuzzes the simplifier's contracted properties on arbitrary
// stack-machine programs: rewriting is deterministic, provenFalse implies
// the original conjunction is Unsat, verdicts agree in both directions, and
// a model of the simplified form satisfies every original conjunct.
func FuzzSimplify(f *testing.F) {
	f.Add([]byte{0, 0, 2, 5, 9, 0})                                   // v0 == 5
	f.Add([]byte{0, 0, 2, 5, 9, 0, 0, 0, 2, 3, 10, 0})                // v0 == 5, v0 < 3
	f.Add([]byte{0, 0, 0, 1, 10, 0, 0, 1, 0, 0, 10, 0})               // v0 < v1, v1 < v0
	f.Add([]byte{0, 0, 2, 1, 9, 0, 0, 0, 2, 2, 9, 0})                 // v0 == 1, v0 == 2
	f.Add([]byte{0, 0, 0, 1, 3, 0, 2, 200, 10, 0, 0, 1, 2, 7, 9, 0})  // (v0+v1) < 200, v1 == 7
	f.Add([]byte{1, 3, 7, 0, 0, 3, 5, 0, 9, 0, 1, 2, 0, 2, 6, 0, 9, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			return
		}
		ctx := NewCtx()
		cs := buildFuzzConstraints(ctx, data, "v")
		if len(cs) == 0 {
			return
		}
		simplified, provenFalse := NewSimplifier().Conjunction(cs)

		// Determinism: an independent simplifier over the same input agrees
		// conjunct-by-conjunct (hashes are Ctx-independent).
		again, pf2 := NewSimplifier().Conjunction(cs)
		if pf2 != provenFalse || len(again) != len(simplified) {
			t.Fatal("simplification is nondeterministic")
		}
		for i := range simplified {
			if simplified[i].Hash() != again[i].Hash() {
				t.Fatalf("conjunct %d differs across simplifier instances", i)
			}
		}

		orig := &Solver{MaxConflicts: 5_000}
		_, origRes := orig.Solve(cs)
		if provenFalse {
			if origRes == Sat {
				t.Fatal("simplifier proved false but original is Sat")
			}
			return
		}
		simp := &Solver{MaxConflicts: 5_000}
		m, simpRes := simp.Solve(simplified)
		if origRes == Unknown || simpRes == Unknown {
			return
		}
		if origRes != simpRes {
			t.Fatalf("verdict disagreement: original=%v simplified=%v", origRes, simpRes)
		}
		if simpRes == Sat {
			for i, e := range cs {
				if !EvalBool(e, m) {
					t.Fatalf("simplified model violates original conjunct %d", i)
				}
			}
		}
	})
}

// TestSimplifyDifferential cross-checks the rewrite against the solver on
// random stack-machine programs: a provenFalse result must mean the original
// is Unsat, otherwise both forms must reach the same verdict, and a Sat
// model of the simplified form must satisfy every original conjunct (the
// rewrite promises equivalence, not just equisatisfiability).
func TestSimplifyDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 300; round++ {
		data := make([]byte, 2+rng.Intn(40)*2)
		rng.Read(data)
		ctx := NewCtx()
		cs := buildFuzzConstraints(ctx, data, "v")
		if len(cs) == 0 {
			continue
		}
		orig := &Solver{MaxConflicts: 20_000}
		_, origRes := orig.Solve(cs)

		simplified, provenFalse := NewSimplifier().Conjunction(cs)
		if provenFalse {
			if origRes == Sat {
				t.Fatalf("round %d: simplifier proved false but original is Sat", round)
			}
			continue
		}
		simp := &Solver{MaxConflicts: 20_000}
		m, simpRes := simp.Solve(simplified)
		if origRes == Unknown || simpRes == Unknown {
			continue
		}
		if origRes != simpRes {
			t.Fatalf("round %d: verdict disagreement: original=%v simplified=%v", round, origRes, simpRes)
		}
		if simpRes == Sat {
			for i, e := range cs {
				if !EvalBool(e, m) {
					t.Fatalf("round %d: simplified model violates original conjunct %d", round, i)
				}
			}
		}
	}
}
