package symbolic

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Result is the outcome of a Solve call.
type Result int

// Solve outcomes.
const (
	Sat Result = iota + 1
	Unsat
	Unknown
)

// String names the result.
func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case Unknown:
		return "unknown"
	default:
		return "result(?)"
	}
}

// Solver decides conjunctions of 1-bit constraints. The zero value is
// usable; MaxConflicts bounds the CDCL search (0 = default budget),
// mirroring the paper's 3,000 ms per-query cap as a deterministic budget.
type Solver struct {
	// MaxConflicts bounds the SAT search. Default 200_000 conflicts.
	MaxConflicts int64
	// DisableFastPath turns off concrete probing (for ablation benches).
	DisableFastPath bool
	// Stop cancels in-flight SAT searches cooperatively (see SAT.Stop);
	// an interrupted query reports Unknown.
	Stop <-chan struct{}

	// Stats accumulate across Solve calls.
	Stats SolverStats
}

// SolverStats counts solver activity for the evaluation harness.
type SolverStats struct {
	Queries      int
	FastPathHits int
	SATCalls     int
	SATConflicts int64
	Unknowns     int
	// Incremental-path counters (PoolOptions.Incremental). AssumeCalls
	// counts assumption solves on the shared group instance (deliberately
	// NOT included in SATCalls, which keeps counting fresh DPLL instances
	// so cross-run SATCalls comparisons stay meaningful); AssumeUnsats is
	// how many of those proved Unsat and answered the query early.
	// SimplifiedUnsats counts queries short-circuited by the word-level
	// simplifier alone. Propagations totals unit-propagation work across
	// fresh and shared instances — the denominator for "CDCL work saved".
	AssumeCalls      int
	AssumeUnsats     int
	SimplifiedUnsats int
	Propagations     int64
}

// Solve decides the conjunction of constraints (each 1-bit wide). On Sat it
// returns a model assigning every free variable.
func (s *Solver) Solve(constraints []*Expr) (Model, Result) {
	s.Stats.Queries++
	var live []*Expr
	for _, c := range constraints {
		if c.IsFalse() {
			return nil, Unsat
		}
		if c.IsTrue() {
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return Model{}, Sat
	}

	if !s.DisableFastPath {
		if m, ok := s.probe(live); ok {
			s.Stats.FastPathHits++
			return m, Sat
		}
	}

	// Complete path: bit-blast + CDCL.
	s.Stats.SATCalls++
	b := newBlaster()
	for _, c := range live {
		if err := b.assert(c); err != nil {
			s.Stats.Unknowns++
			return nil, Unknown
		}
	}
	budget := s.MaxConflicts
	if budget == 0 {
		budget = DefaultMaxConflicts
	}
	b.sat.MaxConflicts = budget
	b.sat.Stop = s.Stop
	sat, ok := b.sat.Solve()
	s.Stats.SATConflicts += b.sat.conflicts
	s.Stats.Propagations += b.sat.props
	if !ok {
		s.Stats.Unknowns++
		return nil, Unknown
	}
	if !sat {
		return nil, Unsat
	}
	m := b.model()
	// Fill variables the blaster never saw (eliminated by simplification).
	vars := map[string]*Expr{}
	for _, c := range live {
		c.Vars(vars)
	}
	for name := range vars {
		if _, ok := m[name]; !ok {
			m[name] = 0
		}
	}
	// The division encoding is relational; verify the model concretely and
	// report Unknown rather than a wrong model in the (rare) spurious case.
	if !SatisfiesAll(live, m) {
		s.Stats.Unknowns++
		return nil, Unknown
	}
	return m, Sat
}

// --- Concrete-probing fast path ---------------------------------------------

// probe tries to satisfy the constraints with a bounded local search over
// candidate values mined from the constraint structure. This is the
// workhorse for fuzzing constraints, which overwhelmingly compare inputs
// against constants (paper §4.3's "complicated verification" benchmark is
// exactly this shape).
func (s *Solver) probe(constraints []*Expr) (Model, bool) {
	// First-use order, not map order: the improvement loop below visits
	// variables in sequence and keeps the first strict improvement, so
	// the model it lands on depends on iteration order. First-use order
	// makes that order a pure function of query structure — run-to-run
	// deterministic and invariant under variable renaming, which the
	// solver-query memo's Ordered-key replay relies on.
	vars := VarsFirstUse(constraints)
	if len(vars) == 0 || len(vars) > 64 {
		return nil, false
	}
	cands := map[string][]uint64{}
	addCand := func(name string, v uint64) {
		cands[name] = append(cands[name], v)
	}
	for _, c := range constraints {
		mineCandidates(c, true, addCand)
	}
	// Universal fallbacks.
	for _, v := range vars {
		addCand(v.Name, 0)
		addCand(v.Name, 1)
		addCand(v.Name, mask(v.Width))
	}
	for name := range cands {
		sort.Slice(cands[name], func(i, j int) bool { return cands[name][i] < cands[name][j] })
		cands[name] = dedupU64(cands[name])
	}

	m := Model{}
	for _, v := range vars {
		m[v.Name] = 0
	}
	countSat := func() int {
		n := 0
		for _, c := range constraints {
			if EvalBool(c, m) {
				n++
			}
		}
		return n
	}
	best := countSat()
	if best == len(constraints) {
		return m, true
	}
	// Greedy coordinate improvement over candidates, visiting variables
	// in first-use order (see above).
	for pass := 0; pass < 6; pass++ {
		improved := false
		for _, v := range vars {
			name := v.Name
			cur := m[name]
			bestV, bestN := cur, best
			for _, v := range cands[name] {
				if v == cur {
					continue
				}
				m[name] = v
				if n := countSat(); n > bestN {
					bestV, bestN = v, n
				}
			}
			m[name] = bestV
			if bestN > best {
				best = bestN
				improved = true
				if best == len(constraints) {
					return m, true
				}
			}
		}
		if !improved {
			break
		}
	}
	return nil, false
}

func dedupU64(in []uint64) []uint64 {
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// mineCandidates walks a constraint extracting candidate values for the
// variables it mentions, inverting simple operator chains. want is the
// polarity the constraint should take.
func mineCandidates(e *Expr, want bool, add func(string, uint64)) {
	switch e.Kind {
	case KXor:
		// BoolNot is encoded as Xor(x, 1).
		if e.Width == 1 && e.B.IsTrue() {
			mineCandidates(e.A, !want, add)
			return
		}
	case KAnd:
		if e.Width == 1 {
			mineCandidates(e.A, want, add)
			mineCandidates(e.B, want, add)
			return
		}
	case KOr:
		if e.Width == 1 {
			mineCandidates(e.A, want, add)
			mineCandidates(e.B, want, add)
			return
		}
	case KEq:
		if cv, ok := e.B.IsConst(); ok {
			if want {
				invertChain(e.A, cv, add)
			} else {
				invertChain(e.A, cv+1, add)
				invertChain(e.A, cv-1, add)
				invertChain(e.A, ^cv, add)
			}
			return
		}
		// var == var: try making both zero (fallbacks cover it).
	case KUlt:
		av, aok := e.A.IsConst()
		bv, bok := e.B.IsConst()
		switch {
		case bok && want: // x < c  ->  c-1, 0
			invertChain(e.A, bv-1, add)
			invertChain(e.A, 0, add)
		case bok && !want: // !(x < c) -> c, max
			invertChain(e.A, bv, add)
			invertChain(e.A, mask(e.A.Width), add)
		case aok && want: // c < x -> c+1, max
			invertChain(e.B, av+1, add)
			invertChain(e.B, mask(e.B.Width), add)
		case aok && !want: // !(c < x) -> c, 0
			invertChain(e.B, av, add)
			invertChain(e.B, 0, add)
		}
		return
	case KSlt:
		av, aok := e.A.IsConst()
		bv, bok := e.B.IsConst()
		switch {
		case bok && want:
			invertChain(e.A, bv-1, add)
			invertChain(e.A, uint64(signExtend(mask(e.A.Width)>>1, e.A.Width))+1, add) // min signed
		case bok && !want:
			invertChain(e.A, bv, add)
			invertChain(e.A, mask(e.A.Width)>>1, add) // max signed
		case aok && want:
			invertChain(e.B, av+1, add)
			invertChain(e.B, mask(e.B.Width)>>1, add)
		case aok && !want:
			invertChain(e.B, av, add)
		}
		return
	}
	// Generic: nothing structural; mine subtrees for embedded comparisons.
	if e.A != nil && e.A.Width == 1 {
		mineCandidates(e.A, want, add)
	}
	if e.B != nil && e.B.Width == 1 {
		mineCandidates(e.B, want, add)
	}
}

// invertChain propagates a target value backwards through invertible
// operator chains until reaching a variable.
func invertChain(e *Expr, target uint64, add func(string, uint64)) {
	for depth := 0; depth < 32; depth++ {
		target &= mask(e.Width)
		switch e.Kind {
		case KVar:
			add(e.Name, target)
			return
		case KAdd:
			if cv, ok := e.B.IsConst(); ok {
				target -= cv
				e = e.A
				continue
			}
			return
		case KSub:
			if cv, ok := e.B.IsConst(); ok {
				target += cv
				e = e.A
				continue
			}
			if cv, ok := e.A.IsConst(); ok {
				target = cv - target
				e = e.B
				continue
			}
			return
		case KXor:
			if cv, ok := e.B.IsConst(); ok {
				target ^= cv
				e = e.A
				continue
			}
			return
		case KNot:
			target = ^target
			e = e.A
			continue
		case KZext, KSext:
			e = e.A
			continue
		case KExtract:
			if e.Lo == 0 {
				e = e.A
				continue
			}
			target <<= e.Lo
			e = e.A
			continue
		case KConcat:
			// Push into the low part; high part handled when it is a var.
			loW := e.B.Width
			invertChain(e.B, target&mask(loW), add)
			invertChain(e.A, target>>loW, add)
			return
		case KShl:
			if cv, ok := e.B.IsConst(); ok {
				target >>= cv % uint64(e.Width)
				e = e.A
				continue
			}
			return
		case KLshr:
			if cv, ok := e.B.IsConst(); ok {
				target <<= cv % uint64(e.Width)
				e = e.A
				continue
			}
			return
		case KMul:
			if cv, ok := e.B.IsConst(); ok && cv != 0 && cv&(cv-1) == 0 {
				// Power-of-two multiplier: invert by shifting.
				shift := uint(0)
				for cv > 1 {
					cv >>= 1
					shift++
				}
				target >>= shift
				e = e.A
				continue
			}
			return
		default:
			return
		}
	}
}

// --- Parallel pool -----------------------------------------------------------

// Query is one independent constraint system handed to the pool.
type Query struct {
	ID          int
	Constraints []*Expr
}

// Answer is the pool's verdict on one query.
type Answer struct {
	ID     int
	Model  Model
	Result Result
}

// SolvePool solves queries concurrently (paper §3.4.4: "we collect the
// target constraints together and solve them in parallel"). workers <= 0
// uses one worker per query up to 8.
func SolvePool(queries []Query, workers int, maxConflicts int64) []Answer {
	answers, _ := SolvePoolStats(queries, workers, maxConflicts)
	return answers
}

// SolvePoolStats is SolvePool returning the merged solver statistics.
// Answers are returned in submission order — NOT completion order — so
// callers that act on models in sequence (the fuzzer turns them into
// adaptive seeds) behave identically regardless of worker scheduling.
func SolvePoolStats(queries []Query, workers int, maxConflicts int64) ([]Answer, SolverStats) {
	answers, stats, _ := SolvePoolCtx(context.Background(), queries, PoolOptions{
		Workers: workers, MaxConflicts: maxConflicts,
	})
	return answers, stats
}

// PoolOptions tunes SolvePoolCtx.
type PoolOptions struct {
	// Workers bounds pool concurrency (<= 0: one per query, capped at 8).
	Workers int
	// MaxConflicts bounds each query's SAT search (0 = default budget).
	MaxConflicts int64
	// Faults is the fault-injection hook: it is consulted once per query
	// and a non-nil error aborts the pool (the error is classified
	// solver-exhausted by the injector). Nil injects nothing.
	Faults *faultinject.Injector
	// Memo is the solver-query cache consulted before DPLL (nil: no
	// memoization). It is ignored whenever Faults is non-nil: a faulted
	// attempt must neither be served from nor feed the cache, so an
	// injected fault can never poison results shared with clean attempts.
	Memo SolverMemo
	// Incremental enables the sequential prefix-sharing pre-pass: queries
	// are first simplified at the word level and then attempted as
	// assumption solves on one shared SAT instance that retains learned
	// clauses across the flip family. The pre-pass only serves answers
	// that are byte-identical to the fresh path's (memo hits, trivial
	// verdicts, deterministic probe models, and Unsat proofs — never a
	// model found under retained heuristic state), so findings digests are
	// invariant under this flag. Ignored whenever Faults is non-nil:
	// faulted attempts bypass group reuse exactly as they bypass the memo,
	// and skipping the pre-pass keeps the injector's deterministic
	// per-query call count unchanged.
	Incremental bool
}

// SolvePoolCtx is the resilient form of SolvePoolStats: the context
// cancels in-flight SAT searches cooperatively (cancelled queries report
// Unknown), and the fault-injection hook can starve the pool's budget.
// The returned error is non-nil only when a fault fired; whether a fault
// fires depends on the injector's deterministic per-job call count, never
// on worker scheduling, so faulted campaigns stay worker-count invariant.
func SolvePoolCtx(ctx context.Context, queries []Query, opts PoolOptions) ([]Answer, SolverStats, error) {
	memo := opts.Memo
	if opts.Faults != nil {
		// Faulted attempts bypass the memo entirely (no read, no write,
		// no hit/miss accounting): results influenced by an injected
		// fault must never reach the shared cache, and cache hits must
		// never mask the planned fault. The fault hook below still runs
		// once per query first, so the injector's deterministic call
		// count is identical with the memo on or off.
		memo = nil
	}
	answers := make([]Answer, len(queries))
	solved := make([]bool, len(queries))
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		stats   SolverStats
		poolErr error
		aborted atomic.Bool
	)
	if opts.Incremental && opts.Faults == nil {
		// Sequential pre-pass: answer what the shared-instance path can
		// answer deterministically, leave the rest for the fresh pool.
		solveIncremental(ctx, queries, opts, memo, answers, solved, &stats)
	}
	remaining := 0
	for _, done := range solved {
		if !done {
			remaining++
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = remaining
		if workers > 8 {
			workers = 8
		}
	}
	if workers > remaining {
		workers = remaining
	}
	type task struct {
		pos int
		q   Query
	}
	in := make(chan task)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range in {
				if aborted.Load() {
					answers[t.pos] = Answer{ID: t.q.ID, Result: Unknown}
					continue
				}
				if err := opts.Faults.SolverFault(); err != nil {
					aborted.Store(true)
					mu.Lock()
					if poolErr == nil {
						poolErr = err
					}
					mu.Unlock()
					answers[t.pos] = Answer{ID: t.q.ID, Result: Unknown}
					continue
				}
				var canon Canon
				if memo != nil {
					canon = Canonicalize(t.q.Constraints, opts.MaxConflicts)
					if v, ok := memo.Lookup(canon); ok {
						var m Model
						if v.Result == Sat {
							m = v.ModelFor(canon)
						}
						answers[t.pos] = Answer{ID: t.q.ID, Model: m, Result: v.Result}
						mu.Lock()
						// A hit still counts as a query (Queries stays
						// comparable memo-on vs memo-off) but skips the
						// fast path and DPLL, so SATCalls/FastPathHits
						// record only real solving work.
						stats.Queries++
						mu.Unlock()
						continue
					}
				}
				s := &Solver{MaxConflicts: opts.MaxConflicts, Stop: ctx.Done()}
				m, r := s.Solve(t.q.Constraints)
				if memo != nil && (r == Sat || r == Unsat) {
					memo.Store(canon, VerdictOf(canon, m, r))
				}
				answers[t.pos] = Answer{ID: t.q.ID, Model: m, Result: r}
				mu.Lock()
				stats.Queries += s.Stats.Queries
				stats.FastPathHits += s.Stats.FastPathHits
				stats.SATCalls += s.Stats.SATCalls
				stats.SATConflicts += s.Stats.SATConflicts
				stats.Unknowns += s.Stats.Unknowns
				stats.Propagations += s.Stats.Propagations
				mu.Unlock()
			}
		}()
	}
	for i, q := range queries {
		if solved[i] {
			continue
		}
		in <- task{pos: i, q: q}
	}
	close(in)
	wg.Wait()
	return answers, stats, poolErr
}

// solveIncremental is the prefix-sharing pre-pass behind
// PoolOptions.Incremental. It walks the flip family sequentially (the shared
// SAT instance is stateful, and sequential order makes retained-state effects
// a pure function of the query list) and answers each query from the first
// source that is provably identical to what the fresh pool would produce:
//
//  1. memo hit (same lookup the fresh worker performs first),
//  2. trivial verdicts (constant-False conjunct / all-True conjunction),
//  3. the concrete probe — a pure function of the query, so its Sat model
//     is byte-identical to the fresh path's,
//  4. word-level simplification proving the conjunction False,
//  5. an assumption solve on the shared instance — served only when Unsat.
//
// Sat under assumptions is never served: retained learned clauses, VSIDS
// activity, and saved phases can steer CDCL to a different satisfying
// assignment than a fresh instance would find, and Sat models become
// adaptive seeds. Those queries (and Unknowns) fall through unanswered and
// are solved by the unchanged parallel fresh path, which is what keeps
// FindingsDigest and StateDigest byte-identical incremental on/off at any
// worker count. Group- and simplifier-proved Unsats are genuinely
// unsatisfiable, so storing them in the memo is sound; the fresh run may
// cache Unknown-free subsets differently, which is digest-invisible because
// only Sat results feed the seed queue.
func solveIncremental(ctx context.Context, queries []Query, opts PoolOptions, memo SolverMemo, answers []Answer, solved []bool, stats *SolverStats) {
	budget := opts.MaxConflicts
	if budget == 0 {
		budget = DefaultMaxConflicts
	}
	simp := NewSimplifier()
	group := newGroupSolver()
	prober := &Solver{} // method receiver only; its stats stay untouched
	for i, q := range queries {
		select {
		case <-ctx.Done():
			return
		default:
		}
		var canon Canon
		if memo != nil {
			canon = Canonicalize(q.Constraints, opts.MaxConflicts)
			if v, ok := memo.Lookup(canon); ok {
				var m Model
				if v.Result == Sat {
					m = v.ModelFor(canon)
				}
				answers[i] = Answer{ID: q.ID, Model: m, Result: v.Result}
				solved[i] = true
				stats.Queries++
				continue
			}
		}
		serve := func(m Model, r Result) {
			answers[i] = Answer{ID: q.ID, Model: m, Result: r}
			solved[i] = true
			stats.Queries++
			if memo != nil && (r == Sat || r == Unsat) {
				memo.Store(canon, VerdictOf(canon, m, r))
			}
		}
		// Mirror Solve's trivial filter exactly.
		var live []*Expr
		hasFalse := false
		for _, c := range q.Constraints {
			if c.IsFalse() {
				hasFalse = true
				break
			}
			if c.IsTrue() {
				continue
			}
			live = append(live, c)
		}
		if hasFalse {
			serve(nil, Unsat)
			continue
		}
		if len(live) == 0 {
			serve(Model{}, Sat)
			continue
		}
		if m, ok := prober.probe(live); ok {
			stats.FastPathHits++
			serve(m, Sat)
			continue
		}
		simplified, provenFalse := simp.Conjunction(live)
		if provenFalse {
			stats.SimplifiedUnsats++
			serve(nil, Unsat)
			continue
		}
		stats.AssumeCalls++
		before := group.conflicts()
		unsat := group.proveUnsat(simplified, budget, ctx.Done())
		stats.SATConflicts += group.conflicts() - before
		if unsat {
			stats.AssumeUnsats++
			serve(nil, Unsat)
		}
	}
	stats.Propagations += group.props()
}
