// Package symbolic is the SMT backend of WASAI, substituting for Z3 in the
// paper's implementation. It provides:
//
//   - a hash-consed quantifier-free bitvector expression DAG (widths 1-64)
//     with aggressive constant folding and algebraic simplification, the
//     analogue of Z3's BitVec terms;
//   - a concrete evaluator used for concolic replay and model checking;
//   - a complete solver for conjunctions of constraints: a concrete-probing
//     fast path (boundary/equality candidate propagation, the common case
//     for fuzzing constraints) backed by bit-blasting to CNF and a
//     from-scratch CDCL SAT solver with two-watched literals, VSIDS
//     activity, first-UIP clause learning and Luby restarts.
//
// WASAI's queries are exactly the QF_BV fragment (flipped branch conditions
// over symbolic transaction inputs), which Z3 itself discharges by
// bit-blasting to CDCL — so the substitution preserves both the interface
// and the decision procedure.
package symbolic

import (
	"fmt"
	"math/bits"
	"strings"
)

// Kind enumerates expression node kinds.
type Kind uint8

// Expression kinds. Booleans are 1-bit vectors, so comparison results
// compose with bitwise operators directly (matching Wasm's i32 0/1
// comparison results after Extract).
const (
	KConst Kind = iota + 1
	KVar
	KAdd
	KSub
	KMul
	KUDiv
	KSDiv
	KURem
	KSRem
	KAnd
	KOr
	KXor
	KNot // bitwise complement
	KShl
	KLshr
	KAshr
	KConcat  // A is high bits, B is low bits
	KExtract // bits [Hi:Lo] of A
	KZext
	KSext
	KEq  // 1-bit result
	KUlt // 1-bit result
	KSlt // 1-bit result
	KIte // A ? B : C, A is 1-bit
	KRotl
	KRotr
	KPopcnt // population count of A (same width)
)

func (k Kind) String() string {
	names := map[Kind]string{
		KConst: "const", KVar: "var", KAdd: "add", KSub: "sub", KMul: "mul",
		KUDiv: "udiv", KSDiv: "sdiv", KURem: "urem", KSRem: "srem",
		KAnd: "and", KOr: "or", KXor: "xor", KNot: "not",
		KShl: "shl", KLshr: "lshr", KAshr: "ashr",
		KConcat: "concat", KExtract: "extract", KZext: "zext", KSext: "sext",
		KEq: "eq", KUlt: "ult", KSlt: "slt", KIte: "ite",
		KRotl: "rotl", KRotr: "rotr", KPopcnt: "popcnt",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Expr is one node of the hash-consed expression DAG. Exprs are immutable
// and pointer-comparable within one Ctx.
type Expr struct {
	Kind  Kind
	Width uint8 // result width in bits, 1..64
	Val   uint64
	Name  string // KVar only
	A     *Expr
	B     *Expr
	C     *Expr
	// Hi and Lo parameterize KExtract.
	Hi, Lo uint8

	id uint32 // interning id, stable within a Ctx
	// hash is the full structural content hash (variable names included)
	// and shape the name-blind variant (every variable hashes as its
	// width alone). Both are computed once at intern time from the
	// children's precomputed hashes, so structural hashing of a DAG node
	// is O(1) — the hash-consing payoff canonicalization relies on.
	hash  uint64
	shape uint64
}

// Hash returns the structural content hash of e: equal across Ctxs for
// structurally equal expressions, variable names included.
func (e *Expr) Hash() uint64 { return e.hash }

// ShapeHash returns the name-blind structural hash of e: two expressions
// that differ only by a bijective renaming of variables (of equal widths)
// share a shape hash. Used to sort clauses without looking at names, so
// the sort itself is α-invariant.
func (e *Expr) ShapeHash() uint64 { return e.shape }

// exprKey is the structural identity used for hash-consing.
type exprKey struct {
	kind    Kind
	width   uint8
	hi, lo  uint8
	val     uint64
	name    string
	a, b, c *Expr
}

// Ctx interns expressions. All expressions combined in one formula must
// come from the same Ctx. A Ctx is not safe for concurrent use; the solver
// pool gives each worker its own.
type Ctx struct {
	interned map[exprKey]*Expr
	nextID   uint32
	// fresh counts anonymous variables (symbolic load objects).
	fresh int
}

// NewCtx returns an empty context.
func NewCtx() *Ctx { return &Ctx{interned: map[exprKey]*Expr{}} }

// NumNodes returns the number of distinct nodes interned.
func (c *Ctx) NumNodes() int { return len(c.interned) }

func (c *Ctx) intern(k exprKey) *Expr {
	if e, ok := c.interned[k]; ok {
		return e
	}
	e := &Expr{
		Kind: k.kind, Width: k.width, Val: k.val, Name: k.name,
		A: k.a, B: k.b, C: k.c, Hi: k.hi, Lo: k.lo, id: c.nextID,
	}
	e.hash, e.shape = hashNode(e)
	c.nextID++
	c.interned[k] = e
	return e
}

// hashNode computes the content and shape hashes of a node whose children
// are already interned (and so already carry their hashes). FNV-1a over
// the node's own fields mixed with the children's hashes.
func hashNode(e *Expr) (hash, shape uint64) {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	mix := func(h, v uint64) uint64 {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
		return h
	}
	h := mix(offset, uint64(e.Kind))
	h = mix(h, uint64(e.Width)|uint64(e.Hi)<<8|uint64(e.Lo)<<16)
	h = mix(h, e.Val)
	s := h
	if e.Kind == KVar {
		for i := 0; i < len(e.Name); i++ {
			h ^= uint64(e.Name[i])
			h *= prime
		}
		// shape deliberately excludes the name: a variable's shape is
		// its kind and width alone.
	}
	for _, x := range []*Expr{e.A, e.B, e.C} {
		if x == nil {
			h = mix(h, 0)
			s = mix(s, 0)
			continue
		}
		h = mix(h, x.hash)
		s = mix(s, x.shape)
	}
	return h, s
}

func mask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << w) - 1
}

// signExtend sign-extends the w-bit value v to 64 bits.
func signExtend(v uint64, w uint8) int64 {
	if w >= 64 {
		return int64(v)
	}
	shift := 64 - uint(w)
	return int64(v<<shift) >> shift
}

// Const builds a w-bit constant.
func (c *Ctx) Const(v uint64, w uint8) *Expr {
	return c.intern(exprKey{kind: KConst, width: w, val: v & mask(w)})
}

// True and False are the 1-bit boolean constants.
func (c *Ctx) True() *Expr  { return c.Const(1, 1) }
func (c *Ctx) False() *Expr { return c.Const(0, 1) }

// Var builds (or returns) the named w-bit variable.
func (c *Ctx) Var(name string, w uint8) *Expr {
	return c.intern(exprKey{kind: KVar, width: w, name: name})
}

// Fresh builds an anonymous variable with the given prefix — used for the
// symbolic load objects ⟨a, s⟩ of paper §3.4.1.
func (c *Ctx) Fresh(prefix string, w uint8) *Expr {
	c.fresh++
	return c.Var(fmt.Sprintf("%s!%d", prefix, c.fresh), w)
}

// IsConst reports whether e is a constant, returning its value.
func (e *Expr) IsConst() (uint64, bool) {
	if e.Kind == KConst {
		return e.Val, true
	}
	return 0, false
}

// IsTrue reports a constant 1-bit 1.
func (e *Expr) IsTrue() bool { return e.Kind == KConst && e.Width == 1 && e.Val == 1 }

// IsFalse reports a constant 1-bit 0.
func (e *Expr) IsFalse() bool { return e.Kind == KConst && e.Width == 1 && e.Val == 0 }

// binop builds a simplified binary node.
func (c *Ctx) binop(k Kind, a, b *Expr) *Expr {
	if a.Width != b.Width {
		panic(fmt.Sprintf("symbolic: width mismatch %s: %d vs %d", k, a.Width, b.Width))
	}
	w := a.Width
	av, aConst := a.IsConst()
	bv, bConst := b.IsConst()
	if aConst && bConst {
		if v, ok := foldBin(k, av, bv, w); ok {
			return c.Const(v, w)
		}
	}
	// Commutative normalization: constants to the right.
	switch k {
	case KAdd, KMul, KAnd, KOr, KXor:
		if aConst && !bConst {
			a, b = b, a
			av, aConst, bv, bConst = bv, bConst, av, aConst
		}
	}
	// Identity / absorption rules.
	switch k {
	case KAdd:
		if bConst && bv == 0 {
			return a
		}
	case KSub:
		if bConst && bv == 0 {
			return a
		}
		if a == b {
			return c.Const(0, w)
		}
	case KMul:
		if bConst {
			switch bv {
			case 0:
				return c.Const(0, w)
			case 1:
				return a
			}
		}
	case KAnd:
		if bConst {
			if bv == 0 {
				return c.Const(0, w)
			}
			if bv == mask(w) {
				return a
			}
		}
		if a == b {
			return a
		}
	case KOr:
		if bConst {
			if bv == 0 {
				return a
			}
			if bv == mask(w) {
				return c.Const(mask(w), w)
			}
		}
		if a == b {
			return a
		}
	case KXor:
		if bConst && bv == 0 {
			return a
		}
		if a == b {
			return c.Const(0, w)
		}
	case KShl, KLshr, KAshr:
		if bConst && bv == 0 {
			return a
		}
	case KUDiv, KSDiv:
		if bConst && bv == 1 {
			return a
		}
	}
	return c.intern(exprKey{kind: k, width: w, a: a, b: b})
}

func foldBin(k Kind, a, b uint64, w uint8) (uint64, bool) {
	m := mask(w)
	switch k {
	case KAdd:
		return (a + b) & m, true
	case KSub:
		return (a - b) & m, true
	case KMul:
		return (a * b) & m, true
	case KUDiv:
		if b == 0 {
			return 0, false
		}
		return (a / b) & m, true
	case KSDiv:
		if b == 0 {
			return 0, false
		}
		sa, sb := signExtend(a, w), signExtend(b, w)
		if sb == 0 {
			return 0, false
		}
		if sa == -1<<63 && sb == -1 {
			return uint64(sa) & m, true
		}
		return uint64(sa/sb) & m, true
	case KURem:
		if b == 0 {
			return 0, false
		}
		return (a % b) & m, true
	case KSRem:
		sa, sb := signExtend(a, w), signExtend(b, w)
		if sb == 0 {
			return 0, false
		}
		if sa == -1<<63 && sb == -1 {
			return 0, true
		}
		return uint64(sa%sb) & m, true
	case KAnd:
		return a & b, true
	case KOr:
		return a | b, true
	case KXor:
		return a ^ b, true
	case KShl:
		return (a << (b % uint64(w))) & m, true
	case KLshr:
		return (a >> (b % uint64(w))) & m, true
	case KAshr:
		return uint64(signExtend(a, w)>>(b%uint64(w))) & m, true
	case KRotl:
		n := uint(b % uint64(w))
		return ((a << n) | (a >> (uint(w) - n))) & m, true
	case KRotr:
		n := uint(b % uint64(w))
		return ((a >> n) | (a << (uint(w) - n))) & m, true
	default:
		return 0, false
	}
}

// Arithmetic and bitwise constructors.
func (c *Ctx) Add(a, b *Expr) *Expr  { return c.binop(KAdd, a, b) }
func (c *Ctx) Sub(a, b *Expr) *Expr  { return c.binop(KSub, a, b) }
func (c *Ctx) Mul(a, b *Expr) *Expr  { return c.binop(KMul, a, b) }
func (c *Ctx) UDiv(a, b *Expr) *Expr { return c.binop(KUDiv, a, b) }
func (c *Ctx) SDiv(a, b *Expr) *Expr { return c.binop(KSDiv, a, b) }
func (c *Ctx) URem(a, b *Expr) *Expr { return c.binop(KURem, a, b) }
func (c *Ctx) SRem(a, b *Expr) *Expr { return c.binop(KSRem, a, b) }
func (c *Ctx) And(a, b *Expr) *Expr  { return c.binop(KAnd, a, b) }
func (c *Ctx) Or(a, b *Expr) *Expr   { return c.binop(KOr, a, b) }
func (c *Ctx) Xor(a, b *Expr) *Expr  { return c.binop(KXor, a, b) }
func (c *Ctx) Shl(a, b *Expr) *Expr  { return c.binop(KShl, a, b) }
func (c *Ctx) Lshr(a, b *Expr) *Expr { return c.binop(KLshr, a, b) }
func (c *Ctx) Ashr(a, b *Expr) *Expr { return c.binop(KAshr, a, b) }
func (c *Ctx) Rotl(a, b *Expr) *Expr { return c.binop(KRotl, a, b) }
func (c *Ctx) Rotr(a, b *Expr) *Expr { return c.binop(KRotr, a, b) }

// Not is the bitwise complement.
func (c *Ctx) Not(a *Expr) *Expr {
	if v, ok := a.IsConst(); ok {
		return c.Const(^v, a.Width)
	}
	if a.Kind == KNot {
		return a.A
	}
	return c.intern(exprKey{kind: KNot, width: a.Width, a: a})
}

// Neg is two's-complement negation.
func (c *Ctx) Neg(a *Expr) *Expr { return c.Sub(c.Const(0, a.Width), a) }

// Eq builds a 1-bit equality.
func (c *Ctx) Eq(a, b *Expr) *Expr {
	if a.Width != b.Width {
		panic(fmt.Sprintf("symbolic: eq width mismatch %d vs %d", a.Width, b.Width))
	}
	if a == b {
		return c.True()
	}
	av, aok := a.IsConst()
	bv, bok := b.IsConst()
	if aok && bok {
		if av == bv {
			return c.True()
		}
		return c.False()
	}
	if aok {
		a, b = b, a
		bv, bok = av, true
	}
	if bok {
		// Comparisons against constants simplify through widening: Wasm
		// pushes comparison results as zero-extended 0/1, and branch
		// conditions test them against zero, so these rules collapse the
		// FromBool/Bool round trip.
		if a.Kind == KZext && bv <= mask(a.A.Width) {
			return c.Eq(a.A, c.Const(bv, a.A.Width))
		}
		// popcnt(x) == 0  <=>  x == 0 (the popcount-obfuscation rewrite);
		// popcnt(x) == width(x)  <=>  x == all-ones.
		if a.Kind == KPopcnt {
			if bv == 0 {
				return c.Eq(a.A, c.Const(0, a.A.Width))
			}
			if bv == uint64(a.A.Width) {
				return c.Eq(a.A, c.Const(mask(a.A.Width), a.A.Width))
			}
			if bv > uint64(a.A.Width) {
				return c.False()
			}
		}
		if a.Width == 1 {
			if bv == 0 {
				return c.BoolNot(a)
			}
			return a
		}
	}
	return c.intern(exprKey{kind: KEq, width: 1, a: a, b: b})
}

// Ne builds a 1-bit disequality.
func (c *Ctx) Ne(a, b *Expr) *Expr { return c.BoolNot(c.Eq(a, b)) }

// Ult builds unsigned less-than.
func (c *Ctx) Ult(a, b *Expr) *Expr {
	av, aok := a.IsConst()
	bv, bok := b.IsConst()
	if aok && bok {
		if av < bv {
			return c.True()
		}
		return c.False()
	}
	if bok && bv == 0 {
		return c.False() // nothing is < 0 unsigned
	}
	if a == b {
		return c.False()
	}
	return c.intern(exprKey{kind: KUlt, width: 1, a: a, b: b})
}

// Slt builds signed less-than.
func (c *Ctx) Slt(a, b *Expr) *Expr {
	av, aok := a.IsConst()
	bv, bok := b.IsConst()
	if aok && bok {
		if signExtend(av, a.Width) < signExtend(bv, b.Width) {
			return c.True()
		}
		return c.False()
	}
	if a == b {
		return c.False()
	}
	return c.intern(exprKey{kind: KSlt, width: 1, a: a, b: b})
}

// Derived comparisons.
func (c *Ctx) Ule(a, b *Expr) *Expr { return c.BoolNot(c.Ult(b, a)) }
func (c *Ctx) Ugt(a, b *Expr) *Expr { return c.Ult(b, a) }
func (c *Ctx) Uge(a, b *Expr) *Expr { return c.BoolNot(c.Ult(a, b)) }
func (c *Ctx) Sle(a, b *Expr) *Expr { return c.BoolNot(c.Slt(b, a)) }
func (c *Ctx) Sgt(a, b *Expr) *Expr { return c.Slt(b, a) }
func (c *Ctx) Sge(a, b *Expr) *Expr { return c.BoolNot(c.Slt(a, b)) }

// Boolean (1-bit) connectives.
func (c *Ctx) BoolAnd(a, b *Expr) *Expr { return c.And(a, b) }
func (c *Ctx) BoolOr(a, b *Expr) *Expr  { return c.Or(a, b) }

// BoolNot flips a 1-bit value.
func (c *Ctx) BoolNot(a *Expr) *Expr {
	if a.Width != 1 {
		panic("symbolic: BoolNot on non-boolean")
	}
	return c.Xor(a, c.True())
}

// Ite builds cond ? t : f.
func (c *Ctx) Ite(cond, t, f *Expr) *Expr {
	if cond.Width != 1 {
		panic("symbolic: Ite condition must be 1-bit")
	}
	if t.Width != f.Width {
		panic("symbolic: Ite arm width mismatch")
	}
	if cond.IsTrue() {
		return t
	}
	if cond.IsFalse() {
		return f
	}
	if t == f {
		return t
	}
	return c.intern(exprKey{kind: KIte, width: t.Width, a: cond, b: t, c: f})
}

// Concat joins hi (high bits) and lo (low bits).
func (c *Ctx) Concat(hi, lo *Expr) *Expr {
	w := int(hi.Width) + int(lo.Width)
	if w > 64 {
		panic(fmt.Sprintf("symbolic: concat width %d exceeds 64", w))
	}
	hv, hok := hi.IsConst()
	lv, lok := lo.IsConst()
	if hok && lok {
		return c.Const(hv<<lo.Width|lv, uint8(w))
	}
	// concat(extract(x, hi1, mid+1), extract(x, mid, lo1)) == extract(x, hi1, lo1)
	if hi.Kind == KExtract && lo.Kind == KExtract && hi.A == lo.A && hi.Lo == lo.Hi+1 {
		return c.Extract(hi.A, hi.Hi, lo.Lo)
	}
	return c.intern(exprKey{kind: KConcat, width: uint8(w), a: hi, b: lo})
}

// Extract takes bits [hi:lo] of a.
func (c *Ctx) Extract(a *Expr, hi, lo uint8) *Expr {
	if hi < lo || hi >= a.Width {
		panic(fmt.Sprintf("symbolic: extract [%d:%d] of width %d", hi, lo, a.Width))
	}
	w := hi - lo + 1
	if w == a.Width {
		return a
	}
	if v, ok := a.IsConst(); ok {
		return c.Const(v>>lo, w)
	}
	switch a.Kind {
	case KExtract:
		return c.Extract(a.A, a.Lo+hi, a.Lo+lo)
	case KConcat:
		lw := a.B.Width
		if hi < lw {
			return c.Extract(a.B, hi, lo)
		}
		if lo >= lw {
			return c.Extract(a.A, hi-lw, lo-lw)
		}
	case KZext:
		if hi < a.A.Width {
			return c.Extract(a.A, hi, lo)
		}
		if lo >= a.A.Width {
			return c.Const(0, w)
		}
	}
	return c.intern(exprKey{kind: KExtract, width: w, a: a, hi: hi, lo: lo})
}

// ZExt zero-extends a to w bits.
func (c *Ctx) ZExt(a *Expr, w uint8) *Expr {
	if w < a.Width {
		panic("symbolic: zext narrows")
	}
	if w == a.Width {
		return a
	}
	if v, ok := a.IsConst(); ok {
		return c.Const(v, w)
	}
	return c.intern(exprKey{kind: KZext, width: w, a: a})
}

// SExt sign-extends a to w bits.
func (c *Ctx) SExt(a *Expr, w uint8) *Expr {
	if w < a.Width {
		panic("symbolic: sext narrows")
	}
	if w == a.Width {
		return a
	}
	if v, ok := a.IsConst(); ok {
		return c.Const(uint64(signExtend(v, a.Width)), w)
	}
	return c.intern(exprKey{kind: KSext, width: w, a: a})
}

// Truncate keeps the low w bits of a.
func (c *Ctx) Truncate(a *Expr, w uint8) *Expr {
	if w == a.Width {
		return a
	}
	return c.Extract(a, w-1, 0)
}

// Bool converts a value to 1-bit "is non-zero".
func (c *Ctx) Bool(a *Expr) *Expr {
	if a.Width == 1 {
		return a
	}
	return c.Ne(a, c.Const(0, a.Width))
}

// FromBool widens a 1-bit value to w bits (0 or 1), matching Wasm
// comparison results.
func (c *Ctx) FromBool(b *Expr, w uint8) *Expr { return c.ZExt(b, w) }

// Popcount builds the population count of a (same width result). It is a
// first-class node so that the common obfuscation pattern
// popcnt(x ^ c) == 0 simplifies to x == c instead of forcing the solver
// through a 64-bit adder tree (see Eq).
func (c *Ctx) Popcount(a *Expr) *Expr {
	if v, ok := a.IsConst(); ok {
		return c.Const(uint64(bits.OnesCount64(v)), a.Width)
	}
	return c.intern(exprKey{kind: KPopcnt, width: a.Width, a: a})
}

// Vars collects the free variables of e into out (deduplicated).
func (e *Expr) Vars(out map[string]*Expr) {
	seen := map[*Expr]bool{}
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x == nil || seen[x] {
			return
		}
		seen[x] = true
		if x.Kind == KVar {
			out[x.Name] = x
			return
		}
		walk(x.A)
		walk(x.B)
		walk(x.C)
	}
	walk(e)
}

// String renders the expression in a compact s-expression form.
func (e *Expr) String() string {
	var sb strings.Builder
	e.write(&sb, 0)
	return sb.String()
}

func (e *Expr) write(sb *strings.Builder, depth int) {
	if depth > 12 {
		sb.WriteString("...")
		return
	}
	switch e.Kind {
	case KConst:
		fmt.Fprintf(sb, "%#x", e.Val)
	case KVar:
		sb.WriteString(e.Name)
	case KExtract:
		fmt.Fprintf(sb, "(extract[%d:%d] ", e.Hi, e.Lo)
		e.A.write(sb, depth+1)
		sb.WriteString(")")
	default:
		fmt.Fprintf(sb, "(%s", e.Kind)
		for _, x := range []*Expr{e.A, e.B, e.C} {
			if x == nil {
				break
			}
			sb.WriteString(" ")
			x.write(sb, depth+1)
		}
		sb.WriteString(")")
	}
}
