package symbolic

// Word-level simplification pre-pass for flip-family conjunctions.
//
// The adaptive-seed stage asks one query per flippable conjunct of a trace's
// path condition, so the same prefix expressions reach the solver dozens of
// times. Before bit-blasting, Simplifier rewrites the conjunction at the word
// level: constant folding and algebraic identities (by rebuilding every node
// through the Ctx constructors, which already implement them), conjunction
// flattening, double-negation and De Morgan pushes, duplicate and
// complementary-literal detection, equality slicing over concatenations, and
// equality propagation (substituting constants and variable aliases proved by
// equality conjuncts into the rest of the conjunction).
//
// Every rewrite is equivalence-preserving — equality conjuncts are KEPT and
// only the *other* conjuncts are rewritten under them, so the output
// conjunction has exactly the same models as the input, not merely the same
// satisfiability. That is what lets the differential tests assert verdict
// agreement in both directions, and what makes a provenFalse result a sound
// Unsat answer.
//
// A Simplifier is NOT safe for concurrent use: it owns a private Ctx and a
// rebuild memo that are mutated on every call. The solver pool only invokes
// it from the sequential incremental pre-pass.
type Simplifier struct {
	ctx *Ctx
	//wasai:localcache rebuild memo: maps caller-Ctx nodes to their rebuilt
	// twins in s.ctx; shared across the queries of one flip family so the
	// common prefix is rebuilt once, discarded with the Simplifier.
	rebuilt map[*Expr]*Expr
}

// NewSimplifier returns a fresh simplifier with its own expression context.
func NewSimplifier() *Simplifier {
	return &Simplifier{ctx: NewCtx(), rebuilt: make(map[*Expr]*Expr)}
}

// simplifyMaxPasses bounds the rewrite fixpoint loop. Substitution chains
// (a=b, b=c, c=5) resolve one link per pass; anything deeper than this is
// pathological and simply stays partially simplified — still equivalent.
const simplifyMaxPasses = 8

// varKey identifies a variable by exact (name, width). The bit-blaster treats
// equal names at different widths as truncations of one 64-bit variable, so a
// binding proved at one width must never be substituted at another.
type varKey struct {
	name string
	w    uint8
}

// Conjunction simplifies the conjunction of constraints. It returns the
// simplified conjunct list (in deterministic first-use order, interned in the
// simplifier's private context) and provenFalse=true when the conjunction
// was shown unsatisfiable at the word level — a sound Unsat short-circuit
// that skips bit-blasting entirely.
func (s *Simplifier) Conjunction(constraints []*Expr) ([]*Expr, bool) {
	cur := make([]*Expr, 0, len(constraints))
	for _, e := range constraints {
		cur = append(cur, s.rebuild(e))
	}
	for pass := 0; pass < simplifyMaxPasses; pass++ {
		next, provenFalse, changed := s.pass(cur)
		if provenFalse {
			return nil, true
		}
		cur = next
		if !changed {
			break
		}
	}
	return cur, false
}

// pass runs one flatten → dedupe → propagate sweep.
func (s *Simplifier) pass(in []*Expr) (out []*Expr, provenFalse, changed bool) {
	c := s.ctx

	// Flatten: split 1-bit conjunctions, push negations through disjunctions
	// (De Morgan) and double negations, and slice equalities over
	// concatenations into per-part equalities.
	flat := make([]*Expr, 0, len(in))
	var push func(e *Expr) bool
	push = func(e *Expr) bool {
		switch {
		case e.IsFalse():
			return false
		case e.IsTrue():
			changed = true
			return true
		case e.Kind == KAnd && e.Width == 1:
			changed = true
			return push(e.A) && push(e.B)
		case e.Kind == KXor && e.Width == 1 && e.B.IsTrue():
			inner := e.A
			if inner.Kind == KXor && inner.Width == 1 && inner.B.IsTrue() {
				changed = true // ¬¬x → x
				return push(inner.A)
			}
			if inner.Kind == KOr && inner.Width == 1 {
				changed = true // ¬(a ∨ b) → ¬a ∧ ¬b
				return push(c.BoolNot(inner.A)) && push(c.BoolNot(inner.B))
			}
			flat = append(flat, e)
			return true
		case e.Kind == KEq && e.A.Kind == KConcat:
			a, b := e.A, e.B
			if bv, ok := b.IsConst(); ok {
				changed = true
				hi := c.Const(bv>>a.B.Width, a.A.Width)
				lo := c.Const(bv&mask(a.B.Width), a.B.Width)
				return push(c.Eq(a.A, hi)) && push(c.Eq(a.B, lo))
			}
			if b.Kind == KConcat && a.A.Width == b.A.Width {
				changed = true
				return push(c.Eq(a.A, b.A)) && push(c.Eq(a.B, b.B))
			}
			flat = append(flat, e)
			return true
		default:
			flat = append(flat, e)
			return true
		}
	}
	for _, e := range in {
		if !push(e) {
			return nil, true, true
		}
	}

	// Dedupe (hash-consing makes duplicates pointer-equal) and detect
	// complementary pairs: x together with ¬x proves False. Both orders are
	// covered — a negated conjunct exposes its operand directly, and
	// BoolNot of a plain conjunct interns to the same node as its negation.
	seen := make(map[*Expr]bool, len(flat))
	dedup := make([]*Expr, 0, len(flat))
	for _, e := range flat {
		if seen[e] {
			changed = true
			continue
		}
		neg := c.BoolNot(e)
		if e.Kind == KXor && e.Width == 1 && e.B.IsTrue() {
			neg = e.A
		}
		if seen[neg] {
			return nil, true, true
		}
		seen[e] = true
		dedup = append(dedup, e)
	}

	// Equality propagation: collect bindings proved by equality conjuncts.
	// First binding per (name, width) wins; a later conflicting equality is
	// not a source, so substitution folds it to a constant comparison and a
	// contradiction surfaces as False. Aliases map the right-hand variable
	// to the left-hand one, refusing to bind when the target is itself bound
	// (prevents substitution cycles; chains resolve across passes).
	binds := make(map[varKey]*Expr)
	srcKey := make(map[int]varKey) // conjunct index -> binding it sourced
	bind := func(i int, v, to *Expr) {
		k := varKey{v.Name, v.Width}
		if _, dup := binds[k]; dup {
			return
		}
		if to.Kind == KVar {
			if _, bound := binds[varKey{to.Name, to.Width}]; bound {
				return
			}
		}
		binds[k] = to
		srcKey[i] = k
	}
	for i, e := range dedup {
		switch {
		case e.Kind == KEq && e.A.Kind == KVar:
			if _, isConst := e.B.IsConst(); isConst || e.B.Kind == KVar {
				bind(i, e.A, e.B)
			}
		case e.Kind == KEq && e.B.Kind == KVar:
			bind(i, e.B, e.A) // only reachable when e.A is non-var, non-const
		case e.Kind == KVar && e.Width == 1:
			bind(i, e, c.True())
		case e.Kind == KXor && e.Width == 1 && e.B.IsTrue() && e.A.Kind == KVar:
			bind(i, e.A, c.False())
		}
	}
	if len(binds) == 0 {
		return dedup, false, changed
	}

	// Substitute simultaneously into every conjunct, excluding each source
	// conjunct's own binding so the equality itself survives (keeping the
	// rewrite equivalence-preserving rather than merely equisatisfiable).
	out = make([]*Expr, 0, len(dedup))
	for i, e := range dedup {
		e2 := s.subst(e, binds, srcKey[i], make(map[*Expr]*Expr))
		if e2.IsFalse() {
			return nil, true, true
		}
		if e2 != e {
			changed = true
		}
		if e2.IsTrue() {
			continue
		}
		out = append(out, e2)
	}
	return out, false, changed
}

// subst rewrites e replacing bound variables (except the skipped key) by
// their binding targets, rebuilding through the constructors so folds apply.
// Binding targets are inserted verbatim — chains resolve across passes, which
// keeps a single pass terminating even if bindings were cyclic.
func (s *Simplifier) subst(e *Expr, binds map[varKey]*Expr, skip varKey, memo map[*Expr]*Expr) *Expr {
	if e.Kind == KConst {
		return e
	}
	if r, ok := memo[e]; ok {
		return r
	}
	c := s.ctx
	var r *Expr
	switch e.Kind {
	case KVar:
		k := varKey{e.Name, e.Width}
		if to, ok := binds[k]; ok && k != skip {
			r = to
		} else {
			r = e
		}
	case KNot:
		r = c.Not(s.subst(e.A, binds, skip, memo))
	case KConcat:
		r = c.Concat(s.subst(e.A, binds, skip, memo), s.subst(e.B, binds, skip, memo))
	case KExtract:
		r = c.Extract(s.subst(e.A, binds, skip, memo), e.Hi, e.Lo)
	case KZext:
		r = c.ZExt(s.subst(e.A, binds, skip, memo), e.Width)
	case KSext:
		r = c.SExt(s.subst(e.A, binds, skip, memo), e.Width)
	case KEq:
		r = c.Eq(s.subst(e.A, binds, skip, memo), s.subst(e.B, binds, skip, memo))
	case KUlt:
		r = c.Ult(s.subst(e.A, binds, skip, memo), s.subst(e.B, binds, skip, memo))
	case KSlt:
		r = c.Slt(s.subst(e.A, binds, skip, memo), s.subst(e.B, binds, skip, memo))
	case KIte:
		r = c.Ite(s.subst(e.A, binds, skip, memo), s.subst(e.B, binds, skip, memo), s.subst(e.C, binds, skip, memo))
	case KPopcnt:
		r = c.Popcount(s.subst(e.A, binds, skip, memo))
	default:
		r = c.binop(e.Kind, s.subst(e.A, binds, skip, memo), s.subst(e.B, binds, skip, memo))
	}
	memo[e] = r
	return r
}

// rebuild re-interns e (built in any Ctx) into the simplifier's private
// context through the public constructors, re-applying constant folding and
// the algebraic identity rules for free.
func (s *Simplifier) rebuild(e *Expr) *Expr {
	if r, ok := s.rebuilt[e]; ok {
		return r
	}
	c := s.ctx
	var r *Expr
	switch e.Kind {
	case KConst:
		r = c.Const(e.Val, e.Width)
	case KVar:
		r = c.Var(e.Name, e.Width)
	case KNot:
		r = c.Not(s.rebuild(e.A))
	case KConcat:
		r = c.Concat(s.rebuild(e.A), s.rebuild(e.B))
	case KExtract:
		r = c.Extract(s.rebuild(e.A), e.Hi, e.Lo)
	case KZext:
		r = c.ZExt(s.rebuild(e.A), e.Width)
	case KSext:
		r = c.SExt(s.rebuild(e.A), e.Width)
	case KEq:
		r = c.Eq(s.rebuild(e.A), s.rebuild(e.B))
	case KUlt:
		r = c.Ult(s.rebuild(e.A), s.rebuild(e.B))
	case KSlt:
		r = c.Slt(s.rebuild(e.A), s.rebuild(e.B))
	case KIte:
		r = c.Ite(s.rebuild(e.A), s.rebuild(e.B), s.rebuild(e.C))
	case KPopcnt:
		r = c.Popcount(s.rebuild(e.A))
	default:
		r = c.binop(e.Kind, s.rebuild(e.A), s.rebuild(e.B))
	}
	s.rebuilt[e] = r
	return r
}
