package symbolic

import (
	"fmt"
	"testing"
)

// buildFuzzConstraints deterministically compiles a byte string into a
// clause list over variables named prefix0..prefixN: a tiny stack machine
// whose opcodes push variables/constants, combine the top of stack with
// binary operators, and pop comparisons off as 1-bit clauses. Total and
// deterministic for every input, so the fuzz target can compare canonical
// keys across independent builds of the same program.
func buildFuzzConstraints(c *Ctx, data []byte, prefix string) []*Expr {
	var (
		stack   []*Expr
		clauses []*Expr
	)
	push := func(e *Expr) { stack = append(stack, e) }
	pop := func() *Expr {
		if len(stack) == 0 {
			return c.Const(1, 32)
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e
	}
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], data[i+1]
		switch op % 12 {
		case 0, 1:
			push(c.Var(fmt.Sprintf("%s%d", prefix, arg%5), 32))
		case 2:
			push(c.Const(uint64(arg), 32))
		case 3:
			b, a := pop(), pop()
			push(c.Add(a, b))
		case 4:
			b, a := pop(), pop()
			push(c.Xor(a, b))
		case 5:
			b, a := pop(), pop()
			push(c.And(a, b))
		case 6:
			b, a := pop(), pop()
			push(c.Sub(a, b))
		case 7:
			a := pop()
			push(c.Not(a))
		case 8:
			b, a := pop(), pop()
			push(c.Mul(a, b))
		case 9:
			b, a := pop(), pop()
			clauses = append(clauses, c.Eq(a, b))
		case 10:
			b, a := pop(), pop()
			clauses = append(clauses, c.Ult(a, b))
		case 11:
			b, a := pop(), pop()
			clauses = append(clauses, c.Slt(a, b))
		}
		// Bound DAG growth: the canon hasher is linear in distinct nodes,
		// but unconstrained Mul/Add chains can blow up the solver-free
		// property checks below on pathological inputs.
		if len(stack) > 32 || len(clauses) > 16 {
			break
		}
	}
	for len(stack) > 0 && len(clauses) < 16 {
		clauses = append(clauses, c.Eq(pop(), c.Const(0, 32)))
	}
	return clauses
}

// FuzzCanonicalize fuzzes the canonicalization layer's contracted
// properties: α-equivalent encodings share both keys, rebuilding is
// deterministic, appending a clause or changing the budget changes the
// Ordered key, permutations of shape-distinct clauses share the Sorted
// key, and hash-consed hashes agree across Ctxs.
func FuzzCanonicalize(f *testing.F) {
	f.Add([]byte{0, 0, 2, 5, 9, 0})                                     // v0 == 5
	f.Add([]byte{0, 0, 0, 1, 3, 0, 2, 200, 10, 0})                      // v0+v1 < 200
	f.Add([]byte{0, 0, 2, 3, 4, 0, 2, 171, 9, 0, 0, 1, 2, 52, 11, 0})   // xor/slt mix
	f.Add([]byte{2, 1, 2, 2, 8, 0, 0, 4, 9, 0, 0, 4, 2, 9, 10, 0})      // const folds
	f.Add([]byte{1, 3, 7, 0, 0, 3, 5, 0, 9, 0, 1, 2, 0, 2, 6, 0, 9, 0}) // not/and/sub
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			return
		}
		c1 := buildFuzzConstraints(NewCtx(), data, "v")
		if len(c1) == 0 {
			return
		}
		k1 := Canonicalize(c1, 0)

		// Determinism: an independent build of the same program.
		c2 := buildFuzzConstraints(NewCtx(), data, "v")
		k2 := Canonicalize(c2, 0)
		if k1.Ordered != k2.Ordered || k1.Sorted != k2.Sorted {
			t.Fatal("identical programs canonicalize to different keys")
		}

		// α-equivalence: same program under renamed variables.
		cr := buildFuzzConstraints(NewCtx(), data, "renamed_")
		kr := Canonicalize(cr, 0)
		if k1.Ordered != kr.Ordered {
			t.Fatal("renamed variables changed the Ordered key")
		}
		if k1.Sorted != kr.Sorted {
			t.Fatal("renamed variables changed the Sorted key")
		}
		if len(k1.Vars) != len(kr.Vars) {
			t.Fatalf("renamed build has %d vars, original %d", len(kr.Vars), len(k1.Vars))
		}

		// Hash-consing: clause-by-clause, the renamed build shares shape
		// hashes (name-blind) and the identically-named build shares full
		// hashes, across independent Ctxs.
		for i := range c1 {
			if c1[i].ShapeHash() != cr[i].ShapeHash() {
				t.Fatalf("clause %d: shape hash differs under renaming", i)
			}
			if c1[i].Hash() != c2[i].Hash() {
				t.Fatalf("clause %d: hash differs across Ctxs for identical structure", i)
			}
		}

		// Mutation: appending one distinguishable clause changes both keys.
		ctx := NewCtx()
		cm := buildFuzzConstraints(ctx, data, "v")
		cm = append(cm, ctx.Eq(ctx.Var("mutant", 32), ctx.Const(0x5A5A, 32)))
		km := Canonicalize(cm, 0)
		if km.Ordered == k1.Ordered {
			t.Fatal("appended clause did not change the Ordered key")
		}

		// Budget: part of the Ordered key (0 normalizes to the default),
		// never of the Sorted key.
		kb := Canonicalize(c1, DefaultMaxConflicts)
		if kb.Ordered != k1.Ordered {
			t.Fatal("budget 0 and DefaultMaxConflicts disagree on the Ordered key")
		}
		kh := Canonicalize(c1, 777)
		if kh.Ordered == k1.Ordered {
			t.Fatal("distinct budgets share an Ordered key")
		}
		if kh.Sorted != k1.Sorted {
			t.Fatal("budget leaked into the Sorted key")
		}

		// Permutation: when every clause has a distinct shape, reversing
		// the list must converge on the same Sorted key. (With duplicate
		// shapes the stable sort preserves input order among equals, so
		// permutation-invariance is not promised — only key diversity,
		// which costs hits, never correctness.)
		shapes := map[uint64]bool{}
		distinct := true
		for _, cl := range c1 {
			if shapes[cl.ShapeHash()] {
				distinct = false
				break
			}
			shapes[cl.ShapeHash()] = true
		}
		if distinct && len(c1) > 1 {
			rev := make([]*Expr, len(c1))
			for i, cl := range c1 {
				rev[len(c1)-1-i] = cl
			}
			kp := Canonicalize(rev, 0)
			if kp.Sorted != k1.Sorted {
				t.Fatal("reversing shape-distinct clauses changed the Sorted key")
			}
		}
	})
}
