package symbolic

// sat.go implements a CDCL SAT solver: two-watched-literal propagation,
// first-UIP conflict analysis with clause learning, VSIDS-style activity
// decay, phase saving, and Luby restarts. It is the decision procedure the
// bit-blaster targets, playing the role of Z3's SAT core.

// Lit is a literal: variable index shifted left, low bit = negated.
type Lit int32

// MkLit builds a literal for variable v (0-based), negated when neg.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Flip returns the complementary literal.
func (l Lit) Flip() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits     []Lit
	learned  bool
	activity float64
}

// SAT is a CDCL solver instance. Create with NewSAT, add clauses, Solve.
type SAT struct {
	clauses  []*clause
	watches  [][]*clause // literal -> clauses watching it
	assign   []lbool     // variable -> value
	level    []int32     // variable -> decision level
	reason   []*clause   // variable -> implying clause
	trail    []Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	activity  []float64
	varInc    float64
	heap      []int // indexed binary max-heap of branch candidates, keyed on activity
	hpos      []int // variable -> index in heap, -1 when absent
	phase     []bool
	conflicts int64
	props     int64 // literals dequeued by unit propagation
	failed    []Lit // failed-assumption set of the last SolveAssuming call

	// MaxConflicts bounds the search; 0 means unlimited. Exceeding it makes
	// Solve return unknown (false, false).
	MaxConflicts int64
	// Stop interrupts the search cooperatively: Solve polls the channel
	// every few hundred loop iterations and returns unknown (false, false)
	// once it is closed. This is the cancellation checkpoint inside the
	// DPLL loop — a timed-out campaign job must stop burning its worker
	// even mid-query, not merely be abandoned by its caller.
	Stop <-chan struct{}

	unsat bool
}

// NewSAT returns a solver with n variables (indices 0..n-1).
func NewSAT(n int) *SAT {
	s := &SAT{
		watches:  make([][]*clause, 2*n),
		assign:   make([]lbool, n),
		level:    make([]int32, n),
		reason:   make([]*clause, n),
		activity: make([]float64, n),
		phase:    make([]bool, n),
		varInc:   1,
		heap:     make([]int, n),
		hpos:     make([]int, n),
	}
	// All activities start equal, so ascending variable order is already a
	// valid heap under better (ties break toward the lower index).
	for v := 0; v < n; v++ {
		s.heap[v], s.hpos[v] = v, v
	}
	return s
}

// NumVars returns the variable count.
func (s *SAT) NumVars() int { return len(s.assign) }

// AddVar appends a fresh variable and returns its index.
func (s *SAT) AddVar() int {
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.watches = append(s.watches, nil, nil)
	v := len(s.assign) - 1
	s.hpos = append(s.hpos, -1)
	s.heapPush(v)
	return v
}

// --- branching heap ---------------------------------------------------------
//
// The heap keeps every unassigned variable (plus, lazily, variables assigned
// since their last push — pickBranch discards those on pop). It replaces a
// linear scan over all variables per decision with O(log n) operations.

// better orders the heap: higher activity wins, ties break toward the lower
// variable index — exactly the variable the old linear scan selected, so
// decision sequences (and therefore models and digests) are unchanged.
func (s *SAT) better(a, b int) bool {
	if s.activity[a] != s.activity[b] {
		return s.activity[a] > s.activity[b]
	}
	return a < b
}

func (s *SAT) heapUp(i int) {
	v := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !s.better(v, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.hpos[s.heap[i]] = i
		i = p
	}
	s.heap[i] = v
	s.hpos[v] = i
}

func (s *SAT) heapDown(i int) {
	v := s.heap[i]
	n := len(s.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && s.better(s.heap[r], s.heap[c]) {
			c = r
		}
		if !s.better(s.heap[c], v) {
			break
		}
		s.heap[i] = s.heap[c]
		s.hpos[s.heap[i]] = i
		i = c
	}
	s.heap[i] = v
	s.hpos[v] = i
}

func (s *SAT) heapPush(v int) {
	if s.hpos[v] >= 0 {
		return
	}
	s.heap = append(s.heap, v)
	s.hpos[v] = len(s.heap) - 1
	s.heapUp(len(s.heap) - 1)
}

func (s *SAT) heapPop() int {
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.hpos[s.heap[0]] = 0
	s.heap = s.heap[:last]
	s.hpos[v] = -1
	if last > 0 {
		s.heapDown(0)
	}
	return v
}

func (s *SAT) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if l.Neg() {
		return -v
	}
	return v
}

// AddClause adds a clause; duplicate and trivially-true clauses are
// simplified away. Returns false if the formula became trivially UNSAT.
func (s *SAT) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	// Simplify: remove duplicates and false literals at level 0, detect taut.
	seen := map[Lit]bool{}
	var out []Lit
	for _, l := range lits {
		if seen[l] {
			continue
		}
		if seen[l.Flip()] {
			return true // tautology
		}
		if len(s.trailLim) == 0 {
			switch s.value(l) {
			case lTrue:
				return true
			case lFalse:
				continue
			}
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.unsat = true
			return false
		}
		if conf := s.propagate(); conf != nil {
			s.unsat = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *SAT) watch(c *clause) {
	// Watch the first two literals.
	s.watches[c.lits[0].Flip()] = append(s.watches[c.lits[0].Flip()], c)
	s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], c)
}

func (s *SAT) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation; it returns a conflicting clause or nil.
func (s *SAT) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		s.props++
		ws := s.watches[p]
		s.watches[p] = ws[:0:0] // rebuilt below
		kept := s.watches[p]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Normalize: watched literal being falsified at lits[1].
			if c.lits[0].Flip() == p {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflict.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: restore remaining watches and report.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				return c
			}
		}
		s.watches[p] = kept
	}
	return nil
}

func (s *SAT) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		// Rescaling multiplies every activity by the same factor, so the
		// heap order is untouched.
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.hpos[v] >= 0 {
		s.heapUp(s.hpos[v])
	}
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backtrack level.
func (s *SAT) analyze(conf *clause) ([]Lit, int) {
	curLevel := int32(len(s.trailLim))
	seen := make(map[int]bool)
	var learned []Lit
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	c := conf

	for {
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal slot
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Pick the next literal on the trail to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[v]
	}
	learned = append([]Lit{p.Flip()}, learned...)

	// Backtrack level: second-highest level in the clause.
	btLevel := 0
	for i := 1; i < len(learned); i++ {
		if int(s.level[learned[i].Var()]) > btLevel {
			btLevel = int(s.level[learned[i].Var()])
		}
	}
	return learned, btLevel
}

func (s *SAT) backtrack(level int) {
	if len(s.trailLim) <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.heapPush(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = bound
}

// pickBranch selects the unassigned variable with the highest activity
// (ties toward the lower index) by popping the heap; entries assigned since
// their push are discarded lazily, and backtrack re-inserts what it frees.
func (s *SAT) pickBranch() int {
	for len(s.heap) > 0 {
		if v := s.heapPop(); s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i >= 1<<(k-1) && i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve searches for a satisfying assignment. It returns (sat, ok): ok is
// false when the conflict budget was exhausted (result unknown).
func (s *SAT) Solve() (bool, bool) { return s.SolveAssuming(nil) }

// SolveAssuming searches for a satisfying assignment under the given
// assumption literals. Each assumption occupies its own decision level
// (re-installed by the decide loop after restarts and backjumps), so the
// learned clauses never mention assumption-dependent facts as implied —
// assumptions are decisions with no reason clause, and therefore survive
// into learned clauses as ordinary literals. That makes the entire clause
// database, the variable activities and the saved phases sound to retain
// across calls with different assumption sets: everything learned is a
// consequence of the clause database alone.
//
// It returns (sat, ok): ok is false when the per-call conflict budget was
// exhausted or Stop fired (result unknown). On (false, true) the formula is
// unsatisfiable under the assumptions; FailedAssumptions then reports a
// subset of the assumptions sufficient for the contradiction (empty when
// the clause database is unsatisfiable on its own).
//
// MaxConflicts bounds each call independently, not the instance lifetime.
func (s *SAT) SolveAssuming(assumptions []Lit) (bool, bool) {
	s.failed = s.failed[:0]
	if s.unsat {
		return false, true
	}
	// Incremental calls inherit the previous call's trail: rewind to the
	// root level (level-0 facts are permanent) before searching anew.
	s.backtrack(0)
	if conf := s.propagate(); conf != nil {
		s.unsat = true
		return false, true
	}
	start := s.conflicts
	restart := int64(1)
	restartBudget := luby(restart) * 100

	for steps := 0; ; steps++ {
		if steps&255 == 0 && s.Stop != nil {
			select {
			case <-s.Stop:
				return false, false
			default:
			}
		}
		conf := s.propagate()
		if conf != nil {
			s.conflicts++
			if s.MaxConflicts > 0 && s.conflicts-start > s.MaxConflicts {
				return false, false
			}
			if len(s.trailLim) == 0 {
				s.unsat = true
				return false, true // conflict at root: unsat regardless of assumptions
			}
			learned, btLevel := s.analyze(conf)
			s.backtrack(btLevel)
			if len(learned) == 1 {
				if !s.enqueue(learned[0], nil) {
					if len(s.trailLim) == 0 {
						s.unsat = true
					}
					return false, true
				}
			} else {
				c := &clause{lits: learned, learned: true}
				s.clauses = append(s.clauses, c)
				s.watch(c)
				if !s.enqueue(learned[0], c) {
					if len(s.trailLim) == 0 {
						s.unsat = true
					}
					return false, true
				}
			}
			s.varInc *= 1.05
			restartBudget--
			if restartBudget <= 0 {
				restart++
				restartBudget = luby(restart) * 100
				s.backtrack(0)
			}
			continue
		}
		// Install the next pending assumption as its own decision level.
		// Doing it here — not once up front — keeps assumptions in force
		// across restarts and backjumps below the assumption levels.
		if len(s.trailLim) < len(assumptions) {
			p := assumptions[len(s.trailLim)]
			switch s.value(p) {
			case lTrue:
				// Already implied: open an empty level so the level index
				// keeps matching the assumption index.
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				s.analyzeFinal(p)
				return false, true
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(p, nil)
			}
			continue
		}
		v := s.pickBranch()
		if v < 0 {
			return true, true // all assigned, no conflict
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		if !s.enqueue(MkLit(v, !s.phase[v]), nil) {
			// Cannot happen: v was unassigned.
			return false, true
		}
	}
}

// analyzeFinal computes the failed-assumption set after assumption p was
// found falsified: p plus the installed assumptions whose propagation chain
// implies ¬p. The clause database conjoined with that subset alone is
// unsatisfiable.
func (s *SAT) analyzeFinal(p Lit) {
	s.failed = append(s.failed, p)
	if len(s.trailLim) == 0 {
		return // ¬p holds at the root: p alone is the contradiction
	}
	seen := map[int]bool{p.Var(): true}
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !seen[v] {
			continue
		}
		if s.reason[v] == nil {
			// A decision above the root is an installed assumption.
			s.failed = append(s.failed, s.trail[i])
		} else {
			for _, l := range s.reason[v].lits {
				if s.level[l.Var()] > 0 {
					seen[l.Var()] = true
				}
			}
		}
	}
}

// FailedAssumptions returns the failed-assumption set of the last
// SolveAssuming call that reported unsatisfiable: a subset of its
// assumptions that contradicts the clause database. It is empty when the
// database is unsatisfiable without any assumptions. The slice is reused
// by the next call.
func (s *SAT) FailedAssumptions() []Lit { return s.failed }

// ValueOf returns the assignment of variable v after a SAT result.
func (s *SAT) ValueOf(v int) bool { return s.assign[v] == lTrue }
