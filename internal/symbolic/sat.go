package symbolic

// sat.go implements a CDCL SAT solver: two-watched-literal propagation,
// first-UIP conflict analysis with clause learning, VSIDS-style activity
// decay, phase saving, and Luby restarts. It is the decision procedure the
// bit-blaster targets, playing the role of Z3's SAT core.

// Lit is a literal: variable index shifted left, low bit = negated.
type Lit int32

// MkLit builds a literal for variable v (0-based), negated when neg.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Flip returns the complementary literal.
func (l Lit) Flip() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits     []Lit
	learned  bool
	activity float64
}

// SAT is a CDCL solver instance. Create with NewSAT, add clauses, Solve.
type SAT struct {
	clauses  []*clause
	watches  [][]*clause // literal -> clauses watching it
	assign   []lbool     // variable -> value
	level    []int32     // variable -> decision level
	reason   []*clause   // variable -> implying clause
	trail    []Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	activity  []float64
	varInc    float64
	order     []int // lazy heap substitute: sorted-on-demand candidate list
	phase     []bool
	conflicts int64

	// MaxConflicts bounds the search; 0 means unlimited. Exceeding it makes
	// Solve return unknown (false, false).
	MaxConflicts int64
	// Stop interrupts the search cooperatively: Solve polls the channel
	// every few hundred loop iterations and returns unknown (false, false)
	// once it is closed. This is the cancellation checkpoint inside the
	// DPLL loop — a timed-out campaign job must stop burning its worker
	// even mid-query, not merely be abandoned by its caller.
	Stop <-chan struct{}

	unsat bool
}

// NewSAT returns a solver with n variables (indices 0..n-1).
func NewSAT(n int) *SAT {
	s := &SAT{
		watches:  make([][]*clause, 2*n),
		assign:   make([]lbool, n),
		level:    make([]int32, n),
		reason:   make([]*clause, n),
		activity: make([]float64, n),
		phase:    make([]bool, n),
		varInc:   1,
	}
	return s
}

// NumVars returns the variable count.
func (s *SAT) NumVars() int { return len(s.assign) }

// AddVar appends a fresh variable and returns its index.
func (s *SAT) AddVar() int {
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.watches = append(s.watches, nil, nil)
	return len(s.assign) - 1
}

func (s *SAT) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if l.Neg() {
		return -v
	}
	return v
}

// AddClause adds a clause; duplicate and trivially-true clauses are
// simplified away. Returns false if the formula became trivially UNSAT.
func (s *SAT) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	// Simplify: remove duplicates and false literals at level 0, detect taut.
	seen := map[Lit]bool{}
	var out []Lit
	for _, l := range lits {
		if seen[l] {
			continue
		}
		if seen[l.Flip()] {
			return true // tautology
		}
		if len(s.trailLim) == 0 {
			switch s.value(l) {
			case lTrue:
				return true
			case lFalse:
				continue
			}
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.unsat = true
			return false
		}
		if conf := s.propagate(); conf != nil {
			s.unsat = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *SAT) watch(c *clause) {
	// Watch the first two literals.
	s.watches[c.lits[0].Flip()] = append(s.watches[c.lits[0].Flip()], c)
	s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], c)
}

func (s *SAT) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation; it returns a conflicting clause or nil.
func (s *SAT) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		ws := s.watches[p]
		s.watches[p] = ws[:0:0] // rebuilt below
		kept := s.watches[p]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Normalize: watched literal being falsified at lits[1].
			if c.lits[0].Flip() == p {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflict.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: restore remaining watches and report.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				return c
			}
		}
		s.watches[p] = kept
	}
	return nil
}

func (s *SAT) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backtrack level.
func (s *SAT) analyze(conf *clause) ([]Lit, int) {
	curLevel := int32(len(s.trailLim))
	seen := make(map[int]bool)
	var learned []Lit
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	c := conf

	for {
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal slot
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Pick the next literal on the trail to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[v]
	}
	learned = append([]Lit{p.Flip()}, learned...)

	// Backtrack level: second-highest level in the clause.
	btLevel := 0
	for i := 1; i < len(learned); i++ {
		if int(s.level[learned[i].Var()]) > btLevel {
			btLevel = int(s.level[learned[i].Var()])
		}
	}
	return learned, btLevel
}

func (s *SAT) backtrack(level int) {
	if len(s.trailLim) <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = bound
}

// pickBranch selects the unassigned variable with the highest activity.
func (s *SAT) pickBranch() int {
	best, bestAct := -1, -1.0
	for v := 0; v < len(s.assign); v++ {
		if s.assign[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i >= 1<<(k-1) && i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve searches for a satisfying assignment. It returns (sat, ok): ok is
// false when the conflict budget was exhausted (result unknown).
func (s *SAT) Solve() (bool, bool) {
	if s.unsat {
		return false, true
	}
	if conf := s.propagate(); conf != nil {
		return false, true
	}
	restart := int64(1)
	restartBudget := luby(restart) * 100

	for steps := 0; ; steps++ {
		if steps&255 == 0 && s.Stop != nil {
			select {
			case <-s.Stop:
				return false, false
			default:
			}
		}
		conf := s.propagate()
		if conf != nil {
			s.conflicts++
			if s.MaxConflicts > 0 && s.conflicts > s.MaxConflicts {
				return false, false
			}
			if len(s.trailLim) == 0 {
				return false, true // conflict at root
			}
			learned, btLevel := s.analyze(conf)
			s.backtrack(btLevel)
			if len(learned) == 1 {
				if !s.enqueue(learned[0], nil) {
					return false, true
				}
			} else {
				c := &clause{lits: learned, learned: true}
				s.clauses = append(s.clauses, c)
				s.watch(c)
				if !s.enqueue(learned[0], c) {
					return false, true
				}
			}
			s.varInc *= 1.05
			restartBudget--
			if restartBudget <= 0 {
				restart++
				restartBudget = luby(restart) * 100
				s.backtrack(0)
			}
			continue
		}
		v := s.pickBranch()
		if v < 0 {
			return true, true // all assigned, no conflict
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		if !s.enqueue(MkLit(v, !s.phase[v]), nil) {
			// Cannot happen: v was unassigned.
			return false, true
		}
	}
}

// ValueOf returns the assignment of variable v after a SAT result.
func (s *SAT) ValueOf(v int) bool { return s.assign[v] == lTrue }
