package symbolic

import (
	"context"
	"errors"
	"testing"

	"repro/internal/failure"
	"repro/internal/faultinject"
)

// unsatConstraints builds a system with no model (x ∉ {0,1,2,3} over a
// 2-bit domain). The concrete probe can never satisfy it, so deciding it
// must reach the CDCL search — exactly the path the Stop channel guards.
func unsatConstraints(c *Ctx) []*Expr {
	x := c.Var("x", 2)
	var cs []*Expr
	for v := uint64(0); v < 4; v++ {
		cs = append(cs, c.Ne(x, c.Const(v, 2)))
	}
	return cs
}

func TestSolverStopChannel(t *testing.T) {
	c := NewCtx()
	cs := unsatConstraints(c)
	// Sanity: without a stop the system is decidable.
	mustUnsat(t, cs)

	stop := make(chan struct{})
	close(stop)
	s := &Solver{Stop: stop}
	if _, r := s.Solve(cs); r != Unknown {
		t.Fatalf("closed Stop channel: got %s, want %s", r, Unknown)
	}
	if s.Stats.Unknowns != 1 {
		t.Errorf("Unknowns = %d, want 1", s.Stats.Unknowns)
	}
}

func TestSolvePoolCtxCancelled(t *testing.T) {
	c := NewCtx()
	queries := make([]Query, 3)
	for i := range queries {
		queries[i] = Query{ID: i, Constraints: unsatConstraints(c)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	answers, _, err := SolvePoolCtx(ctx, queries, PoolOptions{Workers: 2})
	if err != nil {
		t.Fatalf("SolvePoolCtx: %v (cancellation is not a pool error)", err)
	}
	for _, a := range answers {
		if a.Result != Unknown {
			t.Fatalf("query %d under cancelled context: got %s, want %s", a.ID, a.Result, Unknown)
		}
	}
}

func TestSolvePoolFaultAbort(t *testing.T) {
	plan := &faultinject.Plan{Seed: 1, Rate: 1, Kinds: []faultinject.Kind{faultinject.KindSolverStarve}}
	inj := plan.For(0, 0)
	if inj == nil {
		t.Fatal("rate-1 plan left the job unfaulted")
	}
	c := NewCtx()
	x := c.Var("x", 32)
	queries := make([]Query, 6)
	for i := range queries {
		queries[i] = Query{ID: i, Constraints: []*Expr{c.Eq(x, c.Const(uint64(i), 32))}}
	}
	answers, _, err := SolvePoolCtx(context.Background(), queries, PoolOptions{Workers: 2, Faults: inj})
	if err == nil {
		t.Fatal("solver-starve injector fired no error over 6 queries")
	}
	if got := failure.ClassOf(err); got != failure.SolverExhausted {
		t.Fatalf("pool error classified %s, want %s (err: %v)", got, failure.SolverExhausted, err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("pool error does not chain ErrInjected: %v", err)
	}
	unknown := 0
	for _, a := range answers {
		if a.Result == Unknown {
			unknown++
		}
	}
	if unknown == 0 {
		t.Fatal("no query reported Unknown despite the aborted pool")
	}
}
