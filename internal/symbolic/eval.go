package symbolic

import (
	"fmt"
	"math/bits"
)

// Model is an assignment of concrete values to variables (by name).
type Model map[string]uint64

// Eval computes the concrete value of e under m. Unassigned variables
// evaluate to zero. Division by zero follows the SMT-LIB total semantics
// (udiv by 0 = all-ones, urem by 0 = dividend), which the bit-blaster
// encodes identically.
func Eval(e *Expr, m Model) uint64 {
	//wasai:localcache single-evaluation DAG memo, dead when Eval returns
	cache := map[*Expr]uint64{}
	return eval(e, m, cache)
}

func eval(e *Expr, m Model, cache map[*Expr]uint64) uint64 {
	if v, ok := cache[e]; ok {
		return v
	}
	var v uint64
	w := e.Width
	msk := mask(w)
	switch e.Kind {
	case KConst:
		v = e.Val
	case KVar:
		v = m[e.Name] & msk
	case KNot:
		v = ^eval(e.A, m, cache) & msk
	case KConcat:
		v = (eval(e.A, m, cache)<<e.B.Width | eval(e.B, m, cache)) & msk
	case KExtract:
		v = (eval(e.A, m, cache) >> e.Lo) & msk
	case KZext:
		v = eval(e.A, m, cache)
	case KSext:
		v = uint64(signExtend(eval(e.A, m, cache), e.A.Width)) & msk
	case KEq:
		if eval(e.A, m, cache) == eval(e.B, m, cache) {
			v = 1
		}
	case KUlt:
		if eval(e.A, m, cache) < eval(e.B, m, cache) {
			v = 1
		}
	case KSlt:
		if signExtend(eval(e.A, m, cache), e.A.Width) < signExtend(eval(e.B, m, cache), e.B.Width) {
			v = 1
		}
	case KIte:
		if eval(e.A, m, cache) != 0 {
			v = eval(e.B, m, cache)
		} else {
			v = eval(e.C, m, cache)
		}
	case KUDiv:
		a, b := eval(e.A, m, cache), eval(e.B, m, cache)
		if b == 0 {
			v = msk // SMT-LIB bvudiv total semantics
		} else {
			v = (a / b) & msk
		}
	case KURem:
		a, b := eval(e.A, m, cache), eval(e.B, m, cache)
		if b == 0 {
			v = a
		} else {
			v = (a % b) & msk
		}
	case KSDiv:
		a := signExtend(eval(e.A, m, cache), e.A.Width)
		b := signExtend(eval(e.B, m, cache), e.B.Width)
		switch {
		case b == 0 && a >= 0:
			v = msk
		case b == 0:
			v = 1
		case a == -1<<63 && b == -1:
			v = uint64(a) & msk
		default:
			v = uint64(a/b) & msk
		}
	case KSRem:
		a := signExtend(eval(e.A, m, cache), e.A.Width)
		b := signExtend(eval(e.B, m, cache), e.B.Width)
		switch {
		case b == 0:
			v = uint64(a) & msk
		case a == -1<<63 && b == -1:
			v = 0
		default:
			v = uint64(a%b) & msk
		}
	case KPopcnt:
		v = uint64(bits.OnesCount64(eval(e.A, m, cache)))
	case KRotl, KRotr:
		a, b := eval(e.A, m, cache), eval(e.B, m, cache)
		v, _ = foldBin(e.Kind, a, b, w)
	default:
		a, b := eval(e.A, m, cache), eval(e.B, m, cache)
		var ok bool
		v, ok = foldBin(e.Kind, a, b, w)
		if !ok {
			panic(fmt.Sprintf("symbolic: eval: unhandled kind %s", e.Kind))
		}
	}
	v &= msk
	cache[e] = v
	return v
}

// EvalBool evaluates a 1-bit constraint under m.
func EvalBool(e *Expr, m Model) bool { return Eval(e, m)&1 == 1 }

// SatisfiesAll reports whether m satisfies every constraint.
func SatisfiesAll(constraints []*Expr, m Model) bool {
	for _, c := range constraints {
		if !EvalBool(c, m) {
			return false
		}
	}
	return true
}

// nextPow2 is a small helper used by candidate generation.
func nextPow2(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return 1 << (64 - bits.LeadingZeros64(v))
}
