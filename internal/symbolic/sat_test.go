package symbolic

import (
	"math/rand"
	"testing"
)

func TestSATTrivial(t *testing.T) {
	s := NewSAT(2)
	s.AddClause(MkLit(0, false))                 // x0
	s.AddClause(MkLit(0, true), MkLit(1, false)) // !x0 | x1
	sat, ok := s.Solve()
	if !ok || !sat {
		t.Fatalf("solve: sat=%v ok=%v", sat, ok)
	}
	if !s.ValueOf(0) || !s.ValueOf(1) {
		t.Errorf("model: x0=%v x1=%v", s.ValueOf(0), s.ValueOf(1))
	}
}

func TestSATUnsatPair(t *testing.T) {
	s := NewSAT(1)
	s.AddClause(MkLit(0, false))
	s.AddClause(MkLit(0, true))
	sat, ok := s.Solve()
	if !ok || sat {
		t.Fatalf("want unsat, got sat=%v ok=%v", sat, ok)
	}
}

func TestSATEmptyClauseUnsat(t *testing.T) {
	s := NewSAT(1)
	if s.AddClause() {
		t.Error("empty clause should report false")
	}
	sat, _ := s.Solve()
	if sat {
		t.Error("formula with empty clause is unsat")
	}
}

func TestSATTautologyDropped(t *testing.T) {
	s := NewSAT(1)
	s.AddClause(MkLit(0, false), MkLit(0, true)) // x | !x
	sat, ok := s.Solve()
	if !ok || !sat {
		t.Fatalf("tautology-only formula should be sat")
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons in n holes — a classically
// hard UNSAT family that requires real conflict-driven search.
func pigeonhole(n int) *SAT {
	// var(p, h) = p*n + h
	s := NewSAT((n + 1) * n)
	v := func(p, h int) int { return p*n + h }
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...) // every pigeon sits somewhere
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	return s
}

func TestSATPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := pigeonhole(n)
		sat, ok := s.Solve()
		if !ok {
			t.Fatalf("PHP(%d): budget exhausted", n)
		}
		if sat {
			t.Fatalf("PHP(%d) must be unsat", n)
		}
	}
}

func TestSATConflictBudget(t *testing.T) {
	s := pigeonhole(8)
	s.MaxConflicts = 5
	_, ok := s.Solve()
	if ok {
		t.Skip("solver finished PHP(8) within 5 conflicts — unexpected but not wrong")
	}
}

// TestSATRandom3SAT cross-checks against brute force on small instances.
func TestSATRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 200; round++ {
		nVars := 4 + rng.Intn(6)
		nClauses := 3 + rng.Intn(20)
		type clause [3]Lit
		clauses := make([]clause, nClauses)
		for i := range clauses {
			for j := 0; j < 3; j++ {
				clauses[i][j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
		}
		// Brute force.
		bruteSat := false
		for m := 0; m < 1<<nVars && !bruteSat; m++ {
			all := true
			for _, c := range clauses {
				cSat := false
				for _, l := range c {
					val := m>>l.Var()&1 == 1
					if l.Neg() {
						val = !val
					}
					cSat = cSat || val
				}
				if !cSat {
					all = false
					break
				}
			}
			bruteSat = all
		}
		// CDCL.
		s := NewSAT(nVars)
		for _, c := range clauses {
			s.AddClause(c[0], c[1], c[2])
		}
		sat, ok := s.Solve()
		if !ok {
			t.Fatalf("round %d: budget exhausted on tiny instance", round)
		}
		if sat != bruteSat {
			t.Fatalf("round %d: CDCL=%v brute=%v (%d vars, %d clauses)", round, sat, bruteSat, nVars, nClauses)
		}
		if sat {
			// Model must satisfy every clause.
			for ci, c := range clauses {
				ok := false
				for _, l := range c {
					val := s.ValueOf(l.Var())
					if l.Neg() {
						val = !val
					}
					ok = ok || val
				}
				if !ok {
					t.Fatalf("round %d: clause %d unsatisfied by model", round, ci)
				}
			}
		}
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(7, true)
	if l.Var() != 7 || !l.Neg() {
		t.Errorf("lit: var=%d neg=%v", l.Var(), l.Neg())
	}
	if l.Flip().Neg() || l.Flip().Var() != 7 {
		t.Errorf("flip broken")
	}
	if luby(1) != 1 || luby(2) != 1 || luby(3) != 2 || luby(7) != 4 {
		t.Errorf("luby sequence wrong: %d %d %d %d", luby(1), luby(2), luby(3), luby(7))
	}
}
