package symbolic

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestSATTrivial(t *testing.T) {
	s := NewSAT(2)
	s.AddClause(MkLit(0, false))                 // x0
	s.AddClause(MkLit(0, true), MkLit(1, false)) // !x0 | x1
	sat, ok := s.Solve()
	if !ok || !sat {
		t.Fatalf("solve: sat=%v ok=%v", sat, ok)
	}
	if !s.ValueOf(0) || !s.ValueOf(1) {
		t.Errorf("model: x0=%v x1=%v", s.ValueOf(0), s.ValueOf(1))
	}
}

func TestSATUnsatPair(t *testing.T) {
	s := NewSAT(1)
	s.AddClause(MkLit(0, false))
	s.AddClause(MkLit(0, true))
	sat, ok := s.Solve()
	if !ok || sat {
		t.Fatalf("want unsat, got sat=%v ok=%v", sat, ok)
	}
}

func TestSATEmptyClauseUnsat(t *testing.T) {
	s := NewSAT(1)
	if s.AddClause() {
		t.Error("empty clause should report false")
	}
	sat, _ := s.Solve()
	if sat {
		t.Error("formula with empty clause is unsat")
	}
}

func TestSATTautologyDropped(t *testing.T) {
	s := NewSAT(1)
	s.AddClause(MkLit(0, false), MkLit(0, true)) // x | !x
	sat, ok := s.Solve()
	if !ok || !sat {
		t.Fatalf("tautology-only formula should be sat")
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons in n holes — a classically
// hard UNSAT family that requires real conflict-driven search.
func pigeonhole(n int) *SAT {
	// var(p, h) = p*n + h
	s := NewSAT((n + 1) * n)
	v := func(p, h int) int { return p*n + h }
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...) // every pigeon sits somewhere
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	return s
}

func TestSATPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := pigeonhole(n)
		sat, ok := s.Solve()
		if !ok {
			t.Fatalf("PHP(%d): budget exhausted", n)
		}
		if sat {
			t.Fatalf("PHP(%d) must be unsat", n)
		}
	}
}

func TestSATConflictBudget(t *testing.T) {
	s := pigeonhole(8)
	s.MaxConflicts = 5
	_, ok := s.Solve()
	if ok {
		t.Skip("solver finished PHP(8) within 5 conflicts — unexpected but not wrong")
	}
}

// TestSATRandom3SAT cross-checks against brute force on small instances.
func TestSATRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 200; round++ {
		nVars := 4 + rng.Intn(6)
		nClauses := 3 + rng.Intn(20)
		type clause [3]Lit
		clauses := make([]clause, nClauses)
		for i := range clauses {
			for j := 0; j < 3; j++ {
				clauses[i][j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
		}
		// Brute force.
		bruteSat := false
		for m := 0; m < 1<<nVars && !bruteSat; m++ {
			all := true
			for _, c := range clauses {
				cSat := false
				for _, l := range c {
					val := m>>l.Var()&1 == 1
					if l.Neg() {
						val = !val
					}
					cSat = cSat || val
				}
				if !cSat {
					all = false
					break
				}
			}
			bruteSat = all
		}
		// CDCL.
		s := NewSAT(nVars)
		for _, c := range clauses {
			s.AddClause(c[0], c[1], c[2])
		}
		sat, ok := s.Solve()
		if !ok {
			t.Fatalf("round %d: budget exhausted on tiny instance", round)
		}
		if sat != bruteSat {
			t.Fatalf("round %d: CDCL=%v brute=%v (%d vars, %d clauses)", round, sat, bruteSat, nVars, nClauses)
		}
		if sat {
			// Model must satisfy every clause.
			for ci, c := range clauses {
				ok := false
				for _, l := range c {
					val := s.ValueOf(l.Var())
					if l.Neg() {
						val = !val
					}
					ok = ok || val
				}
				if !ok {
					t.Fatalf("round %d: clause %d unsatisfied by model", round, ci)
				}
			}
		}
	}
}

// guardedPigeonhole is pigeonhole(n) with every clause behind one selector
// variable g: assuming g reproduces the hard refutation, releasing it makes
// the instance trivially satisfiable. The classic incremental-SAT pattern.
func guardedPigeonhole(n int) (*SAT, Lit) {
	s := NewSAT((n+1)*n + 1)
	g := (n + 1) * n
	guard := MkLit(g, true)
	v := func(p, h int) int { return p*n + h }
	for p := 0; p <= n; p++ {
		lits := []Lit{guard}
		for h := 0; h < n; h++ {
			lits = append(lits, MkLit(v(p, h), false))
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(guard, MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	return s, MkLit(g, false)
}

func TestSolveAssumingBasic(t *testing.T) {
	s := NewSAT(2)
	s.AddClause(MkLit(0, false), MkLit(1, false)) // x0 | x1
	sat, ok := s.SolveAssuming([]Lit{MkLit(0, true)})
	if !ok || !sat {
		t.Fatalf("sat under {!x0}: sat=%v ok=%v", sat, ok)
	}
	if s.ValueOf(0) || !s.ValueOf(1) {
		t.Errorf("model under {!x0}: x0=%v x1=%v", s.ValueOf(0), s.ValueOf(1))
	}
	sat, ok = s.SolveAssuming([]Lit{MkLit(0, true), MkLit(1, true)})
	if !ok || sat {
		t.Fatalf("want unsat under {!x0,!x1}: sat=%v ok=%v", sat, ok)
	}
	failed := s.FailedAssumptions()
	if len(failed) == 0 {
		t.Error("assumption-unsat must report a failed set")
	}
	for _, l := range failed {
		if l != MkLit(0, true) && l != MkLit(1, true) {
			t.Errorf("failed literal %v is not an assumption", l)
		}
	}
	// The instance survives an assumption-unsat: the formula itself is sat.
	if sat, ok := s.Solve(); !ok || !sat {
		t.Fatalf("formula without assumptions must be sat: sat=%v ok=%v", sat, ok)
	}
}

func TestSolveAssumingFailedChain(t *testing.T) {
	// x0 -> x1 -> x2: assuming x0 and !x2 is contradictory and the failed
	// set must name only assumptions.
	s := NewSAT(3)
	s.AddClause(MkLit(0, true), MkLit(1, false))
	s.AddClause(MkLit(1, true), MkLit(2, false))
	assume := []Lit{MkLit(0, false), MkLit(2, true)}
	sat, ok := s.SolveAssuming(assume)
	if !ok || sat {
		t.Fatalf("want unsat under {x0,!x2}: sat=%v ok=%v", sat, ok)
	}
	if len(s.FailedAssumptions()) == 0 {
		t.Fatal("empty failed set")
	}
	for _, l := range s.FailedAssumptions() {
		if l != assume[0] && l != assume[1] {
			t.Errorf("failed literal %v is not an assumption", l)
		}
	}
}

// TestSolveAssumingClauseRetention refutes guarded PHP(5) twice under the
// selector: clauses learned by the first call must survive, making the
// second refutation strictly cheaper — the property the incremental flip
// loop's prefix sharing is built on.
func TestSolveAssumingClauseRetention(t *testing.T) {
	s, g := guardedPigeonhole(5)
	start := s.conflicts
	if sat, ok := s.SolveAssuming([]Lit{g}); !ok || sat {
		t.Fatalf("guarded PHP(5) must refute under g: sat=%v ok=%v", sat, ok)
	}
	c1 := s.conflicts - start
	start = s.conflicts
	if sat, ok := s.SolveAssuming([]Lit{g}); !ok || sat {
		t.Fatalf("second refutation: sat=%v ok=%v", sat, ok)
	}
	c2 := s.conflicts - start
	if c1 == 0 {
		t.Fatal("first refutation needed no conflicts — instance too easy to witness retention")
	}
	if c2 >= c1 {
		t.Errorf("no learned-clause reuse: first refutation %d conflicts, second %d", c1, c2)
	}
	// Releasing the guard satisfies every clause.
	if sat, ok := s.Solve(); !ok || !sat {
		t.Fatalf("instance must be sat without the assumption: sat=%v ok=%v", sat, ok)
	}
}

// TestSolveAssumingBudgetPerCall pins the budget semantics: MaxConflicts
// bounds each call, not the instance lifetime, so an exhausted call leaves
// the instance usable and a refreshed budget finishes the refutation.
func TestSolveAssumingBudgetPerCall(t *testing.T) {
	s, g := guardedPigeonhole(7)
	s.MaxConflicts = 5
	if _, ok := s.SolveAssuming([]Lit{g}); ok {
		t.Skip("solver refuted guarded PHP(7) within 5 conflicts — unexpected but not wrong")
	}
	s.MaxConflicts = 0 // unlimited
	sat, ok := s.SolveAssuming([]Lit{g})
	if !ok || sat {
		t.Fatalf("refreshed budget must finish the refutation: sat=%v ok=%v", sat, ok)
	}
}

// The two pickBranch benchmarks below measure the indexed-heap decision
// queue against the linear activity scan it replaced (identical decisions —
// activity descending, ties to the lower index — so digests and sat_calls
// are unchanged; swap pickBranch bodies to reproduce). Development-machine
// numbers (go test -bench -benchtime=2s):
//
//	                     linear scan    indexed heap
//	SATPigeonhole (42v)   14.5 ms/op     17.6 ms/op
//	SolveUltChain         14.2 ms/op     14.9 ms/op
//
// On these instance sizes the two are within machine noise: decisions are
// rare relative to propagations, so neither dominates the solve. The heap
// buys the worst case — pickBranch is O(log vars) instead of O(vars), so
// decision cost no longer scales with bit-blasted instance size (a wide
// memory-heavy trace easily reaches tens of thousands of SAT variables).

func BenchmarkSATPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := pigeonhole(6)
		if sat, ok := s.Solve(); !ok || sat {
			b.Fatal("PHP(6) must refute")
		}
	}
}

// BenchmarkSolveUltChain refutes a bit-blasted inequality-chain flip (the
// incr experiment's family shape) from scratch each iteration.
func BenchmarkSolveUltChain(b *testing.B) {
	ctx := NewCtx()
	const chain = 5
	vs := make([]*Expr, chain+1)
	for i := range vs {
		vs[i] = ctx.Var(fmt.Sprintf("v%d", i), 32)
	}
	cs := make([]*Expr, 0, chain+1)
	for i := 0; i < chain; i++ {
		cs = append(cs, ctx.Ult(vs[i], vs[i+1]))
	}
	cs = append(cs, ctx.Ult(vs[chain], vs[0]))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &Solver{MaxConflicts: 200_000}
		if _, res := s.Solve(cs); res != Unsat {
			b.Fatalf("chain flip must refute, got %v", res)
		}
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(7, true)
	if l.Var() != 7 || !l.Neg() {
		t.Errorf("lit: var=%d neg=%v", l.Var(), l.Neg())
	}
	if l.Flip().Neg() || l.Flip().Var() != 7 {
		t.Errorf("flip broken")
	}
	if luby(1) != 1 || luby(2) != 1 || luby(3) != 2 || luby(7) != 4 {
		t.Errorf("luby sequence wrong: %d %d %d %d", luby(1), luby(2), luby(3), luby(7))
	}
}
