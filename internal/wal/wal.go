// Package wal is the repository's crash-safe write-ahead log: an
// append-only record file whose readers trust nothing a crash could have
// produced. It generalizes the campaign checkpoint journal (PR 3) into a
// reusable layer so the analysis daemon can persist job and queue state
// with the same guarantee the journal gives campaigns — a SIGKILL at any
// instant loses at most the record being written, and a restart resumes
// from exactly the durable prefix.
//
// Guarantees:
//
//   - CRC-framed records: every record is one line, `%08x %s\n` — an IEEE
//     CRC32 of the payload in fixed-width hex, a space, and the payload
//     itself (payloads must be newline-free; JSON is). A frame that fails
//     to parse or whose checksum disagrees is never surfaced to the
//     caller.
//   - torn-tail truncation: Open physically truncates a torn final record
//     (no trailing newline, or an invalid frame at EOF) so appends from
//     the resumed process never interleave with a half-written line.
//     Invalid *interior* lines — bit rot, not crash — are dropped from the
//     replay and counted, but left on disk.
//   - configurable fsync policy: the header is always fsynced; records are
//     fsynced every Options.SyncEvery appends (default DefaultSyncEvery).
//     Close flushes and syncs whatever is pending.
//   - generation-stamped rotation: Rotate atomically replaces the log with
//     a compacted one (write temp, fsync, rename) whose header carries the
//     next generation number, so readers can tell a compacted log from a
//     tampered one and tests can observe compaction happening.
//
// The WAL stores outcomes the caller can re-derive the world from, not
// low-level mutations: the campaign journal appends one record per
// completed job, the serve daemon one record per job submission and
// completion. Replay is therefore idempotent by construction.
package wal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// DefaultSyncEvery is the default fsync cadence: one fsync per this many
// appended records. Chosen so a crashed campaign loses at most a handful
// of job outcomes (they are simply re-run on resume) while the fsync cost
// stays amortized across the batch.
const DefaultSyncEvery = 8

// Options tunes a log.
type Options struct {
	// SyncEvery is the fsync cadence: fsync after every N appended
	// records. 0 means DefaultSyncEvery; negative disables record fsyncs
	// entirely (the header and Close still sync). 1 syncs every record.
	SyncEvery int
	// Meta is an opaque caller blob stored in the header record and
	// returned verbatim by Open's Replay. The campaign journal pins its
	// base seed here; the serve daemon its state-format version.
	Meta json.RawMessage
}

func (o Options) syncEvery() int {
	if o.SyncEvery == 0 {
		return DefaultSyncEvery
	}
	return o.SyncEvery
}

// header is the first record of every generation of a log.
type header struct {
	Magic string          `json:"wal"`
	Gen   uint64          `json:"gen"`
	Meta  json.RawMessage `json:"meta,omitempty"`
}

// headerMagic identifies a wal header payload.
const headerMagic = "wasai-wal/1"

// Replay is what Open recovered from an existing log.
type Replay struct {
	// Gen is the log's generation (1 for a never-rotated log).
	Gen uint64
	// Meta is the header's caller blob (nil when Open created a fresh
	// header because the file was empty or its header was torn).
	Meta json.RawMessage
	// Records are the validated payloads in append order, header excluded.
	Records [][]byte
	// Dropped counts invalid interior lines skipped during replay.
	Dropped int
	// Truncated is the byte length of the torn tail Open cut off.
	Truncated int64
}

// Stats are a log's cumulative write-side counters (reporting only).
type Stats struct {
	Appends   int64
	Syncs     int64
	Rotations int64
	Gen       uint64
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use. The first write failure sticks: later appends return it rather
// than interleaving partial frames into a sick file.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	opts    Options
	gen     uint64
	pending int // appends since the last fsync
	err     error
	stats   Stats
}

// Create truncates (or creates) the file at path and starts generation 1
// with opts.Meta in the header. The header is fsynced before Create
// returns.
func Create(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	l := &Log{f: f, path: path, opts: opts, gen: 1}
	if err := l.writeHeader(header{Magic: headerMagic, Gen: 1, Meta: opts.Meta}); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Open reads an existing log, validates every frame, truncates a torn
// tail, and returns the log opened for appending together with the
// replayed records. A file with no usable header (empty, or torn before
// the header's fsync landed) is restarted as a fresh generation-1 log —
// its Replay carries no records and a nil Meta, so the caller can tell.
// Opening a missing file fails with an error satisfying os.IsNotExist.
func Open(path string, opts Options) (*Log, *Replay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	replay := &Replay{}
	goodEnd := 0 // offset just past the last fully-valid line
	var hdr *header
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Unterminated final line: torn by a crash mid-write.
			break
		}
		line := data[off : off+nl]
		payload, ok := unframe(line)
		if !ok {
			if off+nl+1 >= len(data) {
				// Invalid final line: also a torn write (the CRC landed,
				// the payload didn't, or vice versa). Truncate it.
				break
			}
			// Invalid interior line: bit rot. Drop the record but keep
			// scanning — later records were written by a healthy process.
			replay.Dropped++
			off += nl + 1
			goodEnd = off
			continue
		}
		if hdr == nil {
			h := &header{}
			if json.Unmarshal(payload, h) == nil && h.Magic == headerMagic {
				hdr = h
			} else {
				// First valid frame is not a header: a pre-wal or foreign
				// file. Treat as headerless (restart below).
				replay.Dropped++
			}
		} else {
			replay.Records = append(replay.Records, payload)
		}
		off += nl + 1
		goodEnd = off
	}
	replay.Truncated = int64(len(data) - goodEnd)

	if hdr == nil {
		// No durable header: nothing in this file can be trusted to belong
		// to a coherent generation. Restart fresh (the common cause is a
		// crash before the header fsync on a brand-new log).
		l, err := Create(path, opts)
		if err != nil {
			return nil, nil, err
		}
		return l, &Replay{Gen: 1, Truncated: int64(len(data))}, nil
	}

	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if err := f.Truncate(int64(goodEnd)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(int64(goodEnd), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if replay.Truncated > 0 {
		// Make the repair itself durable before anything is appended past it.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync %s: %w", path, err)
		}
	}
	replay.Gen = hdr.Gen
	replay.Meta = hdr.Meta
	l := &Log{f: f, path: path, opts: opts, gen: hdr.Gen}
	l.stats.Gen = hdr.Gen
	return l, replay, nil
}

// frame renders one record line (without trailing newline).
func frame(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+10)
	out = append(out, []byte(fmt.Sprintf("%08x ", crc32.ChecksumIEEE(payload)))...)
	return append(out, payload...)
}

// unframe validates one line and returns its payload.
func unframe(line []byte) ([]byte, bool) {
	if len(line) < 9 || line[8] != ' ' {
		return nil, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, false
	}
	return payload, true
}

// writeHeader appends and fsyncs a header record (callers hold no lock;
// only construction paths use it).
func (l *Log) writeHeader(h header) error {
	b, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("wal: header: %w", err)
	}
	if _, err := l.f.Write(append(frame(b), '\n')); err != nil {
		return fmt.Errorf("wal: header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: header sync: %w", err)
	}
	l.stats.Syncs++
	l.stats.Gen = l.gen
	return nil
}

// Append frames and writes one record, applying the fsync policy. The
// payload must not contain a newline (marshal JSON; it never does).
func (l *Log) Append(payload []byte) error {
	if bytes.IndexByte(payload, '\n') >= 0 {
		//wasai:rawerr caller-contract violation surfaced before any write, never classified
		return fmt.Errorf("wal: record payload contains a newline")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if _, err := l.f.Write(append(frame(payload), '\n')); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return l.err
	}
	l.stats.Appends++
	l.pending++
	if every := l.opts.syncEvery(); every > 0 && l.pending >= every {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: sync: %w", err)
			return l.err
		}
		l.stats.Syncs++
		l.pending = 0
	}
	return nil
}

// Sync forces an fsync regardless of policy (the serve daemon syncs every
// admission record before acknowledging the client).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: sync: %w", err)
		return l.err
	}
	l.stats.Syncs++
	l.pending = 0
	return nil
}

// Rotate atomically replaces the log with a compacted next generation:
// a temp file gets a gen+1 header (carrying meta, which may differ from
// the Open-time meta) plus the kept records, is fsynced, and renamed over
// the log. On success appends continue on the new generation; on failure
// the old generation is untouched and stays open.
func (l *Log) Rotate(meta json.RawMessage, keep [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	tmpPath := l.path + ".rotate"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate %s: %w", l.path, err)
	}
	cleanup := func() { tmp.Close(); os.Remove(tmpPath) }
	hb, err := json.Marshal(header{Magic: headerMagic, Gen: l.gen + 1, Meta: meta})
	if err != nil {
		cleanup()
		return fmt.Errorf("wal: rotate header: %w", err)
	}
	w := bufio.NewWriter(tmp)
	if _, err := w.Write(append(frame(hb), '\n')); err != nil {
		cleanup()
		return fmt.Errorf("wal: rotate: %w", err)
	}
	for _, rec := range keep {
		if bytes.IndexByte(rec, '\n') >= 0 {
			cleanup()
			//wasai:rawerr caller-contract violation, old generation left untouched
			return fmt.Errorf("wal: rotate: kept record contains a newline")
		}
		if _, err := w.Write(append(frame(rec), '\n')); err != nil {
			cleanup()
			return fmt.Errorf("wal: rotate: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		cleanup()
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: rotate rename: %w", err)
	}
	syncDir(l.path)
	// Swap the open handle to the new generation's file.
	nf, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.err = fmt.Errorf("wal: rotate reopen: %w", err)
		return l.err
	}
	l.f.Close()
	l.f = nf
	l.gen++
	l.pending = 0
	l.stats.Rotations++
	l.stats.Syncs++
	l.stats.Gen = l.gen
	return nil
}

// syncDir fsyncs the directory containing path so a rename survives a
// crash. Best-effort: some filesystems refuse directory syncs, and the
// rename itself is already atomic.
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Err returns the sticky first write failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Gen returns the current generation.
func (l *Log) Gen() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Stats snapshots the write-side counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close syncs pending records and closes the file. Safe after a sticky
// error (the close still happens).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var syncErr error
	if l.err == nil && l.pending > 0 {
		if syncErr = l.f.Sync(); syncErr == nil {
			l.stats.Syncs++
			l.pending = 0
		}
	}
	closeErr := l.f.Close()
	if syncErr != nil {
		return fmt.Errorf("wal: close: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("wal: close: %w", closeErr)
	}
	return nil
}
