package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatalf("append %q: %v", r, err)
		}
	}
}

func records(r *Replay) []string {
	out := make([]string, len(r.Records))
	for i, b := range r.Records {
		out[i] = string(b)
	}
	return out
}

func TestCreateAppendOpenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	meta := json.RawMessage(`{"base_seed":42}`)
	l, err := Create(path, Options{Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, `{"id":1}`, `{"id":2}`, `{"id":3}`)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, replay, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got, want := records(replay), []string{`{"id":1}`, `{"id":2}`, `{"id":3}`}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("replayed %v, want %v", got, want)
	}
	if string(replay.Meta) != string(meta) {
		t.Errorf("meta %s, want %s", replay.Meta, meta)
	}
	if replay.Gen != 1 {
		t.Errorf("gen %d, want 1", replay.Gen)
	}
	if replay.Dropped != 0 || replay.Truncated != 0 {
		t.Errorf("clean log reported dropped=%d truncated=%d", replay.Dropped, replay.Truncated)
	}
}

// TestTornFinalLineTruncated is the crash test the journal durability fix
// demands: a SIGKILL mid-write leaves a half-frame at EOF; Open must cut
// it off physically, replay only the durable prefix, and append cleanly
// after the repair.
func TestTornFinalLineTruncated(t *testing.T) {
	for _, tear := range []struct {
		name string
		tear func([]byte) []byte
	}{
		{"mid-payload-no-newline", func(b []byte) []byte { return b[:len(b)-7] }},
		{"bad-crc-at-eof", func(b []byte) []byte {
			// Corrupt a payload byte of the final line, keeping the newline.
			c := append([]byte{}, b...)
			c[len(c)-3] ^= 0x40
			return c
		}},
		{"garbage-tail", func(b []byte) []byte { return append(b, []byte("zzzz not a frame")...) }},
	} {
		t.Run(tear.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "test.wal")
			l, err := Create(path, Options{SyncEvery: 1})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, `{"id":1}`, `{"id":2}`, `{"id":3}`)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tear.tear(data), 0o644); err != nil {
				t.Fatal(err)
			}

			l2, replay, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if replay.Truncated == 0 {
				t.Error("torn tail reported zero truncated bytes")
			}
			appendAll(t, l2, `{"id":4}`)
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}

			_, replay2, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := records(replay2)
			if len(got) == 0 || got[len(got)-1] != `{"id":4}` {
				t.Fatalf("post-repair append lost: %v", got)
			}
			// The torn record is gone; everything before it survived.
			for _, r := range got {
				if strings.Contains(r, "zzzz") {
					t.Errorf("garbage survived replay: %q", r)
				}
			}
			if replay2.Truncated != 0 || replay2.Dropped != 0 {
				t.Errorf("repaired log still reports truncated=%d dropped=%d", replay2.Truncated, replay2.Dropped)
			}
		})
	}
}

// TestInteriorCorruptionDropped: a bit-rotted interior line is excluded
// from replay without losing the records after it.
func TestInteriorCorruptionDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Create(path, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, `{"id":1}`, `{"id":2}`, `{"id":3}`)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	idx := bytes.Index(data, []byte(`{"id":2}`))
	if idx < 0 {
		t.Fatal("record not found")
	}
	data[idx+1] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, replay, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got, want := records(replay), []string{`{"id":1}`, `{"id":3}`}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("replayed %v, want %v", got, want)
	}
	if replay.Dropped != 1 {
		t.Errorf("dropped %d, want 1", replay.Dropped)
	}
}

// TestHeaderlessFileRestarts: a file that never got a durable header (the
// crash landed before the header fsync) restarts as a fresh log instead of
// failing or trusting garbage.
func TestHeaderlessFileRestarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	if err := os.WriteFile(path, []byte("half a hea"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, replay, err := Open(path, Options{Meta: json.RawMessage(`{"v":1}`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Records) != 0 || replay.Meta != nil {
		t.Errorf("headerless open replayed records=%d meta=%s", len(replay.Records), replay.Meta)
	}
	appendAll(t, l, `{"id":1}`)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, replay2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := records(replay2); len(got) != 1 || got[0] != `{"id":1}` {
		t.Errorf("restarted log replayed %v", got)
	}
	if string(replay2.Meta) != `{"v":1}` {
		t.Errorf("restarted header lost meta: %s", replay2.Meta)
	}
}

func TestOpenMissingFile(t *testing.T) {
	_, _, err := Open(filepath.Join(t.TempDir(), "absent.wal"), Options{})
	if !os.IsNotExist(err) {
		t.Fatalf("err = %v, want IsNotExist", err)
	}
}

// TestSyncPolicy: the fsync counter follows the configured cadence, and
// Close flushes the remainder.
func TestSyncPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Create(path, Options{SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	base := l.Stats().Syncs // header sync
	if base != 1 {
		t.Fatalf("header syncs = %d, want 1", base)
	}
	appendAll(t, l, "a", "b")
	if got := l.Stats().Syncs - base; got != 0 {
		t.Errorf("syncs after 2 appends = %d, want 0", got)
	}
	appendAll(t, l, "c")
	if got := l.Stats().Syncs - base; got != 1 {
		t.Errorf("syncs after 3 appends = %d, want 1", got)
	}
	appendAll(t, l, "d")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close syncs the pending 4th record.
	if got := l.Stats().Appends; got != 4 {
		t.Errorf("appends = %d, want 4", got)
	}
}

// TestSyncDisabled: negative SyncEvery never fsyncs on append (only the
// header and Close do).
func TestSyncDisabled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Create(path, Options{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b", "c", "d", "e", "f", "g", "h", "i", "j")
	if got := l.Stats().Syncs; got != 1 {
		t.Errorf("syncs = %d, want 1 (header only)", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRotate: rotation bumps the generation, keeps exactly the requested
// records, swaps meta, and survives a reopen.
func TestRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Create(path, Options{Meta: json.RawMessage(`{"v":1}`)})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, `{"id":1}`, `{"id":2}`, `{"id":3}`)
	if err := l.Rotate(json.RawMessage(`{"v":2}`), [][]byte{[]byte(`{"id":3}`)}); err != nil {
		t.Fatal(err)
	}
	if l.Gen() != 2 {
		t.Errorf("gen after rotate = %d, want 2", l.Gen())
	}
	appendAll(t, l, `{"id":4}`)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, replay, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := records(replay), []string{`{"id":3}`, `{"id":4}`}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("post-rotate replay %v, want %v", got, want)
	}
	if replay.Gen != 2 {
		t.Errorf("post-rotate gen = %d, want 2", replay.Gen)
	}
	if string(replay.Meta) != `{"v":2}` {
		t.Errorf("post-rotate meta = %s, want {\"v\":2}", replay.Meta)
	}
}

// TestConcurrentAppend: appends from many goroutines never tear frames.
func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Create(path, Options{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n, workers = 50, 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < n; i++ {
				if err := l.Append([]byte(fmt.Sprintf(`{"w":%d,"i":%d}`, w, i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, replay, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Records) != n*workers {
		t.Errorf("replayed %d records, want %d", len(replay.Records), n*workers)
	}
	if replay.Dropped != 0 || replay.Truncated != 0 {
		t.Errorf("concurrent appends produced dropped=%d truncated=%d", replay.Dropped, replay.Truncated)
	}
}

func TestAppendRejectsNewline(t *testing.T) {
	l, err := Create(filepath.Join(t.TempDir(), "test.wal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("a\nb")); err == nil {
		t.Fatal("Append accepted a payload with a newline")
	}
}
