package abi

import (
	"encoding/json"
	"fmt"

	"repro/internal/eos"
)

// jsonABI is the serialized form, a simplified shape of the on-chain EOSIO
// ABI JSON (structs / actions / tables).
type jsonABI struct {
	Structs []jsonStruct `json:"structs"`
	Actions []jsonAction `json:"actions"`
	Tables  []jsonTable  `json:"tables,omitempty"`
}

type jsonStruct struct {
	Name   string      `json:"name"`
	Base   string      `json:"base,omitempty"`
	Fields []jsonField `json:"fields"`
}

type jsonField struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type jsonAction struct {
	Name eos.Name `json:"name"`
	Type string   `json:"type"`
}

type jsonTable struct {
	Name eos.Name `json:"name"`
	Type string   `json:"type"`
}

// MarshalJSON implements json.Marshaler.
func (a *ABI) MarshalJSON() ([]byte, error) {
	out := jsonABI{}
	for _, s := range a.Structs {
		js := jsonStruct{Name: s.Name, Base: s.Base}
		for _, f := range s.Fields {
			js.Fields = append(js.Fields, jsonField{Name: f.Name, Type: f.Type})
		}
		out.Structs = append(out.Structs, js)
	}
	for _, act := range a.Actions {
		out.Actions = append(out.Actions, jsonAction{Name: act.Name, Type: act.Type})
	}
	for _, t := range a.Tables {
		out.Tables = append(out.Tables, jsonTable{Name: t.Name, Type: t.Type})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *ABI) UnmarshalJSON(p []byte) error {
	var in jsonABI
	if err := json.Unmarshal(p, &in); err != nil {
		return fmt.Errorf("abi: parse json: %w", err)
	}
	*a = ABI{}
	for _, s := range in.Structs {
		st := Struct{Name: s.Name, Base: s.Base}
		for _, f := range s.Fields {
			st.Fields = append(st.Fields, Field{Name: f.Name, Type: f.Type})
		}
		a.Structs = append(a.Structs, st)
	}
	for _, act := range in.Actions {
		a.Actions = append(a.Actions, Action{Name: act.Name, Type: act.Type})
	}
	for _, t := range in.Tables {
		a.Tables = append(a.Tables, Table{Name: t.Name, Type: t.Type})
	}
	return nil
}
