package abi

import (
	"testing"

	"repro/internal/eos"
)

// FuzzDecodeTransfer drives the action decoder with arbitrary byte streams:
// it must never panic, and whatever decodes must re-encode to a prefix-
// equivalent stream (decode∘encode is the identity on accepted inputs).
func FuzzDecodeTransfer(f *testing.F) {
	a := TransferABI()
	if seed, err := NewEncoder(a).EncodeAction(eos.ActionTransfer, []any{
		eos.MustName("alice"), eos.MustName("bob"),
		eos.Asset{Amount: 100000, Symbol: eos.EOSSymbol}, "memo",
	}); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(a, data)
		vals, err := dec.DecodeAction(eos.ActionTransfer)
		if err != nil {
			return
		}
		re, err := NewEncoder(a).EncodeAction(eos.ActionTransfer, vals)
		if err != nil {
			t.Fatalf("decoded values failed to re-encode: %v (vals %v)", err, vals)
		}
		consumed := len(data) - dec.Remaining()
		// The re-encoding must round-trip to the same values (the byte
		// stream itself may differ only in non-canonical varint prefixes,
		// which our encoder always emits canonically).
		back, err := NewDecoder(a, re).DecodeAction(eos.ActionTransfer)
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		for i := range vals {
			if vals[i] != back[i] {
				t.Fatalf("value %d changed across round trip: %v vs %v", i, vals[i], back[i])
			}
		}
		if consumed < 32 {
			t.Fatalf("transfer cannot fit in %d bytes", consumed)
		}
	})
}
