package abi

import (
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/eos"
)

func transferValues(from, to string, amount int64, memo string) []any {
	return []any{
		eos.MustName(from),
		eos.MustName(to),
		eos.Asset{Amount: amount, Symbol: eos.EOSSymbol},
		memo,
	}
}

func TestTransferRoundTrip(t *testing.T) {
	a := TransferABI()
	enc := NewEncoder(a)
	vals := transferValues("alice", "bob", 100000, "hello world")
	data, err := enc.EncodeAction(eos.ActionTransfer, vals)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// from(8) to(8) asset(16) memo(1+11)
	if len(data) != 8+8+16+1+11 {
		t.Errorf("serialized length = %d", len(data))
	}
	dec := NewDecoder(a, data)
	back, err := dec.DecodeAction(eos.ActionTransfer)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back[0].(eos.Name) != vals[0].(eos.Name) ||
		back[1].(eos.Name) != vals[1].(eos.Name) ||
		back[2].(eos.Asset) != vals[2].(eos.Asset) ||
		back[3].(string) != vals[3].(string) {
		t.Errorf("round trip mismatch: %v vs %v", back, vals)
	}
	if dec.Remaining() != 0 {
		t.Errorf("%d trailing bytes", dec.Remaining())
	}
}

func TestTransferRoundTripQuick(t *testing.T) {
	a := TransferABI()
	f := func(from, to uint64, amount int64, memoSeed []byte) bool {
		memo := make([]byte, len(memoSeed)%100)
		for i := range memo {
			memo[i] = 'a' + memoSeed[i]%26
		}
		vals := []any{
			eos.Name(from), eos.Name(to),
			eos.Asset{Amount: amount, Symbol: eos.EOSSymbol},
			string(memo),
		}
		data, err := NewEncoder(a).EncodeAction(eos.ActionTransfer, vals)
		if err != nil {
			return false
		}
		back, err := NewDecoder(a, data).DecodeAction(eos.ActionTransfer)
		if err != nil {
			return false
		}
		return back[0].(eos.Name) == eos.Name(from) &&
			back[1].(eos.Name) == eos.Name(to) &&
			back[2].(eos.Asset).Amount == amount &&
			back[3].(string) == string(memo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScalarTypes(t *testing.T) {
	a := &ABI{}
	enc := NewEncoder(a)
	cases := []struct {
		typ   string
		value any
		size  int
	}{
		{"bool", true, 1},
		{"uint8", uint64(7), 1},
		{"uint16", uint64(300), 2},
		{"uint32", uint64(1 << 20), 4},
		{"uint64", uint64(1) << 50, 8},
		{"int64", int64(-5), 8},
		{"symbol", eos.EOSSymbol, 8},
		{"float32", 1.5, 4},
		{"float64", 2.25, 8},
		{"bytes", []byte{1, 2, 3}, 4},
	}
	for _, tt := range cases {
		enc.buf = enc.buf[:0]
		if err := enc.Encode(tt.typ, tt.value); err != nil {
			t.Fatalf("encode %s: %v", tt.typ, err)
		}
		if len(enc.Bytes()) != tt.size {
			t.Errorf("%s size = %d, want %d", tt.typ, len(enc.Bytes()), tt.size)
		}
		dec := NewDecoder(a, enc.Bytes())
		if _, err := dec.Decode(tt.typ); err != nil {
			t.Errorf("decode %s: %v", tt.typ, err)
		}
		if dec.Remaining() != 0 {
			t.Errorf("%s left %d bytes", tt.typ, dec.Remaining())
		}
	}
}

func TestArrays(t *testing.T) {
	a := &ABI{}
	enc := NewEncoder(a)
	items := []any{uint64(1), uint64(2), uint64(3)}
	if err := enc.Encode("uint64[]", items); err != nil {
		t.Fatalf("encode array: %v", err)
	}
	dec := NewDecoder(a, enc.Bytes())
	back, err := dec.Decode("uint64[]")
	if err != nil {
		t.Fatalf("decode array: %v", err)
	}
	got := back.([]any)
	if len(got) != 3 || got[2].(uint64) != 3 {
		t.Errorf("array round trip: %v", got)
	}
}

func TestNestedStructsWithBase(t *testing.T) {
	a := &ABI{
		Structs: []Struct{
			{Name: "base", Fields: []Field{{Name: "id", Type: "uint64"}}},
			{Name: "derived", Base: "base", Fields: []Field{{Name: "who", Type: "name"}}},
		},
		Actions: []Action{{Name: eos.MustName("doit"), Type: "derived"}},
	}
	fields, err := a.ActionFields(eos.MustName("doit"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 || fields[0].Name != "id" || fields[1].Name != "who" {
		t.Fatalf("resolved fields: %+v", fields)
	}
	data, err := NewEncoder(a).EncodeAction(eos.MustName("doit"), []any{uint64(9), eos.MustName("alice")})
	if err != nil {
		t.Fatal(err)
	}
	back, err := NewDecoder(a, data).DecodeAction(eos.MustName("doit"))
	if err != nil {
		t.Fatal(err)
	}
	if back[0].(uint64) != 9 || back[1].(eos.Name) != eos.MustName("alice") {
		t.Errorf("round trip: %v", back)
	}
}

func TestUnknownTypeError(t *testing.T) {
	a := &ABI{}
	if err := NewEncoder(a).Encode("nosuch", uint64(1)); !errors.Is(err, ErrUnknownType) {
		t.Errorf("want ErrUnknownType, got %v", err)
	}
}

func TestTypeMismatchError(t *testing.T) {
	a := &ABI{}
	if err := NewEncoder(a).Encode("name", "not-a-name"); err == nil {
		t.Error("want type error encoding string as name")
	}
}

func TestWrongArgCount(t *testing.T) {
	a := TransferABI()
	_, err := NewEncoder(a).EncodeAction(eos.ActionTransfer, []any{eos.MustName("x")})
	if err == nil {
		t.Error("want arity error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	a := TransferABI()
	data, err := NewEncoder(a).EncodeAction(eos.ActionTransfer, transferValues("a", "b", 1, "mm"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 5 {
		if _, err := NewDecoder(a, data[:cut]).DecodeAction(eos.ActionTransfer); err == nil && cut < len(data)-1 {
			t.Errorf("decode of %d/%d bytes should fail", cut, len(data))
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := TransferABI()
	a.Tables = []Table{{Name: eos.MustName("accounts"), Type: "account"}}
	p, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back ABI
	if err := json.Unmarshal(p, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Structs) != 1 || len(back.Actions) != 1 || len(back.Tables) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	if back.Actions[0].Name != eos.ActionTransfer || back.Structs[0].Fields[2].Type != "asset" {
		t.Errorf("content mismatch: %+v", back)
	}
}

func TestRecursiveStructRejected(t *testing.T) {
	a := &ABI{
		Structs: []Struct{{Name: "loop", Base: "loop"}},
		Actions: []Action{{Name: eos.MustName("x"), Type: "loop"}},
	}
	if _, err := a.ActionFields(eos.MustName("x")); err == nil {
		t.Error("want recursion error")
	}
}
