// Package abi models EOSIO contract ABIs (the action-signature metadata the
// C++ SDK emits next to each Wasm binary) and implements the canonical EOSIO
// binary serialization of action data.
//
// WASAI consumes the ABI in two places: Engine serializes fuzz seeds
// Γ⟨φ, ρ⃗⟩ into the byte stream a transaction carries, and Symback uses the
// declared parameter types to lay symbolic expressions over the action
// function's Local section (paper §3.4.2, Table 2).
package abi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/eos"
	"repro/internal/leb128"
)

// Field is one named, typed member of a struct definition.
type Field struct {
	Name string
	Type string
}

// Struct is a named aggregate of fields, optionally extending a base struct.
type Struct struct {
	Name   string
	Base   string
	Fields []Field
}

// Action binds an action name to the struct type describing its parameters.
type Action struct {
	Name eos.Name
	Type string
}

// Table declares a database table and its row type.
type Table struct {
	Name eos.Name
	Type string
}

// ABI is a contract interface description.
type ABI struct {
	Structs []Struct
	Actions []Action
	Tables  []Table
}

// ErrUnknownType reports a type name with no builtin or struct definition.
var ErrUnknownType = errors.New("abi: unknown type")

// StructByName returns the struct definition with the given name.
func (a *ABI) StructByName(name string) (*Struct, bool) {
	for i := range a.Structs {
		if a.Structs[i].Name == name {
			return &a.Structs[i], true
		}
	}
	return nil, false
}

// ActionByName returns the action with the given name.
func (a *ABI) ActionByName(name eos.Name) (*Action, bool) {
	for i := range a.Actions {
		if a.Actions[i].Name == name {
			return &a.Actions[i], true
		}
	}
	return nil, false
}

// ActionFields resolves the full, base-first field list of an action's
// parameter struct.
func (a *ABI) ActionFields(name eos.Name) ([]Field, error) {
	act, ok := a.ActionByName(name)
	if !ok {
		return nil, fmt.Errorf("abi: no action %q", name)
	}
	return a.resolveFields(act.Type, 0)
}

func (a *ABI) resolveFields(typeName string, depth int) ([]Field, error) {
	if depth > 16 {
		return nil, fmt.Errorf("abi: struct nesting too deep at %q", typeName)
	}
	st, ok := a.StructByName(typeName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, typeName)
	}
	var fields []Field
	if st.Base != "" {
		base, err := a.resolveFields(st.Base, depth+1)
		if err != nil {
			return nil, err
		}
		fields = append(fields, base...)
	}
	return append(fields, st.Fields...), nil
}

// Encoder serializes values into the EOSIO binary wire format.
type Encoder struct {
	abi *ABI
	buf []byte
}

// NewEncoder returns an encoder resolving struct types against a.
func NewEncoder(a *ABI) *Encoder { return &Encoder{abi: a} }

// Bytes returns the accumulated serialization.
func (e *Encoder) Bytes() []byte { return e.buf }

// EncodeAction serializes the field values of an action's parameter struct,
// in declaration order. args must have one entry per resolved field.
func (e *Encoder) EncodeAction(name eos.Name, args []any) ([]byte, error) {
	fields, err := e.abi.ActionFields(name)
	if err != nil {
		return nil, err
	}
	if len(args) != len(fields) {
		return nil, fmt.Errorf("abi: action %s wants %d arguments, got %d", name, len(fields), len(args))
	}
	e.buf = e.buf[:0]
	for i, f := range fields {
		if err := e.Encode(f.Type, args[i]); err != nil {
			return nil, fmt.Errorf("abi: action %s field %q: %w", name, f.Name, err)
		}
	}
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out, nil
}

// Encode appends the serialization of value as typeName.
func (e *Encoder) Encode(typeName string, value any) error {
	if elem, ok := strings.CutSuffix(typeName, "[]"); ok {
		items, ok := value.([]any)
		if !ok {
			return fmt.Errorf("abi: %s: want []any, got %T", typeName, value)
		}
		e.buf = leb128.AppendUint(e.buf, uint64(len(items)))
		for i, it := range items {
			if err := e.Encode(elem, it); err != nil {
				return fmt.Errorf("abi: %s[%d]: %w", elem, i, err)
			}
		}
		return nil
	}
	switch typeName {
	case "bool":
		b, ok := value.(bool)
		if !ok {
			return typeErr(typeName, value)
		}
		if b {
			e.buf = append(e.buf, 1)
		} else {
			e.buf = append(e.buf, 0)
		}
	case "uint8":
		v, ok := toUint64(value)
		if !ok {
			return typeErr(typeName, value)
		}
		e.buf = append(e.buf, byte(v))
	case "uint16":
		v, ok := toUint64(value)
		if !ok {
			return typeErr(typeName, value)
		}
		e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(v))
	case "uint32", "int32":
		v, ok := toUint64(value)
		if !ok {
			return typeErr(typeName, value)
		}
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(v))
	case "uint64", "int64":
		v, ok := toUint64(value)
		if !ok {
			return typeErr(typeName, value)
		}
		e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
	case "name":
		n, ok := value.(eos.Name)
		if !ok {
			return typeErr(typeName, value)
		}
		e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(n))
	case "symbol":
		s, ok := value.(eos.Symbol)
		if !ok {
			return typeErr(typeName, value)
		}
		e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(s))
	case "asset":
		a, ok := value.(eos.Asset)
		if !ok {
			return typeErr(typeName, value)
		}
		e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(a.Amount))
		e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(a.Symbol))
	case "string":
		s, ok := value.(string)
		if !ok {
			return typeErr(typeName, value)
		}
		e.buf = leb128.AppendUint(e.buf, uint64(len(s)))
		e.buf = append(e.buf, s...)
	case "bytes":
		p, ok := value.([]byte)
		if !ok {
			return typeErr(typeName, value)
		}
		e.buf = leb128.AppendUint(e.buf, uint64(len(p)))
		e.buf = append(e.buf, p...)
	case "float32":
		f, ok := toFloat64(value)
		if !ok {
			return typeErr(typeName, value)
		}
		e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(float32(f)))
	case "float64":
		f, ok := toFloat64(value)
		if !ok {
			return typeErr(typeName, value)
		}
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
	default:
		st, ok := e.abi.StructByName(typeName)
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownType, typeName)
		}
		fieldVals, ok := value.([]any)
		if !ok {
			return fmt.Errorf("abi: struct %s: want []any, got %T", typeName, value)
		}
		fields, err := e.abi.resolveFields(st.Name, 0)
		if err != nil {
			return err
		}
		if len(fieldVals) != len(fields) {
			return fmt.Errorf("abi: struct %s wants %d fields, got %d", typeName, len(fields), len(fieldVals))
		}
		for i, f := range fields {
			if err := e.Encode(f.Type, fieldVals[i]); err != nil {
				return fmt.Errorf("abi: struct %s field %q: %w", typeName, f.Name, err)
			}
		}
	}
	return nil
}

func typeErr(typeName string, value any) error {
	return fmt.Errorf("abi: cannot encode %T as %s", value, typeName)
}

func toUint64(v any) (uint64, bool) {
	switch x := v.(type) {
	case uint64:
		return x, true
	case int64:
		return uint64(x), true
	case int:
		return uint64(x), true
	case uint32:
		return uint64(x), true
	case int32:
		return uint64(x), true
	case uint8:
		return uint64(x), true
	case uint16:
		return uint64(x), true
	case eos.Name:
		return uint64(x), true
	default:
		return 0, false
	}
}

func toFloat64(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	default:
		return 0, false
	}
}

// Decoder deserializes the EOSIO binary wire format.
type Decoder struct {
	abi *ABI
	buf []byte
	pos int
}

// NewDecoder returns a decoder over data resolving struct types against a.
func NewDecoder(a *ABI, data []byte) *Decoder { return &Decoder{abi: a, buf: data} }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

func (d *Decoder) take(n int) ([]byte, error) {
	if d.Remaining() < n {
		return nil, fmt.Errorf("abi: need %d bytes, have %d", n, d.Remaining())
	}
	p := d.buf[d.pos : d.pos+n]
	d.pos += n
	return p, nil
}

// DecodeAction deserializes an action's parameter struct into field values.
func (d *Decoder) DecodeAction(name eos.Name) ([]any, error) {
	fields, err := d.abi.ActionFields(name)
	if err != nil {
		return nil, err
	}
	out := make([]any, 0, len(fields))
	for _, f := range fields {
		v, err := d.Decode(f.Type)
		if err != nil {
			return nil, fmt.Errorf("abi: action %s field %q: %w", name, f.Name, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Decode reads one value of typeName.
func (d *Decoder) Decode(typeName string) (any, error) {
	if elem, ok := strings.CutSuffix(typeName, "[]"); ok {
		n, sz, err := leb128.Uint(d.buf[d.pos:], 32)
		if err != nil {
			return nil, err
		}
		d.pos += sz
		items := make([]any, 0, n)
		for i := uint64(0); i < n; i++ {
			v, err := d.Decode(elem)
			if err != nil {
				return nil, err
			}
			items = append(items, v)
		}
		return items, nil
	}
	switch typeName {
	case "bool":
		p, err := d.take(1)
		if err != nil {
			return nil, err
		}
		return p[0] != 0, nil
	case "uint8":
		p, err := d.take(1)
		if err != nil {
			return nil, err
		}
		return uint64(p[0]), nil
	case "uint16":
		p, err := d.take(2)
		if err != nil {
			return nil, err
		}
		return uint64(binary.LittleEndian.Uint16(p)), nil
	case "uint32", "int32":
		p, err := d.take(4)
		if err != nil {
			return nil, err
		}
		return uint64(binary.LittleEndian.Uint32(p)), nil
	case "uint64", "int64":
		p, err := d.take(8)
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.Uint64(p), nil
	case "name":
		p, err := d.take(8)
		if err != nil {
			return nil, err
		}
		return eos.Name(binary.LittleEndian.Uint64(p)), nil
	case "symbol":
		p, err := d.take(8)
		if err != nil {
			return nil, err
		}
		return eos.Symbol(binary.LittleEndian.Uint64(p)), nil
	case "asset":
		p, err := d.take(16)
		if err != nil {
			return nil, err
		}
		return eos.Asset{
			Amount: int64(binary.LittleEndian.Uint64(p[:8])),
			Symbol: eos.Symbol(binary.LittleEndian.Uint64(p[8:])),
		}, nil
	case "string":
		n, sz, err := leb128.Uint(d.buf[d.pos:], 32)
		if err != nil {
			return nil, err
		}
		d.pos += sz
		p, err := d.take(int(n))
		if err != nil {
			return nil, err
		}
		return string(p), nil
	case "bytes":
		n, sz, err := leb128.Uint(d.buf[d.pos:], 32)
		if err != nil {
			return nil, err
		}
		d.pos += sz
		p, err := d.take(int(n))
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), p...), nil
	case "float32":
		p, err := d.take(4)
		if err != nil {
			return nil, err
		}
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(p))), nil
	case "float64":
		p, err := d.take(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(p)), nil
	default:
		fields, err := d.abi.resolveFields(typeName, 0)
		if err != nil {
			return nil, err
		}
		out := make([]any, 0, len(fields))
		for _, f := range fields {
			v, err := d.Decode(f.Type)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
}

// TransferABI is the canonical ABI of transfer@eosio.token — the signature
// every eosponser must share (paper §2.1).
func TransferABI() *ABI {
	return &ABI{
		Structs: []Struct{{
			Name: "transfer",
			Fields: []Field{
				{Name: "from", Type: "name"},
				{Name: "to", Type: "name"},
				{Name: "quantity", Type: "asset"},
				{Name: "memo", Type: "string"},
			},
		}},
		Actions: []Action{{Name: eos.ActionTransfer, Type: "transfer"}},
	}
}
