package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/baseline/eosafe"
	"repro/internal/baseline/eosfuzzer"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
)

// Counts are the confusion-matrix tallies for one detector on one class.
type Counts struct {
	TP, FP, TN, FN int
}

// Add merges a single verdict.
func (c *Counts) Add(truth, flagged bool) {
	switch {
	case truth && flagged:
		c.TP++
	case truth && !flagged:
		c.FN++
	case !truth && flagged:
		c.FP++
	default:
		c.TN++
	}
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (c Counts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (c Counts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Total merges all counts.
func Total(per map[contractgen.Class]Counts) Counts {
	var t Counts
	for _, c := range per {
		t.TP += c.TP
		t.FP += c.FP
		t.TN += c.TN
		t.FN += c.FN
	}
	return t
}

// Tool names a detector under evaluation.
type Tool string

// The three tools of Tables 4-6.
const (
	ToolWASAI     Tool = "WASAI"
	ToolEOSFuzzer Tool = "EOSFuzzer"
	ToolEOSAFE    Tool = "EOSAFE"
)

// toolSupports mirrors the '-' cells of the paper's tables.
func toolSupports(tool Tool, class contractgen.Class) bool {
	switch tool {
	case ToolEOSFuzzer:
		return class == contractgen.ClassFakeEOS ||
			class == contractgen.ClassFakeNotif ||
			class == contractgen.ClassBlockinfoDep
	case ToolEOSAFE:
		return class != contractgen.ClassBlockinfoDep
	default:
		return true
	}
}

// AccuracyResult is one detector's per-class confusion counts.
type AccuracyResult struct {
	Tool     Tool
	PerClass map[contractgen.Class]Counts
}

// EvalConfig tunes the accuracy evaluation run.
type EvalConfig struct {
	FuzzIterations  int
	SolverConflicts int64
	Seed            int64
	// Workers bounds sample-level parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultEvalConfig mirrors the paper's per-contract budget in deterministic
// units.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{FuzzIterations: 240, SolverConflicts: 50_000, Seed: 1}
}

// EvaluateAccuracy runs every tool over the dataset and scores the verdicts
// against ground truth — each sample is scored only for its own class, as
// the paper's per-type tables do. Samples are fuzzed in parallel (each
// campaign owns its chain, so they are independent).
func EvaluateAccuracy(ds *Dataset, tools []Tool, cfg EvalConfig) ([]AccuracyResult, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]AccuracyResult, 0, len(tools))
	for _, tool := range tools {
		verdicts := make([]bool, len(ds.Samples))
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		sem := make(chan struct{}, workers)
		for i := range ds.Samples {
			s := ds.Samples[i]
			if !toolSupports(tool, s.Class) {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, s Sample) {
				defer wg.Done()
				defer func() { <-sem }()
				flagged, err := runTool(tool, s, cfg)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("bench: %s on sample %d: %w", tool, s.ID, err)
					}
					mu.Unlock()
					return
				}
				verdicts[i] = flagged
			}(i, s)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		per := map[contractgen.Class]Counts{}
		for i, s := range ds.Samples {
			if !toolSupports(tool, s.Class) {
				continue
			}
			c := per[s.Class]
			c.Add(s.Truth, verdicts[i])
			per[s.Class] = c
		}
		results = append(results, AccuracyResult{Tool: tool, PerClass: per})
	}
	return results, nil
}

func runTool(tool Tool, s Sample, cfg EvalConfig) (bool, error) {
	switch tool {
	case ToolWASAI:
		f, err := fuzz.New(s.Contract.Module, s.Contract.ABI, fuzz.Config{
			Iterations:      cfg.FuzzIterations,
			SolverConflicts: cfg.SolverConflicts,
			Seed:            cfg.Seed + int64(s.ID),
		})
		if err != nil {
			return false, err
		}
		res, err := f.Run()
		if err != nil {
			return false, err
		}
		return res.Report.Vulnerable[s.Class], nil
	case ToolEOSFuzzer:
		res, err := eosfuzzer.Run(s.Contract.Module, s.Contract.ABI, eosfuzzer.Config{
			Iterations: cfg.FuzzIterations,
			Seed:       cfg.Seed + int64(s.ID),
		})
		if err != nil {
			return false, err
		}
		return res.Report[s.Class], nil
	case ToolEOSAFE:
		return eosafe.Analyze(s.Contract.Module).Report[s.Class], nil
	default:
		return false, fmt.Errorf("unknown tool %q", tool)
	}
}

// RenderAccuracyTable prints the Table 4/5/6 layout.
func RenderAccuracyTable(title string, ds *Dataset, results []AccuracyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (dataset %q, %d samples)\n", title, ds.Name, len(ds.Samples))
	fmt.Fprintf(&sb, "%-14s %-16s", "Types", "#Cnt(Vul/Non)")
	for _, r := range results {
		fmt.Fprintf(&sb, " | %-9s P      R      F1   ", r.Tool)
	}
	sb.WriteString("\n")

	classCount := map[contractgen.Class][2]int{}
	for _, s := range ds.Samples {
		c := classCount[s.Class]
		if s.Truth {
			c[0]++
		} else {
			c[1]++
		}
		classCount[s.Class] = c
	}
	classes := append([]contractgen.Class(nil), contractgen.Classes...)
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	row := func(label string, count string, get func(AccuracyResult) (Counts, bool)) {
		fmt.Fprintf(&sb, "%-14s %-16s", label, count)
		for _, r := range results {
			c, ok := get(r)
			if !ok {
				fmt.Fprintf(&sb, " | %-9s %-6s %-6s %-6s", "", "-", "-", "-")
				continue
			}
			fmt.Fprintf(&sb, " | %-9s %5.1f%% %5.1f%% %5.1f%%", "",
				100*c.Precision(), 100*c.Recall(), 100*c.F1())
		}
		sb.WriteString("\n")
	}
	for _, class := range classes {
		cc := classCount[class]
		cls := class
		row(class.String(), fmt.Sprintf("%d(%d/%d)", cc[0]+cc[1], cc[0], cc[1]), func(r AccuracyResult) (Counts, bool) {
			c, ok := r.PerClass[cls]
			return c, ok
		})
	}
	row("Total", fmt.Sprintf("%d", len(ds.Samples)), func(r AccuracyResult) (Counts, bool) {
		return Total(r.PerClass), true
	})
	return sb.String()
}
