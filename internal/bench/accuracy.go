package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/baseline/eosafe"
	"repro/internal/baseline/eosfuzzer"
	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/memo"
)

// Counts are the confusion-matrix tallies for one detector on one class.
type Counts struct {
	TP, FP, TN, FN int
}

// Add merges a single verdict.
func (c *Counts) Add(truth, flagged bool) {
	switch {
	case truth && flagged:
		c.TP++
	case truth && !flagged:
		c.FN++
	case !truth && flagged:
		c.FP++
	default:
		c.TN++
	}
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (c Counts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (c Counts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Total merges all counts.
func Total(per map[contractgen.Class]Counts) Counts {
	var t Counts
	for _, c := range per {
		t.TP += c.TP
		t.FP += c.FP
		t.TN += c.TN
		t.FN += c.FN
	}
	return t
}

// Tool names a detector under evaluation.
type Tool string

// The three tools of Tables 4-6.
const (
	ToolWASAI     Tool = "WASAI"
	ToolEOSFuzzer Tool = "EOSFuzzer"
	ToolEOSAFE    Tool = "EOSAFE"
)

// toolSupports mirrors the '-' cells of the paper's tables.
func toolSupports(tool Tool, class contractgen.Class) bool {
	switch tool {
	case ToolEOSFuzzer:
		return class == contractgen.ClassFakeEOS ||
			class == contractgen.ClassFakeNotif ||
			class == contractgen.ClassBlockinfoDep
	case ToolEOSAFE:
		return class != contractgen.ClassBlockinfoDep
	default:
		return true
	}
}

// AccuracyResult is one detector's per-class confusion counts.
type AccuracyResult struct {
	Tool     Tool
	PerClass map[contractgen.Class]Counts
}

// EvalConfig tunes the accuracy evaluation run.
type EvalConfig struct {
	FuzzIterations  int
	SolverConflicts int64
	Seed            int64
	// Workers bounds sample-level parallelism (0 = GOMAXPROCS).
	Workers int
	// Memo selects cross-job memoization for the WASAI campaigns
	// (off/on/shared; findings are identical either way — the cache only
	// removes duplicated solver/decode/static work).
	Memo memo.Mode
	// Incremental enables the prefix-sharing incremental solver in the
	// WASAI campaigns (findings are identical either way).
	Incremental bool
	// FastVM runs each campaign chain on the decoded-IR execution engine;
	// findings digests are byte-identical either way.
	FastVM bool
	// Verdicts enables abstract-interpretation verdict triage in the WASAI
	// campaigns (findings are identical either way).
	Verdicts bool
	// Adaptive runs the WASAI campaigns under the coverage-driven power
	// schedule and fuel ledger (internal/schedule). Deterministic at any
	// worker count, but not digest-neutral against a static run.
	Adaptive bool
}

// DefaultEvalConfig mirrors the paper's per-contract budget in deterministic
// units.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{FuzzIterations: 240, SolverConflicts: 50_000, Seed: 1}
}

// EvaluateAccuracy runs every tool over the dataset and scores the verdicts
// against ground truth — each sample is scored only for its own class, as
// the paper's per-type tables do. Samples run in parallel on the campaign
// engine (each campaign owns its chain, so they are independent); WASAI
// campaigns shard as engine jobs, the baselines through campaign.Each.
func EvaluateAccuracy(ds *Dataset, tools []Tool, cfg EvalConfig) ([]AccuracyResult, error) {
	engCfg := campaign.Config{Workers: cfg.Workers, Memo: cfg.Memo, Incremental: cfg.Incremental, FastVM: cfg.FastVM, Verdicts: cfg.Verdicts, Adaptive: cfg.Adaptive}
	results := make([]AccuracyResult, 0, len(tools))
	for _, tool := range tools {
		verdicts := make([]bool, len(ds.Samples))
		var err error
		if tool == ToolWASAI {
			err = wasaiVerdicts(ds, cfg, engCfg, verdicts)
		} else {
			err = campaign.Each(context.Background(), len(ds.Samples), engCfg, func(_ context.Context, i int) error {
				s := ds.Samples[i]
				if !toolSupports(tool, s.Class) {
					return nil
				}
				flagged, err := runBaseline(tool, s, cfg)
				if err != nil {
					return fmt.Errorf("bench: %s on sample %d: %w", tool, s.ID, err)
				}
				verdicts[i] = flagged
				return nil
			})
		}
		if err != nil {
			return nil, err
		}
		per := map[contractgen.Class]Counts{}
		for i, s := range ds.Samples {
			if !toolSupports(tool, s.Class) {
				continue
			}
			c := per[s.Class]
			c.Add(s.Truth, verdicts[i])
			per[s.Class] = c
		}
		results = append(results, AccuracyResult{Tool: tool, PerClass: per})
	}
	return results, nil
}

// wasaiVerdicts shards the WASAI campaigns across the engine: one job per
// supported sample, seeded by sample ID so the verdicts are independent of
// worker count and scheduling.
func wasaiVerdicts(ds *Dataset, cfg EvalConfig, engCfg campaign.Config, verdicts []bool) error {
	var (
		jobs    []campaign.Job
		samples []int // job index -> sample index
	)
	for i, s := range ds.Samples {
		if !toolSupports(ToolWASAI, s.Class) {
			continue
		}
		jobs = append(jobs, campaign.Job{
			Name:   fmt.Sprintf("sample-%d", s.ID),
			Module: s.Contract.Module,
			ABI:    s.Contract.ABI,
			Config: fuzz.Config{
				Iterations:      cfg.FuzzIterations,
				SolverConflicts: cfg.SolverConflicts,
				Seed:            cfg.Seed + int64(s.ID),
			},
		})
		samples = append(samples, i)
	}
	rep, err := campaign.Run(context.Background(), jobs, engCfg)
	if err != nil {
		return err
	}
	for j, jr := range rep.Results {
		s := ds.Samples[samples[j]]
		if jr.Err != nil {
			return fmt.Errorf("bench: %s on sample %d: %w", ToolWASAI, s.ID, jr.Err)
		}
		verdicts[samples[j]] = jr.Result.Report.Vulnerable[s.Class]
	}
	return nil
}

func runBaseline(tool Tool, s Sample, cfg EvalConfig) (bool, error) {
	switch tool {
	case ToolEOSFuzzer:
		res, err := eosfuzzer.Run(s.Contract.Module, s.Contract.ABI, eosfuzzer.Config{
			Iterations: cfg.FuzzIterations,
			Seed:       cfg.Seed + int64(s.ID),
		})
		if err != nil {
			return false, err
		}
		return res.Report[s.Class], nil
	case ToolEOSAFE:
		return eosafe.Analyze(s.Contract.Module).Report[s.Class], nil
	default:
		return false, fmt.Errorf("unknown tool %q", tool)
	}
}

// RenderAccuracyTable prints the Table 4/5/6 layout.
func RenderAccuracyTable(title string, ds *Dataset, results []AccuracyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (dataset %q, %d samples)\n", title, ds.Name, len(ds.Samples))
	fmt.Fprintf(&sb, "%-14s %-16s", "Types", "#Cnt(Vul/Non)")
	for _, r := range results {
		fmt.Fprintf(&sb, " | %-9s P      R      F1   ", r.Tool)
	}
	sb.WriteString("\n")

	classCount := map[contractgen.Class][2]int{}
	for _, s := range ds.Samples {
		c := classCount[s.Class]
		if s.Truth {
			c[0]++
		} else {
			c[1]++
		}
		classCount[s.Class] = c
	}
	classes := append([]contractgen.Class(nil), contractgen.Classes...)
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	row := func(label string, count string, get func(AccuracyResult) (Counts, bool)) {
		fmt.Fprintf(&sb, "%-14s %-16s", label, count)
		for _, r := range results {
			c, ok := get(r)
			if !ok {
				fmt.Fprintf(&sb, " | %-9s %-6s %-6s %-6s", "", "-", "-", "-")
				continue
			}
			fmt.Fprintf(&sb, " | %-9s %5.1f%% %5.1f%% %5.1f%%", "",
				100*c.Precision(), 100*c.Recall(), 100*c.F1())
		}
		sb.WriteString("\n")
	}
	for _, class := range classes {
		cc := classCount[class]
		cls := class
		row(class.String(), fmt.Sprintf("%d(%d/%d)", cc[0]+cc[1], cc[0], cc[1]), func(r AccuracyResult) (Counts, bool) {
			c, ok := r.PerClass[cls]
			return c, ok
		})
	}
	row("Total", fmt.Sprintf("%d", len(ds.Samples)), func(r AccuracyResult) (Counts, bool) {
		return Total(r.PerClass), true
	})
	return sb.String()
}
