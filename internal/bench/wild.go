package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"repro/internal/contractgen"
	"repro/internal/fuzz"
)

// WildConfig tunes the RQ4 reproduction.
type WildConfig struct {
	NumContracts   int
	FuzzIterations int
	Seed           int64
}

// DefaultWildConfig mirrors §4.4: 991 profitable contracts.
func DefaultWildConfig() WildConfig {
	return WildConfig{NumContracts: 991, FuzzIterations: 240, Seed: 1}
}

// WildResult aggregates the RQ4 study outcome.
type WildResult struct {
	Total          int
	Flagged        int
	PerClass       map[contractgen.Class]int
	StillOperating int
	Abandoned      int
	Patched        int
	Exposed        int
	// VerifiedPatched counts patched versions WASAI re-analyzed and found
	// clean (the paper's footnote 1: "we further applied WASAI to analyze
	// their latest version to investigate whether the vulnerability has
	// been patched").
	VerifiedPatched int
	// Accuracy vs the generator's ground truth (the paper verified 100
	// samples manually; we can score everything).
	PerClassAccuracy map[contractgen.Class]Counts
}

// EvaluateWild generates the wild population, fuzzes every contract, and
// reproduces the §4.4 analysis including the patch/abandon lifecycle.
func EvaluateWild(cfg WildConfig) (*WildResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pop, err := contractgen.GenerateWild(contractgen.DefaultWildOptions(cfg.NumContracts), rng)
	if err != nil {
		return nil, err
	}
	res := &WildResult{
		Total:            len(pop),
		PerClass:         map[contractgen.Class]int{},
		PerClassAccuracy: map[contractgen.Class]Counts{},
	}
	// Fuzz the population in parallel; campaigns are independent.
	runs := make([]*fuzz.Result, len(pop))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range pop {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			wc := &pop[i]
			f, err := fuzz.New(wc.Contract.Module, wc.Contract.ABI, fuzz.Config{
				Iterations:      cfg.FuzzIterations,
				SolverConflicts: 50_000,
				Seed:            cfg.Seed + int64(i),
			})
			if err == nil {
				runs[i], err = f.Run()
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("bench: wild %s: %w", wc.Name, err)
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range pop {
		wc := &pop[i]
		run := runs[i]
		flagged := false
		for cl, truth := range wc.Truth {
			verdict := run.Report.Vulnerable[cl]
			if verdict {
				res.PerClass[cl]++
				flagged = true
			}
			c := res.PerClassAccuracy[cl]
			c.Add(truth, verdict)
			res.PerClassAccuracy[cl] = c
		}
		if !flagged {
			continue
		}
		res.Flagged++
		switch {
		case wc.Abandoned:
			res.Abandoned++
		case wc.Patched:
			res.StillOperating++
			res.Patched++
			// Re-analyze the latest (patched) version.
			if wc.PatchedContract != nil {
				pf, err := fuzz.New(wc.PatchedContract.Module, wc.PatchedContract.ABI, fuzz.Config{
					Iterations:      cfg.FuzzIterations,
					SolverConflicts: 50_000,
					Seed:            cfg.Seed + int64(i),
				})
				if err != nil {
					return nil, fmt.Errorf("bench: wild %s patched: %w", wc.Name, err)
				}
				prun, err := pf.Run()
				if err != nil {
					return nil, fmt.Errorf("bench: wild %s patched: %w", wc.Name, err)
				}
				clean := true
				for _, cl := range contractgen.Classes {
					if prun.Report.Vulnerable[cl] {
						clean = false
					}
				}
				if clean {
					res.VerifiedPatched++
				}
			}
		default:
			res.StillOperating++
			res.Exposed++
		}
	}
	return res, nil
}

// RenderWild prints the §4.4 summary.
func RenderWild(r *WildResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "RQ4 — vulnerabilities in the wild (%d profitable contracts)\n", r.Total)
	fmt.Fprintf(&sb, "flagged vulnerable: %d (%.1f%%)\n", r.Flagged, 100*float64(r.Flagged)/float64(r.Total))
	for _, cl := range contractgen.Classes {
		fmt.Fprintf(&sb, "  %-14s %4d flagged (P=%.1f%% R=%.1f%% vs ground truth)\n",
			cl, r.PerClass[cl],
			100*r.PerClassAccuracy[cl].Precision(), 100*r.PerClassAccuracy[cl].Recall())
	}
	if r.Flagged > 0 {
		fmt.Fprintf(&sb, "lifecycle of flagged contracts: %d still operating (%.1f%%), %d abandoned, %d patched (%d verified clean on re-analysis), %d exposed\n",
			r.StillOperating, 100*float64(r.StillOperating)/float64(r.Flagged),
			r.Abandoned, r.Patched, r.VerifiedPatched, r.Exposed)
	}
	return sb.String()
}
