package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/failure"
	"repro/internal/fuzz"
	"repro/internal/memo"
)

// WildConfig tunes the RQ4 reproduction.
type WildConfig struct {
	NumContracts   int
	FuzzIterations int
	Seed           int64
	// Workers bounds campaign-engine parallelism (0 = GOMAXPROCS).
	Workers int
	// Journal checkpoints the sweep to this JSONL path; Resume replays
	// contracts already journaled there (see internal/campaign).
	Journal string
	Resume  bool
	// MaxAttempts retries failed contracts with degraded budgets.
	MaxAttempts int
	// Memo selects cross-job memoization (off/on/shared); a resumed sweep
	// with "shared" starts with the interrupted run's warm cache.
	Memo memo.Mode
	// Incremental enables the prefix-sharing incremental solver
	// (findings are identical either way).
	Incremental bool
	// FastVM runs each campaign chain on the decoded-IR execution engine.
	FastVM bool
	// Verdicts enables abstract-interpretation verdict triage: jobs with
	// all classes proven negative skip execution, proven-positive jobs
	// schedule confirmed-first (findings are identical either way).
	Verdicts bool
	// Adaptive runs the sweep under the coverage-driven power schedule and
	// campaign fuel ledger. Deterministic at any worker count, but not
	// digest-neutral against a static sweep — it changes which inputs run.
	Adaptive bool
}

// DefaultWildConfig mirrors §4.4: 991 profitable contracts.
func DefaultWildConfig() WildConfig {
	return WildConfig{NumContracts: 991, FuzzIterations: 240, Seed: 1}
}

// WildResult aggregates the RQ4 study outcome.
type WildResult struct {
	Total          int
	Flagged        int
	PerClass       map[contractgen.Class]int
	StillOperating int
	Abandoned      int
	Patched        int
	Exposed        int
	// VerifiedPatched counts patched versions WASAI re-analyzed and found
	// clean (the paper's footnote 1: "we further applied WASAI to analyze
	// their latest version to investigate whether the vulnerability has
	// been patched").
	VerifiedPatched int
	// Accuracy vs the generator's ground truth (the paper verified 100
	// samples manually; we can score everything).
	PerClassAccuracy map[contractgen.Class]Counts
	// Wall-clock throughput of the scan, from the campaign engine.
	JobsPerSecond float64
	// TerminalFailures counts contracts that failed even after retries;
	// PerFailure breaks them down by failure class. A failed contract is
	// excluded from the accuracy and lifecycle tallies (it has no verdict),
	// not silently scored clean.
	TerminalFailures int
	PerFailure       map[failure.Class]int
	// Degraded, Retried and Replayed surface the engine's resilience
	// counters (results from degraded attempts are real verdicts, but a
	// reader comparing against the paper should know how many ran with
	// reduced budgets).
	Degraded, Retried, Replayed int
}

// EvaluateWild generates the wild population, fuzzes every contract on the
// campaign engine, and reproduces the §4.4 analysis including the
// patch/abandon lifecycle. The patched-version re-analyses run as a second
// engine batch.
func EvaluateWild(cfg WildConfig) (*WildResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pop, err := contractgen.GenerateWild(contractgen.DefaultWildOptions(cfg.NumContracts), rng)
	if err != nil {
		return nil, err
	}
	res := &WildResult{
		Total:            len(pop),
		PerClass:         map[contractgen.Class]int{},
		PerClassAccuracy: map[contractgen.Class]Counts{},
		PerFailure:       map[failure.Class]int{},
	}
	engCfg := campaign.Config{
		Workers:     cfg.Workers,
		Journal:     cfg.Journal,
		Resume:      cfg.Resume,
		Retry:       campaign.RetryPolicy{MaxAttempts: cfg.MaxAttempts},
		Memo:        cfg.Memo,
		Incremental: cfg.Incremental,
		FastVM:      cfg.FastVM,
		Verdicts:    cfg.Verdicts,
		Adaptive:    cfg.Adaptive,
	}
	fuzzCfg := func(i int) fuzz.Config {
		return fuzz.Config{
			Iterations:      cfg.FuzzIterations,
			SolverConflicts: 50_000,
			Seed:            cfg.Seed + int64(i),
		}
	}

	// Sweep the population: one engine job per contract.
	jobs := make([]campaign.Job, len(pop))
	for i := range pop {
		jobs[i] = campaign.Job{
			Name:   pop[i].Name.String(),
			Module: pop[i].Contract.Module,
			ABI:    pop[i].Contract.ABI,
			Config: fuzzCfg(i),
		}
	}
	rep, err := campaign.Run(context.Background(), jobs, engCfg)
	if err != nil {
		return nil, err
	}
	res.JobsPerSecond = rep.JobsPerSecond
	res.Degraded = rep.Degraded
	res.Retried = rep.Retried
	res.Replayed = rep.Replayed

	// Lifecycle analysis; collect the patched versions of flagged contracts
	// for the re-analysis batch.
	var (
		patchedJobs []campaign.Job
	)
	for i := range pop {
		wc := &pop[i]
		jr := rep.Results[i]
		if jr.Err != nil {
			// A terminal failure is a counted outcome, not a bench abort:
			// the sweep's job is to report on the whole population, and one
			// sick contract must not cost the other N-1 results.
			res.TerminalFailures++
			res.PerFailure[failureClassOf(jr)]++
			continue
		}
		run := jr.Result
		flagged := false
		for cl, truth := range wc.Truth {
			verdict := run.Report.Vulnerable[cl]
			if verdict {
				res.PerClass[cl]++
				flagged = true
			}
			c := res.PerClassAccuracy[cl]
			c.Add(truth, verdict)
			res.PerClassAccuracy[cl] = c
		}
		if !flagged {
			continue
		}
		res.Flagged++
		switch {
		case wc.Abandoned:
			res.Abandoned++
		case wc.Patched:
			res.StillOperating++
			res.Patched++
			// Queue the latest (patched) version for re-analysis.
			if wc.PatchedContract != nil {
				patchedJobs = append(patchedJobs, campaign.Job{
					Name:   wc.Name.String() + "(patched)",
					Module: wc.PatchedContract.Module,
					ABI:    wc.PatchedContract.ABI,
					Config: fuzzCfg(i),
				})
			}
		default:
			res.StillOperating++
			res.Exposed++
		}
	}

	// Re-analyze the patched versions (paper footnote 1) as a second batch.
	if len(patchedJobs) > 0 {
		// The second batch checkpoints to its own file: sharing the path
		// would truncate the main sweep's journal.
		patchedCfg := engCfg
		if patchedCfg.Journal != "" {
			patchedCfg.Journal += ".patched"
		}
		prep, err := campaign.Run(context.Background(), patchedJobs, patchedCfg)
		if err != nil {
			return nil, err
		}
		for _, jr := range prep.Results {
			if jr.Err != nil {
				res.TerminalFailures++
				res.PerFailure[failureClassOf(jr)]++
				continue
			}
			clean := true
			for _, cl := range contractgen.Classes {
				if jr.Result.Report.Vulnerable[cl] {
					clean = false
				}
			}
			if clean {
				res.VerifiedPatched++
			}
		}
	}
	return res, nil
}

// failureClassOf resolves a failed job's class, falling back to chain
// inspection for results that predate classification (replayed journals).
func failureClassOf(jr campaign.JobResult) failure.Class {
	if jr.FailureClass != failure.None {
		return jr.FailureClass
	}
	return failure.ClassOf(jr.Err)
}

// RenderWild prints the §4.4 summary.
func RenderWild(r *WildResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "RQ4 — vulnerabilities in the wild (%d profitable contracts)\n", r.Total)
	fmt.Fprintf(&sb, "flagged vulnerable: %d (%.1f%%)\n", r.Flagged, 100*float64(r.Flagged)/float64(r.Total))
	for _, cl := range contractgen.Classes {
		fmt.Fprintf(&sb, "  %-14s %4d flagged (P=%.1f%% R=%.1f%% vs ground truth)\n",
			cl, r.PerClass[cl],
			100*r.PerClassAccuracy[cl].Precision(), 100*r.PerClassAccuracy[cl].Recall())
	}
	if r.Flagged > 0 {
		fmt.Fprintf(&sb, "lifecycle of flagged contracts: %d still operating (%.1f%%), %d abandoned, %d patched (%d verified clean on re-analysis), %d exposed\n",
			r.StillOperating, 100*float64(r.StillOperating)/float64(r.Flagged),
			r.Abandoned, r.Patched, r.VerifiedPatched, r.Exposed)
	}
	if r.JobsPerSecond > 0 {
		fmt.Fprintf(&sb, "throughput: %.1f contracts/s\n", r.JobsPerSecond)
	}
	if r.Retried > 0 || r.Degraded > 0 || r.Replayed > 0 {
		fmt.Fprintf(&sb, "resilience: %d retried, %d degraded, %d replayed from journal\n",
			r.Retried, r.Degraded, r.Replayed)
	}
	if r.TerminalFailures > 0 {
		fmt.Fprintf(&sb, "terminal failures: %d\n", r.TerminalFailures)
		for _, cl := range failure.Classes {
			if n := r.PerFailure[cl]; n > 0 {
				fmt.Fprintf(&sb, "  failures[%s] %d\n", cl, n)
			}
		}
		if n := r.PerFailure[failure.Unclassified]; n > 0 {
			fmt.Fprintf(&sb, "  failures[%s] %d\n", failure.Unclassified, n)
		}
	}
	return sb.String()
}
