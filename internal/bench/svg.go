package bench

import (
	"fmt"
	"strings"
)

// RenderCoverageSVG emits Figure 3 as a standalone SVG: cumulative distinct
// branches (y) over the fuzzing budget (x), one polyline per tool.
func RenderCoverageSVG(series []CoverageSeries) string {
	const (
		width   = 640
		height  = 400
		marginL = 70
		marginR = 20
		marginT = 30
		marginB = 50
	)
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB

	var maxX, maxY int
	for _, s := range series {
		for _, p := range s.Points {
			if p.Iteration > maxX {
				maxX = p.Iteration
			}
			if p.Branches > maxY {
				maxY = p.Branches
			}
		}
	}
	if maxX == 0 || maxY == 0 {
		return "<svg xmlns=\"http://www.w3.org/2000/svg\"/>"
	}
	x := func(it int) float64 { return marginL + float64(it)/float64(maxX)*float64(plotW) }
	y := func(b int) float64 { return float64(marginT+plotH) - float64(b)/float64(maxY)*float64(plotH) }

	colors := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd"}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="18" font-size="14" text-anchor="middle">Figure 3: cumulative distinct branches vs fuzzing budget</text>`+"\n", width/2)

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	for i := 0; i <= 4; i++ {
		yy := maxY * i / 4
		fmt.Fprintf(&sb, `<text x="%d" y="%.0f" text-anchor="end">%d</text>`+"\n", marginL-6, y(yy)+4, yy)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.0f" x2="%d" y2="%.0f" stroke="#ddd"/>`+"\n", marginL, y(yy), marginL+plotW, y(yy))
		xx := maxX * i / 4
		fmt.Fprintf(&sb, `<text x="%.0f" y="%d" text-anchor="middle">%d</text>`+"\n", x(xx), marginT+plotH+18, xx)
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle">fuzzing iterations</text>`+"\n", marginL+plotW/2, height-10)
	fmt.Fprintf(&sb, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">distinct branches</text>`+"\n", marginT+plotH/2, marginT+plotH/2)

	for si, s := range series {
		color := colors[si%len(colors)]
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(p.Iteration), y(p.Branches)))
		}
		fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n", color, strings.Join(pts, " "))
		// Legend.
		ly := marginT + 16 + si*18
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n", marginL+12, ly, marginL+40, ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`+"\n", marginL+46, ly+4, s.Tool)
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}
