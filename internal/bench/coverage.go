package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/baseline/eosfuzzer"
	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/memo"
)

// CoverageConfig tunes the RQ1 experiment: NumContracts "real-world-like"
// samples fuzzed for Iterations transactions each, coverage accumulated
// across the corpus exactly as Figure 3 plots it.
type CoverageConfig struct {
	NumContracts int
	Iterations   int
	Seed         int64
	// SamplePoints is how many x-axis points the series keeps.
	SamplePoints int
	// Workers bounds campaign-engine parallelism (0 = GOMAXPROCS).
	Workers int
	// Memo selects cross-job memoization for the WASAI campaigns
	// (coverage curves are identical either way).
	Memo memo.Mode
	// Incremental enables the prefix-sharing incremental solver
	// (coverage curves are identical either way).
	Incremental bool
	// FastVM runs each campaign chain on the decoded-IR execution engine.
	FastVM bool
	// Verdicts enables abstract-interpretation verdict triage (coverage
	// points come only from executed jobs; findings are identical).
	Verdicts bool
	// Adaptive runs the WASAI side under the coverage-driven power schedule
	// and fuel ledger; the EOSFuzzer baseline stays static either way.
	Adaptive bool
}

// DefaultCoverageConfig mirrors the RQ1 setup at simulator scale.
func DefaultCoverageConfig() CoverageConfig {
	return CoverageConfig{NumContracts: 100, Iterations: 240, Seed: 1, SamplePoints: 24}
}

// CoverageSeries is one tool's cumulative distinct-branch curve.
type CoverageSeries struct {
	Tool   Tool
	Points []fuzz.CoveragePoint
}

// EvaluateCoverage reproduces Figure 3: the same contract corpus fuzzed by
// WASAI and by EOSFuzzer, cumulative distinct branches over the iteration
// budget.
func EvaluateCoverage(cfg CoverageConfig) ([]CoverageSeries, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// A "real-world" mix: lottery/responder contracts across all classes
	// with the population's dispatcher and branch diversity.
	contracts := make([]*contractgen.Contract, 0, cfg.NumContracts)
	for i := 0; i < cfg.NumContracts; i++ {
		class := contractgen.Classes[rng.Intn(len(contractgen.Classes))]
		spec := contractgen.RandomSpec(class, rng.Intn(2) == 0, rng)
		c, err := contractgen.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("bench: coverage corpus %d: %w", i, err)
		}
		contracts = append(contracts, c)
	}

	// Both tools run on the campaign engine: WASAI campaigns as engine jobs,
	// the baseline through campaign.Each. Per-contract series are summed
	// serially afterwards, so the curves are worker-count invariant.
	engCfg := campaign.Config{Workers: cfg.Workers, Memo: cfg.Memo, Incremental: cfg.Incremental, FastVM: cfg.FastVM, Verdicts: cfg.Verdicts, Adaptive: cfg.Adaptive}
	jobs := make([]campaign.Job, len(contracts))
	for i, c := range contracts {
		jobs[i] = campaign.Job{
			Name:   fmt.Sprintf("coverage-%d", i),
			Module: c.Module,
			ABI:    c.ABI,
			Config: fuzz.Config{
				Iterations:      cfg.Iterations,
				SolverConflicts: 50_000,
				Seed:            cfg.Seed + int64(i),
			},
		}
	}
	rep, err := campaign.Run(context.Background(), jobs, engCfg)
	if err != nil {
		return nil, err
	}
	eresults := make([]*eosfuzzer.Result, len(contracts))
	err = campaign.Each(context.Background(), len(contracts), engCfg, func(_ context.Context, i int) error {
		eres, err := eosfuzzer.Run(contracts[i].Module, contracts[i].ABI, eosfuzzer.Config{
			Iterations: cfg.Iterations,
			Seed:       cfg.Seed + int64(i),
		})
		if err != nil {
			return err
		}
		eresults[i] = eres
		return nil
	})
	if err != nil {
		return nil, err
	}

	wasai := make([]int, cfg.Iterations)
	eosf := make([]int, cfg.Iterations)
	for i := range contracts {
		jr := rep.Results[i]
		if jr.Err != nil {
			return nil, jr.Err
		}
		// WASAI records change-points only; expand to the dense series the
		// Figure 3 accumulation sums. The baseline still records densely.
		for it, branches := range fuzz.ExpandCoverage(jr.Result.CoverageOverTime, cfg.Iterations) {
			wasai[it] += branches
		}
		for _, p := range eresults[i].CoverageOverTime {
			eosf[p.Iteration-1] += p.Branches
		}
	}

	sample := func(tool Tool, series []int) CoverageSeries {
		out := CoverageSeries{Tool: tool}
		step := len(series) / cfg.SamplePoints
		if step == 0 {
			step = 1
		}
		for i := step - 1; i < len(series); i += step {
			out.Points = append(out.Points, fuzz.CoveragePoint{Iteration: i + 1, Branches: series[i]})
		}
		return out
	}
	return []CoverageSeries{sample(ToolWASAI, wasai), sample(ToolEOSFuzzer, eosf)}, nil
}

// RenderCoverage prints the Figure 3 series with an ASCII sparkline per
// tool and the headline ratio.
func RenderCoverage(series []CoverageSeries) string {
	var sb strings.Builder
	sb.WriteString("Figure 3 — cumulative distinct branches vs fuzzing budget\n")
	var max int
	for _, s := range series {
		if n := len(s.Points); n > 0 && s.Points[n-1].Branches > max {
			max = s.Points[n-1].Branches
		}
	}
	for _, s := range series {
		fmt.Fprintf(&sb, "%-10s", s.Tool)
		for _, p := range s.Points {
			fmt.Fprintf(&sb, " %5d", p.Branches)
		}
		sb.WriteString("\n")
	}
	if len(series) == 2 && len(series[1].Points) > 0 {
		a := series[0].Points[len(series[0].Points)-1].Branches
		b := series[1].Points[len(series[1].Points)-1].Branches
		if b > 0 {
			fmt.Fprintf(&sb, "final ratio WASAI/EOSFuzzer = %.2fx\n", float64(a)/float64(b))
		}
	}
	return sb.String()
}
