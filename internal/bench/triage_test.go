package bench

import (
	"context"
	"testing"
)

// TestEvaluateTriage smoke-runs the static-vs-dynamic agreement experiment
// at a small scale and asserts the two load-bearing properties: triage does
// not change findings, and the candidate flags are sound (zero false
// negatives against the dynamic verdicts — a dynamic finding whose class
// had no candidate flag would mean triage could have skipped a real bug).
func TestEvaluateTriage(t *testing.T) {
	ds, err := BuildGroundTruth(Table4Counts, Options{Scale: 0.002, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTriageConfig()
	cfg.FuzzIterations = 30
	cfg.Workers = 4
	cfg.Seed = 5
	cfg.TrivialContracts = 5
	res, err := EvaluateTriage(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DigestMatch {
		t.Error("triage changed the findings digest")
	}
	if res.Skipped != cfg.TrivialContracts {
		t.Errorf("skipped %d, want the %d trivial contracts", res.Skipped, cfg.TrivialContracts)
	}
	if res.Samples != len(ds.Samples)+cfg.TrivialContracts {
		t.Errorf("samples = %d, want %d", res.Samples, len(ds.Samples)+cfg.TrivialContracts)
	}
	for class, c := range res.PerClass {
		if c.FN > 0 {
			t.Errorf("%s: %d dynamic findings lacked the static candidate flag (unsound)", class, c.FN)
		}
	}
	if s := res.String(); s == "" {
		t.Error("empty render")
	}
}
