package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/symbolic"
)

// incr.go is the incremental-solver experiment, run as two legs that hold the
// layer's two contracted properties to a gate at once. `wasai-bench -exp
// incr` exits non-zero when either fails.
//
// Leg 1 (campaign differential) fuzzes a verification-heavy generated corpus
// with the solver off and on at several worker counts and requires
// FindingsDigest AND StateDigest byte-identical across every run. This is
// the end-to-end determinism contract: the incremental path may only ever
// change *how fast* a verdict is reached, never which verdict (or which
// model) the fuzzer observes.
//
// Leg 2 (solver differential) drives flip families straight through
// symbolic.SolvePoolCtx and requires a ≥30% cut in total CDCL conflicts plus
// query-by-query verdict and model agreement. The families are inequality
// chains (v0 < v1 < ... < vn with mostly-unsat flips of the last conjunct),
// not the campaign corpus, deliberately: the generated contracts' §4.3
// verification clauses are equalities, and equalities refute by *unit
// propagation* through the Tseitin gates — the fresh-solve baseline already
// reaches Unsat with zero conflicts, so no solver could show a conflict
// reduction there (the campaign leg's on-run instead shows up as simplifier
// short-circuits and vanishing propagation counts). Comparator circuits have
// no such luck: bit-level BCP cannot see transitivity, every Ult chain flip
// costs the fresh baseline a real CDCL search, and the shared-prefix
// instance amortizes the learned transitivity clauses across the family.
// That is exactly the workload the incremental layer exists for, measured at
// the layer's own API.
//
// Where the memo experiment measures *cross-job* redundancy (forked
// contracts re-solving identical queries), this one measures *within-trace*
// redundancy: every flip family shares a long path-constraint prefix, so the
// fresh-solve baseline re-bit-blasts and re-refutes near-identical
// conjunctions over and over.

// IncrConfig tunes the incremental-solver experiment.
type IncrConfig struct {
	// DistinctContracts is the number of distinct generated contracts in the
	// campaign leg; each is one campaign job (no forks — cross-job sharing
	// is the memo experiment's subject, not this one's).
	DistinctContracts int
	FuzzIterations    int
	Seed              int64
	// WorkerCounts are the pool sizes the campaign off/on differential runs
	// at.
	WorkerCounts []int
	// ChainFamilies and ChainLength shape the solver leg: ChainFamilies
	// inequality chains of ChainLength links over 32-bit variables, each
	// with ChainLength unsat flips and one sat flip.
	ChainFamilies, ChainLength int
	// ChainWorkers and ChainConflicts are the solver leg's pool size and
	// per-query conflict budget.
	ChainWorkers   int
	ChainConflicts int64
}

// DefaultIncrConfig is the acceptance-gate shape: the campaign leg at the
// 1/4/8 worker counts the campaign determinism suite uses, and a solver leg
// sized so the fresh baseline needs tens of thousands of conflicts.
func DefaultIncrConfig() IncrConfig {
	return IncrConfig{
		DistinctContracts: 8,
		FuzzIterations:    120,
		Seed:              5,
		WorkerCounts:      []int{1, 4, 8},
		ChainFamilies:     4,
		ChainLength:       5,
		ChainWorkers:      4,
		ChainConflicts:    50_000,
	}
}

// IncrWorkerRun is the campaign leg's off/on comparison at one worker count.
type IncrWorkerRun struct {
	Workers int
	// OffProps and OnProps are the merged unit-propagation totals of the two
	// runs; on the verification-clause corpus the saving shows up here (and
	// in SimplifiedUnsats), not in conflicts — see the file comment.
	OffProps, OnProps int64
	// AssumeCalls / AssumeUnsats / SimplifiedUnsats are the on-leg's
	// incremental-path counters: assumption solves attempted, flip queries
	// they refuted, and flips short-circuited by the simplifier alone.
	AssumeCalls, AssumeUnsats, SimplifiedUnsats int
	// DigestMatch reports whether both runs' FindingsDigest AND
	// StateDigest equal the experiment-wide reference.
	DigestMatch bool
}

// IncrChainLeg is the solver-level differential over the flip families.
type IncrChainLeg struct {
	Families, Queries int
	// OffConflicts / OnConflicts are total CDCL conflicts across all
	// families, fresh-solve vs incremental; likewise the propagation totals.
	OffConflicts, OnConflicts int64
	OffProps, OnProps         int64
	// AssumeCalls and AssumeUnsats count the on-run's assumption solves and
	// how many of the flips they refuted.
	AssumeCalls, AssumeUnsats int
	// Unknowns is the two runs' combined budget exhaustions (expected 0).
	Unknowns int
	// Agreement is the correctness half of the leg: every query's verdict
	// matches between the runs, and every Sat query's model is identical.
	Agreement bool
	// OffWall and OnWall time the two runs (reporting-only).
	OffWall, OnWall time.Duration
}

// Reduction is the fraction of CDCL conflicts the incremental path removed.
func (l IncrChainLeg) Reduction() float64 {
	if l.OffConflicts == 0 {
		return 0
	}
	return 1 - float64(l.OnConflicts)/float64(l.OffConflicts)
}

// IncrResult aggregates the experiment.
type IncrResult struct {
	Total int
	Runs  []IncrWorkerRun
	// DigestMatch is true when every campaign run (off and on, at every
	// worker count) produced one identical pair of digests.
	DigestMatch bool
	// Chain is the solver-level leg.
	Chain IncrChainLeg
	// OffWall and OnWall compare campaign wall-clock at the last worker
	// count (reporting-only).
	OffWall, OnWall time.Duration
}

// Passed is the acceptance gate: byte-identical digests at every worker
// count, full verdict/model agreement on the flip families, and at least 30%
// fewer CDCL conflicts on them.
func (r *IncrResult) Passed() bool {
	return r.DigestMatch && r.Chain.Agreement && r.Chain.Reduction() >= 0.30
}

// EvaluateIncr runs both legs: the campaign corpus incremental-off and -on
// at each configured worker count (digest gate), then the flip families
// through the solver pool (conflict-reduction and agreement gate).
func EvaluateIncr(cfg IncrConfig) (*IncrResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	contracts := make([]*contractgen.Contract, 0, cfg.DistinctContracts)
	for d := 0; d < cfg.DistinctContracts; d++ {
		class := memoClasses[d%len(memoClasses)]
		spec := contractgen.RandomSpec(class, d%2 == 0, rng)
		spec.Verification = randomVerification(rng, &spec)
		c, err := contractgen.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("bench: incr corpus %d: %w", d, err)
		}
		contracts = append(contracts, c)
	}
	makeJobs := func() []campaign.Job {
		jobs := make([]campaign.Job, len(contracts))
		for i, c := range contracts {
			jobs[i] = campaign.Job{
				Name:   fmt.Sprintf("incr-%d", i),
				Module: c.Module,
				ABI:    c.ABI,
				Config: fuzz.Config{
					Iterations:      cfg.FuzzIterations,
					SolverConflicts: 50_000,
					Seed:            cfg.Seed + int64(i),
				},
			}
		}
		return jobs
	}
	workerCounts := cfg.WorkerCounts
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}

	res := &IncrResult{Total: len(contracts), DigestMatch: true}
	var refFindings, refState string
	for i, workers := range workerCounts {
		off, err := campaign.Run(context.Background(), makeJobs(), campaign.Config{Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("bench: incr off (workers=%d): %w", workers, err)
		}
		on, err := campaign.Run(context.Background(), makeJobs(), campaign.Config{Workers: workers, Incremental: true})
		if err != nil {
			return nil, fmt.Errorf("bench: incr on (workers=%d): %w", workers, err)
		}
		if i == 0 {
			refFindings, refState = off.FindingsDigest(), off.StateDigest()
		}
		match := off.FindingsDigest() == refFindings && off.StateDigest() == refState &&
			on.FindingsDigest() == refFindings && on.StateDigest() == refState
		if !match {
			res.DigestMatch = false
		}
		res.Runs = append(res.Runs, IncrWorkerRun{
			Workers:          workers,
			OffProps:         off.SolverStats.Propagations,
			OnProps:          on.SolverStats.Propagations,
			AssumeCalls:      on.SolverStats.AssumeCalls,
			AssumeUnsats:     on.SolverStats.AssumeUnsats,
			SimplifiedUnsats: on.SolverStats.SimplifiedUnsats,
			DigestMatch:      match,
		})
		res.OffWall, res.OnWall = off.Wall, on.Wall
	}

	chain, err := evaluateIncrChains(cfg)
	if err != nil {
		return nil, err
	}
	res.Chain = chain
	return res, nil
}

// evaluateIncrChains builds the flip families and runs each through
// SolvePoolCtx twice — fresh and incremental — comparing every answer.
func evaluateIncrChains(cfg IncrConfig) (IncrChainLeg, error) {
	families, chain := cfg.ChainFamilies, cfg.ChainLength
	if families <= 0 {
		families = 4
	}
	if chain <= 0 {
		chain = 5
	}
	workers := cfg.ChainWorkers
	if workers <= 0 {
		workers = 4
	}
	budget := cfg.ChainConflicts
	if budget <= 0 {
		budget = 50_000
	}

	ctx := symbolic.NewCtx()
	fams := make([][]symbolic.Query, 0, families)
	id := 0
	for f := 0; f < families; f++ {
		vs := make([]*symbolic.Expr, chain+1)
		for i := range vs {
			vs[i] = ctx.Var(fmt.Sprintf("f%dv%d", f, i), 32)
		}
		// Shared prefix: v0 < v1 < ... < v_chain.
		prefix := make([]*symbolic.Expr, 0, chain)
		for i := 0; i < chain; i++ {
			prefix = append(prefix, ctx.Ult(vs[i], vs[i+1]))
		}
		// Unsat flips (v_chain < v_k contradicts the chain) plus one sat
		// flip, as the concolic loop produces them: same prefix, one negated
		// tail conjunct per query.
		qs := make([]symbolic.Query, 0, chain+1)
		for k := 0; k < chain; k++ {
			cs := append(append([]*symbolic.Expr{}, prefix...), ctx.Ult(vs[chain], vs[k]))
			qs = append(qs, symbolic.Query{ID: id, Constraints: cs})
			id++
		}
		cs := append(append([]*symbolic.Expr{}, prefix...), ctx.Ult(vs[0], vs[chain]))
		qs = append(qs, symbolic.Query{ID: id, Constraints: cs})
		id++
		fams = append(fams, qs)
	}

	leg := IncrChainLeg{Families: families, Queries: id, Agreement: true}
	run := func(incremental bool) (map[int]symbolic.Answer, symbolic.SolverStats, time.Duration, error) {
		answers := make(map[int]symbolic.Answer, id)
		var total symbolic.SolverStats
		start := time.Now()
		for _, fam := range fams {
			ans, st, err := symbolic.SolvePoolCtx(context.Background(), fam, symbolic.PoolOptions{
				Workers:      workers,
				MaxConflicts: budget,
				Incremental:  incremental,
			})
			if err != nil {
				return nil, total, 0, fmt.Errorf("bench: incr chains (incremental=%v): %w", incremental, err)
			}
			for _, a := range ans {
				answers[a.ID] = a
			}
			total.SATConflicts += st.SATConflicts
			total.Propagations += st.Propagations
			total.Unknowns += st.Unknowns
			total.AssumeCalls += st.AssumeCalls
			total.AssumeUnsats += st.AssumeUnsats
		}
		return answers, total, time.Since(start), nil
	}

	offAns, offStats, offWall, err := run(false)
	if err != nil {
		return leg, err
	}
	onAns, onStats, onWall, err := run(true)
	if err != nil {
		return leg, err
	}
	leg.OffConflicts, leg.OnConflicts = offStats.SATConflicts, onStats.SATConflicts
	leg.OffProps, leg.OnProps = offStats.Propagations, onStats.Propagations
	leg.AssumeCalls, leg.AssumeUnsats = onStats.AssumeCalls, onStats.AssumeUnsats
	leg.Unknowns = offStats.Unknowns + onStats.Unknowns
	leg.OffWall, leg.OnWall = offWall, onWall
	for qid := 0; qid < id; qid++ {
		off, on := offAns[qid], onAns[qid]
		if off.Result != on.Result || !modelsEqual(off.Model, on.Model) {
			leg.Agreement = false
		}
	}
	return leg, nil
}

// modelsEqual compares two satisfying assignments for byte-equality.
func modelsEqual(a, b symbolic.Model) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// RenderIncr prints the experiment summary.
func RenderIncr(r *IncrResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "incr — incremental prefix-sharing solver differential\n")
	fmt.Fprintf(&sb, "campaign leg (%d contracts):\n", r.Total)
	for _, run := range r.Runs {
		fmt.Fprintf(&sb, "  workers=%d: props %d -> %d, digests identical=%v\n",
			run.Workers, run.OffProps, run.OnProps, run.DigestMatch)
		fmt.Fprintf(&sb, "    incremental path: %d assumption solves, %d unsat, %d simplified-unsat\n",
			run.AssumeCalls, run.AssumeUnsats, run.SimplifiedUnsats)
	}
	fmt.Fprintf(&sb, "  wall (last worker count): off %.2fs, on %.2fs\n", r.OffWall.Seconds(), r.OnWall.Seconds())
	c := r.Chain
	fmt.Fprintf(&sb, "solver leg (%d flip families, %d queries):\n", c.Families, c.Queries)
	fmt.Fprintf(&sb, "  CDCL conflicts %d -> %d (-%.1f%%), props %d -> %d, unknowns=%d\n",
		c.OffConflicts, c.OnConflicts, 100*c.Reduction(), c.OffProps, c.OnProps, c.Unknowns)
	fmt.Fprintf(&sb, "  incremental path: %d assumption solves, %d unsat; verdict+model agreement=%v\n",
		c.AssumeCalls, c.AssumeUnsats, c.Agreement)
	fmt.Fprintf(&sb, "  wall: off %.2fs, on %.2fs\n", c.OffWall.Seconds(), c.OnWall.Seconds())
	if r.Passed() {
		fmt.Fprintf(&sb, "incr: PASS — byte-identical digests, full agreement, %.1f%% fewer CDCL conflicts (need ≥30%%)\n",
			100*r.Chain.Reduction())
	} else {
		fmt.Fprintf(&sb, "incr: FAIL — digests identical=%v, agreement=%v, conflict reduction %.1f%% (need ≥30%%)\n",
			r.DigestMatch, r.Chain.Agreement, 100*r.Chain.Reduction())
	}
	return sb.String()
}
