package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/fuzz"
	"repro/internal/memo"
)

// chaos.go is the resilience smoke experiment: it runs the same generated
// population twice — once clean, once with seeded fault injection plus
// retry-with-degradation — and checks that the campaign absorbs the faults.
// Success means (1) zero terminal failures: every faulted job recovered on
// a retry, and (2) the jobs the plan left alone produced verdicts
// byte-identical to the clean run, i.e. injection perturbed nothing it
// wasn't aimed at. `make chaos` wires this into the repo's verify gate.

// ChaosConfig tunes the fault-injection experiment.
type ChaosConfig struct {
	NumContracts   int
	FuzzIterations int
	Seed           int64
	Workers        int
	// FaultRate is the fraction of jobs whose first attempt is faulted.
	FaultRate float64
	// MaxAttempts bounds retries; it must be ≥2 for recovery to be possible.
	MaxAttempts int
	// Memo selects memoization for the faulted leg (the clean baseline
	// always runs cache-off). Running the faulted campaign with the cache
	// on makes the verdict comparison also prove fault×memo hygiene:
	// faulted attempts bypass the cache entirely (no reads, no writes, no
	// hit accounting — see internal/memo), so an injected fault can never
	// poison results shared with clean jobs.
	Memo memo.Mode
}

// DefaultChaosConfig is the verify-gate smoke shape: small population,
// heavy (20%) fault rate, one degraded retry available per fault.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		NumContracts:   24,
		FuzzIterations: 60,
		Seed:           7,
		FaultRate:      0.2,
		MaxAttempts:    3,
		Memo:           memo.ModeOn,
	}
}

// ChaosResult reports how the campaign behaved under injected faults.
type ChaosResult struct {
	Total int
	// Faulted counts jobs the plan injected into; PerKind breaks the
	// injections down by fault kind.
	Faulted int
	PerKind map[faultinject.Kind]int
	// Recovered counts faulted jobs that still completed with a verdict
	// (necessarily on a degraded retry for fault kinds that fail the job).
	Recovered int
	Degraded  int
	Retried   int
	// TerminalFailures and PerFailure count jobs that stayed failed after
	// all retries — the experiment's first failure condition.
	TerminalFailures int
	PerFailure       map[failure.Class]int
	// VerdictMismatches counts un-faulted jobs whose verdicts differ from
	// the clean baseline run — the second failure condition (injection
	// must not leak into jobs it didn't target).
	VerdictMismatches int
}

// Passed reports whether the campaign absorbed the injected faults.
func (r *ChaosResult) Passed() bool {
	return r.TerminalFailures == 0 && r.VerdictMismatches == 0
}

// EvaluateChaos runs the clean baseline and the faulted campaign over the
// same population and compares them.
func EvaluateChaos(cfg ChaosConfig) (*ChaosResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pop, err := contractgen.GenerateWild(contractgen.DefaultWildOptions(cfg.NumContracts), rng)
	if err != nil {
		return nil, err
	}
	makeJobs := func() []campaign.Job {
		jobs := make([]campaign.Job, len(pop))
		for i := range pop {
			jobs[i] = campaign.Job{
				Name:   pop[i].Name.String(),
				Module: pop[i].Contract.Module,
				ABI:    pop[i].Contract.ABI,
				Config: fuzz.Config{
					Iterations:      cfg.FuzzIterations,
					SolverConflicts: 50_000,
					Seed:            cfg.Seed + int64(i),
				},
			}
		}
		return jobs
	}

	base, err := campaign.Run(context.Background(), makeJobs(), campaign.Config{Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("bench: chaos baseline: %w", err)
	}

	plan := &faultinject.Plan{Seed: cfg.Seed, Rate: cfg.FaultRate}
	faulted, err := campaign.Run(context.Background(), makeJobs(), campaign.Config{
		Workers: cfg.Workers,
		Faults:  plan,
		Retry:   campaign.RetryPolicy{MaxAttempts: cfg.MaxAttempts},
		Memo:    cfg.Memo,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: chaos faulted run: %w", err)
	}

	res := &ChaosResult{
		Total:      len(pop),
		PerKind:    map[faultinject.Kind]int{},
		PerFailure: map[failure.Class]int{},
		Degraded:   faulted.Degraded,
		Retried:    faulted.Retried,
	}
	for i := range pop {
		bjr, fjr := base.Results[i], faulted.Results[i]
		inj := plan.For(fjr.Job.ID, 0)
		if inj != nil {
			res.Faulted++
			res.PerKind[inj.Kind()]++
		}
		if fjr.Err != nil {
			res.TerminalFailures++
			res.PerFailure[failureClassOf(fjr)]++
			continue
		}
		if inj != nil {
			res.Recovered++
			// A faulted job's accepted result came from a degraded retry;
			// its verdict legitimately may differ from baseline, so it is
			// exempt from the mismatch check.
			continue
		}
		if bjr.Err != nil {
			continue // baseline itself failed; nothing to compare against
		}
		for _, cl := range contractgen.Classes {
			if bjr.Result.Report.Vulnerable[cl] != fjr.Result.Report.Vulnerable[cl] {
				res.VerdictMismatches++
				break
			}
		}
	}
	return res, nil
}

// RenderChaos prints the experiment summary.
func RenderChaos(r *ChaosResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chaos — campaign resilience under fault injection (%d contracts)\n", r.Total)
	fmt.Fprintf(&sb, "faulted: %d jobs", r.Faulted)
	if r.Faulted > 0 {
		parts := make([]string, 0, len(faultinject.AllKinds))
		for _, k := range faultinject.AllKinds {
			if n := r.PerKind[k]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", k, n))
			}
		}
		fmt.Fprintf(&sb, " (%s)", strings.Join(parts, ", "))
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "recovered: %d/%d faulted jobs completed after retry (%d retried, %d degraded)\n",
		r.Recovered, r.Faulted, r.Retried, r.Degraded)
	fmt.Fprintf(&sb, "terminal failures: %d\n", r.TerminalFailures)
	for _, cl := range failure.Classes {
		if n := r.PerFailure[cl]; n > 0 {
			fmt.Fprintf(&sb, "  failures[%s] %d\n", cl, n)
		}
	}
	if n := r.PerFailure[failure.Unclassified]; n > 0 {
		fmt.Fprintf(&sb, "  failures[%s] %d\n", failure.Unclassified, n)
	}
	fmt.Fprintf(&sb, "verdict mismatches on un-faulted jobs: %d\n", r.VerdictMismatches)
	if r.Passed() {
		sb.WriteString("chaos: PASS — all faults absorbed, un-faulted verdicts unchanged\n")
	} else {
		sb.WriteString("chaos: FAIL\n")
	}
	return sb.String()
}
