package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/memo"
)

// memo.go is the memoization experiment: a fork-heavy corpus fuzzed
// cache-off and cache-on at several worker counts. It asserts the layer's
// two contracted properties at once — FindingsDigest and StateDigest
// byte-identical cache-on vs cache-off at every worker count, and a ≥30%
// cut in DPLL solver invocations (SATCalls) from replayed verdicts.
// `wasai-bench -exp memo` (or `-memo` on the accuracy/coverage
// experiments) exits non-zero when either property fails.
//
// The corpus mirrors the redundancy structure of the wild population the
// paper scans (§4.4): the EOSIO mainnet is dominated by forked and
// re-deployed variants of a few gambling-contract templates, so a batch
// analysis solves near-identical path conditions over and over across
// jobs. The experiment generates a small set of distinct contracts —
// drawn with §4.3-style verification clauses, the shape whose equality
// chains actually reach the DPLL instead of the concrete-probing fast
// path — and deploys each as several forks fuzzed under different seeds.
// Cross-job sharing is what is measured: the forks are distinct jobs with
// distinct fuzzing seeds, and only the memo layer connects them.

// MemoConfig tunes the memoization experiment.
type MemoConfig struct {
	// DistinctContracts is the number of distinct generated contracts;
	// ForkFactor how many forks of each enter the corpus (each fork is
	// its own job with its own fuzzing seed).
	DistinctContracts int
	ForkFactor        int
	FuzzIterations    int
	Seed              int64
	// WorkerCounts are the pool sizes the off/on differential runs at.
	WorkerCounts []int
}

// DefaultMemoConfig is the acceptance-gate shape: 36 jobs (6 distinct
// contracts × 6 forks) at the 1/4/8 worker counts the campaign
// determinism suite uses.
func DefaultMemoConfig() MemoConfig {
	return MemoConfig{
		DistinctContracts: 6,
		ForkFactor:        6,
		FuzzIterations:    120,
		Seed:              3,
		WorkerCounts:      []int{1, 4, 8},
	}
}

// MemoWorkerRun is the off/on comparison at one worker count.
type MemoWorkerRun struct {
	Workers int
	// OffSATCalls and OnSATCalls are the merged DPLL invocation counts of
	// the cache-off and cache-on runs (Queries is identical by
	// construction: a cache hit still counts its query).
	OffSATCalls, OnSATCalls int
	// DigestMatch reports whether the on-run's FindingsDigest AND
	// StateDigest equal the off-run's.
	DigestMatch bool
	// Stats is the cache-on run's counter delta.
	Stats memo.Stats
}

// Reduction is the fraction of DPLL calls the cache removed at this
// worker count.
func (r MemoWorkerRun) Reduction() float64 {
	if r.OffSATCalls == 0 {
		return 0
	}
	return 1 - float64(r.OnSATCalls)/float64(r.OffSATCalls)
}

// MemoResult aggregates the experiment.
type MemoResult struct {
	Total int
	Runs  []MemoWorkerRun
	// DigestMatch is true when every run (off and on, at every worker
	// count) produced one identical pair of digests.
	DigestMatch bool
	// OffWall and OnWall compare wall-clock at the last worker count
	// (reporting-only).
	OffWall, OnWall time.Duration
}

// MinReduction returns the smallest SATCalls reduction across worker
// counts (cache-on SATCalls varies slightly with concurrency — parallel
// workers can miss on one key simultaneously — so the gate holds the
// worst case to the threshold).
func (r *MemoResult) MinReduction() float64 {
	min := 1.0
	for _, run := range r.Runs {
		if red := run.Reduction(); red < min {
			min = red
		}
	}
	if len(r.Runs) == 0 {
		return 0
	}
	return min
}

// Passed is the acceptance gate: byte-identical digests everywhere and at
// least 30% fewer DPLL invocations at every worker count.
func (r *MemoResult) Passed() bool {
	return r.DigestMatch && r.MinReduction() >= 0.30
}

// memoClasses are the vulnerability classes whose generated verification
// clauses reliably defeat the solver's concrete-probing fast path, so the
// baseline leg has real DPLL work to save.
var memoClasses = []contractgen.Class{
	contractgen.ClassMissAuth,
	contractgen.ClassBlockinfoDep,
	contractgen.ClassRollback,
}

// EvaluateMemo runs the fork corpus cache-off and cache-on at each
// configured worker count and compares digests and solver work.
func EvaluateMemo(cfg MemoConfig) (*MemoResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	type forked struct {
		contract *contractgen.Contract
		name     string
	}
	var corpus []forked
	for d := 0; d < cfg.DistinctContracts; d++ {
		class := memoClasses[d%len(memoClasses)]
		spec := contractgen.RandomSpec(class, d%2 == 0, rng)
		spec.Verification = randomVerification(rng, &spec)
		c, err := contractgen.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("bench: memo corpus %d: %w", d, err)
		}
		for f := 0; f < cfg.ForkFactor; f++ {
			corpus = append(corpus, forked{contract: c, name: fmt.Sprintf("fork-%d-%d", d, f)})
		}
	}
	makeJobs := func() []campaign.Job {
		jobs := make([]campaign.Job, len(corpus))
		for i := range corpus {
			jobs[i] = campaign.Job{
				Name:   corpus[i].name,
				Module: corpus[i].contract.Module,
				ABI:    corpus[i].contract.ABI,
				Config: fuzz.Config{
					Iterations:      cfg.FuzzIterations,
					SolverConflicts: 50_000,
					Seed:            cfg.Seed + int64(i),
				},
			}
		}
		return jobs
	}
	workerCounts := cfg.WorkerCounts
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}

	res := &MemoResult{Total: len(corpus), DigestMatch: true}
	var refFindings, refState string
	for i, workers := range workerCounts {
		off, err := campaign.Run(context.Background(), makeJobs(), campaign.Config{Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("bench: memo off (workers=%d): %w", workers, err)
		}
		on, err := campaign.Run(context.Background(), makeJobs(), campaign.Config{Workers: workers, Memo: memo.ModeOn})
		if err != nil {
			return nil, fmt.Errorf("bench: memo on (workers=%d): %w", workers, err)
		}
		if i == 0 {
			refFindings, refState = off.FindingsDigest(), off.StateDigest()
		}
		match := off.FindingsDigest() == refFindings && off.StateDigest() == refState &&
			on.FindingsDigest() == refFindings && on.StateDigest() == refState
		if !match {
			res.DigestMatch = false
		}
		run := MemoWorkerRun{
			Workers:     workers,
			OffSATCalls: off.SolverStats.SATCalls,
			OnSATCalls:  on.SolverStats.SATCalls,
			DigestMatch: match,
		}
		if on.Memo != nil {
			run.Stats = *on.Memo
		}
		res.Runs = append(res.Runs, run)
		res.OffWall, res.OnWall = off.Wall, on.Wall
	}
	return res, nil
}

// RenderMemo prints the experiment summary.
func RenderMemo(r *MemoResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "memo — cross-job memoization differential (%d contracts)\n", r.Total)
	for _, run := range r.Runs {
		fmt.Fprintf(&sb, "workers=%d: DPLL calls %d -> %d (-%.1f%%), digests identical=%v\n",
			run.Workers, run.OffSATCalls, run.OnSATCalls, 100*run.Reduction(), run.DigestMatch)
		fmt.Fprintf(&sb, "  cache: %s\n", run.Stats)
	}
	fmt.Fprintf(&sb, "wall (last worker count): off %.2fs, on %.2fs\n", r.OffWall.Seconds(), r.OnWall.Seconds())
	if r.Passed() {
		fmt.Fprintf(&sb, "memo: PASS — byte-identical digests, ≥30%% fewer DPLL calls (min %.1f%%)\n", 100*r.MinReduction())
	} else {
		fmt.Fprintf(&sb, "memo: FAIL — digests identical=%v, min DPLL reduction %.1f%% (need ≥30%%)\n",
			r.DigestMatch, 100*r.MinReduction())
	}
	return sb.String()
}
