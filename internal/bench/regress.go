package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/memo"
)

// regress.go is the benchmark-regression harness behind `make bench-regress`:
// a fixed two-leg workload (a scaled Table-6 verification-accuracy campaign
// plus a generated coverage campaign, sharing one memo cache across legs) whose
// outcome is reduced to a small JSON record — findings digest, DPLL solver
// invocations, cache hit rate, wall-clock (median of three legs; counters
// are single-leg exact). The record is compared against a
// committed baseline (BENCH_BASELINE.json): a digest difference is a
// correctness regression and fails outright; solver-call or wall-clock growth
// beyond tolerance fails as a performance regression. `wasai-bench
// -exp regress -write-baseline` regenerates the baseline after an intentional
// change.

// RegressSchema versions the record format; Compare refuses records written
// by a different schema.
const RegressSchema = "wasai-bench-regress/1"

// RegressShape pins the workload parameters inside the record. Compare
// requires current and baseline shapes to be identical — comparing runs of
// different workloads would make both tolerances meaningless.
type RegressShape struct {
	Scale             float64 `json:"scale"`
	Iterations        int     `json:"iterations"`
	CoverageContracts int     `json:"coverage_contracts"`
	Workers           int     `json:"workers"`
	Seed              int64   `json:"seed"`
}

// RegressConfig tunes RunRegress.
type RegressConfig struct {
	Shape RegressShape
}

// DefaultRegressConfig is the smoke shape `make verify` runs: the Table-6
// verification dataset at 2% scale (each class floored to 4 samples) plus a
// small coverage corpus. The verification dataset (not Table 4) is the
// accuracy leg because its §4.3 equality chains are what actually reaches
// the DPLL — a solver-call budget guarded at a handful of calls would be
// all floor and no signal.
func DefaultRegressConfig() RegressConfig {
	return RegressConfig{Shape: RegressShape{
		Scale:             0.02,
		Iterations:        120,
		CoverageContracts: 8,
		Workers:           4,
		Seed:              1,
	}}
}

// RegressRecord is one harness run, serialized as the baseline file.
type RegressRecord struct {
	Schema string       `json:"schema"`
	Shape  RegressShape `json:"shape"`
	// Digest folds both legs' FindingsDigest and StateDigest into one hash.
	// It is deterministic (worker-count and cache invariant), so baseline
	// comparison is exact: any difference is a correctness regression.
	Digest string `json:"digest"`
	// SATCalls counts DPLL invocations across both legs — the solver-work
	// metric the 10% tolerance guards. Queries is the total query count
	// (cache hits included), fixed for a given workload.
	SATCalls int `json:"sat_calls"`
	Queries  int `json:"queries"`
	// CacheHitRate is the shared memo cache's hit fraction over both legs.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// WallMS is wall-clock; machine-dependent, so its tolerance carries an
	// absolute grace (see Compare).
	WallMS int64 `json:"wall_ms"`
	// Sched carries the adaptive scheduler's counters when the workload ran
	// with the adaptive schedule on. The regression workload is static, so
	// the field stays nil and the committed baseline is unchanged; it exists
	// so records of adaptive workloads share this schema.
	Sched *RegressSched `json:"sched,omitempty"`
}

// RegressSched is the JSON form of schedule.Counters in a bench record.
type RegressSched struct {
	EnergyUpdates   int `json:"energy_updates"`
	CompositeFired  int `json:"composite_fired"`
	SaturationSkips int `json:"saturation_skips"`
	FuelReturned    int `json:"fuel_returned"`
	FuelReallocated int `json:"fuel_reallocated"`
	SaturatedJobs   int `json:"saturated_jobs"`
}

// Tolerances: solver calls and wall-clock may grow ≤10% over baseline; wall
// additionally gets a 2s absolute grace so smoke-scale noise on loaded
// machines does not flake the gate, and solver calls get a slop of one call
// per worker: with the cache on, workers that miss the same key
// concurrently both solve it (see internal/memo — the counters are the one
// deliberately scheduling-dependent output), so cache-on SATCalls can vary
// by at most the worker count.
const (
	regressTolerance  = 0.10
	regressWallMSSlop = 2000
)

// regressWallLegs is how many times RunRegress repeats the workload to
// de-flake the wall-clock metric: WallMS is the median of the legs' times,
// so one scheduler hiccup or cold file cache cannot trip the 10% gate.
// Solver counters and the digest come from the first leg alone — they are
// deterministic (each leg gets its own fresh memo cache), so repeating them
// would only hide a bug; instead the legs' digests are asserted identical.
const regressWallLegs = 3

// RunRegress executes the fixed workload regressWallLegs times and returns
// the first leg's record with the median wall-clock.
func RunRegress(cfg RegressConfig) (*RegressRecord, error) {
	var (
		first *RegressRecord
		walls []int64
	)
	for leg := 0; leg < regressWallLegs; leg++ {
		rec, err := runRegressLeg(cfg.Shape)
		if err != nil {
			return nil, err
		}
		walls = append(walls, rec.WallMS)
		if leg == 0 {
			first = rec
			continue
		}
		if rec.Digest != first.Digest {
			return nil, fmt.Errorf("bench: regress leg %d digest %s… differs from leg 0 digest %s… — workload is nondeterministic",
				leg, rec.Digest[:12], first.Digest[:12])
		}
	}
	first.WallMS = medianInt64(walls)
	return first, nil
}

// medianInt64 returns the middle value (sorted) of a non-empty slice.
func medianInt64(v []int64) int64 {
	s := append([]int64(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// runRegressLeg executes the workload once on a fresh memo cache.
func runRegressLeg(sh RegressShape) (*RegressRecord, error) {
	ds, err := BuildVerification(Table6Counts, Options{Scale: sh.Scale, Seed: sh.Seed})
	if err != nil {
		return nil, fmt.Errorf("bench: regress dataset: %w", err)
	}
	// One cache across both legs: the harness pins the cross-campaign
	// behaviour (campaign.Config.MemoCache sharing), not just single-run
	// memoization.
	shared := memo.New()
	engCfg := campaign.Config{Workers: sh.Workers, MemoCache: shared}

	// Leg 1 — accuracy: the scaled Table-6 verification dataset, one WASAI
	// campaign per sample, mirroring EvaluateAccuracy's job layout.
	accJobs := make([]campaign.Job, 0, len(ds.Samples))
	for _, s := range ds.Samples {
		accJobs = append(accJobs, campaign.Job{
			Name:   fmt.Sprintf("sample-%d", s.ID),
			Module: s.Contract.Module,
			ABI:    s.Contract.ABI,
			Config: fuzz.Config{
				Iterations:      sh.Iterations,
				SolverConflicts: 50_000,
				Seed:            sh.Seed + int64(s.ID),
			},
		})
	}
	acc, err := campaign.Run(context.Background(), accJobs, engCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: regress accuracy leg: %w", err)
	}

	// Leg 2 — coverage: a generated mixed corpus, mirroring
	// EvaluateCoverage's WASAI side (the baseline tool adds nothing here).
	rng := rand.New(rand.NewSource(sh.Seed))
	covJobs := make([]campaign.Job, 0, sh.CoverageContracts)
	for i := 0; i < sh.CoverageContracts; i++ {
		class := contractgen.Classes[rng.Intn(len(contractgen.Classes))]
		spec := contractgen.RandomSpec(class, rng.Intn(2) == 0, rng)
		c, err := contractgen.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("bench: regress coverage corpus %d: %w", i, err)
		}
		covJobs = append(covJobs, campaign.Job{
			Name:   fmt.Sprintf("coverage-%d", i),
			Module: c.Module,
			ABI:    c.ABI,
			Config: fuzz.Config{
				Iterations:      sh.Iterations,
				SolverConflicts: 50_000,
				Seed:            sh.Seed + int64(1000+i),
			},
		})
	}
	cov, err := campaign.Run(context.Background(), covJobs, engCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: regress coverage leg: %w", err)
	}

	h := sha256.New()
	for _, rep := range []*campaign.Report{acc, cov} {
		h.Write([]byte(rep.FindingsDigest()))
		h.Write([]byte{0})
		h.Write([]byte(rep.StateDigest()))
		h.Write([]byte{0})
	}
	stats := shared.Snapshot()
	rec := &RegressRecord{
		Schema:       RegressSchema,
		Shape:        sh,
		Digest:       hex.EncodeToString(h.Sum(nil)),
		SATCalls:     acc.SolverStats.SATCalls + cov.SolverStats.SATCalls,
		Queries:      acc.SolverStats.Queries + cov.SolverStats.Queries,
		CacheHitRate: stats.HitRate(),
		WallMS:       (acc.Wall + cov.Wall).Milliseconds(),
	}
	sched := acc.Sched
	sched.Add(cov.Sched)
	if !sched.Zero() {
		rec.Sched = &RegressSched{
			EnergyUpdates:   sched.EnergyUpdates,
			CompositeFired:  sched.CompositeFired,
			SaturationSkips: sched.SaturationSkips,
			FuelReturned:    sched.FuelReturned,
			FuelReallocated: sched.FuelReallocated,
			SaturatedJobs:   sched.SaturatedJobs,
		}
	}
	return rec, nil
}

// CompareRegress checks a fresh record against the committed baseline and
// returns the list of regressions (empty = pass).
func CompareRegress(baseline, current *RegressRecord) []string {
	var problems []string
	if baseline.Schema != current.Schema {
		return []string{fmt.Sprintf("schema mismatch: baseline %q vs current %q — regenerate the baseline (make bench-baseline)",
			baseline.Schema, current.Schema)}
	}
	if baseline.Shape != current.Shape {
		return []string{fmt.Sprintf("workload shape changed: baseline %+v vs current %+v — regenerate the baseline (make bench-baseline)",
			baseline.Shape, current.Shape)}
	}
	if baseline.Digest != current.Digest {
		problems = append(problems, fmt.Sprintf("findings digest changed: baseline %s… vs current %s… — behaviour regression (if intentional, make bench-baseline)",
			baseline.Digest[:12], current.Digest[:12]))
	}
	if limit := int(float64(baseline.SATCalls)*(1+regressTolerance)) + baseline.Shape.Workers; current.SATCalls > limit {
		problems = append(problems, fmt.Sprintf("solver regression: %d DPLL calls vs baseline %d (limit %d, +%.0f%% + %d duplicate-miss slop)",
			current.SATCalls, baseline.SATCalls, limit, 100*regressTolerance, baseline.Shape.Workers))
	}
	if baseline.WallMS > 0 {
		limit := int64(float64(baseline.WallMS)*(1+regressTolerance)) + regressWallMSSlop
		if current.WallMS > limit {
			problems = append(problems, fmt.Sprintf("wall-clock regression: %dms vs baseline %dms (limit %dms)",
				current.WallMS, baseline.WallMS, limit))
		}
	}
	return problems
}

// WriteRegress writes the record as indented JSON.
func WriteRegress(path string, r *RegressRecord) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRegress reads a record written by WriteRegress.
func LoadRegress(path string) (*RegressRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RegressRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: regress baseline %s: %w", path, err)
	}
	return &r, nil
}

// RenderRegress prints the comparison outcome.
func RenderRegress(baseline, current *RegressRecord, problems []string) string {
	var sb strings.Builder
	sb.WriteString("bench-regress — fixed workload vs committed baseline\n")
	fmt.Fprintf(&sb, "current:  %d DPLL calls, %d queries, %.1f%% cache hit rate, %dms, digest %s…\n",
		current.SATCalls, current.Queries, 100*current.CacheHitRate, current.WallMS, current.Digest[:12])
	if baseline != nil {
		fmt.Fprintf(&sb, "baseline: %d DPLL calls, %d queries, %.1f%% cache hit rate, %dms, digest %s…\n",
			baseline.SATCalls, baseline.Queries, 100*baseline.CacheHitRate, baseline.WallMS, baseline.Digest[:12])
	}
	if len(problems) == 0 {
		sb.WriteString("bench-regress: PASS\n")
	} else {
		for _, p := range problems {
			fmt.Fprintf(&sb, "  REGRESSION: %s\n", p)
		}
		sb.WriteString("bench-regress: FAIL\n")
	}
	return sb.String()
}
