// Package bench is the experiment harness: it reconstructs the paper's
// benchmarks (the 3,340-sample ground-truth set of §4.2, its obfuscated
// variant and the complicated-verification variant of §4.3, the RQ1
// coverage corpus, and the RQ4 wild population) and regenerates every table
// and figure of the evaluation section.
package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/contractgen"
	"repro/internal/eos"
)

// Sample is one benchmark entry.
type Sample struct {
	ID       int
	Class    contractgen.Class
	Truth    bool // ground-truth vulnerable
	Contract *contractgen.Contract
}

// Dataset is a labeled benchmark.
type Dataset struct {
	Name    string
	Samples []Sample
}

// Table4Counts are the per-class sample counts of the §4.2 benchmark
// (vulnerable/non-vulnerable halves).
var Table4Counts = map[contractgen.Class]int{
	contractgen.ClassFakeEOS:      254,
	contractgen.ClassFakeNotif:    1378,
	contractgen.ClassMissAuth:     890,
	contractgen.ClassBlockinfoDep: 400,
	contractgen.ClassRollback:     418,
}

// Table6Counts are the per-class counts of the complicated-verification
// benchmark (§4.3: 2,924 samples).
var Table6Counts = map[contractgen.Class]int{
	contractgen.ClassFakeEOS:      190,
	contractgen.ClassFakeNotif:    1178,
	contractgen.ClassMissAuth:     756,
	contractgen.ClassBlockinfoDep: 400,
	contractgen.ClassRollback:     400,
}

// Options scales dataset construction: Scale in (0, 1] multiplies the
// per-class counts (minimum 4 per class), so `go test -bench` can run a
// proportionally smaller benchmark with the same construction.
type Options struct {
	Scale float64
	Seed  int64
}

// scaled applies the scale with a floor of 4 samples (2 vul / 2 safe).
func (o Options) scaled(n int) int {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	s := int(float64(n) * o.Scale)
	if s < 4 {
		s = 4
	}
	return s &^ 1 // keep it even for balanced halves
}

// BuildGroundTruth constructs the §4.2 benchmark: balanced
// vulnerable/non-vulnerable halves per class, with the population-level
// diversity knobs (dispatcher encodings, gated responder services, nested
// branch guards) drawn by contractgen.RandomSpec.
func BuildGroundTruth(counts map[contractgen.Class]int, opts Options) (*Dataset, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	ds := &Dataset{Name: "ground-truth"}
	id := 0
	for _, class := range contractgen.Classes {
		n := opts.scaled(counts[class])
		for i := 0; i < n; i++ {
			vul := i < n/2
			spec := contractgen.RandomSpec(class, vul, rng)
			c, err := contractgen.Generate(spec)
			if err != nil {
				return nil, fmt.Errorf("bench: sample %d (%s): %w", id, class, err)
			}
			ds.Samples = append(ds.Samples, Sample{
				ID: id, Class: class, Truth: spec.GroundTruth(), Contract: c,
			})
			id++
		}
	}
	return ds, nil
}

// Obfuscate produces the §4.3 obfuscated variant of a dataset: every sample
// is re-generated from its spec and passed through the popcount +
// opaque-recursion obfuscator.
func Obfuscate(ds *Dataset, seed int64) (*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	out := &Dataset{Name: ds.Name + "+obfuscated"}
	for _, s := range ds.Samples {
		c, err := contractgen.Generate(s.Contract.Spec)
		if err != nil {
			return nil, fmt.Errorf("bench: regenerate %d: %w", s.ID, err)
		}
		if _, err := contractgen.Obfuscate(c.Module, contractgen.DefaultObfuscation(rng)); err != nil {
			return nil, fmt.Errorf("bench: obfuscate %d: %w", s.ID, err)
		}
		out.Samples = append(out.Samples, Sample{ID: s.ID, Class: s.Class, Truth: s.Truth, Contract: c})
	}
	return out, nil
}

// BuildVerification constructs the §4.3 complicated-verification benchmark:
// `unreachable`-guarded equality checks over the inputs are injected at the
// action entries. Most clauses constrain attacker-controllable fields
// (amount, symbol, memo); a minority constrain the notification-fixed
// from/to fields, which no dynamic tool can steer through the forwarded-
// notification oracle — the source of the Fake Notif recall loss the paper
// reports.
func BuildVerification(counts map[contractgen.Class]int, opts Options) (*Dataset, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	ds := &Dataset{Name: "complicated-verification"}
	id := 0
	for _, class := range contractgen.Classes {
		n := opts.scaled(counts[class])
		for i := 0; i < n; i++ {
			vul := i < n/2
			spec := contractgen.RandomSpec(class, vul, rng)
			spec.Verification = randomVerification(rng, &spec)
			c, err := contractgen.Generate(spec)
			if err != nil {
				return nil, fmt.Errorf("bench: verification sample %d (%s): %w", id, class, err)
			}
			ds.Samples = append(ds.Samples, Sample{
				ID: id, Class: class, Truth: spec.GroundTruth(), Contract: c,
			})
			id++
		}
	}
	return ds, nil
}

// randomVerification draws 1-2 verification clauses. Field weights follow
// the mix described on BuildVerification. Fields already constrained by
// the sample's nested branches are excluded: an equality on the same field
// with a different constant would make the template unreachable and flip
// the ground truth — the paper avoids the same issue by only injecting
// verification into the 87.5% of samples where it is compatible.
func randomVerification(rng *rand.Rand, spec *contractgen.Spec) []contractgen.VerCheck {
	used := map[string]bool{}
	for _, br := range spec.Branches {
		used[br.Field] = true
	}
	var out []contractgen.VerCheck
	want := 1 + rng.Intn(2)
	for tries := 0; tries < 8 && len(out) < want; tries++ {
		vc := drawVerCheck(rng)
		if used[vc.Field] {
			continue
		}
		used[vc.Field] = true
		out = append(out, vc)
	}
	return out
}

func drawVerCheck(rng *rand.Rand) contractgen.VerCheck {
	switch r := rng.Float64(); {
	case r < 0.40:
		// The paper's own example: quantity must be an exact amount.
		return contractgen.VerCheck{Field: "amount", Value: uint64(100000 + rng.Intn(1000)*1000)}
	case r < 0.60:
		// 1397703940 — the "4,EOS" symbol constant from the paper's snippet.
		return contractgen.VerCheck{Field: "symbol", Value: uint64(eos.EOSSymbol)}
	case r < 0.80:
		return contractgen.VerCheck{Field: "memo0", Value: uint64('a' + rng.Intn(26))}
	case r < 0.90:
		return contractgen.VerCheck{Field: "from", Value: rng.Uint64() >> 4 << 4}
	default:
		return contractgen.VerCheck{Field: "to", Value: rng.Uint64() >> 4 << 4}
	}
}
