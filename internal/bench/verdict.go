package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/fuzz"
	"repro/internal/static/absint"
)

// verdict.go is the abstract-interpretation verdict-engine experiment, run
// as three legs that hold the engine's contracted properties to a gate at
// once. `wasai-bench -exp verdict` exits non-zero when any fails.
//
// Leg 1 (soundness) analyzes a generated ground-truth corpus plus a wild
// population sample and cross-checks every per-class verdict against a
// real dynamic campaign over the same contracts, in both directions: a
// proven-negative class whose dynamic oracle fires, or a proven-positive
// class whose oracle stays silent, is a soundness violation. The gate
// requires zero violations either way.
//
// Leg 2 (precision) measures how much of the wild population the engine
// decides statically, counted per (contract, class) verdict: every
// non-Unknown verdict either retires a class from the dynamic budget or
// schedules the job confirmed-first. The gate requires ≥30% of the wild
// verdict matrix decided; Unknown-heavy analyses would make verdict triage
// pointless. (Whole-contract skips — every class proven negative — are
// reported too, but can only occur on intrinsic-free boilerplate now that
// the on-chain-data scenario classes are Unknown on any db-writing
// contract.)
//
// Leg 3 (campaign differential) fuzzes the combined corpus with verdicts
// off and on at several worker counts and requires every run's
// FindingsDigest byte-identical to one reference. State digests are
// deliberately not compared across the off/on pair: a verdict skip does no
// work, so its coverage counters are zero by design.

// VerdictConfig tunes the verdict-engine experiment.
type VerdictConfig struct {
	// WildContracts is the wild-population sample size (leg 2's
	// denominator); the ground-truth corpus adds one vulnerable and one
	// safe contract per class on top.
	WildContracts  int
	FuzzIterations int
	Seed           int64
	// WorkerCounts are the pool sizes the off/on differential runs at.
	WorkerCounts []int
}

// DefaultVerdictConfig is the acceptance-gate shape: every class in both
// ground-truth polarities, a wild sample big enough for the resolution
// ratio to be meaningful, and the 1/4/8 worker counts the determinism
// suite uses.
func DefaultVerdictConfig() VerdictConfig {
	return VerdictConfig{
		WildContracts:  20,
		FuzzIterations: 160,
		Seed:           5,
		WorkerCounts:   []int{1, 4, 8},
	}
}

// VerdictClassStats aggregates one class's verdicts over the corpus.
type VerdictClassStats struct {
	// ProvenNeg, ProvenPos and Unknown count the three verdict kinds.
	ProvenNeg, ProvenPos, Unknown int
	// NegViolations counts proven-negative verdicts whose dynamic oracle
	// fired; PosViolations proven-positive verdicts whose oracle stayed
	// silent. Both must be zero.
	NegViolations, PosViolations int
}

// VerdictWorkerRun is the campaign leg's off/on comparison at one worker
// count.
type VerdictWorkerRun struct {
	Workers int
	// DigestMatch reports whether both runs' FindingsDigest equal the
	// experiment-wide reference.
	DigestMatch bool
	// Skipped is how many jobs the verdicts-on run answered statically.
	Skipped int
	// OffWall and OnWall time the two campaign runs (reporting-only).
	OffWall, OnWall time.Duration
}

// VerdictResult aggregates the experiment.
type VerdictResult struct {
	// Total is the corpus size; Wild the wild-population subset.
	// WildResolved counts wild contracts fully resolved (all classes
	// proven negative, or any proven positive); WildDecided counts the
	// non-Unknown entries of the wild (contract, class) verdict matrix.
	Total, Wild, WildResolved, WildDecided int
	// PerClass holds the verdict and violation counts per oracle class.
	PerClass map[contractgen.Class]*VerdictClassStats
	// Runs holds the per-worker-count campaign differentials; DigestMatch
	// is true when every run matched the reference findings digest.
	Runs        []VerdictWorkerRun
	DigestMatch bool
}

// NegViolations sums the unsound-negative count over all classes.
func (r *VerdictResult) NegViolations() int {
	n := 0
	for _, s := range r.PerClass {
		n += s.NegViolations
	}
	return n
}

// PosViolations sums the unsound-positive count over all classes.
func (r *VerdictResult) PosViolations() int {
	n := 0
	for _, s := range r.PerClass {
		n += s.PosViolations
	}
	return n
}

// Resolution is the decided fraction of the wild (contract, class) verdict
// matrix: each non-Unknown verdict is static triage work the dynamic
// campaign no longer has to do.
func (r *VerdictResult) Resolution() float64 {
	if r.Wild == 0 {
		return 0
	}
	return float64(r.WildDecided) / float64(r.Wild*len(contractgen.Classes))
}

// Passed is the acceptance gate: zero soundness violations in both
// directions, ≥30% wild resolution, and byte-identical findings digests at
// every worker count with verdicts off and on.
func (r *VerdictResult) Passed() bool {
	return r.DigestMatch && r.NegViolations() == 0 && r.PosViolations() == 0 &&
		r.Resolution() >= 0.30
}

// EvaluateVerdict runs all three legs over one combined corpus.
func EvaluateVerdict(cfg VerdictConfig) (*VerdictResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Corpus: the full ground-truth sweep (every class, both polarities),
	// then the wild sample.
	type sample struct {
		name     string
		contract *contractgen.Contract
		wild     bool
	}
	var samples []sample
	for _, class := range contractgen.Classes {
		for _, vul := range []bool{true, false} {
			c, err := contractgen.Generate(contractgen.Spec{Class: class, Vulnerable: vul, Seed: cfg.Seed})
			if err != nil {
				return nil, fmt.Errorf("bench: verdict ground truth %v/%v: %w", class, vul, err)
			}
			samples = append(samples, sample{name: fmt.Sprintf("gt-%s-%v", class, vul), contract: c})
		}
	}
	wild, err := contractgen.GenerateWild(contractgen.DefaultWildOptions(cfg.WildContracts), rng)
	if err != nil {
		return nil, fmt.Errorf("bench: verdict wild corpus: %w", err)
	}
	for _, w := range wild {
		samples = append(samples, sample{name: "wild-" + w.Name.String(), contract: w.Contract, wild: true})
	}

	res := &VerdictResult{
		Total:       len(samples),
		PerClass:    map[contractgen.Class]*VerdictClassStats{},
		DigestMatch: true,
	}
	for _, class := range contractgen.Classes {
		res.PerClass[class] = &VerdictClassStats{}
	}

	// Static pass: one verdict report per contract (legs 1 and 2 read it;
	// the campaign runs recompute their own through the engine's cache).
	reports := make([]*absint.Report, len(samples))
	for i, s := range samples {
		var actions []eos.Name
		for _, act := range s.contract.ABI.Actions {
			actions = append(actions, act.Name)
		}
		reports[i] = absint.Analyze(s.contract.Module, actions)
		for _, class := range contractgen.Classes {
			switch reports[i].Verdicts[class].Kind {
			case absint.ProvenNegative:
				res.PerClass[class].ProvenNeg++
			case absint.ProvenPositive:
				res.PerClass[class].ProvenPos++
			default:
				res.PerClass[class].Unknown++
			}
		}
		if s.wild {
			res.Wild++
			if reports[i].AllNegative() || reports[i].AnyPositive() {
				res.WildResolved++
			}
			for _, class := range contractgen.Classes {
				if reports[i].Verdicts[class].Kind != absint.Unknown {
					res.WildDecided++
				}
			}
		}
	}

	makeJobs := func() []campaign.Job {
		jobs := make([]campaign.Job, len(samples))
		for i, s := range samples {
			jobs[i] = campaign.Job{
				Name:   s.name,
				Module: s.contract.Module,
				ABI:    s.contract.ABI,
				Config: fuzz.Config{
					Iterations:      cfg.FuzzIterations,
					SolverConflicts: 50_000,
					Seed:            cfg.Seed + int64(i),
				},
			}
		}
		return jobs
	}
	workerCounts := cfg.WorkerCounts
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}

	var refFindings string
	for i, workers := range workerCounts {
		off, err := campaign.Run(context.Background(), makeJobs(), campaign.Config{Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("bench: verdict off (workers=%d): %w", workers, err)
		}
		on, err := campaign.Run(context.Background(), makeJobs(), campaign.Config{Workers: workers, Verdicts: true})
		if err != nil {
			return nil, fmt.Errorf("bench: verdict on (workers=%d): %w", workers, err)
		}
		if i == 0 {
			refFindings = off.FindingsDigest()
			// Soundness leg: the first dynamic run is the oracle reference.
			for j, jr := range off.Results {
				if jr.Err != nil {
					return nil, fmt.Errorf("bench: verdict job %q: %w", jr.Job.Name, jr.Err)
				}
				for _, class := range contractgen.Classes {
					dyn := jr.Result.Report.Vulnerable[class]
					switch reports[j].Verdicts[class].Kind {
					case absint.ProvenNegative:
						if dyn {
							res.PerClass[class].NegViolations++
						}
					case absint.ProvenPositive:
						if !dyn {
							res.PerClass[class].PosViolations++
						}
					}
				}
			}
		}
		match := off.FindingsDigest() == refFindings && on.FindingsDigest() == refFindings
		if !match {
			res.DigestMatch = false
		}
		res.Runs = append(res.Runs, VerdictWorkerRun{
			Workers:     workers,
			DigestMatch: match,
			Skipped:     on.Skipped,
			OffWall:     off.Wall,
			OnWall:      on.Wall,
		})
	}
	return res, nil
}

// RenderVerdict prints the experiment summary.
func RenderVerdict(r *VerdictResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "verdict — abstract-interpretation verdict engine\n")
	fmt.Fprintf(&sb, "soundness leg (%d contracts, %d wild):\n", r.Total, r.Wild)
	for _, class := range contractgen.Classes {
		s := r.PerClass[class]
		fmt.Fprintf(&sb, "  %-14s neg=%-3d pos=%-3d unknown=%-3d violations neg=%d pos=%d\n",
			class, s.ProvenNeg, s.ProvenPos, s.Unknown, s.NegViolations, s.PosViolations)
	}
	fmt.Fprintf(&sb, "precision leg: %d/%d wild (contract, class) verdicts decided (%.0f%%, need ≥30%%); %d/%d contracts fully resolved\n",
		r.WildDecided, r.Wild*len(contractgen.Classes), 100*r.Resolution(), r.WildResolved, r.Wild)
	fmt.Fprintf(&sb, "campaign leg:\n")
	for _, run := range r.Runs {
		fmt.Fprintf(&sb, "  workers=%d: findings digests identical=%v, %d skipped, wall off %.2fs, on %.2fs\n",
			run.Workers, run.DigestMatch, run.Skipped, run.OffWall.Seconds(), run.OnWall.Seconds())
	}
	if r.Passed() {
		fmt.Fprintf(&sb, "verdict: PASS — zero soundness violations, %.0f%% wild resolution, byte-identical findings\n",
			100*r.Resolution())
	} else {
		fmt.Fprintf(&sb, "verdict: FAIL — violations neg=%d pos=%d, resolution %.0f%% (need ≥30%%), digests identical=%v\n",
			r.NegViolations(), r.PosViolations(), 100*r.Resolution(), r.DigestMatch)
	}
	return sb.String()
}
