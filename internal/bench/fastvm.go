package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/wasm"
	"repro/internal/wasm/exec"
)

// fastvm.go is the decoded-IR engine experiment, run as two legs that hold
// the layer's two contracted properties to a gate at once. `wasai-bench
// -exp fastvm` exits non-zero when either fails.
//
// Leg 1 (campaign differential) fuzzes a generated corpus with the fast
// engine off and on at several worker counts and requires FindingsDigest
// AND StateDigest byte-identical across every run. This is the end-to-end
// determinism contract: the decoded-IR engine may only ever change *how
// fast* a transaction executes, never which trace — and therefore which
// finding — the fuzzer observes.
//
// Leg 2 (throughput differential) drives a compute-heavy module through
// both engines directly at the exec API, counting executed instructions
// via the fuel meter (the engines consume byte-identical fuel on success,
// so one instruction count describes both runs). Wall-clock is the median
// of three legs per engine; the gate requires the decoded-IR engine to
// retire at least 2x the instructions per second of the tree-walker.

// FastVMConfig tunes the fast-engine experiment.
type FastVMConfig struct {
	// DistinctContracts is the number of distinct generated contracts in
	// the campaign leg; each is one campaign job.
	DistinctContracts int
	FuzzIterations    int
	Seed              int64
	// WorkerCounts are the pool sizes the campaign off/on differential
	// runs at.
	WorkerCounts []int
	// HotIters is the loop trip count of the throughput module; each
	// iteration retires a fixed instruction mix (arithmetic, locals,
	// loads, stores, branches).
	HotIters int64
	// Legs is the number of timed runs per engine (the median is used).
	Legs int
}

// DefaultFastVMConfig is the acceptance-gate shape: the campaign leg at
// the 1/4/8 worker counts the determinism suite uses, and a throughput
// module hot enough that per-run noise stays well under the 2x bar.
func DefaultFastVMConfig() FastVMConfig {
	return FastVMConfig{
		DistinctContracts: 8,
		FuzzIterations:    120,
		Seed:              5,
		WorkerCounts:      []int{1, 4, 8},
		HotIters:          400_000,
		Legs:              3,
	}
}

// FastVMWorkerRun is the campaign leg's off/on comparison at one worker
// count.
type FastVMWorkerRun struct {
	Workers int
	// DigestMatch reports whether both runs' FindingsDigest AND
	// StateDigest equal the experiment-wide reference.
	DigestMatch bool
	// OffWall and OnWall time the two campaign runs (reporting-only).
	OffWall, OnWall time.Duration
}

// FastVMThroughputLeg is the engine-level differential on the hot module.
type FastVMThroughputLeg struct {
	// Instructions is the fuel both engines consumed per invocation.
	Instructions int64
	// OffWall and OnWall are the median wall-clock times per invocation.
	OffWall, OnWall time.Duration
	// ResultsMatch reports that both engines returned the same value and
	// consumed the same fuel (a cheap differential ride-along).
	ResultsMatch bool
}

// OffIPS is the tree-walker's instructions per second.
func (l FastVMThroughputLeg) OffIPS() float64 {
	if l.OffWall <= 0 {
		return 0
	}
	return float64(l.Instructions) / l.OffWall.Seconds()
}

// OnIPS is the decoded-IR engine's instructions per second.
func (l FastVMThroughputLeg) OnIPS() float64 {
	if l.OnWall <= 0 {
		return 0
	}
	return float64(l.Instructions) / l.OnWall.Seconds()
}

// Speedup is the throughput ratio (decoded-IR over tree-walker).
func (l FastVMThroughputLeg) Speedup() float64 {
	if l.OffIPS() == 0 {
		return 0
	}
	return l.OnIPS() / l.OffIPS()
}

// FastVMResult aggregates the experiment.
type FastVMResult struct {
	Total int
	Runs  []FastVMWorkerRun
	// DigestMatch is true when every campaign run (off and on, at every
	// worker count) produced one identical pair of digests.
	DigestMatch bool
	// Throughput is the engine-level leg.
	Throughput FastVMThroughputLeg
}

// Passed is the acceptance gate: byte-identical digests at every worker
// count, engine agreement on the hot module, and at least a 2x
// instructions-per-second advantage for the decoded-IR engine.
func (r *FastVMResult) Passed() bool {
	return r.DigestMatch && r.Throughput.ResultsMatch && r.Throughput.Speedup() >= 2.0
}

// EvaluateFastVM runs both legs: the campaign corpus with the fast engine
// off and on at each configured worker count (digest gate), then the hot
// module through both engines (throughput and agreement gate).
func EvaluateFastVM(cfg FastVMConfig) (*FastVMResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	contracts := make([]*contractgen.Contract, 0, cfg.DistinctContracts)
	for d := 0; d < cfg.DistinctContracts; d++ {
		class := memoClasses[d%len(memoClasses)]
		spec := contractgen.RandomSpec(class, d%2 == 0, rng)
		spec.Verification = randomVerification(rng, &spec)
		c, err := contractgen.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("bench: fastvm corpus %d: %w", d, err)
		}
		contracts = append(contracts, c)
	}
	makeJobs := func() []campaign.Job {
		jobs := make([]campaign.Job, len(contracts))
		for i, c := range contracts {
			jobs[i] = campaign.Job{
				Name:   fmt.Sprintf("fastvm-%d", i),
				Module: c.Module,
				ABI:    c.ABI,
				Config: fuzz.Config{
					Iterations:      cfg.FuzzIterations,
					SolverConflicts: 50_000,
					Seed:            cfg.Seed + int64(i),
				},
			}
		}
		return jobs
	}
	workerCounts := cfg.WorkerCounts
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}

	res := &FastVMResult{Total: len(contracts), DigestMatch: true}
	var refFindings, refState string
	for i, workers := range workerCounts {
		off, err := campaign.Run(context.Background(), makeJobs(), campaign.Config{Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("bench: fastvm off (workers=%d): %w", workers, err)
		}
		on, err := campaign.Run(context.Background(), makeJobs(), campaign.Config{Workers: workers, FastVM: true})
		if err != nil {
			return nil, fmt.Errorf("bench: fastvm on (workers=%d): %w", workers, err)
		}
		if i == 0 {
			refFindings, refState = off.FindingsDigest(), off.StateDigest()
		}
		match := off.FindingsDigest() == refFindings && off.StateDigest() == refState &&
			on.FindingsDigest() == refFindings && on.StateDigest() == refState
		if !match {
			res.DigestMatch = false
		}
		res.Runs = append(res.Runs, FastVMWorkerRun{
			Workers:     workers,
			DigestMatch: match,
			OffWall:     off.Wall,
			OnWall:      on.Wall,
		})
	}

	leg, err := evaluateFastVMThroughput(cfg)
	if err != nil {
		return nil, err
	}
	res.Throughput = leg
	return res, nil
}

// hotModule builds the throughput workload: a single exported function
// looping iters times over a mix of local arithmetic, fused-shape operand
// sequences, and memory traffic — the instruction profile of a busy
// contract action, not a synthetic single-opcode spin.
func hotModule(iters int64) (*wasm.Module, error) {
	const (
		locI   = 0 // loop counter
		locAcc = 1 // accumulator (returned)
		locTmp = 2
	)
	body := []wasm.Instr{
		wasm.Loop(),
		// acc += i ^ (acc >> 3)  — mixed dependent arithmetic.
		wasm.LocalGet(locI),
		wasm.LocalGet(locAcc),
		wasm.I64Const(3),
		wasm.Op0(wasm.OpI64ShrU),
		wasm.Op0(wasm.OpI64Xor),
		wasm.LocalGet(locAcc),
		wasm.Op0(wasm.OpI64Add), // fused local.get+local.get+add shape
		wasm.LocalSet(locAcc),
		// mem[16] = acc; tmp = mem[16] * 0x9e3779b9.
		wasm.I32Const(16),
		wasm.LocalGet(locAcc),
		wasm.Store(wasm.OpI64Store, 0),
		wasm.I32Const(16),
		wasm.Load(wasm.OpI64Load, 0),
		wasm.I64Const(0x9e3779b9),
		wasm.Op0(wasm.OpI64Mul),
		wasm.LocalSet(locTmp),
		// acc ^= tmp rotated into the counter lane.
		wasm.LocalGet(locAcc),
		wasm.LocalGet(locTmp),
		wasm.I64Const(17),
		wasm.Op0(wasm.OpI64Rotl),
		wasm.Op0(wasm.OpI64Xor),
		wasm.LocalSet(locAcc),
		// i++; loop while i < iters.
		wasm.LocalGet(locI),
		wasm.I64Const(1),
		wasm.Op0(wasm.OpI64Add),
		wasm.LocalTee(locI),
		wasm.I64Const(iters),
		wasm.Op0(wasm.OpI64LtU),
		wasm.BrIf(0),
		wasm.End(),
		wasm.LocalGet(locAcc),
	}
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	ti := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	m.Funcs = []uint32{ti}
	m.Code = []wasm.Code{{
		Locals: []wasm.LocalDecl{{Count: 3, Type: wasm.I64}},
		Body:   append(body, wasm.End()),
	}}
	m.Exports = []wasm.Export{{Name: "hot", Kind: wasm.ExternalFunc, Index: 0}}
	m.Memories = []wasm.MemType{{Limits: wasm.Limits{Min: 1}}}
	if err := wasm.Validate(m); err != nil {
		return nil, fmt.Errorf("bench: hot module invalid: %v", err)
	}
	return m, nil
}

const hotFuel = int64(1) << 40

// evaluateFastVMThroughput times the hot module on both engines and
// cross-checks their results and fuel.
func evaluateFastVMThroughput(cfg FastVMConfig) (FastVMThroughputLeg, error) {
	iters := cfg.HotIters
	if iters <= 0 {
		iters = 400_000
	}
	legs := cfg.Legs
	if legs <= 0 {
		legs = 3
	}
	m, err := hotModule(iters)
	if err != nil {
		return FastVMThroughputLeg{}, err
	}

	run := func(fast bool) (uint64, int64, time.Duration, error) {
		inst, err := exec.Instantiate(m, nil)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bench: hot instantiate: %w", err)
		}
		var result uint64
		var fuel int64
		walls := make([]time.Duration, 0, legs)
		for l := 0; l < legs; l++ {
			vm := exec.NewVM(inst)
			if fast {
				vm = exec.NewFastVM(inst)
			}
			vm.SetFuel(hotFuel)
			start := time.Now()
			res, err := vm.Invoke("hot")
			walls = append(walls, time.Since(start))
			if err != nil {
				return 0, 0, 0, fmt.Errorf("bench: hot run (fast=%v): %w", fast, err)
			}
			result, fuel = res[0], hotFuel-vm.Fuel()
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		return result, fuel, walls[len(walls)/2], nil
	}

	offRes, offFuel, offWall, err := run(false)
	if err != nil {
		return FastVMThroughputLeg{}, err
	}
	onRes, onFuel, onWall, err := run(true)
	if err != nil {
		return FastVMThroughputLeg{}, err
	}
	return FastVMThroughputLeg{
		Instructions: offFuel,
		OffWall:      offWall,
		OnWall:       onWall,
		ResultsMatch: offRes == onRes && offFuel == onFuel,
	}, nil
}

// RenderFastVM prints the experiment summary.
func RenderFastVM(r *FastVMResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fastvm — decoded-IR engine differential\n")
	fmt.Fprintf(&sb, "campaign leg (%d contracts):\n", r.Total)
	for _, run := range r.Runs {
		fmt.Fprintf(&sb, "  workers=%d: digests identical=%v, wall off %.2fs, on %.2fs\n",
			run.Workers, run.DigestMatch, run.OffWall.Seconds(), run.OnWall.Seconds())
	}
	t := r.Throughput
	fmt.Fprintf(&sb, "throughput leg (%d instructions/run, median of runs):\n", t.Instructions)
	fmt.Fprintf(&sb, "  tree-walker %.1fM instr/s (%.1fms), decoded-IR %.1fM instr/s (%.1fms)\n",
		t.OffIPS()/1e6, float64(t.OffWall.Microseconds())/1e3,
		t.OnIPS()/1e6, float64(t.OnWall.Microseconds())/1e3)
	fmt.Fprintf(&sb, "  result+fuel agreement=%v, speedup %.2fx\n", t.ResultsMatch, t.Speedup())
	if r.Passed() {
		fmt.Fprintf(&sb, "fastvm: PASS — byte-identical digests, engine agreement, %.2fx throughput (need ≥2x)\n", t.Speedup())
	} else {
		fmt.Fprintf(&sb, "fastvm: FAIL — digests identical=%v, agreement=%v, speedup %.2fx (need ≥2x)\n",
			r.DigestMatch, t.ResultsMatch, t.Speedup())
	}
	return sb.String()
}
