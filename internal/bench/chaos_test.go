package bench

import (
	"strings"
	"testing"
)

func TestEvaluateChaosPasses(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.NumContracts = 12
	cfg.FuzzIterations = 40
	res, err := EvaluateChaos(cfg)
	if err != nil {
		t.Fatalf("EvaluateChaos: %v", err)
	}
	if res.Faulted == 0 {
		t.Fatal("plan faulted no jobs; the experiment is vacuous")
	}
	if !res.Passed() {
		t.Fatalf("chaos failed: %d terminal failures, %d verdict mismatches",
			res.TerminalFailures, res.VerdictMismatches)
	}
	out := RenderChaos(res)
	if !strings.Contains(out, "chaos: PASS") {
		t.Fatalf("render missing PASS line:\n%s", out)
	}
}
