package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
)

// servechaos.go is the daemon-resilience experiment: it stands up the
// wasai-serve engine in-process, floods it past its admission limits
// with fault-injected campaign specs from several tenants, and checks
// the service contract end to end:
//
//  1. saturation sheds with 429 + Retry-After instead of queueing
//     unboundedly, and tenants are isolated (a flooding tenant cannot
//     starve the others out of admission);
//  2. every admitted job completes and its findings digest is
//     byte-identical to an offline campaign.Run of the same spec —
//     shedding, multi-tenant scheduling, WAL checkpointing and the
//     durable memo store perturb nothing;
//  3. the specs carry fault injection with retry-with-degradation, so
//     the whole chaos path rides under the service too.
//
// `make serve-chaos` wires this into the repo's verify gate.

// ServeChaosConfig tunes the experiment.
type ServeChaosConfig struct {
	// Tenants submit Burst specs each; each spec is a campaign of
	// NumContracts contracts fuzzed for FuzzIterations.
	Tenants      int
	Burst        int
	NumContracts int
	// FuzzIterations is the per-contract budget; Workers the campaign
	// pool size inside each job.
	FuzzIterations int
	Workers        int
	Seed           int64
	// FaultRate is the fraction of contracts whose first attempt is
	// faulted (with MaxAttempts retries available).
	FaultRate   float64
	MaxAttempts int
	// TenantMaxQueued is the per-tenant admission limit; the burst
	// exceeds it so shedding must engage.
	TenantMaxQueued int
	// StoreDir, when non-empty, attaches the durable memo store (the
	// default uses a temporary directory).
	StoreDir string
}

// DefaultServeChaosConfig is the verify-gate smoke shape: three tenants
// each bursting past a two-deep queue, 20% fault injection.
func DefaultServeChaosConfig() ServeChaosConfig {
	return ServeChaosConfig{
		Tenants:         3,
		Burst:           5,
		NumContracts:    6,
		FuzzIterations:  50,
		Seed:            13,
		FaultRate:       0.2,
		MaxAttempts:     3,
		TenantMaxQueued: 2,
	}
}

// ServeChaosResult reports how the daemon behaved under the flood.
type ServeChaosResult struct {
	Tenants   int
	Submitted int
	Admitted  int
	Shed      int
	// ShedWithoutRetryAfter counts 429 responses missing the header —
	// a contract violation.
	ShedWithoutRetryAfter int
	// TenantsAdmitted counts tenants that got at least one job through —
	// tenant isolation means all of them.
	TenantsAdmitted int
	Completed       int
	Failed          int
	// DigestMismatches counts admitted jobs whose findings digest
	// diverged from the offline reference run of the same spec.
	DigestMismatches int
	// StoreHits/StoreWrites are the durable store's traffic (reported
	// via /stats, proving the disk tier rode along).
	StoreHits, StoreWrites int64
}

// Passed reports whether the daemon honoured the service contract.
func (r *ServeChaosResult) Passed() bool {
	return r.Shed > 0 &&
		r.ShedWithoutRetryAfter == 0 &&
		r.Admitted > 0 &&
		r.TenantsAdmitted == r.Tenants &&
		r.Failed == 0 &&
		r.DigestMismatches == 0
}

// EvaluateServeChaos runs the experiment.
func EvaluateServeChaos(cfg ServeChaosConfig) (*ServeChaosResult, error) {
	dataDir, err := os.MkdirTemp("", "wasai-servechaos")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dataDir)
	storeDir := cfg.StoreDir
	if storeDir == "" {
		storeDir = dataDir + "/store"
	}

	s, err := serve.New(serve.Config{
		DataDir: dataDir,
		Limits: serve.Limits{
			MaxRunning:       2,
			TenantMaxRunning: 1,
			TenantMaxQueued:  cfg.TenantMaxQueued,
			RetryAfter:       2 * time.Second,
		},
		StoreDir: storeDir,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mkSpec := func(tenant, i int) serve.JobSpec {
		return serve.JobSpec{
			Tenant:      fmt.Sprintf("tenant-%d", tenant),
			Name:        fmt.Sprintf("t%d-job%d", tenant, i),
			Contracts:   cfg.NumContracts,
			Seed:        cfg.Seed + int64(tenant*1000+i),
			Iterations:  cfg.FuzzIterations,
			Workers:     cfg.Workers,
			FaultRate:   cfg.FaultRate,
			MaxAttempts: cfg.MaxAttempts,
			Memo:        "shared",
		}
	}

	// Phase 1: burst every tenant before the scheduler starts, so
	// admission decisions are a pure function of the limits.
	res := &ServeChaosResult{Tenants: cfg.Tenants}
	admitted := map[int]serve.JobSpec{}
	tenantsIn := map[int]bool{}
	for tenant := 0; tenant < cfg.Tenants; tenant++ {
		for i := 0; i < cfg.Burst; i++ {
			spec := mkSpec(tenant, i)
			res.Submitted++
			b, err := json.Marshal(spec)
			if err != nil {
				return nil, err
			}
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(b))
			if err != nil {
				return nil, err
			}
			switch resp.StatusCode {
			case http.StatusAccepted:
				var out map[string]int
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					resp.Body.Close()
					return nil, err
				}
				admitted[out["id"]] = spec
				tenantsIn[tenant] = true
			case http.StatusTooManyRequests:
				res.Shed++
				if resp.Header.Get("Retry-After") == "" {
					res.ShedWithoutRetryAfter++
				}
			default:
				resp.Body.Close()
				return nil, fmt.Errorf("bench: servechaos: unexpected status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}
	res.Admitted = len(admitted)
	res.TenantsAdmitted = len(tenantsIn)

	// Phase 2: run the admitted jobs to completion, then drain.
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx) }()
	for id, spec := range admitted {
		st, err := waitJob(ts.URL, id, 5*time.Minute)
		if err != nil {
			cancel()
			<-runDone
			return nil, err
		}
		if st.Status != serve.StatusCompleted {
			res.Failed++
			continue
		}
		res.Completed++
		ref, err := serve.RunSpec(context.Background(), spec, "", false, nil)
		if err != nil {
			cancel()
			<-runDone
			return nil, fmt.Errorf("bench: servechaos reference: %w", err)
		}
		if st.FindingsDigest != ref.FindingsDigest() {
			res.DigestMismatches++
		}
	}

	var stats serve.StatsReport
	if err := getJSONURL(ts.URL+"/stats", &stats); err == nil && stats.Store != nil {
		res.StoreHits = stats.Store.Hits
		res.StoreWrites = stats.Store.Writes
	}
	cancel()
	if err := <-runDone; err != nil {
		return nil, fmt.Errorf("bench: servechaos drain: %w", err)
	}
	return res, nil
}

func waitJob(base string, id int, timeout time.Duration) (serve.JobState, error) {
	deadline := time.Now().Add(timeout) //wasai:nondet experiment polling deadline
	for {
		var st serve.JobState
		if err := getJSONURL(fmt.Sprintf("%s/jobs/%d", base, id), &st); err != nil {
			return st, err
		}
		if st.Finished() {
			return st, nil
		}
		if time.Now().After(deadline) { //wasai:nondet experiment polling deadline
			return st, fmt.Errorf("bench: servechaos: job %d not finished after %v", id, timeout)
		}
		time.Sleep(20 * time.Millisecond) //wasai:nondet experiment polling
	}
}

func getJSONURL(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bench: servechaos: GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// RenderServeChaos prints the experiment summary.
func RenderServeChaos(r *ServeChaosResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "servechaos — daemon admission control + digest identity under flood\n")
	fmt.Fprintf(&sb, "submitted: %d  admitted: %d  shed(429): %d (missing Retry-After: %d)\n",
		r.Submitted, r.Admitted, r.Shed, r.ShedWithoutRetryAfter)
	fmt.Fprintf(&sb, "tenants with admitted work: %d/%d\n", r.TenantsAdmitted, r.Tenants)
	fmt.Fprintf(&sb, "completed: %d  failed: %d  digest mismatches vs offline reference: %d\n",
		r.Completed, r.Failed, r.DigestMismatches)
	fmt.Fprintf(&sb, "durable store: hits=%d writes=%d\n", r.StoreHits, r.StoreWrites)
	if r.Passed() {
		sb.WriteString("PASS: shed under saturation, all admitted digests identical\n")
	} else {
		sb.WriteString("FAIL\n")
	}
	return sb.String()
}
