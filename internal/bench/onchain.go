package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
)

// onchain.go is the on-chain-data oracle gate, run as `wasai-bench -exp
// onchain`. It drives every injected-vulnerability fixture — both
// polarities of all oracle classes, plus the intrinsic-free boilerplate
// contract — through full campaigns and holds two properties to a gate:
//
//   - exact precision and recall per class against the generator's ground
//     truth: no false negative on any injected fixture and no false
//     positive on any clean one (which subsumes any fractional floor);
//   - byte-identical findings digests across worker counts, so the
//     scenario oracles (state tampering, ordering dependence, inter-
//     contract calls) inherit the determinism contract of the trace
//     oracles.

// OnChainConfig tunes the on-chain-data oracle experiment.
type OnChainConfig struct {
	FuzzIterations int
	Seed           int64
	// WorkerCounts are the pool sizes the digest invariance runs at.
	WorkerCounts []int
}

// DefaultOnChainConfig is the acceptance-gate shape: the full fixture
// matrix at the determinism suite's 1/4/8 worker counts.
func DefaultOnChainConfig() OnChainConfig {
	return OnChainConfig{FuzzIterations: 160, Seed: 7, WorkerCounts: []int{1, 4, 8}}
}

// OnChainClassStats scores one oracle class over the fixture matrix.
type OnChainClassStats struct {
	TP, FP, FN int
}

// OnChainResult aggregates the experiment.
type OnChainResult struct {
	// Fixtures is the population size (injected matrix + boilerplate).
	Fixtures int
	// PerClass holds the per-class precision/recall counts, scored on the
	// first worker count's run.
	PerClass map[contractgen.Class]*OnChainClassStats
	// Runs records each worker count with its wall time; DigestMatch is
	// true when every run's FindingsDigest equals the first run's.
	Runs []struct {
		Workers int
		Wall    time.Duration
	}
	DigestMatch bool
}

// Violations sums false positives and false negatives over all classes.
func (r *OnChainResult) Violations() int {
	n := 0
	for _, s := range r.PerClass {
		n += s.FP + s.FN
	}
	return n
}

// Passed is the acceptance gate: perfect per-class precision and recall, a
// live oracle for every class (at least one true positive), and
// byte-identical findings digests at every worker count.
func (r *OnChainResult) Passed() bool {
	if !r.DigestMatch || r.Violations() != 0 {
		return false
	}
	for _, class := range contractgen.Classes {
		if r.PerClass[class].TP == 0 {
			return false
		}
	}
	return true
}

// onchainExpected is the ground-truth verdict vector for one injected
// single-class fixture: the fixture's own class matches its Vulnerable
// flag, everything else is false — except that single-class Rollback
// samples derive the lottery outcome from tapos (the paper's Listing 4),
// so both Rollback polarities legitimately show BlockinfoDep.
func onchainExpected(spec contractgen.Spec) map[contractgen.Class]bool {
	want := map[contractgen.Class]bool{}
	want[spec.Class] = spec.Vulnerable
	if spec.Class == contractgen.ClassRollback {
		want[contractgen.ClassBlockinfoDep] = true
	}
	return want
}

// EvaluateOnChain runs the gate.
func EvaluateOnChain(cfg OnChainConfig) (*OnChainResult, error) {
	type fixture struct {
		name string
		c    *contractgen.Contract
		want map[contractgen.Class]bool
	}
	var fixtures []fixture
	for _, class := range contractgen.Classes {
		for _, vul := range []bool{true, false} {
			spec := contractgen.Spec{Class: class, Vulnerable: vul, Seed: cfg.Seed}
			c, err := contractgen.Generate(spec)
			if err != nil {
				return nil, fmt.Errorf("bench: onchain fixture %v/%v: %w", class, vul, err)
			}
			fixtures = append(fixtures, fixture{
				name: fmt.Sprintf("%s-vul=%v", class, vul),
				c:    c,
				want: onchainExpected(spec),
			})
		}
	}
	fixtures = append(fixtures, fixture{
		name: "trivial",
		c:    contractgen.Trivial(),
		want: map[contractgen.Class]bool{},
	})

	makeJobs := func() []campaign.Job {
		jobs := make([]campaign.Job, len(fixtures))
		for i, fx := range fixtures {
			jobs[i] = campaign.Job{
				Name:   fx.name,
				Module: fx.c.Module,
				ABI:    fx.c.ABI,
				Config: fuzz.Config{Iterations: cfg.FuzzIterations, SolverConflicts: 50_000},
			}
		}
		return jobs
	}

	res := &OnChainResult{
		Fixtures:    len(fixtures),
		PerClass:    map[contractgen.Class]*OnChainClassStats{},
		DigestMatch: true,
	}
	for _, class := range contractgen.Classes {
		res.PerClass[class] = &OnChainClassStats{}
	}

	workerCounts := cfg.WorkerCounts
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}
	var refDigest string
	for i, workers := range workerCounts {
		rep, err := campaign.Run(context.Background(), makeJobs(), campaign.Config{
			Workers: workers, BaseSeed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: onchain campaign (workers=%d): %w", workers, err)
		}
		res.Runs = append(res.Runs, struct {
			Workers int
			Wall    time.Duration
		}{Workers: workers, Wall: rep.Wall})
		if i == 0 {
			refDigest = rep.FindingsDigest()
			for _, jr := range rep.Results {
				if jr.Err != nil {
					return nil, fmt.Errorf("bench: onchain job %q: %w", jr.Job.Name, jr.Err)
				}
				fx := fixtures[jr.Job.ID]
				for _, class := range contractgen.Classes {
					got, want := jr.Result.Report.Vulnerable[class], fx.want[class]
					switch {
					case got && want:
						res.PerClass[class].TP++
					case got && !want:
						res.PerClass[class].FP++
					case !got && want:
						res.PerClass[class].FN++
					}
				}
			}
			continue
		}
		if rep.FindingsDigest() != refDigest {
			res.DigestMatch = false
		}
	}
	return res, nil
}

// RenderOnChain prints the experiment summary.
func RenderOnChain(r *OnChainResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "onchain — on-chain-data oracle families (injected-fixture P/R gate)\n")
	fmt.Fprintf(&sb, "fixture matrix: %d contracts (every class, both polarities, plus boilerplate)\n", r.Fixtures)
	for _, class := range contractgen.Classes {
		s := r.PerClass[class]
		fmt.Fprintf(&sb, "  %-14s tp=%-2d fp=%-2d fn=%-2d\n", class, s.TP, s.FP, s.FN)
	}
	for _, run := range r.Runs {
		fmt.Fprintf(&sb, "workers=%d: wall %.2fs\n", run.Workers, run.Wall.Seconds())
	}
	if r.Passed() {
		fmt.Fprintf(&sb, "onchain: PASS — perfect per-class precision/recall, byte-identical findings across worker counts\n")
	} else {
		fmt.Fprintf(&sb, "onchain: FAIL — %d P/R violations, digests identical=%v\n",
			r.Violations(), r.DigestMatch)
	}
	return sb.String()
}
