package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/static"
)

// TriageConfig tunes EvaluateTriage.
type TriageConfig struct {
	EvalConfig
	// TrivialContracts appends this many action-less contracts (exported
	// apply, no dispatch table, no effectful host calls) to the corpus.
	// Every generated benchmark contract uses call_indirect dispatch and so
	// is a Fake EOS/Notif candidate; the trivial padding is what gives the
	// triage pass provably-negative jobs to skip, mimicking the large
	// fraction of boilerplate contracts in a wild population.
	TrivialContracts int
}

// DefaultTriageConfig mirrors DefaultEvalConfig with enough trivial padding
// to measure the skip path.
func DefaultTriageConfig() TriageConfig {
	return TriageConfig{EvalConfig: DefaultEvalConfig(), TrivialContracts: 8}
}

// TriageResult reports the static-vs-dynamic agreement experiment: the same
// corpus fuzzed with triage off and on.
type TriageResult struct {
	// Samples is the corpus size (dataset samples + trivial padding);
	// Skipped how many jobs triage answered statically.
	Samples, Skipped int
	// DigestMatch is the acceptance gate: the findings digests of the two
	// runs are byte-identical (triage never changes findings).
	DigestMatch bool
	// BaselineWall and TriageWall are the two campaigns' wall-clock times.
	BaselineWall, TriageWall time.Duration
	// PerClass scores the static candidate flag against the dynamic oracle
	// per class: truth = the fuzzer flagged the class, flagged = the static
	// candidate was set. Recall must be 1.0 — a dynamic finding without its
	// candidate flag would mean an unsound skip condition.
	PerClass map[contractgen.Class]Counts
	// Total merges PerClass.
	Total Counts
}

// Speedup returns baseline wall / triage wall (>1 means triage saved time).
func (r *TriageResult) Speedup() float64 {
	if r.TriageWall <= 0 {
		return 0
	}
	return float64(r.BaselineWall) / float64(r.TriageWall)
}

// String renders the report in the style of the accuracy tables.
func (r *TriageResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "static triage: %d contracts, %d skipped, digest match=%v\n",
		r.Samples, r.Skipped, r.DigestMatch)
	fmt.Fprintf(&sb, "  wall: baseline %.2fs, triage %.2fs (%.2fx)\n",
		r.BaselineWall.Seconds(), r.TriageWall.Seconds(), r.Speedup())
	fmt.Fprintf(&sb, "  %-14s %9s %9s\n", "candidates", "precision", "recall")
	for _, class := range contractgen.Classes {
		c := r.PerClass[class]
		fmt.Fprintf(&sb, "  %-14s %8.1f%% %8.1f%%\n", class, 100*c.Precision(), 100*c.Recall())
	}
	fmt.Fprintf(&sb, "  %-14s %8.1f%% %8.1f%%\n", "overall", 100*r.Total.Precision(), 100*r.Total.Recall())
	return sb.String()
}

// EvaluateTriage fuzzes the corpus twice — triage off, then on — and scores
// the static candidate flags against the dynamic verdicts of the baseline
// run. It is the evaluation the static layer is held to: the pass is
// measured (precision/recall/wall-clock), not just trusted.
func EvaluateTriage(ctx context.Context, ds *Dataset, cfg TriageConfig) (*TriageResult, error) {
	var jobs []campaign.Job
	fcfg := fuzz.Config{Iterations: cfg.FuzzIterations, SolverConflicts: cfg.SolverConflicts}
	for _, s := range ds.Samples {
		jobs = append(jobs, campaign.Job{
			Name:   fmt.Sprintf("%s-%d", s.Class, s.ID),
			Module: s.Contract.Module,
			ABI:    s.Contract.ABI,
			Config: fcfg,
		})
	}
	for i := 0; i < cfg.TrivialContracts; i++ {
		c := contractgen.Trivial()
		jobs = append(jobs, campaign.Job{
			Name:   fmt.Sprintf("trivial-%d", i),
			Module: c.Module,
			ABI:    c.ABI,
			Config: fcfg,
		})
	}

	// Memo (inherited from EvalConfig) applies to both legs: the digest
	// gate below then also witnesses cache-on findings invariance.
	ccfg := campaign.Config{Workers: cfg.Workers, BaseSeed: cfg.Seed, Memo: cfg.Memo, Incremental: cfg.Incremental, FastVM: cfg.FastVM, Verdicts: cfg.Verdicts}
	baseline, err := campaign.Run(ctx, jobs, ccfg)
	if err != nil {
		return nil, fmt.Errorf("bench: triage baseline: %w", err)
	}
	ccfg.StaticTriage = true
	triaged, err := campaign.Run(ctx, jobs, ccfg)
	if err != nil {
		return nil, fmt.Errorf("bench: triage run: %w", err)
	}

	res := &TriageResult{
		Samples:      len(jobs),
		Skipped:      triaged.Skipped,
		DigestMatch:  baseline.FindingsDigest() == triaged.FindingsDigest(),
		BaselineWall: baseline.Wall,
		TriageWall:   triaged.Wall,
		PerClass:     map[contractgen.Class]Counts{},
	}
	// Score the candidate flags against the baseline's dynamic verdicts.
	for _, jr := range baseline.Results {
		if jr.Err != nil {
			continue
		}
		rep, err := static.Analyze(jr.Job.Module)
		if err != nil {
			continue
		}
		for _, class := range contractgen.Classes {
			c := res.PerClass[class]
			c.Add(jr.Result.Report.Vulnerable[class], rep.Candidates[class])
			res.PerClass[class] = c
		}
	}
	res.Total = Total(res.PerClass)
	return res, nil
}
