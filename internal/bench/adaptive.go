package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/campaign"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/schedule"
	"repro/internal/wal"
)

// adaptive.go is the adaptive-scheduling experiment behind `wasai-bench
// -exp adaptive` (part of `make verify`). It holds the scheduling layer to
// its three contracted properties at once:
//
// Leg 1 (budget differential) fuzzes several generated corpora with the
// schedule off and on under the SAME per-contract iteration budget. The
// gate requires that, on every corpus, the adaptive run explores at least
// as many branches and scores at least as many TRUE positives against the
// generator's ground truth as the static round-robin — and that at least
// one corpus is STRICTLY better on coverage, so the layer demonstrably
// buys something. Findings are scored against ground truth rather than as
// raw flag counts because deeper exploration can legitimately RETRACT a
// static false positive: the timeout-closed Fake Notif oracle flags any
// contract whose guard was never observed, and a static run that never
// solves the verification branches in front of a real `to != _self` guard
// flags a guarded contract that the adaptive run correctly exonerates.
// The adaptive run may execute fewer iterations (saturation returns fuel
// the ledger could not place), never more.
//
// Leg 2 (determinism) repeats one corpus' adaptive campaign at several
// worker counts and requires byte-identical state digests: every
// scheduling decision is a pure function of (seed, observed coverage), so
// worker scheduling must be invisible.
//
// Leg 3 (kill+resume) journals an adaptive campaign, truncates the journal
// to a prefix — the durable state an actual SIGKILL leaves behind — and
// resumes. The resumed run must replay the prefix, re-run the rest, and
// converge on the uninterrupted run's state digest, proving the fuel
// ledger reconstructs identical grants from journaled phase-1 summaries.

// AdaptiveConfig tunes the adaptive-scheduling experiment.
type AdaptiveConfig struct {
	// Corpora is how many independent corpora the off/on budget
	// differential compares; ContractsPerCorpus sizes each.
	Corpora            int
	ContractsPerCorpus int
	// FuzzIterations is the per-contract budget of BOTH legs of the
	// differential — the comparison is work-normalized by construction.
	FuzzIterations int
	Seed           int64
	// Workers is the pool size of the differential legs; WorkerCounts are
	// the pool sizes of the adaptive digest-identity leg.
	WorkerCounts []int
	Workers      int
	// SaturationWindow overrides the adaptive saturation horizon
	// (0 = engine default).
	SaturationWindow int
	// JournalDir receives the kill+resume leg's journal ("" = a temp dir).
	JournalDir string
}

// DefaultAdaptiveConfig is the acceptance-gate shape: three corpora over
// the verification-heavy class mix (branchy contracts where steering has
// room to matter) and the 1/4/8 worker counts of the determinism suite.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Corpora:            3,
		ContractsPerCorpus: 8,
		FuzzIterations:     160,
		Seed:               11,
		WorkerCounts:       []int{1, 4, 8},
		Workers:            4,
	}
}

// AdaptiveCorpusRun is one corpus' off/on comparison.
type AdaptiveCorpusRun struct {
	Corpus int
	// StaticCoverage / AdaptiveCoverage sum distinct branches per job.
	StaticCoverage, AdaptiveCoverage int
	// StaticTP / AdaptiveTP count contracts whose own-class verdict matches
	// a vulnerable ground truth; StaticFP / AdaptiveFP count own-class
	// flags on safe contracts (the metric the accuracy tables use, so a
	// retracted false positive is an improvement, not a lost finding).
	StaticTP, AdaptiveTP int
	StaticFP, AdaptiveFP int
	// StaticIters / AdaptiveIters sum executed iterations (the adaptive
	// side may be lower — returned fuel the ledger could not place).
	StaticIters, AdaptiveIters int
	// Sched is the adaptive run's scheduler-counter total.
	Sched schedule.Counters
}

// AdaptiveResult aggregates the experiment.
type AdaptiveResult struct {
	Runs []AdaptiveCorpusRun
	// DigestMatch is the determinism leg: adaptive state digests identical
	// at every worker count (on the first corpus).
	DigestMatch bool
	// ResumeMatch is the kill+resume leg: the resumed adaptive campaign's
	// state digest equals the uninterrupted one's; ResumeReplayed counts
	// the journal-replayed jobs (must be >0 for the leg to mean anything).
	ResumeMatch    bool
	ResumeReplayed int
}

// CoverageNeverWorse reports leg-1's floor: every corpus' adaptive
// coverage ≥ its static coverage.
func (r *AdaptiveResult) CoverageNeverWorse() bool {
	for _, run := range r.Runs {
		if run.AdaptiveCoverage < run.StaticCoverage {
			return false
		}
	}
	return true
}

// FindingsNeverWorse reports that no corpus lost a true positive: every
// ground-truth vulnerability the static schedule found, the adaptive
// schedule found too.
func (r *AdaptiveResult) FindingsNeverWorse() bool {
	for _, run := range r.Runs {
		if run.AdaptiveTP < run.StaticTP {
			return false
		}
	}
	return true
}

// StrictlyBetter reports that at least one corpus gained coverage.
func (r *AdaptiveResult) StrictlyBetter() bool {
	for _, run := range r.Runs {
		if run.AdaptiveCoverage > run.StaticCoverage {
			return true
		}
	}
	return false
}

// BudgetRespected reports that no corpus executed more iterations
// adaptively than statically (equal configured budgets; saturation may
// only return fuel, never mint it).
func (r *AdaptiveResult) BudgetRespected() bool {
	for _, run := range r.Runs {
		if run.AdaptiveIters > run.StaticIters {
			return false
		}
	}
	return true
}

// Passed is the acceptance gate.
func (r *AdaptiveResult) Passed() bool {
	return r.CoverageNeverWorse() && r.FindingsNeverWorse() && r.StrictlyBetter() &&
		r.BudgetRespected() && r.DigestMatch && r.ResumeMatch && r.ResumeReplayed > 0
}

// adaptiveTruth is one corpus contract's ground truth: the class it was
// generated for and whether that class's vulnerability is reachable.
type adaptiveTruth struct {
	Class contractgen.Class
	Truth bool
}

// adaptiveCorpus draws one corpus: the verification-heavy mix the memo and
// fastvm experiments use, where branch structure is rich enough that
// steering the budget can matter. The returned truths parallel the
// contracts, so leg 1 can score verdicts the way the accuracy tables do.
func adaptiveCorpus(cfg AdaptiveConfig, corpus int) ([]*contractgen.Contract, []adaptiveTruth, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*corpus)))
	contracts := make([]*contractgen.Contract, 0, cfg.ContractsPerCorpus)
	truths := make([]adaptiveTruth, 0, cfg.ContractsPerCorpus)
	for d := 0; d < cfg.ContractsPerCorpus; d++ {
		class := contractgen.Classes[(corpus+d)%len(contractgen.Classes)]
		spec := contractgen.RandomSpec(class, d%2 == 0, rng)
		spec.Verification = randomVerification(rng, &spec)
		c, err := contractgen.Generate(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: adaptive corpus %d/%d: %w", corpus, d, err)
		}
		contracts = append(contracts, c)
		truths = append(truths, adaptiveTruth{Class: spec.Class, Truth: spec.GroundTruth()})
	}
	return contracts, truths, nil
}

// scoreAdaptive tallies own-class true/false positives for one run.
func scoreAdaptive(rep *campaign.Report, truths []adaptiveTruth) (tp, fp int, err error) {
	for i, jr := range rep.Results {
		if jr.Err != nil {
			return 0, 0, jr.Err
		}
		verdict := jr.Result.Report.Vulnerable[truths[i].Class]
		switch {
		case verdict && truths[i].Truth:
			tp++
		case verdict && !truths[i].Truth:
			fp++
		}
	}
	return tp, fp, nil
}

// adaptiveJobs lays a corpus out as campaign jobs under one fixed budget.
func adaptiveJobs(cfg AdaptiveConfig, corpus int, contracts []*contractgen.Contract) []campaign.Job {
	jobs := make([]campaign.Job, len(contracts))
	for i, c := range contracts {
		jobs[i] = campaign.Job{
			Name:   fmt.Sprintf("adaptive-%d-%d", corpus, i),
			Module: c.Module,
			ABI:    c.ABI,
			Config: fuzz.Config{
				Iterations:      cfg.FuzzIterations,
				SolverConflicts: 50_000,
				Seed:            cfg.Seed + int64(100*corpus+i),
			},
		}
	}
	return jobs
}

// coverageSum totals per-job distinct branches (jobs with errors fail the
// experiment before this is read).
func coverageSum(rep *campaign.Report) (int, error) {
	total := 0
	for _, jr := range rep.Results {
		if jr.Err != nil {
			return 0, jr.Err
		}
		total += jr.Result.Coverage
	}
	return total, nil
}

// EvaluateAdaptive runs all three legs.
func EvaluateAdaptive(cfg AdaptiveConfig) (*AdaptiveResult, error) {
	workerCounts := cfg.WorkerCounts
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}
	res := &AdaptiveResult{DigestMatch: true}
	var firstCorpus []*contractgen.Contract
	for c := 0; c < cfg.Corpora; c++ {
		contracts, truths, err := adaptiveCorpus(cfg, c)
		if err != nil {
			return nil, err
		}
		if c == 0 {
			firstCorpus = contracts
		}
		static, err := campaign.Run(context.Background(), adaptiveJobs(cfg, c, contracts),
			campaign.Config{Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("bench: adaptive static corpus %d: %w", c, err)
		}
		adaptive, err := campaign.Run(context.Background(), adaptiveJobs(cfg, c, contracts),
			campaign.Config{Workers: cfg.Workers, Adaptive: true, SaturationWindow: cfg.SaturationWindow})
		if err != nil {
			return nil, fmt.Errorf("bench: adaptive on corpus %d: %w", c, err)
		}
		scov, err := coverageSum(static)
		if err != nil {
			return nil, fmt.Errorf("bench: adaptive static corpus %d: %w", c, err)
		}
		acov, err := coverageSum(adaptive)
		if err != nil {
			return nil, fmt.Errorf("bench: adaptive on corpus %d: %w", c, err)
		}
		stp, sfp, err := scoreAdaptive(static, truths)
		if err != nil {
			return nil, fmt.Errorf("bench: adaptive static corpus %d: %w", c, err)
		}
		atp, afp, err := scoreAdaptive(adaptive, truths)
		if err != nil {
			return nil, fmt.Errorf("bench: adaptive on corpus %d: %w", c, err)
		}
		res.Runs = append(res.Runs, AdaptiveCorpusRun{
			Corpus:           c,
			StaticCoverage:   scov,
			AdaptiveCoverage: acov,
			StaticTP:         stp,
			AdaptiveTP:       atp,
			StaticFP:         sfp,
			AdaptiveFP:       afp,
			StaticIters:      static.Iterations,
			AdaptiveIters:    adaptive.Iterations,
			Sched:            adaptive.Sched,
		})
	}

	// Leg 2: worker-count digest identity on the first corpus.
	var refState string
	for i, workers := range workerCounts {
		rep, err := campaign.Run(context.Background(), adaptiveJobs(cfg, 0, firstCorpus),
			campaign.Config{Workers: workers, Adaptive: true, SaturationWindow: cfg.SaturationWindow})
		if err != nil {
			return nil, fmt.Errorf("bench: adaptive workers=%d: %w", workers, err)
		}
		if i == 0 {
			refState = rep.StateDigest()
		} else if rep.StateDigest() != refState {
			res.DigestMatch = false
		}
	}

	// Leg 3: kill+resume on the first corpus.
	dir := cfg.JournalDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "wasai-adaptive")
		if err != nil {
			return nil, fmt.Errorf("bench: adaptive journal dir: %w", err)
		}
		defer os.RemoveAll(dir)
	}
	journal := filepath.Join(dir, "adaptive.jsonl")
	acfg := campaign.Config{Workers: cfg.Workers, Adaptive: true,
		SaturationWindow: cfg.SaturationWindow, Journal: journal, JournalSync: 1}
	full, err := campaign.Run(context.Background(), adaptiveJobs(cfg, 0, firstCorpus), acfg)
	if err != nil {
		return nil, fmt.Errorf("bench: adaptive journaled run: %w", err)
	}
	// Truncate the journal to its first half — exactly the durable prefix a
	// SIGKILL after N synced records leaves behind (torn tails are the
	// WAL's own tests' business; here the cut is clean by construction).
	if err := truncateJournal(journal, len(firstCorpus)/2); err != nil {
		return nil, err
	}
	rcfg := acfg
	rcfg.Resume = true
	resumed, err := campaign.Run(context.Background(), adaptiveJobs(cfg, 0, firstCorpus), rcfg)
	if err != nil {
		return nil, fmt.Errorf("bench: adaptive resumed run: %w", err)
	}
	res.ResumeReplayed = resumed.Replayed
	res.ResumeMatch = resumed.StateDigest() == full.StateDigest() && full.StateDigest() == refState
	return res, nil
}

// truncateJournal rewrites a WAL journal keeping only its first keep
// records, preserving the header meta (the base-seed pin).
func truncateJournal(path string, keep int) error {
	log, replay, err := wal.Open(path, wal.Options{})
	if err != nil {
		return fmt.Errorf("bench: adaptive journal truncate: %w", err)
	}
	log.Close()
	if keep > len(replay.Records) {
		keep = len(replay.Records)
	}
	out, err := wal.Create(path, wal.Options{Meta: replay.Meta, SyncEvery: 1})
	if err != nil {
		return fmt.Errorf("bench: adaptive journal truncate: %w", err)
	}
	for _, rec := range replay.Records[:keep] {
		if err := out.Append(rec); err != nil {
			out.Close()
			return fmt.Errorf("bench: adaptive journal truncate: %w", err)
		}
	}
	return out.Close()
}

// RenderAdaptive prints the experiment summary.
func RenderAdaptive(r *AdaptiveResult) string {
	var sb strings.Builder
	sb.WriteString("adaptive — coverage-driven scheduling differential (equal per-contract budget)\n")
	for _, run := range r.Runs {
		marker := ""
		if run.AdaptiveCoverage > run.StaticCoverage {
			marker = "  (+coverage)"
		}
		fmt.Fprintf(&sb, "  corpus %d: coverage %d→%d, true positives %d→%d, false positives %d→%d, iterations %d→%d, %d energy updates, %d composite arms, %d/%d fuel regranted%s\n",
			run.Corpus, run.StaticCoverage, run.AdaptiveCoverage,
			run.StaticTP, run.AdaptiveTP,
			run.StaticFP, run.AdaptiveFP,
			run.StaticIters, run.AdaptiveIters,
			run.Sched.EnergyUpdates, run.Sched.CompositeFired,
			run.Sched.FuelReallocated, run.Sched.FuelReturned, marker)
	}
	fmt.Fprintf(&sb, "  worker-count digest identity: %v\n", r.DigestMatch)
	fmt.Fprintf(&sb, "  kill+resume digest identity: %v (%d jobs replayed)\n", r.ResumeMatch, r.ResumeReplayed)
	if r.Passed() {
		sb.WriteString("adaptive: PASS — never worse, strictly better somewhere, deterministic, resumable\n")
	} else {
		fmt.Fprintf(&sb, "adaptive: FAIL — coverage≥static=%v findings≥static=%v strictly-better=%v budget=%v digests=%v resume=%v\n",
			r.CoverageNeverWorse(), r.FindingsNeverWorse(), r.StrictlyBetter(),
			r.BudgetRespected(), r.DigestMatch, r.ResumeMatch)
	}
	return sb.String()
}
