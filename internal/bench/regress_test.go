package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func tinyRegressConfig() RegressConfig {
	return RegressConfig{Shape: RegressShape{
		Scale:             0.01,
		Iterations:        25,
		CoverageContracts: 2,
		Workers:           2,
		Seed:              9,
	}}
}

func TestRunRegressDeterministicDigest(t *testing.T) {
	cfg := tinyRegressConfig()
	a, err := RunRegress(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRegress(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != RegressSchema {
		t.Errorf("schema = %q", a.Schema)
	}
	if a.Digest != b.Digest {
		t.Errorf("digest not deterministic across runs: %s vs %s", a.Digest, b.Digest)
	}
	if a.Queries != b.Queries {
		t.Errorf("query count not deterministic: %d vs %d", a.Queries, b.Queries)
	}
	if a.Queries == 0 {
		t.Error("workload issued no solver queries")
	}
	// Comparing a run against its twin must pass the gate.
	if problems := CompareRegress(a, b); len(problems) != 0 {
		t.Errorf("self-comparison flagged regressions: %v", problems)
	}
}

func TestWriteLoadRegressRoundtrip(t *testing.T) {
	r := &RegressRecord{
		Schema:       RegressSchema,
		Shape:        tinyRegressConfig().Shape,
		Digest:       strings.Repeat("ab", 32),
		SATCalls:     17,
		Queries:      420,
		CacheHitRate: 0.625,
		WallMS:       1234,
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteRegress(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRegress(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *r {
		t.Errorf("roundtrip mismatch:\n got: %+v\nwant: %+v", got, r)
	}
	if _, err := LoadRegress(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadRegress on a missing file succeeded")
	}
}

func TestCompareRegress(t *testing.T) {
	base := func() *RegressRecord {
		return &RegressRecord{
			Schema:       RegressSchema,
			Shape:        RegressShape{Scale: 0.02, Iterations: 120, CoverageContracts: 8, Workers: 4, Seed: 1},
			Digest:       strings.Repeat("cd", 32),
			SATCalls:     100,
			Queries:      500,
			CacheHitRate: 0.5,
			WallMS:       10_000,
		}
	}
	tests := []struct {
		name   string
		mutate func(*RegressRecord)
		want   string // substring of the expected problem; "" = pass
	}{
		{"identical", func(r *RegressRecord) {}, ""},
		{"within tolerance", func(r *RegressRecord) { r.SATCalls = 110; r.WallMS = 11_000 }, ""},
		{"sat calls at limit", func(r *RegressRecord) { r.SATCalls = 114 }, ""}, // 110 + 4 workers slop
		{"sat calls over limit", func(r *RegressRecord) { r.SATCalls = 115 }, "solver regression"},
		{"wall over limit", func(r *RegressRecord) { r.WallMS = 13_001 }, "wall-clock regression"}, // 11000 + 2000 slop
		{"digest changed", func(r *RegressRecord) { r.Digest = strings.Repeat("ef", 32) }, "digest changed"},
		{"shape changed", func(r *RegressRecord) { r.Shape.Workers = 8 }, "shape changed"},
		{"schema changed", func(r *RegressRecord) { r.Schema = "wasai-bench-regress/0" }, "schema mismatch"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cur := base()
			tc.mutate(cur)
			problems := CompareRegress(base(), cur)
			if tc.want == "" {
				if len(problems) != 0 {
					t.Errorf("unexpected regressions: %v", problems)
				}
				return
			}
			if len(problems) != 1 || !strings.Contains(problems[0], tc.want) {
				t.Errorf("problems = %v, want one containing %q", problems, tc.want)
			}
		})
	}
	// A faster-than-baseline run always passes and the improvement is not
	// hidden behind the digest: fewer solver calls with the same digest is
	// the memo layer doing its job.
	cur := base()
	cur.SATCalls = 10
	cur.WallMS = 100
	if problems := CompareRegress(base(), cur); len(problems) != 0 {
		t.Errorf("improvement flagged as regression: %v", problems)
	}
	// Zero baseline wall (hand-edited record) disables the wall gate.
	b := base()
	b.WallMS = 0
	cur = base()
	cur.WallMS = 99_999
	if problems := CompareRegress(b, cur); len(problems) != 0 {
		t.Errorf("wall gate active despite zero baseline: %v", problems)
	}
}

func TestRenderRegress(t *testing.T) {
	r := &RegressRecord{Schema: RegressSchema, Digest: strings.Repeat("ab", 32), SATCalls: 5, Queries: 50, WallMS: 7}
	out := RenderRegress(r, r, nil)
	if !strings.Contains(out, "PASS") {
		t.Errorf("pass render: %q", out)
	}
	out = RenderRegress(nil, r, []string{"solver regression: details"})
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "solver regression") {
		t.Errorf("fail render: %q", out)
	}
}
