package bench

import (
	"strings"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/fuzz"
)

func TestCountsMetrics(t *testing.T) {
	c := Counts{TP: 8, FP: 2, TN: 9, FN: 1}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("precision = %v", got)
	}
	if got := c.Recall(); got < 0.888 || got > 0.889 {
		t.Errorf("recall = %v", got)
	}
	if f1 := c.F1(); f1 < 0.84 || f1 > 0.85 {
		t.Errorf("f1 = %v", f1)
	}
	var zero Counts
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero counts must yield zero metrics, not NaN")
	}
}

func TestCountsAdd(t *testing.T) {
	var c Counts
	c.Add(true, true)
	c.Add(true, false)
	c.Add(false, true)
	c.Add(false, false)
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Errorf("counts: %+v", c)
	}
}

func TestTotalMerges(t *testing.T) {
	per := map[contractgen.Class]Counts{
		contractgen.ClassFakeEOS:  {TP: 1, FP: 2},
		contractgen.ClassRollback: {TN: 3, FN: 4},
	}
	tot := Total(per)
	if tot.TP != 1 || tot.FP != 2 || tot.TN != 3 || tot.FN != 4 {
		t.Errorf("total: %+v", tot)
	}
}

func TestBuildGroundTruthBalanced(t *testing.T) {
	ds, err := BuildGroundTruth(Table4Counts, Options{Scale: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	perClass := map[contractgen.Class][2]int{}
	for _, s := range ds.Samples {
		c := perClass[s.Class]
		if s.Truth {
			c[0]++
		} else {
			c[1]++
		}
		perClass[s.Class] = c
		if s.Contract == nil || s.Contract.Module == nil {
			t.Fatalf("sample %d has no contract", s.ID)
		}
	}
	for _, class := range contractgen.Classes {
		c := perClass[class]
		if c[0] == 0 || c[1] == 0 {
			t.Errorf("%s: unbalanced %d/%d", class, c[0], c[1])
		}
		if c[0] != c[1] {
			t.Errorf("%s: halves differ %d/%d", class, c[0], c[1])
		}
	}
}

func TestBuildGroundTruthDeterministic(t *testing.T) {
	a, err := BuildGroundTruth(Table4Counts, Options{Scale: 0.02, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGroundTruth(Table4Counts, Options{Scale: 0.02, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sizes differ")
	}
	for i := range a.Samples {
		if a.Samples[i].Truth != b.Samples[i].Truth ||
			a.Samples[i].Contract.Spec.Seed != b.Samples[i].Contract.Spec.Seed {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
}

func TestObfuscatePreservesLabels(t *testing.T) {
	ds, err := BuildGroundTruth(Table4Counts, Options{Scale: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	obf, err := Obfuscate(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(obf.Samples) != len(ds.Samples) {
		t.Fatal("sample count changed")
	}
	for i := range ds.Samples {
		if obf.Samples[i].Truth != ds.Samples[i].Truth {
			t.Fatalf("label flipped at %d", i)
		}
		// The obfuscated module must actually differ (extra function).
		if len(obf.Samples[i].Contract.Module.Code) <= len(ds.Samples[i].Contract.Module.Code) {
			t.Errorf("sample %d not obfuscated", i)
		}
	}
}

func TestBuildVerificationAvoidsBranchCollisions(t *testing.T) {
	ds, err := BuildVerification(Table6Counts, Options{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ds.Samples {
		used := map[string]bool{}
		for _, br := range s.Contract.Spec.Branches {
			used[br.Field] = true
		}
		for _, vc := range s.Contract.Spec.Verification {
			if used[vc.Field] {
				t.Fatalf("sample %d: verification on branch field %q", s.ID, vc.Field)
			}
			used[vc.Field] = true
		}
	}
}

func TestEvaluateAccuracyEOSAFESmoke(t *testing.T) {
	ds, err := BuildGroundTruth(Table4Counts, Options{Scale: 0.02, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateAccuracy(ds, []Tool{ToolEOSAFE}, DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Tool != ToolEOSAFE {
		t.Fatalf("results: %+v", res)
	}
	if _, ok := res[0].PerClass[contractgen.ClassBlockinfoDep]; ok {
		t.Error("EOSAFE should skip BlockinfoDep")
	}
	table := RenderAccuracyTable("smoke", ds, res)
	if !strings.Contains(table, "Fake EOS") || !strings.Contains(table, "Total") {
		t.Errorf("render missing rows:\n%s", table)
	}
}

func TestToolSupportsMatrix(t *testing.T) {
	if toolSupports(ToolEOSFuzzer, contractgen.ClassMissAuth) {
		t.Error("EOSFuzzer does not support MissAuth")
	}
	if !toolSupports(ToolEOSFuzzer, contractgen.ClassBlockinfoDep) {
		t.Error("EOSFuzzer claims BlockinfoDep support")
	}
	if toolSupports(ToolEOSAFE, contractgen.ClassBlockinfoDep) {
		t.Error("EOSAFE does not support BlockinfoDep")
	}
	for _, c := range contractgen.Classes {
		if !toolSupports(ToolWASAI, c) {
			t.Errorf("WASAI must support %s", c)
		}
	}
}

func TestScaledFloor(t *testing.T) {
	o := Options{Scale: 0.001}
	if got := o.scaled(1000); got != 4 {
		t.Errorf("scaled floor = %d, want 4", got)
	}
	o = Options{Scale: 1}
	if got := o.scaled(254); got != 254 {
		t.Errorf("full scale = %d, want 254", got)
	}
	// Odd results are evened for balanced halves.
	o = Options{Scale: 0.05}
	if got := o.scaled(418); got%2 != 0 {
		t.Errorf("scaled(418) = %d, want even", got)
	}
}

func TestRenderCoverageSVG(t *testing.T) {
	series := []CoverageSeries{
		{Tool: ToolWASAI, Points: []fuzz.CoveragePoint{{Iteration: 10, Branches: 100}, {Iteration: 20, Branches: 180}}},
		{Tool: ToolEOSFuzzer, Points: []fuzz.CoveragePoint{{Iteration: 10, Branches: 80}, {Iteration: 20, Branches: 95}}},
	}
	svg := RenderCoverageSVG(series)
	for _, want := range []string{"<svg", "polyline", "WASAI", "EOSFuzzer", "distinct branches", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// Degenerate input still yields valid (empty) SVG.
	if out := RenderCoverageSVG(nil); !strings.Contains(out, "<svg") {
		t.Errorf("empty series: %q", out)
	}
}

func TestEvaluateCoverageSmoke(t *testing.T) {
	cfg := CoverageConfig{NumContracts: 3, Iterations: 30, Seed: 2, SamplePoints: 5}
	series, err := EvaluateCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Tool != ToolWASAI || series[1].Tool != ToolEOSFuzzer {
		t.Fatalf("series: %+v", series)
	}
	for _, s := range series {
		if len(s.Points) == 0 || s.Points[len(s.Points)-1].Branches == 0 {
			t.Errorf("%s: empty coverage curve", s.Tool)
		}
	}
	out := RenderCoverage(series)
	if !strings.Contains(out, "WASAI") || !strings.Contains(out, "ratio") {
		t.Errorf("render: %q", out)
	}
}

func TestEvaluateWildSmoke(t *testing.T) {
	res, err := EvaluateWild(WildConfig{NumContracts: 12, FuzzIterations: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 12 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.Flagged == 0 {
		t.Error("nothing flagged in a population that is ~70% vulnerable")
	}
	if res.Flagged != res.Abandoned+res.StillOperating {
		t.Errorf("lifecycle does not partition flagged: %d != %d+%d",
			res.Flagged, res.Abandoned, res.StillOperating)
	}
	out := RenderWild(res)
	if !strings.Contains(out, "flagged vulnerable") {
		t.Errorf("render: %q", out)
	}
}
