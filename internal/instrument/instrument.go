// Package instrument performs the contract-level instrumentation of paper
// §3.3.1: it rewrites Wasm bytecode so that executing the contract emits a
// runtime trace through host "library API" calls, without modifying the VM.
//
// The rewriter injects low-level hooks — short Wasm instruction sequences
// that duplicate the runtime operands WASAI's symbolic backend cannot derive
// statically (branch conditions, concrete memory addresses, indirect-call
// table indices, i64 comparison operands, call returns) and forward them to
// imported logging functions, the analogue of the logi()/logsf()/logdf()
// APIs the paper adds to Nodeos. The five function-invocation hooks of
// Table 1 (call_pre, call, function_begin, function_end, call_post) are all
// represented.
//
// Trace events reference ORIGINAL module coordinates (function index and
// instruction pc before rewriting), so the symbolic backend replays the
// original bytecode. The site table mapping hook site IDs back to original
// coordinates is embedded in the instrumented binary as a custom section,
// making the artifact self-contained.
package instrument

import (
	"encoding/binary"
	"fmt"

	"repro/internal/wasm"
)

// HookModule is the import-module name of the logging hooks.
const HookModule = "wasai"

// SitesSection is the name of the custom section carrying the site table.
const SitesSection = "wasai.sites"

// Hook import names, in index order.
const (
	HookLogSite  = "log_site"   // (site i32)
	HookLogCond  = "log_cond"   // (site i32, cond i32)
	HookLogTable = "log_table"  // (site i32, index i32)
	HookLogMem   = "log_mem"    // (site i32, addr i32)
	HookLogCmp   = "log_cmp"    // (site i32, a i64, b i64)
	HookLogCall  = "log_call"   // (site i32, origCallee i32)
	HookLogCallI = "log_calli"  // (site i32, tableIndex i32)
	HookLogRetV  = "log_ret_v"  // (site i32)
	HookLogRetI  = "log_ret_i"  // (site i32, v i32)
	HookLogRetL  = "log_ret_l"  // (site i32, v i64)
	HookLogRetF  = "log_ret_f"  // (site i32, v f32)
	HookLogRetD  = "log_ret_d"  // (site i32, v f64)
	HookLogBegin = "log_begin"  // (origFunc i32)
	HookLogEnd   = "log_end"    // (origFunc i32)
	HookLogParmI = "log_parm_i" // (origFunc i32, v i32) — call_pre parameter duplication
	HookLogParmL = "log_parm_l" // (origFunc i32, v i64)
	HookLogParmF = "log_parm_f" // (origFunc i32, v f32)
	HookLogParmD = "log_parm_d" // (origFunc i32, v f64)
)

var hookDefs = []struct {
	name string
	typ  wasm.FuncType
}{
	{HookLogSite, sig(wasm.I32)},
	{HookLogCond, sig(wasm.I32, wasm.I32)},
	{HookLogTable, sig(wasm.I32, wasm.I32)},
	{HookLogMem, sig(wasm.I32, wasm.I32)},
	{HookLogCmp, sig(wasm.I32, wasm.I64, wasm.I64)},
	{HookLogCall, sig(wasm.I32, wasm.I32)},
	{HookLogCallI, sig(wasm.I32, wasm.I32)},
	{HookLogRetV, sig(wasm.I32)},
	{HookLogRetI, sig(wasm.I32, wasm.I32)},
	{HookLogRetL, sig(wasm.I32, wasm.I64)},
	{HookLogRetF, sig(wasm.I32, wasm.F32)},
	{HookLogRetD, sig(wasm.I32, wasm.F64)},
	{HookLogBegin, sig(wasm.I32)},
	{HookLogEnd, sig(wasm.I32)},
	{HookLogParmI, sig(wasm.I32, wasm.I32)},
	{HookLogParmL, sig(wasm.I32, wasm.I64)},
	{HookLogParmF, sig(wasm.I32, wasm.F32)},
	{HookLogParmD, sig(wasm.I32, wasm.F64)},
}

func sig(params ...wasm.ValType) wasm.FuncType { return wasm.FuncType{Params: params} }

// NumHooks is the number of hook functions imported by instrumentation.
var NumHooks = uint32(len(hookDefs))

// Mode selects how densely the rewriter hooks instructions.
type Mode int

// Instrumentation modes.
const (
	// ModeSparse hooks exactly the sites whose runtime operands the
	// symbolic backend consumes: conditional branches, br_table, memory
	// accesses, i64 equality comparisons, calls, and function boundaries.
	// Straight-line instructions are replayed from the static bytecode.
	ModeSparse Mode = iota + 1
	// ModeFull additionally hooks every executable instruction with a
	// generic site event, matching the paper's per-instruction hooks.
	ModeFull
)

// Site locates one hooked instruction in the ORIGINAL module.
type Site struct {
	Func uint32
	PC   uint32
	Op   wasm.Opcode
}

// SiteTable maps hook site IDs back to original-module coordinates and
// records the index-space layout needed to translate instrumented function
// indices back to original ones.
type SiteTable struct {
	Sites      []Site
	NumImports uint32 // imports of the original module
	NumHooks   uint32 // hook imports inserted after them
	Mode       Mode
}

// Lookup returns the site with the given ID.
func (st *SiteTable) Lookup(id uint32) (Site, bool) {
	if int(id) >= len(st.Sites) {
		return Site{}, false
	}
	return st.Sites[id], true
}

// OrigFunc translates an instrumented-module function index to the original
// module's index space. Hook imports have no original counterpart; the
// second result is false for them.
func (st *SiteTable) OrigFunc(instrumented uint32) (uint32, bool) {
	switch {
	case instrumented < st.NumImports:
		return instrumented, true
	case instrumented < st.NumImports+st.NumHooks:
		return 0, false
	default:
		return instrumented - st.NumHooks, true
	}
}

// InstrumentedFunc translates an original function index into the
// instrumented module's index space.
func (st *SiteTable) InstrumentedFunc(orig uint32) uint32 {
	if orig < st.NumImports {
		return orig
	}
	return orig + st.NumHooks
}

// Result bundles the rewriting outputs.
type Result struct {
	Module *wasm.Module
	Sites  *SiteTable
}

// Instrument rewrites m (which is not modified) into an instrumented copy.
func Instrument(m *wasm.Module, mode Mode) (*Result, error) {
	if mode != ModeSparse && mode != ModeFull {
		return nil, fmt.Errorf("instrument: invalid mode %d", mode)
	}
	for _, imp := range m.Imports {
		if imp.Module == HookModule {
			return nil, fmt.Errorf("instrument: module already imports from %q", HookModule)
		}
	}

	out := cloneShallow(m)
	numImports := uint32(m.NumImportedFuncs())
	k := NumHooks

	// Intern hook signatures and append hook imports after existing ones.
	hookIdx := make(map[string]uint32, len(hookDefs))
	for i, h := range hookDefs {
		ti := out.AddType(h.typ)
		out.Imports = append(out.Imports, wasm.Import{
			Module: HookModule, Name: h.name, Kind: wasm.ExternalFunc, TypeIndex: ti,
		})
		hookIdx[h.name] = numImports + uint32(i)
	}

	remap := func(f uint32) uint32 {
		if f < numImports {
			return f
		}
		return f + k
	}

	// Remap references outside code bodies.
	for i := range out.Exports {
		if out.Exports[i].Kind == wasm.ExternalFunc {
			out.Exports[i].Index = remap(out.Exports[i].Index)
		}
	}
	if out.Start != nil {
		s := remap(*out.Start)
		out.Start = &s
	}
	for i := range out.Elems {
		funcs := make([]uint32, len(out.Elems[i].Funcs))
		for j, f := range out.Elems[i].Funcs {
			funcs[j] = remap(f)
		}
		out.Elems[i].Funcs = funcs
	}
	names := make(map[uint32]string, len(m.FuncNames))
	for idx, n := range m.FuncNames {
		names[remap(idx)] = n
	}
	out.FuncNames = names

	st := &SiteTable{NumImports: numImports, NumHooks: k, Mode: mode}
	rw := &rewriter{mod: m, out: out, sites: st, hookIdx: hookIdx, remap: remap, mode: mode}

	out.Code = make([]wasm.Code, len(m.Code))
	for i := range m.Code {
		origFunc := numImports + uint32(i)
		code, err := rw.rewriteFunc(origFunc, &m.Code[i])
		if err != nil {
			return nil, fmt.Errorf("instrument: func %d: %w", origFunc, err)
		}
		out.Code[i] = code
	}

	// Embed the site table.
	out.Customs = append(out.Customs, wasm.CustomSection{
		Name: SitesSection, Data: EncodeSiteTable(st),
	})
	return &Result{Module: out, Sites: st}, nil
}

func cloneShallow(m *wasm.Module) *wasm.Module {
	out := &wasm.Module{
		Types:    append([]wasm.FuncType(nil), m.Types...),
		Imports:  append([]wasm.Import(nil), m.Imports...),
		Funcs:    append([]uint32(nil), m.Funcs...),
		Tables:   append([]wasm.TableType(nil), m.Tables...),
		Memories: append([]wasm.MemType(nil), m.Memories...),
		Globals:  append([]wasm.Global(nil), m.Globals...),
		Exports:  append([]wasm.Export(nil), m.Exports...),
		Elems:    append([]wasm.ElemSegment(nil), m.Elems...),
		Data:     append([]wasm.DataSegment(nil), m.Data...),
		Customs:  append([]wasm.CustomSection(nil), m.Customs...),
	}
	if m.Start != nil {
		s := *m.Start
		out.Start = &s
	}
	return out
}

type rewriter struct {
	mod     *wasm.Module
	out     *wasm.Module
	sites   *SiteTable
	hookIdx map[string]uint32
	remap   func(uint32) uint32
	mode    Mode
}

func (rw *rewriter) newSite(fn uint32, pc int, op wasm.Opcode) uint32 {
	id := uint32(len(rw.sites.Sites))
	rw.sites.Sites = append(rw.sites.Sites, Site{Func: fn, PC: uint32(pc), Op: op})
	return id
}

func (rw *rewriter) callHook(name string) wasm.Instr {
	return wasm.Call(rw.hookIdx[name])
}

// scratch local layout appended to every rewritten function.
type scratch struct {
	addr, i32, i64a, i64b, f32, f64 uint32
}

func (rw *rewriter) rewriteFunc(origFunc uint32, c *wasm.Code) (wasm.Code, error) {
	ft, err := rw.mod.FuncTypeAt(origFunc)
	if err != nil {
		return wasm.Code{}, err
	}
	base := uint32(len(ft.Params)) + c.NumLocals()
	s := scratch{addr: base, i32: base + 1, i64a: base + 2, i64b: base + 3, f32: base + 4, f64: base + 5}

	locals := append([]wasm.LocalDecl(nil), c.Locals...)
	locals = append(locals,
		wasm.LocalDecl{Count: 2, Type: wasm.I32},
		wasm.LocalDecl{Count: 2, Type: wasm.I64},
		wasm.LocalDecl{Count: 1, Type: wasm.F32},
		wasm.LocalDecl{Count: 1, Type: wasm.F64},
	)

	var body []wasm.Instr
	emit := func(ins ...wasm.Instr) { body = append(body, ins...) }

	// function_begin hook, followed by parameter duplication (the paper's
	// call_pre "duplicate the invocation parameters"; logging them at the
	// callee side covers both direct and indirect invocation).
	emit(wasm.I32Const(int32(origFunc)), rw.callHook(HookLogBegin))
	for i, p := range ft.Params {
		var hook string
		switch p {
		case wasm.I32:
			hook = HookLogParmI
		case wasm.I64:
			hook = HookLogParmL
		case wasm.F32:
			hook = HookLogParmF
		default:
			hook = HookLogParmD
		}
		emit(wasm.I32Const(int32(origFunc)), wasm.LocalGet(uint32(i)), rw.callHook(hook))
	}

	endHook := []wasm.Instr{wasm.I32Const(int32(origFunc)), rw.callHook(HookLogEnd)}

	for pc, in := range c.Body {
		isLast := pc == len(c.Body)-1
		switch {
		case in.Op == wasm.OpBrIf || in.Op == wasm.OpIf:
			site := rw.newSite(origFunc, pc, in.Op)
			emit(
				wasm.LocalSet(s.i32),
				wasm.I32Const(int32(site)),
				wasm.LocalGet(s.i32),
				rw.callHook(HookLogCond),
				wasm.LocalGet(s.i32),
				in,
			)
		case in.Op == wasm.OpBrTable:
			site := rw.newSite(origFunc, pc, in.Op)
			emit(
				wasm.LocalSet(s.i32),
				wasm.I32Const(int32(site)),
				wasm.LocalGet(s.i32),
				rw.callHook(HookLogTable),
				wasm.LocalGet(s.i32),
				in,
			)
		case in.Op.IsLoad():
			site := rw.newSite(origFunc, pc, in.Op)
			emit(
				wasm.LocalSet(s.addr),
				wasm.I32Const(int32(site)),
				wasm.LocalGet(s.addr),
				rw.callHook(HookLogMem),
				wasm.LocalGet(s.addr),
				in,
			)
		case in.Op.IsStore():
			site := rw.newSite(origFunc, pc, in.Op)
			val := rw.storeScratch(in.Op, s)
			emit(
				wasm.LocalSet(val),
				wasm.LocalSet(s.addr),
				wasm.I32Const(int32(site)),
				wasm.LocalGet(s.addr),
				rw.callHook(HookLogMem),
				wasm.LocalGet(s.addr),
				wasm.LocalGet(val),
				in,
			)
		case in.Op == wasm.OpI64Eq || in.Op == wasm.OpI64Ne:
			// Duplicate both operands: the Fake Notification guard-code
			// detector inspects them (paper §3.5).
			site := rw.newSite(origFunc, pc, in.Op)
			emit(
				wasm.LocalSet(s.i64b), // top = b
				wasm.LocalSet(s.i64a), // below = a
				wasm.I32Const(int32(site)),
				wasm.LocalGet(s.i64a),
				wasm.LocalGet(s.i64b),
				rw.callHook(HookLogCmp),
				wasm.LocalGet(s.i64a),
				wasm.LocalGet(s.i64b),
				in,
			)
		case in.Op == wasm.OpCall:
			site := rw.newSite(origFunc, pc, in.Op)
			emit(
				wasm.I32Const(int32(site)),
				wasm.I32Const(int32(in.A)), // original callee index
				rw.callHook(HookLogCall),
				wasm.Call(rw.remap(in.A)),
			)
			rw.emitRet(&body, site, rw.calleeResult(in.A), s)
		case in.Op == wasm.OpCallIndirect:
			site := rw.newSite(origFunc, pc, in.Op)
			emit(
				wasm.LocalSet(s.addr), // table index
				wasm.I32Const(int32(site)),
				wasm.LocalGet(s.addr),
				rw.callHook(HookLogCallI),
				wasm.LocalGet(s.addr),
				in, // type index unchanged: type section only grows
			)
			var res []wasm.ValType
			if int(in.A) < len(rw.mod.Types) {
				res = rw.mod.Types[in.A].Results
			}
			rw.emitRet(&body, site, res, s)
		case in.Op == wasm.OpReturn:
			emit(endHook...)
			emit(in)
		case in.Op == wasm.OpEnd && isLast:
			emit(endHook...)
			emit(in)
		case in.Op == wasm.OpEnd || in.Op == wasm.OpElse ||
			in.Op == wasm.OpBlock || in.Op == wasm.OpLoop:
			// Structural opcodes carry no runtime operands; hooking them
			// would perturb the control nesting.
			emit(in)
		default:
			if rw.mode == ModeFull {
				site := rw.newSite(origFunc, pc, in.Op)
				emit(wasm.I32Const(int32(site)), rw.callHook(HookLogSite))
			}
			emit(in)
		}
	}
	return wasm.Code{Locals: locals, Body: body}, nil
}

func (rw *rewriter) storeScratch(op wasm.Opcode, s scratch) uint32 {
	switch op {
	case wasm.OpI64Store, wasm.OpI64Store8, wasm.OpI64Store16, wasm.OpI64Store32:
		return s.i64a
	case wasm.OpF32Store:
		return s.f32
	case wasm.OpF64Store:
		return s.f64
	default:
		return s.i32
	}
}

func (rw *rewriter) calleeResult(origCallee uint32) []wasm.ValType {
	ft, err := rw.mod.FuncTypeAt(origCallee)
	if err != nil {
		return nil
	}
	return ft.Results
}

// emitRet appends the call_post hook, duplicating the callee's return value.
func (rw *rewriter) emitRet(body *[]wasm.Instr, site uint32, results []wasm.ValType, s scratch) {
	emit := func(ins ...wasm.Instr) { *body = append(*body, ins...) }
	if len(results) == 0 {
		emit(wasm.I32Const(int32(site)), rw.callHook(HookLogRetV))
		return
	}
	var local uint32
	var hook string
	switch results[0] {
	case wasm.I32:
		local, hook = s.i32, HookLogRetI
	case wasm.I64:
		local, hook = s.i64a, HookLogRetL
	case wasm.F32:
		local, hook = s.f32, HookLogRetF
	default:
		local, hook = s.f64, HookLogRetD
	}
	emit(
		wasm.LocalSet(local),
		wasm.I32Const(int32(site)),
		wasm.LocalGet(local),
		rw.callHook(hook),
		wasm.LocalGet(local),
	)
}

// EncodeSiteTable serializes a site table for the custom section.
func EncodeSiteTable(st *SiteTable) []byte {
	buf := make([]byte, 16, 16+9*len(st.Sites))
	binary.LittleEndian.PutUint32(buf[0:], st.NumImports)
	binary.LittleEndian.PutUint32(buf[4:], st.NumHooks)
	binary.LittleEndian.PutUint32(buf[8:], uint32(st.Mode))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(st.Sites)))
	var rec [9]byte
	for _, s := range st.Sites {
		binary.LittleEndian.PutUint32(rec[0:], s.Func)
		binary.LittleEndian.PutUint32(rec[4:], s.PC)
		rec[8] = byte(s.Op)
		buf = append(buf, rec[:]...)
	}
	return buf
}

// DecodeSiteTable parses a site table from custom-section bytes.
func DecodeSiteTable(data []byte) (*SiteTable, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("instrument: site table too short (%d bytes)", len(data))
	}
	st := &SiteTable{
		NumImports: binary.LittleEndian.Uint32(data[0:]),
		NumHooks:   binary.LittleEndian.Uint32(data[4:]),
		Mode:       Mode(binary.LittleEndian.Uint32(data[8:])),
	}
	n := binary.LittleEndian.Uint32(data[12:])
	rest := data[16:]
	if len(rest) != int(n)*9 {
		return nil, fmt.Errorf("instrument: site table size mismatch: %d records, %d bytes", n, len(rest))
	}
	st.Sites = make([]Site, n)
	for i := range st.Sites {
		rec := rest[i*9:]
		st.Sites[i] = Site{
			Func: binary.LittleEndian.Uint32(rec[0:]),
			PC:   binary.LittleEndian.Uint32(rec[4:]),
			Op:   wasm.Opcode(rec[8]),
		}
	}
	return st, nil
}

// SitesFromModule extracts the embedded site table from an instrumented
// module, or returns nil when the module is not instrumented.
func SitesFromModule(m *wasm.Module) (*SiteTable, error) {
	for _, cs := range m.Customs {
		if cs.Name == SitesSection {
			return DecodeSiteTable(cs.Data)
		}
	}
	return nil, nil
}
