package instrument

import (
	"testing"

	"repro/internal/wasm"
	"repro/internal/wasm/exec"
)

// testModule builds a small module with an import, two local functions and
// an indirect call, covering the remapping paths.
func testModule(t *testing.T) *wasm.Module {
	t.Helper()
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	hostTI := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}})
	m.Imports = []wasm.Import{{Module: "env", Name: "sink", Kind: wasm.ExternalFunc, TypeIndex: hostTI}}
	binTI := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	voidTI := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}})

	// func[1] add(a, b) -> a+b with a conditional and memory traffic
	m.Funcs = append(m.Funcs, binTI)
	m.Code = append(m.Code, wasm.Code{Body: []wasm.Instr{
		// mem[8] = a
		wasm.I32Const(8), wasm.LocalGet(0), wasm.Store(wasm.OpI64Store, 0),
		// if (a == b) mem[8] = a + b
		wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(wasm.OpI64Eq),
		wasm.If(),
		wasm.I32Const(8), wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(wasm.OpI64Add), wasm.Store(wasm.OpI64Store, 0),
		wasm.End(),
		// return mem[8] + b
		wasm.I32Const(8), wasm.Load(wasm.OpI64Load, 0),
		wasm.LocalGet(1), wasm.Op0(wasm.OpI64Add),
		wasm.End(),
	}})
	// func[2] main(x): sink(add(x, 3)); indirect call of table[0]
	m.Funcs = append(m.Funcs, voidTI)
	m.Code = append(m.Code, wasm.Code{Body: []wasm.Instr{
		wasm.LocalGet(0), wasm.I64Const(3), wasm.Call(1),
		wasm.Call(0), // import
		wasm.LocalGet(0), wasm.LocalGet(0), wasm.I32Const(0), wasm.CallIndirect(binTI),
		wasm.Drop(),
		wasm.End(),
	}})
	m.Tables = []wasm.TableType{{Limits: wasm.Limits{Min: 1}}}
	m.Elems = []wasm.ElemSegment{{Offset: []wasm.Instr{wasm.I32Const(0)}, Funcs: []uint32{1}}}
	m.Memories = []wasm.MemType{{Limits: wasm.Limits{Min: 1}}}
	m.Exports = []wasm.Export{{Name: "main", Kind: wasm.ExternalFunc, Index: 2}}
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return m
}

func TestInstrumentPreservesValidity(t *testing.T) {
	m := testModule(t)
	res, err := Instrument(m, ModeSparse)
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	if err := wasm.Validate(res.Module); err != nil {
		t.Fatalf("instrumented module invalid: %v", err)
	}
	// Original module untouched.
	if len(m.Imports) != 1 {
		t.Error("original module was mutated")
	}
	// Hook imports appended after existing ones.
	if got := res.Module.NumImportedFuncs(); got != 1+int(NumHooks) {
		t.Errorf("imports = %d, want %d", got, 1+int(NumHooks))
	}
	// Exports remapped past the hooks.
	idx, ok := res.Module.ExportedFunc("main")
	if !ok || idx != 2+NumHooks {
		t.Errorf("main remapped to %d, want %d", idx, 2+NumHooks)
	}
	// Round-trips through the binary format (site table included).
	bin, err := wasm.Encode(res.Module)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := wasm.Decode(bin)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	sites, err := SitesFromModule(back)
	if err != nil {
		t.Fatalf("SitesFromModule: %v", err)
	}
	if sites == nil || len(sites.Sites) != len(res.Sites.Sites) {
		t.Fatalf("site table lost in round trip")
	}
}

// TestInstrumentedExecutionMatches runs original and instrumented modules
// and checks the behaviour is identical (hooks are observationally pure).
func TestInstrumentedExecutionMatches(t *testing.T) {
	m := testModule(t)
	res, err := Instrument(m, ModeSparse)
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}

	var sunk []uint64
	hostResolver := exec.Resolver{"env": exec.HostModule{
		"sink": func(vm *exec.VM, args []uint64) ([]uint64, error) {
			sunk = append(sunk, args[0])
			return nil, nil
		},
	}}
	noopHooks := exec.HostModule{}
	for _, h := range []string{
		HookLogSite, HookLogCond, HookLogTable, HookLogMem, HookLogCmp,
		HookLogCall, HookLogCallI, HookLogRetV, HookLogRetI, HookLogRetL,
		HookLogRetF, HookLogRetD, HookLogBegin, HookLogEnd,
		HookLogParmI, HookLogParmL, HookLogParmF, HookLogParmD,
	} {
		noopHooks[h] = func(vm *exec.VM, args []uint64) ([]uint64, error) { return nil, nil }
	}

	run := func(mod *wasm.Module, withHooks bool) []uint64 {
		sunk = nil
		r := exec.Resolver{"env": hostResolver["env"]}
		if withHooks {
			r[HookModule] = noopHooks
		}
		inst, err := exec.Instantiate(mod, r)
		if err != nil {
			t.Fatalf("instantiate: %v", err)
		}
		if _, err := exec.NewVM(inst).Invoke("main", 7); err != nil {
			t.Fatalf("invoke: %v", err)
		}
		return append([]uint64(nil), sunk...)
	}

	orig := run(m, false)
	instr := run(res.Module, true)
	if len(orig) != len(instr) || orig[0] != instr[0] {
		t.Errorf("instrumented behaviour differs: %v vs %v", orig, instr)
	}
	if orig[0] != 10 { // add(7, 3)
		t.Errorf("add(7,3) = %d", orig[0])
	}
}

// TestHookEventCapture checks that hooks fire with the expected original
// coordinates and operand values.
func TestHookEventCapture(t *testing.T) {
	m := testModule(t)
	res, err := Instrument(m, ModeSparse)
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}

	type call struct {
		hook string
		args []uint64
	}
	var calls []call
	record := func(name string) exec.HostFunc {
		return func(vm *exec.VM, args []uint64) ([]uint64, error) {
			calls = append(calls, call{hook: name, args: append([]uint64(nil), args...)})
			return nil, nil
		}
	}
	hooks := exec.HostModule{}
	for _, h := range []string{
		HookLogSite, HookLogCond, HookLogTable, HookLogMem, HookLogCmp,
		HookLogCall, HookLogCallI, HookLogRetV, HookLogRetI, HookLogRetL,
		HookLogRetF, HookLogRetD, HookLogBegin, HookLogEnd,
		HookLogParmI, HookLogParmL, HookLogParmF, HookLogParmD,
	} {
		hooks[h] = record(h)
	}
	inst, err := exec.Instantiate(res.Module, exec.Resolver{
		"env":      exec.HostModule{"sink": func(vm *exec.VM, args []uint64) ([]uint64, error) { return nil, nil }},
		HookModule: hooks,
	})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if _, err := exec.NewVM(inst).Invoke("main", 5); err != nil {
		t.Fatalf("invoke: %v", err)
	}

	byHook := map[string][]call{}
	for _, c := range calls {
		byHook[c.hook] = append(byHook[c.hook], c)
	}
	// main begins, then add begins (direct), then add again (indirect).
	begins := byHook[HookLogBegin]
	if len(begins) != 3 {
		t.Fatalf("begin events = %d, want 3", len(begins))
	}
	if begins[0].args[0] != 2 || begins[1].args[0] != 1 || begins[2].args[0] != 1 {
		t.Errorf("begin order: %v", begins)
	}
	// Parameter duplication: main(5) then add(5,3) then add(5,5).
	parms := byHook[HookLogParmL]
	if len(parms) != 5 {
		t.Fatalf("param events = %d, want 5", len(parms))
	}
	if parms[0].args[1] != 5 || parms[1].args[1] != 5 || parms[2].args[1] != 3 {
		t.Errorf("param values: %v", parms)
	}
	// The i64.eq comparison duplicates both operands.
	cmps := byHook[HookLogCmp]
	if len(cmps) != 2 {
		t.Fatalf("cmp events = %d, want 2", len(cmps))
	}
	if cmps[0].args[1] != 5 || cmps[0].args[2] != 3 {
		t.Errorf("cmp operands: %v", cmps[0].args)
	}
	// Conditionals: one if per add invocation, false then true.
	conds := byHook[HookLogCond]
	if len(conds) != 2 || conds[0].args[1] != 0 || conds[1].args[1] != 1 {
		t.Errorf("cond events: %v", conds)
	}
	// Memory: add(5,3) does store+load; add(5,5) does store+store+load.
	if len(byHook[HookLogMem]) != 5 {
		t.Errorf("mem events = %d, want 5", len(byHook[HookLogMem]))
	}
	// Direct call to add (orig index 1) and to the import (orig index 0).
	callsDirect := byHook[HookLogCall]
	if len(callsDirect) != 2 || callsDirect[0].args[1] != 1 || callsDirect[1].args[1] != 0 {
		t.Errorf("direct call events: %v", callsDirect)
	}
	// Indirect call logs the table index.
	if ci := byHook[HookLogCallI]; len(ci) != 1 || ci[0].args[1] != 0 {
		t.Errorf("indirect call events: %v", byHook[HookLogCallI])
	}
	// Returns: i64 results from both adds, void from the import.
	if len(byHook[HookLogRetL]) != 2 || len(byHook[HookLogRetV]) != 1 {
		t.Errorf("ret events: L=%d V=%d", len(byHook[HookLogRetL]), len(byHook[HookLogRetV]))
	}
	if byHook[HookLogRetL][0].args[1] != 8 { // add(5,3)
		t.Errorf("first return = %d, want 8", byHook[HookLogRetL][0].args[1])
	}
}

func TestSiteTableRoundTrip(t *testing.T) {
	st := &SiteTable{
		NumImports: 3, NumHooks: NumHooks, Mode: ModeSparse,
		Sites: []Site{{Func: 4, PC: 17, Op: wasm.OpBrIf}, {Func: 5, PC: 0, Op: wasm.OpI64Load}},
	}
	back, err := DecodeSiteTable(EncodeSiteTable(st))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumImports != 3 || back.NumHooks != NumHooks || len(back.Sites) != 2 {
		t.Fatalf("round trip: %+v", back)
	}
	if back.Sites[0] != st.Sites[0] || back.Sites[1] != st.Sites[1] {
		t.Errorf("sites mismatch")
	}
}

func TestOrigFuncMapping(t *testing.T) {
	st := &SiteTable{NumImports: 5, NumHooks: NumHooks}
	if orig, ok := st.OrigFunc(3); !ok || orig != 3 {
		t.Errorf("import mapping broken: %d %v", orig, ok)
	}
	if _, ok := st.OrigFunc(5 + NumHooks/2); ok {
		t.Error("hook import should have no original")
	}
	if orig, ok := st.OrigFunc(5 + NumHooks); !ok || orig != 5 {
		t.Errorf("local mapping broken: %d %v", orig, ok)
	}
	if got := st.InstrumentedFunc(5); got != 5+NumHooks {
		t.Errorf("InstrumentedFunc(5) = %d", got)
	}
	if got := st.InstrumentedFunc(2); got != 2 {
		t.Errorf("InstrumentedFunc(2) = %d", got)
	}
}

func TestInstrumentRejectsDoubleInstrumentation(t *testing.T) {
	m := testModule(t)
	res, err := Instrument(m, ModeSparse)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Instrument(res.Module, ModeSparse); err == nil {
		t.Error("double instrumentation should fail")
	}
}

func TestModeFullAddsSiteEvents(t *testing.T) {
	m := testModule(t)
	sparse, err := Instrument(m, ModeSparse)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Instrument(m, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Sites.Sites) <= len(sparse.Sites.Sites) {
		t.Errorf("full mode sites %d <= sparse %d", len(full.Sites.Sites), len(sparse.Sites.Sites))
	}
}
