package fuzz

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/schedule"
	"repro/internal/symexec"
)

// TestChangePointCoverageSeries: CoverageOverTime records only coverage
// change points (plus the closing sample), and ExpandCoverage reconstructs
// the dense monotone series curve consumers sum.
func TestChangePointCoverageSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := contractgen.RandomSpec(contractgen.ClassBlockinfoDep, true, rng)
	cfg := DefaultConfig()
	res := runCampaign(t, spec, cfg)

	points := res.CoverageOverTime
	if len(points) == 0 {
		t.Fatal("no coverage points recorded")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Iteration <= points[i-1].Iteration {
			t.Fatalf("iterations not strictly increasing: %+v", points)
		}
		if points[i].Branches < points[i-1].Branches {
			t.Fatalf("branches not monotone: %+v", points)
		}
	}
	// Every point but the closing sample marks a strict gain.
	for i := 1; i < len(points)-1; i++ {
		if points[i].Branches == points[i-1].Branches {
			t.Fatalf("non-change point %d recorded: %+v", i, points)
		}
	}
	if got := points[len(points)-1]; got.Iteration != res.Iterations || got.Branches != res.Coverage {
		t.Fatalf("closing sample %+v, want iteration %d at %d branches", got, res.Iterations, res.Coverage)
	}

	dense := ExpandCoverage(points, cfg.Iterations)
	if len(dense) != cfg.Iterations {
		t.Fatalf("dense length %d, want %d", len(dense), cfg.Iterations)
	}
	for i := 1; i < len(dense); i++ {
		if dense[i] < dense[i-1] {
			t.Fatalf("dense series not monotone at %d: %v", i, dense)
		}
	}
	if dense[len(dense)-1] != res.Coverage {
		t.Fatalf("dense final %d, want total coverage %d", dense[len(dense)-1], res.Coverage)
	}
	for _, p := range points {
		if dense[p.Iteration-1] != p.Branches {
			t.Fatalf("dense[%d] = %d, want change point %d", p.Iteration-1, dense[p.Iteration-1], p.Branches)
		}
	}
}

// TestSeedQueueRingEquivalence drives the fixed-ring queue and a plain
// slice model through the same randomized push/pushFront/next script and
// requires identical served seeds — the ring must keep the historical
// slice semantics (append drops on a full queue, pushFront evicts the
// oldest, next rotates head to tail) byte for byte.
func TestSeedQueueRingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var q seedQueue
	var model []uint64 // logical queue of seed IDs, head first
	id := uint64(0)
	mkSeed := func(v uint64) Seed {
		return Seed{Params: []symexec.Param{{U64: v}}}
	}
	for step := 0; step < 10_000; step++ {
		switch op := rng.Intn(4); op {
		case 0: // push
			id++
			q.push(mkSeed(id))
			if len(model) < maxQueue {
				model = append(model, id)
			}
		case 1: // pushFront
			id++
			q.pushFront(mkSeed(id))
			model = append([]uint64{id}, model...)
			if len(model) > maxQueue {
				model = model[:maxQueue]
			}
		default: // next (twice as likely, so the queue drains too)
			s, ok := q.next()
			if ok != (len(model) > 0) {
				t.Fatalf("step %d: next ok=%v, model len %d", step, ok, len(model))
			}
			if !ok {
				continue
			}
			want := model[0]
			model = append(model[1:], want)
			if got := s.Params[0].U64; got != want {
				t.Fatalf("step %d: next served %d, model head %d", step, got, want)
			}
		}
		if q.len() != len(model) {
			t.Fatalf("step %d: ring len %d, model len %d", step, q.len(), len(model))
		}
	}
}

// TestSeedQueueWeightedEqualEnergyOrder: with untouched (equal) energies
// the smooth weighted round-robin serves the live slots in logical order,
// so the adaptive selection degenerates to the static rotation until the
// first energy update.
func TestSeedQueueWeightedEqualEnergyOrder(t *testing.T) {
	var q seedQueue
	for v := uint64(1); v <= 5; v++ {
		q.push(Seed{Params: []symexec.Param{{U64: v}}})
	}
	for round := 0; round < 3; round++ {
		for v := uint64(1); v <= 5; v++ {
			s, _, _, ok := q.nextWeighted()
			if !ok || s.Params[0].U64 != v {
				t.Fatalf("round %d: served %v (ok=%v), want %d", round, s.Params, ok, v)
			}
		}
	}
}

// TestSeedQueueObserveGeneration: an energy update with a stale generation
// (the slot was recycled mid-step) is dropped.
func TestSeedQueueObserveGeneration(t *testing.T) {
	var q seedQueue
	q.push(Seed{})
	_, pos, gen, ok := q.nextWeighted()
	if !ok {
		t.Fatal("nextWeighted on non-empty queue failed")
	}
	q.set(pos, Seed{}, schedule.BaseEnergy) // recycle the slot
	if n := q.observe(pos, gen, true); n != 0 {
		t.Fatalf("stale observe applied %d updates, want 0", n)
	}
	_, pos, gen, _ = q.nextWeighted()
	if n := q.observe(pos, gen, true); n != 1 {
		t.Fatalf("fresh observe applied %d updates, want 1", n)
	}
	if e := q.energy[pos]; e != 2*schedule.BaseEnergy {
		t.Fatalf("energy after gain = %d, want %d", e, 2*schedule.BaseEnergy)
	}
}

// TestAdaptiveRunDeterministic: the adaptive schedule is a pure function
// of (seed, observed coverage) — two runs of the same job are identical in
// verdicts, coverage series and scheduler counters.
func TestAdaptiveRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	spec := contractgen.RandomSpec(contractgen.ClassRollback, true, rng)
	cfg := DefaultConfig()
	cfg.Adaptive = true
	a := runCampaign(t, spec, cfg)
	b := runCampaign(t, spec, cfg)
	if !reflect.DeepEqual(a.Report.Vulnerable, b.Report.Vulnerable) {
		t.Errorf("verdicts diverged: %v vs %v", a.Report.Vulnerable, b.Report.Vulnerable)
	}
	if a.Coverage != b.Coverage || a.Iterations != b.Iterations || a.Saturated != b.Saturated {
		t.Errorf("coverage/iterations diverged: %d/%d/%v vs %d/%d/%v",
			a.Coverage, a.Iterations, a.Saturated, b.Coverage, b.Iterations, b.Saturated)
	}
	if !reflect.DeepEqual(a.CoverageOverTime, b.CoverageOverTime) {
		t.Errorf("coverage series diverged")
	}
	if a.Sched != b.Sched {
		t.Errorf("scheduler counters diverged: %+v vs %+v", a.Sched, b.Sched)
	}
}

// TestAdaptiveOffIdentical: Adaptive=false must be byte-identical to the
// historical fixed round-robin — the zero-value config path cannot shift
// by the scheduling layer's presence.
func TestAdaptiveOffIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	spec := contractgen.RandomSpec(contractgen.ClassFakeEOS, true, rng)
	cfg := DefaultConfig()
	off := runCampaign(t, spec, cfg)
	if !off.Sched.Zero() {
		t.Errorf("static run reported scheduler counters: %+v", off.Sched)
	}
	if off.Saturated {
		t.Error("static run reported saturation")
	}
	cfg.Adaptive = true
	on := runCampaign(t, spec, cfg)
	if on.Sched.Zero() {
		t.Error("adaptive run reported no scheduler activity")
	}
}
