package fuzz

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/eos"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/instrument"
	"repro/internal/scanner"
	"repro/internal/schedule"
	"repro/internal/static"
	"repro/internal/symbolic"
	"repro/internal/symexec"
	"repro/internal/trace"
	"repro/internal/wasm"
)

// Well-known campaign accounts.
var (
	attackerName  = eos.MustName("attacker")
	fakeTokenName = eos.MustName("fake.token")
	agentName     = eos.MustName("fake.notif")
	victimName    = eos.MustName("victim")
)

// Config tunes a fuzzing campaign.
type Config struct {
	// Iterations is the transaction budget (the deterministic analogue of
	// the paper's 5-minute timeout).
	Iterations int
	// SolverConflicts bounds each SMT query (analogue of the 3,000 ms cap).
	SolverConflicts int64
	// DisableFeedback turns off the Symback loop (ablation: pure black-box).
	DisableFeedback bool
	// DisableDBG turns off transaction-dependency seed selection (ablation).
	DisableDBG bool
	// OpaqueInputs disables §3.4.2 input inference in the replay (ablation:
	// path constraints lose their mapping to the transaction payload).
	OpaqueInputs bool
	// Seed drives all randomness.
	Seed int64
	// CustomDetectors registers extension oracles (paper §5): each observes
	// every target trace and contributes a named verdict to the result.
	CustomDetectors []scanner.CustomDetector
	// KeepTraces retains every target trace in the result, for export to
	// the paper's offline trace files (trace.Write).
	KeepTraces bool
	// Fuel overrides the per-action instruction budget of the campaign
	// chain (0 keeps the chain default).
	Fuel int64
	// Static, when non-nil, budgets the campaign from the module's static
	// pre-analysis: branchy contracts get their fuel and solver conflict
	// caps raised (never lowered — the budgets are monotone over the
	// defaults), so deep paths are not starved. An explicit Fuel wins over
	// the static fuel budget.
	Static *static.Report
	// Faults, when non-nil, injects the planned fault into the campaign
	// chain's host API and the solver pool (see internal/faultinject). A
	// transaction error chaining to faultinject.ErrInjected escalates to a
	// campaign failure — ordinary contract reverts are fuzzing signal and
	// never do.
	Faults *faultinject.Injector
	// Memo is the cross-job solver-query cache consulted before DPLL
	// (see internal/memo; nil disables memoization). The solver pool
	// ignores it whenever Faults is non-nil, so faulted attempts can
	// neither poison nor be served from a shared cache.
	Memo symbolic.SolverMemo
	// Incremental enables the prefix-sharing solver pre-pass for the
	// adaptive-seed flip queries (see symbolic.PoolOptions.Incremental).
	// Findings are byte-identical on/off; the flag only trades solver
	// work. Ignored on faulted attempts, like Memo.
	Incremental bool
	// FastVM runs the campaign chain on the decoded-IR execution engine
	// (exec.NewFastVM). Findings and traces are byte-identical on/off;
	// the flag only trades execution throughput.
	FastVM bool
	// Backend selects the chain personality (host-API surface, bootstrap
	// accounts, API classification) the campaign and scenario chains run
	// on. Nil means chain.EOSIO(), the default personality.
	Backend chain.Backend
	// Adaptive replaces the fixed round-robin schedule with the
	// coverage-driven power schedule of internal/schedule: payload arms and
	// queued seeds carry energies updated from coverage deltas, DBG
	// writer→reader pairs become composite arms, and the loop stops early
	// at saturation (no new coverage over SaturationWindow iterations) so
	// the campaign fuel ledger can reallocate the unspent budget. Every
	// decision is a pure function of (seed, observed coverage), so adaptive
	// runs stay reproducible; Adaptive=false is byte-identical to the
	// historical schedule.
	Adaptive bool
	// SaturationWindow is the adaptive saturation horizon in iterations
	// (0 means DefaultSaturationWindow). Ignored unless Adaptive.
	SaturationWindow int
}

// DefaultSaturationWindow is the default adaptive saturation horizon: a job
// with no new branch over this many consecutive iterations stops and
// returns its remaining fuel. A multiple of the schedule length, so every
// payload kind gets several shots before the job is declared saturated.
const DefaultSaturationWindow = 48

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{Iterations: 240, SolverConflicts: 50_000, Seed: 1}
}

// CoveragePoint samples cumulative distinct-branch coverage (RQ1's unit).
type CoveragePoint struct {
	Iteration int
	Branches  int
}

// Result summarizes a campaign.
type Result struct {
	Report           *scanner.Report
	Coverage         int
	CoverageOverTime []CoveragePoint
	Iterations       int
	// AdaptiveSeeds counts seeds produced by constraint solving.
	AdaptiveSeeds int
	// ReplayErrors counts traces Symback could not replay.
	ReplayErrors int
	SolverStats  symbolic.SolverStats
	// Custom holds the verdicts of registered extension detectors.
	Custom map[string]bool
	// Traces holds the target's traces when Config.KeepTraces is set.
	Traces []trace.Trace
	// Sched holds the adaptive scheduler's counters (zero when Adaptive
	// is off). Reporting-only: excluded from findings digests, included in
	// the campaign state digest like coverage.
	Sched schedule.Counters
	// Saturated reports that the adaptive loop stopped early for lack of
	// new coverage.
	Saturated bool
}

// ExpandCoverage reconstructs the dense per-iteration coverage series from
// the change-point encoding of CoverageOverTime: the value at iteration i
// (1-based) is the latest recorded point at or before i, zero before the
// first point. This is exactly the series the fuzzer used to record
// eagerly, so consumers plotting coverage curves stay equivalent.
func ExpandCoverage(points []CoveragePoint, iterations int) []int {
	dense := make([]int, iterations)
	cur, pi := 0, 0
	for i := 1; i <= iterations; i++ {
		for pi < len(points) && points[pi].Iteration <= i {
			cur = points[pi].Branches
			pi++
		}
		dense[i-1] = cur
	}
	return dense
}

// Fuzzer is the WASAI engine bound to one target contract.
type Fuzzer struct {
	cfg     Config
	mod     *wasm.Module // original (pre-instrumentation) module
	instr   *instrument.Result
	abi     *abi.ABI
	bc      *chain.Blockchain
	scan    *scanner.Scanner
	rng     *rand.Rand
	solver  *symbolic.Solver
	dbg     *DBG
	seeds   *pool
	actions []eos.Name

	ctx context.Context // the campaign context while RunContext is active

	coverage  map[trace.BranchKey]struct{}
	attempted map[symexec.BranchTarget]bool
	covSeries []CoveragePoint
	adaptive  int
	replayErr int
	iter      int

	// Phase/adaptive state (see RunPhase): the iteration budget grows via
	// ContinuePhase grants, the planner drives arm selection when
	// Config.Adaptive, and lastSeed/seedUpdates carry the served seed slot
	// from step to the energy update after it.
	budget      int
	started     bool
	finished    bool
	saturated   bool
	lastGain    int
	planner     *schedule.Planner
	arms        []scheduleEntry
	seedUpdates int
	lastSeed    seedRef

	lastRevertRead map[eos.Name]chain.DBOp // action -> the failing read (table + key)
	kept           []trace.Trace
}

// seedRef points at the queue slot a step served, so the adaptive loop can
// feed the step's coverage outcome back into that seed's energy.
type seedRef struct {
	q   *seedQueue
	pos int
	gen uint32
	ok  bool
}

// New prepares a campaign against the contract `mod` with its ABI: it
// instruments the bytecode (§3.3.1), initiates a local blockchain with the
// auxiliary contracts of Algorithm 1 line 2 (eosio.token, the counterfeit
// token, the notification-forwarding agent), and funds the accounts.
func New(mod *wasm.Module, contractABI *abi.ABI, cfg Config) (*Fuzzer, error) {
	res, err := instrument.Instrument(mod, instrument.ModeSparse)
	if err != nil {
		return nil, failure.Wrap(failure.Decode, fmt.Errorf("fuzz: instrument: %w", err))
	}
	backend := cfg.Backend
	if backend == nil {
		backend = chain.EOSIO()
	}
	bc := chain.NewWithBackend(backend)
	bc.Collector = trace.NewCollector()
	bc.FastVM = cfg.FastVM
	if cfg.Fuel > 0 {
		bc.Fuel = cfg.Fuel
	} else if cfg.Static != nil {
		bc.Fuel = cfg.Static.FuelBudget(bc.Fuel)
	}
	if cfg.Static != nil && cfg.SolverConflicts > 0 {
		cfg.SolverConflicts = cfg.Static.SolverBudget(cfg.SolverConflicts)
	}
	if err := bc.DeployModule(victimName, res.Module, contractABI, res.Sites); err != nil {
		return nil, failure.Wrap(failure.Decode, fmt.Errorf("fuzz: deploy target: %w", err))
	}
	// Arm fault injection only after deployment: the faults model runtime
	// host failures, not broken setup.
	bc.Faults = cfg.Faults
	bc.DeployNative(fakeTokenName, &chain.TokenContract{Issuer: fakeTokenName, Sym: eos.EOSSymbol}, abi.TransferABI())
	bc.DeployNative(agentName, &chain.ForwarderAgent{Victim: victimName}, nil)
	bc.CreateAccount(attackerName)
	if err := bc.Issue(eos.TokenContract, attackerName, eos.EOS(1_000_000_000_000)); err != nil {
		return nil, fmt.Errorf("fuzz: fund attacker: %w", err)
	}
	// "We allocate some EOS tokens to the fuzzing target" (§4.4).
	if err := bc.Issue(eos.TokenContract, victimName, eos.EOS(1_000_000_000_000)); err != nil {
		return nil, fmt.Errorf("fuzz: fund target: %w", err)
	}
	if err := bc.Issue(fakeTokenName, attackerName, eos.EOS(1_000_000_000_000)); err != nil {
		return nil, fmt.Errorf("fuzz: fund attacker with counterfeit EOS: %w", err)
	}

	f := &Fuzzer{
		cfg:            cfg,
		mod:            mod,
		instr:          res,
		abi:            contractABI,
		bc:             bc,
		scan:           scanner.New(mod, victimName),
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		solver:         &symbolic.Solver{MaxConflicts: cfg.SolverConflicts},
		dbg:            NewDBG(),
		seeds:          newPool(),
		coverage:       map[trace.BranchKey]struct{}{},
		attempted:      map[symexec.BranchTarget]bool{},
		lastRevertRead: map[eos.Name]chain.DBOp{},
	}
	for _, act := range contractABI.Actions {
		f.actions = append(f.actions, act.Name)
	}
	for _, d := range cfg.CustomDetectors {
		f.scan.AddCustom(d)
	}
	// Algorithm 1 line 2: fill seeds with random data.
	wellKnown := []eos.Name{attackerName, victimName, agentName, eos.MustName("bob")}
	for _, act := range f.actions {
		for i := 0; i < 4; i++ {
			f.seeds.queue(act).push(Seed{Action: act, Params: randomParams(f.rng, wellKnown)})
		}
	}
	return f, nil
}

// Chain exposes the campaign blockchain (examples inspect balances).
func (f *Fuzzer) Chain() *chain.Blockchain { return f.bc }

// payloadKind enumerates the transaction shapes Engine schedules: the
// adversary-oracle payloads of §2.3 plus direct action fuzzing.
type payloadKind int

const (
	payloadValidTransfer  payloadKind = iota + 1 // genuine EOS to the target
	payloadDirectFake                            // invoke eosponser directly
	payloadFakeToken                             // counterfeit EOS via fake.token
	payloadForwardedNotif                        // real EOS through fake.notif
	payloadDirectAction                          // invoke a non-transfer action
	payloadComposite                             // DBG writer→reader pair (adaptive only)
)

// Run executes the Algorithm 1 fuzzing loop for the configured budget and
// returns the campaign result.
func (f *Fuzzer) Run() (*Result, error) {
	return f.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is checked
// between iterations (each iteration is already bounded by the chain's fuel
// budget), so a per-job deadline interrupts even a contract that spins the
// interpreter on every transaction. On cancellation the context's error is
// returned and the partial campaign is discarded.
func (f *Fuzzer) RunContext(ctx context.Context) (*Result, error) {
	if _, err := f.RunPhase(ctx); err != nil {
		return nil, err
	}
	return f.Finish(ctx)
}

// PhaseReport summarises a fuzzing phase for the campaign fuel ledger.
type PhaseReport struct {
	// Saturated reports the adaptive early stop (no new coverage over the
	// saturation window).
	Saturated bool
	// Iterations is the iteration count executed so far.
	Iterations int
	// Coverage is the distinct-branch count so far.
	Coverage int
	// FuelUnspent is the budget the phase left unexecuted (saturation).
	FuelUnspent int
}

// RunPhase executes the Algorithm 1 fuzzing loop for the configured budget
// — the whole budget when Adaptive is off, or until saturation when on —
// and reports what it spent. The campaign may then grant extra budget with
// ContinuePhase; Finish runs the scenario pass and builds the Result.
func (f *Fuzzer) RunPhase(ctx context.Context) (PhaseReport, error) {
	if !f.started {
		f.started = true
		f.budget = f.cfg.Iterations
		f.arms = f.buildSchedule()
		if f.cfg.Adaptive {
			f.planner = schedule.NewPlanner()
			for _, e := range f.arms {
				f.planner.AddArm(int(e.kind), uint64(e.action), uint64(e.writer), schedule.BaseEnergy)
			}
		}
	}
	if err := f.runLoop(ctx); err != nil {
		return PhaseReport{}, err
	}
	return f.phaseReport(), nil
}

// ContinuePhase extends the iteration budget by a fuel-ledger grant and
// resumes the loop: the fuzzer keeps its coverage, seed energies, DBG and
// scanner state, so the extra fuel continues the same campaign rather than
// restarting one. A phase-2 saturation just leaves the remainder unspent.
func (f *Fuzzer) ContinuePhase(ctx context.Context, extra int) (PhaseReport, error) {
	f.budget += extra
	f.saturated = false
	// Grant a fresh saturation window measured from here, not from the
	// last gain: the grant is a deliberate second chance.
	f.lastGain = f.iter
	if err := f.runLoop(ctx); err != nil {
		return PhaseReport{}, err
	}
	return f.phaseReport(), nil
}

func (f *Fuzzer) phaseReport() PhaseReport {
	return PhaseReport{
		Saturated:   f.saturated,
		Iterations:  f.iter,
		Coverage:    len(f.coverage),
		FuelUnspent: f.budget - f.iter,
	}
}

// runLoop spends budgeted iterations. Adaptive=off walks the fixed
// round-robin exactly as before; Adaptive=on draws arms from the power
// schedule and feeds coverage deltas back into arm and seed energies.
func (f *Fuzzer) runLoop(ctx context.Context) error {
	f.ctx = ctx
	defer func() { f.ctx = nil }()
	window := f.cfg.SaturationWindow
	if window <= 0 {
		window = DefaultSaturationWindow
	}
	for ; f.iter < f.budget; f.iter++ {
		if err := ctx.Err(); err != nil {
			return failure.Wrap(failure.Timeout, err)
		}
		if f.cfg.Adaptive && f.iter-f.lastGain >= window {
			f.saturated = true
			f.planner.SaturationSkipped(f.budget - f.iter)
			break
		}
		before := len(f.coverage)
		if f.cfg.Adaptive {
			arm := f.planner.Next()
			entry := f.arms[arm]
			if err := f.stepArm(entry); err != nil {
				return err
			}
			gained := len(f.coverage) > before
			f.planner.Observe(arm, gained)
			if f.lastSeed.ok {
				f.seedUpdates += f.lastSeed.q.observe(f.lastSeed.pos, f.lastSeed.gen, gained)
				f.lastSeed = seedRef{}
			}
		} else {
			entry := f.arms[f.iter%len(f.arms)]
			if err := f.step(entry.kind, entry.action); err != nil {
				return err
			}
		}
		if len(f.coverage) > before {
			f.lastGain = f.iter
		}
		// Change-point coverage recording: O(distinct deltas) memory
		// instead of O(iterations); ExpandCoverage reconstructs the dense
		// series for curve consumers.
		if len(f.coverage) != before {
			f.covSeries = append(f.covSeries, CoveragePoint{Iteration: f.iter + 1, Branches: len(f.coverage)})
		}
	}
	return nil
}

// Finish runs the on-chain-data scenario pass (WACANA's multi-transaction
// families: deterministic replays on fresh chains, feeding only the
// scenario oracles — the concolic loop's verdicts are already final) and
// assembles the campaign Result.
func (f *Fuzzer) Finish(ctx context.Context) (*Result, error) {
	if f.finished {
		return nil, fmt.Errorf("fuzz: Finish called twice") //wasai:rawerr API-misuse guard, never reached by the drivers
	}
	f.finished = true
	// Close the change-point series with a final sample so the series
	// records how long the campaign ran.
	if n := len(f.covSeries); f.iter > 0 && (n == 0 || f.covSeries[n-1].Iteration != f.iter) {
		f.covSeries = append(f.covSeries, CoveragePoint{Iteration: f.iter, Branches: len(f.coverage)})
	}
	if err := f.runScenarios(ctx); err != nil {
		return nil, err
	}
	var sched schedule.Counters
	if f.planner != nil {
		sched = f.planner.Counters()
		sched.EnergyUpdates += f.seedUpdates
	}
	return &Result{
		Report:           f.scan.Report(),
		Coverage:         len(f.coverage),
		CoverageOverTime: f.covSeries,
		Iterations:       f.iter,
		AdaptiveSeeds:    f.adaptive,
		ReplayErrors:     f.replayErr,
		SolverStats:      f.solver.Stats,
		Custom:           f.scan.CustomResults(),
		Traces:           f.kept,
		Sched:            sched,
		Saturated:        f.saturated,
	}, nil
}

type scheduleEntry struct {
	kind   payloadKind
	action eos.Name
	// writer is set on composite arms only: the table-writing action the
	// arm schedules immediately before `action` (DBG sequence mutation).
	writer eos.Name
}

func (f *Fuzzer) buildSchedule() []scheduleEntry {
	sched := []scheduleEntry{
		{kind: payloadValidTransfer},
		{kind: payloadDirectFake},
		{kind: payloadFakeToken},
		{kind: payloadForwardedNotif},
	}
	for _, act := range f.actions {
		if act != eos.ActionTransfer {
			sched = append(sched, scheduleEntry{kind: payloadDirectAction, action: act})
		}
	}
	return sched
}

// stepArm dispatches one adaptive arm: plain payload arms reuse step;
// composite arms run the writer→reader pair.
func (f *Fuzzer) stepArm(entry scheduleEntry) error {
	if entry.kind == payloadComposite {
		return f.stepComposite(entry.action, entry.writer)
	}
	return f.step(entry.kind, entry.action)
}

// stepComposite is the DBG-aware sequence mutation: run a writer of a table
// the reader depends on, then the reader, as one scheduled unit — dependent
// transactions are explored together instead of waiting for the reader to
// revert first.
func (f *Fuzzer) stepComposite(reader, writer eos.Name) error {
	seed, pos, gen, ok := f.seeds.queue(reader).nextWeighted()
	if !ok {
		seed = Seed{Action: reader, Params: randomParams(f.rng, []eos.Name{attackerName, victimName})}
	} else {
		f.lastSeed = seedRef{q: f.seeds.queue(reader), pos: pos, gen: gen, ok: true}
	}
	dep := seed.clone()
	dep.Action = writer
	// Fine-grained mode: steer the writer's key parameter to the exact key
	// the reader last failed on, when one was observed.
	if readOp, failed := f.lastRevertRead[reader]; failed {
		if pi, ok := f.dbg.KeyParam(readOp.Table, writer); ok && pi < len(dep.Params) {
			dep.Params[pi].U64 = readOp.Key
		}
	}
	depRcpt, err := f.execute(payloadDirectAction, dep)
	if err != nil {
		return err
	}
	if err := f.observe(payloadDirectAction, dep, depRcpt); err != nil {
		return err
	}
	rcpt, err := f.execute(payloadDirectAction, seed)
	if err != nil {
		return err
	}
	if err := f.observe(payloadDirectAction, seed, rcpt); err != nil {
		return err
	}
	f.planner.CompositeFired()
	return nil
}

// step runs one fuzzing iteration: select a seed, execute, scan, feed back.
func (f *Fuzzer) step(kind payloadKind, action eos.Name) error {
	if kind != payloadDirectAction {
		action = eos.ActionTransfer
	}
	var seed Seed
	var ok bool
	if f.cfg.Adaptive {
		var pos int
		var gen uint32
		seed, pos, gen, ok = f.seeds.queue(action).nextWeighted()
		if ok {
			f.lastSeed = seedRef{q: f.seeds.queue(action), pos: pos, gen: gen, ok: true}
		}
	} else {
		seed, ok = f.seeds.queue(action).next()
	}
	if !ok {
		seed = Seed{Action: action, Params: randomParams(f.rng, []eos.Name{attackerName, victimName})}
	}

	rcpt, err := f.execute(kind, seed)
	if err != nil {
		return err
	}
	if err := f.observe(kind, seed, rcpt); err != nil {
		return err
	}

	// Transaction-dependency resolution (§3.3.2): when a direct action
	// reverts after reading a table, run a writer of that table with the
	// same parameters (so the row keys match) and retry the seed in the
	// same round.
	if !f.cfg.DisableDBG && kind == payloadDirectAction && rcpt.Reverted() {
		if readOp, failed := f.lastRevertRead[action]; failed {
			tb := readOp.Table
			if writer, ok := f.dbg.WriterFor(tb, action); ok {
				// A discovered dependency becomes a composite arm: the
				// adaptive schedule keeps exploring the writer→reader pair
				// on its own energy instead of waiting for another revert.
				if f.cfg.Adaptive && !f.planner.HasArm(int(payloadComposite), uint64(action), uint64(writer)) {
					f.arms = append(f.arms, scheduleEntry{kind: payloadComposite, action: action, writer: writer})
					f.planner.AddArm(int(payloadComposite), uint64(action), uint64(writer), 2*schedule.BaseEnergy)
				}
				dep := seed.clone()
				dep.Action = writer
				// Fine-grained mode: steer the writer's key parameter to
				// the exact key the reader needed.
				if pi, ok := f.dbg.KeyParam(tb, writer); ok && pi < len(dep.Params) {
					dep.Params[pi].U64 = readOp.Key
				}
				depRcpt, err := f.execute(payloadDirectAction, dep)
				if err != nil {
					return err
				}
				if err := f.observe(payloadDirectAction, dep, depRcpt); err != nil {
					return err
				}
				delete(f.lastRevertRead, action)
				retry, err := f.execute(kind, seed)
				if err != nil {
					return err
				}
				if err := f.observe(kind, seed, retry); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// execute materializes the payload transaction for the seed and pushes it.
func (f *Fuzzer) execute(kind payloadKind, seed Seed) (*chain.Receipt, error) {
	// Cancellation checkpoint: one step can push several transactions (the
	// DBG dependency dance), so the per-iteration check in RunContext alone
	// would let a timed-out job finish the whole dance first.
	if f.ctx != nil {
		if err := f.ctx.Err(); err != nil {
			return nil, failure.Wrap(failure.Timeout, err)
		}
	}
	params := f.effectiveParams(kind, seed)
	data := chain.EncodeTransfer(chain.TransferArgs{
		From:     eos.Name(params[0].U64),
		To:       eos.Name(params[1].U64),
		Quantity: eos.Asset{Amount: int64(params[2].Amount), Symbol: eos.Symbol(params[2].Symbol)},
		Memo:     string(params[3].Str),
	})
	var act chain.Action
	switch kind {
	case payloadValidTransfer, payloadForwardedNotif:
		act = chain.Action{Account: eos.TokenContract, Name: eos.ActionTransfer, Data: data}
	case payloadFakeToken:
		act = chain.Action{Account: fakeTokenName, Name: eos.ActionTransfer, Data: data}
	case payloadDirectFake:
		act = chain.Action{Account: victimName, Name: eos.ActionTransfer, Data: data}
	case payloadDirectAction:
		act = chain.Action{Account: victimName, Name: seed.Action, Data: data}
	}
	signer := eos.Name(params[0].U64)
	// The fuzzer holds the keys of accounts it invents: ensure the signer
	// exists so authorization can be granted.
	f.bc.CreateAccount(signer)
	act.Authorization = []chain.PermissionLevel{{Actor: signer, Permission: eos.ActiveAuth}}
	rcpt := f.bc.PushTransaction(chain.Transaction{Actions: []chain.Action{act}})
	// Escalate injected faults to campaign level. Ordinary reverts — asserts,
	// missing rows, bad auth — are the signal the oracles feed on and stay in
	// the receipt; only errors chaining to the injection sentinel mean the
	// infrastructure (not the contract) failed.
	if rcpt.Err != nil && errors.Is(rcpt.Err, faultinject.ErrInjected) {
		return nil, fmt.Errorf("fuzz: iteration %d: %w", f.iter, rcpt.Err)
	}
	return rcpt, nil
}

// effectiveParams constrains the seed to what the payload shape fixes: real
// token transfers are always attacker -> target/agent with a positive
// amount; direct invocations are fully seed-controlled.
func (f *Fuzzer) effectiveParams(kind payloadKind, seed Seed) []symexec.Param {
	params := seed.clone().Params
	switch kind {
	case payloadValidTransfer, payloadFakeToken:
		params[0].U64 = uint64(attackerName)
		params[1].U64 = uint64(victimName)
		params[2].Symbol = uint64(eos.EOSSymbol)
		params[2].Amount = clampAmount(params[2].Amount)
	case payloadForwardedNotif:
		params[0].U64 = uint64(attackerName)
		params[1].U64 = uint64(agentName)
		params[2].Symbol = uint64(eos.EOSSymbol)
		params[2].Amount = clampAmount(params[2].Amount)
	}
	return params
}

func clampAmount(a uint64) uint64 {
	if a == 0 || int64(a) <= 0 {
		return 1
	}
	if a > 1_000_000_000 {
		return 1_000_000_000
	}
	return a
}

// observe updates the scanner, the coverage map, the DBG and the feedback
// loop from one receipt. The only error source is the symbolic feedback
// stage (an injected solver starvation aborting the pool).
func (f *Fuzzer) observe(kind payloadKind, seed Seed, rcpt *chain.Receipt) error {
	victimTraces := make([]trace.Trace, 0, len(rcpt.Traces))
	for _, tr := range rcpt.Traces {
		if tr.Contract == victimName {
			victimTraces = append(victimTraces, tr)
		}
	}

	// Oracles (§3.5).
	switch kind {
	case payloadValidTransfer:
		for i := range victimTraces {
			f.scan.RecordEosponser(&victimTraces[i])
		}
	case payloadDirectFake, payloadFakeToken:
		for i := range victimTraces {
			f.scan.RecordEosponser(&victimTraces[i])
		}
		f.scan.ObserveFakeEOS(victimTraces)
	case payloadForwardedNotif:
		f.scan.ObserveFakeNotif(victimTraces, agentName)
	case payloadDirectAction:
		// Scope the MissAuth oracle to the invoked action's own trace:
		// inline/deferred payouts can notify the contract's eosponser in
		// the same receipt, and its bookkeeping writes are authorized by
		// the token transfer itself, not by permission APIs.
		var own []trace.Trace
		for i := range victimTraces {
			if victimTraces[i].Action == seed.Action {
				own = append(own, victimTraces[i])
			}
		}
		f.scan.ObserveDirectAction(own)
	}
	f.scan.Observe(victimTraces)
	f.scan.ObserveCustom(victimTraces)
	if f.cfg.KeepTraces {
		f.kept = append(f.kept, victimTraces...)
	}

	// Coverage (RQ1 unit: distinct branches of the fuzzing target only).
	before := len(f.coverage)
	for i := range victimTraces {
		for bk := range victimTraces[i].Branches() {
			f.coverage[bk] = struct{}{}
		}
	}
	if len(f.coverage) > before {
		// New territory invalidates earlier flip failures: the same target
		// may now be reachable under a feasible prefix.
		f.attempted = map[symexec.BranchTarget]bool{}
		// Elitism: a seed that discovered coverage is re-queued at the
		// front so deeper, state-dependent behaviour behind its path (for
		// example the tapos lottery outcome) gets retried across blocks.
		f.seeds.queue(seed.Action).pushFront(seed.clone())
	}

	// DBG update + transaction-dependency bookkeeping. Writes also teach
	// the key-level index (paper §5 future work): which seed parameter the
	// written primary key tracks.
	params0 := f.effectiveParams(kind, seed)
	var reads []chain.DBOp
	for _, op := range rcpt.DBOps {
		if op.Contract != victimName {
			continue
		}
		if op.Kind == chain.DBWrite {
			f.dbg.AddWrite(op.Table, op.Action)
			if op.Action == seed.Action {
				f.dbg.LearnKeyParam(op.Table, op.Action, op.Key, params0)
			}
		} else {
			f.dbg.AddRead(op.Table, op.Action)
			reads = append(reads, op)
		}
	}
	if kind == payloadDirectAction {
		if rcpt.Reverted() && len(reads) > 0 {
			f.lastRevertRead[seed.Action] = reads[len(reads)-1]
		} else if !rcpt.Reverted() {
			delete(f.lastRevertRead, seed.Action)
		}
	}

	// Symbolic feedback (§3.4): replay, flip, solve, mutate.
	if f.cfg.DisableFeedback {
		return nil
	}
	params := f.effectiveParams(kind, seed)
	for i := range victimTraces {
		if err := f.feedback(kind, seed, params, &victimTraces[i]); err != nil {
			return err
		}
	}
	return nil
}

// feedback replays one trace and turns unexplored flipped branches into
// adaptive seeds.
func (f *Fuzzer) feedback(kind payloadKind, seed Seed, params []symexec.Param, tr *trace.Trace) error {
	res, err := symexec.Run(f.mod, tr, params, symexec.Options{
		Globals:      map[uint32]uint64{0: uint64(victimName)},
		OpaqueInputs: f.cfg.OpaqueInputs,
	})
	if err != nil {
		// Traces that revert inside the dispatcher (e.g. the Fake EOS guard
		// firing) never reach an action function: nothing to flip there.
		if !errors.Is(err, symexec.ErrNoActionCall) {
			f.replayErr++
		}
		return nil
	}
	// Collect the flip queries for unexplored, unattempted targets and
	// solve them in parallel (§3.4.4: "we collect the target constraints
	// together and solve them in parallel").
	var pool []symbolic.Query
	for _, q := range symexec.FlipQueries(res) {
		key := trace.BranchKey{Func: q.Target.Func, PC: q.Target.PC, Dir: q.Target.Dir}
		if _, covered := f.coverage[key]; covered {
			continue
		}
		if f.attempted[q.Target] {
			continue
		}
		f.attempted[q.Target] = true
		pool = append(pool, symbolic.Query{ID: len(pool), Constraints: q.Constraints})
	}
	if len(pool) == 0 {
		return nil
	}
	ctx := f.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	answers, stats, poolErr := symbolic.SolvePoolCtx(ctx, pool, symbolic.PoolOptions{
		MaxConflicts: f.cfg.SolverConflicts,
		Faults:       f.cfg.Faults,
		Memo:         f.cfg.Memo,
		Incremental:  f.cfg.Incremental,
	})
	f.solver.Stats.Queries += stats.Queries
	f.solver.Stats.FastPathHits += stats.FastPathHits
	f.solver.Stats.SATCalls += stats.SATCalls
	f.solver.Stats.SATConflicts += stats.SATConflicts
	f.solver.Stats.Unknowns += stats.Unknowns
	f.solver.Stats.AssumeCalls += stats.AssumeCalls
	f.solver.Stats.AssumeUnsats += stats.AssumeUnsats
	f.solver.Stats.SimplifiedUnsats += stats.SimplifiedUnsats
	f.solver.Stats.Propagations += stats.Propagations
	for _, a := range answers {
		if a.Result != symbolic.Sat {
			continue
		}
		mutated := symexec.ApplyModel(params, a.Model)
		f.adaptive++
		f.seeds.queue(seed.Action).pushFront(Seed{Action: seed.Action, Params: mutated})
	}
	if poolErr != nil {
		return fmt.Errorf("fuzz: iteration %d: solver pool: %w", f.iter, poolErr)
	}
	return nil
}
