package fuzz

import (
	"math/rand"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/scanner"
	"repro/internal/symexec"
)

func runCampaign(t *testing.T, spec contractgen.Spec, cfg Config) *Result {
	t.Helper()
	c, err := contractgen.Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	f, err := New(c.Module, c.ABI, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestDetectsEachClass runs a campaign against a vulnerable and a safe
// sample of every class and checks the per-class verdict.
func TestDetectsEachClass(t *testing.T) {
	for _, class := range contractgen.Classes {
		for _, vul := range []bool{true, false} {
			spec := contractgen.Spec{Class: class, Vulnerable: vul, Seed: 42}
			res := runCampaign(t, spec, DefaultConfig())
			got := res.Report.Vulnerable[class]
			if got != vul {
				t.Errorf("%s vulnerable=%v: detector said %v", class, vul, got)
			}
		}
	}
}

// TestDetectsGuardedTemplate: the vulnerability sits behind a nested
// branch with a random 64-bit constant — only the concolic feedback can
// reach it.
func TestDetectsGuardedTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec := contractgen.RandomSpec(contractgen.ClassRollback, true, rng)
	spec.DBDependent = false
	res := runCampaign(t, spec, DefaultConfig())
	if !res.Report.Vulnerable[contractgen.ClassRollback] {
		t.Errorf("guarded Rollback template missed (branches: %+v, adaptive seeds: %d)",
			spec.Branches, res.AdaptiveSeeds)
	}
	if res.AdaptiveSeeds == 0 {
		t.Error("no adaptive seeds generated")
	}
}

// TestFeedbackBeatsRandomCoverage: with the symbolic feedback enabled the
// fuzzer explores strictly more branches on branch-heavy contracts.
func TestFeedbackBeatsRandomCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	spec := contractgen.RandomSpec(contractgen.ClassBlockinfoDep, true, rng)
	cfg := DefaultConfig()
	with := runCampaign(t, spec, cfg)
	cfg.DisableFeedback = true
	without := runCampaign(t, spec, cfg)
	if with.Coverage <= without.Coverage {
		t.Errorf("feedback coverage %d <= blackbox coverage %d", with.Coverage, without.Coverage)
	}
}

// TestDBGResolvesTransactionDependency: reveal requires a prior deposit;
// the DBG schedules the writer automatically.
func TestDBGResolvesTransactionDependency(t *testing.T) {
	spec := contractgen.Spec{Class: contractgen.ClassRollback, Vulnerable: true, DBDependent: true, Seed: 5}
	res := runCampaign(t, spec, DefaultConfig())
	if !res.Report.Vulnerable[contractgen.ClassRollback] {
		t.Error("DB-dependent Rollback missed")
	}
	// Note: the pure-random ablation can still stumble into the dependency
	// when the reveal seed's `from` collides with an earlier deposit's, so
	// the only hard property is that the DBG-guided run succeeds; the
	// iterations-to-trigger gap is measured by the ablation bench instead.
}

// TestComplicatedVerificationPenetrated: the §4.3 scenario end to end.
func TestComplicatedVerificationPenetrated(t *testing.T) {
	spec := contractgen.Spec{
		Class:      contractgen.ClassFakeEOS,
		Vulnerable: true,
		Verification: []contractgen.VerCheck{
			{Field: "amount", Value: 123_4567},
			{Field: "symbol", Value: uint64(eos.EOSSymbol)},
		},
		Seed: 6,
	}
	res := runCampaign(t, spec, DefaultConfig())
	if !res.Report.Vulnerable[contractgen.ClassFakeEOS] {
		t.Error("Fake EOS behind complicated verification missed")
	}
}

// TestObfuscatedContractDetected: popcount + opaque recursion applied.
func TestObfuscatedContractDetected(t *testing.T) {
	for _, vul := range []bool{true, false} {
		spec := contractgen.Spec{Class: contractgen.ClassFakeEOS, Vulnerable: vul, Seed: 8}
		c, err := contractgen.Generate(spec)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		rng := rand.New(rand.NewSource(8))
		if _, err := contractgen.Obfuscate(c.Module, contractgen.ObfuscateOptions{
			Popcount: true, OpaqueRecursion: true, Rng: rng,
		}); err != nil {
			t.Fatalf("Obfuscate: %v", err)
		}
		f, err := New(c.Module, c.ABI, DefaultConfig())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := f.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := res.Report.Vulnerable[contractgen.ClassFakeEOS]; got != vul {
			t.Errorf("obfuscated FakeEOS vulnerable=%v: detector said %v", vul, got)
		}
	}
}

func TestSeedQueueRotation(t *testing.T) {
	q := &seedQueue{}
	q.push(Seed{Action: eos.MustName("a")})
	q.push(Seed{Action: eos.MustName("b")})
	s1, _ := q.next()
	s2, _ := q.next()
	s3, _ := q.next()
	if s1.Action != eos.MustName("a") || s2.Action != eos.MustName("b") || s3.Action != eos.MustName("a") {
		t.Errorf("rotation broken: %v %v %v", s1.Action, s2.Action, s3.Action)
	}
	q.pushFront(Seed{Action: eos.MustName("c")})
	s4, _ := q.next()
	if s4.Action != eos.MustName("c") {
		t.Errorf("pushFront not served first: %v", s4.Action)
	}
}

func TestDBGWriterLookup(t *testing.T) {
	g := NewDBG()
	tb := eos.MustName("bets")
	g.AddWrite(tb, eos.MustName("deposit"))
	g.AddRead(tb, eos.MustName("reveal"))
	w, ok := g.WriterFor(tb, eos.MustName("reveal"))
	if !ok || w != eos.MustName("deposit") {
		t.Errorf("WriterFor = %v %v", w, ok)
	}
	if _, ok := g.WriterFor(eos.MustName("other"), 0); ok {
		t.Error("found writer for unknown table")
	}
}

// TestCustomDetectorExtension exercises the paper's §5 extension interface:
// a new oracle flagging deferred-transaction use, registered without
// touching the engine.
func TestCustomDetectorExtension(t *testing.T) {
	// Safe Rollback contracts pay out via send_deferred: the builtin
	// Rollback oracle stays quiet, the custom detector fires.
	spec := contractgen.Spec{Class: contractgen.ClassRollback, Vulnerable: false, Seed: 3}
	c, err := contractgen.Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	cfg := DefaultConfig()
	cfg.CustomDetectors = []scanner.CustomDetector{
		scanner.NewAPICallDetector("DeferredUse", c.Module, "send_deferred"),
		scanner.NewAPICallDetector("TimeSource", c.Module, "current_time"),
	}
	f, err := New(c.Module, c.ABI, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Report.Vulnerable[contractgen.ClassRollback] {
		t.Error("builtin Rollback oracle fired on the deferred payout")
	}
	if !res.Custom["DeferredUse"] {
		t.Error("custom DeferredUse detector missed the send_deferred call")
	}
	if res.Custom["TimeSource"] {
		t.Error("TimeSource fired though current_time is never called")
	}
}

// TestKeyLevelDBGResolvesCrossKeyDependency: reveal requires a deposit row
// keyed by its `to` argument while deposit writes rows keyed by `from` —
// only the learned key-parameter mapping (the §5 fine-grained DBG) can
// construct the right writer seed.
func TestKeyLevelDBGResolvesCrossKeyDependency(t *testing.T) {
	spec := contractgen.Spec{
		Class: contractgen.ClassRollback, Vulnerable: true,
		CrossKeyDep: true, Seed: 17,
	}
	res := runCampaign(t, spec, DefaultConfig())
	if !res.Report.Vulnerable[contractgen.ClassRollback] {
		t.Error("cross-key DB dependency not resolved")
	}
}

func TestDBGKeyParamLearning(t *testing.T) {
	g := NewDBG()
	tb := eos.MustName("deposits")
	act := eos.MustName("deposit")
	params := []symexec.Param{
		{Type: "name", U64: 111},
		{Type: "name", U64: 222},
		{Type: "asset", Amount: 222}, // pointer types never key rows
	}
	g.AddWrite(tb, act)
	g.LearnKeyParam(tb, act, 222, params)
	pi, ok := g.KeyParam(tb, act)
	if !ok || pi != 1 {
		t.Errorf("KeyParam = %d %v, want 1", pi, ok)
	}
	// Uncorrelated keys record the absence.
	g2 := NewDBG()
	g2.LearnKeyParam(tb, act, 999, params)
	if _, ok := g2.KeyParam(tb, act); ok {
		t.Error("uncorrelated key should not map to a parameter")
	}
}
