package fuzz

// scenario.go implements the on-chain-data scenario driver: the
// multi-transaction oracle families of WACANA (state tampering across
// transactions, transaction-ordering dependence, inter-contract call
// exposure) that no single-trace oracle of §3.5 can observe. Each
// scenario replays a small, fixed transaction script on a fresh chain —
// no randomness, no coupling to the concolic loop's chain state — so the
// verdicts are a pure function of the target module and invariant under
// worker count, memoization, and the fast-VM flag. Evidence feeds only
// the scanner's scenario observers; the five trace-oracle verdicts are
// untouched by construction.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/chain"
	"repro/internal/eos"
	"repro/internal/failure"
	"repro/internal/trace"
)

// Scenario-only accounts, disjoint from the campaign accounts so the
// concolic loop's seeds can never alias them.
var (
	scnOwnerName = eos.MustName("scn.owner")
	scnRivalName = eos.MustName("scn.rival")
	scnEvilName  = eos.MustName("scn.evil")
)

// scnAmount clears every generated floor assert (bets >= 1.0000 EOS,
// reveals >= 10.0000 EOS) so scenario transactions exercise the action
// bodies rather than their entry asserts.
const scnAmount = 500_000

// runScenarios executes the three scenario families for every
// non-transfer ABI action. Transfer stays out: notification handling of
// token transfers is the Fake EOS / Fake Notif oracle domain.
func (f *Fuzzer) runScenarios(ctx context.Context) error {
	acts := make([]eos.Name, 0, len(f.actions))
	for _, a := range f.actions {
		if a != eos.ActionTransfer {
			acts = append(acts, a)
		}
	}
	for _, act := range acts {
		if err := ctx.Err(); err != nil {
			return failure.Wrap(failure.Timeout, err)
		}
		if err := f.scenarioStateTamper(act); err != nil {
			return err
		}
		if err := f.scenarioOrderDep(act); err != nil {
			return err
		}
		if err := f.scenarioCrossContract(act); err != nil {
			return err
		}
	}
	return nil
}

// scenarioChain builds a fresh chain mirroring the campaign deployment:
// same backend personality, same instrumented victim module, funded
// victim. Block state is held so tapos-derived randomness is identical
// across replays and permutations — without this, ordinary block
// advancement would masquerade as ordering dependence.
func (f *Fuzzer) scenarioChain() (*chain.Blockchain, error) {
	bc := chain.NewWithBackend(f.bc.Backend())
	bc.Collector = trace.NewCollector()
	bc.FastVM = f.cfg.FastVM
	bc.Fuel = f.bc.Fuel
	if err := bc.DeployModule(victimName, f.instr.Module, f.abi, f.instr.Sites); err != nil {
		return nil, failure.Wrap(failure.Decode, fmt.Errorf("fuzz: scenario deploy: %w", err))
	}
	if err := bc.Issue(eos.TokenContract, victimName, eos.EOS(1_000_000_000_000)); err != nil {
		return nil, fmt.Errorf("fuzz: scenario fund target: %w", err)
	}
	bc.HoldBlocks = true
	return bc, nil
}

// scnPush pushes one action with the shared transfer-shaped payload
// (from -> victim, a quantity above every generated floor), signed by
// `signer`. Payload and authorization are decoupled on purpose: the
// state-tampering scenario replays one payload under two authorities.
func scnPush(bc *chain.Blockchain, account, action, from, signer eos.Name) *chain.Receipt {
	bc.CreateAccount(from)
	bc.CreateAccount(signer)
	return bc.PushTransaction(chain.Transaction{Actions: []chain.Action{{
		Account:       account,
		Name:          action,
		Authorization: []chain.PermissionLevel{{Actor: signer, Permission: eos.ActiveAuth}},
		Data: chain.EncodeTransfer(chain.TransferArgs{
			From:     from,
			To:       victimName,
			Quantity: eos.EOS(scnAmount),
		}),
	}}})
}

// scenarioStateTamper replays one action twice with the identical
// payload: first signed by the payload owner, then by the attacker. The
// scanner flags the contract when the attacker-signed replay commits and
// overwrites a row the owner-signed transaction established.
func (f *Fuzzer) scenarioStateTamper(act eos.Name) error {
	bc, err := f.scenarioChain()
	if err != nil {
		return err
	}
	owner := scnPush(bc, victimName, act, scnOwnerName, scnOwnerName)
	tamper := scnPush(bc, victimName, act, scnOwnerName, attackerName)
	f.scan.ObserveTamperPair(act, owner, tamper)
	return nil
}

// scenarioOrderDep runs two independently authorized submissions of one
// action in both orders, each on its own fresh chain, and hands the
// canonical outcomes to the scanner.
func (f *Fuzzer) scenarioOrderDep(act eos.Name) error {
	forward, err := f.orderOutcome(act, [2]eos.Name{scnOwnerName, scnRivalName})
	if err != nil {
		return err
	}
	reversed, err := f.orderOutcome(act, [2]eos.Name{scnRivalName, scnOwnerName})
	if err != nil {
		return err
	}
	f.scan.ObserveOrderOutcome(forward, reversed)
	return nil
}

// orderOutcome executes the actor sequence and renders the outcome
// canonically: per-actor commit results under fixed labels (so the
// encoding is a function of who succeeded, not of submission position)
// followed by the victim's database dump.
func (f *Fuzzer) orderOutcome(act eos.Name, order [2]eos.Name) (string, error) {
	bc, err := f.scenarioChain()
	if err != nil {
		return "", err
	}
	committed := map[eos.Name]bool{}
	for _, actor := range order {
		rcpt := scnPush(bc, victimName, act, actor, actor)
		committed[actor] = !rcpt.Reverted()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s=%v %s=%v\n",
		scnOwnerName, committed[scnOwnerName], scnRivalName, committed[scnRivalName])
	sb.WriteString(bc.DB().DumpContract(victimName))
	return sb.String(), nil
}

// scenarioCrossContract pushes the action at a malicious notifier that
// forwards every self-addressed action to the victim, so the victim's
// apply runs with code naming the foreign contract. The scanner flags
// the contract if it sends an inline action in that context.
func (f *Fuzzer) scenarioCrossContract(act eos.Name) error {
	bc, err := f.scenarioChain()
	if err != nil {
		return err
	}
	bc.DeployNative(scnEvilName, &chain.EvilNotifier{Victim: victimName}, nil)
	rcpt := scnPush(bc, scnEvilName, act, attackerName, attackerName)
	var victimTraces []trace.Trace
	for _, tr := range rcpt.Traces {
		if tr.Contract == victimName {
			victimTraces = append(victimTraces, tr)
		}
	}
	f.scan.ObserveNotifyContext(victimTraces)
	return nil
}
