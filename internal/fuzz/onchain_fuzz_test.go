package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/wasm"
)

// onchainActions is the fixed ABI the fuzz target pairs with arbitrary
// decoded modules: the full canonical action surface, so the scenario
// driver sweeps the same action names the generated corpus installs.
func onchainActions() []eos.Name {
	return []eos.Name{
		contractgen.ActionDeposit, contractgen.ActionSweep, contractgen.ActionReveal,
		contractgen.ActionSettle, contractgen.ActionClaim, contractgen.ActionRelay,
	}
}

// FuzzOnChainOracles feeds arbitrary bytes through the module decoder into
// a full fuzzing run, including the on-chain-data scenario pass. Two
// properties must hold on every decodable module:
//
//   - no panic, whatever the module shape;
//   - the scenario verdicts (StateTamper, OrderDep, CrossContract) are a
//     pure function of the module. The second run mutates the concolic
//     loop's transaction sequence — different seed, different budget — and
//     the scenario classes must not move: their scripts replay on fresh
//     chains with held blocks, so nothing the main loop executes may leak
//     into them.
func FuzzOnChainOracles(f *testing.F) {
	for _, data := range onchainCorpus(f) {
		f.Add(data, uint64(0))
	}
	f.Fuzz(func(t *testing.T, data []byte, mut uint64) {
		mod, err := wasm.Decode(data)
		if err != nil {
			return
		}
		if err := wasm.Validate(mod); err != nil {
			return
		}
		run := func(seed int64, iters int) map[contractgen.Class]bool {
			fz, err := New(mod, contractgen.TransferFieldsABI(onchainActions()...), Config{
				Iterations:      iters,
				SolverConflicts: 1_000,
				DisableFeedback: true,
				Seed:            seed,
			})
			if err != nil {
				return nil
			}
			res, err := fz.Run()
			if err != nil {
				return nil
			}
			return res.Report.Vulnerable
		}
		base := run(1, 2)
		if base == nil {
			return
		}
		mutated := run(int64(mut%64)+2, int(mut%3)+1)
		if mutated == nil {
			return
		}
		for _, class := range []contractgen.Class{
			contractgen.ClassStateTamper,
			contractgen.ClassOrderDep,
			contractgen.ClassCrossContract,
		} {
			if base[class] != mutated[class] {
				t.Errorf("%s verdict unstable under transaction-sequence mutation: %v vs %v (mut=%d)",
					class, base[class], mutated[class], mut)
			}
		}
	})
}

// onchainCorpus encodes one full module per generated class in both
// polarities — every dispatcher arm, guard and scenario archetype the
// generator can emit — plus the intrinsic-free boilerplate shape.
func onchainCorpus(tb testing.TB) map[string][]byte {
	tb.Helper()
	entries := map[string][]byte{}
	add := func(name string, c *contractgen.Contract) {
		data, err := wasm.Encode(c.Module)
		if err != nil {
			tb.Fatalf("encode %s: %v", name, err)
		}
		entries[name] = data
	}
	for i, class := range contractgen.Classes {
		slug := strings.ToLower(class.String())
		for _, vul := range []bool{true, false} {
			c, err := contractgen.Generate(contractgen.Spec{Class: class, Vulnerable: vul, Seed: int64(40 + i)})
			if err != nil {
				tb.Fatalf("generate %s/%v: %v", slug, vul, err)
			}
			name := "contractgen-" + slug
			if !vul {
				name += "-safe"
			}
			add(name, c)
		}
	}
	add("contractgen-trivial", contractgen.Trivial())
	return entries
}

// TestFuzzOnChainOraclesSeedCorpus keeps the checked-in corpus in sync with
// the generator. Regenerate with:
//
//	UPDATE_FUZZ_CORPUS=1 go test -run TestFuzzOnChainOraclesSeedCorpus ./internal/fuzz/
func TestFuzzOnChainOraclesSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzOnChainOracles")
	update := os.Getenv("UPDATE_FUZZ_CORPUS") != ""
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range onchainCorpus(t) {
		path := filepath.Join(dir, name)
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\nuint64(0)\n", data)
		if update {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus entry missing (regenerate with UPDATE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != want {
			t.Errorf("seed corpus entry %s is stale (regenerate with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
}
