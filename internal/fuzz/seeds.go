// Package fuzz implements Engine, WASAI's fuzzing skeleton (paper §3.3 and
// Algorithm 1): seed scheduling with transaction-dependency tracking through
// a database dependency graph (DBG), the §2.3 adversary-oracle payloads, and
// the symbolic-execution feedback loop that turns flipped path constraints
// into adaptive seeds.
package fuzz

import (
	"math/rand"

	"repro/internal/eos"
	"repro/internal/symexec"
)

// Seed is Γ⟨φ, ρ⃗⟩: an action name and its parameters (§3.1). All generated
// contracts share the transfer-shaped signature (from, to, quantity, memo).
type Seed struct {
	Action eos.Name
	Params []symexec.Param
}

// clone deep-copies a seed.
func (s Seed) clone() Seed {
	params := make([]symexec.Param, len(s.Params))
	copy(params, s.Params)
	for i := range params {
		if params[i].Str != nil {
			params[i].Str = append([]byte(nil), params[i].Str...)
		}
	}
	return Seed{Action: s.Action, Params: params}
}

// seedQueue is the circular per-action queue of §3.3.2: Engine pops the
// head and pushes it back to the tail.
type seedQueue struct {
	items []Seed
}

// maxQueue caps a per-action queue; the oldest tail entries are evicted.
const maxQueue = 32

func (q *seedQueue) push(s Seed) {
	q.items = append(q.items, s)
	if len(q.items) > maxQueue {
		q.items = q.items[:maxQueue]
	}
}

// pushFront queues an adaptive or coverage-increasing seed for immediate
// (and repeated) use.
func (q *seedQueue) pushFront(s Seed) {
	q.items = append([]Seed{s}, q.items...)
	if len(q.items) > maxQueue {
		q.items = q.items[:maxQueue]
	}
}

func (q *seedQueue) next() (Seed, bool) {
	if len(q.items) == 0 {
		return Seed{}, false
	}
	s := q.items[0]
	q.items = append(q.items[1:], s)
	return s, true
}

// Len returns the queue length.
func (q *seedQueue) len() int { return len(q.items) }

// pool is the seed pool: a mapping from action name to its queue.
type pool struct {
	queues map[eos.Name]*seedQueue
}

func newPool() *pool { return &pool{queues: map[eos.Name]*seedQueue{}} }

func (p *pool) queue(action eos.Name) *seedQueue {
	q, ok := p.queues[action]
	if !ok {
		q = &seedQueue{}
		p.queues[action] = q
	}
	return q
}

// randomParams draws an initial random seed ρ⃗ (Algorithm 1 line 2).
func randomParams(rng *rand.Rand, accounts []eos.Name) []symexec.Param {
	pick := func() uint64 {
		if rng.Intn(3) == 0 {
			return rng.Uint64()
		}
		return uint64(accounts[rng.Intn(len(accounts))])
	}
	amount := uint64(rng.Intn(2_000_000))
	if rng.Intn(4) == 0 {
		amount = uint64(rng.Uint32())
	}
	memoLen := rng.Intn(12)
	memo := make([]byte, memoLen)
	for i := range memo {
		memo[i] = byte('a' + rng.Intn(26))
	}
	return []symexec.Param{
		{Type: "name", U64: pick()},
		{Type: "name", U64: pick()},
		{Type: "asset", Amount: amount, Symbol: uint64(eos.EOSSymbol)},
		{Type: "string", Str: memo},
	}
}

// DBG is the database dependency graph of §3.3.2: per-table reader and
// writer action sets, representing transaction dependency implicitly.
// Beyond the paper's table-level graph it learns, per writer, which seed
// parameter the written primary key correlates with — the fine-grained
// "parse the database index" mode §5 lists as future work. With that
// mapping, Engine can synthesize a writer seed for any required key, not
// just replay the reader's parameters.
type DBG struct {
	writers map[eos.Name]map[eos.Name]bool // table -> actions that write it
	readers map[eos.Name]map[eos.Name]bool
	// keyParam[tb][action] is the index of the seed parameter observed to
	// equal the written primary key (-1 = no correlation found).
	keyParam map[eos.Name]map[eos.Name]int
}

// NewDBG returns an empty graph.
func NewDBG() *DBG {
	return &DBG{
		writers:  map[eos.Name]map[eos.Name]bool{},
		readers:  map[eos.Name]map[eos.Name]bool{},
		keyParam: map[eos.Name]map[eos.Name]int{},
	}
}

// AddWrite records ⟨write, tb⟩ by action.
func (g *DBG) AddWrite(tb, action eos.Name) {
	if g.writers[tb] == nil {
		g.writers[tb] = map[eos.Name]bool{}
	}
	g.writers[tb][action] = true
}

// LearnKeyParam correlates a written key with the writer's seed parameters
// (scalar parameters only — pointers cannot key rows in our archetypes).
func (g *DBG) LearnKeyParam(tb, action eos.Name, key uint64, params []symexec.Param) {
	if g.keyParam[tb] == nil {
		g.keyParam[tb] = map[eos.Name]int{}
	}
	if _, known := g.keyParam[tb][action]; known {
		return
	}
	for i, p := range params {
		if (p.Type == "name" || p.Type == "uint64" || p.Type == "int64") && p.U64 == key {
			g.keyParam[tb][action] = i
			return
		}
	}
	g.keyParam[tb][action] = -1
}

// KeyParam returns the learned key-parameter index for a writer.
func (g *DBG) KeyParam(tb, action eos.Name) (int, bool) {
	i, ok := g.keyParam[tb][action]
	return i, ok && i >= 0
}

// AddRead records ⟨read, tb⟩ by action.
func (g *DBG) AddRead(tb, action eos.Name) {
	if g.readers[tb] == nil {
		g.readers[tb] = map[eos.Name]bool{}
	}
	g.readers[tb][action] = true
}

// WriterFor returns an action that writes tb, excluding `not`.
func (g *DBG) WriterFor(tb, not eos.Name) (eos.Name, bool) {
	for a := range g.writers[tb] {
		if a != not {
			return a, true
		}
	}
	return 0, false
}
