// Package fuzz implements Engine, WASAI's fuzzing skeleton (paper §3.3 and
// Algorithm 1): seed scheduling with transaction-dependency tracking through
// a database dependency graph (DBG), the §2.3 adversary-oracle payloads, and
// the symbolic-execution feedback loop that turns flipped path constraints
// into adaptive seeds.
package fuzz

import (
	"math/rand"

	"repro/internal/eos"
	"repro/internal/schedule"
	"repro/internal/symexec"
)

// Seed is Γ⟨φ, ρ⃗⟩: an action name and its parameters (§3.1). All generated
// contracts share the transfer-shaped signature (from, to, quantity, memo).
type Seed struct {
	Action eos.Name
	Params []symexec.Param
}

// clone deep-copies a seed.
func (s Seed) clone() Seed {
	params := make([]symexec.Param, len(s.Params))
	copy(params, s.Params)
	for i := range params {
		if params[i].Str != nil {
			params[i].Str = append([]byte(nil), params[i].Str...)
		}
	}
	return Seed{Action: s.Action, Params: params}
}

// seedQueue is the circular per-action queue of §3.3.2, stored as a fixed
// ring so the hot loop's rotation is index arithmetic instead of slice
// reshuffling: `next` advances the head (the popped seed stays, now at the
// logical tail — the same rotation the old slice version expressed with an
// append), and neither selection path allocates.
//
// Each slot also carries the power-schedule state for Config.Adaptive:
// an energy score (boosted by coverage, decayed by dry streaks), the
// smooth-WRR credit, and a generation counter so an energy update after a
// step can detect that its slot was evicted mid-step (the elitism pushFront
// in observe can overwrite the tail).
type seedQueue struct {
	items  [maxQueue]Seed
	energy [maxQueue]int
	credit [maxQueue]int
	dry    [maxQueue]int
	gen    [maxQueue]uint32
	head   int
	count  int
}

// maxQueue caps a per-action queue; the oldest tail entries are evicted.
const maxQueue = 32

// set overwrites a slot with a fresh seed at the given energy.
func (q *seedQueue) set(pos int, s Seed, energy int) {
	q.items[pos] = s
	q.energy[pos] = energy
	q.credit[pos] = 0
	q.dry[pos] = 0
	q.gen[pos]++
}

// push appends at the tail; a full queue drops the new seed (the historical
// slice semantics: append-then-truncate cut the appended item).
func (q *seedQueue) push(s Seed) {
	if q.count == maxQueue {
		return
	}
	q.set((q.head+q.count)%maxQueue, s, schedule.BaseEnergy)
	q.count++
}

// pushFront queues an adaptive or coverage-increasing seed for immediate
// (and repeated) use; a full queue evicts the oldest tail entry. Privileged
// seeds start hot: the solver aimed them at a specific branch.
func (q *seedQueue) pushFront(s Seed) {
	q.head = (q.head - 1 + maxQueue) % maxQueue
	q.set(q.head, s, 2*schedule.BaseEnergy)
	if q.count < maxQueue {
		q.count++
	}
}

// next pops the head and rotates it to the tail — the Adaptive=off path,
// byte-identical to the historical round-robin. The live window is
// [head, head+count): rotation copies the head slot to the slot one past
// the window and advances the head (a no-op copy when the ring is full).
func (q *seedQueue) next() (Seed, bool) {
	if q.count == 0 {
		return Seed{}, false
	}
	s := q.items[q.head]
	if tail := (q.head + q.count) % maxQueue; tail != q.head {
		q.items[tail] = q.items[q.head]
		q.energy[tail] = q.energy[q.head]
		q.credit[tail] = q.credit[q.head]
		q.dry[tail] = q.dry[q.head]
		q.gen[tail]++
	}
	q.head = (q.head + 1) % maxQueue
	return s, true
}

// nextWeighted is the Adaptive=on selection: smooth weighted round-robin
// over the live slots (credit grows by energy; highest credit fires, ties
// to the lowest logical index; the winner repays the total), returning the
// slot and its generation so the caller can feed the outcome back with
// observe. The head does not move — rotation is subsumed by the credits.
func (q *seedQueue) nextWeighted() (Seed, int, uint32, bool) {
	if q.count == 0 {
		return Seed{}, -1, 0, false
	}
	best, total := -1, 0
	for i := 0; i < q.count; i++ {
		pos := (q.head + i) % maxQueue
		q.credit[pos] += q.energy[pos]
		total += q.energy[pos]
		if best == -1 || q.credit[pos] > q.credit[best] {
			best = pos
		}
	}
	q.credit[best] -= total
	return q.items[best], best, q.gen[best], true
}

// observe feeds a step's coverage outcome back into the served slot's
// energy (double on gain, halve after a dry streak). A stale generation
// means the slot was recycled mid-step; the update is dropped. Returns the
// number of energy changes applied (0 or 1) for the scheduler counters.
func (q *seedQueue) observe(pos int, gen uint32, gained bool) int {
	if pos < 0 || q.gen[pos] != gen {
		return 0
	}
	e := q.energy[pos]
	if gained {
		q.dry[pos] = 0
		e *= 2
	} else {
		q.dry[pos]++
		if q.dry[pos] < schedule.DecayAfter {
			return 0
		}
		q.dry[pos] = 0
		e /= 2
	}
	if e < schedule.MinEnergy {
		e = schedule.MinEnergy
	}
	if e > schedule.MaxEnergy {
		e = schedule.MaxEnergy
	}
	if e == q.energy[pos] {
		return 0
	}
	q.energy[pos] = e
	return 1
}

// Len returns the queue length.
func (q *seedQueue) len() int { return q.count }

// pool is the seed pool: a mapping from action name to its queue.
type pool struct {
	queues map[eos.Name]*seedQueue
}

func newPool() *pool { return &pool{queues: map[eos.Name]*seedQueue{}} }

func (p *pool) queue(action eos.Name) *seedQueue {
	q, ok := p.queues[action]
	if !ok {
		q = &seedQueue{}
		p.queues[action] = q
	}
	return q
}

// randomParams draws an initial random seed ρ⃗ (Algorithm 1 line 2).
func randomParams(rng *rand.Rand, accounts []eos.Name) []symexec.Param {
	pick := func() uint64 {
		if rng.Intn(3) == 0 {
			return rng.Uint64()
		}
		return uint64(accounts[rng.Intn(len(accounts))])
	}
	amount := uint64(rng.Intn(2_000_000))
	if rng.Intn(4) == 0 {
		amount = uint64(rng.Uint32())
	}
	memoLen := rng.Intn(12)
	memo := make([]byte, memoLen)
	for i := range memo {
		memo[i] = byte('a' + rng.Intn(26))
	}
	return []symexec.Param{
		{Type: "name", U64: pick()},
		{Type: "name", U64: pick()},
		{Type: "asset", Amount: amount, Symbol: uint64(eos.EOSSymbol)},
		{Type: "string", Str: memo},
	}
}

// DBG is the database dependency graph of §3.3.2: per-table reader and
// writer action sets, representing transaction dependency implicitly.
// Beyond the paper's table-level graph it learns, per writer, which seed
// parameter the written primary key correlates with — the fine-grained
// "parse the database index" mode §5 lists as future work. With that
// mapping, Engine can synthesize a writer seed for any required key, not
// just replay the reader's parameters.
type DBG struct {
	writers map[eos.Name]map[eos.Name]bool // table -> actions that write it
	readers map[eos.Name]map[eos.Name]bool
	// keyParam[tb][action] is the index of the seed parameter observed to
	// equal the written primary key (-1 = no correlation found).
	keyParam map[eos.Name]map[eos.Name]int
}

// NewDBG returns an empty graph.
func NewDBG() *DBG {
	return &DBG{
		writers:  map[eos.Name]map[eos.Name]bool{},
		readers:  map[eos.Name]map[eos.Name]bool{},
		keyParam: map[eos.Name]map[eos.Name]int{},
	}
}

// AddWrite records ⟨write, tb⟩ by action.
func (g *DBG) AddWrite(tb, action eos.Name) {
	if g.writers[tb] == nil {
		g.writers[tb] = map[eos.Name]bool{}
	}
	g.writers[tb][action] = true
}

// LearnKeyParam correlates a written key with the writer's seed parameters
// (scalar parameters only — pointers cannot key rows in our archetypes).
func (g *DBG) LearnKeyParam(tb, action eos.Name, key uint64, params []symexec.Param) {
	if g.keyParam[tb] == nil {
		g.keyParam[tb] = map[eos.Name]int{}
	}
	if _, known := g.keyParam[tb][action]; known {
		return
	}
	for i, p := range params {
		if (p.Type == "name" || p.Type == "uint64" || p.Type == "int64") && p.U64 == key {
			g.keyParam[tb][action] = i
			return
		}
	}
	g.keyParam[tb][action] = -1
}

// KeyParam returns the learned key-parameter index for a writer.
func (g *DBG) KeyParam(tb, action eos.Name) (int, bool) {
	i, ok := g.keyParam[tb][action]
	return i, ok && i >= 0
}

// AddRead records ⟨read, tb⟩ by action.
func (g *DBG) AddRead(tb, action eos.Name) {
	if g.readers[tb] == nil {
		g.readers[tb] = map[eos.Name]bool{}
	}
	g.readers[tb][action] = true
}

// WriterFor returns an action that writes tb, excluding `not`. With several
// candidate writers the lowest action name wins — a deterministic pick, now
// load-bearing because the adaptive schedule registers composite arms from
// it (map iteration order here would leak into arm energies and break the
// 1/4/8-worker digest identity).
func (g *DBG) WriterFor(tb, not eos.Name) (eos.Name, bool) {
	var best eos.Name
	found := false
	for a := range g.writers[tb] {
		if a == not {
			continue
		}
		if !found || a < best {
			best, found = a, true
		}
	}
	return best, found
}
