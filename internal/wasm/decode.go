package wasm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/leb128"
)

// Binary-format framing constants.
var (
	magic   = []byte{0x00, 0x61, 0x73, 0x6d}
	version = []byte{0x01, 0x00, 0x00, 0x00}
)

// Section IDs.
const (
	secCustom = 0
	secType   = 1
	secImport = 2
	secFunc   = 3
	secTable  = 4
	secMemory = 5
	secGlobal = 6
	secExport = 7
	secStart  = 8
	secElem   = 9
	secCode   = 10
	secData   = 11
)

// ErrBadMagic reports a module that does not begin with the Wasm preamble.
var ErrBadMagic = errors.New("wasm: bad magic or version")

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) remaining() int { return len(d.buf) - d.pos }

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, io.ErrUnexpectedEOF
	}
	p := d.buf[d.pos : d.pos+n]
	d.pos += n
	return p, nil
}

func (d *decoder) u32() (uint32, error) {
	v, n, err := leb128.Uint32(d.buf[d.pos:])
	if err != nil {
		return 0, err
	}
	d.pos += n
	return v, nil
}

func (d *decoder) s32() (int32, error) {
	v, n, err := leb128.Int32(d.buf[d.pos:])
	if err != nil {
		return 0, err
	}
	d.pos += n
	return v, nil
}

func (d *decoder) s64() (int64, error) {
	v, n, err := leb128.Int64(d.buf[d.pos:])
	if err != nil {
		return 0, err
	}
	d.pos += n
	return v, nil
}

func (d *decoder) name() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	p, err := d.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

func (d *decoder) valType() (ValType, error) {
	b, err := d.byte()
	if err != nil {
		return 0, err
	}
	t := ValType(b)
	if !t.Valid() {
		return 0, fmt.Errorf("wasm: invalid value type 0x%02x at offset %d", b, d.pos-1)
	}
	return t, nil
}

func (d *decoder) limits() (Limits, error) {
	flag, err := d.byte()
	if err != nil {
		return Limits{}, err
	}
	min, err := d.u32()
	if err != nil {
		return Limits{}, err
	}
	l := Limits{Min: min}
	if flag == 1 {
		max, err := d.u32()
		if err != nil {
			return Limits{}, err
		}
		l.Max, l.HasMax = max, true
	} else if flag != 0 {
		return Limits{}, fmt.Errorf("wasm: invalid limits flag 0x%02x", flag)
	}
	return l, nil
}

// Decode parses a binary module. It performs structural validation (index
// bounds, section ordering, body/declaration count agreement) but not full
// type checking; see Validate for the latter.
func Decode(bin []byte) (*Module, error) {
	d := &decoder{buf: bin}
	m := &Module{FuncNames: map[uint32]string{}}

	head, err := d.bytes(8)
	if err != nil {
		return nil, fmt.Errorf("wasm: truncated preamble: %w", err)
	}
	if string(head[:4]) != string(magic) || string(head[4:]) != string(version) {
		return nil, ErrBadMagic
	}

	lastSection := -1
	for d.remaining() > 0 {
		id, err := d.byte()
		if err != nil {
			return nil, err
		}
		size, err := d.u32()
		if err != nil {
			return nil, fmt.Errorf("wasm: section %d size: %w", id, err)
		}
		body, err := d.bytes(int(size))
		if err != nil {
			return nil, fmt.Errorf("wasm: section %d truncated: %w", id, err)
		}
		if id != secCustom {
			if int(id) <= lastSection {
				return nil, fmt.Errorf("wasm: section %d out of order", id)
			}
			lastSection = int(id)
		}
		sd := &decoder{buf: body}
		if err := decodeSection(m, id, sd); err != nil {
			return nil, fmt.Errorf("wasm: section %d: %w", id, err)
		}
		if sd.remaining() != 0 {
			return nil, fmt.Errorf("wasm: section %d has %d trailing bytes", id, sd.remaining())
		}
	}
	if len(m.Code) != len(m.Funcs) {
		return nil, fmt.Errorf("wasm: %d function declarations but %d bodies", len(m.Funcs), len(m.Code))
	}
	return m, nil
}

func decodeSection(m *Module, id byte, d *decoder) error {
	switch id {
	case secCustom:
		name, err := d.name()
		if err != nil {
			return err
		}
		rest, err := d.bytes(d.remaining())
		if err != nil {
			return err
		}
		m.Customs = append(m.Customs, CustomSection{Name: name, Data: append([]byte(nil), rest...)})
		if name == "name" {
			// Best effort: ignore malformed name sections.
			_ = decodeNameSection(m, rest)
		}
		return nil
	case secType:
		return decodeVec(d, func() error {
			form, err := d.byte()
			if err != nil {
				return err
			}
			if form != 0x60 {
				return fmt.Errorf("invalid functype form 0x%02x", form)
			}
			var ft FuncType
			np, err := d.u32()
			if err != nil {
				return err
			}
			for i := uint32(0); i < np; i++ {
				t, err := d.valType()
				if err != nil {
					return err
				}
				ft.Params = append(ft.Params, t)
			}
			nr, err := d.u32()
			if err != nil {
				return err
			}
			for i := uint32(0); i < nr; i++ {
				t, err := d.valType()
				if err != nil {
					return err
				}
				ft.Results = append(ft.Results, t)
			}
			m.Types = append(m.Types, ft)
			return nil
		})
	case secImport:
		return decodeVec(d, func() error {
			mod, err := d.name()
			if err != nil {
				return err
			}
			name, err := d.name()
			if err != nil {
				return err
			}
			kind, err := d.byte()
			if err != nil {
				return err
			}
			imp := Import{Module: mod, Name: name, Kind: ExternalKind(kind)}
			switch imp.Kind {
			case ExternalFunc:
				ti, err := d.u32()
				if err != nil {
					return err
				}
				imp.TypeIndex = ti
			case ExternalTable:
				et, err := d.byte()
				if err != nil {
					return err
				}
				if et != 0x70 {
					return fmt.Errorf("invalid elem type 0x%02x", et)
				}
				l, err := d.limits()
				if err != nil {
					return err
				}
				imp.Table = TableType{Limits: l}
			case ExternalMemory:
				l, err := d.limits()
				if err != nil {
					return err
				}
				imp.Memory = MemType{Limits: l}
			case ExternalGlobal:
				t, err := d.valType()
				if err != nil {
					return err
				}
				mut, err := d.byte()
				if err != nil {
					return err
				}
				imp.Global = GlobalType{Type: t, Mutable: mut == 1}
			default:
				return fmt.Errorf("invalid import kind %d", kind)
			}
			m.Imports = append(m.Imports, imp)
			return nil
		})
	case secFunc:
		return decodeVec(d, func() error {
			ti, err := d.u32()
			if err != nil {
				return err
			}
			m.Funcs = append(m.Funcs, ti)
			return nil
		})
	case secTable:
		return decodeVec(d, func() error {
			et, err := d.byte()
			if err != nil {
				return err
			}
			if et != 0x70 {
				return fmt.Errorf("invalid elem type 0x%02x", et)
			}
			l, err := d.limits()
			if err != nil {
				return err
			}
			m.Tables = append(m.Tables, TableType{Limits: l})
			return nil
		})
	case secMemory:
		return decodeVec(d, func() error {
			l, err := d.limits()
			if err != nil {
				return err
			}
			m.Memories = append(m.Memories, MemType{Limits: l})
			return nil
		})
	case secGlobal:
		return decodeVec(d, func() error {
			t, err := d.valType()
			if err != nil {
				return err
			}
			mut, err := d.byte()
			if err != nil {
				return err
			}
			init, err := decodeConstExpr(d)
			if err != nil {
				return err
			}
			m.Globals = append(m.Globals, Global{Type: GlobalType{Type: t, Mutable: mut == 1}, Init: init})
			return nil
		})
	case secExport:
		return decodeVec(d, func() error {
			name, err := d.name()
			if err != nil {
				return err
			}
			kind, err := d.byte()
			if err != nil {
				return err
			}
			idx, err := d.u32()
			if err != nil {
				return err
			}
			m.Exports = append(m.Exports, Export{Name: name, Kind: ExternalKind(kind), Index: idx})
			return nil
		})
	case secStart:
		idx, err := d.u32()
		if err != nil {
			return err
		}
		m.Start = &idx
		return nil
	case secElem:
		return decodeVec(d, func() error {
			ti, err := d.u32()
			if err != nil {
				return err
			}
			off, err := decodeConstExpr(d)
			if err != nil {
				return err
			}
			var funcs []uint32
			if err := decodeVec(d, func() error {
				fi, err := d.u32()
				if err != nil {
					return err
				}
				funcs = append(funcs, fi)
				return nil
			}); err != nil {
				return err
			}
			m.Elems = append(m.Elems, ElemSegment{TableIndex: ti, Offset: off, Funcs: funcs})
			return nil
		})
	case secCode:
		return decodeVec(d, func() error {
			size, err := d.u32()
			if err != nil {
				return err
			}
			body, err := d.bytes(int(size))
			if err != nil {
				return err
			}
			code, err := decodeCode(body)
			if err != nil {
				return fmt.Errorf("function body %d: %w", len(m.Code), err)
			}
			m.Code = append(m.Code, code)
			return nil
		})
	case secData:
		return decodeVec(d, func() error {
			mi, err := d.u32()
			if err != nil {
				return err
			}
			off, err := decodeConstExpr(d)
			if err != nil {
				return err
			}
			n, err := d.u32()
			if err != nil {
				return err
			}
			data, err := d.bytes(int(n))
			if err != nil {
				return err
			}
			m.Data = append(m.Data, DataSegment{MemIndex: mi, Offset: off, Data: append([]byte(nil), data...)})
			return nil
		})
	default:
		return fmt.Errorf("unknown section id %d", id)
	}
}

func decodeVec(d *decoder, f func() error) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		if err := f(); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
	}
	return nil
}

// decodeConstExpr reads a constant initializer expression terminated by end.
// The terminating end is consumed but not included in the result.
func decodeConstExpr(d *decoder) ([]Instr, error) {
	var out []Instr
	for {
		in, err := decodeInstr(d)
		if err != nil {
			return nil, err
		}
		if in.Op == OpEnd {
			return out, nil
		}
		switch in.Op {
		case OpI32Const, OpI64Const, OpF32Const, OpF64Const, OpGlobalGet:
		default:
			return nil, fmt.Errorf("non-constant opcode %s in initializer", in.Op.Name())
		}
		out = append(out, in)
	}
}

// DecodeCode parses one code-section entry payload (the locals vector
// followed by the expression) in isolation — the unit the static layer's
// CFG fuzz target feeds with arbitrary bytes.
func DecodeCode(body []byte) (Code, error) { return decodeCode(body) }

// decodeCode parses one code-section entry payload (locals + expression).
func decodeCode(body []byte) (Code, error) {
	d := &decoder{buf: body}
	var c Code
	if err := decodeVec(d, func() error {
		count, err := d.u32()
		if err != nil {
			return err
		}
		t, err := d.valType()
		if err != nil {
			return err
		}
		c.Locals = append(c.Locals, LocalDecl{Count: count, Type: t})
		return nil
	}); err != nil {
		return Code{}, fmt.Errorf("locals: %w", err)
	}
	depth := 1 // implicit function block
	for {
		in, err := decodeInstr(d)
		if err != nil {
			return Code{}, err
		}
		c.Body = append(c.Body, in)
		switch in.Op {
		case OpBlock, OpLoop, OpIf:
			depth++
		case OpEnd:
			depth--
			if depth == 0 {
				if d.remaining() != 0 {
					return Code{}, fmt.Errorf("%d trailing bytes after function end", d.remaining())
				}
				return c, nil
			}
		}
	}
}

// decodeInstr reads one instruction.
func decodeInstr(d *decoder) (Instr, error) {
	b, err := d.byte()
	if err != nil {
		return Instr{}, err
	}
	op := Opcode(b)
	imm, ok := op.Imm()
	if !ok {
		return Instr{}, fmt.Errorf("unknown opcode 0x%02x at offset %d", b, d.pos-1)
	}
	in := Instr{Op: op}
	switch imm {
	case ImmNone:
	case ImmBlockType:
		bt, err := d.byte()
		if err != nil {
			return Instr{}, err
		}
		if bt != BlockTypeEmpty && !ValType(bt).Valid() {
			return Instr{}, fmt.Errorf("invalid block type 0x%02x", bt)
		}
		in.A = uint32(bt)
	case ImmLabel, ImmFunc, ImmLocal, ImmGlobal:
		v, err := d.u32()
		if err != nil {
			return Instr{}, err
		}
		in.A = v
	case ImmCallInd:
		ti, err := d.u32()
		if err != nil {
			return Instr{}, err
		}
		in.A = ti
		if _, err := d.byte(); err != nil { // reserved table index
			return Instr{}, err
		}
	case ImmBrTable:
		n, err := d.u32()
		if err != nil {
			return Instr{}, err
		}
		in.Table = make([]uint32, n)
		for i := range in.Table {
			t, err := d.u32()
			if err != nil {
				return Instr{}, err
			}
			in.Table[i] = t
		}
		def, err := d.u32()
		if err != nil {
			return Instr{}, err
		}
		in.A = def
	case ImmMem:
		align, err := d.u32()
		if err != nil {
			return Instr{}, err
		}
		offset, err := d.u32()
		if err != nil {
			return Instr{}, err
		}
		in.A, in.B = align, offset
	case ImmMemSize:
		if _, err := d.byte(); err != nil { // reserved memory index
			return Instr{}, err
		}
	case ImmI32:
		v, err := d.s32()
		if err != nil {
			return Instr{}, err
		}
		in.Imm = uint64(int64(v)) // stored sign-extended
	case ImmI64:
		v, err := d.s64()
		if err != nil {
			return Instr{}, err
		}
		in.Imm = uint64(v)
	case ImmF32:
		p, err := d.bytes(4)
		if err != nil {
			return Instr{}, err
		}
		in.Imm = uint64(binary.LittleEndian.Uint32(p))
	case ImmF64:
		p, err := d.bytes(8)
		if err != nil {
			return Instr{}, err
		}
		in.Imm = binary.LittleEndian.Uint64(p)
	}
	return in, nil
}

// decodeNameSection extracts the function-name subsection (id 1).
func decodeNameSection(m *Module, data []byte) error {
	d := &decoder{buf: data}
	for d.remaining() > 0 {
		id, err := d.byte()
		if err != nil {
			return err
		}
		size, err := d.u32()
		if err != nil {
			return err
		}
		body, err := d.bytes(int(size))
		if err != nil {
			return err
		}
		if id != 1 {
			continue
		}
		sd := &decoder{buf: body}
		return decodeVec(sd, func() error {
			idx, err := sd.u32()
			if err != nil {
				return err
			}
			name, err := sd.name()
			if err != nil {
				return err
			}
			m.FuncNames[idx] = name
			return nil
		})
	}
	return nil
}

// F32FromBits converts stored f32 immediate bits to a float64 value.
func F32FromBits(bits uint64) float64 { return float64(math.Float32frombits(uint32(bits))) }
