package wasm

import "fmt"

// Validate performs structural validation beyond what Decode enforces:
// all indices in bounds, balanced control structures, and well-formed
// block/else nesting. It does not perform full stack type checking — the
// interpreter traps on type confusion at runtime, which is sufficient for
// the analysis pipeline (and mirrors how the paper's simulator treats
// already-deployed, chain-validated contracts).
func Validate(m *Module) error {
	nf := uint32(m.NumFuncs())
	ng := uint32(len(m.Globals))
	for _, imp := range m.Imports {
		if imp.Kind == ExternalGlobal {
			ng++
		}
	}
	for _, imp := range m.Imports {
		if imp.Kind == ExternalFunc && int(imp.TypeIndex) >= len(m.Types) {
			return fmt.Errorf("wasm: import %s.%s: type index %d out of range", imp.Module, imp.Name, imp.TypeIndex)
		}
	}
	for i, ti := range m.Funcs {
		if int(ti) >= len(m.Types) {
			return fmt.Errorf("wasm: func %d: type index %d out of range", i, ti)
		}
	}
	for _, ex := range m.Exports {
		switch ex.Kind {
		case ExternalFunc:
			if ex.Index >= nf {
				return fmt.Errorf("wasm: export %q: function index %d out of range", ex.Name, ex.Index)
			}
		case ExternalGlobal:
			if ex.Index >= ng {
				return fmt.Errorf("wasm: export %q: global index %d out of range", ex.Name, ex.Index)
			}
		case ExternalMemory, ExternalTable:
			// Single table/memory in MVP; index 0 only.
			if ex.Index != 0 {
				return fmt.Errorf("wasm: export %q: index %d out of range", ex.Name, ex.Index)
			}
		}
	}
	for i, el := range m.Elems {
		for _, fi := range el.Funcs {
			if fi >= nf {
				return fmt.Errorf("wasm: elem segment %d: function index %d out of range", i, fi)
			}
		}
	}
	imported := m.NumImportedFuncs()
	for i := range m.Code {
		fidx := uint32(imported + i)
		ft, err := m.FuncTypeAt(fidx)
		if err != nil {
			return err
		}
		nLocals := uint32(len(ft.Params)) + m.Code[i].NumLocals()
		if err := validateBody(m, &m.Code[i], nLocals, nf, ng); err != nil {
			return fmt.Errorf("wasm: func %d: %w", fidx, err)
		}
	}
	return nil
}

func validateBody(m *Module, c *Code, nLocals, nFuncs, nGlobals uint32) error {
	depth := 1
	var ifStack []bool // tracks whether the innermost frames are if-frames
	ifStack = append(ifStack, false)
	for pc, in := range c.Body {
		switch in.Op {
		case OpBlock, OpLoop:
			depth++
			ifStack = append(ifStack, false)
		case OpIf:
			depth++
			ifStack = append(ifStack, true)
		case OpElse:
			if len(ifStack) == 0 || !ifStack[len(ifStack)-1] {
				return fmt.Errorf("pc %d: else outside if", pc)
			}
			ifStack[len(ifStack)-1] = false // at most one else per if
		case OpEnd:
			depth--
			ifStack = ifStack[:len(ifStack)-1]
			if depth == 0 && pc != len(c.Body)-1 {
				return fmt.Errorf("pc %d: instructions after function end", pc)
			}
		case OpBr, OpBrIf:
			if int(in.A) >= depth {
				return fmt.Errorf("pc %d: branch depth %d exceeds nesting %d", pc, in.A, depth)
			}
		case OpBrTable:
			for _, t := range in.Table {
				if int(t) >= depth {
					return fmt.Errorf("pc %d: br_table target %d exceeds nesting %d", pc, t, depth)
				}
			}
			if int(in.A) >= depth {
				return fmt.Errorf("pc %d: br_table default %d exceeds nesting %d", pc, in.A, depth)
			}
		case OpCall:
			if in.A >= nFuncs {
				return fmt.Errorf("pc %d: call target %d out of range", pc, in.A)
			}
		case OpCallIndirect:
			if int(in.A) >= len(m.Types) {
				return fmt.Errorf("pc %d: call_indirect type %d out of range", pc, in.A)
			}
		case OpLocalGet, OpLocalSet, OpLocalTee:
			if in.A >= nLocals {
				return fmt.Errorf("pc %d: local index %d out of range (%d locals)", pc, in.A, nLocals)
			}
		case OpGlobalGet, OpGlobalSet:
			if in.A >= nGlobals {
				return fmt.Errorf("pc %d: global index %d out of range", pc, in.A)
			}
		}
	}
	if depth != 0 {
		return fmt.Errorf("unbalanced control structures (depth %d at end)", depth)
	}
	return nil
}

// ControlMeta precomputes structured-control-flow targets for one function
// body: for each block/loop/if the pc of its matching end, and for each if
// the pc of its else (or its end when there is no else).
type ControlMeta struct {
	// EndOf[pc] is the index of the matching OpEnd for a block/loop/if at pc.
	EndOf map[int]int
	// ElseOf[pc] is the index of the OpElse for an if at pc, or the matching
	// end when the if has no else arm.
	ElseOf map[int]int
}

// AnalyzeControl computes ControlMeta for body. The body must be balanced
// (Validate-checked).
func AnalyzeControl(body []Instr) (ControlMeta, error) {
	meta := ControlMeta{EndOf: map[int]int{}, ElseOf: map[int]int{}}
	type frame struct {
		pc   int
		isIf bool
	}
	var stack []frame
	for pc, in := range body {
		switch in.Op {
		case OpBlock, OpLoop:
			stack = append(stack, frame{pc: pc})
		case OpIf:
			stack = append(stack, frame{pc: pc, isIf: true})
		case OpElse:
			if len(stack) == 0 {
				return ControlMeta{}, fmt.Errorf("wasm: else at pc %d outside if", pc)
			}
			top := stack[len(stack)-1]
			if !top.isIf {
				return ControlMeta{}, fmt.Errorf("wasm: else at pc %d not inside if", pc)
			}
			meta.ElseOf[top.pc] = pc
		case OpEnd:
			if len(stack) == 0 {
				// Function-terminating end.
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			meta.EndOf[top.pc] = pc
			if top.isIf {
				if _, ok := meta.ElseOf[top.pc]; !ok {
					meta.ElseOf[top.pc] = pc
				}
			}
		}
	}
	if len(stack) != 0 {
		return ControlMeta{}, fmt.Errorf("wasm: %d unclosed control frames", len(stack))
	}
	return meta, nil
}
