package wasm

// Instruction constructors used by the instrumenter and the synthetic
// contract builder. They keep call sites readable and centralize the
// immediate-field conventions documented on Instr.

// I32Const builds an i32.const instruction.
func I32Const(v int32) Instr { return Instr{Op: OpI32Const, Imm: uint64(int64(v))} }

// I64Const builds an i64.const instruction.
func I64Const(v int64) Instr { return Instr{Op: OpI64Const, Imm: uint64(v)} }

// LocalGet builds a local.get instruction.
func LocalGet(idx uint32) Instr { return Instr{Op: OpLocalGet, A: idx} }

// LocalSet builds a local.set instruction.
func LocalSet(idx uint32) Instr { return Instr{Op: OpLocalSet, A: idx} }

// LocalTee builds a local.tee instruction.
func LocalTee(idx uint32) Instr { return Instr{Op: OpLocalTee, A: idx} }

// GlobalGet builds a global.get instruction.
func GlobalGet(idx uint32) Instr { return Instr{Op: OpGlobalGet, A: idx} }

// GlobalSet builds a global.set instruction.
func GlobalSet(idx uint32) Instr { return Instr{Op: OpGlobalSet, A: idx} }

// Call builds a call instruction.
func Call(funcIdx uint32) Instr { return Instr{Op: OpCall, A: funcIdx} }

// CallIndirect builds a call_indirect instruction for the given type index.
func CallIndirect(typeIdx uint32) Instr { return Instr{Op: OpCallIndirect, A: typeIdx} }

// Br builds a br instruction.
func Br(depth uint32) Instr { return Instr{Op: OpBr, A: depth} }

// BrIf builds a br_if instruction.
func BrIf(depth uint32) Instr { return Instr{Op: OpBrIf, A: depth} }

// BrTable builds a br_table over the given target depths with a default.
func BrTable(targets []uint32, def uint32) Instr {
	return Instr{Op: OpBrTable, Table: targets, A: def}
}

// Block opens a block with no result.
func Block() Instr { return Instr{Op: OpBlock, A: BlockTypeEmpty} }

// BlockTyped opens a block yielding one value of type t.
func BlockTyped(t ValType) Instr { return Instr{Op: OpBlock, A: uint32(t)} }

// Loop opens a loop with no result.
func Loop() Instr { return Instr{Op: OpLoop, A: BlockTypeEmpty} }

// If opens an if with no result.
func If() Instr { return Instr{Op: OpIf, A: BlockTypeEmpty} }

// IfTyped opens an if yielding one value of type t.
func IfTyped(t ValType) Instr { return Instr{Op: OpIf, A: uint32(t)} }

// Else builds an else instruction.
func Else() Instr { return Instr{Op: OpElse} }

// End builds an end instruction.
func End() Instr { return Instr{Op: OpEnd} }

// Return builds a return instruction.
func Return() Instr { return Instr{Op: OpReturn} }

// Unreachable builds an unreachable instruction.
func Unreachable() Instr { return Instr{Op: OpUnreachable} }

// Drop builds a drop instruction.
func Drop() Instr { return Instr{Op: OpDrop} }

// Op0 builds an instruction with no immediates (arithmetic, comparison...).
func Op0(op Opcode) Instr { return Instr{Op: op} }

// Load builds a load instruction with the given static offset. The align
// hint is set to the natural alignment of the access width.
func Load(op Opcode, offset uint32) Instr {
	return Instr{Op: op, A: naturalAlign(op), B: offset}
}

// Store builds a store instruction with the given static offset.
func Store(op Opcode, offset uint32) Instr {
	return Instr{Op: op, A: naturalAlign(op), B: offset}
}

func naturalAlign(op Opcode) uint32 {
	switch op.MemBytes() {
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	default:
		return 0
	}
}
