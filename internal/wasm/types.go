// Package wasm models the WebAssembly (MVP) binary format: modules, types,
// the full instruction set, and strict decoding plus round-trip encoding.
//
// The package is the foundation for three consumers in this repository:
// the EOSVM-style interpreter (internal/wasm/exec), the contract-level
// instrumenter (internal/instrument), and the synthetic contract builder
// (internal/contractgen). Decoding therefore preserves enough structure to
// re-encode a semantically identical module.
package wasm

import "fmt"

// ValType is a WebAssembly value type.
type ValType byte

// Value types defined by the Wasm MVP.
const (
	I32 ValType = 0x7f
	I64 ValType = 0x7e
	F32 ValType = 0x7d
	F64 ValType = 0x7c
)

// String returns the textual-format name of the value type.
func (t ValType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	default:
		return fmt.Sprintf("valtype(0x%02x)", byte(t))
	}
}

// Valid reports whether t is one of the four MVP value types.
func (t ValType) Valid() bool {
	switch t {
	case I32, I64, F32, F64:
		return true
	default:
		return false
	}
}

// BlockTypeEmpty is the encoding of a block with no result value.
const BlockTypeEmpty = 0x40

// FuncType is a function signature.
type FuncType struct {
	Params  []ValType
	Results []ValType
}

// Equal reports whether two signatures are identical.
func (ft FuncType) Equal(other FuncType) bool {
	if len(ft.Params) != len(other.Params) || len(ft.Results) != len(other.Results) {
		return false
	}
	for i, p := range ft.Params {
		if other.Params[i] != p {
			return false
		}
	}
	for i, r := range ft.Results {
		if other.Results[i] != r {
			return false
		}
	}
	return true
}

// String renders the signature in a wat-like form.
func (ft FuncType) String() string {
	s := "("
	for i, p := range ft.Params {
		if i > 0 {
			s += " "
		}
		s += p.String()
	}
	s += ") -> ("
	for i, r := range ft.Results {
		if i > 0 {
			s += " "
		}
		s += r.String()
	}
	return s + ")"
}

// Limits bound the size of a table or memory.
type Limits struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// TableType describes a table (MVP: funcref only).
type TableType struct {
	Limits Limits
}

// MemType describes a linear memory in 64KiB pages.
type MemType struct {
	Limits Limits
}

// GlobalType describes a global variable.
type GlobalType struct {
	Type    ValType
	Mutable bool
}

// ExternalKind discriminates import/export targets.
type ExternalKind byte

// Import/export kinds.
const (
	ExternalFunc   ExternalKind = 0
	ExternalTable  ExternalKind = 1
	ExternalMemory ExternalKind = 2
	ExternalGlobal ExternalKind = 3
)

// String returns the section-name of the kind.
func (k ExternalKind) String() string {
	switch k {
	case ExternalFunc:
		return "func"
	case ExternalTable:
		return "table"
	case ExternalMemory:
		return "memory"
	case ExternalGlobal:
		return "global"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Import is one entry of the import section.
type Import struct {
	Module string
	Name   string
	Kind   ExternalKind

	// Exactly one of the following is meaningful, per Kind.
	TypeIndex uint32 // ExternalFunc: index into Types
	Table     TableType
	Memory    MemType
	Global    GlobalType
}

// Export is one entry of the export section.
type Export struct {
	Name  string
	Kind  ExternalKind
	Index uint32
}

// Global is one entry of the global section.
type Global struct {
	Type GlobalType
	Init []Instr // constant initializer expression (without the final end)
}

// ElemSegment initializes a table region with function indices.
type ElemSegment struct {
	TableIndex uint32
	Offset     []Instr // constant expression
	Funcs      []uint32
}

// DataSegment initializes a memory region with bytes.
type DataSegment struct {
	MemIndex uint32
	Offset   []Instr // constant expression
	Data     []byte
}

// Code is one entry of the code section: a function body.
type Code struct {
	Locals []LocalDecl
	Body   []Instr // flat instruction stream, terminated by OpEnd
}

// LocalDecl declares Count locals of the same type.
type LocalDecl struct {
	Count uint32
	Type  ValType
}

// NumLocals returns the total local count declared (excluding parameters).
func (c *Code) NumLocals() uint32 {
	var n uint32
	for _, d := range c.Locals {
		n += d.Count
	}
	return n
}

// CustomSection preserves a custom section verbatim (e.g. "name").
type CustomSection struct {
	Name string
	Data []byte
}

// Module is a decoded WebAssembly module.
type Module struct {
	Types    []FuncType
	Imports  []Import
	Funcs    []uint32 // type indices of locally defined functions
	Tables   []TableType
	Memories []MemType
	Globals  []Global
	Exports  []Export
	Start    *uint32
	Elems    []ElemSegment
	Code     []Code
	Data     []DataSegment
	Customs  []CustomSection

	// FuncNames optionally maps function index to a debug name,
	// populated from a "name" custom section when present.
	FuncNames map[uint32]string
}

// NumImportedFuncs returns how many imports are functions. Function index
// space places imported functions before locally defined ones.
func (m *Module) NumImportedFuncs() int {
	n := 0
	for _, imp := range m.Imports {
		if imp.Kind == ExternalFunc {
			n++
		}
	}
	return n
}

// NumFuncs returns the total size of the function index space.
func (m *Module) NumFuncs() int { return m.NumImportedFuncs() + len(m.Funcs) }

// FuncTypeAt returns the signature of the function at index idx in the
// function index space (imports first).
func (m *Module) FuncTypeAt(idx uint32) (FuncType, error) {
	imported := 0
	for _, imp := range m.Imports {
		if imp.Kind != ExternalFunc {
			continue
		}
		if uint32(imported) == idx {
			if int(imp.TypeIndex) >= len(m.Types) {
				return FuncType{}, fmt.Errorf("wasm: import %q.%q has type index %d out of range", imp.Module, imp.Name, imp.TypeIndex)
			}
			return m.Types[imp.TypeIndex], nil
		}
		imported++
	}
	local := int(idx) - imported
	if local < 0 || local >= len(m.Funcs) {
		return FuncType{}, fmt.Errorf("wasm: function index %d out of range (have %d)", idx, m.NumFuncs())
	}
	ti := m.Funcs[local]
	if int(ti) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("wasm: function %d has type index %d out of range", idx, ti)
	}
	return m.Types[ti], nil
}

// ImportedFunc returns the i'th imported function (module, name, type index).
func (m *Module) ImportedFunc(i int) (Import, bool) {
	n := 0
	for _, imp := range m.Imports {
		if imp.Kind != ExternalFunc {
			continue
		}
		if n == i {
			return imp, true
		}
		n++
	}
	return Import{}, false
}

// ExportedFunc returns the function index exported under name.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Kind == ExternalFunc && e.Name == name {
			return e.Index, true
		}
	}
	return 0, false
}

// CodeFor returns the body of the locally defined function with the given
// function-space index, or nil if idx refers to an import.
func (m *Module) CodeFor(idx uint32) *Code {
	local := int(idx) - m.NumImportedFuncs()
	if local < 0 || local >= len(m.Code) {
		return nil
	}
	return &m.Code[local]
}

// AddType interns a signature, returning its type index.
func (m *Module) AddType(ft FuncType) uint32 {
	for i, t := range m.Types {
		if t.Equal(ft) {
			return uint32(i)
		}
	}
	m.Types = append(m.Types, ft)
	return uint32(len(m.Types) - 1)
}
