package wasm

import (
	"fmt"
	"strings"
)

// Wat renders the module in a WebAssembly-text-like form. The output is
// meant for humans (diffing generated contracts, inspecting instrumented
// bytecode); it is not guaranteed to re-parse with external wat tooling.
func Wat(m *Module) string {
	var sb strings.Builder
	sb.WriteString("(module\n")

	for i, t := range m.Types {
		fmt.Fprintf(&sb, "  (type (;%d;) (func%s))\n", i, watSig(t))
	}
	for _, imp := range m.Imports {
		switch imp.Kind {
		case ExternalFunc:
			sig := ""
			if int(imp.TypeIndex) < len(m.Types) {
				sig = watSig(m.Types[imp.TypeIndex])
			}
			fmt.Fprintf(&sb, "  (import %q %q (func%s))\n", imp.Module, imp.Name, sig)
		case ExternalGlobal:
			fmt.Fprintf(&sb, "  (import %q %q (global %s))\n", imp.Module, imp.Name, watGlobalType(imp.Global))
		case ExternalMemory:
			fmt.Fprintf(&sb, "  (import %q %q (memory %s))\n", imp.Module, imp.Name, watLimits(imp.Memory.Limits))
		case ExternalTable:
			fmt.Fprintf(&sb, "  (import %q %q (table %s funcref))\n", imp.Module, imp.Name, watLimits(imp.Table.Limits))
		}
	}
	for _, t := range m.Tables {
		fmt.Fprintf(&sb, "  (table %s funcref)\n", watLimits(t.Limits))
	}
	for _, mem := range m.Memories {
		fmt.Fprintf(&sb, "  (memory %s)\n", watLimits(mem.Limits))
	}
	for i, g := range m.Globals {
		init := ""
		if len(g.Init) == 1 {
			init = " (" + g.Init[0].String() + ")"
		}
		fmt.Fprintf(&sb, "  (global (;%d;) %s%s)\n", i, watGlobalType(g.Type), init)
	}

	imported := m.NumImportedFuncs()
	for i := range m.Code {
		idx := uint32(imported + i)
		name := m.FuncNames[idx]
		if name != "" {
			name = " $" + name
		}
		ft, _ := m.FuncTypeAt(idx)
		fmt.Fprintf(&sb, "  (func (;%d;)%s%s\n", idx, name, watSig(ft))
		c := &m.Code[i]
		if len(c.Locals) > 0 {
			sb.WriteString("    (local")
			for _, d := range c.Locals {
				for j := uint32(0); j < d.Count; j++ {
					sb.WriteString(" " + d.Type.String())
				}
			}
			sb.WriteString(")\n")
		}
		depth := 2
		for _, in := range c.Body {
			switch in.Op {
			case OpEnd, OpElse:
				depth--
			}
			if depth < 1 {
				depth = 1
			}
			fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth), in)
			switch in.Op {
			case OpBlock, OpLoop, OpIf, OpElse:
				depth++
			}
		}
		sb.WriteString("  )\n")
	}

	for _, ex := range m.Exports {
		fmt.Fprintf(&sb, "  (export %q (%s %d))\n", ex.Name, ex.Kind, ex.Index)
	}
	for _, el := range m.Elems {
		off := ""
		if len(el.Offset) == 1 {
			off = "(" + el.Offset[0].String() + ") "
		}
		fmt.Fprintf(&sb, "  (elem %sfunc %s)\n", off, joinU32(el.Funcs))
	}
	for _, seg := range m.Data {
		off := ""
		if len(seg.Offset) == 1 {
			off = "(" + seg.Offset[0].String() + ") "
		}
		fmt.Fprintf(&sb, "  (data %s%q)\n", off, string(seg.Data))
	}
	sb.WriteString(")\n")
	return sb.String()
}

func watSig(t FuncType) string {
	var sb strings.Builder
	if len(t.Params) > 0 {
		sb.WriteString(" (param")
		for _, p := range t.Params {
			sb.WriteString(" " + p.String())
		}
		sb.WriteString(")")
	}
	if len(t.Results) > 0 {
		sb.WriteString(" (result")
		for _, r := range t.Results {
			sb.WriteString(" " + r.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

func watGlobalType(g GlobalType) string {
	if g.Mutable {
		return "(mut " + g.Type.String() + ")"
	}
	return g.Type.String()
}

func watLimits(l Limits) string {
	if l.HasMax {
		return fmt.Sprintf("%d %d", l.Min, l.Max)
	}
	return fmt.Sprintf("%d", l.Min)
}

func joinU32(xs []uint32) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, " ")
}
