package wasm

import "testing"

// FuzzDecode drives the decoder with mutated inputs: it must never panic,
// and anything it accepts must survive validation + re-encoding + a second
// decode (idempotence of the canonical form).
func FuzzDecode(f *testing.F) {
	if bin, err := Encode(sampleModule()); err == nil {
		f.Add(bin)
	}
	f.Add([]byte{0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if err := Validate(m); err != nil {
			return
		}
		bin, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded+validated module failed to encode: %v", err)
		}
		m2, err := Decode(bin)
		if err != nil {
			t.Fatalf("canonical re-encode failed to decode: %v", err)
		}
		bin2, err := Encode(m2)
		if err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if string(bin) != string(bin2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
