package wasm_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/wasm"
)

// decodeCorpus builds FuzzDecode's checked-in seed corpus: one realistic
// contract binary per vulnerability class, generated deterministically by
// contractgen. Real contract binaries exercise every section the decoder
// has (types, imports, tables, memories, data, code) where hand-written
// minimal seeds would not.
func decodeCorpus(tb testing.TB) map[string][]byte {
	tb.Helper()
	entries := map[string][]byte{}
	for i, class := range contractgen.Classes {
		c, err := contractgen.Generate(contractgen.Spec{
			Class: class, Vulnerable: true, Seed: int64(10 + i),
		})
		if err != nil {
			tb.Fatalf("generate %s: %v", class, err)
		}
		bin, err := wasm.Encode(c.Module)
		if err != nil {
			tb.Fatalf("encode %s: %v", class, err)
		}
		slug := strings.ReplaceAll(strings.ToLower(class.String()), " ", "-")
		entries["contractgen-"+slug] = bin
	}
	return entries
}

// TestFuzzDecodeSeedCorpus keeps the checked-in corpus in sync with the
// generator. Regenerate with:
//
//	UPDATE_FUZZ_CORPUS=1 go test -run TestFuzzDecodeSeedCorpus ./internal/wasm/
func TestFuzzDecodeSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	update := os.Getenv("UPDATE_FUZZ_CORPUS") != ""
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range decodeCorpus(t) {
		path := filepath.Join(dir, name)
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if update {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus entry missing (regenerate with UPDATE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != want {
			t.Errorf("seed corpus entry %s is stale (regenerate with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
}
