package wasm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/leb128"
)

type encoder struct {
	buf []byte
}

func (e *encoder) byte(b byte)   { e.buf = append(e.buf, b) }
func (e *encoder) raw(p []byte)  { e.buf = append(e.buf, p...) }
func (e *encoder) u32(v uint32)  { e.buf = leb128.AppendUint(e.buf, uint64(v)) }
func (e *encoder) s32(v int32)   { e.buf = leb128.AppendInt(e.buf, int64(v)) }
func (e *encoder) s64(v int64)   { e.buf = leb128.AppendInt(e.buf, v) }
func (e *encoder) name(s string) { e.u32(uint32(len(s))); e.raw([]byte(s)) }

func (e *encoder) limits(l Limits) {
	if l.HasMax {
		e.byte(1)
		e.u32(l.Min)
		e.u32(l.Max)
		return
	}
	e.byte(0)
	e.u32(l.Min)
}

func (e *encoder) section(id byte, body []byte) {
	if body == nil {
		return
	}
	e.byte(id)
	e.u32(uint32(len(body)))
	e.raw(body)
}

// Encode serializes the module to the binary format. Encode(Decode(b)) is
// semantically equivalent to b (custom sections other than "name" are
// preserved verbatim; section sizes may differ due to varint canonicalization).
func Encode(m *Module) ([]byte, error) {
	e := &encoder{}
	e.raw(magic)
	e.raw(version)

	if len(m.Types) > 0 {
		s := &encoder{}
		s.u32(uint32(len(m.Types)))
		for _, ft := range m.Types {
			s.byte(0x60)
			s.u32(uint32(len(ft.Params)))
			for _, p := range ft.Params {
				s.byte(byte(p))
			}
			s.u32(uint32(len(ft.Results)))
			for _, r := range ft.Results {
				s.byte(byte(r))
			}
		}
		e.section(secType, s.buf)
	}
	if len(m.Imports) > 0 {
		s := &encoder{}
		s.u32(uint32(len(m.Imports)))
		for _, imp := range m.Imports {
			s.name(imp.Module)
			s.name(imp.Name)
			s.byte(byte(imp.Kind))
			switch imp.Kind {
			case ExternalFunc:
				s.u32(imp.TypeIndex)
			case ExternalTable:
				s.byte(0x70)
				s.limits(imp.Table.Limits)
			case ExternalMemory:
				s.limits(imp.Memory.Limits)
			case ExternalGlobal:
				s.byte(byte(imp.Global.Type))
				if imp.Global.Mutable {
					s.byte(1)
				} else {
					s.byte(0)
				}
			default:
				return nil, fmt.Errorf("wasm: encode: invalid import kind %d", imp.Kind)
			}
		}
		e.section(secImport, s.buf)
	}
	if len(m.Funcs) > 0 {
		s := &encoder{}
		s.u32(uint32(len(m.Funcs)))
		for _, ti := range m.Funcs {
			s.u32(ti)
		}
		e.section(secFunc, s.buf)
	}
	if len(m.Tables) > 0 {
		s := &encoder{}
		s.u32(uint32(len(m.Tables)))
		for _, t := range m.Tables {
			s.byte(0x70)
			s.limits(t.Limits)
		}
		e.section(secTable, s.buf)
	}
	if len(m.Memories) > 0 {
		s := &encoder{}
		s.u32(uint32(len(m.Memories)))
		for _, mem := range m.Memories {
			s.limits(mem.Limits)
		}
		e.section(secMemory, s.buf)
	}
	if len(m.Globals) > 0 {
		s := &encoder{}
		s.u32(uint32(len(m.Globals)))
		for _, g := range m.Globals {
			s.byte(byte(g.Type.Type))
			if g.Type.Mutable {
				s.byte(1)
			} else {
				s.byte(0)
			}
			if err := encodeExpr(s, g.Init); err != nil {
				return nil, err
			}
		}
		e.section(secGlobal, s.buf)
	}
	if len(m.Exports) > 0 {
		s := &encoder{}
		s.u32(uint32(len(m.Exports)))
		for _, ex := range m.Exports {
			s.name(ex.Name)
			s.byte(byte(ex.Kind))
			s.u32(ex.Index)
		}
		e.section(secExport, s.buf)
	}
	if m.Start != nil {
		s := &encoder{}
		s.u32(*m.Start)
		e.section(secStart, s.buf)
	}
	if len(m.Elems) > 0 {
		s := &encoder{}
		s.u32(uint32(len(m.Elems)))
		for _, el := range m.Elems {
			s.u32(el.TableIndex)
			if err := encodeExpr(s, el.Offset); err != nil {
				return nil, err
			}
			s.u32(uint32(len(el.Funcs)))
			for _, fi := range el.Funcs {
				s.u32(fi)
			}
		}
		e.section(secElem, s.buf)
	}
	if len(m.Code) > 0 {
		s := &encoder{}
		s.u32(uint32(len(m.Code)))
		for i := range m.Code {
			body, err := encodeCode(&m.Code[i])
			if err != nil {
				return nil, fmt.Errorf("wasm: encode body %d: %w", i, err)
			}
			s.u32(uint32(len(body)))
			s.raw(body)
		}
		e.section(secCode, s.buf)
	}
	if len(m.Data) > 0 {
		s := &encoder{}
		s.u32(uint32(len(m.Data)))
		for _, seg := range m.Data {
			s.u32(seg.MemIndex)
			if err := encodeExpr(s, seg.Offset); err != nil {
				return nil, err
			}
			s.u32(uint32(len(seg.Data)))
			s.raw(seg.Data)
		}
		e.section(secData, s.buf)
	}
	for _, cs := range m.Customs {
		s := &encoder{}
		s.name(cs.Name)
		s.raw(cs.Data)
		e.section(secCustom, s.buf)
	}
	return e.buf, nil
}

// encodeExpr writes a constant expression followed by end.
func encodeExpr(e *encoder, expr []Instr) error {
	for _, in := range expr {
		if err := encodeInstr(e, in); err != nil {
			return err
		}
	}
	e.byte(byte(OpEnd))
	return nil
}

// EncodeCode renders one code-section entry payload, the inverse of
// DecodeCode (used to seed the CFG fuzz corpus from generated contracts).
func EncodeCode(c *Code) ([]byte, error) { return encodeCode(c) }

func encodeCode(c *Code) ([]byte, error) {
	e := &encoder{}
	e.u32(uint32(len(c.Locals)))
	for _, d := range c.Locals {
		e.u32(d.Count)
		e.byte(byte(d.Type))
	}
	for _, in := range c.Body {
		if err := encodeInstr(e, in); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

func encodeInstr(e *encoder, in Instr) error {
	imm, ok := in.Op.Imm()
	if !ok {
		return fmt.Errorf("wasm: encode: unknown opcode 0x%02x", byte(in.Op))
	}
	e.byte(byte(in.Op))
	switch imm {
	case ImmNone:
	case ImmBlockType:
		e.byte(byte(in.A))
	case ImmLabel, ImmFunc, ImmLocal, ImmGlobal:
		e.u32(in.A)
	case ImmCallInd:
		e.u32(in.A)
		e.byte(0)
	case ImmBrTable:
		e.u32(uint32(len(in.Table)))
		for _, t := range in.Table {
			e.u32(t)
		}
		e.u32(in.A)
	case ImmMem:
		e.u32(in.A)
		e.u32(in.B)
	case ImmMemSize:
		e.byte(0)
	case ImmI32:
		e.s32(int32(in.Imm))
	case ImmI64:
		e.s64(int64(in.Imm))
	case ImmF32:
		var p [4]byte
		binary.LittleEndian.PutUint32(p[:], uint32(in.Imm))
		e.raw(p[:])
	case ImmF64:
		var p [8]byte
		binary.LittleEndian.PutUint64(p[:], in.Imm)
		e.raw(p[:])
	}
	return nil
}
