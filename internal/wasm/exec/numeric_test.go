package exec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/wasm"
)

// runOp executes a single binary i64 opcode through the interpreter.
func runOp(t *testing.T, op wasm.Opcode, params []wasm.ValType, results []wasm.ValType, args ...uint64) (uint64, error) {
	t.Helper()
	var body []wasm.Instr
	for i := range args {
		body = append(body, wasm.LocalGet(uint32(i)))
	}
	body = append(body, wasm.Op0(op))
	m := buildModule(t, params, results, nil, body)
	return run1(t, m, args...)
}

// TestI64OpsMatchGo property-checks the interpreter's i64 semantics against
// Go's (which match Wasm's for wrapping arithmetic and masked shifts).
func TestI64OpsMatchGo(t *testing.T) {
	i64 := []wasm.ValType{wasm.I64, wasm.I64}
	r64 := []wasm.ValType{wasm.I64}
	cases := []struct {
		op wasm.Opcode
		f  func(a, b uint64) uint64
	}{
		{wasm.OpI64Add, func(a, b uint64) uint64 { return a + b }},
		{wasm.OpI64Sub, func(a, b uint64) uint64 { return a - b }},
		{wasm.OpI64Mul, func(a, b uint64) uint64 { return a * b }},
		{wasm.OpI64And, func(a, b uint64) uint64 { return a & b }},
		{wasm.OpI64Or, func(a, b uint64) uint64 { return a | b }},
		{wasm.OpI64Xor, func(a, b uint64) uint64 { return a ^ b }},
		{wasm.OpI64Shl, func(a, b uint64) uint64 { return a << (b & 63) }},
		{wasm.OpI64ShrU, func(a, b uint64) uint64 { return a >> (b & 63) }},
		{wasm.OpI64ShrS, func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) }},
	}
	rng := rand.New(rand.NewSource(3))
	for _, tc := range cases {
		m := buildModule(t, i64, r64, nil,
			[]wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(tc.op)})
		inst, err := Instantiate(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			a, b := rng.Uint64(), rng.Uint64()
			res, err := NewVM(inst).Invoke("f", a, b)
			if err != nil {
				t.Fatalf("%s: %v", tc.op.Name(), err)
			}
			if want := tc.f(a, b); res[0] != want {
				t.Fatalf("%s(%#x,%#x) = %#x, want %#x", tc.op.Name(), a, b, res[0], want)
			}
		}
	}
}

// TestI32OpsQuick property-checks i32 semantics with zero-extension into
// the 64-bit value representation.
func TestI32OpsQuick(t *testing.T) {
	m := buildModule(t,
		[]wasm.ValType{wasm.I32, wasm.I32}, []wasm.ValType{wasm.I32}, nil,
		[]wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(wasm.OpI32Mul)})
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint32) bool {
		res, err := NewVM(inst).Invoke("f", uint64(a), uint64(b))
		return err == nil && res[0] == uint64(a*b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignedDivisionEdges(t *testing.T) {
	i32p := []wasm.ValType{wasm.I32, wasm.I32}
	r32 := []wasm.ValType{wasm.I32}

	// MinInt32 / -1 overflows.
	if _, err := runOp(t, wasm.OpI32DivS, i32p, r32, uint64(uint32(1)<<31), uint64(uint32(0xffffffff))); !IsTrap(err, TrapIntegerOverflow) {
		t.Errorf("MinInt32/-1: want overflow trap, got %v", err)
	}
	// MinInt32 %% -1 == 0 (no trap).
	got, err := runOp(t, wasm.OpI32RemS, i32p, r32, uint64(uint32(1)<<31), uint64(uint32(0xffffffff)))
	if err != nil || got != 0 {
		t.Errorf("MinInt32%%-1 = %d, %v", got, err)
	}
	// -7 / 2 == -3 (trunc toward zero).
	got, err = runOp(t, wasm.OpI32DivS, i32p, r32, uint64(uint32(0xfffffff9)), 2)
	if err != nil || int32(got) != -3 {
		t.Errorf("-7/2 = %d, %v", int32(got), err)
	}
}

func TestFloatTruncationTraps(t *testing.T) {
	p := []wasm.ValType{wasm.F64}
	r := []wasm.ValType{wasm.I32}
	// NaN -> invalid conversion.
	if _, err := runOp(t, wasm.OpI32TruncF64S, p, r, math.Float64bits(math.NaN())); !IsTrap(err, TrapInvalidConversion) {
		t.Errorf("trunc NaN: %v", err)
	}
	// Out of range -> overflow.
	if _, err := runOp(t, wasm.OpI32TruncF64S, p, r, math.Float64bits(1e300)); !IsTrap(err, TrapIntegerOverflow) {
		t.Errorf("trunc 1e300: %v", err)
	}
	// In range works.
	got, err := runOp(t, wasm.OpI32TruncF64S, p, r, math.Float64bits(-123.9))
	if err != nil || int32(got) != -123 {
		t.Errorf("trunc -123.9 = %d, %v", int32(got), err)
	}
}

func TestConversions(t *testing.T) {
	// i64.extend_i32_s sign-extends.
	got, err := runOp(t, wasm.OpI64ExtendI32S,
		[]wasm.ValType{wasm.I32}, []wasm.ValType{wasm.I64}, uint64(uint32(0x80000000)))
	if err != nil || got != 0xffffffff80000000 {
		t.Errorf("extend_s = %#x, %v", got, err)
	}
	// i32.wrap_i64 truncates.
	got, err = runOp(t, wasm.OpI32WrapI64,
		[]wasm.ValType{wasm.I64}, []wasm.ValType{wasm.I32}, 0x1234567890abcdef)
	if err != nil || got != 0x90abcdef {
		t.Errorf("wrap = %#x, %v", got, err)
	}
	// f64.convert_i64_u of a large value.
	got, err = runOp(t, wasm.OpF64ConvertI64U,
		[]wasm.ValType{wasm.I64}, []wasm.ValType{wasm.F64}, math.MaxUint64)
	if err != nil || math.Float64frombits(got) != float64(uint64(math.MaxUint64)) {
		t.Errorf("convert_u = %v, %v", math.Float64frombits(got), err)
	}
	// Reinterpret round trip.
	got, err = runOp(t, wasm.OpF64ReinterpretI64,
		[]wasm.ValType{wasm.I64}, []wasm.ValType{wasm.F64}, 0x4037000000000000)
	if err != nil || math.Float64frombits(got) != 23.0 {
		t.Errorf("reinterpret = %v, %v", math.Float64frombits(got), err)
	}
}

func TestFloatMinMaxCopysign(t *testing.T) {
	p := []wasm.ValType{wasm.F64, wasm.F64}
	r := []wasm.ValType{wasm.F64}
	got, err := runOp(t, wasm.OpF64Min, p, r, math.Float64bits(2.5), math.Float64bits(-1.5))
	if err != nil || math.Float64frombits(got) != -1.5 {
		t.Errorf("min = %v", math.Float64frombits(got))
	}
	got, err = runOp(t, wasm.OpF64Copysign, p, r, math.Float64bits(3.0), math.Float64bits(math.Copysign(0, -1)))
	if err != nil || math.Float64frombits(got) != -3.0 {
		t.Errorf("copysign = %v", math.Float64frombits(got))
	}
}

func TestGlobalMutation(t *testing.T) {
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	ti := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	m.Funcs = []uint32{ti}
	m.Globals = []wasm.Global{{
		Type: wasm.GlobalType{Type: wasm.I64, Mutable: true},
		Init: []wasm.Instr{wasm.I64Const(5)},
	}}
	m.Code = []wasm.Code{{Body: []wasm.Instr{
		wasm.GlobalGet(0), wasm.I64Const(10), wasm.Op0(wasm.OpI64Add), wasm.GlobalSet(0),
		wasm.GlobalGet(0),
		wasm.End(),
	}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 0}}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewVM(inst).Invoke("f")
	if err != nil || res[0] != 15 {
		t.Fatalf("global add: %v %v", res, err)
	}
	// Globals persist within the instance.
	res, _ = NewVM(inst).Invoke("f")
	if res[0] != 25 {
		t.Errorf("second call = %d, want 25", res[0])
	}
	if v, ok := inst.GlobalValue(0); !ok || v != 25 {
		t.Errorf("GlobalValue = %d %v", v, ok)
	}
}

func TestDataSegmentInitialization(t *testing.T) {
	m := buildModule(t, nil, []wasm.ValType{wasm.I32}, nil,
		[]wasm.Instr{wasm.I32Const(100), wasm.Load(wasm.OpI32Load8U, 2)})
	m.Data = []wasm.DataSegment{{Offset: []wasm.Instr{wasm.I32Const(100)}, Data: []byte{1, 2, 3, 4}}}
	got, err := run1(t, m)
	if err != nil || got != 3 {
		t.Errorf("data segment byte = %d, %v", got, err)
	}
}

func TestDataSegmentOutOfBoundsRejected(t *testing.T) {
	m := buildModule(t, nil, nil, nil, []wasm.Instr{})
	m.Data = []wasm.DataSegment{{Offset: []wasm.Instr{wasm.I32Const(PageSize - 1)}, Data: []byte{1, 2}}}
	if _, err := Instantiate(m, nil); err == nil {
		t.Error("out-of-bounds data segment accepted")
	}
}

func TestInvokeErrors(t *testing.T) {
	m := buildModule(t, []wasm.ValType{wasm.I64}, []wasm.ValType{wasm.I64}, nil,
		[]wasm.Instr{wasm.LocalGet(0)})
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVM(inst).Invoke("nosuch"); err == nil {
		t.Error("unknown export accepted")
	}
	if _, err := NewVM(inst).Invoke("f"); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := NewVM(inst).InvokeIndex(99); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestInstanceMemoryHelpers(t *testing.T) {
	m := buildModule(t, nil, nil, nil, []wasm.Instr{})
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.WriteMemory(10, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p, err := inst.ReadMemory(10, 3)
	if err != nil || string(p) != "\x01\x02\x03" {
		t.Errorf("read back %x, %v", p, err)
	}
	if _, err := inst.ReadMemory(PageSize-1, 2); err == nil {
		t.Error("OOB read accepted")
	}
	if err := inst.WriteMemory(PageSize-1, []byte{1, 2}); err == nil {
		t.Error("OOB write accepted")
	}
	// Address arithmetic must not wrap.
	if _, err := inst.ReadMemory(0xffffffff, 2); err == nil {
		t.Error("wrapping read accepted")
	}
}

func TestUnresolvedImportFailsInstantiate(t *testing.T) {
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	ti := m.AddType(wasm.FuncType{})
	m.Imports = []wasm.Import{{Module: "env", Name: "missing", Kind: wasm.ExternalFunc, TypeIndex: ti}}
	if _, err := Instantiate(m, nil); err == nil {
		t.Error("unresolved import accepted")
	}
	if _, err := Instantiate(m, Resolver{"env": HostModule{}}); err == nil {
		t.Error("unresolved import name accepted")
	}
}

// TestEveryNumericOpcodeExecutes drives each pure numeric opcode through
// the interpreter once with benign operands — a smoke net ensuring no
// opcode in the dispatch table is unimplemented or panicking.
func TestEveryNumericOpcodeExecutes(t *testing.T) {
	type shape struct {
		params  []wasm.ValType
		results []wasm.ValType
		args    []uint64
	}
	shapes := map[string]shape{
		"i32u": {p32(1), r(wasm.I32), []uint64{41}},
		"i32b": {p32(2), r(wasm.I32), []uint64{41, 3}},
		"i64u": {p64(1), r(wasm.I64), []uint64{41}},
		"i64b": {p64(2), r(wasm.I64), []uint64{41, 3}},
		"f32u": {pf32(1), r(wasm.F32), []uint64{f32arg(4)}},
		"f32b": {pf32(2), r(wasm.F32), []uint64{f32arg(4), f32arg(2)}},
		"f64u": {pf64(1), r(wasm.F64), []uint64{f64arg(4)}},
		"f64b": {pf64(2), r(wasm.F64), []uint64{f64arg(4), f64arg(2)}},
	}
	cases := []struct {
		ops     []wasm.Opcode
		shape   string
		results wasm.ValType
	}{
		{[]wasm.Opcode{wasm.OpI32Eqz, wasm.OpI32Clz, wasm.OpI32Ctz, wasm.OpI32Popcnt}, "i32u", wasm.I32},
		{[]wasm.Opcode{
			wasm.OpI32Eq, wasm.OpI32Ne, wasm.OpI32LtS, wasm.OpI32LtU, wasm.OpI32GtS, wasm.OpI32GtU,
			wasm.OpI32LeS, wasm.OpI32LeU, wasm.OpI32GeS, wasm.OpI32GeU,
			wasm.OpI32Add, wasm.OpI32Sub, wasm.OpI32Mul, wasm.OpI32DivS, wasm.OpI32DivU,
			wasm.OpI32RemS, wasm.OpI32RemU, wasm.OpI32And, wasm.OpI32Or, wasm.OpI32Xor,
			wasm.OpI32Shl, wasm.OpI32ShrS, wasm.OpI32ShrU, wasm.OpI32Rotl, wasm.OpI32Rotr,
		}, "i32b", wasm.I32},
		{[]wasm.Opcode{wasm.OpI64Clz, wasm.OpI64Ctz, wasm.OpI64Popcnt}, "i64u", wasm.I64},
		{[]wasm.Opcode{
			wasm.OpI64Add, wasm.OpI64Sub, wasm.OpI64Mul, wasm.OpI64DivS, wasm.OpI64DivU,
			wasm.OpI64RemS, wasm.OpI64RemU, wasm.OpI64And, wasm.OpI64Or, wasm.OpI64Xor,
			wasm.OpI64Shl, wasm.OpI64ShrS, wasm.OpI64ShrU, wasm.OpI64Rotl, wasm.OpI64Rotr,
		}, "i64b", wasm.I64},
		{[]wasm.Opcode{
			wasm.OpF32Abs, wasm.OpF32Neg, wasm.OpF32Ceil, wasm.OpF32Floor,
			wasm.OpF32Trunc, wasm.OpF32Nearest, wasm.OpF32Sqrt,
		}, "f32u", wasm.F32},
		{[]wasm.Opcode{
			wasm.OpF32Add, wasm.OpF32Sub, wasm.OpF32Mul, wasm.OpF32Div,
			wasm.OpF32Min, wasm.OpF32Max, wasm.OpF32Copysign,
		}, "f32b", wasm.F32},
		{[]wasm.Opcode{
			wasm.OpF64Abs, wasm.OpF64Neg, wasm.OpF64Ceil, wasm.OpF64Floor,
			wasm.OpF64Trunc, wasm.OpF64Nearest, wasm.OpF64Sqrt,
		}, "f64u", wasm.F64},
		{[]wasm.Opcode{
			wasm.OpF64Add, wasm.OpF64Sub, wasm.OpF64Mul, wasm.OpF64Div,
			wasm.OpF64Min, wasm.OpF64Max, wasm.OpF64Copysign,
		}, "f64b", wasm.F64},
	}
	comparisons := map[wasm.Opcode]bool{}
	for op := wasm.OpI32Eqz; op <= wasm.OpF64Ge; op++ {
		comparisons[op] = true
	}
	for _, group := range cases {
		sh := shapes[group.shape]
		for _, op := range group.ops {
			results := []wasm.ValType{group.results}
			if comparisons[op] {
				results = []wasm.ValType{wasm.I32}
			}
			var body []wasm.Instr
			for i := range sh.args {
				body = append(body, wasm.LocalGet(uint32(i)))
			}
			body = append(body, wasm.Op0(op))
			m := buildModule(t, sh.params, results, nil, body)
			if _, err := run1(t, m, sh.args...); err != nil {
				t.Errorf("%s: %v", op.Name(), err)
			}
		}
	}
	// Float comparisons (result i32).
	fcmps32 := []wasm.Opcode{wasm.OpF32Eq, wasm.OpF32Ne, wasm.OpF32Lt, wasm.OpF32Gt, wasm.OpF32Le, wasm.OpF32Ge}
	for _, op := range fcmps32 {
		m := buildModule(t, pf32(2), r(wasm.I32), nil,
			[]wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(op)})
		if _, err := run1(t, m, f32arg(1), f32arg(2)); err != nil {
			t.Errorf("%s: %v", op.Name(), err)
		}
	}
	fcmps64 := []wasm.Opcode{wasm.OpF64Eq, wasm.OpF64Ne, wasm.OpF64Lt, wasm.OpF64Gt, wasm.OpF64Le, wasm.OpF64Ge}
	for _, op := range fcmps64 {
		m := buildModule(t, pf64(2), r(wasm.I32), nil,
			[]wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(op)})
		if _, err := run1(t, m, f64arg(1), f64arg(2)); err != nil {
			t.Errorf("%s: %v", op.Name(), err)
		}
	}
	// Conversions (operand type -> result type).
	convs := []struct {
		op  wasm.Opcode
		in  wasm.ValType
		out wasm.ValType
		arg uint64
	}{
		{wasm.OpI32TruncF32S, wasm.F32, wasm.I32, f32arg(5)},
		{wasm.OpI32TruncF32U, wasm.F32, wasm.I32, f32arg(5)},
		{wasm.OpI32TruncF64U, wasm.F64, wasm.I32, f64arg(5)},
		{wasm.OpI64TruncF32S, wasm.F32, wasm.I64, f32arg(5)},
		{wasm.OpI64TruncF32U, wasm.F32, wasm.I64, f32arg(5)},
		{wasm.OpI64TruncF64S, wasm.F64, wasm.I64, f64arg(5)},
		{wasm.OpI64TruncF64U, wasm.F64, wasm.I64, f64arg(5)},
		{wasm.OpF32ConvertI32S, wasm.I32, wasm.F32, 5},
		{wasm.OpF32ConvertI32U, wasm.I32, wasm.F32, 5},
		{wasm.OpF32ConvertI64S, wasm.I64, wasm.F32, 5},
		{wasm.OpF32ConvertI64U, wasm.I64, wasm.F32, 5},
		{wasm.OpF32DemoteF64, wasm.F64, wasm.F32, f64arg(5)},
		{wasm.OpF64ConvertI32S, wasm.I32, wasm.F64, 5},
		{wasm.OpF64ConvertI32U, wasm.I32, wasm.F64, 5},
		{wasm.OpF64ConvertI64S, wasm.I64, wasm.F64, 5},
		{wasm.OpF64ConvertI64U, wasm.I64, wasm.F64, 5},
		{wasm.OpF64PromoteF32, wasm.F32, wasm.F64, f32arg(5)},
		{wasm.OpI32ReinterpretF32, wasm.F32, wasm.I32, f32arg(5)},
		{wasm.OpI64ReinterpretF64, wasm.F64, wasm.I64, f64arg(5)},
		{wasm.OpF32ReinterpretI32, wasm.I32, wasm.F32, 5},
		{wasm.OpF64ReinterpretI64, wasm.I64, wasm.F64, 5},
	}
	for _, cv := range convs {
		m := buildModule(t, []wasm.ValType{cv.in}, []wasm.ValType{cv.out}, nil,
			[]wasm.Instr{wasm.LocalGet(0), wasm.Op0(cv.op)})
		if _, err := run1(t, m, cv.arg); err != nil {
			t.Errorf("%s: %v", cv.op.Name(), err)
		}
	}
}

func p32(n int) []wasm.ValType        { return repeatVT(wasm.I32, n) }
func p64(n int) []wasm.ValType        { return repeatVT(wasm.I64, n) }
func pf32(n int) []wasm.ValType       { return repeatVT(wasm.F32, n) }
func pf64(n int) []wasm.ValType       { return repeatVT(wasm.F64, n) }
func r(t wasm.ValType) []wasm.ValType { return []wasm.ValType{t} }

func repeatVT(t wasm.ValType, n int) []wasm.ValType {
	out := make([]wasm.ValType, n)
	for i := range out {
		out[i] = t
	}
	return out
}

func f32arg(v float32) uint64 { return uint64(math.Float32bits(v)) }
func f64arg(v float64) uint64 { return math.Float64bits(v) }
