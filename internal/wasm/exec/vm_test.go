package exec

import (
	"errors"
	"testing"

	"repro/internal/wasm"
)

// buildModule assembles a module with a single exported function "f" of the
// given signature and body, for interpreter tests.
func buildModule(t *testing.T, params, results []wasm.ValType, locals []wasm.LocalDecl, body []wasm.Instr) *wasm.Module {
	t.Helper()
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	ti := m.AddType(wasm.FuncType{Params: params, Results: results})
	m.Funcs = []uint32{ti}
	m.Code = []wasm.Code{{Locals: locals, Body: append(body, wasm.End())}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 0}}
	m.Memories = []wasm.MemType{{Limits: wasm.Limits{Min: 1}}}
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return m
}

func run1(t *testing.T, m *wasm.Module, args ...uint64) (uint64, error) {
	t.Helper()
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	res, err := NewVM(inst).Invoke("f", args...)
	if err != nil {
		return 0, err
	}
	if len(res) != 1 {
		t.Fatalf("want 1 result, got %d", len(res))
	}
	return res[0], nil
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		body []wasm.Instr
		args []uint64
		want uint64
	}{
		{
			name: "i32.add",
			body: []wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(wasm.OpI32Add)},
			args: []uint64{40, 2}, want: 42,
		},
		{
			name: "i32.sub wraps",
			body: []wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(wasm.OpI32Sub)},
			args: []uint64{0, 1}, want: 0xffffffff,
		},
		{
			name: "i32.popcnt",
			body: []wasm.Instr{wasm.LocalGet(0), wasm.Op0(wasm.OpI32Popcnt)},
			args: []uint64{0xff00ff00, 0}, want: 16,
		},
		{
			name: "i64.mul",
			body: []wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(wasm.OpI64Mul)},
			args: []uint64{6, 7}, want: 42,
		},
		{
			name: "i64.shr_s sign extends",
			body: []wasm.Instr{wasm.LocalGet(0), wasm.I64Const(4), wasm.Op0(wasm.OpI64ShrS)},
			args: []uint64{0xffffffffffffff00, 0}, want: 0xfffffffffffffff0,
		},
		{
			name: "i32.lt_s signed compare",
			body: []wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(wasm.OpI32LtS)},
			args: []uint64{0xffffffff /* -1 */, 1}, want: 1,
		},
		{
			name: "i32.lt_u unsigned compare",
			body: []wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(wasm.OpI32LtU)},
			args: []uint64{0xffffffff, 1}, want: 0,
		},
		{
			name: "select true",
			body: []wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.I32Const(1), wasm.Op0(wasm.OpSelect)},
			args: []uint64{11, 22}, want: 11,
		},
		{
			name: "i64.rotl",
			body: []wasm.Instr{wasm.LocalGet(0), wasm.I64Const(8), wasm.Op0(wasm.OpI64Rotl)},
			args: []uint64{0xff00000000000000, 0}, want: 0xff,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var params []wasm.ValType
			for range tt.args {
				params = append(params, wasm.I64)
			}
			m := buildModule(t, params, []wasm.ValType{wasm.I64}, nil, tt.body)
			got, err := run1(t, m, tt.args...)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if got != tt.want {
				t.Errorf("got %#x, want %#x", got, tt.want)
			}
		})
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	m := buildModule(t,
		[]wasm.ValType{wasm.I32, wasm.I32}, []wasm.ValType{wasm.I32}, nil,
		[]wasm.Instr{wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(wasm.OpI32DivU)})
	_, err := run1(t, m, 1, 0)
	if !IsTrap(err, TrapDivideByZero) {
		t.Fatalf("want divide-by-zero trap, got %v", err)
	}
}

func TestUnreachableTraps(t *testing.T) {
	m := buildModule(t, nil, nil, nil, []wasm.Instr{wasm.Unreachable()})
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	_, err = NewVM(inst).Invoke("f")
	if !IsTrap(err, TrapUnreachable) {
		t.Fatalf("want unreachable trap, got %v", err)
	}
}

// TestLoopSum computes sum(1..n) with a loop + br_if, exercising blocks,
// loops, locals and conditional branches.
func TestLoopSum(t *testing.T) {
	// local0 = n (param), local1 = i, local2 = acc
	body := []wasm.Instr{
		wasm.Block(), // $exit
		wasm.Loop(),  // $top
		// if i >= n, br $exit
		wasm.LocalGet(1), wasm.LocalGet(0), wasm.Op0(wasm.OpI64GeU), wasm.BrIf(1),
		// i++
		wasm.LocalGet(1), wasm.I64Const(1), wasm.Op0(wasm.OpI64Add), wasm.LocalSet(1),
		// acc += i
		wasm.LocalGet(2), wasm.LocalGet(1), wasm.Op0(wasm.OpI64Add), wasm.LocalSet(2),
		wasm.Br(0), // continue loop
		wasm.End(), // loop
		wasm.End(), // block
		wasm.LocalGet(2),
	}
	m := buildModule(t, []wasm.ValType{wasm.I64}, []wasm.ValType{wasm.I64},
		[]wasm.LocalDecl{{Count: 2, Type: wasm.I64}}, body)
	got, err := run1(t, m, 100)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 5050 {
		t.Errorf("sum(1..100) = %d, want 5050", got)
	}
}

func TestIfElse(t *testing.T) {
	// return x < 10 ? 1 : 2
	body := []wasm.Instr{
		wasm.LocalGet(0), wasm.I64Const(10), wasm.Op0(wasm.OpI64LtU),
		wasm.IfTyped(wasm.I64),
		wasm.I64Const(1),
		wasm.Else(),
		wasm.I64Const(2),
		wasm.End(),
	}
	m := buildModule(t, []wasm.ValType{wasm.I64}, []wasm.ValType{wasm.I64}, nil, body)
	for _, tc := range []struct{ arg, want uint64 }{{5, 1}, {10, 2}, {11, 2}} {
		got, err := run1(t, m, tc.arg)
		if err != nil {
			t.Fatalf("run(%d): %v", tc.arg, err)
		}
		if got != tc.want {
			t.Errorf("f(%d) = %d, want %d", tc.arg, got, tc.want)
		}
	}
}

func TestIfWithoutElse(t *testing.T) {
	// local1 = 7; if x != 0 { local1 = 9 }; return local1
	body := []wasm.Instr{
		wasm.I64Const(7), wasm.LocalSet(1),
		wasm.LocalGet(0), wasm.Op0(wasm.OpI64Eqz), wasm.Op0(wasm.OpI32Eqz),
		wasm.If(),
		wasm.I64Const(9), wasm.LocalSet(1),
		wasm.End(),
		wasm.LocalGet(1),
	}
	m := buildModule(t, []wasm.ValType{wasm.I64}, []wasm.ValType{wasm.I64},
		[]wasm.LocalDecl{{Count: 1, Type: wasm.I64}}, body)
	if got, _ := run1(t, m, 0); got != 7 {
		t.Errorf("f(0) = %d, want 7", got)
	}
	if got, _ := run1(t, m, 3); got != 9 {
		t.Errorf("f(3) = %d, want 9", got)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	// store i64 x at 16, reload as two i32 halves, add them
	body := []wasm.Instr{
		wasm.I32Const(16), wasm.LocalGet(0), wasm.Store(wasm.OpI64Store, 0),
		wasm.I32Const(16), wasm.Load(wasm.OpI32Load, 0),
		wasm.I32Const(16), wasm.Load(wasm.OpI32Load, 4),
		wasm.Op0(wasm.OpI32Add),
	}
	m := buildModule(t, []wasm.ValType{wasm.I64}, []wasm.ValType{wasm.I32}, nil, body)
	got, err := run1(t, m, 0x00000002_00000003)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 5 {
		t.Errorf("got %d, want 5", got)
	}
}

func TestMemoryOutOfBoundsTraps(t *testing.T) {
	body := []wasm.Instr{wasm.I32Const(PageSize - 3), wasm.Load(wasm.OpI32Load, 0)}
	m := buildModule(t, nil, []wasm.ValType{wasm.I32}, nil, body)
	_, err := run1(t, m)
	if !IsTrap(err, TrapMemoryOutOfBounds) {
		t.Fatalf("want OOB trap, got %v", err)
	}
}

func TestHostFunctionCall(t *testing.T) {
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	hostTI := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	m.Imports = []wasm.Import{{Module: "env", Name: "double", Kind: wasm.ExternalFunc, TypeIndex: hostTI}}
	fTI := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	m.Funcs = []uint32{fTI}
	m.Code = []wasm.Code{{Body: []wasm.Instr{wasm.LocalGet(0), wasm.Call(0), wasm.End()}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 1}}

	called := false
	r := Resolver{"env": HostModule{
		"double": func(vm *VM, args []uint64) ([]uint64, error) {
			called = true
			return []uint64{args[0] * 2}, nil
		},
	}}
	inst, err := Instantiate(m, r)
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	res, err := NewVM(inst).Invoke("f", 21)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if !called || res[0] != 42 {
		t.Errorf("host call: called=%v res=%v", called, res)
	}
}

func TestHostErrorBecomesTrap(t *testing.T) {
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	hostTI := m.AddType(wasm.FuncType{})
	m.Imports = []wasm.Import{{Module: "env", Name: "boom", Kind: wasm.ExternalFunc, TypeIndex: hostTI}}
	m.Funcs = []uint32{hostTI}
	m.Code = []wasm.Code{{Body: []wasm.Instr{wasm.Call(0), wasm.End()}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 1}}

	sentinel := errors.New("sentinel")
	r := Resolver{"env": HostModule{
		"boom": func(vm *VM, args []uint64) ([]uint64, error) { return nil, sentinel },
	}}
	inst, err := Instantiate(m, r)
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	_, err = NewVM(inst).Invoke("f")
	if !IsTrap(err, TrapHostError) || !errors.Is(err, sentinel) {
		t.Fatalf("want wrapped host error, got %v", err)
	}
}

func TestCallIndirect(t *testing.T) {
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	ti := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	m.Funcs = []uint32{ti, ti, m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I64}})}
	m.Code = []wasm.Code{
		{Body: []wasm.Instr{wasm.I64Const(111), wasm.End()}},
		{Body: []wasm.Instr{wasm.I64Const(222), wasm.End()}},
		{Body: []wasm.Instr{wasm.LocalGet(0), wasm.CallIndirect(ti), wasm.End()}},
	}
	m.Tables = []wasm.TableType{{Limits: wasm.Limits{Min: 2}}}
	m.Elems = []wasm.ElemSegment{{Offset: []wasm.Instr{wasm.I32Const(0)}, Funcs: []uint32{0, 1}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 2}}

	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	for i, want := range []uint64{111, 222} {
		res, err := NewVM(inst).Invoke("f", uint64(i))
		if err != nil {
			t.Fatalf("Invoke(%d): %v", i, err)
		}
		if res[0] != want {
			t.Errorf("table[%d]() = %d, want %d", i, res[0], want)
		}
	}
	// Out-of-range index traps.
	_, err = NewVM(inst).Invoke("f", 9)
	if !IsTrap(err, TrapUndefinedElement) {
		t.Fatalf("want undefined-element trap, got %v", err)
	}
}

func TestFuelExhaustion(t *testing.T) {
	// Infinite loop.
	body := []wasm.Instr{wasm.Loop(), wasm.Br(0), wasm.End()}
	m := buildModule(t, nil, nil, nil, body)
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	vm := NewVM(inst)
	vm.SetFuel(10_000)
	_, err = vm.Invoke("f")
	if !IsTrap(err, TrapFuelExhausted) {
		t.Fatalf("want fuel trap, got %v", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	ti := m.AddType(wasm.FuncType{})
	m.Funcs = []uint32{ti}
	m.Code = []wasm.Code{{Body: []wasm.Instr{wasm.Call(0), wasm.End()}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 0}}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	_, err = NewVM(inst).Invoke("f")
	if !IsTrap(err, TrapStackExhausted) {
		t.Fatalf("want stack trap, got %v", err)
	}
}

func TestBrTable(t *testing.T) {
	// switch(x): 0->10, 1->20, default->99
	body := []wasm.Instr{
		wasm.BlockTyped(wasm.I64), // value-producing outer block
		wasm.Block(),              // $default
		wasm.Block(),              // $case1
		wasm.Block(),              // $case0
		wasm.LocalGet(0),
		{Op: wasm.OpBrTable, Table: []uint32{0, 1}, A: 2},
		wasm.End(), // case0
		wasm.I64Const(10), wasm.Br(2),
		wasm.End(), // case1
		wasm.I64Const(20), wasm.Br(1),
		wasm.End(), // default
		wasm.I64Const(99),
		wasm.End(),
	}
	m := buildModule(t, []wasm.ValType{wasm.I32}, []wasm.ValType{wasm.I64}, nil, body)
	for _, tc := range []struct{ arg, want uint64 }{{0, 10}, {1, 20}, {2, 99}, {100, 99}} {
		got, err := run1(t, m, tc.arg)
		if err != nil {
			t.Fatalf("run(%d): %v", tc.arg, err)
		}
		if got != tc.want {
			t.Errorf("f(%d) = %d, want %d", tc.arg, got, tc.want)
		}
	}
}

func TestMemoryGrow(t *testing.T) {
	body := []wasm.Instr{
		wasm.I32Const(2), wasm.Instr{Op: wasm.OpMemoryGrow},
		wasm.Drop(),
		wasm.Instr{Op: wasm.OpMemorySize},
	}
	m := buildModule(t, nil, []wasm.ValType{wasm.I32}, nil, body)
	got, err := run1(t, m)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 3 {
		t.Errorf("memory.size after grow = %d, want 3", got)
	}
}

func TestFloatArithmetic(t *testing.T) {
	// f64: sqrt(x) + 1.5
	body := []wasm.Instr{
		wasm.LocalGet(0), wasm.Op0(wasm.OpF64Sqrt),
		{Op: wasm.OpF64Const, Imm: f64bits(1.5)},
		wasm.Op0(wasm.OpF64Add),
	}
	m := buildModule(t, []wasm.ValType{wasm.F64}, []wasm.ValType{wasm.F64}, nil, body)
	got, err := run1(t, m, f64bits(16))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := f64bits(5.5); got != want {
		t.Errorf("got %v, want %v", got, want)
	}
}
