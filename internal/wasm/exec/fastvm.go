package exec

import (
	"fmt"

	"repro/internal/wasm"
)

// This file implements the fast execution core's dispatch loop: a dense
// switch over the decoded irInstr stream of ir.go. Branch targets, block
// arities and immediates are pre-resolved, the operand stack is a flat
// pre-sized slice indexed by an integer, and fuel is charged per decoded
// instruction (superinstructions carry the summed cost of the source
// instructions they replace), so successful executions consume exactly
// the fuel the reference tree-walker would.

// FastObserver receives one callback per executed decoded instruction:
// the function index, the decoded-stream pc, and the fuel charged. Setting
// an observer selects the tracing variant of the dispatch loop; with no
// observer the loop runs bare.
type FastObserver func(funcIndex uint32, pc int, cost int)

// NewFastVM returns a VM over inst that executes through the decoded-IR
// engine. Function bodies the conservative IR compiler rejects fall back
// to the reference tree-walker transparently, so observable behaviour is
// identical to NewVM in every case.
func NewFastVM(inst *Instance) *VM {
	vm := NewVM(inst)
	vm.prog = programFor(inst.module)
	return vm
}

// Fast reports whether this VM dispatches through the decoded-IR engine.
func (vm *VM) Fast() bool { return vm.prog != nil }

// SetFastObserver installs (or, with nil, removes) the per-instruction
// tracing hook of the fast engine.
func (vm *VM) SetFastObserver(obs FastObserver) { vm.fastObs = obs }

// fastCompiled returns the compiled body for f, or nil when f must run on
// the reference interpreter.
func (vm *VM) fastCompiled(f *funcDef) *irFunc {
	if vm.prog == nil || int(f.index) >= len(vm.prog.funcs) {
		return nil
	}
	return vm.prog.funcs[f.index]
}

func (vm *VM) fastExec(f *funcDef, fn *irFunc, args []uint64) (results []uint64, err error) {
	locals := make([]uint64, fn.nLocals)
	copy(locals, args)
	st := make([]uint64, fn.maxStack)
	sp := 0

	defer func() {
		if r := recover(); r != nil {
			// Mirrors the reference interpreter: residual malformed-body
			// panics become host-error traps instead of crashing.
			wrapped := fmt.Errorf("interpreter panic: %v", r)
			if e, ok := r.(error); ok {
				wrapped = fmt.Errorf("interpreter panic: %w", e)
			}
			results = nil
			err = &Trap{Kind: TrapHostError, FuncIndex: f.index, Wrapped: wrapped}
		}
	}()

	code := fn.code
	obs := vm.fastObs
	for pc := 0; pc < len(code); {
		in := &code[pc]
		if obs != nil {
			obs(f.index, pc, int(in.cost))
		}
		if vm.fuel -= int64(in.cost); vm.fuel < 0 {
			return nil, &Trap{Kind: TrapFuelExhausted, FuncIndex: f.index, PC: pc}
		}
		switch in.op {
		case irTick:
			// fuel-only bookkeeping

		case irUnreachable:
			return nil, &Trap{Kind: TrapUnreachable, FuncIndex: f.index, PC: pc}

		case irBr:
			if in.x == 1 {
				st[in.b] = st[sp-1]
			}
			sp = int(in.b) + int(in.x)
			pc = int(in.a)
			continue

		case irBrIf:
			sp--
			if st[sp] != 0 {
				if in.x == 1 {
					st[in.b] = st[sp-1]
				}
				sp = int(in.b) + int(in.x)
				pc = int(in.a)
				continue
			}

		case irBrIfZ:
			sp--
			if st[sp] == 0 {
				sp = int(in.b)
				pc = int(in.a)
				continue
			}

		case irBrTable:
			sp--
			tbl := fn.tables[in.a]
			i := len(tbl) - 1
			if v := st[sp]; uint64(uint32(v)) < uint64(i) {
				i = int(uint32(v))
			}
			t := &tbl[i]
			if t.keep == 1 {
				st[t.unwind] = st[sp-1]
			}
			sp = int(t.unwind) + int(t.keep)
			pc = int(t.pc)
			continue

		case irReturn:
			n := int(in.x)
			if n == 0 || sp < n {
				return nil, nil
			}
			out := make([]uint64, n)
			copy(out, st[sp-n:sp])
			return out, nil

		case irCall:
			callee := &vm.inst.funcs[in.a]
			n := len(callee.typ.Params)
			cargs := make([]uint64, n)
			copy(cargs, st[sp-n:sp])
			sp -= n
			res, cerr := vm.call(callee, cargs)
			if cerr != nil {
				return nil, cerr
			}
			copy(st[sp:], res)
			sp += len(res)

		case irCallInd:
			sp--
			ti := st[sp]
			if int(ti) >= len(vm.inst.table) {
				return nil, &Trap{Kind: TrapUndefinedElement, FuncIndex: f.index, PC: pc}
			}
			fi := vm.inst.table[ti]
			if fi < 0 {
				return nil, &Trap{Kind: TrapUndefinedElement, FuncIndex: f.index, PC: pc}
			}
			if vm.prog.funcCanon[fi] != vm.prog.typeCanon[in.a] {
				return nil, &Trap{Kind: TrapIndirectCallTypeMismatch, FuncIndex: f.index, PC: pc}
			}
			callee := &vm.inst.funcs[fi]
			n := len(callee.typ.Params)
			cargs := make([]uint64, n)
			copy(cargs, st[sp-n:sp])
			sp -= n
			res, cerr := vm.call(callee, cargs)
			if cerr != nil {
				return nil, cerr
			}
			copy(st[sp:], res)
			sp += len(res)

		case irDrop:
			sp--

		case irSelect:
			c, b, a := st[sp-1], st[sp-2], st[sp-3]
			sp -= 2
			if c != 0 {
				st[sp-1] = a
			} else {
				st[sp-1] = b
			}

		case irLocalGet:
			st[sp] = locals[in.a]
			sp++
		case irLocalSet:
			sp--
			locals[in.a] = st[sp]
		case irLocalTee:
			locals[in.a] = st[sp-1]
		case irGlobalGet:
			st[sp] = vm.inst.globals[in.a]
			sp++
		case irGlobalSet:
			sp--
			vm.inst.globals[in.a] = st[sp]

		case irConst:
			st[sp] = in.imm
			sp++

		case irMemSize:
			st[sp] = uint64(uint32(len(vm.inst.mem) / PageSize))
			sp++
		case irMemGrow:
			st[sp-1] = uint64(uint32(vm.inst.grow(uint32(st[sp-1]))))

		case irLoad:
			mem := vm.inst.mem
			addr := uint64(uint32(st[sp-1])) + uint64(in.b)
			end := addr + uint64(in.a)
			if end > uint64(len(mem)) {
				return nil, &Trap{Kind: TrapMemoryOutOfBounds, FuncIndex: f.index, PC: pc}
			}
			st[sp-1] = loadVal(wasm.Opcode(in.x), mem[addr:end])

		case irStore:
			mem := vm.inst.mem
			val := st[sp-1]
			addr := uint64(uint32(st[sp-2])) + uint64(in.b)
			sp -= 2
			end := addr + uint64(in.a)
			if end > uint64(len(mem)) {
				return nil, &Trap{Kind: TrapMemoryOutOfBounds, FuncIndex: f.index, PC: pc}
			}
			storeVal(wasm.Opcode(in.x), mem[addr:end], val)

		case irConstStore:
			mem := vm.inst.mem
			addr := uint64(uint32(st[sp-1])) + uint64(in.b)
			sp--
			end := addr + uint64(in.a)
			if end > uint64(len(mem)) {
				return nil, &Trap{Kind: TrapMemoryOutOfBounds, FuncIndex: f.index, PC: pc}
			}
			storeVal(wasm.Opcode(in.x), mem[addr:end], in.imm)

		case irNumeric:
			w := st[:sp]
			if _, k := applyNumeric(wasm.Opcode(in.x), &w); k != 0 {
				return nil, &Trap{Kind: k, FuncIndex: f.index, PC: pc}
			}
			sp = len(w)

		case irI32Add:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) + uint32(st[sp]))
		case irI32Sub:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) - uint32(st[sp]))
		case irI32Mul:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) * uint32(st[sp]))
		case irI32And:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) & uint32(st[sp]))
		case irI32Or:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) | uint32(st[sp]))
		case irI32Xor:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) ^ uint32(st[sp]))
		case irI32Shl:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) << (uint32(st[sp]) & 31))
		case irI32ShrS:
			sp--
			st[sp-1] = uint64(uint32(int32(st[sp-1]) >> (uint32(st[sp]) & 31)))
		case irI32ShrU:
			sp--
			st[sp-1] = uint64(uint32(st[sp-1]) >> (uint32(st[sp]) & 31))
		case irI32Eq:
			sp--
			st[sp-1] = b2u(uint32(st[sp-1]) == uint32(st[sp]))
		case irI32Ne:
			sp--
			st[sp-1] = b2u(uint32(st[sp-1]) != uint32(st[sp]))
		case irI32LtS:
			sp--
			st[sp-1] = b2u(int32(st[sp-1]) < int32(st[sp]))
		case irI32LtU:
			sp--
			st[sp-1] = b2u(uint32(st[sp-1]) < uint32(st[sp]))
		case irI32GtS:
			sp--
			st[sp-1] = b2u(int32(st[sp-1]) > int32(st[sp]))
		case irI32GtU:
			sp--
			st[sp-1] = b2u(uint32(st[sp-1]) > uint32(st[sp]))
		case irI32Eqz:
			st[sp-1] = b2u(uint32(st[sp-1]) == 0)

		case irI64Add:
			sp--
			st[sp-1] += st[sp]
		case irI64Sub:
			sp--
			st[sp-1] -= st[sp]
		case irI64Mul:
			sp--
			st[sp-1] *= st[sp]
		case irI64And:
			sp--
			st[sp-1] &= st[sp]
		case irI64Or:
			sp--
			st[sp-1] |= st[sp]
		case irI64Xor:
			sp--
			st[sp-1] ^= st[sp]
		case irI64Shl:
			sp--
			st[sp-1] <<= st[sp] & 63
		case irI64ShrS:
			sp--
			st[sp-1] = uint64(int64(st[sp-1]) >> (st[sp] & 63))
		case irI64ShrU:
			sp--
			st[sp-1] >>= st[sp] & 63
		case irI64Eq:
			sp--
			st[sp-1] = b2u(st[sp-1] == st[sp])
		case irI64Ne:
			sp--
			st[sp-1] = b2u(st[sp-1] != st[sp])
		case irI64LtS:
			sp--
			st[sp-1] = b2u(int64(st[sp-1]) < int64(st[sp]))
		case irI64LtU:
			sp--
			st[sp-1] = b2u(st[sp-1] < st[sp])
		case irI64GtS:
			sp--
			st[sp-1] = b2u(int64(st[sp-1]) > int64(st[sp]))
		case irI64GtU:
			sp--
			st[sp-1] = b2u(st[sp-1] > st[sp])
		case irI64Eqz:
			st[sp-1] = b2u(st[sp-1] == 0)

		case irGetGetAddI32:
			st[sp] = uint64(uint32(locals[in.a]) + uint32(locals[in.b]))
			sp++
		case irGetGetAddI64:
			st[sp] = locals[in.a] + locals[in.b]
			sp++
		case irConstAddI32:
			st[sp-1] = uint64(uint32(st[sp-1]) + uint32(in.imm))
		case irConstAddI64:
			st[sp-1] += in.imm

		default:
			return nil, &Trap{Kind: TrapHostError, FuncIndex: f.index, PC: pc,
				Wrapped: fmt.Errorf("invalid decoded opcode %d", in.op)}
		}
		pc++
	}
	// Unreachable: compiled bodies always end in irReturn.
	return nil, nil
}

// b2u converts a comparison result to the Wasm boolean encoding.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
