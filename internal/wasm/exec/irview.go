package exec

import "repro/internal/wasm"

// irview.go is the read-only window other packages get onto the decoded IR.
// The abstract interpreter (internal/static/absint) analyzes the exact
// instruction stream the fast engine executes — same lowering, same fusion,
// same pre-resolved branch targets — instead of re-deriving its own IR and
// risking a semantic gap between what is proven and what runs. Everything
// here is an immutable view: the underlying program is shared with the
// dispatch loop and cached per module.

// IROp is the exported name of the decoded opcode enumeration.
type IROp = irOp

// Exported mirrors of the decoded instruction forms. Values are identical
// to the unexported constants fastvm.go dispatches on.
const (
	IRInvalid     IROp = irInvalid
	IRTick        IROp = irTick
	IRUnreachable IROp = irUnreachable
	IRBr          IROp = irBr
	IRBrIf        IROp = irBrIf
	IRBrIfZ       IROp = irBrIfZ
	IRBrTable     IROp = irBrTable
	IRReturn      IROp = irReturn
	IRCall        IROp = irCall
	IRCallInd     IROp = irCallInd
	IRDrop        IROp = irDrop
	IRSelect      IROp = irSelect
	IRLocalGet    IROp = irLocalGet
	IRLocalSet    IROp = irLocalSet
	IRLocalTee    IROp = irLocalTee
	IRGlobalGet   IROp = irGlobalGet
	IRGlobalSet   IROp = irGlobalSet
	IRConst       IROp = irConst
	IRMemSize     IROp = irMemSize
	IRMemGrow     IROp = irMemGrow
	IRLoad        IROp = irLoad
	IRStore       IROp = irStore
	IRNumeric     IROp = irNumeric

	IRI32Add  IROp = irI32Add
	IRI32Sub  IROp = irI32Sub
	IRI32Mul  IROp = irI32Mul
	IRI32And  IROp = irI32And
	IRI32Or   IROp = irI32Or
	IRI32Xor  IROp = irI32Xor
	IRI32Shl  IROp = irI32Shl
	IRI32ShrS IROp = irI32ShrS
	IRI32ShrU IROp = irI32ShrU
	IRI32Eq   IROp = irI32Eq
	IRI32Ne   IROp = irI32Ne
	IRI32LtS  IROp = irI32LtS
	IRI32LtU  IROp = irI32LtU
	IRI32GtS  IROp = irI32GtS
	IRI32GtU  IROp = irI32GtU
	IRI32Eqz  IROp = irI32Eqz
	IRI64Add  IROp = irI64Add
	IRI64Sub  IROp = irI64Sub
	IRI64Mul  IROp = irI64Mul
	IRI64And  IROp = irI64And
	IRI64Or   IROp = irI64Or
	IRI64Xor  IROp = irI64Xor
	IRI64Shl  IROp = irI64Shl
	IRI64ShrS IROp = irI64ShrS
	IRI64ShrU IROp = irI64ShrU
	IRI64Eq   IROp = irI64Eq
	IRI64Ne   IROp = irI64Ne
	IRI64LtS  IROp = irI64LtS
	IRI64LtU  IROp = irI64LtU
	IRI64GtS  IROp = irI64GtS
	IRI64GtU  IROp = irI64GtU
	IRI64Eqz  IROp = irI64Eqz

	IRGetGetAddI32 IROp = irGetGetAddI32
	IRGetGetAddI64 IROp = irGetGetAddI64
	IRConstAddI32  IROp = irConstAddI32
	IRConstAddI64  IROp = irConstAddI64
	IRConstStore   IROp = irConstStore
)

// IRInstr is the exported value form of one decoded instruction, plus the
// source pc (original body index) it was lowered from.
type IRInstr struct {
	Op   IROp
	X    uint8
	Cost uint16
	A    uint32
	B    uint32
	Imm  uint64
	Src  uint32
}

// IRTarget is one pre-resolved br_table destination.
type IRTarget struct {
	PC     uint32
	Unwind uint32
	Keep   uint8
}

// IRFuncView is a read-only view of one compiled body. The zero view
// (OK() == false) marks a function that fell back to the tree-walker.
type IRFuncView struct {
	fn *irFunc
}

// OK reports whether the function compiled (fallback bodies have no IR).
func (v IRFuncView) OK() bool { return v.fn != nil }

// Len returns the number of decoded instructions.
func (v IRFuncView) Len() int { return len(v.fn.code) }

// Instr returns the decoded instruction at ir-pc, with its source pc.
func (v IRFuncView) Instr(pc int) IRInstr {
	in := v.fn.code[pc]
	var src uint32
	if pc < len(v.fn.src) {
		src = v.fn.src[pc]
	}
	return IRInstr{Op: in.op, X: in.x, Cost: in.cost, A: in.a, B: in.b, Imm: in.imm, Src: src}
}

// NTables returns the number of br_table target lists.
func (v IRFuncView) NTables() int { return len(v.fn.tables) }

// Table returns the pre-resolved br_table destinations for table i.
func (v IRFuncView) Table(i int) []IRTarget {
	ts := v.fn.tables[i]
	out := make([]IRTarget, len(ts))
	for j, t := range ts {
		out[j] = IRTarget{PC: t.pc, Unwind: t.unwind, Keep: t.keep}
	}
	return out
}

// NLocals returns params + declared locals.
func (v IRFuncView) NLocals() int { return v.fn.nLocals }

// NResults returns the function result count.
func (v IRFuncView) NResults() int { return v.fn.nResults }

// MaxStack returns the pre-computed operand stack bound.
func (v IRFuncView) MaxStack() int { return v.fn.maxStack }

// IRView is a read-only view of one module's decoded program.
type IRView struct {
	p *irProgram
}

// IRFor returns the decoded-IR view for m, compiling (and caching) on
// first use — the same cache the fast engine reads.
func IRFor(m *wasm.Module) *IRView {
	return &IRView{p: programFor(m)}
}

// Func returns the view of the function at index idx in the function index
// space; the zero view for imports and fallback bodies.
func (v *IRView) Func(idx uint32) IRFuncView {
	if int(idx) >= len(v.p.funcs) {
		return IRFuncView{}
	}
	return IRFuncView{fn: v.p.funcs[idx]}
}

// FuncCanon returns the canonical type id of the function at idx.
func (v *IRView) FuncCanon(idx uint32) uint32 {
	if int(idx) >= len(v.p.funcCanon) {
		return ^uint32(0)
	}
	return v.p.funcCanon[idx]
}

// TypeCanon returns the canonical id of module type index ti.
func (v *IRView) TypeCanon(ti uint32) uint32 {
	if int(ti) >= len(v.p.typeCanon) {
		return ^uint32(0)
	}
	return v.p.typeCanon[ti]
}
